//! Quickstart: the high-level `Engine` API.
//!
//! Run with: `cargo run --release --example quickstart`

use rethinking_simd::{Engine, Relation};

fn main() {
    // The engine picks the best SIMD backend at runtime (AVX-512 on the
    // paper's "Xeon Phi class" machines, AVX2 on "Haswell class", portable
    // everywhere else).
    let engine = Engine::new().with_threads(2);
    println!("SIMD backend: {}", engine.backend().name());

    // A tiny "orders" table: key = price, payload = order id.
    let prices = vec![129, 15, 4_999, 88, 42, 1_250, 7, 310];
    let orders = Relation::with_rid_payloads(prices);

    // 1. Selection scan (paper §4): orders priced 10..=500.
    let mid_range = engine.select(&orders, 10, 500);
    println!(
        "selection:   {} of {} orders in [10, 500]",
        mid_range.len(),
        orders.len()
    );
    assert_eq!(mid_range.keys, vec![129, 15, 88, 42, 310]);

    // 2. Sort them by price (paper §8, LSB radixsort).
    let mut sorted = mid_range.clone();
    engine.sort(&mut sorted);
    println!("sort:        {:?}", sorted.keys);
    assert_eq!(sorted.keys, vec![15, 42, 88, 129, 310]);

    // 3. Hash join (paper §9): match orders against a lookup table keyed
    //    by the same prices, payload = discount class.
    let discounts = Relation::new(vec![15, 88, 310, 9_999], vec![1, 2, 3, 4]);
    let joined = engine.hash_join(&discounts, &sorted);
    println!("join:        {} matches", joined.matches());
    assert_eq!(joined.matches(), 3);

    // 4. Bloom semi-join (paper §6): pre-filter before an expensive join.
    let filtered = engine.bloom_semijoin(&orders, &discounts.keys);
    println!(
        "bloom:       {} candidates survive the semi-join filter",
        filtered.len()
    );
    assert!(filtered.len() >= 3);

    // 5. Hash partitioning (paper §7): split for cache-friendly processing.
    let (_parts, starts) = engine.hash_partition(&orders, 4);
    println!("partition:   starts at {starts:?}");

    println!(
        "\nAll operators ran vectorized on `{}`.",
        engine.backend().name()
    );
}
