//! A realistic analytical micro-query over synthetic column-store data —
//! the workload class the paper's introduction motivates ("blink-of-an-eye
//! analytical query execution" over RAM-resident columns).
//!
//! Query (in SQL-ish form):
//!
//! ```sql
//! SELECT   d.payload AS category, COUNT(*), SUM(f.payload)
//! FROM     facts f JOIN dims d ON f.key = d.key
//! WHERE    f.key BETWEEN :lo AND :hi
//! GROUP BY d.payload
//! ORDER BY category
//! ```
//!
//! executed as: selection scan → Bloom semi-join → max-partition hash join
//! → radixsort-based grouping, every operator vectorized.
//!
//! Run with: `cargo run --release --example analytics_query`

use std::time::Instant;

use rethinking_simd::{data, Engine, Relation};

fn main() {
    let engine = Engine::new().with_threads(2);
    println!("backend: {}\n", engine.backend().name());

    // Build a dimension table (1M distinct keys, payload = category 0..50)
    // and a fact table (8M rows over a wider key domain: ~12% join hits).
    let mut rng = data::rng(2015);
    let n_dim = 1 << 20;
    let n_fact = 8 << 20;
    let key_pool = data::unique_u32(n_dim * 8, &mut rng);
    let dim_keys = key_pool[..n_dim].to_vec();
    let dims = Relation::new(
        dim_keys.clone(),
        (0..n_dim as u32).map(|i| i % 50).collect(),
    );
    let fact_keys: Vec<u32> = data::uniform_u32(n_fact, &mut rng)
        .iter()
        .map(|&r| key_pool[r as usize % key_pool.len()])
        .collect();
    let facts = Relation::new(fact_keys, data::uniform_u32(n_fact, &mut rng));
    println!("facts: {} rows, dims: {} rows", facts.len(), dims.len());

    let total = Instant::now();

    // 1. Selection scan on the fact keys (≈50% selectivity).
    let t = Instant::now();
    let (lo, hi) = data::selection_bounds(0.5);
    let selected = engine.select(&facts, lo, hi);
    println!(
        "scan:      {:>8} rows   ({:.1?})",
        selected.len(),
        t.elapsed()
    );

    // 2. Bloom semi-join: discard fact rows whose key cannot be in dims.
    let t = Instant::now();
    let candidates = engine.bloom_semijoin(&selected, &dims.keys);
    println!(
        "bloom:     {:>8} rows   ({:.1?}, {:.1}% pass)",
        candidates.len(),
        t.elapsed(),
        100.0 * candidates.len() as f64 / selected.len() as f64
    );

    // 3. Max-partition hash join against the dimension table.
    let t = Instant::now();
    let joined = engine.hash_join(&dims, &candidates);
    println!(
        "join:      {:>8} rows   ({:.1?}; partition {:.1?}, build {:.1?}, probe {:.1?})",
        joined.matches(),
        t.elapsed(),
        joined.timings.partition,
        joined.timings.build,
        joined.timings.probe
    );

    // 4. Group by category: radixsort the (category, value) pairs, then a
    //    single ordered pass aggregates.
    let t = Instant::now();
    let mut by_category = Relation::new(
        joined
            .sinks
            .iter()
            .flat_map(|s| s.columns().1.iter().copied())
            .collect(),
        joined
            .sinks
            .iter()
            .flat_map(|s| s.columns().2.iter().copied())
            .collect(),
    );
    engine.sort(&mut by_category);
    let mut groups: Vec<(u32, u64, u64)> = Vec::new(); // (category, count, sum)
    for (cat, val) in by_category.iter() {
        match groups.last_mut() {
            Some(g) if g.0 == cat => {
                g.1 += 1;
                g.2 += u64::from(val);
            }
            _ => groups.push((cat, 1, u64::from(val))),
        }
    }
    println!(
        "group-by:  {:>8} groups ({:.1?})",
        groups.len(),
        t.elapsed()
    );
    println!("\ntotal: {:.1?}", total.elapsed());

    // Show the top rows of the result.
    println!("\ncategory  count      sum");
    for (cat, count, sum) in groups.iter().take(5) {
        println!("{cat:>8} {count:>6} {sum:>12}");
    }
    assert!(groups.len() <= 50);
    let rows: u64 = groups.iter().map(|g| g.1).sum();
    assert_eq!(rows as usize, joined.matches());
}
