//! Sorting a multi-column table (the paper's §10.5.3 / Figure 18
//! scenario): a 32-bit key column dragging payload columns of mixed widths
//! through a stable LSB radixsort via destination replay.
//!
//! Models a column-store "CLUSTER BY" / index-build: order an 8-column
//! table by one key without ever materializing row-format tuples.
//!
//! Run with: `cargo run --release --example sort_payloads`

use std::time::Instant;

use rethinking_simd::simd::Backend;
use rethinking_simd::sort::multicol::{lsb_radixsort_multicol, PayloadColumn};
use rethinking_simd::sort::SortConfig;
use rethinking_simd::{data, simd::dispatch};

fn main() {
    let n = 2 << 20;
    let mut rng = data::rng(42);
    let keys = data::uniform_u32(n, &mut rng);

    // A mixed-width table: flags (u8), country (u16), quantity/rid (u32),
    // revenue (u64).
    let flags: Vec<u8> = (0..n).map(|i| (i % 3) as u8).collect();
    let country: Vec<u16> = (0..n).map(|i| (i % 195) as u16).collect();
    let rid: Vec<u32> = (0..n as u32).collect();
    let revenue: Vec<u64> = keys.iter().map(|&k| u64::from(k) * 3).collect();

    let backend = Backend::best();
    println!("sorting {n} rows x 5 columns on `{}`", backend.name());

    let mut sorted_keys = keys.clone();
    let mut columns = vec![
        PayloadColumn::U8(flags),
        PayloadColumn::U16(country),
        PayloadColumn::U32(rid),
        PayloadColumn::U64(revenue),
    ];

    let t = Instant::now();
    dispatch!(backend, s => {
        lsb_radixsort_multicol(s, &mut sorted_keys, &mut columns, &SortConfig::default())
    });
    let dt = t.elapsed();

    let bytes: usize = 4 + columns.iter().map(|c| c.width()).sum::<usize>();
    println!(
        "sorted in {dt:.2?}  ({:.0} M rows/s, {:.0} MB of tuple data)",
        n as f64 / dt.as_secs_f64() / 1e6,
        (n * bytes) as f64 / 1e6
    );

    // Verify: keys ascend and every row still holds together.
    assert!(sorted_keys.windows(2).all(|w| w[0] <= w[1]));
    let rid_sorted = match &columns[2] {
        PayloadColumn::U32(v) => v,
        _ => unreachable!(),
    };
    let rev_sorted = match &columns[3] {
        PayloadColumn::U64(v) => v,
        _ => unreachable!(),
    };
    for i in (0..n).step_by(997) {
        let orig = rid_sorted[i] as usize;
        assert_eq!(keys[orig], sorted_keys[i]);
        assert_eq!(rev_sorted[i], u64::from(sorted_keys[i]) * 3);
    }
    println!(
        "verification passed: rows stayed intact through {} passes",
        32 / 8
    );
}
