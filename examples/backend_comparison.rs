//! The paper's core claim, live on your machine: the *same* operator
//! kernels, instantiated per SIMD backend, against their scalar baselines.
//!
//! Prints a small table of throughputs for selection scans, hash-table
//! probing and radix partitioning on every backend this CPU supports.
//!
//! Run with: `cargo run --release --example backend_comparison`

use std::time::Instant;

use rethinking_simd::simd::{dispatch, Backend};
use rethinking_simd::{data, hashtab, partition, scan};

const N: usize = 4 << 20;

fn mtps(n: usize, secs: f64) -> f64 {
    n as f64 / secs / 1e6
}

/// Best of two runs (the first run also pays page faults on fresh output
/// buffers, which would be misattributed to the kernel).
fn best_of_2(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let mut rng = data::rng(7);
    let keys = data::uniform_u32(N, &mut rng);
    let pays: Vec<u32> = (0..N as u32).collect();

    println!("{N} tuples per operator; throughput in million tuples/second\n");
    println!(
        "{:<26} {:>12} {:>12} {:>10}",
        "operator", "backend", "Mtps", "vs scalar"
    );

    // --- selection scan, 10% selectivity --------------------------------
    let (lo, hi) = data::selection_bounds(0.1);
    let pred = scan::ScanPredicate {
        lower: lo,
        upper: hi,
    };
    let mut ok = vec![0u32; N];
    let mut op = vec![0u32; N];
    let scalar = mtps(
        N,
        best_of_2(|| {
            scan::scan_scalar_branching(&keys, &pays, pred, &mut ok, &mut op);
        }),
    );
    println!(
        "{:<26} {:>12} {:>12.0} {:>10}",
        "selection scan (10%)", "scalar", scalar, "1.0x"
    );
    for b in Backend::all_available() {
        let secs = best_of_2(|| {
            dispatch!(b, s => {
                scan::scan_vector_selstore_indirect(s, &keys, &pays, pred, &mut ok, &mut op)
            });
        });
        let v = mtps(N, secs);
        println!(
            "{:<26} {:>12} {:>12.0} {:>9.1}x",
            "",
            b.name(),
            v,
            v / scalar
        );
    }

    // --- linear probing hash table probe --------------------------------
    let n_build = N / 8;
    let bkeys = data::unique_u32(n_build, &mut rng);
    let bpays: Vec<u32> = (0..n_build as u32).collect();
    let mut table = hashtab::LinearTable::new(n_build, 0.5);
    table.build_scalar(&bkeys, &bpays);
    let probe_keys: Vec<u32> = (0..N).map(|i| bkeys[(i * 7) % n_build]).collect();
    let mut sink = hashtab::JoinSink::with_capacity(N + 16);
    let scalar = mtps(
        N,
        best_of_2(|| {
            sink = hashtab::JoinSink::with_capacity(N + 16);
            table.probe_scalar(&probe_keys, &pays, &mut sink);
        }),
    );
    println!(
        "{:<26} {:>12} {:>12.0} {:>10}",
        "hash probe (LP, L2-size)", "scalar", scalar, "1.0x"
    );
    for b in Backend::all_available() {
        let secs = best_of_2(|| {
            let mut sink = hashtab::JoinSink::with_capacity(N + 16);
            dispatch!(b, s => { table.probe_vertical(s, &probe_keys, &pays, &mut sink) });
        });
        let v = mtps(N, secs);
        println!(
            "{:<26} {:>12} {:>12.0} {:>9.1}x",
            "",
            b.name(),
            v,
            v / scalar
        );
    }

    // --- radix partitioning (histogram + buffered shuffle) --------------
    let f = partition::RadixFn::new(0, 8);
    let scalar = mtps(
        N,
        best_of_2(|| {
            let hist = partition::histogram::histogram_scalar(f, &keys);
            partition::shuffle::shuffle_scalar_buffered(f, &keys, &pays, &hist, &mut ok, &mut op);
        }),
    );
    println!(
        "{:<26} {:>12} {:>12.0} {:>10}",
        "radix partition (2^8)", "scalar", scalar, "1.0x"
    );
    for b in Backend::all_available() {
        let secs = best_of_2(|| {
            dispatch!(b, s => {
                let hist = partition::histogram::histogram_vector_replicated(s, f, &keys);
                partition::shuffle::shuffle_vector_buffered(
                    s, f, &keys, &pays, &hist, &mut ok, &mut op,
                );
            });
        });
        let v = mtps(N, secs);
        println!(
            "{:<26} {:>12} {:>12.0} {:>9.1}x",
            "",
            b.name(),
            v,
            v / scalar
        );
    }

    println!("\n(The paper's headline: on wide-SIMD hardware the vertical kernels");
    println!(" reach up to an order of magnitude over scalar; AVX2 gains less —");
    println!(" no scatters — and the portable backend shows pure emulation cost.)");
}
