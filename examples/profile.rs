//! Observability: profile a query and read its work counters.
//!
//! `Engine::profile` runs one query under a metering session and returns
//! a [`QueryProfile`]: the result cardinality plus every operator-level
//! work counter the kernels recorded (tuples scanned, hash slots probed,
//! partitions flushed, sort bytes moved, …). The JSON form is the same
//! row style the bench harness emits (see README "Observability").
//!
//! Run with: `cargo run --release --example profile`

use rethinking_simd::{Engine, Query, Relation};

fn main() {
    let engine = Engine::new().with_threads(2);

    let n = 100_000u32;
    let keys = (0..n).map(|i| i.wrapping_mul(2_654_435_761) >> 8).collect();
    let orders = Relation::with_rid_payloads(keys);

    // Profile a selection scan: which fraction qualified, and how much
    // work did the kernel actually do per tuple?
    let p = engine.profile(Query::Select {
        rel: &orders,
        lower: 1 << 20,
        upper: 1 << 23,
    });
    println!("{}", p.to_json());

    // Profile a sort of the same relation: the counters show the radix
    // pass structure (4 passes × 8 bits over 32-bit keys).
    let p = engine.profile(Query::Sort { rel: &orders });
    println!("{}", p.to_json());

    // Profile a max-partition hash join.
    let lookup = Relation::new(
        (0..4_096u32).map(|i| i.wrapping_mul(48_271)).collect(),
        (0..4_096).collect(),
    );
    let p = engine.profile(Query::HashJoin {
        inner: &lookup,
        outer: &orders,
        variant: rethinking_simd::JoinVariant::MaxPartition,
    });
    println!("{}", p.to_json());
}
