//! Umbrella crate for the SIGMOD 2015 *Rethinking SIMD Vectorization for
//! In-Memory Databases* reproduction.
//!
//! Everything lives in [`rsv_core`] (re-exported here as the crate root):
//! the [`Engine`] convenience API plus direct access to every operator
//! crate (`scan`, `hashtab`, `bloom`, `partition`, `sort`, `join`) and the
//! SIMD substrate (`simd`).
//!
//! See `examples/quickstart.rs` for a tour and `crates/bench` for the
//! binaries regenerating every figure of the paper.

#![deny(missing_docs)]

pub use rsv_core::*;
