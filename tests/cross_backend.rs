//! Every SIMD backend must produce identical results for every operator —
//! the reproduction-level counterpart of the per-op equivalence property
//! tests inside `rsv-simd`.

use rethinking_simd::simd::Backend;
use rethinking_simd::{data, Engine, JoinVariant, Relation};

fn workload(seed: u64) -> (Relation, Relation) {
    let mut rng = data::rng(seed);
    let pool = data::unique_u32(30_000, &mut rng);
    let inner = Relation::with_rid_payloads(pool[..10_000].to_vec());
    let outer_keys: Vec<u32> = (0..50_000).map(|i| pool[(i * 13) % pool.len()]).collect();
    (inner, Relation::with_rid_payloads(outer_keys))
}

#[test]
fn selection_identical_across_backends() {
    let (rel, _) = workload(411);
    let (lo, hi) = data::selection_bounds(0.33);
    let mut reference: Option<Relation> = None;
    for b in Backend::all_available() {
        let out = Engine::with_backend(b).select(&rel, lo, hi);
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(&out, r, "backend {}", b.name()),
        }
    }
}

#[test]
fn joins_identical_across_backends() {
    let (inner, outer) = workload(412);
    let mut reference: Option<((u64, u64), usize)> = None;
    for b in Backend::all_available() {
        for v in JoinVariant::ALL {
            let r = Engine::with_backend(b)
                .with_threads(2)
                .hash_join_variant(&inner, &outer, v);
            let fp = (r.fingerprint(), r.matches());
            match &reference {
                None => reference = Some(fp),
                Some(e) => assert_eq!(&fp, e, "backend {} variant {v:?}", b.name()),
            }
        }
    }
}

#[test]
fn sort_identical_across_backends() {
    let (rel, _) = workload(413);
    let mut reference: Option<Relation> = None;
    for b in Backend::all_available() {
        let mut r = rel.clone();
        Engine::with_backend(b).with_threads(2).sort(&mut r);
        match &reference {
            None => reference = Some(r),
            Some(e) => assert_eq!(&r, e, "backend {}", b.name()),
        }
    }
}

#[test]
fn partitioning_identical_across_backends() {
    let (rel, _) = workload(414);
    let mut reference: Option<(Relation, Vec<u32>)> = None;
    for b in Backend::all_available() {
        let out = Engine::with_backend(b).hash_partition(&rel, 64);
        match &reference {
            None => reference = Some(out),
            Some(e) => assert_eq!(&out, e, "backend {}", b.name()),
        }
    }
}

#[test]
fn bloom_identical_across_backends() {
    let (rel, outer) = workload(415);
    let mut reference: Option<Relation> = None;
    for b in Backend::all_available() {
        let out = Engine::with_backend(b).bloom_semijoin(&outer, &rel.keys);
        // vector probing reorders output: compare as multisets
        let fp = data::multiset_fingerprint(out.iter());
        match &reference {
            None => reference = Some(out),
            Some(e) => {
                assert_eq!(
                    fp,
                    data::multiset_fingerprint(e.iter()),
                    "backend {}",
                    b.name()
                );
            }
        }
    }
}
