//! Cross-crate integration: a full query pipeline (scan → bloom → join →
//! sort) must produce exactly what a naive reference implementation does.

use std::collections::HashMap;

use rethinking_simd::{data, Engine, JoinVariant, Relation};

fn reference_pipeline(facts: &Relation, dims: &Relation, lo: u32, hi: u32) -> Vec<(u32, u32, u32)> {
    let dim_map: HashMap<u32, Vec<u32>> = {
        let mut m: HashMap<u32, Vec<u32>> = HashMap::new();
        for (k, p) in dims.iter() {
            m.entry(k).or_default().push(p);
        }
        m
    };
    let mut rows = Vec::new();
    for (k, p) in facts.iter() {
        if k >= lo && k <= hi {
            if let Some(dps) = dim_map.get(&k) {
                for &dp in dps {
                    rows.push((k, dp, p));
                }
            }
        }
    }
    rows.sort_unstable();
    rows
}

fn build_workload(seed: u64) -> (Relation, Relation) {
    let mut rng = data::rng(seed);
    let pool = data::unique_u32(60_000, &mut rng);
    let dims = Relation::with_rid_payloads(pool[..20_000].to_vec());
    let fact_keys: Vec<u32> = (0..80_000)
        .map(|i| pool[(i * 31 + seed as usize) % pool.len()])
        .collect();
    let facts = Relation::with_rid_payloads(fact_keys);
    (facts, dims)
}

#[test]
fn full_pipeline_matches_reference() {
    let (facts, dims) = build_workload(401);
    let (lo, hi) = data::selection_bounds(0.6);
    let expected = reference_pipeline(&facts, &dims, lo, hi);

    for threads in [1usize, 3] {
        let engine = Engine::new().with_threads(threads);
        let selected = engine.select(&facts, lo, hi);
        let filtered = engine.bloom_semijoin(&selected, &dims.keys);
        // the bloom filter may pass false positives — the join removes them
        assert!(filtered.len() >= expected.len().min(selected.len()));
        let joined = engine.hash_join(&dims, &filtered);

        let mut rows: Vec<(u32, u32, u32)> = joined.sinks.iter().flat_map(|s| s.iter()).collect();
        rows.sort_unstable();
        assert_eq!(rows, expected, "threads={threads}");
    }
}

#[test]
fn all_join_variants_produce_identical_results() {
    let (facts, dims) = build_workload(402);
    let engine = Engine::new().with_threads(2);
    let baseline = engine.hash_join_variant(&dims, &facts, JoinVariant::NoPartition);
    for v in [JoinVariant::MinPartition, JoinVariant::MaxPartition] {
        let r = engine.hash_join_variant(&dims, &facts, v);
        assert_eq!(r.matches(), baseline.matches(), "{v:?}");
        assert_eq!(r.fingerprint(), baseline.fingerprint(), "{v:?}");
    }
}

#[test]
fn group_by_sum_matches_scalar_reference() {
    let mut rng = data::rng(404);
    let keys: Vec<u32> = data::uniform_u32(50_000, &mut rng)
        .iter()
        .map(|k| k % 1_000)
        .collect();
    let pays = data::uniform_u32(50_000, &mut rng);
    let rel = Relation::new(keys, pays);

    let mut expected: std::collections::BTreeMap<u32, (u32, u64)> = Default::default();
    for (k, v) in rel.iter() {
        let e = expected.entry(k).or_default();
        e.0 += 1;
        e.1 += u64::from(v);
    }
    let expected: Vec<(u32, u32, u64)> =
        expected.into_iter().map(|(k, (c, s))| (k, c, s)).collect();

    for threads in [1usize, 3] {
        let engine = Engine::new().with_threads(threads);
        let rows = engine.group_by_sum(&rel, 1_000);
        assert_eq!(rows, expected, "threads={threads}");
        assert!(
            rows.windows(2).all(|w| w[0].0 < w[1].0),
            "not sorted by key"
        );
    }
}

#[test]
fn hash_partition_matches_scalar_reference() {
    let mut rng = data::rng(405);
    let rel = Relation::with_rid_payloads(data::uniform_u32(40_000, &mut rng));
    let fanout = 32usize;

    for threads in [1usize, 3] {
        let engine = Engine::new().with_threads(threads);
        // the scalar reference: a stable bucket sort by partition id
        let mut buckets: Vec<Vec<(u32, u32)>> = vec![Vec::new(); fanout];
        for (k, p) in rel.iter() {
            buckets[engine.hash_partition_of(k, fanout)].push((k, p));
        }
        let mut expected_keys = Vec::with_capacity(rel.len());
        let mut expected_pays = Vec::with_capacity(rel.len());
        let mut expected_starts = Vec::with_capacity(fanout);
        for b in &buckets {
            expected_starts.push(expected_keys.len() as u32);
            for &(k, p) in b {
                expected_keys.push(k);
                expected_pays.push(p);
            }
        }

        let (out, starts) = engine.hash_partition(&rel, fanout);
        assert_eq!(starts, expected_starts, "threads={threads}");
        assert_eq!(out.keys, expected_keys, "threads={threads}");
        assert_eq!(out.payloads, expected_pays, "threads={threads}");
    }
}

#[test]
fn sort_after_join_groups_keys() {
    let (facts, dims) = build_workload(403);
    let engine = Engine::new();
    let joined = engine.hash_join(&dims, &facts);
    let mut rel = Relation::new(
        joined
            .sinks
            .iter()
            .flat_map(|s| s.columns().0.iter().copied())
            .collect(),
        joined
            .sinks
            .iter()
            .flat_map(|s| s.columns().2.iter().copied())
            .collect(),
    );
    engine.sort(&mut rel);
    assert!(rel.keys.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(rel.len(), joined.matches());
}
