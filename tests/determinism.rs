//! Scheduler-determinism harness: every `Engine` operator must produce
//! byte-identical output for every thread count and morsel size.
//!
//! The morsel-driven scheduler keys all intermediate state (histograms,
//! staging buffers, qualifier runs) to *morsel ids* in input order, never
//! to worker ids, so the claim schedule — which workers ran which morsels,
//! and in what interleaving — must be unobservable in the results. Join
//! results are canonicalized by sorting rows first: vectorized probing is
//! inherently unstable in row order, but the row *multiset* must match.

use rethinking_simd::{data, exec::DEFAULT_MORSEL_TUPLES, Engine, JoinVariant, Relation};

const THREADS: [usize; 4] = [1, 2, 3, 8];
const MORSELS: [usize; 3] = [1024, DEFAULT_MORSEL_TUPLES, usize::MAX];

/// Run `op` under every schedule and assert all results are identical.
fn assert_schedule_independent<T: PartialEq + std::fmt::Debug>(
    label: &str,
    mut op: impl FnMut(Engine) -> T,
) {
    let mut reference: Option<T> = None;
    for threads in THREADS {
        for morsel in MORSELS {
            let engine = Engine::new()
                .with_threads(threads)
                .with_morsel_tuples(morsel);
            let got = op(engine);
            match &reference {
                None => reference = Some(got),
                Some(want) => {
                    assert_eq!(
                        &got, want,
                        "{label}: output differs at threads={threads} morsel={morsel}"
                    );
                }
            }
        }
    }
}

fn workload(n: usize, seed: u64) -> Relation {
    let mut rng = data::rng(seed);
    Relation::with_rid_payloads(data::uniform_u32(n, &mut rng))
}

#[test]
fn select_is_schedule_independent() {
    let rel = workload(120_000, 501);
    let (lo, hi) = data::selection_bounds(0.3);
    assert_schedule_independent("select", |e| {
        let out = e.select(&rel, lo, hi);
        (out.keys, out.payloads)
    });
}

#[test]
fn bloom_semijoin_is_schedule_independent() {
    let mut rng = data::rng(502);
    let pool = data::unique_u32(60_000, &mut rng);
    let rel = Relation::with_rid_payloads(pool[20_000..].to_vec());
    let filter_keys = &pool[..30_000];
    assert_schedule_independent("bloom_semijoin", |e| {
        let out = e.bloom_semijoin(&rel, filter_keys);
        (out.keys, out.payloads)
    });
}

#[test]
fn sort_is_schedule_independent() {
    let rel = workload(150_000, 503);
    assert_schedule_independent("sort", |e| {
        let mut r = rel.clone();
        e.sort(&mut r);
        (r.keys, r.payloads)
    });
}

#[test]
fn hash_partition_is_schedule_independent() {
    let rel = workload(100_000, 504);
    assert_schedule_independent("hash_partition", |e| {
        let (out, starts) = e.hash_partition(&rel, 64);
        (out.keys, out.payloads, starts)
    });
}

#[test]
fn group_by_sum_is_schedule_independent() {
    let mut rng = data::rng(505);
    let keys: Vec<u32> = data::uniform_u32(80_000, &mut rng)
        .iter()
        .map(|k| k % 2_000)
        .collect();
    let rel = Relation::new(keys, data::uniform_u32(80_000, &mut rng));
    assert_schedule_independent("group_by_sum", |e| e.group_by_sum(&rel, 2_000));
}

#[test]
fn hash_join_variants_are_schedule_independent() {
    let mut rng = data::rng(506);
    let w = data::join_workload(20_000, 60_000, 1.5, 0.7, &mut rng);
    for variant in JoinVariant::ALL {
        assert_schedule_independent(variant.label(), |e| {
            let r = e.hash_join_variant(&w.inner, &w.outer, variant);
            // canonicalize: vectorized probing has no stable row order
            let mut rows: Vec<(u32, u32, u32)> = r.sinks.iter().flat_map(|s| s.iter()).collect();
            rows.sort_unstable();
            rows
        });
    }
}
