//! Property tests for the compressed column subsystem: canonical packing,
//! lossless round trips, random access, and fused-kernel equivalence with
//! the raw operators — on arbitrary inputs, every backend, every variant.

use rsv_column::{select_fused, CompressedColumn, CompressedRelation};
use rsv_partition::{histogram::histogram_scalar, RadixFn};
use rsv_scan::{scan, ScanPredicate, ScanVariant};
use rsv_simd::Backend;
use rsv_testkit as tk;

/// Values whose block deltas fit a random width, plus full-range values.
fn arbitrary_column(rng: &mut tk::Rng) -> Vec<u32> {
    let n = tk::len_in(rng, 0, 1800);
    match rng.below(4) {
        0 => (0..n).map(|_| rng.next_u32()).collect(),
        1 => {
            // narrow domain: low widths, width-0 constant blocks possible
            let domain = 1 + rng.below(64) as u32;
            (0..n)
                .map(|_| rng.below(u64::from(domain)) as u32)
                .collect()
        }
        2 => {
            // high-bias FOR: huge minimum, small deltas
            let base = u32::MAX - 70_000;
            (0..n).map(|_| base + rng.below(65_536) as u32).collect()
        }
        _ => {
            let bits = 1 + rng.below(32) as u32;
            let mask = if bits == 32 {
                u32::MAX
            } else {
                (1 << bits) - 1
            };
            (0..n).map(|_| rng.next_u32() & mask).collect()
        }
    }
}

#[test]
#[cfg_attr(miri, ignore = "heavy sweep; miri runs the small smoke tests")]
fn packing_is_canonical_and_lossless() {
    tk::check("packing_is_canonical_and_lossless", 96, 0xC01, |rng| {
        let vals = arbitrary_column(rng);
        let reference = CompressedColumn::pack_scalar(&vals);
        assert_eq!(reference.unpack_scalar(), vals, "scalar round trip");
        for backend in Backend::all_available() {
            let col = CompressedColumn::pack(backend, &vals);
            assert_eq!(col, reference, "{} packed bytes", backend.name());
            assert_eq!(col.unpack(backend), vals, "{} unpack", backend.name());
        }
    });
}

#[test]
#[cfg_attr(miri, ignore = "heavy sweep; miri runs the small smoke tests")]
fn random_access_matches_values() {
    tk::check("random_access_matches_values", 64, 0xC02, |rng| {
        let vals = arbitrary_column(rng);
        let col = CompressedColumn::pack_scalar(&vals);
        for _ in 0..64.min(vals.len()) {
            let i = rng.index(vals.len());
            assert_eq!(col.get(i), vals[i], "index {i}");
        }
    });
}

#[test]
#[cfg_attr(miri, ignore = "heavy sweep; miri runs the small smoke tests")]
fn forced_widths_round_trip() {
    tk::check("forced_widths_round_trip", 64, 0xC03, |rng| {
        let bits = 1 + rng.below(32) as u8;
        let mask = if bits == 32 {
            u32::MAX
        } else {
            (1u32 << bits) - 1
        };
        let n = tk::len_in(rng, 0, 1500);
        let vals: Vec<u32> = (0..n).map(|_| rng.next_u32() & mask).collect();
        for backend in Backend::all_available() {
            let col = CompressedColumn::pack_with_width(backend, &vals, bits);
            assert!(col.block_directory().iter().all(|b| b.width == bits));
            assert_eq!(col.unpack(backend), vals, "{} width {bits}", backend.name());
        }
    });
}

#[test]
#[cfg_attr(miri, ignore = "heavy sweep; miri runs the small smoke tests")]
fn fused_select_equals_raw_scan() {
    tk::check("fused_select_equals_raw_scan", 48, 0xC04, |rng| {
        let keys = arbitrary_column(rng);
        let n = keys.len();
        let pays: Vec<u32> = (0..n as u32).collect();
        let lower = rng.next_u32();
        let upper = lower.saturating_add(rng.next_u32() / 2);
        let pred = ScanPredicate { lower, upper };
        for backend in Backend::all_available() {
            let ck = CompressedColumn::pack(backend, &keys);
            let cp = CompressedColumn::pack(backend, &pays);
            for variant in ScanVariant::ALL {
                let mut ek = vec![0u32; n];
                let mut ep = vec![0u32; n];
                let e = scan(backend, variant, &keys, &pays, pred, &mut ek, &mut ep);
                let mut gk = vec![0u32; n];
                let mut gp = vec![0u32; n];
                let g = select_fused(backend, variant, &ck, &cp, pred, &mut gk, &mut gp);
                assert_eq!(g, e, "{} {}", backend.name(), variant.label());
                assert_eq!(&gk[..g], &ek[..e], "{} {}", backend.name(), variant.label());
                assert_eq!(&gp[..g], &ep[..e], "{} {}", backend.name(), variant.label());
            }
        }
    });
}

#[test]
#[cfg_attr(miri, ignore = "heavy sweep; miri runs the small smoke tests")]
fn fused_histogram_equals_scalar() {
    tk::check("fused_histogram_equals_scalar", 48, 0xC05, |rng| {
        let keys = arbitrary_column(rng);
        let bits = 1 + rng.below(10) as u32;
        let shift = rng.below(u64::from(33 - bits)) as u32;
        let f = RadixFn::new(shift, bits);
        let expected = histogram_scalar(f, &keys);
        for backend in Backend::all_available() {
            let col = CompressedColumn::pack(backend, &keys);
            assert_eq!(col.histogram(backend, f), expected, "{}", backend.name());
        }
    });
}

#[test]
#[cfg_attr(miri, ignore = "heavy sweep; miri runs the small smoke tests")]
fn compressed_relation_round_trips() {
    tk::check("compressed_relation_round_trips", 32, 0xC06, |rng| {
        let keys = arbitrary_column(rng);
        let rel = rsv_data::Relation::with_rid_payloads(keys);
        for backend in Backend::all_available() {
            let c = CompressedRelation::compress_with(backend, &rel);
            assert_eq!(c.decompress_with(backend), rel, "{}", backend.name());
        }
    });
}
