//! Small-input smoke tests sized for Miri.
//!
//! The exhaustive sweeps in the unit/property tests are `#[cfg_attr(miri,
//! ignore)]` — interpreting millions of decode steps is not what Miri is
//! for. These cover the same code paths (vector pack/unpack, every fused
//! scan variant, the gather/scatter histogram, and the shared-buffer
//! parallel kernels whose aliasing discipline Miri actually checks) on a
//! couple of blocks so the whole crate stays under a minute interpreted.

use rsv_column::{select_fused, select_fused_parallel, CompressedColumn, BLOCK_LEN};
use rsv_exec::ExecPolicy;
use rsv_partition::{histogram::histogram_scalar, RadixFn};
use rsv_scan::{scan, ScanPredicate, ScanVariant};
use rsv_simd::Backend;

fn small_input(n: usize) -> (Vec<u32>, Vec<u32>) {
    let mut rng = rsv_data::rng(0x51DE);
    let keys: Vec<u32> = (0..n).map(|_| rng.next_u32() % 5_000).collect();
    let pays: Vec<u32> = (0..n as u32).collect();
    (keys, pays)
}

#[test]
fn round_trip_small() {
    let (keys, _) = small_input(BLOCK_LEN + 37);
    for backend in Backend::all_available() {
        let col = CompressedColumn::pack(backend, &keys);
        assert_eq!(col, CompressedColumn::pack_scalar(&keys), "canonical bytes");
        assert_eq!(col.unpack(backend), keys, "{}", backend.name());
        assert_eq!(col.get(BLOCK_LEN + 1), keys[BLOCK_LEN + 1]);
    }
}

#[test]
fn fused_select_small() {
    let (keys, pays) = small_input(BLOCK_LEN + 101);
    let n = keys.len();
    let pred = ScanPredicate {
        lower: 1_000,
        upper: 3_000,
    };
    for backend in Backend::all_available() {
        let ck = CompressedColumn::pack(backend, &keys);
        let cp = CompressedColumn::pack(backend, &pays);
        for variant in ScanVariant::ALL {
            let mut ek = vec![0u32; n];
            let mut ep = vec![0u32; n];
            let e = scan(backend, variant, &keys, &pays, pred, &mut ek, &mut ep);
            let mut gk = vec![0u32; n];
            let mut gp = vec![0u32; n];
            let g = select_fused(backend, variant, &ck, &cp, pred, &mut gk, &mut gp);
            assert_eq!(g, e, "{} {}", backend.name(), variant.label());
            assert_eq!(&gk[..g], &ek[..e]);
            assert_eq!(&gp[..g], &ep[..e]);
        }
    }
}

#[test]
fn fused_histogram_small() {
    let (keys, _) = small_input(BLOCK_LEN + 19);
    let f = RadixFn::new(4, 5);
    let expected = histogram_scalar(f, &keys);
    for backend in Backend::all_available() {
        let col = CompressedColumn::pack(backend, &keys);
        assert_eq!(col.histogram(backend, f), expected);
    }
}

#[test]
fn parallel_select_small() {
    let (keys, pays) = small_input(2 * BLOCK_LEN + 53);
    let n = keys.len();
    let pred = ScanPredicate {
        lower: 500,
        upper: 4_000,
    };
    let backend = Backend::all_available()[0];
    let variant = ScanVariant::VectorSelStoreIndirect;
    let ck = CompressedColumn::pack(backend, &keys);
    let cp = CompressedColumn::pack(backend, &pays);
    let mut ek = vec![0u32; n];
    let mut ep = vec![0u32; n];
    let e = select_fused(backend, variant, &ck, &cp, pred, &mut ek, &mut ep);
    let policy = ExecPolicy::new(2).with_morsel_tuples(BLOCK_LEN);
    let mut gk = vec![0u32; n];
    let mut gp = vec![0u32; n];
    let (g, _) = select_fused_parallel(backend, variant, &ck, &cp, pred, &mut gk, &mut gp, &policy);
    assert_eq!(g, e);
    assert_eq!(&gk[..g], &ek[..e]);
    assert_eq!(&gp[..g], &ep[..e]);
}
