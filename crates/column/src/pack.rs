//! Pack / unpack kernels for the 16-lane interleaved block format.
//!
//! The layout (see the crate docs) is canonical: the scalar reference and
//! every SIMD backend produce byte-identical packed words. The vector
//! kernels exploit the format's central invariant: within any aligned run
//! of `W ≤ 16` values, the bit offset `pos·b` is the *same* for every
//! lane, so one contiguous vector load plus one uniform shift moves `W`
//! packed deltas — two loads when the field straddles a word boundary.

use rsv_simd::Simd;

use crate::{
    assert_lanes, bits_for, width_mask, BlockMeta, CompressedColumn, BLOCK_LEN, FORMAT_LANES,
};

/// The `(min, width)` of one block, honoring a forced width.
///
/// # Panics
/// If `forced` is too narrow for the block's `max − min`.
fn block_meta(vals: &[u32], min: u32, max: u32, forced: Option<u8>) -> (u32, u8) {
    debug_assert!(!vals.is_empty());
    let need = bits_for(max - min);
    let width = match forced {
        None => need,
        Some(f) => {
            assert!(
                f >= need && f <= 32,
                "forced width {f} cannot hold {need}-bit deltas"
            );
            f
        }
    };
    (min, width)
}

/// Scalar-encode one value into a zero-initialized block word region.
#[inline(always)]
pub(crate) fn encode_one(words: &mut [u32], b: u32, min: u32, idx: usize, v: u32) {
    if b == 0 {
        return;
    }
    let delta = v - min;
    debug_assert!(delta <= width_mask(b));
    let lane = idx % FORMAT_LANES;
    let pos = idx / FORMAT_LANES;
    let bit = pos * b as usize;
    let wi = bit / 32;
    let sh = (bit % 32) as u32;
    words[wi * FORMAT_LANES + lane] |= delta << sh;
    if sh + b > 32 {
        words[(wi + 1) * FORMAT_LANES + lane] |= delta >> (32 - sh);
    }
}

/// Scalar-decode the value at block-local index `idx`.
#[inline(always)]
pub(crate) fn decode_one(words: &[u32], b: u32, min: u32, idx: usize) -> u32 {
    if b == 0 {
        return min;
    }
    let lane = idx % FORMAT_LANES;
    let pos = idx / FORMAT_LANES;
    let bit = pos * b as usize;
    let wi = bit / 32;
    let sh = (bit % 32) as u32;
    let mut d = words[wi * FORMAT_LANES + lane] >> sh;
    if sh + b > 32 {
        d |= words[(wi + 1) * FORMAT_LANES + lane] << (32 - sh);
    }
    min + (d & width_mask(b))
}

/// Vector-decode `S::LANES` values starting at block-local index `i`
/// (`i` must be a multiple of `S::LANES`). `minv`/`maskv` are the splat
/// of the block minimum and the width mask.
#[inline(always)]
pub(crate) fn decode_vec<S: Simd>(
    s: S,
    words: &[u32],
    b: u32,
    minv: S::V,
    maskv: S::V,
    i: usize,
) -> S::V {
    debug_assert_eq!(i % S::LANES, 0);
    if b == 0 {
        return minv;
    }
    let lane_start = i % FORMAT_LANES;
    let pos = i / FORMAT_LANES;
    let bit = pos * b as usize;
    let wi = bit / 32;
    let sh = (bit % 32) as u32;
    let base = wi * FORMAT_LANES + lane_start;
    let mut d = s.shr(s.load(&words[base..]), sh);
    if sh + b > 32 {
        d = s.or(d, s.shl(s.load(&words[base + FORMAT_LANES..]), 32 - sh));
    }
    s.add(s.and(d, maskv), minv)
}

/// Scalar reference pack.
pub(crate) fn pack_scalar(values: &[u32], forced: Option<u8>) -> CompressedColumn {
    let mut col = CompressedColumn {
        len: values.len(),
        words: Vec::new(),
        blocks: Vec::new(),
    };
    for chunk in values.chunks(BLOCK_LEN) {
        let min = *chunk.iter().min().unwrap();
        let max = *chunk.iter().max().unwrap();
        let (min, width) = block_meta(chunk, min, max, forced);
        let offset = col.words.len();
        col.words.resize(offset + FORMAT_LANES * width as usize, 0);
        let words = &mut col.words[offset..];
        for (k, &v) in chunk.iter().enumerate() {
            encode_one(words, u32::from(width), min, k, v);
        }
        col.blocks.push(BlockMeta { min, width, offset });
    }
    col
}

/// Vectorized pack: min/max discovery and delta packing run `S::LANES`
/// values at a time; the sub-vector tail of the final block is encoded
/// scalar. Produces the same canonical bytes as [`pack_scalar`].
pub(crate) fn pack_vector<S: Simd>(s: S, values: &[u32], forced: Option<u8>) -> CompressedColumn {
    assert_lanes::<S>();
    let mut col = CompressedColumn {
        len: values.len(),
        words: Vec::new(),
        blocks: Vec::new(),
    };
    s.vectorize(
        #[inline(always)]
        || {
            for chunk in values.chunks(BLOCK_LEN) {
                let (min, max) = min_max_vector(s, chunk);
                let (min, width) = block_meta(chunk, min, max, forced);
                let offset = col.words.len();
                col.words.resize(offset + FORMAT_LANES * width as usize, 0);
                pack_block_vector(s, chunk, min, u32::from(width), &mut col.words[offset..]);
                col.blocks.push(BlockMeta { min, width, offset });
            }
        },
    );
    col
}

/// Vectorized `(min, max)` of a non-empty slice.
fn min_max_vector<S: Simd>(s: S, vals: &[u32]) -> (u32, u32) {
    let w = S::LANES;
    let mut lo = vals[0];
    let mut hi = vals[0];
    let mut i = 0;
    if vals.len() >= w {
        let mut minv = s.load(vals);
        let mut maxv = minv;
        i = w;
        while i + w <= vals.len() {
            let v = s.load(&vals[i..]);
            minv = s.blend(s.cmplt(v, minv), v, minv);
            maxv = s.blend(s.cmpgt(v, maxv), v, maxv);
            i += w;
        }
        let mut a = [0u32; FORMAT_LANES];
        s.store(minv, &mut a[..w]);
        lo = *a[..w].iter().min().unwrap();
        s.store(maxv, &mut a[..w]);
        hi = *a[..w].iter().max().unwrap();
    }
    for &v in &vals[i..] {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

/// Pack one block's values into its zeroed word region, vectorized.
fn pack_block_vector<S: Simd>(s: S, vals: &[u32], min: u32, b: u32, words: &mut [u32]) {
    debug_assert_eq!(words.len(), FORMAT_LANES * b as usize);
    if b == 0 {
        return;
    }
    let w = S::LANES;
    let minv = s.splat(min);
    let mut i = 0;
    while i + w <= vals.len() {
        let lane_start = i % FORMAT_LANES;
        let pos = i / FORMAT_LANES;
        let bit = pos * b as usize;
        let wi = bit / 32;
        let sh = (bit % 32) as u32;
        let d = s.sub(s.load(&vals[i..]), minv);
        let base = wi * FORMAT_LANES + lane_start;
        let cur = s.load(&words[base..]);
        s.store(s.or(cur, s.shl(d, sh)), &mut words[base..]);
        if sh + b > 32 {
            let base2 = base + FORMAT_LANES;
            let cur2 = s.load(&words[base2..]);
            s.store(s.or(cur2, s.shr(d, 32 - sh)), &mut words[base2..]);
        }
        i += w;
    }
    for (k, &v) in vals.iter().enumerate().skip(i) {
        encode_one(words, b, min, k, v);
    }
}

/// Scalar reference unpack.
pub(crate) fn unpack_scalar(col: &CompressedColumn) -> Vec<u32> {
    let mut out = vec![0u32; col.len];
    for (bi, blk) in col.blocks.iter().enumerate() {
        rsv_metrics::count_blocks_decoded(usize::from(blk.width), 1);
        let start = bi * BLOCK_LEN;
        let blk_len = (col.len - start).min(BLOCK_LEN);
        let words = &col.words[blk.offset..];
        for (k, o) in out[start..start + blk_len].iter_mut().enumerate() {
            *o = decode_one(words, u32::from(blk.width), blk.min, k);
        }
    }
    out
}

/// Vectorized unpack.
pub(crate) fn unpack_vector<S: Simd>(s: S, col: &CompressedColumn) -> Vec<u32> {
    assert_lanes::<S>();
    let mut out = vec![0u32; col.len];
    s.vectorize(
        #[inline(always)]
        || {
            let w = S::LANES;
            for (bi, blk) in col.blocks.iter().enumerate() {
                rsv_metrics::count_blocks_decoded(usize::from(blk.width), 1);
                let start = bi * BLOCK_LEN;
                let blk_len = (col.len - start).min(BLOCK_LEN);
                let b = u32::from(blk.width);
                let words = &col.words[blk.offset..blk.offset + FORMAT_LANES * b as usize];
                let minv = s.splat(blk.min);
                let maskv = s.splat(width_mask(b));
                let mut off = 0;
                while off + w <= blk_len {
                    let v = decode_vec(s, words, b, minv, maskv, off);
                    s.store(v, &mut out[start + off..]);
                    off += w;
                }
                for (k, o) in out[start + off..start + blk_len].iter_mut().enumerate() {
                    *o = decode_one(words, b, blk.min, off + k);
                }
            }
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsv_simd::Portable;

    fn forced_fit(n: usize, width: u8, seed: u64) -> Vec<u32> {
        let mut rng = rsv_data::rng(seed);
        let mask = width_mask(u32::from(width));
        let base = if width == 32 {
            0
        } else {
            rng.next_u32() & !mask
        };
        (0..n).map(|_| base + (rng.next_u32() & mask)).collect()
    }

    #[test]
    #[cfg_attr(miri, ignore = "heavy sweep; miri runs the small smoke tests")]
    fn scalar_roundtrip_every_width() {
        for width in 1..=32u8 {
            for n in [
                0usize,
                1,
                15,
                17,
                BLOCK_LEN,
                BLOCK_LEN + 37,
                2 * BLOCK_LEN + 3,
            ] {
                let vals = forced_fit(n, width, 0xC0 + u64::from(width));
                let col = pack_scalar(&vals, Some(width));
                assert_eq!(unpack_scalar(&col), vals, "width {width} n {n}");
                if n > 0 {
                    assert!(col.blocks.iter().all(|b| b.width == width));
                }
            }
        }
    }

    #[test]
    fn natural_width_is_minimal() {
        let vals: Vec<u32> = (0..BLOCK_LEN as u32).map(|i| 1000 + i % 300).collect();
        let col = pack_scalar(&vals, None);
        assert_eq!(col.blocks.len(), 1);
        assert_eq!(col.blocks[0].min, 1000);
        assert_eq!(col.blocks[0].width, bits_for(299));
        assert_eq!(unpack_scalar(&col), vals);
    }

    #[test]
    #[cfg_attr(miri, ignore = "heavy sweep; miri runs the small smoke tests")]
    fn vector_pack_matches_scalar_bytes() {
        let widths = [1u8, 2, 3, 5, 7, 8, 11, 16, 17, 23, 31, 32];
        for &width in &widths {
            for n in [1usize, 16, 511, 512, 513, 1200] {
                let vals = forced_fit(n, width, 0xBEEF + u64::from(width));
                let reference = pack_scalar(&vals, Some(width));
                let s8 = Portable::<8>::new();
                let s16 = Portable::<16>::new();
                assert_eq!(
                    pack_vector(s8, &vals, Some(width)),
                    reference,
                    "8-lane width {width} n {n}"
                );
                assert_eq!(
                    pack_vector(s16, &vals, Some(width)),
                    reference,
                    "16-lane width {width} n {n}"
                );
                assert_eq!(unpack_vector(s8, &reference), vals);
                assert_eq!(unpack_vector(s16, &reference), vals);
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn forced_width_too_narrow_panics() {
        let _ = pack_scalar(&[0, 1 << 20], Some(4));
    }

    #[test]
    fn empty_column() {
        let col = pack_scalar(&[], None);
        assert_eq!(col.len, 0);
        assert!(col.words.is_empty());
        assert!(col.blocks.is_empty());
        assert!(unpack_scalar(&col).is_empty());
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn accelerated_backends_match_scalar() {
        let vals = forced_fit(3 * BLOCK_LEN + 91, 13, 99);
        let reference = pack_scalar(&vals, None);
        if let Some(s) = rsv_simd::Avx512::new() {
            assert_eq!(pack_vector(s, &vals, None), reference);
            assert_eq!(unpack_vector(s, &reference), vals);
        }
        if let Some(s) = rsv_simd::Avx2::new() {
            assert_eq!(pack_vector(s, &vals, None), reference);
            assert_eq!(unpack_vector(s, &reference), vals);
        }
    }
}
