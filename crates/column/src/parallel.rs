//! Morsel-driven parallel fused kernels.
//!
//! Both entry points snap interior morsel boundaries to [`BLOCK_LEN`], so
//! every morsel starts on a block boundary and no block is split across
//! workers — each morsel decodes its blocks independently. Results are
//! schedule-independent: the fused scan compacts per-morsel qualifier
//! runs in morsel order (identical to the sequential scan's output), and
//! the histogram merges per-worker counts by commutative addition.

use rsv_exec::{parallel_scope_stats, ExecPolicy, MorselQueue, SchedulerStats, SharedBuffer};
use rsv_partition::PartitionFn;
use rsv_scan::{ScanPredicate, ScanVariant};
use rsv_simd::{Backend, Simd};

use crate::{
    histogram_fused_range_into, reduce_partial, select_fused_range, CompressedColumn, BLOCK_LEN,
};

/// Parallel fused compressed selection scan.
///
/// `out_keys` / `out_pays` must have the column length; qualifiers end up
/// at their front (input order preserved) and the qualifier count is
/// returned alongside per-worker scheduler stats. Output matches the
/// sequential [`select_fused`](crate::select_fused) byte for byte at any
/// thread count.
#[allow(clippy::too_many_arguments)]
pub fn select_fused_parallel(
    backend: Backend,
    variant: ScanVariant,
    keys: &CompressedColumn,
    pays: &CompressedColumn,
    pred: ScanPredicate,
    out_keys: &mut Vec<u32>,
    out_pays: &mut Vec<u32>,
    policy: &ExecPolicy,
) -> (usize, SchedulerStats) {
    assert_eq!(keys.len(), pays.len(), "column length mismatch");
    assert_eq!(out_keys.len(), keys.len(), "output length mismatch");
    assert_eq!(out_pays.len(), pays.len(), "output length mismatch");
    let n = keys.len();
    let t = policy.threads;

    // Block-aligned morsels: every morsel starts at a multiple of
    // BLOCK_LEN, which select_fused_range requires.
    let q = MorselQueue::new(n, policy, BLOCK_LEN);
    let m = q.morsel_count();
    let counts = SharedBuffer::from_vec(vec![0usize; m]);
    let ok_buf = SharedBuffer::from_vec(std::mem::take(out_keys));
    let op_buf = SharedBuffer::from_vec(std::mem::take(out_pays));
    let (_, stats) = parallel_scope_stats(t, |ctx| {
        // SAFETY: each morsel writes only the output region at its own
        // input offsets plus its own count slot, and every morsel id is
        // claimed exactly once; reads happen after the scope joins.
        let (ok, op, cs) = unsafe { (ok_buf.view_mut(), op_buf.view_mut(), counts.view_mut()) };
        for mo in ctx.morsels(&q) {
            ctx.phase("fused-scan", || {
                let r = mo.range.clone();
                let c = select_fused_range(
                    backend,
                    variant,
                    keys,
                    pays,
                    pred,
                    r.clone(),
                    &mut ok[r.clone()],
                    &mut op[r],
                );
                cs[mo.id] = c;
            });
        }
    });

    // Compact the per-morsel runs front-to-back. Runs only move left
    // (dest ≤ src), so processing in morsel order never clobbers a run
    // that has not been moved yet.
    let counts = counts.into_vec();
    let mut ok = ok_buf.into_vec();
    let mut op = op_buf.into_vec();
    let mut dest = 0usize;
    for (id, &c) in counts.iter().enumerate() {
        let src = q.range_of(id).start;
        if src != dest {
            ok.copy_within(src..src + c, dest);
            op.copy_within(src..src + c, dest);
        }
        dest += c;
    }
    *out_keys = ok;
    *out_pays = op;
    (dest, stats)
}

/// Parallel fused compressed histogram: per-worker replicated partial
/// counts over block-aligned morsels, merged by addition (commutative, so
/// the result is independent of the steal schedule).
pub fn histogram_fused_parallel<F: PartitionFn + Send + Sync>(
    backend: Backend,
    col: &CompressedColumn,
    f: F,
    policy: &ExecPolicy,
) -> (Vec<u32>, SchedulerStats) {
    let q = MorselQueue::new(col.len(), policy, BLOCK_LEN);
    let (hists, stats) = parallel_scope_stats(policy.threads, |ctx| {
        rsv_simd::dispatch!(backend, s => {
            let mut partial = vec![0u32; f.fanout() * S::LANES];
            for mo in ctx.morsels(&q) {
                ctx.phase("fused-histogram", || {
                    histogram_fused_range_into(s, col, f, mo.range.clone(), &mut partial);
                });
            }
            reduce_partial(s, &partial, f.fanout())
        })
    });
    let mut hist = vec![0u32; f.fanout()];
    for h in hists {
        for (a, b) in hist.iter_mut().zip(h) {
            *a += b;
        }
    }
    (hist, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select_fused;
    use rsv_partition::{histogram::histogram_scalar, RadixFn};

    #[test]
    #[cfg_attr(miri, ignore = "heavy sweep; miri runs the small smoke tests")]
    fn parallel_fused_scan_matches_sequential() {
        let mut rng = rsv_data::rng(0x5EED);
        let n = 37 * BLOCK_LEN + 451;
        let keys: Vec<u32> = rsv_data::uniform_u32(n, &mut rng)
            .iter()
            .map(|k| k % 10_000)
            .collect();
        let pays: Vec<u32> = (0..n as u32).collect();
        let pred = ScanPredicate {
            lower: 1_000,
            upper: 4_000,
        };
        let backend = Backend::best();
        let ck = CompressedColumn::pack(backend, &keys);
        let cp = CompressedColumn::pack(backend, &pays);
        let variant = ScanVariant::VectorSelStoreIndirect;
        let mut ek = vec![0u32; n];
        let mut ep = vec![0u32; n];
        let en = select_fused(backend, variant, &ck, &cp, pred, &mut ek, &mut ep);
        for threads in [1usize, 2, 3, 8] {
            for morsel in [700usize, 4 * BLOCK_LEN, usize::MAX] {
                let policy = ExecPolicy::new(threads).with_morsel_tuples(morsel);
                let mut gk = vec![0u32; n];
                let mut gp = vec![0u32; n];
                let (gn, stats) = select_fused_parallel(
                    backend, variant, &ck, &cp, pred, &mut gk, &mut gp, &policy,
                );
                assert_eq!(gn, en, "t={threads} morsel={morsel}");
                assert_eq!(&gk[..gn], &ek[..en]);
                assert_eq!(&gp[..gn], &ep[..en]);
                assert_eq!(stats.total_tuples(), n as u64);
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "heavy sweep; miri runs the small smoke tests")]
    fn parallel_fused_histogram_matches_scalar() {
        let mut rng = rsv_data::rng(0x4157);
        let n = 23 * BLOCK_LEN + 77;
        let keys = rsv_data::uniform_u32(n, &mut rng);
        let f = RadixFn::new(20, 9);
        let expected = histogram_scalar(f, &keys);
        let backend = Backend::best();
        let col = CompressedColumn::pack(backend, &keys);
        for threads in [1usize, 2, 8] {
            let policy = ExecPolicy::new(threads).with_morsel_tuples(3 * BLOCK_LEN);
            let (got, _) = histogram_fused_parallel(backend, &col, f, &policy);
            assert_eq!(got, expected, "t={threads}");
        }
    }
}
