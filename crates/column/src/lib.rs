//! SIMD bit-packed compressed column storage with fused
//! decompress-and-operate kernels.
//!
//! The paper's vertical kernels (selection scan §4, histogram §7) read
//! uncompressed 32-bit columns, so at production scale they are
//! memory-bandwidth-bound long before the SIMD lanes saturate. Following
//! Lemire & Boytsov ("Decoding billions of integers per second through
//! vectorization"), horizontal SIMD bit-packing decodes far faster than
//! memory can deliver raw values — so a compressed column layer is a net
//! throughput win for bandwidth-bound operators, not a tax.
//!
//! # Block format
//!
//! A column is split into blocks of [`BLOCK_LEN`] = 512 values. Each block
//! is **frame-of-reference** encoded: the block minimum is subtracted and
//! the deltas are bit-packed with the smallest width `b` (0–32 bits) that
//! fits the block's largest delta. Block `minimum`, `width` and word
//! `offset` live in a per-block directory ([`BlockMeta`]), giving O(1)
//! random access.
//!
//! Within a block, value `i` belongs to **format lane** `i % 16` at
//! **position** `i / 16`: sixteen interleaved bitstreams of 32 positions
//! each, so a full block packs to exactly `16 × b` words with zero
//! padding waste at every width. Word `w` of lane `l` is stored at
//! `words[w·16 + l]`. Because the position — and therefore the bit offset
//! `pos·b` — is uniform across any aligned run of ≤ 16 lanes, both the
//! 8-lane (AVX2) and 16-lane (AVX-512/portable) backends decode with
//! contiguous vector loads and *uniform* shifts: no gathers, no per-lane
//! shift counts. See DESIGN.md §5c.
//!
//! # Fused kernels
//!
//! [`select_fused`] and [`histogram_fused`] decompress one vector of
//! values into registers and feed it straight into the paper's vertical
//! operators without materializing the column. All six [`ScanVariant`]s
//! are reachable; the indirect variants decode payloads *per qualifier*
//! through the random-access directory, never touching payload blocks
//! whose tuples all fail the predicate. Parallel runs go through
//! `rsv-exec`'s morsel scheduler with morsel boundaries snapped to block
//! boundaries ([`select_fused_parallel`], [`histogram_fused_parallel`]).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod diff;
mod fused;
mod pack;
mod parallel;

pub use fused::{
    histogram_fused, histogram_fused_into, histogram_fused_range_into, reduce_partial,
    select_fused, select_fused_range,
};
pub use parallel::{histogram_fused_parallel, select_fused_parallel};

use rsv_data::Relation;
use rsv_scan::{ScanPredicate, ScanVariant};
use rsv_simd::{dispatch, Backend, Simd};

/// Tuples per compressed block (16 format lanes × 32 positions).
pub const BLOCK_LEN: usize = FORMAT_LANES * POSITIONS;

/// Interleave factor of the packed layout: value `i` of a block lives in
/// format lane `i % FORMAT_LANES`. Fixed at 16 so the layout is identical
/// no matter which backend packed it; backends with fewer lanes (AVX2's 8)
/// cover a format position with multiple vectors.
pub const FORMAT_LANES: usize = 16;

/// Bit-packed positions per format lane per block. 32 positions × `b` bits
/// fill exactly `b` 32-bit words, so no width wastes padding bits.
pub const POSITIONS: usize = 32;

/// Per-block directory entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockMeta {
    /// Frame-of-reference offset: the smallest value in the block.
    pub min: u32,
    /// Packed bits per value (0–32). Width 0 means every value equals
    /// `min` and the block stores no words.
    pub width: u8,
    /// Start of this block's words in [`CompressedColumn::words`].
    pub offset: usize,
}

/// A bit-packed, frame-of-reference compressed `u32` column.
///
/// Built by [`CompressedColumn::pack`] (any backend produces byte-identical
/// packed words), decoded wholesale by [`CompressedColumn::unpack`], by
/// random access ([`CompressedColumn::get`]), or — the point of the
/// exercise — operated on directly by the fused kernels
/// ([`CompressedColumn::select`] via [`CompressedRelation`],
/// [`CompressedColumn::histogram`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedColumn {
    pub(crate) len: usize,
    /// All blocks' packed words, concatenated (block `i` owns
    /// `words[blocks[i].offset ..][..16 * width]`).
    pub(crate) words: Vec<u32>,
    pub(crate) blocks: Vec<BlockMeta>,
}

impl CompressedColumn {
    /// Compress with per-block natural widths on the given backend.
    ///
    /// The packed bytes are canonical: every backend produces the same
    /// words for the same input.
    pub fn pack(backend: Backend, values: &[u32]) -> CompressedColumn {
        dispatch!(backend, s => { pack::pack_vector(s, values, None) })
    }

    /// Compress forcing every block to `width` bits.
    ///
    /// # Panics
    /// If any block's `max − min` needs more than `width` bits.
    pub fn pack_with_width(backend: Backend, values: &[u32], width: u8) -> CompressedColumn {
        dispatch!(backend, s => { pack::pack_vector(s, values, Some(width)) })
    }

    /// Scalar reference compressor (same canonical bytes as [`pack`]).
    ///
    /// [`pack`]: CompressedColumn::pack
    pub fn pack_scalar(values: &[u32]) -> CompressedColumn {
        pack::pack_scalar(values, None)
    }

    /// Scalar reference compressor with a forced width.
    pub fn pack_scalar_with_width(values: &[u32], width: u8) -> CompressedColumn {
        pack::pack_scalar(values, Some(width))
    }

    /// Decompress the whole column on the given backend.
    pub fn unpack(&self, backend: Backend) -> Vec<u32> {
        dispatch!(backend, s => { pack::unpack_vector(s, self) })
    }

    /// Scalar reference decompressor.
    pub fn unpack_scalar(&self) -> Vec<u32> {
        pack::unpack_scalar(self)
    }

    /// Random access: the value at index `i`, decoded through the block
    /// directory in O(1).
    ///
    /// # Panics
    /// If `i >= self.len()`.
    pub fn get(&self, i: usize) -> u32 {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let blk = &self.blocks[i / BLOCK_LEN];
        pack::decode_one(
            &self.words[blk.offset..],
            u32::from(blk.width),
            blk.min,
            i % BLOCK_LEN,
        )
    }

    /// Fused compressed histogram (paper §7.1 over compressed input): one
    /// count per partition of `f`, without materializing the column.
    pub fn histogram<F: rsv_partition::PartitionFn>(&self, backend: Backend, f: F) -> Vec<u32> {
        dispatch!(backend, s => { histogram_fused(s, self, f) })
    }

    /// Number of (logical, uncompressed) values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of blocks (including a possibly partial tail block).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The per-block directory.
    pub fn block_directory(&self) -> &[BlockMeta] {
        &self.blocks
    }

    /// The packed words of all blocks.
    pub fn packed_words(&self) -> &[u32] {
        &self.words
    }

    /// Bytes of packed words plus directory.
    pub fn packed_bytes(&self) -> usize {
        self.words.len() * 4 + self.blocks.len() * std::mem::size_of::<BlockMeta>()
    }

    /// Uncompressed bytes over compressed bytes (∞-free: empty columns
    /// report 1.0).
    pub fn compression_ratio(&self) -> f64 {
        if self.len == 0 {
            return 1.0;
        }
        (self.len * 4) as f64 / self.packed_bytes() as f64
    }

    /// The largest block width in the column (0 for an empty column).
    pub fn max_width(&self) -> u8 {
        self.blocks.iter().map(|b| b.width).max().unwrap_or(0)
    }
}

/// A [`Relation`] with both columns compressed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedRelation {
    /// Compressed key column.
    pub keys: CompressedColumn,
    /// Compressed payload column.
    pub payloads: CompressedColumn,
}

impl CompressedRelation {
    /// Compress a relation on the given backend.
    pub fn compress_with(backend: Backend, rel: &Relation) -> CompressedRelation {
        CompressedRelation {
            keys: CompressedColumn::pack(backend, &rel.keys),
            payloads: CompressedColumn::pack(backend, &rel.payloads),
        }
    }

    /// Compress a relation on the best available backend.
    pub fn compress(rel: &Relation) -> CompressedRelation {
        Self::compress_with(Backend::best(), rel)
    }

    /// Decompress back into a materialized relation.
    pub fn decompress_with(&self, backend: Backend) -> Relation {
        Relation::new(self.keys.unpack(backend), self.payloads.unpack(backend))
    }

    /// [`decompress_with`](Self::decompress_with) on the best backend.
    pub fn decompress(&self) -> Relation {
        self.decompress_with(Backend::best())
    }

    /// Fused compressed selection scan (paper §4 over compressed input):
    /// qualifiers of `lower ≤ key ≤ upper` land at the front of
    /// `out_keys` / `out_pays` (input order), and the qualifier count is
    /// returned. Output is byte-identical to running `variant` on the
    /// decompressed columns.
    ///
    /// # Panics
    /// If the output slices are shorter than `self.len()`.
    pub fn select(
        &self,
        backend: Backend,
        variant: ScanVariant,
        pred: ScanPredicate,
        out_keys: &mut [u32],
        out_pays: &mut [u32],
    ) -> usize {
        select_fused(
            backend,
            variant,
            &self.keys,
            &self.payloads,
            pred,
            out_keys,
            out_pays,
        )
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Compressed bytes of both columns.
    pub fn packed_bytes(&self) -> usize {
        self.keys.packed_bytes() + self.payloads.packed_bytes()
    }

    /// Uncompressed bytes over compressed bytes across both columns.
    pub fn compression_ratio(&self) -> f64 {
        if self.is_empty() {
            return 1.0;
        }
        (self.len() * 8) as f64 / self.packed_bytes() as f64
    }
}

/// `Relation`-level compression entry points (`rel.compress()`), so callers
/// do not need to name [`CompressedRelation`].
pub trait RelationCompressExt {
    /// Compress both columns on the best available backend.
    fn compress(&self) -> CompressedRelation;
    /// Compress both columns on a specific backend.
    fn compress_with(&self, backend: Backend) -> CompressedRelation;
}

impl RelationCompressExt for Relation {
    fn compress(&self) -> CompressedRelation {
        CompressedRelation::compress(self)
    }
    fn compress_with(&self, backend: Backend) -> CompressedRelation {
        CompressedRelation::compress_with(backend, self)
    }
}

/// The packed-delta mask for a width (`width ≤ 32`).
#[inline(always)]
pub(crate) fn width_mask(width: u32) -> u32 {
    if width >= 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    }
}

/// Bits needed to store `delta` (0 for 0).
#[inline(always)]
pub(crate) fn bits_for(delta: u32) -> u8 {
    (32 - delta.leading_zeros()) as u8
}

/// Instantiation guard for the generic kernels: the fixed 16-lane format
/// is decodable with uniform shifts only when the backend width divides
/// [`FORMAT_LANES`]. Every real backend (8- and 16-lane, and the portable
/// power-of-two widths) satisfies this.
#[inline(always)]
pub(crate) fn assert_lanes<S: Simd>() {
    assert!(
        S::LANES <= FORMAT_LANES && FORMAT_LANES.is_multiple_of(S::LANES),
        "backend width {} does not divide the {FORMAT_LANES}-lane block format",
        S::LANES
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_constants_are_consistent() {
        assert_eq!(BLOCK_LEN, 512);
        assert_eq!(FORMAT_LANES * POSITIONS, BLOCK_LEN);
        // 32 positions × b bits is always a whole number of words.
        for b in 0..=32usize {
            assert_eq!(POSITIONS * b % 32, 0);
        }
    }

    #[test]
    fn width_mask_and_bits() {
        assert_eq!(width_mask(0), 0);
        assert_eq!(width_mask(1), 1);
        assert_eq!(width_mask(31), u32::MAX >> 1);
        assert_eq!(width_mask(32), u32::MAX);
        assert_eq!(bits_for(0), 0);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u32::MAX), 32);
    }

    #[test]
    #[cfg_attr(miri, ignore = "heavy sweep; miri runs the small smoke tests")]
    fn relation_round_trips_through_compression() {
        let mut rng = rsv_data::rng(42);
        let rel = Relation::with_rid_payloads(rsv_data::uniform_u32(3000, &mut rng));
        for backend in Backend::all_available() {
            let c = rel.compress_with(backend);
            assert_eq!(c.decompress_with(backend), rel, "{}", backend.name());
            assert_eq!(c.len(), rel.len());
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "heavy sweep; miri runs the small smoke tests")]
    fn rid_payloads_compress_well() {
        // 512 consecutive rids per block span 511 => 9-bit deltas.
        let rel = Relation::with_rid_payloads(vec![7u32; 1 << 16]);
        let c = CompressedRelation::compress(&rel);
        assert_eq!(c.keys.max_width(), 0, "constant keys pack to width 0");
        assert_eq!(c.payloads.max_width(), 9, "rid payloads pack to 9 bits");
        assert!(c.compression_ratio() > 3.0);
    }

    #[test]
    #[cfg_attr(miri, ignore = "heavy sweep; miri runs the small smoke tests")]
    fn get_matches_unpack() {
        let mut rng = rsv_data::rng(7);
        let vals = rsv_data::uniform_u32(BLOCK_LEN * 2 + 37, &mut rng);
        let c = CompressedColumn::pack_scalar(&vals);
        let round = c.unpack_scalar();
        assert_eq!(round, vals);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(c.get(i), v, "index {i}");
        }
    }
}
