//! Differential-harness registration for the compressed-column kernels.
//!
//! Three ops cover the subsystem:
//!
//! * `column-roundtrip` — the packed bytes are canonical (every backend
//!   must produce the scalar reference's exact words, directory included)
//!   and unpacking them restores the input, whether decoded wholesale,
//!   vectorized, or by random access.
//! * `column-select-fused` — the fused compressed scan must match the
//!   scalar scan over the raw column byte-for-byte (ordered qualifiers)
//!   for all six variants plus the morsel-parallel run.
//! * `column-histogram-fused` — the fused compressed histogram must match
//!   the scalar histogram over the raw column, sequential and parallel.

use rsv_exec::ExecPolicy;
use rsv_partition::{histogram::histogram_scalar, RadixFn};
use rsv_scan::{scan_scalar_branching, ScanPredicate, ScanVariant};
use rsv_simd::Backend;
use rsv_testkit::diff::{ordered_pairs, put_len, put_u32s, CaseInput, DiffOp, Kernel, Registry};

use crate::{select_fused, select_fused_parallel, CompressedColumn, CompressedRelation};

/// Canonical bytes of a compressed column plus its decoded values:
/// length, directory (min/width/offset per block), packed words, values.
fn encode_column(col: &CompressedColumn, values: &[u32]) -> Vec<u8> {
    let mut out = Vec::new();
    put_len(&mut out, col.len());
    put_len(&mut out, col.block_count());
    for b in col.block_directory() {
        put_u32s(&mut out, &[b.min, u32::from(b.width)]);
        put_len(&mut out, b.offset);
    }
    put_len(&mut out, col.packed_words().len());
    put_u32s(&mut out, col.packed_words());
    put_u32s(&mut out, values);
    out
}

fn roundtrip_reference(input: &CaseInput) -> Vec<u8> {
    let col = CompressedColumn::pack_scalar(&input.keys);
    let values = col.unpack_scalar();
    encode_column(&col, &values)
}

fn pred(input: &CaseInput) -> ScanPredicate {
    ScanPredicate {
        lower: input.bounds.0,
        upper: input.bounds.1,
    }
}

/// The radix function for the fused histogram, derived from the case
/// seed like every other case parameter.
fn radix(input: &CaseInput) -> RadixFn {
    let bits = 1 + (input.seed % 10) as u32;
    let shift = ((input.seed >> 8) % u64::from(33 - bits)) as u32;
    RadixFn::new(shift, bits)
}

fn select_reference(input: &CaseInput) -> Vec<u8> {
    let n = input.keys.len();
    let mut ok = vec![0u32; n];
    let mut op = vec![0u32; n];
    let c = scan_scalar_branching(&input.keys, &input.pays, pred(input), &mut ok, &mut op);
    ordered_pairs(&ok[..c], &op[..c])
}

fn run_select_variant(backend: Backend, variant: ScanVariant, input: &CaseInput) -> Vec<u8> {
    let ck = CompressedColumn::pack(backend, &input.keys);
    let cp = CompressedColumn::pack(backend, &input.pays);
    let n = input.keys.len();
    let mut ok = vec![0u32; n];
    let mut op = vec![0u32; n];
    let c = select_fused(backend, variant, &ck, &cp, pred(input), &mut ok, &mut op);
    ordered_pairs(&ok[..c], &op[..c])
}

fn run_select_parallel(backend: Backend, threads: usize, input: &CaseInput) -> Vec<u8> {
    let rel = rsv_data::Relation::new(input.keys.clone(), input.pays.clone());
    let c = CompressedRelation::compress_with(backend, &rel);
    let n = rel.len();
    let mut ok = vec![0u32; n];
    let mut op = vec![0u32; n];
    let (count, _) = select_fused_parallel(
        backend,
        ScanVariant::VectorSelStoreIndirect,
        &c.keys,
        &c.payloads,
        pred(input),
        &mut ok,
        &mut op,
        &ExecPolicy::new(threads),
    );
    ordered_pairs(&ok[..count], &op[..count])
}

fn histogram_reference(input: &CaseInput) -> Vec<u8> {
    let hist = histogram_scalar(radix(input), &input.keys);
    let mut out = Vec::new();
    put_len(&mut out, hist.len());
    put_u32s(&mut out, &hist);
    out
}

macro_rules! select_kernel {
    ($name:literal, $variant:ident) => {
        Kernel {
            name: $name,
            threaded: false,
            run: |b, _, i| run_select_variant(b, ScanVariant::$variant, i),
        }
    };
}

/// Register the compressed-column operators.
pub fn register(r: &mut Registry) {
    r.register(DiffOp {
        name: "column-roundtrip",
        reference: roundtrip_reference,
        kernels: vec![
            Kernel {
                name: "vector-pack-scalar-unpack",
                threaded: false,
                run: |b, _, i| {
                    let col = CompressedColumn::pack(b, &i.keys);
                    let values = col.unpack_scalar();
                    encode_column(&col, &values)
                },
            },
            Kernel {
                name: "scalar-pack-vector-unpack",
                threaded: false,
                run: |b, _, i| {
                    let col = CompressedColumn::pack_scalar(&i.keys);
                    let values = col.unpack(b);
                    encode_column(&col, &values)
                },
            },
            Kernel {
                name: "vector-roundtrip",
                threaded: false,
                run: |b, _, i| {
                    let col = CompressedColumn::pack(b, &i.keys);
                    let values = col.unpack(b);
                    encode_column(&col, &values)
                },
            },
            Kernel {
                name: "random-access",
                threaded: false,
                run: |b, _, i| {
                    let col = CompressedColumn::pack(b, &i.keys);
                    let values: Vec<u32> = (0..col.len()).map(|k| col.get(k)).collect();
                    encode_column(&col, &values)
                },
            },
        ],
    });
    r.register(DiffOp {
        name: "column-select-fused",
        reference: select_reference,
        kernels: vec![
            select_kernel!("fused-scalar-branching", ScalarBranching),
            select_kernel!("fused-scalar-branchless", ScalarBranchless),
            select_kernel!("fused-bitextract-direct", VectorBitExtractDirect),
            select_kernel!("fused-selstore-direct", VectorSelStoreDirect),
            select_kernel!("fused-bitextract-indirect", VectorBitExtractIndirect),
            select_kernel!("fused-selstore-indirect", VectorSelStoreIndirect),
            Kernel {
                name: "parallel-fused-selstore-indirect",
                threaded: true,
                run: run_select_parallel,
            },
        ],
    });
    r.register(DiffOp {
        name: "column-histogram-fused",
        reference: histogram_reference,
        kernels: vec![
            Kernel {
                name: "fused",
                threaded: false,
                run: |b, _, i| {
                    let col = CompressedColumn::pack(b, &i.keys);
                    let hist = col.histogram(b, radix(i));
                    let mut out = Vec::new();
                    put_len(&mut out, hist.len());
                    put_u32s(&mut out, &hist);
                    out
                },
            },
            Kernel {
                name: "parallel-fused",
                threaded: true,
                run: |b, t, i| {
                    let col = CompressedColumn::pack(b, &i.keys);
                    let (hist, _) =
                        crate::histogram_fused_parallel(b, &col, radix(i), &ExecPolicy::new(t));
                    let mut out = Vec::new();
                    put_len(&mut out, hist.len());
                    put_u32s(&mut out, &hist);
                    out
                },
            },
        ],
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radix_params_always_valid() {
        for seed in 0..2_000u64 {
            let input = CaseInput {
                seed,
                keys: vec![],
                pays: vec![],
                build_keys: vec![],
                build_pays: vec![],
                bounds: (0, 0),
                fanout: 1,
                capacity: 1,
                load_factor: 0.5,
            };
            // RadixFn::new panics on an invalid bit range.
            let _ = radix(&input);
        }
    }

    #[test]
    fn registration_smoke() {
        let mut r = Registry::new();
        register(&mut r);
        assert_eq!(r.ops().len(), 3);
    }
}
