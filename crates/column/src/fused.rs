//! Fused decompress-and-operate kernels.
//!
//! Each kernel walks the block directory, decodes one vector of values
//! into registers with [`decode_vec`](crate::pack) and feeds it straight
//! into the paper's vertical operator — the decompressed column is never
//! materialized. Output is byte-identical to running the raw operator on
//! the decompressed column, for every variant and backend.

use std::ops::Range;

use rsv_partition::PartitionFn;
use rsv_scan::{scan_scalar_branching, scan_scalar_branchless, ScanPredicate, ScanVariant};
use rsv_simd::{dispatch, Backend, MaskLike, Simd};

use crate::pack::{decode_one, decode_vec};
use crate::{assert_lanes, width_mask, BlockMeta, CompressedColumn, BLOCK_LEN, FORMAT_LANES};

/// Qualifier-index buffer size for the indirect variants (matches the
/// raw scan's cache-resident buffer).
const BUF_LEN: usize = 1024;

/// One block's decode parameters, hoisted out of the inner loop.
struct BlockCtx<'a, S: Simd> {
    words: &'a [u32],
    width: u32,
    min: u32,
    minv: S::V,
    maskv: S::V,
}

impl<'a, S: Simd> BlockCtx<'a, S> {
    #[inline(always)]
    fn new(s: S, col: &'a CompressedColumn, blk: &BlockMeta) -> Self {
        let width = u32::from(blk.width);
        rsv_metrics::count_blocks_decoded(width as usize, 1);
        BlockCtx {
            words: &col.words[blk.offset..blk.offset + FORMAT_LANES * width as usize],
            width,
            min: blk.min,
            minv: s.splat(blk.min),
            maskv: s.splat(width_mask(width)),
        }
    }

    #[inline(always)]
    fn decode(&self, s: S, off: usize) -> S::V {
        decode_vec(s, self.words, self.width, self.minv, self.maskv, off)
    }

    #[inline(always)]
    fn decode_one(&self, off: usize) -> u32 {
        decode_one(self.words, self.width, self.min, off)
    }
}

fn check_range(col: &CompressedColumn, range: &Range<usize>) {
    assert!(
        range.start <= range.end && range.end <= col.len,
        "range {range:?} out of bounds (len {})",
        col.len
    );
    assert_eq!(
        range.start % BLOCK_LEN,
        0,
        "range start must be block-aligned"
    );
}

/// Fused compressed selection scan over the whole column pair.
///
/// Qualifiers of `pred` land at the front of `out_keys` / `out_pays` in
/// input order; the qualifier count is returned. Byte-identical to
/// running `variant` on the decompressed columns.
///
/// # Panics
/// If the columns differ in length, the outputs are shorter than the
/// column, or the column exceeds `u32::MAX` tuples (row ids are 32-bit).
pub fn select_fused(
    backend: Backend,
    variant: ScanVariant,
    keys: &CompressedColumn,
    pays: &CompressedColumn,
    pred: ScanPredicate,
    out_keys: &mut [u32],
    out_pays: &mut [u32],
) -> usize {
    select_fused_range(
        backend,
        variant,
        keys,
        pays,
        pred,
        0..keys.len,
        out_keys,
        out_pays,
    )
}

/// [`select_fused`] over `range` (`range.start` must be block-aligned,
/// which morsel boundaries snapped to [`BLOCK_LEN`] guarantee).
/// Qualifiers land at the *front* of the output slices.
#[allow(clippy::too_many_arguments)]
pub fn select_fused_range(
    backend: Backend,
    variant: ScanVariant,
    keys: &CompressedColumn,
    pays: &CompressedColumn,
    pred: ScanPredicate,
    range: Range<usize>,
    out_keys: &mut [u32],
    out_pays: &mut [u32],
) -> usize {
    assert_eq!(keys.len, pays.len, "column length mismatch");
    assert!(
        keys.len <= u32::MAX as usize,
        "fused scan row ids are 32-bit"
    );
    check_range(keys, &range);
    let n = range.end - range.start;
    assert!(
        n == 0 || (out_keys.len() >= n && out_pays.len() >= n),
        "output slices shorter than the scanned range"
    );
    match variant {
        ScanVariant::ScalarBranching => {
            select_scalar(keys, pays, pred, false, range, out_keys, out_pays)
        }
        ScanVariant::ScalarBranchless => {
            select_scalar(keys, pays, pred, true, range, out_keys, out_pays)
        }
        ScanVariant::VectorBitExtractDirect => dispatch!(backend, s => {
            select_vector_direct(s, keys, pays, pred, false, range, out_keys, out_pays)
        }),
        ScanVariant::VectorSelStoreDirect => dispatch!(backend, s => {
            select_vector_direct(s, keys, pays, pred, true, range, out_keys, out_pays)
        }),
        ScanVariant::VectorBitExtractIndirect => dispatch!(backend, s => {
            select_vector_indirect(s, keys, pays, pred, false, range, out_keys, out_pays)
        }),
        ScanVariant::VectorSelStoreIndirect => dispatch!(backend, s => {
            select_vector_indirect(s, keys, pays, pred, true, range, out_keys, out_pays)
        }),
    }
}

/// Scalar fused scan: decode one block into stack buffers, then run the
/// paper's scalar kernel (Algorithm 1 or 2) over the buffer.
fn select_scalar(
    keys: &CompressedColumn,
    pays: &CompressedColumn,
    pred: ScanPredicate,
    branchless: bool,
    range: Range<usize>,
    out_keys: &mut [u32],
    out_pays: &mut [u32],
) -> usize {
    let mut kbuf = [0u32; BLOCK_LEN];
    let mut pbuf = [0u32; BLOCK_LEN];
    let mut j = 0;
    let mut start = range.start;
    while start < range.end {
        let bi = start / BLOCK_LEN;
        let blk_len = (range.end - start).min(BLOCK_LEN);
        let kb = &keys.blocks[bi];
        let pb = &pays.blocks[bi];
        rsv_metrics::count_blocks_decoded(usize::from(kb.width), 1);
        rsv_metrics::count_blocks_decoded(usize::from(pb.width), 1);
        let kwords = &keys.words[kb.offset..];
        let pwords = &pays.words[pb.offset..];
        for t in 0..blk_len {
            kbuf[t] = decode_one(kwords, u32::from(kb.width), kb.min, t);
            pbuf[t] = decode_one(pwords, u32::from(pb.width), pb.min, t);
        }
        let c = if branchless {
            scan_scalar_branchless(
                &kbuf[..blk_len],
                &pbuf[..blk_len],
                pred,
                &mut out_keys[j..],
                &mut out_pays[j..],
            )
        } else {
            scan_scalar_branching(
                &kbuf[..blk_len],
                &pbuf[..blk_len],
                pred,
                &mut out_keys[j..],
                &mut out_pays[j..],
            )
        };
        j += c;
        start += blk_len;
    }
    j
}

/// Vectorized fused scan, direct materialization: decode the key vector,
/// evaluate the predicate, and decode the payload vector only when some
/// lane qualifies.
#[allow(clippy::too_many_arguments)]
fn select_vector_direct<S: Simd>(
    s: S,
    keys: &CompressedColumn,
    pays: &CompressedColumn,
    pred: ScanPredicate,
    selstore: bool,
    range: Range<usize>,
    out_keys: &mut [u32],
    out_pays: &mut [u32],
) -> usize {
    assert_lanes::<S>();
    s.vectorize(
        #[inline(always)]
        || {
            let w = S::LANES;
            let lower = s.splat(pred.lower);
            let upper = s.splat(pred.upper);
            let mut j = 0;
            let mut start = range.start;
            while start < range.end {
                let bi = start / BLOCK_LEN;
                let blk_len = (range.end - start).min(BLOCK_LEN);
                let kc: BlockCtx<'_, S> = BlockCtx::new(s, keys, &keys.blocks[bi]);
                let pc: BlockCtx<'_, S> = BlockCtx::new(s, pays, &pays.blocks[bi]);
                let mut off = 0;
                while off + w <= blk_len {
                    let k = kc.decode(s, off);
                    let m = s.cmpge(k, lower).and(s.cmple(k, upper));
                    if m.any() {
                        let v = pc.decode(s, off);
                        if selstore {
                            s.selective_store(&mut out_keys[j..], m, k);
                            j += s.selective_store(&mut out_pays[j..], m, v);
                        } else {
                            for lane in m.iter_set() {
                                out_keys[j] = s.extract(k, lane);
                                out_pays[j] = s.extract(v, lane);
                                j += 1;
                            }
                        }
                    }
                    off += w;
                }
                for t in off..blk_len {
                    let kv = kc.decode_one(t);
                    if pred.matches(kv) {
                        out_keys[j] = kv;
                        out_pays[j] = pc.decode_one(t);
                        j += 1;
                    }
                }
                start += blk_len;
            }
            j
        },
    )
}

/// Vectorized fused scan, indirect materialization (Algorithm 3 over
/// compressed input): buffer qualifying row ids in a cache-resident
/// buffer; on flush, decode key and payload per qualifier through the
/// O(1) random-access directory. Payload blocks whose tuples all fail
/// the predicate are never touched.
#[allow(clippy::too_many_arguments)]
fn select_vector_indirect<S: Simd>(
    s: S,
    keys: &CompressedColumn,
    pays: &CompressedColumn,
    pred: ScanPredicate,
    selstore: bool,
    range: Range<usize>,
    out_keys: &mut [u32],
    out_pays: &mut [u32],
) -> usize {
    assert_lanes::<S>();
    s.vectorize(
        #[inline(always)]
        || {
            let w = S::LANES;
            let lower = s.splat(pred.lower);
            let upper = s.splat(pred.upper);
            let step = s.splat(w as u32);
            let mut buf = [0u32; BUF_LEN];
            let mut l = 0usize;
            let mut j = 0usize;
            let mut start = range.start;
            while start < range.end {
                let bi = start / BLOCK_LEN;
                let blk_len = (range.end - start).min(BLOCK_LEN);
                let kc: BlockCtx<'_, S> = BlockCtx::new(s, keys, &keys.blocks[bi]);
                let mut rid = s.add(s.splat(start as u32), s.iota());
                let mut off = 0;
                while off + w <= blk_len {
                    let k = kc.decode(s, off);
                    let m = s.cmpge(k, lower).and(s.cmple(k, upper));
                    if selstore {
                        if m.any() {
                            l += s.selective_store(&mut buf[l..], m, rid);
                        }
                    } else {
                        for lane in m.iter_set() {
                            buf[l] = (start + off + lane) as u32;
                            l += 1;
                        }
                    }
                    if l > BUF_LEN - w {
                        j = flush_rids(&buf[..BUF_LEN - w], keys, pays, out_keys, out_pays, j);
                        buf.copy_within(BUF_LEN - w..l, 0);
                        l -= BUF_LEN - w;
                    }
                    rid = s.add(rid, step);
                    off += w;
                }
                for t in off..blk_len {
                    if pred.matches(kc.decode_one(t)) {
                        buf[l] = (start + t) as u32;
                        l += 1;
                        if l > BUF_LEN - w {
                            j = flush_rids(&buf[..BUF_LEN - w], keys, pays, out_keys, out_pays, j);
                            buf.copy_within(BUF_LEN - w..l, 0);
                            l -= BUF_LEN - w;
                        }
                    }
                }
                start += blk_len;
            }
            flush_rids(&buf[..l], keys, pays, out_keys, out_pays, j)
        },
    )
}

/// Drain buffered row ids: decode key and payload per qualifier through
/// the block directory.
fn flush_rids(
    rids: &[u32],
    keys: &CompressedColumn,
    pays: &CompressedColumn,
    out_keys: &mut [u32],
    out_pays: &mut [u32],
    mut j: usize,
) -> usize {
    for &rid in rids {
        let rid = rid as usize;
        out_keys[j] = keys.get(rid);
        out_pays[j] = pays.get(rid);
        j += 1;
    }
    j
}

/// Fused compressed histogram (Algorithm 11 over compressed input) with
/// `W`-way replicated counts: one count per partition of `f`.
pub fn histogram_fused<S: Simd, F: PartitionFn>(s: S, col: &CompressedColumn, f: F) -> Vec<u32> {
    let mut partial = vec![0u32; f.fanout() * S::LANES];
    histogram_fused_range_into(s, col, f, 0..col.len, &mut partial);
    reduce_partial(s, &partial, f.fanout())
}

/// Accumulate the whole column into a replicated partial-count array of
/// `f.fanout() × S::LANES` entries (reduce with [`reduce_partial`]).
pub fn histogram_fused_into<S: Simd, F: PartitionFn>(
    s: S,
    col: &CompressedColumn,
    f: F,
    partial: &mut [u32],
) {
    histogram_fused_range_into(s, col, f, 0..col.len, partial);
}

/// Accumulate `range` of the column into a replicated partial-count
/// array. `range.start` must be block-aligned; partial counts from
/// disjoint ranges sum to the whole column's counts, which is what makes
/// the parallel merge schedule-independent.
pub fn histogram_fused_range_into<S: Simd, F: PartitionFn>(
    s: S,
    col: &CompressedColumn,
    f: F,
    range: Range<usize>,
    partial: &mut [u32],
) {
    assert_lanes::<S>();
    let w = S::LANES;
    assert_eq!(
        partial.len(),
        f.fanout() * w,
        "partial counts must be fanout × lanes"
    );
    check_range(col, &range);
    s.vectorize(
        #[inline(always)]
        || {
            let lane = s.iota();
            let wv = s.splat(w as u32);
            let one = s.splat(1);
            let mut start = range.start;
            while start < range.end {
                let bi = start / BLOCK_LEN;
                let blk_len = (range.end - start).min(BLOCK_LEN);
                let bc: BlockCtx<'_, S> = BlockCtx::new(s, col, &col.blocks[bi]);
                let mut off = 0;
                while off + w <= blk_len {
                    let k = bc.decode(s, off);
                    let h = f.partition_vector(s, k);
                    // lane j increments partial[p·W + j]: conflict-free
                    let idx = s.add(s.mullo(h, wv), lane);
                    let c = s.gather(partial, idx);
                    s.scatter(partial, idx, s.add(c, one));
                    off += w;
                }
                for t in off..blk_len {
                    partial[f.partition(bc.decode_one(t)) * w] += 1;
                }
                start += blk_len;
            }
        },
    );
}

/// Sum each partition's `W` replicated counts into one.
pub fn reduce_partial<S: Simd>(s: S, partial: &[u32], fanout: usize) -> Vec<u32> {
    let w = S::LANES;
    assert_eq!(partial.len(), fanout * w);
    let mut hist = vec![0u32; fanout];
    for (p, h) in hist.iter_mut().enumerate() {
        *h = s.reduce_add_u64(s.load(&partial[p * w..])) as u32;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsv_partition::{histogram::histogram_scalar, RadixFn};
    use rsv_scan::scan;

    fn workload(n: usize, seed: u64) -> (Vec<u32>, Vec<u32>) {
        let mut rng = rsv_data::rng(seed);
        let keys = rsv_data::uniform_u32(n, &mut rng);
        let pays: Vec<u32> = (0..n as u32).collect();
        (keys, pays)
    }

    #[test]
    #[cfg_attr(miri, ignore = "heavy sweep; miri runs the small smoke tests")]
    fn fused_select_matches_raw_scan_everywhere() {
        for n in [0usize, 1, 17, BLOCK_LEN, 2 * BLOCK_LEN + 37] {
            let (keys, pays) = workload(n, 0xF00D + n as u64);
            for sel in [0.0, 0.05, 0.5, 1.0] {
                let (lower, upper) = rsv_data::selection_bounds(sel);
                let pred = ScanPredicate { lower, upper };
                for backend in Backend::all_available() {
                    let ck = CompressedColumn::pack(backend, &keys);
                    let cp = CompressedColumn::pack(backend, &pays);
                    for variant in ScanVariant::ALL {
                        let mut ek = vec![0u32; n];
                        let mut ep = vec![0u32; n];
                        let en = scan(backend, variant, &keys, &pays, pred, &mut ek, &mut ep);
                        let mut gk = vec![0u32; n];
                        let mut gp = vec![0u32; n];
                        let gn = select_fused(backend, variant, &ck, &cp, pred, &mut gk, &mut gp);
                        assert_eq!(
                            gn,
                            en,
                            "{} {} n={n} sel={sel}",
                            backend.name(),
                            variant.label()
                        );
                        assert_eq!(&gk[..gn], &ek[..en]);
                        assert_eq!(&gp[..gn], &ep[..en]);
                    }
                }
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "heavy sweep; miri runs the small smoke tests")]
    fn fused_range_scans_one_morsel() {
        let (keys, pays) = workload(4 * BLOCK_LEN + 99, 7);
        let pred = ScanPredicate {
            lower: 0,
            upper: u32::MAX / 3,
        };
        let backend = Backend::best();
        let ck = CompressedColumn::pack(backend, &keys);
        let cp = CompressedColumn::pack(backend, &pays);
        let range = BLOCK_LEN..3 * BLOCK_LEN;
        let mut ek = vec![0u32; keys.len()];
        let mut ep = vec![0u32; keys.len()];
        let en = rsv_scan::scan_scalar_branching(
            &keys[range.clone()],
            &pays[range.clone()],
            pred,
            &mut ek,
            &mut ep,
        );
        for variant in ScanVariant::ALL {
            let mut gk = vec![0u32; range.len()];
            let mut gp = vec![0u32; range.len()];
            let gn = select_fused_range(
                backend,
                variant,
                &ck,
                &cp,
                pred,
                range.clone(),
                &mut gk,
                &mut gp,
            );
            assert_eq!(gn, en, "{}", variant.label());
            assert_eq!(&gk[..gn], &ek[..en]);
            assert_eq!(&gp[..gn], &ep[..en]);
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "heavy sweep; miri runs the small smoke tests")]
    fn indirect_buffer_overflow_drains_in_order() {
        // All-qualifying input much larger than BUF_LEN forces repeated
        // mid-scan flushes.
        let n = 5 * BUF_LEN + 3;
        let (keys, pays) = workload(n, 11);
        let pred = ScanPredicate {
            lower: 0,
            upper: u32::MAX,
        };
        for backend in Backend::all_available() {
            let ck = CompressedColumn::pack(backend, &keys);
            let cp = CompressedColumn::pack(backend, &pays);
            for variant in [
                ScanVariant::VectorBitExtractIndirect,
                ScanVariant::VectorSelStoreIndirect,
            ] {
                let mut gk = vec![0u32; n];
                let mut gp = vec![0u32; n];
                let gn = select_fused(backend, variant, &ck, &cp, pred, &mut gk, &mut gp);
                assert_eq!(gn, n);
                assert_eq!(gk, keys, "{}", backend.name());
                assert_eq!(gp, pays);
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "heavy sweep; miri runs the small smoke tests")]
    fn fused_histogram_matches_scalar() {
        for n in [0usize, 1, 31, BLOCK_LEN, 3 * BLOCK_LEN + 5] {
            let (keys, _) = workload(n, 0xAB + n as u64);
            for f in [RadixFn::new(0, 6), RadixFn::new(13, 8), RadixFn::new(24, 8)] {
                let expected = histogram_scalar(f, &keys);
                for backend in Backend::all_available() {
                    let col = CompressedColumn::pack(backend, &keys);
                    assert_eq!(
                        col.histogram(backend, f),
                        expected,
                        "{} n={n}",
                        backend.name()
                    );
                }
            }
        }
    }
}
