//! Property tests: the three join variants, scalar and vector, agree with
//! each other and with a `HashMap` reference on arbitrary workloads.

use proptest::prelude::*;
use rsv_data::Relation;
use rsv_join::{join_max_partition, join_min_partition, join_no_partition};
use rsv_simd::Backend;
use std::collections::HashMap;

fn reference(inner: &Relation, outer: &Relation) -> ((u64, u64), usize) {
    let mut map: HashMap<u32, Vec<u32>> = HashMap::new();
    for (k, p) in inner.iter() {
        map.entry(k).or_default().push(p);
    }
    let mut rows = Vec::new();
    for (k, p) in outer.iter() {
        if let Some(b) = map.get(&k) {
            for &bp in b {
                rows.push((k, bp, p));
            }
        }
    }
    let n = rows.len();
    (rsv_data::multiset_fingerprint(rows), n)
}

fn key_strategy() -> impl Strategy<Value = u32> {
    // narrow domain to force repeats + misses; avoid the empty sentinel
    prop_oneof![0u32..64, any::<u32>().prop_map(|k| k % (u32::MAX - 1))]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_variants_match_reference(
        inner_keys in proptest::collection::vec(key_strategy(), 1..150),
        outer_keys in proptest::collection::vec(key_strategy(), 0..300),
        threads in 1usize..4,
    ) {
        let inner = Relation::with_rid_payloads(inner_keys);
        let outer = Relation::with_rid_payloads(outer_keys);
        let (expected_fp, expected_n) = reference(&inner, &outer);
        let backend = Backend::best();
        rsv_simd::dispatch!(backend, s => {
            for vectorized in [false, true] {
                let r = join_no_partition(s, vectorized, &inner, &outer, threads);
                prop_assert_eq!(r.matches(), expected_n, "no-partition vec={}", vectorized);
                prop_assert_eq!(r.fingerprint(), expected_fp);

                let r = join_min_partition(s, vectorized, &inner, &outer, threads);
                prop_assert_eq!(r.matches(), expected_n, "min-partition vec={}", vectorized);
                prop_assert_eq!(r.fingerprint(), expected_fp);

                let r = join_max_partition(s, vectorized, &inner, &outer, threads);
                prop_assert_eq!(r.matches(), expected_n, "max-partition vec={}", vectorized);
                prop_assert_eq!(r.fingerprint(), expected_fp);
            }
        });
    }
}
