//! Property tests: the three join variants, scalar and vector, agree with
//! each other and with a `HashMap` reference on arbitrary workloads.

use rsv_data::Relation;
use rsv_join::{join_max_partition, join_min_partition, join_no_partition};
use rsv_simd::Backend;
use rsv_testkit as tk;
use std::collections::HashMap;

fn reference(inner: &Relation, outer: &Relation) -> ((u64, u64), usize) {
    let mut map: HashMap<u32, Vec<u32>> = HashMap::new();
    for (k, p) in inner.iter() {
        map.entry(k).or_default().push(p);
    }
    let mut rows = Vec::new();
    for (k, p) in outer.iter() {
        if let Some(b) = map.get(&k) {
            for &bp in b {
                rows.push((k, bp, p));
            }
        }
    }
    let n = rows.len();
    (rsv_data::multiset_fingerprint(rows), n)
}

/// Keys in a narrow domain to force repeats + misses; avoid the empty
/// sentinel.
fn join_keys(rng: &mut tk::Rng, min_len: usize, max_len: usize) -> Vec<u32> {
    let n = tk::len_in(rng, min_len, max_len);
    (0..n).map(|_| tk::key_not_sentinel(rng, 64)).collect()
}

#[test]
fn all_variants_match_reference() {
    tk::check("all_variants_match_reference", 24, 0x1011, |rng| {
        let inner_keys = join_keys(rng, 1, 150);
        let outer_keys = join_keys(rng, 0, 300);
        let threads = 1 + rng.index(3);

        let inner = Relation::with_rid_payloads(inner_keys);
        let outer = Relation::with_rid_payloads(outer_keys);
        let (expected_fp, expected_n) = reference(&inner, &outer);
        let backend = Backend::best();
        rsv_simd::dispatch!(backend, s => {
            for vectorized in [false, true] {
                let r = join_no_partition(s, vectorized, &inner, &outer, threads);
                assert_eq!(r.matches(), expected_n, "no-partition vec={vectorized}");
                assert_eq!(r.fingerprint(), expected_fp);

                let r = join_min_partition(s, vectorized, &inner, &outer, threads);
                assert_eq!(r.matches(), expected_n, "min-partition vec={vectorized}");
                assert_eq!(r.fingerprint(), expected_fp);

                let r = join_max_partition(s, vectorized, &inner, &outer, threads);
                assert_eq!(r.matches(), expected_n, "max-partition vec={vectorized}");
                assert_eq!(r.fingerprint(), expected_fp);
            }
        });
    });
}
