//! The *no-partition* hash join (paper §9): one shared linear-probing
//! table built concurrently with atomic compare-and-swap inserts, then
//! probed read-only.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rsv_data::Relation;
use rsv_exec::{
    expect_infallible, parallel_scope_try, EngineError, ExecPolicy, MorselQueue, SchedulerStats,
};
use rsv_hashtab::{
    lp_probe_scalar_raw, lp_probe_vertical_raw, JoinSink, MulHash, EMPTY_KEY, EMPTY_PAIR,
};
use rsv_simd::Simd;

use crate::{JoinResult, JoinTimings};

/// Insert one tuple into the shared table with a CAS loop over the linear
/// probe chain.
#[inline]
fn atomic_insert(table: &[AtomicU64], hash: MulHash, key: u32, pay: u32) {
    assert_ne!(
        key, EMPTY_KEY,
        "key {key:#x} is the reserved empty sentinel"
    );
    let t = table.len();
    let pair = u64::from(key) | (u64::from(pay) << 32);
    let mut h = hash.bucket(key, t);
    loop {
        let cur = table[h].load(Ordering::Relaxed);
        if cur as u32 == EMPTY_KEY
            && table[h]
                .compare_exchange(cur, pair, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            return;
        }
        h += 1;
        if h == t {
            h = 0;
        }
    }
}

/// Execute the no-partition join. `vectorized` selects the probe kernel;
/// the build is scalar either way (paper: "building the hash table cannot
/// be fully vectorized because atomic operations are not supported in
/// SIMD").
pub fn join_no_partition<S: Simd>(
    s: S,
    vectorized: bool,
    inner: &Relation,
    outer: &Relation,
    threads: usize,
) -> JoinResult {
    join_no_partition_policy(s, vectorized, inner, outer, &ExecPolicy::new(threads)).0
}

/// [`join_no_partition`] with explicit morsel scheduling, returning
/// per-worker scheduler stats.
pub fn join_no_partition_policy<S: Simd>(
    s: S,
    vectorized: bool,
    inner: &Relation,
    outer: &Relation,
    policy: &ExecPolicy,
) -> (JoinResult, SchedulerStats) {
    expect_infallible(join_no_partition_policy_try(
        s, vectorized, inner, outer, policy,
    ))
}

/// Fallible [`join_no_partition_policy`]: honours `policy.run` — the
/// shared hash table is gated by the memory budget, cancellation is
/// observed at every morsel-claim boundary (build and probe), and a
/// worker panic surfaces as [`EngineError::WorkerPanicked`] after the
/// sibling workers drain.
pub fn join_no_partition_policy_try<S: Simd>(
    s: S,
    vectorized: bool,
    inner: &Relation,
    outer: &Relation,
    policy: &ExecPolicy,
) -> Result<(JoinResult, SchedulerStats), EngineError> {
    let t = policy.threads;
    rsv_metrics::count(rsv_metrics::Metric::JoinBuildTuples, inner.len() as u64);
    rsv_metrics::count(rsv_metrics::Metric::JoinProbeTuples, outer.len() as u64);
    let hash = MulHash::nth(0);
    let buckets = (inner.len() * 2).max(inner.len() + 1).max(2);
    let table_bytes = (buckets * std::mem::size_of::<u64>()) as u64;
    policy.run.reserve(table_bytes)?;
    let table: Vec<AtomicU64> = (0..buckets).map(|_| AtomicU64::new(EMPTY_PAIR)).collect();
    // Everything below must release the reservation before returning.
    let release = || policy.run.budget.release(table_bytes);

    // Build: workers claim inner-relation morsels and insert with CAS.
    let t0 = Instant::now();
    let build_q = MorselQueue::new(inner.len(), policy, 1);
    let build_scope = parallel_scope_try(t, |ctx| {
        for mo in ctx.morsels(&build_q) {
            let _ = rsv_testkit::failpoint!("join.build.morsel");
            ctx.phase("build", || {
                for i in mo.range.clone() {
                    atomic_insert(&table, hash, inner.keys[i], inner.payloads[i]);
                }
            });
        }
    });
    let (_, mut stats) = match build_scope {
        Ok(v) => v,
        Err(wp) => {
            release();
            return Err(wp.into_engine_error());
        }
    };
    if let Err(e) = policy.run.check_cancelled() {
        release();
        return Err(e);
    }
    let build = t0.elapsed();

    // The build threads were joined: the table is now plain read-only data.
    // SAFETY: AtomicU64 has the same in-memory representation as u64 and
    // no thread writes the table anymore.
    let pairs: &[u64] =
        unsafe { core::slice::from_raw_parts(table.as_ptr() as *const u64, table.len()) };

    // Probe: workers claim outer-relation morsels; no synchronization
    // needed, matches accumulate in per-worker sinks.
    let t0 = Instant::now();
    let probe_q = MorselQueue::new(outer.len(), policy, S::LANES);
    let probe_scope = parallel_scope_try(t, |ctx| {
        let mut sink = JoinSink::with_capacity(1024);
        for mo in ctx.morsels(&probe_q) {
            let _ = rsv_testkit::failpoint!("join.probe.morsel");
            ctx.phase("probe", || {
                let r = mo.range.clone();
                if vectorized {
                    lp_probe_vertical_raw(
                        s,
                        pairs,
                        hash,
                        &outer.keys[r.clone()],
                        &outer.payloads[r],
                        &mut sink,
                    );
                } else {
                    lp_probe_scalar_raw(
                        pairs,
                        hash,
                        &outer.keys[r.clone()],
                        &outer.payloads[r],
                        &mut sink,
                    );
                }
            });
        }
        sink
    });
    release();
    let (sinks, probe_stats) = match probe_scope {
        Ok(v) => v,
        Err(wp) => return Err(wp.into_engine_error()),
    };
    policy.run.check_cancelled()?;
    let probe = t0.elapsed();
    stats.merge(&probe_stats);

    Ok((
        JoinResult {
            sinks,
            timings: JoinTimings {
                partition: Default::default(),
                build,
                probe,
            },
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{reference_fingerprint, workload};
    use rsv_simd::Portable;

    #[test]
    fn matches_reference_scalar_and_vector() {
        let s = Portable::<16>::new();
        let (inner, outer) = workload(2_000, 10_000, 201);
        let (expected, n) = reference_fingerprint(&inner, &outer);
        for threads in [1usize, 4] {
            for vectorized in [false, true] {
                let r = join_no_partition(s, vectorized, &inner, &outer, threads);
                assert_eq!(r.matches(), n, "threads={threads} vec={vectorized}");
                assert_eq!(r.fingerprint(), expected);
            }
        }
    }

    #[test]
    fn duplicate_inner_keys() {
        let s = Portable::<16>::new();
        let w = rsv_data::join_workload(900, 3_000, 3.0, 0.5, &mut rsv_data::rng(202));
        let (expected, n) = reference_fingerprint(&w.inner, &w.outer);
        let r = join_no_partition(s, true, &w.inner, &w.outer, 2);
        assert_eq!(r.matches(), n);
        assert_eq!(r.fingerprint(), expected);
    }

    #[test]
    fn cancel_and_budget_fail_fast() {
        use rsv_exec::RunContext;
        let s = Portable::<16>::new();
        let (inner, outer) = workload(2_000, 10_000, 204);
        // pre-cancelled run: no phase makes progress
        let run = RunContext::new();
        run.cancel_token().cancel();
        let policy = ExecPolicy::new(4).with_run(run);
        let err = join_no_partition_policy_try(s, true, &inner, &outer, &policy)
            .expect_err("cancelled join must fail");
        assert!(matches!(err, EngineError::Cancelled), "{err}");
        // too-small budget: the shared table reservation is denied cleanly
        let run = RunContext::new().with_memory_limit(64);
        let policy = ExecPolicy::new(4).with_run(run);
        let err = join_no_partition_policy_try(s, true, &inner, &outer, &policy)
            .expect_err("budget must deny the table");
        assert!(matches!(err, EngineError::BudgetExceeded { .. }), "{err}");
        assert_eq!(policy.run.budget.used(), 0);
        // the same engine state still answers the query afterwards
        let (expected, n) = reference_fingerprint(&inner, &outer);
        let r = join_no_partition(s, true, &inner, &outer, 4);
        assert_eq!(r.matches(), n);
        assert_eq!(r.fingerprint(), expected);
    }

    #[test]
    fn empty_relations() {
        let s = Portable::<16>::new();
        let empty = Relation::default();
        let (inner, _) = workload(10, 10, 203);
        let r = join_no_partition(s, true, &inner, &empty, 2);
        assert_eq!(r.matches(), 0);
        let r = join_no_partition(s, true, &empty, &inner, 2);
        assert_eq!(r.matches(), 0);
    }
}
