//! Hash joins (paper Section 9): three variants with different degrees of
//! partitioning, which allow different degrees of vectorization.
//!
//! * [`join_no_partition`] — build one shared table with atomic inserts
//!   (building *cannot* be fully vectorized: SIMD has no atomics), then
//!   probe read-only (vectorizable),
//! * [`join_min_partition`] — partition the inner relation `T` ways to
//!   eliminate atomics; threads build private tables and every probe picks
//!   both a table and a bucket — fully vectorizable,
//! * [`join_max_partition`] — recursively partition *both* relations until
//!   the inner parts fit a cache-resident hash table; build and probe in
//!   cache — fully vectorizable, and the paper's overall winner.
//!
//! All variants emit `(key, inner payload, outer payload)` triples into
//! per-thread [`JoinSink`]s and report a per-phase timing breakdown
//! (the Figure 15 stacked bars).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod diff;
mod max_partition;
mod min_partition;
mod no_partition;

pub use max_partition::{
    join_max_partition, join_max_partition_policy, join_max_partition_policy_try,
    join_max_partition_with_target, DEFAULT_PART_TUPLES,
};
pub use min_partition::{
    join_min_partition, join_min_partition_policy, join_min_partition_policy_try,
};
pub use no_partition::{join_no_partition, join_no_partition_policy, join_no_partition_policy_try};

use rsv_hashtab::JoinSink;
use std::time::Duration;

/// Per-phase wall-clock breakdown of one join execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinTimings {
    /// Partitioning both/either relation (zero for the no-partition join).
    pub partition: Duration,
    /// Hash table build.
    pub build: Duration,
    /// Probing (including output materialization).
    pub probe: Duration,
}

impl JoinTimings {
    /// Total join time.
    pub fn total(&self) -> Duration {
        self.partition + self.build + self.probe
    }
}

/// The output of a join: one sink per worker thread plus timings.
#[derive(Debug)]
pub struct JoinResult {
    /// Per-thread result sinks (concatenation order is unspecified —
    /// vectorized probing is unstable anyway).
    pub sinks: Vec<JoinSink>,
    /// Phase breakdown.
    pub timings: JoinTimings,
}

impl JoinResult {
    /// Total number of result tuples.
    pub fn matches(&self) -> usize {
        self.sinks.iter().map(|s| s.len()).sum()
    }

    /// Order-independent fingerprint of the result multiset.
    pub fn fingerprint(&self) -> (u64, u64) {
        rsv_data::multiset_fingerprint(self.sinks.iter().flat_map(|s| s.iter()))
    }
}

/// The three join variants (paper Section 9), for experiment sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinVariant {
    /// Shared table, atomic build.
    NoPartition,
    /// Inner relation partitioned per thread.
    MinPartition,
    /// Both relations partitioned to cache-resident parts.
    MaxPartition,
}

impl JoinVariant {
    /// All variants in Figure 15's order.
    pub const ALL: [JoinVariant; 3] = [
        JoinVariant::NoPartition,
        JoinVariant::MinPartition,
        JoinVariant::MaxPartition,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            JoinVariant::NoPartition => "no-partition",
            JoinVariant::MinPartition => "min-partition",
            JoinVariant::MaxPartition => "max-partition",
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use rsv_data::Relation;
    use std::collections::HashMap;

    pub fn workload(nb: usize, np: usize, seed: u64) -> (Relation, Relation) {
        let w = rsv_data::join_workload(nb, np, 1.0, 0.9, &mut rsv_data::rng(seed));
        (w.inner, w.outer)
    }

    pub fn reference_fingerprint(inner: &Relation, outer: &Relation) -> ((u64, u64), usize) {
        let mut map: HashMap<u32, Vec<u32>> = HashMap::new();
        for (k, p) in inner.iter() {
            map.entry(k).or_default().push(p);
        }
        let mut rows: Vec<(u32, u32, u32)> = Vec::new();
        for (k, p) in outer.iter() {
            if let Some(b) = map.get(&k) {
                for &bp in b {
                    rows.push((k, bp, p));
                }
            }
        }
        let n = rows.len();
        (rsv_data::multiset_fingerprint(rows), n)
    }
}
