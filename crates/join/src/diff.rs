//! Differential-harness registration for the three join variants.
//!
//! The reference is an independent std-`HashMap` hash join, so the
//! differential check does not share a hash table, a build loop, or a
//! probe loop with any kernel under test. Join output order is
//! unspecified (vectorized probing is unstable and sinks are
//! per-thread), so results compare as sorted triple multisets.

use crate::{join_max_partition, join_min_partition, join_no_partition, JoinResult};
use rsv_data::Relation;
use rsv_simd::dispatch;
use rsv_testkit::diff::{canonical_triples, CaseInput, DiffOp, Kernel, Registry};
use std::collections::HashMap;

fn relations(input: &CaseInput) -> (Relation, Relation) {
    (
        Relation::new(input.build_keys.clone(), input.build_pays.clone()),
        Relation::new(input.keys.clone(), input.pays.clone()),
    )
}

fn reference(input: &CaseInput) -> Vec<u8> {
    let mut map: HashMap<u32, Vec<u32>> = HashMap::new();
    for (&k, &p) in input.build_keys.iter().zip(&input.build_pays) {
        map.entry(k).or_default().push(p);
    }
    let mut triples: Vec<(u32, u32, u32)> = Vec::new();
    for (&k, &p) in input.keys.iter().zip(&input.pays) {
        if let Some(inner_pays) = map.get(&k) {
            for &ip in inner_pays {
                triples.push((k, ip, p));
            }
        }
    }
    canonical_triples(triples)
}

fn result_bytes(res: JoinResult) -> Vec<u8> {
    canonical_triples(res.sinks.iter().flat_map(|s| s.iter()).collect())
}

macro_rules! join_kernel {
    ($name:literal, $func:ident, $vectorized:expr) => {
        Kernel {
            name: $name,
            threaded: true,
            run: |b, t, i| {
                let (inner, outer) = relations(i);
                result_bytes(dispatch!(b, s => { $func(s, $vectorized, &inner, &outer, t) }))
            },
        }
    };
}

/// Register the join operator: no/min/max-partition, scalar and
/// vectorized probes, across thread counts.
pub fn register(r: &mut Registry) {
    r.register(DiffOp {
        name: "join",
        reference,
        kernels: vec![
            join_kernel!("no-partition-scalar", join_no_partition, false),
            join_kernel!("no-partition-vector", join_no_partition, true),
            join_kernel!("min-partition-scalar", join_min_partition, false),
            join_kernel!("min-partition-vector", join_min_partition, true),
            join_kernel!("max-partition-scalar", join_max_partition, false),
            join_kernel!("max-partition-vector", join_max_partition, true),
        ],
    });
}
