//! The *max-partition* hash join (paper §9): hash-partition **both**
//! relations until each inner part fits a cache-resident table, then build
//! and probe entirely in cache — the paper's fastest variant and its
//! flagship argument for buffered vectorized partitioning.

use std::time::Instant;

use rsv_data::Relation;
use rsv_exec::{
    expect_infallible, parallel_scope_try, EngineError, ExecPolicy, MorselQueue, SchedulerStats,
};
use rsv_hashtab::{
    lp_build_scalar_raw, lp_build_vertical_raw, lp_probe_scalar_raw, lp_probe_vertical_raw,
    JoinSink, MulHash, EMPTY_PAIR,
};
use rsv_partition::histogram::{histogram_scalar, histogram_vector_replicated, prefix_sum};
use rsv_partition::parallel::partition_pass_policy_try;
use rsv_partition::shuffle::{shuffle_scalar_buffered, shuffle_vector_buffered};
use rsv_partition::HashFn;
use rsv_simd::Simd;

use crate::{JoinResult, JoinTimings};

/// Default cache-resident part size in tuples: 2048 tuples build a
/// 32 KB table at 50% load — the paper's "typically the L1" target.
pub const DEFAULT_PART_TUPLES: usize = 2048;

/// Maximum fanout of a single partitioning pass (the paper's optimal pass
/// fanout is bounded by TLB/cache capacity; 2^8 is in its sweet range).
const MAX_PASS_FANOUT: usize = 256;

/// Per-worker task-phase results: a sink plus build/probe nanoseconds.
type TaskResults = Vec<(JoinSink, u64, u64)>;

/// Execute the max-partition join with the default cache target.
pub fn join_max_partition<S: Simd>(
    s: S,
    vectorized: bool,
    inner: &Relation,
    outer: &Relation,
    threads: usize,
) -> JoinResult {
    join_max_partition_with_target(s, vectorized, inner, outer, threads, DEFAULT_PART_TUPLES)
}

/// As [`join_max_partition`] with an explicit inner-part tuple target.
pub fn join_max_partition_with_target<S: Simd>(
    s: S,
    vectorized: bool,
    inner: &Relation,
    outer: &Relation,
    threads: usize,
    part_target: usize,
) -> JoinResult {
    join_max_partition_policy(
        s,
        vectorized,
        inner,
        outer,
        &ExecPolicy::new(threads),
        part_target,
    )
    .0
}

/// [`join_max_partition_with_target`] with explicit morsel scheduling,
/// returning per-worker scheduler stats. Each cache-resident part becomes
/// one stealable build+probe task, so a worker stuck on a skew-inflated
/// part no longer stalls the join.
pub fn join_max_partition_policy<S: Simd>(
    s: S,
    vectorized: bool,
    inner: &Relation,
    outer: &Relation,
    policy: &ExecPolicy,
    part_target: usize,
) -> (JoinResult, SchedulerStats) {
    expect_infallible(join_max_partition_policy_try(
        s,
        vectorized,
        inner,
        outer,
        policy,
        part_target,
    ))
}

/// Fallible [`join_max_partition_policy`]: honours `policy.run` — the
/// partitioned copies of both relations (and the second-level scratch) are
/// gated by the memory budget, cancellation is observed at every
/// morsel/task claim and between second-level passes, and worker panics
/// surface as [`EngineError::WorkerPanicked`].
pub fn join_max_partition_policy_try<S: Simd>(
    s: S,
    vectorized: bool,
    inner: &Relation,
    outer: &Relation,
    policy: &ExecPolicy,
    part_target: usize,
) -> Result<(JoinResult, SchedulerStats), EngineError> {
    let threads = policy.threads;
    assert!(part_target >= 1);
    let table_hash = MulHash::nth(0);
    let f1_factor = MulHash::nth(2).factor();
    let f2_factor = MulHash::nth(3).factor();

    // Memory charged so far; released before every return below.
    let mut reserved = 0u64;
    macro_rules! bail {
        ($e:expr) => {{
            policy.run.budget.release(reserved);
            return Err($e);
        }};
    }

    // ------------------------------------------------------------------
    // Phase 1: partition both relations with the same function(s) until
    // inner parts are at most `part_target` tuples (one parallel pass,
    // plus a per-part second pass where needed).
    // ------------------------------------------------------------------
    let t0 = Instant::now();
    let fanout1 = inner.len().div_ceil(part_target).clamp(1, MAX_PASS_FANOUT);
    rsv_metrics::count(rsv_metrics::Metric::JoinBuildTuples, inner.len() as u64);
    rsv_metrics::count(rsv_metrics::Metric::JoinProbeTuples, outer.len() as u64);
    rsv_metrics::count(rsv_metrics::Metric::JoinPartitionFanout, fanout1 as u64);
    let f1 = HashFn::with_factor(fanout1, f1_factor);

    let mut stats = SchedulerStats::default();
    let cols_bytes = 2 * ((inner.len() + outer.len()) as u64) * std::mem::size_of::<u32>() as u64;
    policy.run.reserve(cols_bytes)?;
    reserved += cols_bytes;
    let inner_part = partition_relation(
        s,
        vectorized,
        f1,
        &inner.keys,
        &inner.payloads,
        policy,
        &mut stats,
    );
    let (mut ik, mut ip, istarts, ihist) = match inner_part {
        Ok(v) => v,
        Err(e) => bail!(e),
    };
    let outer_part = partition_relation(
        s,
        vectorized,
        f1,
        &outer.keys,
        &outer.payloads,
        policy,
        &mut stats,
    );
    let (mut ok_, mut op, ostarts, ohist) = match outer_part {
        Ok(v) => v,
        Err(e) => bail!(e),
    };

    // Second-level split for oversized parts, with an independent hash.
    let mut parts: Vec<(std::ops::Range<usize>, std::ops::Range<usize>)> = Vec::new();
    let mut second: Vec<(usize, usize)> = Vec::new(); // (part id, sub fanout)
    for p in 0..fanout1 {
        let icount = ihist[p] as usize;
        if icount > part_target {
            second.push((p, icount.div_ceil(part_target).clamp(2, MAX_PASS_FANOUT)));
        } else {
            let is = istarts[p] as usize;
            let os = ostarts[p] as usize;
            parts.push((is..is + icount, os..os + ohist[p] as usize));
        }
    }
    if !second.is_empty() {
        // Split the oversized parts in place (ping to scratch and back),
        // distributing parts among threads.
        let scratch_bytes =
            2 * (ik.len().max(ok_.len()) as u64) * std::mem::size_of::<u32>() as u64;
        if let Err(e) = policy.run.reserve(scratch_bytes) {
            bail!(e);
        }
        reserved += scratch_bytes;
        let mut sk = vec![0u32; ik.len().max(ok_.len())];
        let mut sp = vec![0u32; ik.len().max(ok_.len())];
        for &(p, sub_fanout) in &second {
            if let Err(e) = policy.run.check_cancelled() {
                bail!(e);
            }
            rsv_metrics::count(rsv_metrics::Metric::JoinPartitionFanout, sub_fanout as u64);
            let f2 = HashFn::with_factor(sub_fanout, f2_factor);
            let ir = istarts[p] as usize..istarts[p] as usize + ihist[p] as usize;
            let or = ostarts[p] as usize..ostarts[p] as usize + ohist[p] as usize;
            let (ib, ih) = subpartition(
                s,
                vectorized,
                f2,
                &mut ik,
                &mut ip,
                ir.clone(),
                &mut sk,
                &mut sp,
            );
            let (ob, oh) = subpartition(
                s,
                vectorized,
                f2,
                &mut ok_,
                &mut op,
                or.clone(),
                &mut sk,
                &mut sp,
            );
            for q in 0..sub_fanout {
                let isub = ir.start + ib[q] as usize..ir.start + ib[q] as usize + ih[q] as usize;
                let osub = or.start + ob[q] as usize..or.start + ob[q] as usize + oh[q] as usize;
                parts.push((isub, osub));
            }
        }
    }
    let partition = t0.elapsed();

    // ------------------------------------------------------------------
    // Phase 2+3: per part, build a cache-resident table and probe it.
    // Each part is one stealable task; build/probe interleave per part,
    // so the reported split is the workers' accumulated time.
    // ------------------------------------------------------------------
    let t0 = Instant::now();
    let task_q = MorselQueue::tasks_policy(parts.len(), threads, policy);
    let ik_ref = &ik;
    let ip_ref = &ip;
    let ok_ref = &ok_;
    let op_ref = &op;
    let parts_ref = &parts;
    let task_scope: Result<(TaskResults, _), _> =
        parallel_scope_try(threads, |ctx| {
            let mut sink = JoinSink::with_capacity(1024);
            let mut build_ns = 0u64;
            let mut probe_ns = 0u64;
            for task in ctx.morsels(&task_q) {
                let _ = rsv_testkit::failpoint!("join.task");
                let (ir, or) = &parts_ref[task.id];
                if ir.is_empty() || or.is_empty() {
                    continue;
                }
                ctx.phase("build+probe", || {
                    let tb = Instant::now();
                    let buckets = (ir.len() * 2 + 1).max(2);
                    let mut pairs = vec![EMPTY_PAIR; buckets];
                    if vectorized {
                        lp_build_vertical_raw(
                            s,
                            &mut pairs,
                            table_hash,
                            &ik_ref[ir.clone()],
                            &ip_ref[ir.clone()],
                        );
                    } else {
                        lp_build_scalar_raw(
                            &mut pairs,
                            table_hash,
                            &ik_ref[ir.clone()],
                            &ip_ref[ir.clone()],
                        );
                    }
                    build_ns += tb.elapsed().as_nanos() as u64;
                    let tp = Instant::now();
                    if vectorized {
                        lp_probe_vertical_raw(
                            s,
                            &pairs,
                            table_hash,
                            &ok_ref[or.clone()],
                            &op_ref[or.clone()],
                            &mut sink,
                        );
                    } else {
                        lp_probe_scalar_raw(
                            &pairs,
                            table_hash,
                            &ok_ref[or.clone()],
                            &op_ref[or.clone()],
                            &mut sink,
                        );
                    }
                    probe_ns += tp.elapsed().as_nanos() as u64;
                });
            }
            (sink, build_ns, probe_ns)
        });
    policy.run.budget.release(reserved);
    let (results, task_stats) = match task_scope {
        Ok(v) => v,
        Err(wp) => return Err(wp.into_engine_error()),
    };
    policy.run.check_cancelled()?;
    let build_probe = t0.elapsed();
    stats.merge(&task_stats);

    // Split the build+probe wall time by the workers' accumulated ratios.
    let total_build: u64 = results.iter().map(|r| r.1).sum();
    let total_probe: u64 = results.iter().map(|r| r.2).sum();
    let denom = (total_build + total_probe).max(1);
    let build = build_probe.mul_f64(total_build as f64 / denom as f64);
    let probe = build_probe.saturating_sub(build);
    let sinks = results.into_iter().map(|r| r.0).collect();

    Ok((
        JoinResult {
            sinks,
            timings: JoinTimings {
                partition,
                build,
                probe,
            },
        },
        stats,
    ))
}

/// One full-relation partitioning pass; returns the partitioned columns,
/// partition starts and histogram, merging scheduler stats into `stats`.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn partition_relation<S: Simd>(
    s: S,
    vectorized: bool,
    f: HashFn,
    keys: &[u32],
    pays: &[u32],
    policy: &ExecPolicy,
    stats: &mut SchedulerStats,
) -> Result<(Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>), EngineError> {
    let mut dk = vec![0u32; keys.len()];
    let mut dp = vec![0u32; pays.len()];
    let (pass, pass_stats) =
        partition_pass_policy_try(s, vectorized, f, keys, pays, &mut dk, &mut dp, policy)?;
    stats.merge(&pass_stats);
    Ok((dk, dp, pass.partition_starts, pass.hist))
}

/// Partition `cols[range]` in place through scratch space; returns local
/// partition starts and histogram.
#[allow(clippy::too_many_arguments)]
fn subpartition<S: Simd>(
    s: S,
    vectorized: bool,
    f: HashFn,
    keys: &mut [u32],
    pays: &mut [u32],
    range: std::ops::Range<usize>,
    scratch_k: &mut [u32],
    scratch_p: &mut [u32],
) -> (Vec<u32>, Vec<u32>) {
    let n = range.len();
    let hist = if vectorized {
        histogram_vector_replicated(s, f, &keys[range.clone()])
    } else {
        histogram_scalar(f, &keys[range.clone()])
    };
    if vectorized {
        shuffle_vector_buffered(
            s,
            f,
            &keys[range.clone()],
            &pays[range.clone()],
            &hist,
            &mut scratch_k[..n],
            &mut scratch_p[..n],
        );
    } else {
        shuffle_scalar_buffered(
            f,
            &keys[range.clone()],
            &pays[range.clone()],
            &hist,
            &mut scratch_k[..n],
            &mut scratch_p[..n],
        );
    }
    keys[range.clone()].copy_from_slice(&scratch_k[..n]);
    pays[range].copy_from_slice(&scratch_p[..n]);
    let (starts, _) = prefix_sum(&hist, 0);
    (starts, hist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{reference_fingerprint, workload};
    use rsv_simd::Portable;

    #[test]
    fn matches_reference() {
        let s = Portable::<16>::new();
        let (inner, outer) = workload(3_000, 12_000, 221);
        let (expected, n) = reference_fingerprint(&inner, &outer);
        for threads in [1usize, 3] {
            for vectorized in [false, true] {
                // small target forces a deep partitioning tree
                let r = join_max_partition_with_target(s, vectorized, &inner, &outer, threads, 128);
                assert_eq!(r.matches(), n, "threads={threads} vec={vectorized}");
                assert_eq!(r.fingerprint(), expected);
            }
        }
    }

    #[test]
    fn two_level_partitioning_kicks_in() {
        let s = Portable::<16>::new();
        // force fanout1 to clamp so second-level passes must run
        let (inner, outer) = workload(10_000, 20_000, 222);
        let (expected, n) = reference_fingerprint(&inner, &outer);
        let r = join_max_partition_with_target(s, true, &inner, &outer, 2, 16);
        assert_eq!(r.matches(), n);
        assert_eq!(r.fingerprint(), expected);
    }

    #[test]
    fn duplicate_inner_keys() {
        let s = Portable::<16>::new();
        let w = rsv_data::join_workload(2_000, 8_000, 5.0, 0.2, &mut rsv_data::rng(223));
        let (expected, n) = reference_fingerprint(&w.inner, &w.outer);
        let r = join_max_partition_with_target(s, true, &w.inner, &w.outer, 2, 256);
        assert_eq!(r.matches(), n);
        assert_eq!(r.fingerprint(), expected);
    }

    #[test]
    fn cancel_and_budget_fail_fast() {
        use rsv_exec::RunContext;
        let s = Portable::<16>::new();
        let (inner, outer) = workload(3_000, 12_000, 225);
        let run = RunContext::new();
        run.cancel_token().cancel();
        let policy = ExecPolicy::new(2).with_run(run);
        let err = join_max_partition_policy_try(s, true, &inner, &outer, &policy, 128)
            .expect_err("cancelled join must fail");
        assert!(matches!(err, EngineError::Cancelled), "{err}");
        let run = RunContext::new().with_memory_limit(100);
        let policy = ExecPolicy::new(2).with_run(run);
        let err = join_max_partition_policy_try(s, true, &inner, &outer, &policy, 128)
            .expect_err("budget must deny the partitioned columns");
        assert!(matches!(err, EngineError::BudgetExceeded { .. }), "{err}");
        assert_eq!(policy.run.budget.used(), 0);
    }

    #[test]
    fn default_target_join() {
        let s = Portable::<16>::new();
        let (inner, outer) = workload(5_000, 5_000, 224);
        let (expected, n) = reference_fingerprint(&inner, &outer);
        let r = join_max_partition(s, true, &inner, &outer, 1);
        assert_eq!(r.matches(), n);
        assert_eq!(r.fingerprint(), expected);
    }
}
