//! The *min-partition* hash join (paper §9): partition the inner relation
//! into `T` parts (one per thread) so each thread builds a private table —
//! no atomics anywhere — and probing picks **both** a table and a bucket
//! per key, which keeps the whole join fully vectorizable.

use std::time::Instant;

use rsv_data::Relation;
use rsv_exec::{
    expect_infallible, parallel_scope_try, EngineError, ExecPolicy, MorselQueue, SchedulerStats,
    SharedBuffer,
};
use rsv_hashtab::{
    lp_build_scalar_raw, lp_build_vertical_raw, lp_probe_one_raw, JoinSink, MulHash, EMPTY_KEY,
    EMPTY_PAIR,
};
use rsv_partition::parallel::partition_pass_policy_try;
use rsv_partition::{HashFn, PartitionFn};
use rsv_simd::{MaskLike, Simd};

use crate::{JoinResult, JoinTimings};

/// Maximum vector width any backend exposes (for stack lane buffers).
const MAX_LANES: usize = 32;

/// Execute the min-partition join with `threads` threads (and as many
/// inner partitions).
pub fn join_min_partition<S: Simd>(
    s: S,
    vectorized: bool,
    inner: &Relation,
    outer: &Relation,
    threads: usize,
) -> JoinResult {
    join_min_partition_policy(s, vectorized, inner, outer, &ExecPolicy::new(threads)).0
}

/// [`join_min_partition`] with explicit morsel scheduling, returning
/// per-worker scheduler stats.
pub fn join_min_partition_policy<S: Simd>(
    s: S,
    vectorized: bool,
    inner: &Relation,
    outer: &Relation,
    policy: &ExecPolicy,
) -> (JoinResult, SchedulerStats) {
    expect_infallible(join_min_partition_policy_try(
        s, vectorized, inner, outer, policy,
    ))
}

/// Fallible [`join_min_partition_policy`]: honours `policy.run` — the
/// partitioned columns and the shared sub-table allocation are gated by
/// the memory budget, cancellation is observed at every morsel/task claim,
/// and worker panics surface as [`EngineError::WorkerPanicked`].
pub fn join_min_partition_policy_try<S: Simd>(
    s: S,
    vectorized: bool,
    inner: &Relation,
    outer: &Relation,
    policy: &ExecPolicy,
) -> Result<(JoinResult, SchedulerStats), EngineError> {
    let threads = policy.threads;
    let parts = threads;
    rsv_metrics::count(rsv_metrics::Metric::JoinBuildTuples, inner.len() as u64);
    rsv_metrics::count(rsv_metrics::Metric::JoinProbeTuples, outer.len() as u64);
    rsv_metrics::count(rsv_metrics::Metric::JoinPartitionFanout, parts as u64);
    let part_fn = HashFn::with_factor(parts, MulHash::nth(2).factor());
    let table_hash = MulHash::nth(0);

    // Phase 1: partition the inner relation into one part per thread (the
    // pass itself runs morselized).
    let t0 = Instant::now();
    let col_bytes = 2 * (inner.len() as u64) * std::mem::size_of::<u32>() as u64;
    policy.run.reserve(col_bytes)?;
    let mut part_k = vec![0u32; inner.len()];
    let mut part_p = vec![0u32; inner.len()];
    let pass_result = partition_pass_policy_try(
        s,
        vectorized,
        part_fn,
        &inner.keys,
        &inner.payloads,
        &mut part_k,
        &mut part_p,
        policy,
    );
    let (pass, mut stats) = match pass_result {
        Ok(v) => v,
        Err(e) => {
            policy.run.budget.release(col_bytes);
            return Err(e);
        }
    };
    let partition = t0.elapsed();

    // Phase 2: build the private sub-tables — one task per part, stealable
    // because part sizes are skew-dependent. The sub-tables share one
    // allocation so probes can gather across all of them.
    let t0 = Instant::now();
    let max_part = pass.hist.iter().copied().max().unwrap_or(0) as usize;
    let tsize = (max_part * 2 + 1).next_multiple_of(2).max(2);
    let table_bytes = (parts * tsize * std::mem::size_of::<u64>()) as u64;
    if let Err(e) = policy.run.reserve(table_bytes) {
        policy.run.budget.release(col_bytes);
        return Err(e);
    }
    let reserved = col_bytes + table_bytes;
    let release = || policy.run.budget.release(reserved);
    let table = SharedBuffer::from_vec(vec![EMPTY_PAIR; parts * tsize]);
    let build_q = MorselQueue::tasks_policy(parts, threads, policy);
    let build_scope = parallel_scope_try(threads, |ctx| {
        // SAFETY: each task touches only its own part's sub-table slice,
        // and every task id is claimed exactly once.
        let view = unsafe { table.view_mut() };
        for task in ctx.morsels(&build_q) {
            let _ = rsv_testkit::failpoint!("join.task");
            ctx.phase("build", || {
                let p = task.id;
                let start = pass.partition_starts[p] as usize;
                let end = start + pass.hist[p] as usize;
                let sub = &mut view[p * tsize..(p + 1) * tsize];
                if vectorized {
                    lp_build_vertical_raw(
                        s,
                        sub,
                        table_hash,
                        &part_k[start..end],
                        &part_p[start..end],
                    );
                } else {
                    lp_build_scalar_raw(sub, table_hash, &part_k[start..end], &part_p[start..end]);
                }
            });
        }
    });
    let build_stats = match build_scope {
        Ok((_, st)) => st,
        Err(wp) => {
            release();
            return Err(wp.into_engine_error());
        }
    };
    if let Err(e) = policy.run.check_cancelled() {
        release();
        return Err(e);
    }
    let build = t0.elapsed();
    stats.merge(&build_stats);

    // Phase 3: probe across the T sub-tables, morsel by morsel.
    // SAFETY: the build threads were joined; the table is read-only now.
    let pairs: &[u64] = unsafe { table.view() };
    let t0 = Instant::now();
    let probe_q = MorselQueue::new(outer.len(), policy, S::LANES);
    let probe_scope = parallel_scope_try(threads, |ctx| {
        let mut sink = JoinSink::with_capacity(1024);
        for mo in ctx.morsels(&probe_q) {
            let _ = rsv_testkit::failpoint!("join.probe.morsel");
            ctx.phase("probe", || {
                let r = mo.range.clone();
                if vectorized {
                    probe_vertical_multi(
                        s,
                        pairs,
                        tsize,
                        part_fn,
                        table_hash,
                        &outer.keys[r.clone()],
                        &outer.payloads[r],
                        &mut sink,
                    );
                } else {
                    rsv_metrics::count(rsv_metrics::Metric::LpKeysProbed, r.len() as u64);
                    for i in r {
                        let k = outer.keys[i];
                        let p = part_fn.partition(k);
                        lp_probe_one_raw(
                            &pairs[p * tsize..(p + 1) * tsize],
                            table_hash,
                            k,
                            outer.payloads[i],
                            0,
                            &mut sink,
                        );
                    }
                }
            });
        }
        sink
    });
    release();
    let (sinks, probe_stats) = match probe_scope {
        Ok(v) => v,
        Err(wp) => return Err(wp.into_engine_error()),
    };
    policy.run.check_cancelled()?;
    let probe = t0.elapsed();
    stats.merge(&probe_stats);

    Ok((
        JoinResult {
            sinks,
            timings: JoinTimings {
                partition,
                build,
                probe,
            },
        },
        stats,
    ))
}

/// Vertically vectorized probe across `parts` concatenated sub-tables of
/// `tsize` buckets each: per lane, the partition function picks the table
/// and multiplicative hashing picks the bucket (the paper's "probe across
/// the T hash tables" modification of Algorithm 5).
#[allow(clippy::too_many_arguments)]
fn probe_vertical_multi<S: Simd>(
    s: S,
    pairs: &[u64],
    tsize: usize,
    part_fn: HashFn,
    table_hash: MulHash,
    keys: &[u32],
    pays: &[u32],
    out: &mut JoinSink,
) {
    s.vectorize(
        #[inline(always)]
        || {
            let w = S::LANES;
            let n = keys.len();
            rsv_metrics::count(rsv_metrics::Metric::LpKeysProbed, n as u64);
            let mut probes = 0u64;
            let f = s.splat(table_hash.factor());
            let tn = s.splat(tsize as u32);
            let empty = s.splat(EMPTY_KEY);
            let one = s.splat(1);
            let mut k = s.zero();
            let mut v = s.zero();
            let mut o = s.zero();
            let mut m = S::M::all();
            let mut i = 0usize;
            while i + w <= n {
                k = s.selective_load(k, m, &keys[i..]);
                v = s.selective_load(v, m, &pays[i..]);
                i += m.count();
                let part = part_fn.partition_vector(s, k);
                let mut local = s.add(s.mulhi(s.mullo(k, f), tn), o);
                let over = s.cmpge(local, tn);
                local = s.blend(over, s.sub(local, tn), local);
                let h = s.add(s.mullo(part, tn), local);
                let (tk, tv) = s.gather_pairs(pairs, h);
                probes += w as u64;
                m = s.cmpeq(tk, empty);
                let hit = m.andnot(s.cmpeq(tk, k));
                if hit.any() {
                    let (ok, oi, oo) = out.spare(w);
                    s.selective_store(ok, hit, k);
                    s.selective_store(oi, hit, tv);
                    let c = s.selective_store(oo, hit, v);
                    out.advance(c);
                }
                o = s.blend(m, s.zero(), s.add(o, one));
            }
            rsv_metrics::count(rsv_metrics::Metric::LpProbes, probes);
            let mut ka = [0u32; MAX_LANES];
            let mut va = [0u32; MAX_LANES];
            let mut oa = [0u32; MAX_LANES];
            s.store(k, &mut ka[..w]);
            s.store(v, &mut va[..w]);
            s.store(o, &mut oa[..w]);
            for lane in m.not().iter_set() {
                let p = part_fn.partition(ka[lane]);
                lp_probe_one_raw(
                    &pairs[p * tsize..(p + 1) * tsize],
                    table_hash,
                    ka[lane],
                    va[lane],
                    oa[lane] as usize,
                    out,
                );
            }
            for idx in i..n {
                let p = part_fn.partition(keys[idx]);
                lp_probe_one_raw(
                    &pairs[p * tsize..(p + 1) * tsize],
                    table_hash,
                    keys[idx],
                    pays[idx],
                    0,
                    out,
                );
            }
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{reference_fingerprint, workload};
    use rsv_simd::Portable;

    #[test]
    fn matches_reference() {
        let s = Portable::<16>::new();
        let (inner, outer) = workload(3_000, 12_000, 211);
        let (expected, n) = reference_fingerprint(&inner, &outer);
        for threads in [1usize, 2, 4] {
            for vectorized in [false, true] {
                let r = join_min_partition(s, vectorized, &inner, &outer, threads);
                assert_eq!(r.matches(), n, "threads={threads} vec={vectorized}");
                assert_eq!(r.fingerprint(), expected);
            }
        }
    }

    #[test]
    fn duplicate_inner_keys() {
        let s = Portable::<16>::new();
        let w = rsv_data::join_workload(1_000, 5_000, 2.5, 0.4, &mut rsv_data::rng(212));
        let (expected, n) = reference_fingerprint(&w.inner, &w.outer);
        let r = join_min_partition(s, true, &w.inner, &w.outer, 3);
        assert_eq!(r.matches(), n);
        assert_eq!(r.fingerprint(), expected);
    }

    #[test]
    fn cancel_and_budget_fail_fast() {
        use rsv_exec::RunContext;
        let s = Portable::<16>::new();
        let (inner, outer) = workload(3_000, 12_000, 214);
        let run = RunContext::new();
        run.cancel_token().cancel();
        let policy = ExecPolicy::new(2).with_run(run);
        let err = join_min_partition_policy_try(s, true, &inner, &outer, &policy)
            .expect_err("cancelled join must fail");
        assert!(matches!(err, EngineError::Cancelled), "{err}");
        let run = RunContext::new().with_memory_limit(100);
        let policy = ExecPolicy::new(2).with_run(run);
        let err = join_min_partition_policy_try(s, true, &inner, &outer, &policy)
            .expect_err("budget must deny the partitioned columns");
        assert!(matches!(err, EngineError::BudgetExceeded { .. }), "{err}");
        assert_eq!(policy.run.budget.used(), 0);
    }

    #[test]
    fn timings_are_populated() {
        let s = Portable::<16>::new();
        let (inner, outer) = workload(1_000, 2_000, 213);
        let r = join_min_partition(s, true, &inner, &outer, 2);
        assert!(r.timings.total() >= r.timings.probe);
    }
}
