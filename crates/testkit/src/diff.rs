//! Differential cross-backend fuzzing.
//!
//! The correctness story of this reproduction rests on three SIMD
//! backends and a scalar reference per operator. This module is the
//! machinery that compares them *automatically*: every operator crate
//! registers a [`DiffOp`] — a scalar reference plus its vector/parallel
//! kernels — and [`run_registry`] executes each registered kernel over
//! adversarial inputs (see [`crate::arbitrary`]) across every available
//! backend × thread count, asserting **byte-identical** canonical output.
//!
//! A failure prints a single environment-variable incantation that
//! replays exactly the offending case:
//!
//! ```text
//! RSV_DIFF_OP=histogram-radix RSV_DIFF_SEED=0x4a3f21c09e55ab17 \
//!     cargo test --test differential -- --nocapture
//! ```
//!
//! Knobs (all environment variables):
//!
//! * `RSV_DIFF_SEED` — replay one case seed (hex with `0x` or decimal),
//! * `RSV_DIFF_OP` — run only ops whose name contains this substring,
//! * `RSV_DIFF_CASES` — cases per op (default [`DEFAULT_CASES`]),
//! * `RSV_DIFF_THREADS` — comma-separated thread counts (default `1,2,8`),
//! * `RSV_FORCE_BACKEND` — restrict backends (handled by
//!   [`Backend::all_available`]).

use rsv_simd::Backend;

/// Default fuzz cases per registered operator.
pub const DEFAULT_CASES: u64 = 24;

/// Default worker thread counts for kernels that declare
/// [`Kernel::threaded`].
pub const DEFAULT_THREADS: [usize; 3] = [1, 2, 8];

/// One generated differential-test case (see [`crate::arbitrary::case_input`]).
///
/// Every field is derived deterministically from `seed`; registrations
/// that need extra parameters (radix shifts, selectivities, …) derive
/// them from `seed` too, so the reference and every kernel see the same
/// case.
#[derive(Debug, Clone)]
pub struct CaseInput {
    /// The case seed (replayable via `RSV_DIFF_SEED`).
    pub seed: u64,
    /// Probe-side / input key column (never the `u32::MAX` sentinel).
    pub keys: Vec<u32>,
    /// Payload column, same length as `keys`.
    pub pays: Vec<u32>,
    /// Build-side key column for table operators (sentinel-free,
    /// duplicate-free: cuckoo tables cannot hold 3+ copies of one key).
    pub build_keys: Vec<u32>,
    /// Build-side payloads, same length as `build_keys`.
    pub build_pays: Vec<u32>,
    /// Range-predicate bounds `(lower, upper)` for selection scans.
    pub bounds: (u32, u32),
    /// Partitioning fanout (occasionally the max-fanout radix case).
    pub fanout: usize,
    /// Hash-table capacity hint (occasionally near-saturation).
    pub capacity: usize,
    /// Hash-table load factor in `(0, 1)`.
    pub load_factor: f64,
}

/// One kernel registered against a scalar reference.
pub struct Kernel {
    /// Display name, e.g. `"vector-buffered"`.
    pub name: &'static str,
    /// Whether the kernel takes a worker thread count (parallel
    /// operators); non-threaded kernels run once with `threads = 1`.
    pub threaded: bool,
    /// Run the kernel on `backend` with `threads` workers and encode its
    /// canonical output bytes (same encoding as the reference).
    pub run: fn(Backend, usize, &CaseInput) -> Vec<u8>,
}

/// A registered operator: a scalar reference plus its kernels.
pub struct DiffOp {
    /// Operator name, e.g. `"scan"`, `"histogram-radix"`.
    pub name: &'static str,
    /// The scalar reference implementation, encoding canonical bytes.
    pub reference: fn(&CaseInput) -> Vec<u8>,
    /// The kernels that must match the reference byte-for-byte.
    pub kernels: Vec<Kernel>,
}

/// The registry every operator crate adds its [`DiffOp`]s to.
#[derive(Default)]
pub struct Registry {
    ops: Vec<DiffOp>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Register one operator.
    pub fn register(&mut self, op: DiffOp) {
        assert!(
            self.ops.iter().all(|o| o.name != op.name),
            "duplicate diff op `{}`",
            op.name
        );
        self.ops.push(op);
    }

    /// The registered operators.
    pub fn ops(&self) -> &[DiffOp] {
        &self.ops
    }
}

/// Runner configuration, normally built by [`DiffConfig::from_env`].
pub struct DiffConfig {
    /// Base seed that case seeds are derived from.
    pub seed: u64,
    /// Cases per op.
    pub cases: u64,
    /// Backends to run every kernel on.
    pub backends: Vec<Backend>,
    /// Thread counts for `threaded` kernels.
    pub thread_counts: Vec<usize>,
    /// Only run ops whose name contains this substring.
    pub op_filter: Option<String>,
    /// Replay exactly this case seed instead of deriving from `seed`.
    pub replay_seed: Option<u64>,
}

impl DiffConfig {
    /// Configuration from the `RSV_DIFF_*` environment variables, with
    /// `base_seed` as the default stream.
    pub fn from_env(base_seed: u64) -> DiffConfig {
        DiffConfig {
            seed: base_seed,
            cases: std::env::var("RSV_DIFF_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(DEFAULT_CASES),
            backends: Backend::all_available(),
            thread_counts: std::env::var("RSV_DIFF_THREADS")
                .ok()
                .map(|s| {
                    s.split(',')
                        .map(|t| t.trim().parse().expect("RSV_DIFF_THREADS: bad count"))
                        .collect()
                })
                .unwrap_or_else(|| DEFAULT_THREADS.to_vec()),
            op_filter: std::env::var("RSV_DIFF_OP").ok().filter(|s| !s.is_empty()),
            replay_seed: std::env::var("RSV_DIFF_SEED").ok().map(|s| {
                let s = s.trim();
                if let Some(hex) = s.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16).expect("RSV_DIFF_SEED: bad hex")
                } else {
                    s.parse().expect("RSV_DIFF_SEED: bad number")
                }
            }),
        }
    }
}

/// The replay incantation printed on every failure.
fn replay_line(op: &str, case_seed: u64) -> String {
    format!(
        "RSV_DIFF_OP={op} RSV_DIFF_SEED={case_seed:#x} \
         cargo test --test differential -- --nocapture"
    )
}

/// Run every registered op under `cfg`, panicking (with a replayable
/// seed) on the first divergence.
pub fn run_registry(registry: &Registry, cfg: &DiffConfig) {
    let mut kernel_runs = 0u64;
    for op in registry.ops() {
        if let Some(f) = &cfg.op_filter {
            if !op.name.contains(f.as_str()) {
                continue;
            }
        }
        let case_seeds: Vec<u64> = match cfg.replay_seed {
            Some(s) => vec![s],
            None => (0..cfg.cases)
                .map(|c| crate::case_seed(cfg.seed, c))
                .collect(),
        };
        for case_seed in case_seeds {
            kernel_runs += run_case(op, case_seed, cfg);
        }
    }
    assert!(kernel_runs > 0, "differential run executed no kernels");
    eprintln!("differential: {kernel_runs} kernel runs, all byte-identical");
}

/// Run one op on one case across the backend × thread matrix; returns the
/// number of kernel executions.
fn run_case(op: &DiffOp, case_seed: u64, cfg: &DiffConfig) -> u64 {
    let input = crate::arbitrary::case_input(case_seed);
    let guarded = |what: &str, f: &mut dyn FnMut() -> Vec<u8>| -> Vec<u8> {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(&mut *f)) {
            Ok(bytes) => bytes,
            Err(payload) => {
                eprintln!(
                    "differential op `{}`: {what} panicked\n  replay: {}",
                    op.name,
                    replay_line(op.name, case_seed)
                );
                std::panic::resume_unwind(payload);
            }
        }
    };
    let expected = guarded("scalar reference", &mut || (op.reference)(&input));
    let mut runs = 0u64;
    let one_thread = [1usize];
    for kernel in &op.kernels {
        let threads: &[usize] = if kernel.threaded {
            &cfg.thread_counts
        } else {
            &one_thread
        };
        for &backend in &cfg.backends {
            for &t in threads {
                let label = format!(
                    "kernel `{}` backend `{}` threads {t}",
                    kernel.name,
                    backend.name()
                );
                let got = guarded(&label, &mut || (kernel.run)(backend, t, &input));
                runs += 1;
                if got != expected {
                    let at = first_divergence(&expected, &got);
                    panic!(
                        "differential mismatch: op `{}` {label}\n  \
                         reference {} bytes, kernel {} bytes, first divergence at byte {at}\n  \
                         replay: {}",
                        op.name,
                        expected.len(),
                        got.len(),
                        replay_line(op.name, case_seed),
                    );
                }
            }
        }
    }
    runs
}

/// One metered kernel execution handed to [`run_registry_metered`]'s
/// callback.
pub struct MeteredRun<'a> {
    /// Registered operator name.
    pub op: &'static str,
    /// Kernel name within the operator.
    pub kernel: &'static str,
    /// Backend the kernel ran on.
    pub backend: Backend,
    /// Worker thread count.
    pub threads: usize,
    /// The generated case (its seed replays via `RSV_DIFF_SEED`).
    pub input: &'a CaseInput,
    /// The kernel's canonical output bytes.
    pub output: &'a [u8],
    /// Counters merged across every worker of the metered run.
    pub counters: rsv_metrics::Counters,
}

/// Run every registered kernel under the metrics layer
/// ([`rsv_metrics::collect`]) and hand each execution's merged counters to
/// `check`. The scalar references are *not* executed: this drives metric
/// oracles (invariants over the counters), not output comparison — that
/// is [`run_registry`]'s job. A panic inside `check` prints the same
/// replay incantation as a differential mismatch before propagating.
pub fn run_registry_metered(
    registry: &Registry,
    cfg: &DiffConfig,
    check: &mut dyn FnMut(&MeteredRun<'_>),
) {
    let mut kernel_runs = 0u64;
    let one_thread = [1usize];
    for op in registry.ops() {
        if let Some(f) = &cfg.op_filter {
            if !op.name.contains(f.as_str()) {
                continue;
            }
        }
        let case_seeds: Vec<u64> = match cfg.replay_seed {
            Some(s) => vec![s],
            None => (0..cfg.cases)
                .map(|c| crate::case_seed(cfg.seed, c))
                .collect(),
        };
        for case_seed in case_seeds {
            let input = crate::arbitrary::case_input(case_seed);
            for kernel in &op.kernels {
                let threads: &[usize] = if kernel.threaded {
                    &cfg.thread_counts
                } else {
                    &one_thread
                };
                for &backend in &cfg.backends {
                    for &t in threads {
                        let (output, sink) =
                            rsv_metrics::collect(|| (kernel.run)(backend, t, &input));
                        kernel_runs += 1;
                        let run = MeteredRun {
                            op: op.name,
                            kernel: kernel.name,
                            backend,
                            threads: t,
                            input: &input,
                            output: &output,
                            counters: sink.total(),
                        };
                        let verdict =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(&run)));
                        if let Err(payload) = verdict {
                            eprintln!(
                                "metric oracle failed: op `{}` kernel `{}` backend `{}` \
                                 threads {t}\n  replay: {}",
                                op.name,
                                kernel.name,
                                backend.name(),
                                replay_line(op.name, case_seed),
                            );
                            std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        }
    }
    assert!(kernel_runs > 0, "metered run executed no kernels");
    eprintln!("metered: {kernel_runs} kernel runs checked");
}

fn first_divergence(a: &[u8], b: &[u8]) -> usize {
    a.iter()
        .zip(b)
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a.len().min(b.len()))
}

// ---------------------------------------------------------------------
// Canonical-output encoding helpers shared by the registrations.
// ---------------------------------------------------------------------

/// Append `u32` values little-endian.
pub fn put_u32s(out: &mut Vec<u8>, vals: &[u32]) {
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Append one `usize` as a `u64` little-endian.
pub fn put_len(out: &mut Vec<u8>, n: usize) {
    out.extend_from_slice(&(n as u64).to_le_bytes());
}

/// Canonical bytes of an *ordered* pair-column result (stable kernels).
pub fn ordered_pairs(keys: &[u32], pays: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + 8 * keys.len());
    put_len(&mut out, keys.len());
    put_u32s(&mut out, keys);
    put_u32s(&mut out, pays);
    out
}

/// Canonical bytes of an order-*insensitive* pair multiset (kernels whose
/// output order is legitimately unstable): pairs are sorted first.
pub fn canonical_pairs(keys: &[u32], pays: &[u32]) -> Vec<u8> {
    assert_eq!(keys.len(), pays.len());
    let mut pairs: Vec<(u32, u32)> = keys.iter().copied().zip(pays.iter().copied()).collect();
    pairs.sort_unstable();
    let mut out = Vec::with_capacity(16 + 8 * pairs.len());
    put_len(&mut out, pairs.len());
    for (k, p) in pairs {
        out.extend_from_slice(&k.to_le_bytes());
        out.extend_from_slice(&p.to_le_bytes());
    }
    out
}

/// Canonical bytes of an order-insensitive triple multiset (join results:
/// key, inner payload, outer payload).
pub fn canonical_triples(mut triples: Vec<(u32, u32, u32)>) -> Vec<u8> {
    triples.sort_unstable();
    let mut out = Vec::with_capacity(16 + 12 * triples.len());
    put_len(&mut out, triples.len());
    for (a, b, c) in triples {
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
        out.extend_from_slice(&c.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_pairs_ignore_order() {
        let a = canonical_pairs(&[3, 1, 2], &[30, 10, 20]);
        let b = canonical_pairs(&[1, 2, 3], &[10, 20, 30]);
        assert_eq!(a, b);
        let c = canonical_pairs(&[1, 2, 3], &[10, 20, 31]);
        assert_ne!(a, c);
    }

    #[test]
    fn ordered_pairs_respect_order() {
        let a = ordered_pairs(&[3, 1], &[30, 10]);
        let b = ordered_pairs(&[1, 3], &[10, 30]);
        assert_ne!(a, b);
    }

    #[test]
    fn registry_rejects_duplicate_names() {
        fn r(_: &CaseInput) -> Vec<u8> {
            Vec::new()
        }
        let mut reg = Registry::new();
        reg.register(DiffOp {
            name: "x",
            reference: r,
            kernels: Vec::new(),
        });
        let dup = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            reg.register(DiffOp {
                name: "x",
                reference: r,
                kernels: Vec::new(),
            })
        }));
        assert!(dup.is_err());
    }

    #[test]
    fn mismatch_reports_replayable_seed() {
        let mut reg = Registry::new();
        reg.register(DiffOp {
            name: "always-diverges",
            reference: |_| vec![1, 2, 3],
            kernels: vec![Kernel {
                name: "bad",
                threaded: false,
                run: |_, _, _| vec![1, 2, 4],
            }],
        });
        let cfg = DiffConfig {
            seed: 7,
            cases: 1,
            backends: vec![Backend::Portable(rsv_simd::Portable::new())],
            thread_counts: vec![1],
            op_filter: None,
            replay_seed: None,
        };
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_registry(&reg, &cfg)))
                .expect_err("must diverge");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("RSV_DIFF_SEED=0x"), "message: {msg}");
        assert!(msg.contains("always-diverges"), "message: {msg}");
        assert!(msg.contains("byte 2"), "message: {msg}");
    }
}
