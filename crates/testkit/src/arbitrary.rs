//! Adversarial input generation for the differential fuzz harness.
//!
//! Every [`CaseInput`] field is derived deterministically from a single
//! case seed, biased hard toward the inputs that historically break
//! vectorized database kernels:
//!
//! * **tail lengths** — empty, one element, `W − 1`, `W`, `W + 1`,
//!   `2W + 3` for both the 8-lane (AVX2) and 16-lane (AVX-512/portable)
//!   widths, so partial-vector drains run on every backend,
//! * **all-duplicate keys** — maximal lane conflicts in histograms,
//!   shuffles and aggregation,
//! * **sentinel-adjacent keys** — values bordering the hash tables'
//!   reserved `EMPTY_KEY = u32::MAX`, probing for off-by-one sentinel
//!   comparisons,
//! * **near-saturation capacities** — hash tables sized barely above
//!   their content, stressing probe-loop termination,
//! * **Zipf-skewed keys** — the paper's skew experiments (§10, Fig. 16),
//! * **max-fanout radix** — partition fanouts up to `2¹²`.

use crate::diff::CaseInput;
use rsv_data::Rng;

/// Boundary lengths for 8- and 16-lane widths: `{0, 1, W−1, W, W+1, 2W+3}`.
pub const BOUNDARY_LENS: [usize; 11] = [0, 1, 7, 8, 9, 15, 16, 17, 19, 35, 67];

/// Largest generated input column (kept small: the harness multiplies
/// cases by kernels × backends × thread counts).
pub const MAX_LEN: usize = 3_000;

/// The key distributions the generator draws from.
#[derive(Debug, Clone, Copy)]
enum KeyDist {
    /// Uniform over the full sentinel-free domain.
    Uniform,
    /// A domain of `1..=16` values — all-duplicate when the domain is 1.
    Narrow(u32),
    /// Keys adjacent to the reserved `EMPTY_KEY` sentinel.
    SentinelAdjacent,
    /// Zipf-skewed over a moderate domain.
    Zipf(u32),
    /// Consecutive keys from a random start (sorted-ish inputs).
    Sequential,
}

fn pick_dist(rng: &mut Rng) -> KeyDist {
    match rng.below(10) {
        0..=2 => KeyDist::Uniform,
        3 | 4 => KeyDist::Narrow(1 + rng.below(16) as u32),
        5 | 6 => KeyDist::SentinelAdjacent,
        7 | 8 => KeyDist::Zipf(100 + rng.below(900) as u32),
        _ => KeyDist::Sequential,
    }
}

fn draw_keys(rng: &mut Rng, n: usize, dist: KeyDist) -> Vec<u32> {
    match dist {
        KeyDist::Uniform => rsv_data::uniform_u32(n, rng),
        KeyDist::Narrow(domain) => (0..n)
            .map(|_| rng.below(u64::from(domain)) as u32)
            .collect(),
        KeyDist::SentinelAdjacent => (0..n).map(|_| u32::MAX - 1 - rng.below(4) as u32).collect(),
        KeyDist::Zipf(domain) => rsv_data::zipf_u32(n, domain, 1.0, rng),
        KeyDist::Sequential => {
            let start = rng.next_u32() % (u32::MAX - MAX_LEN as u32 - 1);
            (0..n as u32).map(|i| start + i).collect()
        }
    }
}

/// A length biased toward the vector-width boundaries.
fn pick_len(rng: &mut Rng, max: usize) -> usize {
    if rng.f64() < 0.4 {
        BOUNDARY_LENS[rng.index(BOUNDARY_LENS.len())]
    } else {
        rng.index(max)
    }
}

/// Generate the [`CaseInput`] for one case seed. Deterministic: the same
/// seed always yields the same case, which is what makes the
/// `RSV_DIFF_SEED` replay line work.
pub fn case_input(seed: u64) -> CaseInput {
    let mut rng = Rng::seed_from_u64(seed);

    let n = pick_len(&mut rng, MAX_LEN);
    let dist = pick_dist(&mut rng);
    let keys = draw_keys(&mut rng, n, dist);
    // payloads are row ids half the time (stability checks read them),
    // random otherwise
    let pays: Vec<u32> = if rng.f64() < 0.5 {
        (0..n as u32).collect()
    } else {
        rsv_data::uniform_u32(n, &mut rng)
    };

    // Build side: duplicate-free (cuckoo tables cannot hold 3+ copies of
    // one key), non-empty so tables always have content to probe.
    let nb = pick_len(&mut rng, 700).max(1);
    let build_keys = match pick_dist(&mut rng) {
        // unique regardless of the distribution die: dedup a narrow draw
        KeyDist::SentinelAdjacent => {
            let mut ks: Vec<u32> = (0..nb.min(8)).map(|i| u32::MAX - 1 - i as u32).collect();
            ks.truncate(nb);
            ks
        }
        _ => rsv_data::unique_u32(nb, &mut rng),
    };
    let build_pays: Vec<u32> = (0..build_keys.len() as u32).collect();

    // Selection bounds: endpoints of the selectivity sweep plus random.
    let selectivity = match rng.below(5) {
        0 => 0.0,
        1 => 0.01,
        2 => 0.5,
        3 => 1.0,
        _ => rng.f64(),
    };
    let bounds = rsv_data::selection_bounds(selectivity);

    // Fanout: powers of two up to the max-fanout radix case, odd values
    // for hash/range partitioning.
    let fanout = match rng.below(6) {
        0 => 1,
        1 => 1 << 12, // max-fanout radix
        2 => 1 + rng.below(7) as usize,
        3 => 64,
        4 => 256,
        _ => 2 + rng.below(500) as usize,
    };

    // Capacity: near-saturation a third of the time (exactly the build
    // size at a load factor close to 1), comfortable otherwise.
    let (capacity, load_factor) = match rng.below(3) {
        0 => (build_keys.len(), 0.98), // near-saturation
        1 => (build_keys.len(), 0.5),
        _ => (build_keys.len() + rng.below(64) as usize, 0.7),
    };

    CaseInput {
        seed,
        keys,
        pays,
        build_keys,
        build_pays,
        bounds,
        fanout,
        capacity,
        load_factor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_deterministic() {
        let a = case_input(0xDEAD_BEEF);
        let b = case_input(0xDEAD_BEEF);
        assert_eq!(a.keys, b.keys);
        assert_eq!(a.build_keys, b.build_keys);
        assert_eq!(a.fanout, b.fanout);
        assert_eq!(a.bounds, b.bounds);
    }

    #[test]
    fn cases_never_emit_the_sentinel() {
        for seed in 0..500u64 {
            let c = case_input(seed);
            assert!(!c.keys.contains(&u32::MAX), "seed {seed}");
            assert!(!c.build_keys.contains(&u32::MAX), "seed {seed}");
        }
    }

    #[test]
    fn build_keys_are_unique_and_nonempty() {
        for seed in 0..200u64 {
            let c = case_input(seed);
            assert!(!c.build_keys.is_empty(), "seed {seed}");
            let mut sorted = c.build_keys.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), c.build_keys.len(), "seed {seed}");
        }
    }

    #[test]
    fn generator_covers_the_adversarial_classes() {
        let mut saw_empty = false;
        let mut saw_boundary = false;
        let mut saw_dup = false;
        let mut saw_sentinel_adjacent = false;
        let mut saw_max_fanout = false;
        let mut saw_saturation = false;
        for seed in 0..500u64 {
            let c = case_input(seed);
            saw_empty |= c.keys.is_empty();
            saw_boundary |= [7, 9, 15, 17, 35].contains(&c.keys.len());
            saw_dup |= c.keys.len() > 8 && c.keys.iter().all(|&k| k == c.keys[0]);
            saw_sentinel_adjacent |= c.keys.contains(&(u32::MAX - 1));
            saw_max_fanout |= c.fanout == 1 << 12;
            saw_saturation |= c.load_factor > 0.95;
        }
        assert!(saw_empty, "no empty input generated");
        assert!(saw_boundary, "no W±1 boundary length generated");
        assert!(saw_dup, "no all-duplicate input generated");
        assert!(saw_sentinel_adjacent, "no sentinel-adjacent input");
        assert!(saw_max_fanout, "no max-fanout radix case");
        assert!(saw_saturation, "no near-saturation capacity");
    }
}
