//! Deterministic fault injection: named failpoints compiled out by default.
//!
//! Operator crates mark interesting failure sites with
//! [`failpoint!`](crate::failpoint):
//!
//! ```ignore
//! rsv_testkit::failpoint!("hashtab.lp.build");
//! ```
//!
//! Without the `failpoints` cargo feature the macro expands to a call to an
//! `#[inline(always)]` empty function — zero code on the hot path. With the
//! feature enabled (tests only; see the `failpoints` CI job) each hit
//! consults a global registry and may
//!
//! * **panic** (exercising the engine's worker panic isolation),
//! * **cancel** (invoking a test-registered hook, typically
//!   `CancelToken::cancel`), or
//! * **deny an allocation** (consumed by `MemoryBudget::reserve`, which
//!   maps it to `EngineError::BudgetExceeded`).
//!
//! Triggers are deterministic: [`Trigger::Always`], [`Trigger::Nth`] (fire
//! on exactly the n-th hit), or [`Trigger::Probability`] — which is *also*
//! deterministic, derived by mixing the seed (`RSV_FAULT_SEED`, default 0)
//! with the point name and hit index, so a failing run replays exactly.
//!
//! The registry also records every point hit since the last reset, which
//! lets tests discover the failpoint catalog on an operator's path (run
//! once unarmed, read [`trace`], then inject at each traced point).

#![allow(dead_code)]

/// What an armed failpoint does when its trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with a message naming the point (worker panic isolation).
    Panic,
    /// Invoke the registered cancel hook (see [`set_cancel_hook`]).
    Cancel,
    /// Make the next budget reservation passing through this point fail.
    DenyAlloc,
}

/// When an armed failpoint acts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Every hit.
    Always,
    /// Exactly the `n`-th hit (1-based) since arming.
    Nth(u64),
    /// Each hit independently with probability `p`, derived
    /// deterministically from `RSV_FAULT_SEED ⊕ point ⊕ hit index`.
    Probability(f64),
}

#[cfg(feature = "failpoints")]
mod imp {
    use super::{FaultAction, Trigger};
    use std::collections::BTreeMap;
    use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

    #[derive(Default)]
    struct PointState {
        hits: u64,
        armed: Option<(Trigger, FaultAction)>,
    }

    #[derive(Default)]
    struct Registry {
        points: BTreeMap<&'static str, PointState>,
        cancel_hook: Option<Arc<dyn Fn() + Send + Sync>>,
    }

    fn registry() -> MutexGuard<'static, Registry> {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        // A panic injected while the lock is held would poison it; the
        // registry is plain bookkeeping, so shrug poisoning off.
        match REGISTRY.get_or_init(Default::default).lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// The fault seed, read once from `RSV_FAULT_SEED` (default 0).
    pub fn seed() -> u64 {
        static SEED: OnceLock<u64> = OnceLock::new();
        *SEED.get_or_init(|| {
            std::env::var("RSV_FAULT_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0)
        })
    }

    fn mix(seed: u64, point: &str, hit: u64) -> u64 {
        let mut z = seed ^ hit.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for b in point.bytes() {
            z = (z ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Evaluate one hit of `point`. Returns `true` iff a `DenyAlloc`
    /// action fired (the caller fails its reservation); `Panic` unwinds
    /// from here, `Cancel` runs the hook and returns `false`.
    pub fn fire(point: &'static str) -> bool {
        let (action, hit) = {
            let mut reg = registry();
            let st = reg.points.entry(point).or_default();
            st.hits += 1;
            let hit = st.hits;
            let Some((trigger, action)) = st.armed else {
                return false;
            };
            let fires = match trigger {
                Trigger::Always => true,
                Trigger::Nth(n) => hit == n,
                Trigger::Probability(p) => (mix(seed(), point, hit) as f64 / u64::MAX as f64) < p,
            };
            if !fires {
                return false;
            }
            match action {
                FaultAction::Cancel => {
                    let hook = reg.cancel_hook.clone();
                    drop(reg);
                    if let Some(h) = hook {
                        h();
                    }
                    return false;
                }
                other => (other, hit),
            }
        };
        match action {
            FaultAction::Panic => {
                panic!("injected fault at failpoint `{point}` (hit {hit})")
            }
            FaultAction::DenyAlloc => true,
            FaultAction::Cancel => unreachable!("handled above"),
        }
    }

    /// Arm `point` with a trigger and action (replacing any previous arm).
    pub fn arm(point: &'static str, trigger: Trigger, action: FaultAction) {
        registry().points.entry(point).or_default().armed = Some((trigger, action));
    }

    /// Disarm `point` (hit counting continues).
    pub fn disarm(point: &'static str) {
        if let Some(st) = registry().points.get_mut(point) {
            st.armed = None;
        }
    }

    /// Disarm every point, clear hit counts, and drop the cancel hook.
    pub fn reset() {
        let mut reg = registry();
        reg.points.clear();
        reg.cancel_hook = None;
    }

    /// Register the closure a [`FaultAction::Cancel`] invokes (typically
    /// cancelling the query's `CancelToken`).
    pub fn set_cancel_hook(hook: impl Fn() + Send + Sync + 'static) {
        registry().cancel_hook = Some(Arc::new(hook));
    }

    /// Hits of `point` since the last [`reset`].
    pub fn hits(point: &'static str) -> u64 {
        registry().points.get(point).map_or(0, |st| st.hits)
    }

    /// Every point hit since the last [`reset`], with hit counts — the
    /// discovered failpoint catalog of whatever ran in between.
    pub fn trace() -> Vec<(&'static str, u64)> {
        registry()
            .points
            .iter()
            .filter(|(_, st)| st.hits > 0)
            .map(|(&p, st)| (p, st.hits))
            .collect()
    }
}

#[cfg(feature = "failpoints")]
pub use imp::{arm, disarm, fire, hits, reset, seed, set_cancel_hook, trace};

#[cfg(not(feature = "failpoints"))]
mod noop {
    use super::{FaultAction, Trigger};

    /// No-op hit evaluation (the `failpoints` feature is disabled).
    #[inline(always)]
    pub fn fire(_point: &'static str) -> bool {
        false
    }

    /// No-op arm (the `failpoints` feature is disabled).
    pub fn arm(_point: &'static str, _trigger: Trigger, _action: FaultAction) {}

    /// No-op disarm (the `failpoints` feature is disabled).
    pub fn disarm(_point: &'static str) {}

    /// No-op reset (the `failpoints` feature is disabled).
    pub fn reset() {}

    /// No-op hook registration (the `failpoints` feature is disabled).
    pub fn set_cancel_hook(_hook: impl Fn() + Send + Sync + 'static) {}

    /// Always zero (the `failpoints` feature is disabled).
    pub fn hits(_point: &'static str) -> u64 {
        0
    }

    /// Always empty (the `failpoints` feature is disabled).
    pub fn trace() -> Vec<(&'static str, u64)> {
        Vec::new()
    }

    /// The fault seed (unused while the `failpoints` feature is disabled).
    pub fn seed() -> u64 {
        0
    }
}

#[cfg(not(feature = "failpoints"))]
pub use noop::{arm, disarm, fire, hits, reset, seed, set_cancel_hook, trace};

/// Mark a named failure site. Expands to a single call that is an
/// `#[inline(always)]` empty function unless the `failpoints` feature is
/// enabled on `rsv-testkit`. Returns `bool`: `true` iff an armed
/// `DenyAlloc` fired (only budget reservations inspect it).
#[macro_export]
macro_rules! failpoint {
    ($name:literal) => {
        $crate::fault::fire($name)
    };
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The registry is process-global and `cargo test` runs tests
    /// concurrently; serialize every test that arms or resets it.
    fn serialize() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        match LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn nth_trigger_fires_exactly_once() {
        let _g = serialize();
        reset();
        arm("test.nth", Trigger::Nth(3), FaultAction::DenyAlloc);
        let fired: Vec<bool> = (0..5).map(|_| fire("test.nth")).collect();
        assert_eq!(fired, vec![false, false, true, false, false]);
        assert_eq!(hits("test.nth"), 5);
        reset();
    }

    #[test]
    fn panic_action_unwinds_with_point_name() {
        let _g = serialize();
        reset();
        arm("test.panic", Trigger::Always, FaultAction::Panic);
        let r = std::panic::catch_unwind(|| fire("test.panic"));
        let payload = r.expect_err("must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("test.panic"), "{msg}");
        reset();
    }

    #[test]
    fn cancel_action_invokes_hook() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let _g = serialize();
        reset();
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = n.clone();
        set_cancel_hook(move || {
            n2.fetch_add(1, Ordering::SeqCst);
        });
        arm("test.cancel", Trigger::Always, FaultAction::Cancel);
        assert!(!fire("test.cancel"));
        assert!(!fire("test.cancel"));
        assert_eq!(n.load(Ordering::SeqCst), 2);
        reset();
    }

    #[test]
    fn probability_is_deterministic() {
        let _g = serialize();
        reset();
        arm(
            "test.prob",
            Trigger::Probability(0.5),
            FaultAction::DenyAlloc,
        );
        let a: Vec<bool> = (0..64).map(|_| fire("test.prob")).collect();
        reset();
        arm(
            "test.prob",
            Trigger::Probability(0.5),
            FaultAction::DenyAlloc,
        );
        let b: Vec<bool> = (0..64).map(|_| fire("test.prob")).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x) && a.iter().any(|&x| !x));
        reset();
    }

    #[test]
    fn trace_records_hit_points() {
        let _g = serialize();
        reset();
        fire("test.trace.a");
        fire("test.trace.a");
        fire("test.trace.b");
        let t = trace();
        assert!(t.contains(&("test.trace.a", 2)));
        assert!(t.contains(&("test.trace.b", 1)));
        reset();
    }
}
