//! A minimal, dependency-free property-testing harness.
//!
//! The original test suites used the `proptest` crate; this build
//! environment has no network access to crates.io, so the suites run on
//! this tiny seeded-random harness instead. It keeps the two properties
//! that matter for these tests:
//!
//! * **many random cases** per property, generated from the repository's
//!   own deterministic [`Rng`],
//! * **reproducibility**: a failing case prints its case seed, and
//!   [`check_one`] replays exactly that case.
//!
//! There is no shrinking — inputs here are small enough to debug directly.

//! The crate also hosts the **differential cross-backend fuzz harness**
//! ([`diff`], [`arbitrary`]): operator crates register scalar references
//! and vector kernels, and `tests/differential.rs` at the workspace root
//! runs them across every backend × thread count on adversarial inputs.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod arbitrary;
pub mod diff;
pub mod fault;

pub use rsv_data::Rng;

/// Run `prop` on `cases` generated inputs derived from `seed`.
///
/// Each case gets an independent RNG stream, so inserting or removing
/// cases never perturbs later ones. On panic, the offending case seed is
/// reported so the failure can be replayed with [`check_one`].
pub fn check<F>(name: &str, cases: u64, seed: u64, mut prop: F)
where
    F: FnMut(&mut Rng),
{
    for case in 0..cases {
        let case_seed = case_seed(seed, case);
        let mut rng = Rng::seed_from_u64(case_seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prop(&mut rng)));
        if let Err(payload) = result {
            eprintln!(
                "property `{name}` failed at case {case}/{cases} \
                 (replay: check_one(\"{name}\", {case_seed:#x}, ..))"
            );
            std::panic::resume_unwind(payload);
        }
    }
}

/// Replay a single case by its reported case seed.
pub fn check_one<F>(name: &str, case_seed: u64, mut prop: F)
where
    F: FnMut(&mut Rng),
{
    let mut rng = Rng::seed_from_u64(case_seed);
    eprintln!("replaying property `{name}` case seed {case_seed:#x}");
    prop(&mut rng);
}

/// The derived seed for one case of a property (also used by the
/// differential harness so its replay seeds mix the same way).
pub(crate) fn case_seed(seed: u64, case: u64) -> u64 {
    // splitmix-style mix so adjacent (seed, case) pairs decorrelate
    let mut z = seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A `Vec<u32>` of uniform keys with random length in `[min_len, max_len)`.
pub fn vec_u32(rng: &mut Rng, min_len: usize, max_len: usize) -> Vec<u32> {
    let n = len_in(rng, min_len, max_len);
    (0..n).map(|_| rng.next_u32()).collect()
}

/// A `Vec<u32>` with every element drawn from `[0, domain)`.
pub fn vec_u32_in(rng: &mut Rng, min_len: usize, max_len: usize, domain: u32) -> Vec<u32> {
    let n = len_in(rng, min_len, max_len);
    (0..n)
        .map(|_| rng.below(u64::from(domain)) as u32)
        .collect()
}

/// A random length in `[min_len, max_len)`, biased toward interesting
/// boundaries (empty, one element, vector-width multiples ±1).
pub fn len_in(rng: &mut Rng, min_len: usize, max_len: usize) -> usize {
    assert!(min_len < max_len);
    if rng.f64() < 0.25 {
        let boundary: Vec<usize> = [0usize, 1, 15, 16, 17, 31, 32, 33]
            .into_iter()
            .filter(|&b| b >= min_len && b < max_len)
            .collect();
        if !boundary.is_empty() {
            return boundary[rng.index(boundary.len())];
        }
    }
    min_len + rng.index(max_len - min_len)
}

/// A key avoiding the hash tables' empty sentinel (`u32::MAX`), drawn from
/// a narrow domain half the time (to force repeats and collisions).
pub fn key_not_sentinel(rng: &mut Rng, narrow: u32) -> u32 {
    if rng.f64() < 0.5 {
        rng.below(u64::from(narrow)) as u32
    } else {
        rng.next_u32() % (u32::MAX - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_reproducible() {
        let mut first = Vec::new();
        check("record", 5, 42, |rng| first.push(rng.next_u64()));
        let mut second = Vec::new();
        check("record", 5, 42, |rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
    }

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..1000 {
            let n = len_in(&mut rng, 3, 50);
            assert!((3..50).contains(&n), "{n}");
        }
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_propagate() {
        check("boom", 3, 1, |_| panic!("boom"));
    }
}
