//! Operator-level query profiling ([`Engine::profile`]).
//!
//! Runs one engine operation with the metrics layer enabled
//! ([`rsv_metrics`]) and returns a [`QueryProfile`]: every work counter
//! the operator kernels recorded, per worker thread, plus wall time and
//! tuple counts — serializable as one compact JSON row in the same style
//! as the bench harness.
//!
//! Profiled runs produce byte-identical operator output to the plain
//! engine methods; metering only adds counter accumulation.

use std::time::Instant;

use rsv_column::CompressedRelation;
use rsv_data::Relation;
use rsv_join::JoinVariant;
use rsv_metrics::CountingSink;

use crate::Engine;

/// One engine operation to run under [`Engine::profile`].
pub enum Query<'a> {
    /// Selection scan: tuples with `lower ≤ key ≤ upper`.
    Select {
        /// Scanned relation.
        rel: &'a Relation,
        /// Inclusive lower bound.
        lower: u32,
        /// Inclusive upper bound.
        upper: u32,
    },
    /// Fused compressed selection scan over a bit-packed relation.
    SelectCompressed {
        /// Scanned compressed relation.
        rel: &'a CompressedRelation,
        /// Inclusive lower bound.
        lower: u32,
        /// Inclusive upper bound.
        upper: u32,
    },
    /// Hash join `inner ⋈ outer` on the key columns.
    HashJoin {
        /// Build-side relation.
        inner: &'a Relation,
        /// Probe-side relation.
        outer: &'a Relation,
        /// Join strategy.
        variant: JoinVariant,
    },
    /// Bloom-filter semi-join of `rel` against `filter_keys`.
    BloomSemijoin {
        /// Probed relation.
        rel: &'a Relation,
        /// Keys the filter is built from.
        filter_keys: &'a [u32],
    },
    /// Stable LSB radixsort by key (the input is not mutated).
    Sort {
        /// Relation to sort.
        rel: &'a Relation,
    },
    /// Hash partitioning into `fanout` parts.
    HashPartition {
        /// Partitioned relation.
        rel: &'a Relation,
        /// Partition count.
        fanout: usize,
    },
}

impl Query<'_> {
    /// Short operation name used in the profile row.
    pub fn label(&self) -> &'static str {
        match self {
            Query::Select { .. } => "select",
            Query::SelectCompressed { .. } => "select-compressed",
            Query::HashJoin { variant, .. } => match variant {
                JoinVariant::NoPartition => "join-no-partition",
                JoinVariant::MinPartition => "join-min-partition",
                JoinVariant::MaxPartition => "join-max-partition",
            },
            Query::BloomSemijoin { .. } => "bloom-semijoin",
            Query::Sort { .. } => "sort",
            Query::HashPartition { .. } => "hash-partition",
        }
    }

    fn tuples_in(&self) -> u64 {
        match self {
            Query::Select { rel, .. }
            | Query::BloomSemijoin { rel, .. }
            | Query::Sort { rel }
            | Query::HashPartition { rel, .. } => rel.len() as u64,
            Query::SelectCompressed { rel, .. } => rel.len() as u64,
            Query::HashJoin { inner, outer, .. } => (inner.len() + outer.len()) as u64,
        }
    }
}

/// The result of [`Engine::profile`]: one operation's work counters (per
/// worker thread), wall time and tuple counts.
#[derive(Debug, Clone)]
pub struct QueryProfile {
    /// Operation label ([`Query::label`]).
    pub label: &'static str,
    /// SIMD backend name the engine ran on.
    pub backend: &'static str,
    /// Worker thread count.
    pub threads: usize,
    /// Input tuples (both relations for a join).
    pub tuples_in: u64,
    /// Output tuples (match count for a join).
    pub tuples_out: u64,
    /// Wall time of the profiled run.
    pub elapsed_ns: u64,
    /// Per-worker metric counters harvested from the run.
    pub sink: CountingSink,
}

impl QueryProfile {
    /// One compact JSON object, bench-row style: run descriptors first,
    /// then the merged metrics snapshot under `"metrics"`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"query\":\"{}\",\"backend\":\"{}\",\"threads\":{},\
             \"tuples_in\":{},\"tuples_out\":{},\"elapsed_ns\":{},\
             \"metrics\":{}}}",
            self.label,
            self.backend,
            self.threads,
            self.tuples_in,
            self.tuples_out,
            self.elapsed_ns,
            self.sink.total().to_json(),
        )
    }
}

impl Engine {
    /// Run `query` with metering enabled and return its [`QueryProfile`].
    ///
    /// The operator output is byte-identical to the corresponding plain
    /// engine method; the profile adds the counters every operator crate
    /// records (scan tuples, probe chain lengths, partition flushes,
    /// blocks decoded, sort passes, morsel scheduling…).
    pub fn profile(&self, query: Query<'_>) -> QueryProfile {
        let label = query.label();
        let tuples_in = query.tuples_in();
        let t0 = Instant::now();
        let (tuples_out, sink) = rsv_metrics::collect(|| match query {
            Query::Select { rel, lower, upper } => self.select(rel, lower, upper).len() as u64,
            Query::SelectCompressed { rel, lower, upper } => {
                self.select_compressed(rel, lower, upper).len() as u64
            }
            Query::HashJoin {
                inner,
                outer,
                variant,
            } => self.hash_join_variant(inner, outer, variant).matches() as u64,
            Query::BloomSemijoin { rel, filter_keys } => {
                self.bloom_semijoin(rel, filter_keys).len() as u64
            }
            Query::Sort { rel } => {
                let mut sorted = rel.clone();
                self.sort(&mut sorted);
                sorted.len() as u64
            }
            Query::HashPartition { rel, fanout } => self.hash_partition(rel, fanout).0.len() as u64,
        });
        QueryProfile {
            label,
            backend: self.backend().name(),
            threads: self.threads,
            tuples_in,
            tuples_out,
            elapsed_ns: t0.elapsed().as_nanos() as u64,
            sink,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsv_metrics::Metric;

    fn rel(n: usize, seed: u64) -> Relation {
        let mut rng = rsv_data::rng(seed);
        Relation::with_rid_payloads(rsv_data::uniform_u32(n, &mut rng))
    }

    #[test]
    fn select_profile_counts_every_tuple() {
        let r = rel(10_000, 41);
        let e = Engine::new().with_threads(2);
        let expected = e.select(&r, 0, u32::MAX / 2);
        let p = e.profile(Query::Select {
            rel: &r,
            lower: 0,
            upper: u32::MAX / 2,
        });
        let total = p.sink.total();
        assert_eq!(p.tuples_in, r.len() as u64);
        assert_eq!(p.tuples_out, expected.len() as u64);
        assert_eq!(total.get(Metric::ScanTuplesIn), r.len() as u64);
        assert_eq!(total.get(Metric::ScanTuplesOut), p.tuples_out);
        assert!(total.get(Metric::MorselsClaimed) > 0);
    }

    #[test]
    fn join_profile_splits_build_and_probe() {
        let w = rsv_data::join_workload(1_000, 4_000, 1.0, 0.7, &mut rsv_data::rng(42));
        let e = Engine::new().with_threads(2);
        let p = e.profile(Query::HashJoin {
            inner: &w.inner,
            outer: &w.outer,
            variant: JoinVariant::MaxPartition,
        });
        let total = p.sink.total();
        assert_eq!(p.tuples_out, w.expected_matches as u64);
        assert_eq!(total.get(Metric::JoinBuildTuples), w.inner.len() as u64);
        assert_eq!(total.get(Metric::JoinProbeTuples), w.outer.len() as u64);
        // every outer tuple reaches exactly one cache-resident table probe
        assert_eq!(total.get(Metric::LpKeysProbed), w.outer.len() as u64);
        assert!(total.get(Metric::LpProbes) >= total.get(Metric::LpKeysProbed));
    }

    #[test]
    fn profile_json_has_run_descriptors_and_metrics() {
        let r = rel(2_000, 43);
        let e = Engine::new();
        let p = e.profile(Query::Sort { rel: &r });
        let json = p.to_json();
        assert!(json.starts_with("{\"query\":\"sort\""), "{json}");
        assert!(json.contains("\"metrics\":{"), "{json}");
        assert!(json.contains("\"sort_passes\":4"), "{json}");
        assert!(json.ends_with("}}"), "{json}");
    }

    #[test]
    fn profiled_runs_leave_no_ambient_metering() {
        let r = rel(1_000, 44);
        let e = Engine::new();
        let _ = e.profile(Query::Select {
            rel: &r,
            lower: 0,
            upper: 10,
        });
        assert!(!rsv_metrics::enabled());
        let (_, sink) = rsv_metrics::collect(|| ());
        assert!(sink.total().is_zero());
    }
}
