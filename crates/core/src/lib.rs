//! High-level API for the SIGMOD 2015 *Rethinking SIMD Vectorization for
//! In-Memory Databases* reproduction.
//!
//! This crate re-exports every operator crate and offers [`Engine`], a
//! convenience wrapper that picks the best SIMD backend at runtime and
//! exposes the paper's operators — selection scans, hash joins, Bloom
//! semi-joins, partitioning and sorting — as one-call methods.
//!
//! ```
//! use rsv_core::{Engine, Relation};
//!
//! let engine = Engine::new();
//! let orders = Relation::with_rid_payloads(vec![40, 10, 30, 20]);
//! let cheap = engine.select(&orders, 0, 25);
//! assert_eq!(cheap.keys, vec![10, 20]);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod profile;

pub use rsv_bloom as bloom;
pub use rsv_column as column;
pub use rsv_data as data;
pub use rsv_exec as exec;
pub use rsv_hashtab as hashtab;
pub use rsv_join as join;
pub use rsv_metrics as metrics;
pub use rsv_partition as partition;
pub use rsv_scan as scan;
pub use rsv_simd as simd;
pub use rsv_sort as sort;

pub use profile::{Query, QueryProfile};

pub use rsv_bloom::BloomFilter;
pub use rsv_column::{CompressedColumn, CompressedRelation, RelationCompressExt};
pub use rsv_data::Relation;
pub use rsv_hashtab::JoinSink;
pub use rsv_join::{JoinResult, JoinVariant};
pub use rsv_simd::Backend;
pub use rsv_sort::SortConfig;

pub use rsv_exec::{CancelToken, EngineError, MemoryBudget, RunContext};

use rsv_exec::{
    parallel_scope_stats, parallel_scope_try, ExecPolicy, MorselQueue, SharedBuffer,
    DEFAULT_MORSEL_TUPLES,
};
use rsv_partition::twopass::MAX_DIRECT_FANOUT;
use rsv_partition::PartitionFn;
use rsv_scan::{ScanPredicate, ScanVariant};
use rsv_simd::dispatch;

/// A vectorized in-memory query engine over 32-bit key/payload columns.
///
/// Parallel operators run on the morsel-driven work-stealing scheduler
/// ([`rsv_exec::MorselQueue`]); their output is byte-identical for every
/// thread count and morsel size (joins up to result row order, which is
/// inherently unstable under vectorized probing).
#[derive(Debug, Clone, Copy)]
pub struct Engine {
    backend: Backend,
    threads: usize,
    morsel_tuples: usize,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Engine on the best available SIMD backend, single-threaded.
    pub fn new() -> Self {
        Engine {
            backend: Backend::best(),
            threads: 1,
            morsel_tuples: DEFAULT_MORSEL_TUPLES,
        }
    }

    /// Engine on a specific backend.
    pub fn with_backend(backend: Backend) -> Self {
        Engine {
            backend,
            threads: 1,
            morsel_tuples: DEFAULT_MORSEL_TUPLES,
        }
    }

    /// Set the worker thread count for parallel operators. Values below 1
    /// are clamped to 1 (a builder knob misconfigured from e.g. an empty
    /// CPU set should degrade to single-threaded, not crash the query).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Set the scheduling granularity in tuples per morsel
    /// (`usize::MAX` = one morsel per worker, the paper's static split).
    /// Never changes operator output. Values below 1 are clamped to 1.
    pub fn with_morsel_tuples(mut self, morsel_tuples: usize) -> Self {
        self.morsel_tuples = morsel_tuples.max(1);
        self
    }

    /// The backend in use.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    fn policy(&self) -> ExecPolicy {
        ExecPolicy::new(self.threads).with_morsel_tuples(self.morsel_tuples)
    }

    fn policy_with(&self, run: &RunContext) -> ExecPolicy {
        self.policy().with_run(run.clone())
    }

    /// Selection scan: all tuples with `lower ≤ key ≤ upper` (paper §4,
    /// vectorized Algorithm 3), morsel-parallel.
    pub fn select(&self, rel: &Relation, lower: u32, upper: u32) -> Relation {
        let pred = ScanPredicate { lower, upper };
        let mut out_keys = vec![0u32; rel.len()];
        let mut out_pays = vec![0u32; rel.len()];
        let (n, _) = rsv_scan::scan_parallel(
            self.backend,
            ScanVariant::VectorSelStoreIndirect,
            &rel.keys,
            &rel.payloads,
            pred,
            &mut out_keys,
            &mut out_pays,
            &self.policy(),
        );
        out_keys.truncate(n);
        out_pays.truncate(n);
        Relation::new(out_keys, out_pays)
    }

    /// Fallible [`Engine::select`] under a [`RunContext`]: the output
    /// buffers are gated by the run's memory budget, cancellation is
    /// observed at morsel-claim boundaries (so the latency from
    /// [`CancelToken::cancel`] to return is bounded by one morsel), and a
    /// worker panic surfaces as [`EngineError::WorkerPanicked`] instead of
    /// unwinding through the caller.
    pub fn try_select(
        &self,
        rel: &Relation,
        lower: u32,
        upper: u32,
        run: &RunContext,
    ) -> Result<Relation, EngineError> {
        let pred = ScanPredicate { lower, upper };
        let out_bytes = 2 * (rel.len() as u64) * std::mem::size_of::<u32>() as u64;
        run.reserve(out_bytes)?;
        let mut out_keys = vec![0u32; rel.len()];
        let mut out_pays = vec![0u32; rel.len()];
        let r = rsv_scan::scan_parallel_try(
            self.backend,
            ScanVariant::VectorSelStoreIndirect,
            &rel.keys,
            &rel.payloads,
            pred,
            &mut out_keys,
            &mut out_pays,
            &self.policy_with(run),
        );
        run.budget.release(out_bytes);
        let (n, _) = r?;
        out_keys.truncate(n);
        out_pays.truncate(n);
        Ok(Relation::new(out_keys, out_pays))
    }

    /// Compress a relation's columns (FOR + bit-packing, block directory)
    /// on this engine's backend. See [`rsv_column`].
    pub fn compress(&self, rel: &Relation) -> CompressedRelation {
        CompressedRelation::compress_with(self.backend, rel)
    }

    /// Decompress a compressed relation back to materialized columns.
    pub fn decompress(&self, rel: &CompressedRelation) -> Relation {
        rel.decompress_with(self.backend)
    }

    /// Fused compressed selection scan: like [`Engine::select`], but the
    /// input stays bit-packed and qualifying blocks are decompressed into
    /// registers on the fly (never materialized), morsel-parallel with
    /// block-aligned morsels. Output is byte-identical to
    /// `self.select(&self.decompress(rel), lower, upper)`.
    pub fn select_compressed(&self, rel: &CompressedRelation, lower: u32, upper: u32) -> Relation {
        let pred = ScanPredicate { lower, upper };
        let mut out_keys = vec![0u32; rel.len()];
        let mut out_pays = vec![0u32; rel.len()];
        let (n, _) = rsv_column::select_fused_parallel(
            self.backend,
            ScanVariant::VectorSelStoreIndirect,
            &rel.keys,
            &rel.payloads,
            pred,
            &mut out_keys,
            &mut out_pays,
            &self.policy(),
        );
        out_keys.truncate(n);
        out_pays.truncate(n);
        Relation::new(out_keys, out_pays)
    }

    /// Hash join `inner ⋈ outer` on the key columns using the paper's
    /// fastest variant (max-partition, §9). Returns `(key, inner payload,
    /// outer payload)` triples.
    pub fn hash_join(&self, inner: &Relation, outer: &Relation) -> JoinResult {
        self.hash_join_variant(inner, outer, JoinVariant::MaxPartition)
    }

    /// Hash join with an explicit variant.
    pub fn hash_join_variant(
        &self,
        inner: &Relation,
        outer: &Relation,
        variant: JoinVariant,
    ) -> JoinResult {
        let policy = self.policy();
        dispatch!(self.backend, s => {
            match variant {
                JoinVariant::NoPartition => {
                    rsv_join::join_no_partition_policy(s, true, inner, outer, &policy).0
                }
                JoinVariant::MinPartition => {
                    rsv_join::join_min_partition_policy(s, true, inner, outer, &policy).0
                }
                JoinVariant::MaxPartition => {
                    rsv_join::join_max_partition_policy(
                        s, true, inner, outer, &policy, rsv_join::DEFAULT_PART_TUPLES,
                    ).0
                }
            }
        })
    }

    /// Fallible [`Engine::hash_join`] (max-partition variant) under a
    /// [`RunContext`].
    pub fn try_hash_join(
        &self,
        inner: &Relation,
        outer: &Relation,
        run: &RunContext,
    ) -> Result<JoinResult, EngineError> {
        self.try_hash_join_variant(inner, outer, JoinVariant::MaxPartition, run)
    }

    /// Fallible [`Engine::hash_join_variant`] under a [`RunContext`]:
    /// partitioned columns and hash tables are gated by the memory budget,
    /// cancellation is observed at every morsel/task claim, and worker
    /// panics surface as [`EngineError::WorkerPanicked`].
    pub fn try_hash_join_variant(
        &self,
        inner: &Relation,
        outer: &Relation,
        variant: JoinVariant,
        run: &RunContext,
    ) -> Result<JoinResult, EngineError> {
        let policy = self.policy_with(run);
        dispatch!(self.backend, s => {
            match variant {
                JoinVariant::NoPartition => {
                    rsv_join::join_no_partition_policy_try(s, true, inner, outer, &policy)
                        .map(|r| r.0)
                }
                JoinVariant::MinPartition => {
                    rsv_join::join_min_partition_policy_try(s, true, inner, outer, &policy)
                        .map(|r| r.0)
                }
                JoinVariant::MaxPartition => {
                    rsv_join::join_max_partition_policy_try(
                        s, true, inner, outer, &policy, rsv_join::DEFAULT_PART_TUPLES,
                    ).map(|r| r.0)
                }
            }
        })
    }

    /// Bloom-filter semi-join (paper §6): keep the tuples of `rel` whose
    /// key is (probably) present in `filter_keys`. Probing is
    /// morsel-parallel; qualifiers keep input order.
    pub fn bloom_semijoin(&self, rel: &Relation, filter_keys: &[u32]) -> Relation {
        let mut filter = BloomFilter::new(filter_keys.len(), 10, 5);
        filter.build(filter_keys);
        let n = rel.len();
        let q = MorselQueue::new(n, &self.policy(), 16);
        let m = q.morsel_count();
        let positions: Vec<u32> = (0..n as u32).collect();
        let counts = SharedBuffer::from_vec(vec![0usize; m]);
        let ok_buf = SharedBuffer::from_vec(vec![0u32; n]);
        let oi_buf = SharedBuffer::from_vec(vec![0u32; n]);
        let filter_ref = &filter;
        parallel_scope_stats(self.threads, |ctx| {
            // SAFETY: each morsel writes only the output region at its own
            // input offsets plus its own count slot; reads happen after
            // the scope joins.
            let (ok, oi, cs) = unsafe { (ok_buf.view_mut(), oi_buf.view_mut(), counts.view_mut()) };
            for mo in ctx.morsels(&q) {
                ctx.phase("bloom-probe", || {
                    let r = mo.range.clone();
                    // probe with the input *position* as the payload: the
                    // vectorized probe recirculates partially-checked
                    // lanes and so emits qualifiers out of input order —
                    // the positions let us restore it below.
                    cs[mo.id] = dispatch!(self.backend, s => {
                        filter_ref.probe_vector(
                            s,
                            &rel.keys[r.clone()],
                            &positions[r.clone()],
                            &mut ok[r.clone()],
                            &mut oi[r],
                        )
                    });
                });
            }
        });
        // Compact the per-morsel qualifier runs in morsel order (runs only
        // move left, so front-to-back copies never clobber a pending run).
        let counts = counts.into_vec();
        let mut idxs = oi_buf.into_vec();
        drop(ok_buf);
        let mut dest = 0usize;
        for (id, &c) in counts.iter().enumerate() {
            let src = q.range_of(id).start;
            if src != dest {
                idxs.copy_within(src..src + c, dest);
            }
            dest += c;
        }
        idxs.truncate(dest);
        // Restore strict input order: positions are unique, so the sorted
        // qualifier set — and therefore the output — is byte-identical
        // for every thread count and morsel size.
        idxs.sort_unstable();
        let out_keys: Vec<u32> = idxs.iter().map(|&i| rel.keys[i as usize]).collect();
        let out_pays: Vec<u32> = idxs.iter().map(|&i| rel.payloads[i as usize]).collect();
        Relation::new(out_keys, out_pays)
    }

    /// Stable LSB radixsort by key (paper §8).
    pub fn sort(&self, rel: &mut Relation) {
        let cfg = SortConfig {
            radix_bits: 8,
            threads: self.threads,
            morsel_tuples: self.morsel_tuples,
        };
        let mut keys = std::mem::take(&mut rel.keys);
        let mut pays = std::mem::take(&mut rel.payloads);
        dispatch!(self.backend, s => {
            rsv_sort::lsb_radixsort_vector(s, &mut keys, &mut pays, &cfg)
        });
        rel.keys = keys;
        rel.payloads = pays;
    }

    /// Fallible [`Engine::sort`] under a [`RunContext`]: the radixsort's
    /// ping-pong scratch columns are gated by the memory budget and
    /// cancellation is observed at morsel-claim boundaries of every pass.
    /// On error the relation keeps its tuples (possibly partially
    /// reordered — rerun to completion to sort them).
    pub fn try_sort(&self, rel: &mut Relation, run: &RunContext) -> Result<(), EngineError> {
        let cfg = SortConfig {
            radix_bits: 8,
            threads: self.threads,
            morsel_tuples: self.morsel_tuples,
        };
        let mut keys = std::mem::take(&mut rel.keys);
        let mut pays = std::mem::take(&mut rel.payloads);
        let r = dispatch!(self.backend, s => {
            rsv_sort::radixsort_pairs_try(s, true, &mut keys, &mut pays, &cfg, run)
        });
        rel.keys = keys;
        rel.payloads = pays;
        r.map(|_| ())
    }

    /// Hash-partition a relation into `fanout` parts (paper §7, buffered
    /// shuffling), morsel-parallel and stable. Returns the partitioned
    /// relation and the partition start offsets.
    ///
    /// Fanouts past [`rsv_partition::twopass::MAX_DIRECT_FANOUT`] degrade
    /// transparently to a two-pass decomposition (the single-pass staging
    /// buffers would outgrow the cache) with byte-identical output.
    pub fn hash_partition(&self, rel: &Relation, fanout: usize) -> (Relation, Vec<u32>) {
        let f = rsv_partition::HashFn::new(fanout);
        let mut out_keys = vec![0u32; rel.len()];
        let mut out_pays = vec![0u32; rel.len()];
        let pass = dispatch!(self.backend, s => {
            rsv_partition::twopass::hash_partition_twopass(
                s, true, f, &rel.keys, &rel.payloads, &mut out_keys, &mut out_pays,
                &self.policy(), MAX_DIRECT_FANOUT,
            ).0
        });
        (Relation::new(out_keys, out_pays), pass.partition_starts)
    }

    /// Fallible [`Engine::hash_partition`] under a [`RunContext`]: the
    /// output (and any two-pass scratch) columns are gated by the memory
    /// budget and cancellation is observed at morsel-claim boundaries.
    pub fn try_hash_partition(
        &self,
        rel: &Relation,
        fanout: usize,
        run: &RunContext,
    ) -> Result<(Relation, Vec<u32>), EngineError> {
        let f = rsv_partition::HashFn::new(fanout);
        let out_bytes = 2 * (rel.len() as u64) * std::mem::size_of::<u32>() as u64;
        run.reserve(out_bytes)?;
        let mut out_keys = vec![0u32; rel.len()];
        let mut out_pays = vec![0u32; rel.len()];
        let r = dispatch!(self.backend, s => {
            rsv_partition::twopass::hash_partition_twopass_try(
                s, true, f, &rel.keys, &rel.payloads, &mut out_keys, &mut out_pays,
                &self.policy_with(run), MAX_DIRECT_FANOUT,
            )
        });
        run.budget.release(out_bytes);
        let (pass, _) = r?;
        Ok((Relation::new(out_keys, out_pays), pass.partition_starts))
    }

    /// Which partition a key belongs to under [`Engine::hash_partition`].
    pub fn hash_partition_of(&self, key: u32, fanout: usize) -> usize {
        rsv_partition::HashFn::new(fanout).partition(key)
    }

    /// Group-by aggregation: per distinct key, `COUNT(*)` and
    /// `SUM(payload)` (vectorized hash aggregation, paper §5's second
    /// hash-table use case). Returns `(key, count, sum)` rows sorted by
    /// key — workers aggregate claimed morsels into private tables whose
    /// merge is commutative, so the result is schedule-independent.
    ///
    /// `expected_groups` sizes the aggregation tables; it may be any upper
    /// bound (e.g. `rel.len()`).
    pub fn group_by_sum(&self, rel: &Relation, expected_groups: usize) -> Vec<(u32, u32, u64)> {
        let q = MorselQueue::new(rel.len(), &self.policy(), 16);
        let (tables, _) = parallel_scope_stats(self.threads, |ctx| {
            let mut table = rsv_hashtab::GroupAggTable::new(expected_groups.max(1), 0.5);
            for mo in ctx.morsels(&q) {
                ctx.phase("aggregate", || {
                    let r = mo.range.clone();
                    dispatch!(self.backend, s => {
                        table.update_vector(s, &rel.keys[r.clone()], &rel.payloads[r])
                    });
                });
            }
            table
        });
        let mut merged: std::collections::BTreeMap<u32, (u32, u64)> = Default::default();
        for table in &tables {
            for (k, c, sum) in table.iter() {
                let e = merged.entry(k).or_default();
                e.0 += c;
                e.1 += sum;
            }
        }
        merged
            .into_iter()
            .map(|(k, (c, sum))| (k, c, sum))
            .collect()
    }

    /// Fallible [`Engine::group_by_sum`] under a [`RunContext`]:
    /// cancellation is observed at morsel-claim boundaries and a worker
    /// panic (e.g. an aggregation-table overflow) surfaces as
    /// [`EngineError::WorkerPanicked`] after the sibling workers drain.
    pub fn try_group_by_sum(
        &self,
        rel: &Relation,
        expected_groups: usize,
        run: &RunContext,
    ) -> Result<Vec<(u32, u32, u64)>, EngineError> {
        let q = MorselQueue::new(rel.len(), &self.policy_with(run), 16);
        let scope = parallel_scope_try(self.threads, |ctx| {
            let mut table = rsv_hashtab::GroupAggTable::new(expected_groups.max(1), 0.5);
            for mo in ctx.morsels(&q) {
                ctx.phase("aggregate", || {
                    let r = mo.range.clone();
                    dispatch!(self.backend, s => {
                        table.update_vector(s, &rel.keys[r.clone()], &rel.payloads[r])
                    });
                });
            }
            table
        });
        let (tables, _) = match scope {
            Ok(v) => v,
            Err(wp) => return Err(wp.into_engine_error()),
        };
        run.check_cancelled()?;
        let mut merged: std::collections::BTreeMap<u32, (u32, u64)> = Default::default();
        for table in &tables {
            for (k, c, sum) in table.iter() {
                let e = merged.entry(k).or_default();
                e.0 += c;
                e.1 += sum;
            }
        }
        Ok(merged
            .into_iter()
            .map(|(k, (c, sum))| (k, c, sum))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new().with_threads(2)
    }

    #[test]
    fn select_filters() {
        let rel = Relation::with_rid_payloads(vec![5, 50, 500, 5000]);
        let out = engine().select(&rel, 10, 1000);
        assert_eq!(out.keys, vec![50, 500]);
        assert_eq!(out.payloads, vec![1, 2]);
    }

    #[test]
    fn select_compressed_matches_select() {
        let mut rng = rsv_data::rng(306);
        let rel = Relation::with_rid_payloads(
            rsv_data::uniform_u32(20_000, &mut rng)
                .iter()
                .map(|k| k % 100_000)
                .collect(),
        );
        for b in Backend::all_available() {
            for threads in [1usize, 4] {
                let e = Engine::with_backend(b)
                    .with_threads(threads)
                    .with_morsel_tuples(3_000);
                let c = e.compress(&rel);
                assert_eq!(e.decompress(&c), rel, "{} roundtrip", b.name());
                let raw = e.select(&rel, 10_000, 60_000);
                let fused = e.select_compressed(&c, 10_000, 60_000);
                assert_eq!(fused, raw, "{} t={threads}", b.name());
            }
        }
    }

    #[test]
    fn relation_compress_ext_is_reachable() {
        let rel = Relation::with_rid_payloads(vec![9, 8, 7, 6]);
        let c = rel.compress();
        assert_eq!(c.decompress(), rel);
    }

    #[test]
    fn join_variants_agree() {
        let mut rng = rsv_data::rng(301);
        let w = rsv_data::join_workload(2_000, 6_000, 1.0, 0.8, &mut rng);
        let e = engine();
        let results: Vec<JoinResult> = JoinVariant::ALL
            .iter()
            .map(|&v| e.hash_join_variant(&w.inner, &w.outer, v))
            .collect();
        assert_eq!(results[0].matches(), w.expected_matches);
        let fp = results[0].fingerprint();
        for r in &results[1..] {
            assert_eq!(r.matches(), w.expected_matches);
            assert_eq!(r.fingerprint(), fp);
        }
    }

    #[test]
    fn sort_orders_relation() {
        let mut rng = rsv_data::rng(302);
        let mut rel = Relation::with_rid_payloads(rsv_data::uniform_u32(10_000, &mut rng));
        let orig = rel.clone();
        engine().sort(&mut rel);
        assert!(rel.keys.windows(2).all(|w| w[0] <= w[1]));
        for (k, p) in rel.iter() {
            assert_eq!(orig.keys[p as usize], k);
        }
    }

    #[test]
    fn bloom_semijoin_no_false_negatives() {
        let mut rng = rsv_data::rng(303);
        let all = rsv_data::unique_u32(3_000, &mut rng);
        let (present, absent) = all.split_at(1_000);
        let rel =
            Relation::with_rid_payloads(present.iter().chain(absent.iter()).copied().collect());
        let out = engine().bloom_semijoin(&rel, present);
        // every present key survives; most absent keys are gone
        assert!(out.len() >= 1_000);
        assert!(out.len() < 1_000 + 200);
        let kept: std::collections::HashSet<u32> = out.keys.iter().copied().collect();
        assert!(present.iter().all(|k| kept.contains(k)));
    }

    #[test]
    fn partition_respects_function() {
        let mut rng = rsv_data::rng(304);
        let rel = Relation::with_rid_payloads(rsv_data::uniform_u32(5_000, &mut rng));
        let e = engine();
        let (out, starts) = e.hash_partition(&rel, 16);
        assert_eq!(out.len(), rel.len());
        assert_eq!(starts.len(), 16);
        for p in 0..16 {
            let end = if p + 1 < 16 {
                starts[p + 1] as usize
            } else {
                out.len()
            };
            for q in starts[p] as usize..end {
                assert_eq!(e.hash_partition_of(out.keys[q], 16), p);
            }
        }
    }

    #[test]
    fn group_by_sum_matches_reference() {
        let mut rng = rsv_data::rng(305);
        let keys: Vec<u32> = rsv_data::uniform_u32(20_000, &mut rng)
            .iter()
            .map(|k| k % 500)
            .collect();
        let rel = Relation::new(keys.clone(), rsv_data::uniform_u32(20_000, &mut rng));
        let rows = engine().group_by_sum(&rel, 500);
        let mut expected: std::collections::HashMap<u32, (u32, u64)> = Default::default();
        for (k, v) in rel.iter() {
            let e = expected.entry(k).or_default();
            e.0 += 1;
            e.1 += u64::from(v);
        }
        assert_eq!(rows.len(), expected.len());
        for (k, c, s) in rows {
            assert_eq!(expected[&k], (c, s), "group {k}");
        }
    }

    #[test]
    fn engine_runs_on_every_backend() {
        for b in Backend::all_available() {
            let e = Engine::with_backend(b);
            let rel = Relation::with_rid_payloads(vec![3, 1, 2]);
            let out = e.select(&rel, 2, 3);
            assert_eq!(out.len(), 2, "backend {}", b.name());
        }
    }
}
