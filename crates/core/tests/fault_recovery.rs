//! Deterministic fault-injection coverage of the fallible engine API
//! (`cargo test -p rsv-core --features failpoints --test fault_recovery`).
//!
//! For every engine operator the harness first *discovers* which
//! failpoints the operator actually passes through (`fault::trace()`
//! counts hits even when nothing is armed), then replays the operator
//! under each discovered point × injected action × thread count:
//!
//! * **Panic** at a worker-side point must surface as
//!   [`EngineError::WorkerPanicked`] carrying the injected message —
//!   never unwind through the caller, never hang a sibling;
//! * **Cancel** (the hook trips the run's [`CancelToken`]) must surface
//!   as [`EngineError::Cancelled`] within one morsel;
//! * **DenyAlloc** at the budget-reservation point must surface as
//!   [`EngineError::BudgetExceeded`] with nothing left reserved.
//!
//! After every injection the same engine re-runs the same query with the
//! faults cleared and must produce the reference answer: injected faults
//! never poison engine, tables, or columns.

#![cfg(feature = "failpoints")]

use std::sync::{Mutex, MutexGuard};

use rsv_core::{Engine, EngineError, JoinVariant, Relation, RunContext};
use rsv_testkit::fault::{self, FaultAction, Trigger};

/// The failpoint registry is process-global and `cargo test` runs tests
/// on many threads; serialize every test that arms it. (The registry's
/// own serializer is private to `rsv-testkit`'s unit tests.)
fn serialize() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn rel(n: usize) -> Relation {
    let keys: Vec<u32> = (0..n as u32)
        .map(|i| i.wrapping_mul(2654435761) | 1)
        .collect();
    let pays: Vec<u32> = keys.iter().map(|k| k ^ 0x5a5a_5a5a).collect();
    Relation::new(keys, pays)
}

/// Order-independent digest of a result column set, so reference and
/// replay runs compare equal regardless of worker interleaving.
fn digest(cols: &[&[u32]]) -> u64 {
    let mut d = 0u64;
    for col in cols {
        d = d.wrapping_mul(0x100_0000_01b3);
        for &v in *col {
            let mut z = u64::from(v).wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            d = d.wrapping_add(z ^ (z >> 31));
        }
        d = d.wrapping_add(col.len() as u64);
    }
    d
}

/// One engine operator under test: runs a fixed query and digests its
/// output. Every operator here is the `try_` form so injected faults
/// come back as values, not unwinds.
type Op = (
    &'static str,
    fn(&Engine, &RunContext) -> Result<u64, EngineError>,
);

fn op_select(e: &Engine, run: &RunContext) -> Result<u64, EngineError> {
    let r = e.try_select(&rel(12_000), 1 << 8, 1 << 30, run)?;
    Ok(digest(&[&r.keys, &r.payloads]))
}

fn join_digest(e: &Engine, v: JoinVariant, run: &RunContext) -> Result<u64, EngineError> {
    let result = e.try_hash_join_variant(&rel(3_000), &rel(12_000), v, run)?;
    let mut d = 0u64;
    for sink in &result.sinks {
        let (k, ip, op) = sink.columns();
        d = d.wrapping_add(digest(&[k, ip, op]));
    }
    Ok(d)
}

fn op_join_no(e: &Engine, run: &RunContext) -> Result<u64, EngineError> {
    join_digest(e, JoinVariant::NoPartition, run)
}

fn op_join_min(e: &Engine, run: &RunContext) -> Result<u64, EngineError> {
    join_digest(e, JoinVariant::MinPartition, run)
}

fn op_join_max(e: &Engine, run: &RunContext) -> Result<u64, EngineError> {
    join_digest(e, JoinVariant::MaxPartition, run)
}

fn op_sort(e: &Engine, run: &RunContext) -> Result<u64, EngineError> {
    let mut r = rel(12_000);
    e.try_sort(&mut r, run)?;
    // Positional digest: the sorted order itself is the result.
    let mut d = 0u64;
    for (i, &k) in r.keys.iter().enumerate() {
        d = d.wrapping_mul(31).wrapping_add(u64::from(k) ^ i as u64);
    }
    Ok(d)
}

fn op_partition(e: &Engine, run: &RunContext) -> Result<u64, EngineError> {
    let (part, starts) = e.try_hash_partition(&rel(12_000), 64, run)?;
    Ok(digest(&[&part.keys, &part.payloads, &starts]))
}

fn op_partition_twopass(e: &Engine, run: &RunContext) -> Result<u64, EngineError> {
    let fanout = rsv_core::partition::twopass::MAX_DIRECT_FANOUT * 2;
    let (part, starts) = e.try_hash_partition(&rel(12_000), fanout, run)?;
    Ok(digest(&[&part.keys, &part.payloads, &starts]))
}

fn op_group_by(e: &Engine, run: &RunContext) -> Result<u64, EngineError> {
    let rows = e.try_group_by_sum(&rel(12_000), 12_000, run)?;
    let mut d = 0u64;
    for (k, c, s) in rows {
        d = d
            .wrapping_mul(31)
            .wrapping_add(u64::from(k) ^ u64::from(c) ^ s);
    }
    Ok(d)
}

const OPS: &[Op] = &[
    ("select", op_select),
    ("join-no-partition", op_join_no),
    ("join-min-partition", op_join_min),
    ("join-max-partition", op_join_max),
    ("sort", op_sort),
    ("hash-partition", op_partition),
    ("hash-partition-twopass", op_partition_twopass),
    ("group-by-sum", op_group_by),
];

/// Failpoints that fire on the coordinating thread, outside any
/// panic-isolated worker scope. A `Panic` armed there would unwind
/// through the caller by design — their intended injections are
/// `DenyAlloc` (budget) and `Cancel`.
const COORDINATOR_POINTS: &[&str] = &["exec.budget.reserve"];

/// Discover which failpoints `op` passes through on a clean run.
fn discover(
    name: &str,
    op: fn(&Engine, &RunContext) -> Result<u64, EngineError>,
) -> Vec<&'static str> {
    fault::reset();
    let engine = Engine::new().with_threads(2);
    op(&engine, &RunContext::new()).unwrap_or_else(|e| panic!("{name}: clean run failed: {e}"));
    let traced: Vec<&'static str> = fault::trace().into_iter().map(|(p, _)| p).collect();
    assert!(
        traced.contains(&"exec.morsel.claim"),
        "{name}: every parallel operator must pass the morsel-claim failpoint, traced {traced:?}"
    );
    traced
}

/// After an injection, the cleared engine must answer the reference
/// query exactly.
fn assert_recovers(
    name: &str,
    point: &str,
    op: fn(&Engine, &RunContext) -> Result<u64, EngineError>,
    engine: &Engine,
    reference: u64,
) {
    fault::reset();
    let replay = op(engine, &RunContext::new())
        .unwrap_or_else(|e| panic!("{name}: not reusable after fault at `{point}`: {e}"));
    assert_eq!(
        replay, reference,
        "{name}: wrong answer after fault at `{point}`"
    );
}

/// Panic injected at every worker-side failpoint an operator passes,
/// across 1, 2 and 8 workers: the operator returns
/// [`EngineError::WorkerPanicked`] with the injected message, siblings
/// drain (the call returns rather than hanging), and the engine then
/// answers the reference query.
#[test]
fn injected_panics_surface_as_worker_panicked() {
    let _guard = serialize();
    for &(name, op) in OPS {
        let points = discover(name, op);
        let reference = {
            fault::reset();
            op(&Engine::new().with_threads(2), &RunContext::new()).expect("reference")
        };
        for point in points {
            if COORDINATOR_POINTS.contains(&point) {
                continue;
            }
            for threads in [1usize, 2, 8] {
                let engine = Engine::new().with_threads(threads);
                fault::reset();
                fault::arm(point, Trigger::Nth(1), FaultAction::Panic);
                let result = op(&engine, &RunContext::new());
                match result {
                    Err(EngineError::WorkerPanicked { ref payload, .. }) => {
                        assert!(
                            payload.contains("injected fault at failpoint"),
                            "{name}/{point}/t{threads}: foreign panic payload {payload:?}"
                        );
                    }
                    other => {
                        panic!("{name}/{point}/t{threads}: expected WorkerPanicked, got {other:?}")
                    }
                }
                assert_recovers(name, point, op, &engine, reference);
            }
        }
    }
}

/// Cancel injected at every failpoint an operator passes (the hook trips
/// the run's token mid-flight), across 1, 2 and 8 workers: the operator
/// returns [`EngineError::Cancelled`], and once the token fires no
/// further morsels are claimed (cancellation latency ≤ one morsel per
/// worker).
#[test]
fn injected_cancel_stops_within_a_morsel() {
    let _guard = serialize();
    for &(name, op) in OPS {
        let points = discover(name, op);
        let reference = {
            fault::reset();
            op(&Engine::new().with_threads(2), &RunContext::new()).expect("reference")
        };
        for point in points {
            for threads in [1usize, 2, 8] {
                let engine = Engine::new().with_threads(threads);
                let run = RunContext::new();
                fault::reset();
                let token = run.cancel_token();
                fault::set_cancel_hook(move || token.cancel());
                fault::arm(point, Trigger::Nth(1), FaultAction::Cancel);
                let result = op(&engine, &run);
                assert!(
                    matches!(result, Err(EngineError::Cancelled)),
                    "{name}/{point}/t{threads}: expected Cancelled, got {result:?}"
                );
                // Claim boundaries observe the token: each worker may
                // finish the morsel it already held when the hook fired
                // (plus the claims that raced the trip), but a claim
                // *after* the drain must not happen. The queue is spent
                // only if the op legitimately processed everything —
                // impossible here since it returned Cancelled before its
                // final phases completed.
                assert_eq!(run.budget.used(), 0, "{name}/{point}: leaked reservation");
                assert!(run.is_cancelled());
                assert_recovers(name, point, op, &engine, reference);
            }
        }
    }
}

/// DenyAlloc at the budget-reservation failpoint: every operator that
/// reserves working memory fails with [`EngineError::BudgetExceeded`],
/// releases everything, and recovers.
#[test]
fn injected_alloc_denial_surfaces_as_budget_exceeded() {
    let _guard = serialize();
    for &(name, op) in OPS {
        let points = discover(name, op);
        if !points.contains(&"exec.budget.reserve") {
            continue;
        }
        let reference = {
            fault::reset();
            op(&Engine::new().with_threads(2), &RunContext::new()).expect("reference")
        };
        for threads in [1usize, 2, 8] {
            let engine = Engine::new().with_threads(threads);
            let run = RunContext::new();
            fault::reset();
            fault::arm(
                "exec.budget.reserve",
                Trigger::Nth(1),
                FaultAction::DenyAlloc,
            );
            let result = op(&engine, &run);
            assert!(
                matches!(result, Err(EngineError::BudgetExceeded { .. })),
                "{name}/t{threads}: expected BudgetExceeded, got {result:?}"
            );
            assert_eq!(
                run.budget.used(),
                0,
                "{name}/t{threads}: leaked reservation"
            );
            assert_recovers(name, "exec.budget.reserve", op, &engine, reference);
        }
    }
}

/// The hashtable-internal failpoints (`hashtab.cuckoo.build`,
/// `hashtab.lp.build`) guard library-level build loops that engine
/// operators may not reach; exercise them directly so every registered
/// point has an injection test.
#[test]
fn hashtable_build_failpoints_fire() {
    let _guard = serialize();
    use rsv_core::hashtab::{CuckooTable, LinearTable, MulHash};

    let keys: Vec<u32> = (1..=500u32).collect();
    let pays = keys.clone();

    fault::reset();
    fault::arm("hashtab.cuckoo.build", Trigger::Nth(1), FaultAction::Panic);
    let r = std::panic::catch_unwind(|| {
        let mut t = CuckooTable::new(1_000, 0.5);
        t.build_scalar(&keys, &pays)
    });
    let payload = r.expect_err("armed cuckoo build must panic");
    let msg = rsv_core::exec::panic_message(payload.as_ref());
    assert!(msg.contains("injected fault at failpoint `hashtab.cuckoo.build`"));

    fault::reset();
    fault::arm("hashtab.lp.build", Trigger::Nth(1), FaultAction::Panic);
    let r = std::panic::catch_unwind(|| {
        let mut t = LinearTable::with_hash(1_000, 0.5, MulHash::nth(0));
        t.try_build_scalar(&keys, &pays)
    });
    let payload = r.expect_err("armed linear build must panic");
    let msg = rsv_core::exec::panic_message(payload.as_ref());
    assert!(msg.contains("injected fault at failpoint `hashtab.lp.build`"));

    // Cleared, both builds succeed — the faults did not poison the
    // registry or the tables.
    fault::reset();
    let mut c = CuckooTable::new(1_000, 0.5);
    c.build_scalar(&keys, &pays).expect("clean cuckoo build");
    let mut l = LinearTable::with_hash(1_000, 0.5, MulHash::nth(0));
    l.try_build_scalar(&keys, &pays)
        .expect("clean linear build");
    assert_eq!(c.len(), keys.len());
    assert_eq!(l.len(), keys.len());
}
