//! Explicit tail-handling coverage: every scan variant, histogram
//! variant, and the buffered shuffles run on inputs of length
//! `{0, 1, W−1, W+1, 2W+3}` for each available backend's vector width
//! `W`, compared against the scalar reference. These are the lengths
//! where a kernel's main loop does zero or one full vector and the
//! remainder drains through the tail path.

use rsv_partition::histogram::{
    histogram_scalar, histogram_vector_compressed, histogram_vector_replicated,
    histogram_vector_serialized,
};
use rsv_partition::shuffle::{
    shuffle_scalar_buffered, shuffle_scalar_unbuffered, shuffle_vector_buffered,
    shuffle_vector_unbuffered,
};
use rsv_partition::RadixFn;
use rsv_scan::{scan, ScanPredicate, ScanVariant};
use rsv_simd::{dispatch, Backend};

/// `{0, 1, W−1, W+1, 2W+3}` for vector width `w`.
fn tail_lens(w: usize) -> [usize; 5] {
    [0, 1, w - 1, w + 1, 2 * w + 3]
}

/// A deterministic sentinel-free key column.
fn keys_of_len(n: usize) -> Vec<u32> {
    let mut rng = rsv_data::rng(0x7A11 + n as u64);
    rsv_data::uniform_u32(n, &mut rng)
}

#[test]
fn scan_variants_handle_tails() {
    for backend in Backend::all_available() {
        for n in tail_lens(backend.lanes()) {
            let keys = keys_of_len(n);
            let pays: Vec<u32> = (0..n as u32).collect();
            let pred = ScanPredicate {
                lower: u32::MAX / 4,
                upper: u32::MAX / 4 * 3,
            };
            let mut rk = vec![0u32; n];
            let mut rp = vec![0u32; n];
            let rc = scan(
                backend,
                ScanVariant::ScalarBranching,
                &keys,
                &pays,
                pred,
                &mut rk,
                &mut rp,
            );
            for variant in ScanVariant::ALL {
                let mut ok = vec![0u32; n];
                let mut op = vec![0u32; n];
                let c = scan(backend, variant, &keys, &pays, pred, &mut ok, &mut op);
                assert_eq!(c, rc, "{} len {n} {}", backend.name(), variant.label());
                assert_eq!(
                    ok[..c],
                    rk[..rc],
                    "{} len {n} {}",
                    backend.name(),
                    variant.label()
                );
                assert_eq!(
                    op[..c],
                    rp[..rc],
                    "{} len {n} {}",
                    backend.name(),
                    variant.label()
                );
            }
        }
    }
}

#[test]
fn histogram_variants_handle_tails() {
    let f = RadixFn::new(26, 6);
    for backend in Backend::all_available() {
        for n in tail_lens(backend.lanes()) {
            let keys = keys_of_len(n);
            let expected = histogram_scalar(f, &keys);
            dispatch!(backend, s => {
                assert_eq!(
                    histogram_vector_replicated(s, f, &keys),
                    expected,
                    "replicated {} len {n}",
                    backend.name()
                );
                assert_eq!(
                    histogram_vector_serialized(s, f, &keys),
                    expected,
                    "serialized {} len {n}",
                    backend.name()
                );
                assert_eq!(
                    histogram_vector_compressed(s, f, &keys),
                    expected,
                    "compressed {} len {n}",
                    backend.name()
                );
            });
        }
    }
}

#[test]
fn buffered_shuffles_handle_tails() {
    let f = RadixFn::new(28, 4);
    for backend in Backend::all_available() {
        for n in tail_lens(backend.lanes()) {
            let keys = keys_of_len(n);
            let pays: Vec<u32> = (0..n as u32).collect();
            let hist = histogram_scalar(f, &keys);

            let mut rk = vec![0u32; n];
            let mut rp = vec![0u32; n];
            let base = shuffle_scalar_unbuffered(f, &keys, &pays, &hist, &mut rk, &mut rp);

            let mut sk = vec![0u32; n];
            let mut sp = vec![0u32; n];
            let sb = shuffle_scalar_buffered(f, &keys, &pays, &hist, &mut sk, &mut sp);
            assert_eq!(
                (&sb, &sk, &sp),
                (&base, &rk, &rp),
                "scalar-buffered len {n}"
            );

            dispatch!(backend, s => {
                let mut uk = vec![0u32; n];
                let mut up = vec![0u32; n];
                let ub = shuffle_vector_unbuffered(s, f, &keys, &pays, &hist, &mut uk, &mut up);
                assert_eq!(
                    (&ub, &uk, &up),
                    (&base, &rk, &rp),
                    "vector-unbuffered {} len {n}",
                    backend.name()
                );

                let mut bk = vec![0u32; n];
                let mut bp = vec![0u32; n];
                let bb = shuffle_vector_buffered(s, f, &keys, &pays, &hist, &mut bk, &mut bp);
                assert_eq!(
                    (&bb, &bk, &bp),
                    (&base, &rk, &rp),
                    "vector-buffered {} len {n}",
                    backend.name()
                );
            });
        }
    }
}

/// Tail lengths for the compressed-column kernels: the vector-width
/// boundaries plus a column whose final block is a non-block-multiple
/// partial block.
fn column_tail_lens(w: usize) -> [usize; 6] {
    [
        0,
        1,
        w - 1,
        w + 1,
        2 * w + 3,
        2 * rsv_column::BLOCK_LEN + 37,
    ]
}

/// A deterministic column whose deltas fit in `width` bits.
fn keys_of_width(n: usize, width: u8) -> Vec<u32> {
    let mask = if width == 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    };
    let mut rng = rsv_data::rng(0xB17 + n as u64 + (u64::from(width) << 8));
    (0..n).map(|_| rng.next_u32() & mask).collect()
}

#[test]
fn pack_unpack_handle_tails_every_width() {
    use rsv_column::CompressedColumn;
    for backend in Backend::all_available() {
        for width in 1..=32u8 {
            for n in column_tail_lens(backend.lanes()) {
                let keys = keys_of_width(n, width);
                let reference = CompressedColumn::pack_scalar_with_width(&keys, width);
                let col = CompressedColumn::pack_with_width(backend, &keys, width);
                assert_eq!(
                    col,
                    reference,
                    "{} width {width} len {n}: packed bytes not canonical",
                    backend.name()
                );
                assert_eq!(
                    col.unpack(backend),
                    keys,
                    "{} width {width} len {n}: vector unpack",
                    backend.name()
                );
                assert_eq!(
                    reference.unpack_scalar(),
                    keys,
                    "width {width} len {n}: scalar unpack"
                );
            }
        }
    }
}

#[test]
fn fused_scan_handles_tails_every_width() {
    use rsv_column::{select_fused, CompressedColumn};
    for backend in Backend::all_available() {
        for width in 1..=32u8 {
            for n in column_tail_lens(backend.lanes()) {
                let keys = keys_of_width(n, width);
                let pays: Vec<u32> = (0..n as u32).collect();
                let mask = if width == 32 {
                    u32::MAX
                } else {
                    (1u32 << width) - 1
                };
                let pred = ScanPredicate {
                    lower: mask / 4,
                    upper: mask / 4 * 3,
                };
                let mut rk = vec![0u32; n];
                let mut rp = vec![0u32; n];
                let rc = scan(
                    backend,
                    ScanVariant::ScalarBranching,
                    &keys,
                    &pays,
                    pred,
                    &mut rk,
                    &mut rp,
                );
                let ck = CompressedColumn::pack_with_width(backend, &keys, width);
                let cp = CompressedColumn::pack(backend, &pays);
                for variant in ScanVariant::ALL {
                    let mut ok = vec![0u32; n];
                    let mut op = vec![0u32; n];
                    let c = select_fused(backend, variant, &ck, &cp, pred, &mut ok, &mut op);
                    assert_eq!(
                        (c, &ok[..c], &op[..c]),
                        (rc, &rk[..rc], &rp[..rc]),
                        "{} width {width} len {n} {}",
                        backend.name(),
                        variant.label()
                    );
                }
            }
        }
    }
}
