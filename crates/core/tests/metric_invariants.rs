//! Metric-invariant test oracles (DESIGN.md §5d).
//!
//! Every kernel in the differential registry runs under the metrics
//! layer, and the merged counters must satisfy per-operator identities
//! that hold for *any* correct execution — tuples counted in equal
//! tuples counted out, probe chains are at least one slot per key,
//! cuckoo displacement work respects the safety valve, partition
//! staging conserves tuples. The same backend × thread matrix and
//! `RSV_DIFF_*` replay knobs as the differential suite apply, so a
//! failing oracle prints a seed that re-runs exactly the offending case.

use rsv_core::column::CompressedColumn;
use rsv_core::hashtab::CuckooTable;
use rsv_core::metrics::{Counters, Metric};
use rsv_testkit::diff::{run_registry_metered, DiffConfig, MeteredRun, Registry};
use rsv_testkit::Rng;

/// Same case stream as `differential.rs`.
const BASE_SEED: u64 = 0x5349_4D44_3230_3135;

fn registry() -> Registry {
    let mut r = Registry::new();
    rsv_core::scan::diff::register(&mut r);
    rsv_core::partition::diff::register(&mut r);
    rsv_core::hashtab::diff::register(&mut r);
    rsv_core::bloom::diff::register(&mut r);
    rsv_core::sort::diff::register(&mut r);
    rsv_core::join::diff::register(&mut r);
    rsv_core::column::diff::register(&mut r);
    r
}

/// Tuple count prefix of the canonical encodings (`ordered_pairs`,
/// `canonical_pairs`, `canonical_triples` all lead with a `u64` length).
fn out_len(bytes: &[u8]) -> u64 {
    let mut le = [0u8; 8];
    le.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(le)
}

/// Mirrors `rsv_sort::diff`'s case-seeded radix width.
fn sort_passes(case_seed: u64) -> u64 {
    let mut rng = Rng::seed_from_u64(case_seed ^ 0x534F_5254);
    let bits = [1u32, 4, 5, 8, 11, 16][rng.index(6)];
    u64::from(32u32.div_ceil(bits))
}

/// Identities that hold for every operator, metered or not.
fn universal_invariants(c: &Counters) {
    assert!(
        c.get(Metric::ScanTuplesOut) <= c.get(Metric::ScanTuplesIn),
        "scan emitted more tuples than it consumed"
    );
    // every probed key inspects at least one slot
    assert!(c.get(Metric::LpProbes) >= c.get(Metric::LpKeysProbed));
    assert!(c.get(Metric::DhProbes) >= c.get(Metric::DhKeysProbed));
    // staged tuples (buffer flushes + cleanup residue) never exceed the
    // tuples that entered a shuffle
    assert!(
        c.get(Metric::PartTuplesFlushed) + c.get(Metric::PartTuplesResidual)
            <= c.get(Metric::PartShuffleTuples)
    );
}

/// Upper bound on cuckoo displacement work for one run: `attempts` full
/// build attempts over `n` keys, scalar inserts bounded by `max_kicks`
/// each and the vectorized build bounded by its safety-valve budget of
/// `16·(n/w + 1) + 4·max_kicks` iterations displacing at most `w` lanes,
/// plus a scalar fallback of at most `n + w` inserts.
fn cuckoo_displacement_bound(attempts: u64, n: u64, w: u64, max_kicks: u64) -> u64 {
    let vector_budget = (16 * (n / w + 1) + 4 * max_kicks) * w;
    attempts * (vector_budget + (n + w) * max_kicks)
}

fn check(run: &MeteredRun<'_>) {
    let c = &run.counters;
    let n = run.input.keys.len() as u64;
    let b = run.input.build_keys.len() as u64;
    universal_invariants(c);
    let staged = c.get(Metric::PartTuplesFlushed) + c.get(Metric::PartTuplesResidual);
    match run.op {
        "scan" => {
            assert_eq!(c.get(Metric::ScanTuplesIn), n);
            assert_eq!(c.get(Metric::ScanTuplesOut), out_len(run.output));
        }
        "histogram-radix" | "histogram-hash" | "histogram-range" => {
            assert_eq!(c.get(Metric::PartHistTuples), n);
        }
        "shuffle-radix" | "shuffle-radix-unstable" => {
            // the shuffle harness recomputes the histogram for offsets
            assert_eq!(c.get(Metric::PartHistTuples), n);
            assert_eq!(c.get(Metric::PartShuffleTuples), n);
            if run.kernel.contains("unbuffered") {
                assert_eq!(staged, 0, "unbuffered shuffles stage nothing");
            } else {
                assert_eq!(staged, n, "buffered shuffles stage every tuple");
            }
        }
        "partition-pass" => {
            assert_eq!(c.get(Metric::PartHistTuples), n);
            assert_eq!(c.get(Metric::PartShuffleTuples), n);
            assert_eq!(staged, n);
        }
        "lp-probe" => {
            assert_eq!(c.get(Metric::LpKeysBuilt), b);
            assert_eq!(c.get(Metric::LpKeysProbed), n);
        }
        "dh-probe" => {
            assert_eq!(c.get(Metric::DhKeysProbed), n);
        }
        "cuckoo-probe" | "cuckoo-build" => {
            let kicks = CuckooTable::new(run.input.capacity, run.input.load_factor.min(0.4))
                .max_kicks() as u64;
            let built = c.get(Metric::CuckooKeysBuilt);
            let disp = c.get(Metric::CuckooDisplacements);
            if b == 0 {
                assert_eq!(built, 0);
                assert_eq!(disp, 0);
            } else {
                // keys-built is counted once per full build attempt
                assert_eq!(built % b, 0, "keys built not a whole number of attempts");
                if run.output != b"cuckoo-build-failed" {
                    assert!(built >= b, "successful build counted no keys");
                }
                let w = run.backend.lanes() as u64;
                assert!(
                    disp <= cuckoo_displacement_bound(built / b, b, w, kicks),
                    "displacements {disp} exceed the safety valve \
                     (attempts {}, keys {b}, max_kicks {kicks})",
                    built / b,
                );
            }
        }
        "bloom-probe" => {
            assert_eq!(c.get(Metric::BloomKeysProbed), n);
            // every probed key touches at least one filter word
            assert!(c.get(Metric::BloomWordsTouched) >= n);
        }
        "sort-radix" => {
            let passes = sort_passes(run.input.seed);
            assert_eq!(c.get(Metric::SortPasses), passes);
            assert_eq!(c.get(Metric::SortBytesMoved), 8 * n * passes);
            assert_eq!(c.get(Metric::PartHistTuples), n * passes);
            assert_eq!(c.get(Metric::PartShuffleTuples), n * passes);
            assert_eq!(staged, n * passes);
        }
        "join" => {
            assert_eq!(c.get(Metric::JoinBuildTuples), b);
            assert_eq!(c.get(Metric::JoinProbeTuples), n);
            // every variant probes each outer tuple against exactly one
            // linear-probing (sub-)table
            assert_eq!(c.get(Metric::LpKeysProbed), n);
            if run.kernel.starts_with("min-partition") {
                assert_eq!(c.get(Metric::JoinPartitionFanout), run.threads as u64);
                assert_eq!(c.get(Metric::PartShuffleTuples), b);
            }
        }
        "column-roundtrip" => {
            let blocks = CompressedColumn::pack_scalar(&run.input.keys).block_count() as u64;
            if run.kernel == "random-access" {
                assert_eq!(c.get(Metric::ColBlocksDecoded), 0);
            } else {
                assert_eq!(c.get(Metric::ColBlocksDecoded), blocks);
            }
        }
        "column-select-fused" => {
            // direct variants decode key and payload blocks in lockstep;
            // indirect variants decode only key blocks (payloads come
            // through the random-access directory, which is not a block
            // decode)
            let per_block = if run.kernel.contains("indirect") {
                1
            } else {
                2
            };
            let blocks =
                per_block * CompressedColumn::pack_scalar(&run.input.keys).block_count() as u64;
            if run.kernel.starts_with("parallel") {
                assert!(c.get(Metric::ColBlocksDecoded) >= blocks);
            } else {
                assert_eq!(c.get(Metric::ColBlocksDecoded), blocks);
            }
        }
        "column-histogram-fused" => {
            let blocks = CompressedColumn::pack_scalar(&run.input.keys).block_count() as u64;
            if run.kernel.starts_with("parallel") {
                assert!(c.get(Metric::ColBlocksDecoded) >= blocks);
            } else {
                assert_eq!(c.get(Metric::ColBlocksDecoded), blocks);
            }
        }
        // horizontal buckets and aggregate groups are width-dependent by
        // construction and deliberately unmetered
        "horizontal-probe" | "agg-group" => {}
        other => panic!("diff op `{other}` has no metric oracle — add one"),
    }
}

#[test]
fn metric_invariants_hold_for_every_kernel() {
    run_registry_metered(&registry(), &DiffConfig::from_env(BASE_SEED), &mut check);
}
