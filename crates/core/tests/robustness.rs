//! Robustness guarantees of the fallible engine API (DESIGN.md §5e):
//!
//! * a cancelled [`RunContext`] fails every `try_*` operator with
//!   [`EngineError::Cancelled`] and claims **zero** morsels,
//! * a memory budget too small for an operator's working set fails it
//!   with [`EngineError::BudgetExceeded`] and releases every reserved
//!   byte (the budget is clean for the next query),
//! * after either failure the same [`Engine`] answers the same query
//!   correctly — errors never poison the engine,
//! * degenerate configuration (0 threads, 0-tuple morsels) clamps to the
//!   smallest working configuration instead of crashing,
//! * cuckoo rehash exhaustion degrades to a linear-probing table whose
//!   probe output is byte-identical, counting `Metric::FallbackBuilds`,
//! * oversized partition fanout transparently reroutes through the
//!   two-pass partitioner with unchanged semantics.
//!
//! These tests run in every tier-1 `cargo test` (no feature gate); the
//! fault-injection counterpart (`fault_recovery.rs`) needs
//! `--features failpoints`.

use rsv_core::hashtab::{FallbackTable, JoinSink, LinearTable, MulHash};
use rsv_core::metrics::{self, Metric};
use rsv_core::partition::twopass::MAX_DIRECT_FANOUT;
use rsv_core::{CancelToken, Engine, EngineError, JoinVariant, Relation, RunContext};

fn rel(n: usize) -> Relation {
    // Unique keys (join variants assume a key relation on the inner
    // side), payloads derivable from the key so matches are checkable.
    let keys: Vec<u32> = (0..n as u32)
        .map(|i| i.wrapping_mul(2654435761) | 1)
        .collect();
    let pays: Vec<u32> = keys.iter().map(|k| k ^ 0x5a5a_5a5a).collect();
    Relation::new(keys, pays)
}

fn cancelled_run() -> RunContext {
    let token = CancelToken::new();
    token.cancel();
    RunContext::new().with_cancel(token)
}

/// Run `f` under the metrics harness and return its result plus the
/// number of morsels claimed while it ran.
fn with_claim_count<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let (r, sink) = metrics::collect(f);
    (r, sink.total().get(Metric::MorselsClaimed))
}

/// Every fallible operator on a pre-cancelled run: typed `Cancelled`
/// error, zero morsels claimed (cancellation is observed *before* the
/// first claim), and the engine stays usable.
#[test]
fn cancelled_run_fails_every_operator_without_claiming_work() {
    let engine = Engine::new().with_threads(4).with_morsel_tuples(256);
    let inner = rel(4_000);
    let outer = rel(16_000);

    type Op<'a> = (
        &'a str,
        Box<dyn Fn(&RunContext) -> Result<(), EngineError> + 'a>,
    );
    let ops: Vec<Op> = vec![
        (
            "select",
            Box::new(|run| engine.try_select(&outer, 0, u32::MAX, run).map(|_| ())),
        ),
        (
            "join-no-partition",
            Box::new(|run| {
                engine
                    .try_hash_join_variant(&inner, &outer, JoinVariant::NoPartition, run)
                    .map(|_| ())
            }),
        ),
        (
            "join-min-partition",
            Box::new(|run| {
                engine
                    .try_hash_join_variant(&inner, &outer, JoinVariant::MinPartition, run)
                    .map(|_| ())
            }),
        ),
        (
            "join-max-partition",
            Box::new(|run| {
                engine
                    .try_hash_join_variant(&inner, &outer, JoinVariant::MaxPartition, run)
                    .map(|_| ())
            }),
        ),
        (
            "sort",
            Box::new(|run| {
                let mut r = rel(4_000);
                engine.try_sort(&mut r, run)
            }),
        ),
        (
            "hash-partition",
            Box::new(|run| engine.try_hash_partition(&outer, 64, run).map(|_| ())),
        ),
        (
            "group-by-sum",
            Box::new(|run| {
                engine
                    .try_group_by_sum(&outer, outer.len(), run)
                    .map(|_| ())
            }),
        ),
    ];

    for (name, op) in &ops {
        let run = cancelled_run();
        let (result, claimed) = with_claim_count(|| op(&run));
        assert!(
            matches!(result, Err(EngineError::Cancelled)),
            "{name}: expected Cancelled, got {result:?}"
        );
        assert_eq!(claimed, 0, "{name}: claimed morsels after cancellation");
    }

    // The engine itself carries no per-run state: a fresh run context
    // answers the reference query.
    let fresh = RunContext::new();
    let selected = engine
        .try_select(&outer, 0, u32::MAX, &fresh)
        .expect("fresh run after cancellations");
    assert_eq!(selected.len(), outer.len());
}

/// Operators that reserve working memory fail a tiny budget with a typed
/// `BudgetExceeded` carrying the limit, and release everything they
/// reserved — `used()` returns to zero so the budget can back the next
/// query.
#[test]
fn budget_exceeded_is_typed_and_releases_everything() {
    let engine = Engine::new().with_threads(2);
    let inner = rel(4_000);
    let outer = rel(16_000);

    type Op<'a> = (
        &'a str,
        Box<dyn Fn(&RunContext) -> Result<(), EngineError> + 'a>,
    );
    let ops: Vec<Op> = vec![
        (
            "select",
            Box::new(|run| engine.try_select(&outer, 0, u32::MAX, run).map(|_| ())),
        ),
        (
            "join-no-partition",
            Box::new(|run| {
                engine
                    .try_hash_join_variant(&inner, &outer, JoinVariant::NoPartition, run)
                    .map(|_| ())
            }),
        ),
        (
            "join-min-partition",
            Box::new(|run| {
                engine
                    .try_hash_join_variant(&inner, &outer, JoinVariant::MinPartition, run)
                    .map(|_| ())
            }),
        ),
        (
            "join-max-partition",
            Box::new(|run| {
                engine
                    .try_hash_join_variant(&inner, &outer, JoinVariant::MaxPartition, run)
                    .map(|_| ())
            }),
        ),
        (
            "sort",
            Box::new(|run| {
                let mut r = rel(4_000);
                engine.try_sort(&mut r, run)
            }),
        ),
        (
            "hash-partition",
            Box::new(|run| engine.try_hash_partition(&outer, 64, run).map(|_| ())),
        ),
    ];

    for (name, op) in &ops {
        let run = RunContext::new().with_memory_limit(64);
        let result = op(&run);
        match result {
            Err(EngineError::BudgetExceeded { limit, .. }) => {
                assert_eq!(limit, 64, "{name}: error reports the wrong limit");
            }
            other => panic!("{name}: expected BudgetExceeded, got {other:?}"),
        }
        assert_eq!(
            run.budget.used(),
            0,
            "{name}: leaked budget reservation after failure"
        );
    }

    // A budget that fits runs to completion under the same engine.
    let run = RunContext::new().with_memory_limit(64 << 20);
    let selected = engine
        .try_select(&outer, 0, u32::MAX, &run)
        .expect("generous budget");
    assert_eq!(selected.len(), outer.len());
    assert_eq!(run.budget.used(), 0, "success path leaked reservation");
}

/// Cancelling mid-operator must not corrupt caller-owned columns:
/// `try_sort` restores the input relation (same tuples, possibly
/// unsorted) before returning `Cancelled`.
#[test]
fn cancelled_sort_leaves_relation_intact() {
    let engine = Engine::new().with_threads(2);
    let mut r = rel(10_000);
    let mut reference: Vec<(u32, u32)> = r
        .keys
        .iter()
        .copied()
        .zip(r.payloads.iter().copied())
        .collect();
    reference.sort_unstable();

    let run = cancelled_run();
    assert!(matches!(
        engine.try_sort(&mut r, &run),
        Err(EngineError::Cancelled)
    ));
    let mut survivors: Vec<(u32, u32)> = r
        .keys
        .iter()
        .copied()
        .zip(r.payloads.iter().copied())
        .collect();
    survivors.sort_unstable();
    assert_eq!(survivors, reference, "cancel dropped or duplicated tuples");

    // And the relation is still sortable afterwards.
    engine
        .try_sort(&mut r, &RunContext::new())
        .expect("fresh sort");
    assert!(r.keys.windows(2).all(|w| w[0] <= w[1]));
}

/// `with_threads(0)` / `with_morsel_tuples(0)` clamp to 1 instead of
/// asserting: the degenerate configuration degrades to a working
/// single-threaded engine with byte-identical results.
#[test]
fn zero_threads_and_zero_morsel_tuples_clamp_to_one() {
    let r = rel(5_000);
    let clamped = Engine::new().with_threads(0).with_morsel_tuples(0);
    let reference = Engine::new().with_threads(1).with_morsel_tuples(1);

    let a = clamped.select(&r, 100, 1 << 30);
    let b = reference.select(&r, 100, 1 << 30);
    assert_eq!(a.keys, b.keys);
    assert_eq!(a.payloads, b.payloads);

    let ga = clamped.group_by_sum(&r, r.len());
    let gb = reference.group_by_sum(&r, r.len());
    assert_eq!(ga, gb);
}

/// Cuckoo rehash exhaustion (0.97 load factor is far past the two-choice
/// threshold) degrades to linear probing: the [`FallbackTable`]'s probe
/// output is byte-identical to a directly built [`LinearTable`] with the
/// same capacity and hash, and exactly one `FallbackBuilds` is counted.
#[test]
fn cuckoo_exhaustion_falls_back_byte_identically() {
    let n = 2_000;
    let keys: Vec<u32> = (1..=n as u32)
        .map(|i| i.wrapping_mul(0x9e37_79b9) | 1)
        .collect();
    let pays: Vec<u32> = keys.iter().map(|k| !k).collect();
    let probe_keys: Vec<u32> = keys.iter().rev().copied().collect();
    let probe_pays: Vec<u32> = probe_keys.iter().map(|k| k >> 1).collect();

    let backend = rsv_core::simd::Backend::best();
    let ((fallback_out, direct_out, fell_back), sink) = metrics::collect(|| {
        rsv_core::simd::dispatch!(backend, s => {
            let table = FallbackTable::build(s, true, &keys, &pays, n, 0.97);
            let mut out = JoinSink::with_capacity(n);
            table.probe(s, true, &probe_keys, &probe_pays, &mut out);

            let mut direct = LinearTable::with_hash(n, 0.97, MulHash::nth(0));
            direct.build_vertical(s, &keys, &pays);
            let mut direct_sink = JoinSink::with_capacity(n);
            direct.probe_vertical(s, &probe_keys, &probe_pays, &mut direct_sink);

            (out.finish(), direct_sink.finish(), table.fell_back())
        })
    });

    assert!(
        fell_back,
        "0.97 load factor should exhaust cuckoo rehashing"
    );
    assert_eq!(
        sink.total().get(Metric::FallbackBuilds),
        1,
        "exactly one fallback build should be counted"
    );
    assert_eq!(fallback_out.0.len(), n, "every probe key must match");
    assert_eq!(fallback_out, direct_out, "fallback probe output diverges");
}

/// A healthy load factor stays on the cuckoo path and counts nothing.
#[test]
fn healthy_cuckoo_build_counts_no_fallback() {
    let keys: Vec<u32> = (1..=1_000u32).collect();
    let pays = keys.clone();
    let backend = rsv_core::simd::Backend::best();
    let (fell_back, sink) = metrics::collect(|| {
        rsv_core::simd::dispatch!(backend, s => {
            FallbackTable::build(s, true, &keys, &pays, 1_000, 0.5).fell_back()
        })
    });
    assert!(!fell_back);
    assert_eq!(sink.total().get(Metric::FallbackBuilds), 0);
}

/// Fanout past `MAX_DIRECT_FANOUT` transparently degrades to the
/// two-pass partitioner: the output is still a permutation of the input
/// where every partition region holds exactly the keys that hash to it,
/// and the fallible variant agrees byte-for-byte.
#[test]
fn oversized_fanout_degrades_to_two_pass_partitioning() {
    let fanout = MAX_DIRECT_FANOUT * 2;
    let engine = Engine::new().with_threads(2);
    let r = rel(50_000);

    let (part, starts) = engine.hash_partition(&r, fanout);
    assert_eq!(part.len(), r.len());
    assert_eq!(starts.len(), fanout);

    // Region p = [starts[p], starts[p+1]) holds only partition-p keys.
    for p in 0..fanout {
        let lo = starts[p] as usize;
        let hi = if p + 1 < fanout {
            starts[p + 1] as usize
        } else {
            r.len()
        };
        for &k in &part.keys[lo..hi] {
            assert_eq!(engine.hash_partition_of(k, fanout), p, "key {k} misplaced");
        }
    }
    let mut input: Vec<u32> = r.keys.clone();
    let mut output: Vec<u32> = part.keys.clone();
    input.sort_unstable();
    output.sort_unstable();
    assert_eq!(input, output, "partitioning dropped or duplicated keys");

    let (try_part, try_starts) = engine
        .try_hash_partition(&r, fanout, &RunContext::new())
        .expect("fallible two-pass partition");
    assert_eq!(try_part.keys, part.keys);
    assert_eq!(try_part.payloads, part.payloads);
    assert_eq!(try_starts, starts);
}
