//! The differential cross-backend fuzz suite (DESIGN.md "Differential
//! testing").
//!
//! Every operator crate registers its scalar reference and kernels; the
//! harness runs each over adversarial inputs across every available
//! backend × thread count and asserts byte-identical canonical output.
//!
//! Replaying a failure: the panic message prints an `RSV_DIFF_OP=…
//! RSV_DIFF_SEED=0x… cargo test --test differential` line that re-runs
//! exactly the diverging case. `RSV_DIFF_CASES` raises the case count
//! for soak runs and `RSV_FORCE_BACKEND` pins the backend set.

use std::collections::HashMap;

use rsv_testkit::diff::{run_registry, run_registry_metered, DiffConfig, Registry};

/// Fixed base seed: the suite is deterministic run-to-run; bump the seed
/// to rotate the case set.
const BASE_SEED: u64 = 0x5349_4D44_3230_3135;

fn registry() -> Registry {
    let mut r = Registry::new();
    rsv_scan::diff::register(&mut r);
    rsv_partition::diff::register(&mut r);
    rsv_hashtab::diff::register(&mut r);
    rsv_bloom::diff::register(&mut r);
    rsv_sort::diff::register(&mut r);
    rsv_join::diff::register(&mut r);
    rsv_column::diff::register(&mut r);
    r
}

#[test]
fn registry_covers_every_operator_family() {
    let names: Vec<&str> = registry().ops().iter().map(|o| o.name).collect();
    for expected in [
        "scan",
        "histogram-radix",
        "histogram-hash",
        "histogram-range",
        "shuffle-radix",
        "shuffle-radix-unstable",
        "partition-pass",
        "lp-probe",
        "dh-probe",
        "cuckoo-probe",
        "cuckoo-build",
        "horizontal-probe",
        "agg-group",
        "bloom-probe",
        "sort-radix",
        "join",
        "column-roundtrip",
        "column-select-fused",
        "column-histogram-fused",
    ] {
        assert!(names.contains(&expected), "missing diff op `{expected}`");
    }
}

#[test]
fn all_kernels_match_their_scalar_reference() {
    run_registry(&registry(), &DiffConfig::from_env(BASE_SEED));
}

/// The `metrics` op class: every kernel runs metered across the backend
/// matrix and its *work* counters (tuples scanned, slots probed, blocks
/// decoded, bytes sorted — `MetricClass::Work`) must be byte-identical
/// across backends at a fixed kernel × case × thread count, exactly like
/// the kernels' output. Width-dependent counters (conflict retries,
/// buffer flushes, displacement chains) additionally match between
/// backends with the same lane count.
#[test]
fn work_counters_are_backend_invariant() {
    /// First-seen backend name and its canonical counter bytes.
    type Seen = (String, Vec<u8>);
    let mut cfg = DiffConfig::from_env(BASE_SEED);
    // output equivalence already fuzzes the full case budget; counter
    // determinism needs fewer cases per op
    cfg.cases = cfg.cases.min(8);
    let mut work: HashMap<(String, usize, u64), Seen> = HashMap::new();
    let mut deterministic: HashMap<(String, usize, u64, usize), Seen> = HashMap::new();
    let mut compared = 0u64;
    run_registry_metered(&registry(), &cfg, &mut |run| {
        let kernel = format!("{}/{}", run.op, run.kernel);
        let key = (kernel.clone(), run.threads, run.input.seed);
        let bytes = run.counters.work_bytes();
        match work.entry(key) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert((run.backend.name().to_string(), bytes));
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                let (first, expected) = e.get();
                assert_eq!(
                    *expected,
                    bytes,
                    "work counters diverge between `{first}` and `{}`",
                    run.backend.name()
                );
                compared += 1;
            }
        }
        let lane_key = (kernel, run.threads, run.input.seed, run.backend.lanes());
        let bytes = run.counters.deterministic_bytes();
        match deterministic.entry(lane_key) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert((run.backend.name().to_string(), bytes));
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                let (first, expected) = e.get();
                assert_eq!(
                    *expected,
                    bytes,
                    "width-dependent counters diverge between equal-lane backends \
                     `{first}` and `{}`",
                    run.backend.name()
                );
            }
        }
    });
    // vacuous unless at least two backends are available
    if rsv_simd::Backend::all_available().len() > 1 {
        assert!(compared > 0, "no cross-backend counter comparisons ran");
    }
}
