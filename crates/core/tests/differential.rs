//! The differential cross-backend fuzz suite (DESIGN.md "Differential
//! testing").
//!
//! Every operator crate registers its scalar reference and kernels; the
//! harness runs each over adversarial inputs across every available
//! backend × thread count and asserts byte-identical canonical output.
//!
//! Replaying a failure: the panic message prints an `RSV_DIFF_OP=…
//! RSV_DIFF_SEED=0x… cargo test --test differential` line that re-runs
//! exactly the diverging case. `RSV_DIFF_CASES` raises the case count
//! for soak runs and `RSV_FORCE_BACKEND` pins the backend set.

use rsv_testkit::diff::{run_registry, DiffConfig, Registry};

/// Fixed base seed: the suite is deterministic run-to-run; bump the seed
/// to rotate the case set.
const BASE_SEED: u64 = 0x5349_4D44_3230_3135;

fn registry() -> Registry {
    let mut r = Registry::new();
    rsv_scan::diff::register(&mut r);
    rsv_partition::diff::register(&mut r);
    rsv_hashtab::diff::register(&mut r);
    rsv_bloom::diff::register(&mut r);
    rsv_sort::diff::register(&mut r);
    rsv_join::diff::register(&mut r);
    rsv_column::diff::register(&mut r);
    r
}

#[test]
fn registry_covers_every_operator_family() {
    let names: Vec<&str> = registry().ops().iter().map(|o| o.name).collect();
    for expected in [
        "scan",
        "histogram-radix",
        "histogram-hash",
        "histogram-range",
        "shuffle-radix",
        "shuffle-radix-unstable",
        "partition-pass",
        "lp-probe",
        "dh-probe",
        "cuckoo-probe",
        "cuckoo-build",
        "horizontal-probe",
        "agg-group",
        "bloom-probe",
        "sort-radix",
        "join",
        "column-roundtrip",
        "column-select-fused",
        "column-histogram-fused",
    ] {
        assert!(names.contains(&expected), "missing diff op `{expected}`");
    }
}

#[test]
fn all_kernels_match_their_scalar_reference() {
    run_registry(&registry(), &DiffConfig::from_env(BASE_SEED));
}
