//! Criterion micro-benchmarks: one group per operator family, smaller
//! sizes than the figure binaries so `cargo bench` completes quickly.
//!
//! These complement the figure binaries (which sweep the paper's full
//! parameter ranges) with statistically robust spot measurements and the
//! ablation comparisons DESIGN.md §6 lists.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rsv_hashtab::{CuckooTable, DoubleHashTable, JoinSink, LinearTable};
use rsv_partition::conflict::{serialize_conflicts_native, serialize_conflicts_scatter};
use rsv_partition::histogram::{
    histogram_scalar, histogram_vector_replicated, histogram_vector_serialized,
};
use rsv_partition::shuffle::{shuffle_scalar_buffered, shuffle_vector_buffered};
use rsv_partition::RadixFn;
use rsv_scan::{scan, ScanPredicate, ScanVariant};
use rsv_simd::{dispatch, Backend, Simd};

const N: usize = 1 << 20;

fn workload() -> (Vec<u32>, Vec<u32>) {
    let mut rng = rsv_data::rng(2001);
    (rsv_data::uniform_u32(N, &mut rng), (0..N as u32).collect())
}

fn bench_scan(c: &mut Criterion) {
    let (keys, pays) = workload();
    let mut ok = vec![0u32; N];
    let mut op = vec![0u32; N];
    let (lo, hi) = rsv_data::selection_bounds(0.1);
    let pred = ScanPredicate {
        lower: lo,
        upper: hi,
    };
    let backend = Backend::best();
    let mut g = c.benchmark_group("selection_scan");
    g.sample_size(20);
    g.throughput(Throughput::Elements(N as u64));
    for variant in ScanVariant::ALL {
        g.bench_function(variant.label(), |b| {
            b.iter(|| scan(backend, variant, &keys, &pays, pred, &mut ok, &mut op))
        });
    }
    g.finish();
}

fn bench_hash_probe(c: &mut Criterion) {
    let mut rng = rsv_data::rng(2002);
    let n_build = N / 8;
    let bkeys = rsv_data::unique_u32(n_build, &mut rng);
    let bpays: Vec<u32> = (0..n_build as u32).collect();
    let pkeys: Vec<u32> = (0..N).map(|i| bkeys[(i * 7) % n_build]).collect();
    let ppays: Vec<u32> = (0..N as u32).collect();
    let backend = Backend::best();

    let mut lp = LinearTable::new(n_build, 0.5);
    lp.build_scalar(&bkeys, &bpays);
    let mut dh = DoubleHashTable::new(n_build, 0.5);
    dh.build_scalar(&bkeys, &bpays);
    let mut ch = CuckooTable::new(n_build, 0.5);
    ch.build_scalar(&bkeys, &bpays).unwrap();

    let mut g = c.benchmark_group("hash_probe");
    g.sample_size(15);
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("lp_scalar", |b| {
        b.iter(|| {
            let mut sink = JoinSink::with_capacity(N + 16);
            lp.probe_scalar(&pkeys, &ppays, &mut sink);
            sink.len()
        })
    });
    g.bench_function("lp_vertical", |b| {
        b.iter(|| {
            let mut sink = JoinSink::with_capacity(N + 16);
            dispatch!(backend, s => { lp.probe_vertical(s, &pkeys, &ppays, &mut sink) });
            sink.len()
        })
    });
    g.bench_function("dh_vertical", |b| {
        b.iter(|| {
            let mut sink = JoinSink::with_capacity(N + 16);
            dispatch!(backend, s => { dh.probe_vertical(s, &pkeys, &ppays, &mut sink) });
            sink.len()
        })
    });
    // ablation: cuckoo blend vs select
    g.bench_function("cuckoo_blend", |b| {
        b.iter(|| {
            let mut sink = JoinSink::with_capacity(N + 16);
            dispatch!(backend, s => { ch.probe_vertical_blend(s, &pkeys, &ppays, &mut sink) });
            sink.len()
        })
    });
    g.bench_function("cuckoo_select", |b| {
        b.iter(|| {
            let mut sink = JoinSink::with_capacity(N + 16);
            dispatch!(backend, s => { ch.probe_vertical_select(s, &pkeys, &ppays, &mut sink) });
            sink.len()
        })
    });
    g.finish();
}

fn bench_conflict_serialization(c: &mut Criterion) {
    // ablation: Algorithm 13 scatter/gather loop vs vpconflictd popcount
    let backend = Backend::best();
    let mut g = c.benchmark_group("conflict_serialization");
    g.sample_size(30);
    let lanes: Vec<u32> = (0..16).map(|i| i % 5).collect();
    let mut scratch = vec![0u32; 16];
    g.bench_function("native_conflict", |b| {
        dispatch!(backend, s => {
            let h = load_padded(s, &lanes);
            b.iter(|| s.vectorize(|| serialize_conflicts_native(s, h)));
        })
    });
    g.bench_function("scatter_gather_loop", |b| {
        dispatch!(backend, s => {
            let h = load_padded(s, &lanes);
            b.iter(|| s.vectorize(|| serialize_conflicts_scatter(s, h, &mut scratch)));
        })
    });
    g.finish();
}

fn load_padded<S: Simd>(s: S, lanes: &[u32]) -> S::V {
    let mut buf = vec![0u32; S::LANES];
    for i in 0..S::LANES {
        buf[i] = lanes[i % lanes.len()];
    }
    s.load(&buf)
}

fn bench_partition(c: &mut Criterion) {
    let (keys, pays) = workload();
    let mut ok = vec![0u32; N];
    let mut op = vec![0u32; N];
    let backend = Backend::best();
    let mut g = c.benchmark_group("partition");
    g.sample_size(15);
    g.throughput(Throughput::Elements(N as u64));
    for bits in [5u32, 8, 11] {
        let f = RadixFn::new(0, bits);
        g.bench_with_input(BenchmarkId::new("hist_scalar", bits), &bits, |b, _| {
            b.iter(|| histogram_scalar(f, &keys))
        });
        g.bench_with_input(BenchmarkId::new("hist_replicated", bits), &bits, |b, _| {
            b.iter(|| dispatch!(backend, s => { histogram_vector_replicated(s, f, &keys) }))
        });
        g.bench_with_input(BenchmarkId::new("hist_serialized", bits), &bits, |b, _| {
            b.iter(|| dispatch!(backend, s => { histogram_vector_serialized(s, f, &keys) }))
        });
        let hist = histogram_scalar(f, &keys);
        g.bench_with_input(
            BenchmarkId::new("shuffle_scalar_buf", bits),
            &bits,
            |b, _| b.iter(|| shuffle_scalar_buffered(f, &keys, &pays, &hist, &mut ok, &mut op)),
        );
        g.bench_with_input(
            BenchmarkId::new("shuffle_vector_buf", bits),
            &bits,
            |b, _| {
                b.iter(|| {
                    dispatch!(backend, s => {
                        shuffle_vector_buffered(s, f, &keys, &pays, &hist, &mut ok, &mut op)
                    })
                })
            },
        );
    }
    g.finish();
}

fn bench_sort_and_join(c: &mut Criterion) {
    let (keys, pays) = workload();
    let backend = Backend::best();
    let mut g = c.benchmark_group("sort_join");
    g.sample_size(10);
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("radixsort_vector", |b| {
        b.iter(|| {
            let mut k = keys.clone();
            let mut p = pays.clone();
            dispatch!(backend, s => {
                rsv_sort::lsb_radixsort_vector(s, &mut k, &mut p, &rsv_sort::SortConfig::default())
            });
            k
        })
    });
    let mut rng = rsv_data::rng(2003);
    let w = rsv_data::join_workload(N / 8, N, 1.0, 1.0, &mut rng);
    g.bench_function("join_max_partition_vector", |b| {
        b.iter(|| {
            let r = dispatch!(backend, s => {
                rsv_join::join_max_partition(s, true, &w.inner, &w.outer, 1)
            });
            r.matches()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_scan,
    bench_hash_probe,
    bench_conflict_serialization,
    bench_partition,
    bench_sort_and_join
);
criterion_main!(benches);
