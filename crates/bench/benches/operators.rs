//! Micro-benchmarks: one section per operator family, smaller sizes than
//! the figure binaries so `cargo bench` completes quickly.
//!
//! These complement the figure binaries (which sweep the paper's full
//! parameter ranges) with best-of-N spot measurements and the ablation
//! comparisons DESIGN.md §6 lists. Plain `harness = false` timing — the
//! offline build has no external benchmark framework.

use rsv_bench::{bench, mtps, Table};
use rsv_hashtab::{CuckooTable, DoubleHashTable, JoinSink, LinearTable};
use rsv_partition::conflict::{serialize_conflicts_native, serialize_conflicts_scatter};
use rsv_partition::histogram::{
    histogram_scalar, histogram_vector_replicated, histogram_vector_serialized,
};
use rsv_partition::shuffle::{shuffle_scalar_buffered, shuffle_vector_buffered};
use rsv_partition::RadixFn;
use rsv_scan::{scan, ScanPredicate, ScanVariant};
use rsv_simd::{dispatch, Backend, Simd};

const N: usize = 1 << 20;
const REPS: usize = 5;

fn workload() -> (Vec<u32>, Vec<u32>) {
    let mut rng = rsv_data::rng(2001);
    (rsv_data::uniform_u32(N, &mut rng), (0..N as u32).collect())
}

fn bench_scan(t: &mut Table) {
    let (keys, pays) = workload();
    let mut ok = vec![0u32; N];
    let mut op = vec![0u32; N];
    let (lo, hi) = rsv_data::selection_bounds(0.1);
    let pred = ScanPredicate {
        lower: lo,
        upper: hi,
    };
    let backend = Backend::best();
    for variant in ScanVariant::ALL {
        let secs = bench(REPS, || {
            scan(backend, variant, &keys, &pays, pred, &mut ok, &mut op);
        });
        t.row(vec![
            "selection_scan".into(),
            variant.label().into(),
            format!("{:.1}", mtps(N, secs)),
        ]);
    }
}

fn bench_hash_probe(t: &mut Table) {
    let mut rng = rsv_data::rng(2002);
    let n_build = N / 8;
    let bkeys = rsv_data::unique_u32(n_build, &mut rng);
    let bpays: Vec<u32> = (0..n_build as u32).collect();
    let pkeys: Vec<u32> = (0..N).map(|i| bkeys[(i * 7) % n_build]).collect();
    let ppays: Vec<u32> = (0..N as u32).collect();
    let backend = Backend::best();

    let mut lp = LinearTable::new(n_build, 0.5);
    lp.build_scalar(&bkeys, &bpays);
    let mut dh = DoubleHashTable::new(n_build, 0.5);
    dh.build_scalar(&bkeys, &bpays);
    let mut ch = CuckooTable::new(n_build, 0.5);
    ch.build_scalar(&bkeys, &bpays).unwrap();

    let mut run = |name: &str, f: &mut dyn FnMut(&mut JoinSink)| {
        let secs = bench(REPS, || {
            let mut sink = JoinSink::with_capacity(N + 16);
            f(&mut sink);
        });
        t.row(vec![
            "hash_probe".into(),
            name.into(),
            format!("{:.1}", mtps(N, secs)),
        ]);
    };
    run("lp_scalar", &mut |sink| {
        lp.probe_scalar(&pkeys, &ppays, sink);
    });
    run("lp_vertical", &mut |sink| {
        dispatch!(backend, s => { lp.probe_vertical(s, &pkeys, &ppays, sink) });
    });
    run("dh_vertical", &mut |sink| {
        dispatch!(backend, s => { dh.probe_vertical(s, &pkeys, &ppays, sink) });
    });
    // ablation: cuckoo blend vs select
    run("cuckoo_blend", &mut |sink| {
        dispatch!(backend, s => { ch.probe_vertical_blend(s, &pkeys, &ppays, sink) });
    });
    run("cuckoo_select", &mut |sink| {
        dispatch!(backend, s => { ch.probe_vertical_select(s, &pkeys, &ppays, sink) });
    });
}

fn load_padded<S: Simd>(s: S, lanes: &[u32]) -> S::V {
    let mut buf = vec![0u32; S::LANES];
    for i in 0..S::LANES {
        buf[i] = lanes[i % lanes.len()];
    }
    s.load(&buf)
}

fn bench_conflict_serialization(t: &mut Table) {
    // ablation: Algorithm 13 scatter/gather loop vs vpconflictd popcount
    let backend = Backend::best();
    let lanes: Vec<u32> = (0..16).map(|i| i % 5).collect();
    let mut scratch = vec![0u32; 16];
    const ITERS: usize = 1 << 16;
    dispatch!(backend, s => {
        let h = load_padded(s, &lanes);
        let secs = bench(REPS, || {
            s.vectorize(|| {
                for _ in 0..ITERS {
                    std::hint::black_box(serialize_conflicts_native(s, std::hint::black_box(h)));
                }
            });
        });
        t.row(vec![
            "conflict_serialization".into(),
            "native_conflict".into(),
            format!("{:.1}", mtps(ITERS * S::LANES, secs)),
        ]);
        let secs = bench(REPS, || {
            s.vectorize(|| {
                for _ in 0..ITERS {
                    std::hint::black_box(serialize_conflicts_scatter(
                        s,
                        std::hint::black_box(h),
                        &mut scratch,
                    ));
                }
            });
        });
        t.row(vec![
            "conflict_serialization".into(),
            "scatter_gather_loop".into(),
            format!("{:.1}", mtps(ITERS * S::LANES, secs)),
        ]);
    });
}

fn bench_partition(t: &mut Table) {
    let (keys, pays) = workload();
    let mut ok = vec![0u32; N];
    let mut op = vec![0u32; N];
    let backend = Backend::best();
    for bits in [5u32, 8, 11] {
        let f = RadixFn::new(0, bits);
        let mut row = |name: &str, secs: f64| {
            t.row(vec![
                format!("partition/{bits}b"),
                name.into(),
                format!("{:.1}", mtps(N, secs)),
            ]);
        };
        row(
            "hist_scalar",
            bench(REPS, || {
                std::hint::black_box(histogram_scalar(f, &keys));
            }),
        );
        row(
            "hist_replicated",
            bench(REPS, || {
                dispatch!(backend, s => {
                    std::hint::black_box(histogram_vector_replicated(s, f, &keys))
                });
            }),
        );
        row(
            "hist_serialized",
            bench(REPS, || {
                dispatch!(backend, s => {
                    std::hint::black_box(histogram_vector_serialized(s, f, &keys))
                });
            }),
        );
        let hist = histogram_scalar(f, &keys);
        row(
            "shuffle_scalar_buf",
            bench(REPS, || {
                shuffle_scalar_buffered(f, &keys, &pays, &hist, &mut ok, &mut op);
            }),
        );
        row(
            "shuffle_vector_buf",
            bench(REPS, || {
                dispatch!(backend, s => {
                    shuffle_vector_buffered(s, f, &keys, &pays, &hist, &mut ok, &mut op)
                });
            }),
        );
    }
}

fn bench_sort_and_join(t: &mut Table) {
    let (keys, pays) = workload();
    let backend = Backend::best();
    let secs = bench(REPS, || {
        let mut k = keys.clone();
        let mut p = pays.clone();
        dispatch!(backend, s => {
            rsv_sort::lsb_radixsort_vector(s, &mut k, &mut p, &rsv_sort::SortConfig::default())
        });
        std::hint::black_box(k);
    });
    t.row(vec![
        "sort_join".into(),
        "radixsort_vector".into(),
        format!("{:.1}", mtps(N, secs)),
    ]);
    let mut rng = rsv_data::rng(2003);
    let w = rsv_data::join_workload(N / 8, N, 1.0, 1.0, &mut rng);
    let secs = bench(REPS, || {
        let r = dispatch!(backend, s => {
            rsv_join::join_max_partition(s, true, &w.inner, &w.outer, 1)
        });
        std::hint::black_box(r.matches());
    });
    t.row(vec![
        "sort_join".into(),
        "join_max_partition_vector".into(),
        format!("{:.1}", mtps(N, secs)),
    ]);
}

fn main() {
    println!("operator micro-benchmarks (best of {REPS}, {N} tuples)\n");
    let mut t = Table::new(&["group", "benchmark", "Mtps"]);
    bench_scan(&mut t);
    bench_hash_probe(&mut t);
    bench_conflict_serialization(&mut t);
    bench_partition(&mut t);
    bench_sort_and_join(&mut t);
    t.print();
}
