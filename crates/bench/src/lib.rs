//! Shared harness utilities for the figure-reproduction binaries.
//!
//! Every binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md's per-experiment index). They share:
//!
//! * [`Scale`] — a global problem-size multiplier (`--scale 0.1` or the
//!   `RSV_SCALE` environment variable) so the experiments fit any machine,
//! * [`bench`] — best-of-`reps` wall-clock measurement,
//! * [`Table`] — aligned console tables shaped like the paper's plots,
//! * [`record`] — optional JSON-lines output (`RSV_JSON=path`) consumed by
//!   the EXPERIMENTS.md generator.
//!
//! When `RSV_METRICS=path` names a second JSON-lines file, [`bench`] runs
//! the measured closure one extra time under an `rsv_metrics` session and
//! [`record`] appends the harvested work-counter snapshot there, carrying
//! the same `experiment`/`series`/`x`/`backend`/`threads` descriptors as
//! the timing row it rides alongside. The metered run happens *after* the
//! timed repetitions, so enabling snapshots never perturbs measurements.

#![deny(missing_docs)]
#![warn(clippy::all)]

use std::cell::RefCell;
use std::io::Write as _;
use std::time::Instant;

/// Problem-size multiplier for all experiments.
#[derive(Debug, Clone, Copy)]
pub struct Scale(pub f64);

impl Scale {
    /// Parse from `--scale X` argv or the `RSV_SCALE` environment variable
    /// (default 1.0). An unparsable or non-positive value is a hard error:
    /// silently falling back to the default would run the wrong problem
    /// size and record misleading measurements.
    pub fn from_env() -> Scale {
        let args: Vec<String> = std::env::args().collect();
        match Self::parse(std::env::var("RSV_SCALE").ok().as_deref(), &args) {
            Ok(scale) => Scale(scale),
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// The parsing behind [`Scale::from_env`], testable without touching
    /// the process environment. `--scale` (last occurrence wins) overrides
    /// `RSV_SCALE`.
    fn parse(env: Option<&str>, args: &[String]) -> Result<f64, String> {
        let mut scale = match env {
            None => 1.0,
            Some(v) => v
                .parse::<f64>()
                .map_err(|_| format!("RSV_SCALE value `{v}` is not a number"))?,
        };
        for i in 0..args.len() {
            if args[i] == "--scale" {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| "--scale requires a value".to_string())?;
                scale = v
                    .parse::<f64>()
                    .map_err(|_| format!("--scale value `{v}` is not a number"))?;
            }
        }
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(format!(
                "scale must be a positive finite number, got {scale}"
            ));
        }
        Ok(scale)
    }

    /// Scale a tuple count (at least `min`).
    pub fn tuples(&self, base: usize, min: usize) -> usize {
        ((base as f64 * self.0) as usize).max(min)
    }
}

/// Best-of-`reps` wall-clock seconds of `f`.
///
/// With `RSV_METRICS` set, `f` runs once more under a metering session
/// after the timed repetitions; the counter snapshot is stashed for the
/// next [`record`] call on this thread, which writes it alongside the
/// timing row.
pub fn bench(reps: usize, mut f: impl FnMut()) -> f64 {
    assert!(reps >= 1);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    if metrics_path().is_some() {
        let ((), sink) = rsv_metrics::collect(&mut f);
        LAST_METRICS.with(|m| *m.borrow_mut() = Some(sink.total()));
    }
    best
}

thread_local! {
    /// The counter snapshot from the latest metered [`bench`] run, waiting
    /// for the [`record`] call that pairs it with its run descriptors.
    static LAST_METRICS: RefCell<Option<rsv_metrics::Counters>> = const { RefCell::new(None) };
}

/// The metrics-snapshot JSON-lines path, when `RSV_METRICS` is set.
fn metrics_path() -> Option<String> {
    std::env::var("RSV_METRICS").ok()
}

/// Million tuples per second. A zero-duration measurement yields `NaN`
/// (not `inf`), which [`record`] serializes as JSON `null` instead of an
/// unparseable `inf` row.
pub fn mtps(tuples: usize, secs: f64) -> f64 {
    if secs == 0.0 {
        return f64::NAN;
    }
    tuples as f64 / secs / 1e6
}

/// A simple aligned console table.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Print with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    s.push_str(&format!("{:<w$}", c, w = widths[i]));
                } else {
                    s.push_str(&format!("  {:>w$}", c, w = widths[i]));
                }
            }
            s
        };
        println!("{}", line(&self.headers));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            println!("{}", line(row));
        }
    }
}

/// One recorded measurement.
#[derive(Debug)]
pub struct Measurement<'a> {
    /// Experiment id, e.g. `"fig05"`.
    pub experiment: &'a str,
    /// Series (line in the figure), e.g. `"vector-selstore-indirect"`.
    pub series: &'a str,
    /// X-axis value (selectivity, table size, fanout, ...).
    pub x: f64,
    /// Measured value.
    pub value: f64,
    /// Unit of `value`, e.g. `"Mtps"` or `"seconds"`.
    pub unit: &'a str,
    /// SIMD backend the measurement ran on (`"avx512"`, `"avx2"`,
    /// `"portable"`).
    pub backend: &'a str,
    /// Worker thread count the measurement ran with.
    pub threads: usize,
}

/// Append a measurement to the JSON-lines file named by `RSV_JSON`
/// (silently does nothing when the variable is unset). With
/// `RSV_METRICS=path` set and a metered [`bench`] snapshot pending, also
/// appends the work-counter snapshot there under the same descriptors.
pub fn record(m: &Measurement<'_>) {
    if let Ok(path) = std::env::var("RSV_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(f, "{}", to_json(m));
        }
    }
    if let Some(path) = metrics_path() {
        if let Some(c) = LAST_METRICS.with(|s| s.borrow_mut().take()) {
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(f, "{}", metrics_json(m, &c));
            }
        }
    }
}

/// Serialize a metrics snapshot with the run descriptors of the timing
/// row it accompanies.
fn metrics_json(m: &Measurement<'_>, c: &rsv_metrics::Counters) -> String {
    format!(
        "{{\"experiment\":{},\"series\":{},\"x\":{},\"backend\":{},\"threads\":{},\
         \"metrics\":{}}}",
        json_str(m.experiment),
        json_str(m.series),
        json_num(m.x),
        json_str(m.backend),
        m.threads,
        c.to_json(),
    )
}

/// Serialize one measurement as a JSON object (the fields are all numbers
/// or identifier-like strings, so escaping only needs the JSON basics).
fn to_json(m: &Measurement<'_>) -> String {
    format!(
        "{{\"experiment\":{},\"series\":{},\"x\":{},\"value\":{},\"unit\":{},\
         \"backend\":{},\"threads\":{}}}",
        json_str(m.experiment),
        json_str(m.series),
        json_num(m.x),
        json_num(m.value),
        json_str(m.unit),
        json_str(m.backend),
        m.threads,
    )
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no Inf/NaN literal; null keeps the line parseable.
        "null".to_string()
    }
}

/// The SIMD backend experiments should use: `RSV_BACKEND=avx512|avx2|portable`
/// or `--backend NAME`, defaulting to the best available. Lets one host
/// reproduce both the paper's "Xeon Phi" (avx512) and "Haswell" (avx2)
/// columns.
pub fn backend() -> rsv_simd::Backend {
    let mut name = std::env::var("RSV_BACKEND").ok();
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == "--backend" {
            name = args.get(i + 1).cloned();
        }
    }
    match name.as_deref() {
        None => rsv_simd::Backend::best(),
        Some(n) => rsv_simd::Backend::all_available()
            .into_iter()
            .find(|b| b.name() == n)
            .unwrap_or_else(|| panic!("backend {n} not available on this host")),
    }
}

/// Format a byte count the way the paper's x-axes do (4 KB .. 64 MB).
pub fn fmt_bytes(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{} MB", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{} KB", bytes >> 10)
    } else {
        format!("{bytes} B")
    }
}

/// Standard experiment banner.
pub fn banner(id: &str, title: &str, shape: &str) {
    println!("=== {id}: {title} ===");
    println!("paper-expected shape: {shape}");
    let r = rsv_exec::platform_report();
    println!(
        "host: {} logical cpus, simd {} bits ({})\n",
        r.logical_cpus,
        r.simd_width_bits(),
        r.model_name.as_deref().unwrap_or("unknown cpu")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_tuples() {
        let s = Scale(0.5);
        assert_eq!(s.tuples(1000, 1), 500);
        assert_eq!(s.tuples(10, 64), 64);
    }

    #[test]
    fn bench_returns_best() {
        let secs = bench(3, || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        assert!(secs >= 0.001);
    }

    #[test]
    fn mtps_math() {
        assert!((mtps(5_000_000, 1.0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn bytes_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(4096), "4 KB");
        assert_eq!(fmt_bytes(64 << 20), "64 MB");
    }

    #[test]
    fn json_line_shape() {
        let m = Measurement {
            experiment: "fig05",
            series: "vector \"q\"",
            x: 0.5,
            value: 123.25,
            unit: "Mtps",
            backend: "avx512",
            threads: 8,
        };
        assert_eq!(
            to_json(&m),
            "{\"experiment\":\"fig05\",\"series\":\"vector \\\"q\\\"\",\
             \"x\":0.5,\"value\":123.25,\"unit\":\"Mtps\",\
             \"backend\":\"avx512\",\"threads\":8}"
        );
        assert_eq!(json_num(f64::NAN), "null");
    }

    #[test]
    fn metrics_line_shape() {
        let m = Measurement {
            experiment: "fig05",
            series: "vector-selstore-direct",
            x: 10.0,
            value: 0.0,
            unit: "Mtps",
            backend: "portable",
            threads: 1,
        };
        let mut c = rsv_metrics::Counters::new();
        c.bump(rsv_metrics::Metric::ScanTuplesIn, 1024);
        c.bump(rsv_metrics::Metric::ScanTuplesOut, 100);
        let j = metrics_json(&m, &c);
        assert!(
            j.starts_with(
                "{\"experiment\":\"fig05\",\"series\":\"vector-selstore-direct\",\
                 \"x\":10,\"backend\":\"portable\",\"threads\":1,\"metrics\":{"
            ),
            "{j}"
        );
        assert!(j.contains("\"scan_tuples_in\":1024"), "{j}");
        assert!(j.ends_with("}}"), "{j}");
    }

    /// End-to-end `RSV_METRICS` flow: a metered [`bench`] stashes a
    /// snapshot, the next [`record`] appends it. Env-var manipulation is
    /// scoped to this test; no other test in this binary reads
    /// `RSV_METRICS`.
    #[cfg(not(feature = "noop"))]
    #[test]
    fn rsv_metrics_snapshot_rides_alongside_record() {
        let path =
            std::env::temp_dir().join(format!("rsv-metrics-test-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("RSV_METRICS", &path);
        bench(1, || {
            rsv_metrics::count(rsv_metrics::Metric::ScanTuplesIn, 42)
        });
        record(&Measurement {
            experiment: "smoke",
            series: "s",
            x: 1.0,
            value: 2.0,
            unit: "Mtps",
            backend: "portable",
            threads: 1,
        });
        std::env::remove_var("RSV_METRICS");
        let line = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(line.contains("\"experiment\":\"smoke\""), "{line}");
        assert!(
            line.contains("\"metrics\":{\"scan_tuples_in\":42}"),
            "{line}"
        );
        // the stash is consumed: a second record emits no snapshot row
        assert!(
            LAST_METRICS.with(|s| s.borrow().is_none()),
            "snapshot not consumed"
        );
    }

    #[test]
    fn scale_parsing() {
        let args = |v: &[&str]| -> Vec<String> { v.iter().map(|s| s.to_string()).collect() };
        assert_eq!(Scale::parse(None, &args(&["bin"])), Ok(1.0));
        assert_eq!(Scale::parse(Some("0.25"), &args(&["bin"])), Ok(0.25));
        // --scale overrides the environment; last occurrence wins
        assert_eq!(
            Scale::parse(Some("2"), &args(&["bin", "--scale", "0.5", "--scale", "3"])),
            Ok(3.0)
        );
        // unparsable values are hard errors, not silent fallbacks
        assert!(Scale::parse(Some("fast"), &args(&["bin"])).is_err());
        assert!(Scale::parse(None, &args(&["bin", "--scale", "huge"])).is_err());
        assert!(Scale::parse(None, &args(&["bin", "--scale"])).is_err());
        assert!(Scale::parse(None, &args(&["bin", "--scale", "0"])).is_err());
        assert!(Scale::parse(None, &args(&["bin", "--scale", "-1"])).is_err());
        assert!(Scale::parse(None, &args(&["bin", "--scale", "inf"])).is_err());
    }

    #[test]
    fn table_prints() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print();
    }
}
