//! Figure 10: Bloom filter probing vs. filter size (5 hash functions,
//! 10 bits per item, 5% selectivity), scalar vs. vectorized.
//!
//! Usage: `cargo run --release -p rsv-bench --bin fig10_bloom [--scale X]`

use rsv_bench::{banner, bench, fmt_bytes, mtps, record, Measurement, Scale, Table};
use rsv_bloom::BloomFilter;
use rsv_simd::dispatch;

fn main() {
    banner(
        "fig10",
        "Bloom filter probe (k=5, 10 bits/item, 5% selectivity)",
        "vector >> scalar, largest for cache-resident filters \
         (paper: 3.6-7.8x Phi, 1.3-3.1x Haswell)",
    );
    let scale = Scale::from_env();
    let probes = scale.tuples(8 << 20, 1 << 16);
    let backend = rsv_bench::backend();
    println!(
        "probes per size: {probes}, vector backend: {}\n",
        backend.name()
    );

    let mut rng = rsv_data::rng(1010);
    let sizes: Vec<usize> = (12..=26).step_by(2).map(|b| 1usize << b).collect();

    let mut table = Table::new(&["filter size", "scalar", "vector", "speedup"]);
    for bytes in sizes {
        let items = bytes * 8 / 10; // 10 bits per item
        let all = rsv_data::unique_u32(items + items.min(1 << 22), &mut rng);
        let (inside, outside) = all.split_at(items);
        let mut filter = BloomFilter::new(items, 10, 5);
        filter.build(inside);
        // 5% of probes hit
        let pkeys: Vec<u32> = (0..probes)
            .map(|i| {
                if i % 20 == 0 {
                    inside[(i * 31) % inside.len()]
                } else {
                    outside[(i * 17) % outside.len()]
                }
            })
            .collect();
        let ppays: Vec<u32> = (0..probes as u32).collect();
        let mut ok = vec![0u32; probes];
        let mut op = vec![0u32; probes];

        let s_secs = bench(2, || {
            filter.probe_scalar(&pkeys, &ppays, &mut ok, &mut op);
        });
        let v_secs = bench(2, || {
            dispatch!(backend, s => { filter.probe_vector(s, &pkeys, &ppays, &mut ok, &mut op) });
        });
        let sm = mtps(probes, s_secs);
        let vm = mtps(probes, v_secs);
        record(&Measurement {
            experiment: "fig10",
            series: "scalar",
            x: bytes as f64,
            value: sm,
            unit: "Mtps",
            backend: backend.name(),
            threads: 1,
        });
        record(&Measurement {
            experiment: "fig10",
            series: "vector",
            x: bytes as f64,
            value: vm,
            unit: "Mtps",
            backend: backend.name(),
            threads: 1,
        });
        table.row(vec![
            fmt_bytes(bytes),
            format!("{sm:.0}"),
            format!("{vm:.0}"),
            format!("{:.1}x", vm / sm),
        ]);
    }
    println!("throughput (million probes / second):\n");
    table.print();
}
