//! Figure 15: the three hash-join variants (no/min/max partition), scalar
//! vs. vector, with the partition/build/probe phase breakdown.
//!
//! The paper joins 2·10^8 ⋈ 2·10^8; defaults here are scaled to 1/8.
//!
//! Usage: `cargo run --release -p rsv-bench --bin fig15_join_variants [--scale X]`

use rsv_bench::{banner, bench, record, Measurement, Scale, Table};
use rsv_join::{join_max_partition, join_min_partition, join_no_partition, JoinVariant};
use rsv_simd::dispatch;

fn main() {
    banner(
        "fig15",
        "hash join variants (R ⋈ S, 32-bit key & payload)",
        "vector speedups: ~1.05x no-partition, ~1.25x min-partition, \
         ~3.3x max-partition; vectorized max-partition is the overall \
         winner by a wide margin (paper: 2.25x over the runner-up)",
    );
    let scale = Scale::from_env();
    let n = scale.tuples(25_000_000, 1 << 16);
    let backend = rsv_bench::backend();
    let threads = 1;
    println!(
        "|R| = |S| = {n}, threads: {threads}, backend: {}\n",
        backend.name()
    );

    let mut rng = rsv_data::rng(1015);
    let w = rsv_data::join_workload(n, n, 1.0, 1.0, &mut rng);

    let mut table = Table::new(&[
        "variant",
        "partition (s)",
        "build (s)",
        "probe (s)",
        "total (s)",
        "speedup",
    ]);
    let mut scalar_totals = Vec::new();
    for vectorized in [false, true] {
        for variant in JoinVariant::ALL {
            let label = variant.label();
            let mut timings = None;
            let total = bench(2, || {
                let r = dispatch!(backend, s => {
                    match variant {
                        JoinVariant::NoPartition => {
                            join_no_partition(s, vectorized, &w.inner, &w.outer, threads)
                        }
                        JoinVariant::MinPartition => {
                            join_min_partition(s, vectorized, &w.inner, &w.outer, threads)
                        }
                        JoinVariant::MaxPartition => {
                            join_max_partition(s, vectorized, &w.inner, &w.outer, threads)
                        }
                    }
                });
                assert_eq!(r.matches(), w.expected_matches, "{label} wrong result");
                timings = Some(r.timings);
            });
            let t = timings.unwrap();
            let kind = if vectorized { "vector" } else { "scalar" };
            let name = format!("{label}-{kind}");
            record(&Measurement {
                experiment: "fig15",
                series: &name,
                x: 0.0,
                value: total,
                unit: "seconds",
                backend: backend.name(),
                threads,
            });
            let speedup = if vectorized {
                let idx = scalar_totals.iter().position(|(l, _)| *l == label).unwrap();
                format!("{:.2}x", scalar_totals[idx].1 / total)
            } else {
                scalar_totals.push((label, total));
                "1.00x".into()
            };
            table.row(vec![
                name,
                format!("{:.3}", t.partition.as_secs_f64()),
                format!("{:.3}", t.build.as_secs_f64()),
                format!("{:.3}", t.probe.as_secs_f64()),
                format!("{total:.3}"),
                speedup,
            ]);
        }
    }
    println!("join time breakdown (seconds, lower is better):\n");
    table.print();
}
