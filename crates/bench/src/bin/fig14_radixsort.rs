//! Figure 14: LSB radixsort, scalar vs. vector, for key-only and
//! key+payload workloads across input sizes (the paper sweeps 100-800M
//! tuples; the defaults here are scaled to 1/8 of that).
//!
//! Usage: `cargo run --release -p rsv-bench --bin fig14_radixsort [--scale X]`

use rsv_bench::{banner, bench, record, Measurement, Scale, Table};
use rsv_simd::dispatch;
use rsv_sort::{
    lsb_radixsort_keys_scalar, lsb_radixsort_keys_vector, lsb_radixsort_scalar,
    lsb_radixsort_vector, SortConfig,
};

fn main() {
    banner(
        "fig14",
        "LSB radixsort (scalar vs. vector)",
        "vector ~2.2x faster than state-of-the-art scalar on wide-SIMD \
         hardware; time scales linearly with input size",
    );
    let scale = Scale::from_env();
    let backend = rsv_bench::backend();
    let cfg = SortConfig {
        radix_bits: 8,
        ..SortConfig::default()
    };
    println!(
        "radix bits: {}, vector backend: {}\n",
        cfg.radix_bits,
        backend.name()
    );

    let sizes: Vec<usize> = [12_500_000usize, 25_000_000, 50_000_000, 100_000_000]
        .iter()
        .map(|&b| scale.tuples(b / 8, 1 << 16))
        .collect();

    let mut table = Table::new(&[
        "tuples (M)",
        "key scalar (s)",
        "key vector (s)",
        "pair scalar (s)",
        "pair vector (s)",
        "pair speedup",
    ]);
    for n in sizes {
        let mut rng = rsv_data::rng(1014);
        let keys = rsv_data::uniform_u32(n, &mut rng);
        let pays: Vec<u32> = (0..n as u32).collect();

        let ks = bench(2, || {
            let mut k = keys.clone();
            lsb_radixsort_keys_scalar(&mut k, &cfg);
        });
        let kv = bench(2, || {
            let mut k = keys.clone();
            dispatch!(backend, s => { lsb_radixsort_keys_vector(s, &mut k, &cfg) });
        });
        let ps = bench(2, || {
            let mut k = keys.clone();
            let mut p = pays.clone();
            lsb_radixsort_scalar(&mut k, &mut p, &cfg);
        });
        let pv = bench(2, || {
            let mut k = keys.clone();
            let mut p = pays.clone();
            dispatch!(backend, s => { lsb_radixsort_vector(s, &mut k, &mut p, &cfg) });
        });
        for (series, v) in [
            ("key-scalar", ks),
            ("key-vector", kv),
            ("pair-scalar", ps),
            ("pair-vector", pv),
        ] {
            record(&Measurement {
                experiment: "fig14",
                series,
                x: n as f64,
                value: v,
                unit: "seconds",
                backend: backend.name(),
                threads: 1,
            });
        }
        table.row(vec![
            format!("{:.1}", n as f64 / 1e6),
            format!("{ks:.3}"),
            format!("{kv:.3}"),
            format!("{ps:.3}"),
            format!("{pv:.3}"),
            format!("{:.2}x", ps / pv),
        ]);
    }
    println!("sort time (seconds, lower is better):\n");
    table.print();
}
