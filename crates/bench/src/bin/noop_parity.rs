//! Observability smoke check: metering must be free when it is off.
//!
//! Measures the fused selection scan (the hottest instrumented kernel)
//! three ways:
//!
//! 1. `disabled` — instrumentation compiled in, metering off: the state
//!    every benchmark runs in,
//! 2. `noop-sink` — the same scan under
//!    `rsv_metrics::collect_with(&mut NoopSink, …)`, which must take the
//!    identical unmetered path,
//! 3. `counting` — a fully metered run (reported, not asserted: metered
//!    runs are allowed to cost something).
//!
//! The binary asserts (1) ≈ (2) within `RSV_PARITY_TOL` (default 0.30)
//! and exits non-zero otherwise. CI runs it twice — on the default build
//! and on `--features noop`, where every recording call compiles to
//! nothing — and eyeballs that the two builds' `disabled` throughputs
//! agree, which is the benchmark-parity evidence for the zero-cost claim
//! in DESIGN.md §5d.
//!
//! Usage: `cargo run --release -p rsv-bench --bin noop_parity [--scale X]`

use rsv_bench::{bench, mtps, record, Measurement, Scale, Table};
use rsv_metrics::{Metric, NoopSink};
use rsv_scan::{scan, ScanPredicate, ScanVariant};

fn main() {
    let build = if cfg!(feature = "noop") {
        "noop (recording compiled out)"
    } else {
        "default (recording compiled in)"
    };
    println!("=== noop-parity: metering-disabled benchmark parity ===");
    println!("metrics build: {build}\n");
    let scale = Scale::from_env();
    let n = scale.tuples(4 << 20, 1 << 14);
    let backend = rsv_bench::backend();
    let variant = ScanVariant::VectorSelStoreDirect;
    println!(
        "tuples: {n}, vector backend: {}, variant: {}\n",
        backend.name(),
        variant.label()
    );

    let mut rng = rsv_data::rng(2026);
    let keys = rsv_data::uniform_u32(n, &mut rng);
    let pays: Vec<u32> = (0..n as u32).collect();
    let mut out_keys = vec![0u32; n];
    let mut out_pays = vec![0u32; n];
    let (lo, hi) = rsv_data::selection_bounds(0.10);
    let pred = ScanPredicate {
        lower: lo,
        upper: hi,
    };
    let run = |out_keys: &mut [u32], out_pays: &mut [u32]| {
        scan(backend, variant, &keys, &pays, pred, out_keys, out_pays);
    };

    let reps = 7;
    let mut table = Table::new(&["mode", "Mtps"]);
    // record immediately after each bench so `RSV_METRICS` snapshots pair
    // with the row they describe
    let report = |table: &mut Table, series: &str, secs: f64| {
        let v = mtps(n, secs);
        table.row(vec![series.to_string(), format!("{v:.0}")]);
        record(&Measurement {
            experiment: "noop-parity",
            series,
            x: 0.0,
            value: v,
            unit: "Mtps",
            backend: backend.name(),
            threads: 1,
        });
    };
    let t_disabled = bench(reps, || run(&mut out_keys, &mut out_pays));
    report(&mut table, "disabled", t_disabled);
    let t_noop = bench(reps, || {
        let mut sink = NoopSink;
        rsv_metrics::collect_with(&mut sink, || run(&mut out_keys, &mut out_pays));
    });
    report(&mut table, "noop-sink", t_noop);
    let t_counting = bench(reps, || {
        let ((), _sink) = rsv_metrics::collect(|| run(&mut out_keys, &mut out_pays));
    });
    report(&mut table, "counting", t_counting);
    table.print();

    // Sanity on the counting run's snapshot: the scan must have reported
    // exactly its input size (a cheap end-to-end check that metering is
    // actually live in this build unless compiled out).
    let ((), sink) = rsv_metrics::collect(|| run(&mut out_keys, &mut out_pays));
    let seen = sink.total().get(Metric::ScanTuplesIn);
    let expected = if cfg!(feature = "noop") { 0 } else { n as u64 };
    assert_eq!(seen, expected, "metered scan reported {seen} tuples in");

    let tol: f64 = std::env::var("RSV_PARITY_TOL")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.30);
    let ratio = t_noop / t_disabled;
    println!("\nnoop-sink / disabled time ratio: {ratio:.3} (tolerance ±{tol})");
    assert!(
        (ratio - 1.0).abs() <= tol,
        "NoopSink run diverged from the unmetered path: ratio {ratio:.3} \
         exceeds tolerance {tol}"
    );
    println!("parity OK");
}
