//! Figure 6: probing linear-probing and double-hashing tables vs. table
//! size — scalar, horizontal (bucketized) and vertical vectorization.
//!
//! Workload: 32-bit keys → 32-bit probed payloads, 50% load factor,
//! (almost) all probe keys match.
//!
//! Usage: `cargo run --release -p rsv-bench --bin fig06_lp_dh_probe [--scale X]`

use rsv_bench::{banner, bench, fmt_bytes, mtps, record, Measurement, Scale, Table};
use rsv_hashtab::{BucketScheme, BucketizedTable, DoubleHashTable, JoinSink, LinearTable};
use rsv_simd::dispatch;

fn main() {
    banner(
        "fig06",
        "probe LP & DH tables (shared, 32-bit key -> payload)",
        "vertical >> horizontal ~ scalar for cache-resident tables \
         (paper: up to 6x, using 4-way SMT to hide gather latency; the x4 \
         column interleaves 4 probe strands to do the same in software); \
         the gap narrows once the table spills to RAM",
    );
    let scale = Scale::from_env();
    let probes = scale.tuples(8 << 20, 1 << 16);
    let backend = rsv_bench::backend();
    println!(
        "probes per size: {probes}, vector backend: {}\n",
        backend.name()
    );

    let mut rng = rsv_data::rng(1006);
    let sizes: Vec<usize> = (12..=26).step_by(2).map(|b| 1usize << b).collect(); // 4 KB .. 64 MB

    let mut table = Table::new(&[
        "table size",
        "LP scalar",
        "LP horiz",
        "LP vert",
        "LP vert x4",
        "DH scalar",
        "DH horiz",
        "DH vert",
        "DH vert x4",
    ]);
    for bytes in sizes {
        // interleaved pairs are 8 bytes; 50% load factor
        let build_n = (bytes / 8 / 2).max(16);
        let bkeys = rsv_data::unique_u32(build_n, &mut rng);
        let bpays: Vec<u32> = (0..build_n as u32).collect();
        let pkeys: Vec<u32> = (0..probes).map(|i| bkeys[(i * 7 + 3) % build_n]).collect();
        let ppays: Vec<u32> = (0..probes as u32).collect();

        let mut lp = LinearTable::new(build_n, 0.5);
        lp.build_scalar(&bkeys, &bpays);
        let mut dh = DoubleHashTable::new(build_n, 0.5);
        dh.build_scalar(&bkeys, &bpays);
        let mut lp_h = BucketizedTable::new(build_n, 0.5, backend.lanes(), BucketScheme::Linear);
        lp_h.build(&bkeys, &bpays);
        let mut dh_h = BucketizedTable::new(build_n, 0.5, backend.lanes(), BucketScheme::Double);
        dh_h.build(&bkeys, &bpays);

        let mut sink = JoinSink::with_capacity(probes + 64);
        let mut run = |name: &str, f: &mut dyn FnMut(&mut JoinSink)| {
            let secs = bench(3, || {
                sink.clear();
                f(&mut sink);
                assert!(
                    sink.len() >= probes - 64,
                    "{name}: unexpectedly few matches"
                );
            });
            let v = mtps(probes, secs);
            record(&Measurement {
                experiment: "fig06",
                series: name,
                x: bytes as f64,
                value: v,
                unit: "Mtps",
                backend: backend.name(),
                threads: 1,
            });
            format!("{v:.0}")
        };

        let c1 = run("lp-scalar", &mut |s| lp.probe_scalar(&pkeys, &ppays, s));
        let c2 = run(
            "lp-horizontal",
            &mut |sink| dispatch!(backend, s => { lp_h.probe_horizontal(s, &pkeys, &ppays, sink) }),
        );
        let c3 = run(
            "lp-vertical",
            &mut |sink| dispatch!(backend, s => { lp.probe_vertical(s, &pkeys, &ppays, sink) }),
        );
        let c3b = run(
            "lp-vertical-x4",
            &mut |sink| dispatch!(backend, s => { lp.probe_vertical_interleaved(s, &pkeys, &ppays, sink) }),
        );
        let c4 = run("dh-scalar", &mut |s| dh.probe_scalar(&pkeys, &ppays, s));
        let c5 = run(
            "dh-horizontal",
            &mut |sink| dispatch!(backend, s => { dh_h.probe_horizontal(s, &pkeys, &ppays, sink) }),
        );
        let c6 = run(
            "dh-vertical",
            &mut |sink| dispatch!(backend, s => { dh.probe_vertical(s, &pkeys, &ppays, sink) }),
        );
        let c6b = run(
            "dh-vertical-x4",
            &mut |sink| dispatch!(backend, s => { dh.probe_vertical_interleaved(s, &pkeys, &ppays, sink) }),
        );
        table.row(vec![fmt_bytes(bytes), c1, c2, c3, c3b, c4, c5, c6, c6b]);
    }
    println!("throughput (million probes / second):\n");
    table.print();
}
