//! Figure 18: radixsort with varying payload column counts and widths
//! (destination replay, one column shuffled at a time).
//!
//! Usage: `cargo run --release -p rsv-bench --bin fig18_sort_payloads [--scale X]`

use rsv_bench::{banner, bench, record, Measurement, Scale, Table};
use rsv_simd::dispatch;
use rsv_sort::multicol::{lsb_radixsort_multicol, PayloadColumn};
use rsv_sort::SortConfig;

fn main() {
    banner(
        "fig18",
        "radixsort with varying payloads (32-bit key)",
        "time grows roughly linearly with total tuple width; 8/16-bit \
         columns cost about as much as 32-bit ones (compute-bound \
         shuffling; the paper sorts 8-byte tuples in 0.36s and 36-byte \
         tuples in 1s at its scale)",
    );
    let scale = Scale::from_env();
    let n = scale.tuples(25_000_000, 1 << 16);
    let backend = rsv_bench::backend();
    println!("tuples: {n}, backend: {}\n", backend.name());

    let mut rng = rsv_data::rng(1018);
    let keys = rsv_data::uniform_u32(n, &mut rng);

    let make = |spec: &str| -> Vec<PayloadColumn> {
        spec.split('+')
            .filter(|s| !s.is_empty())
            .map(|w| match w {
                "u8" => PayloadColumn::U8(vec![7u8; n]),
                "u16" => PayloadColumn::U16(vec![7u16; n]),
                "u32" => PayloadColumn::U32((0..n as u32).collect()),
                "u64" => PayloadColumn::U64(vec![7u64; n]),
                other => panic!("unknown width {other}"),
            })
            .collect()
    };

    let specs = [
        "",
        "u8",
        "u16",
        "u32",
        "u64",
        "u32+u32",
        "u32+u32+u32+u32",
        "u64+u64+u64+u64",
    ];
    let mut table = Table::new(&["payload columns", "tuple bytes", "time (s)", "Mtuples/s"]);
    for spec in specs {
        let cols_proto = make(spec);
        let bytes = 4 + cols_proto.iter().map(|c| c.width()).sum::<usize>();
        let secs = bench(2, || {
            let mut k = keys.clone();
            let mut cols = make(spec);
            dispatch!(backend, s => {
                lsb_radixsort_multicol(s, &mut k, &mut cols, &SortConfig::default())
            });
        });
        record(&Measurement {
            experiment: "fig18",
            series: if spec.is_empty() { "key-only" } else { spec },
            x: bytes as f64,
            value: secs,
            unit: "seconds",
            backend: backend.name(),
            threads: 1,
        });
        table.row(vec![
            if spec.is_empty() {
                "none".into()
            } else {
                spec.to_string()
            },
            bytes.to_string(),
            format!("{secs:.3}"),
            format!("{:.1}", n as f64 / secs / 1e6),
        ]);
    }
    println!("sort time by payload configuration:\n");
    table.print();
}
