//! Figure 16: thread scalability of radixsort and partitioned hash join,
//! now running on the morsel-driven work-stealing scheduler.
//!
//! **Host caveat**: the paper sweeps 1..244 hardware threads on a 61-core
//! Xeon Phi; this reproduction machine may expose far fewer logical CPUs
//! (possibly one), in which case the identical multi-threaded code runs
//! correctly but cannot exhibit hardware speedup. The numbers and the
//! caveat are both recorded.
//!
//! Besides wall time, each thread count prints the per-worker scheduler
//! breakdown (morsels claimed, morsels stolen, tuples, per-phase time) of
//! the final vectorized sort and join runs.
//!
//! Usage: `cargo run --release -p rsv-bench --bin fig16_scalability [--scale X]`

use rsv_bench::{banner, bench, record, Measurement, Scale, Table};
use rsv_exec::ExecPolicy;
use rsv_join::{join_max_partition, join_max_partition_policy, DEFAULT_PART_TUPLES};
use rsv_simd::dispatch;
use rsv_sort::{lsb_radixsort_scalar, lsb_radixsort_vector_stats, SortConfig};

fn main() {
    banner(
        "fig16",
        "thread scalability (radixsort & max-partition join)",
        "near-linear scaling with threads on real multi-core hardware; \
         on this host the curve is bounded by the available logical CPUs",
    );
    let scale = Scale::from_env();
    let n_sort = scale.tuples(12_500_000, 1 << 16);
    let n_join = scale.tuples(6_250_000, 1 << 14);
    let backend = rsv_bench::backend();
    let cpus = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    println!("sort {n_sort} tuples, join {n_join}x{n_join}; host logical cpus: {cpus}\n");

    let mut rng = rsv_data::rng(1016);
    let keys = rsv_data::uniform_u32(n_sort, &mut rng);
    let pays: Vec<u32> = (0..n_sort as u32).collect();
    let w = rsv_data::join_workload(n_join, n_join, 1.0, 1.0, &mut rng);

    let threads_list: Vec<usize> = [1usize, 2, 4, 8, 16]
        .iter()
        .copied()
        .filter(|&t| t <= (2 * cpus).max(2))
        .collect();

    let mut table = Table::new(&[
        "threads",
        "sort scalar (s)",
        "sort vector (s)",
        "join scalar (s)",
        "join vector (s)",
    ]);
    let mut worker_reports: Vec<(usize, String, String)> = Vec::new();
    for threads in threads_list {
        let cfg = SortConfig {
            radix_bits: 8,
            threads,
            ..SortConfig::default()
        };
        let policy = ExecPolicy::new(threads);
        let ss = bench(2, || {
            let mut k = keys.clone();
            let mut p = pays.clone();
            lsb_radixsort_scalar(&mut k, &mut p, &cfg);
        });
        let mut sort_stats = None;
        let sv = bench(2, || {
            let mut k = keys.clone();
            let mut p = pays.clone();
            let st = dispatch!(backend, s => {
                lsb_radixsort_vector_stats(s, &mut k, &mut p, &cfg)
            });
            sort_stats = Some(st);
        });
        let js = bench(2, || {
            let r = dispatch!(backend, s => {
                join_max_partition(s, false, &w.inner, &w.outer, threads)
            });
            assert_eq!(r.matches(), w.expected_matches);
        });
        let mut join_stats = None;
        let jv = bench(2, || {
            let (r, st) = dispatch!(backend, s => {
                join_max_partition_policy(
                    s, true, &w.inner, &w.outer, &policy, DEFAULT_PART_TUPLES,
                )
            });
            assert_eq!(r.matches(), w.expected_matches);
            join_stats = Some(st);
        });
        for (series, v) in [
            ("sort-scalar", ss),
            ("sort-vector", sv),
            ("join-scalar", js),
            ("join-vector", jv),
        ] {
            record(&Measurement {
                experiment: "fig16",
                series,
                x: threads as f64,
                value: v,
                unit: "seconds",
                backend: backend.name(),
                threads,
            });
        }
        table.row(vec![
            threads.to_string(),
            format!("{ss:.3}"),
            format!("{sv:.3}"),
            format!("{js:.3}"),
            format!("{jv:.3}"),
        ]);
        worker_reports.push((
            threads,
            sort_stats.map(|s| s.to_string()).unwrap_or_default(),
            join_stats.map(|s| s.to_string()).unwrap_or_default(),
        ));
    }
    println!("wall time (seconds, lower is better):\n");
    table.print();

    for (threads, sort_report, join_report) in worker_reports {
        println!("\nscheduler breakdown at {threads} thread(s) — sort (vector):");
        print!("{sort_report}");
        println!("scheduler breakdown at {threads} thread(s) — join (vector):");
        print!("{join_report}");
    }
}
