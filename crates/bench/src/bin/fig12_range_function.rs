//! Figure 12: range partition function throughput vs. fanout — scalar
//! branching/branchless binary search, vectorized binary search
//! (Algorithm 12), and the horizontal SIMD tree index of [26].
//!
//! Usage: `cargo run --release -p rsv-bench --bin fig12_range_function [--scale X]`

use rsv_bench::{banner, bench, mtps, record, Measurement, Scale, Table};
use rsv_partition::range::{RangeIndex, RangePartitioner};
use rsv_partition::PartitionFn;
use rsv_simd::{dispatch, Simd};

fn partition_column_vector<S: Simd>(
    s: S,
    f: rsv_partition::RangeFn<'_>,
    keys: &[u32],
    out: &mut [u32],
) {
    s.vectorize(
        #[inline(always)]
        || {
            let w = S::LANES;
            let mut i = 0;
            while i + w <= keys.len() {
                let p = f.partition_vector(s, s.load(&keys[i..]));
                s.store(p, &mut out[i..]);
                i += w;
            }
            for idx in i..keys.len() {
                out[idx] = f.partition(keys[idx]) as u32;
            }
        },
    );
}

fn main() {
    banner(
        "fig12",
        "range partition function vs. fanout (32-bit keys)",
        "vector binary search >> scalar (paper: 7-15x Phi, 2.4-2.8x \
         Haswell); the horizontal tree index wins on complex cores but \
         loses where scalar index arithmetic saturates the pipeline",
    );
    let scale = Scale::from_env();
    let n = scale.tuples(8 << 20, 1 << 16);
    let backend = rsv_bench::backend();
    println!("keys: {n}, vector backend: {}\n", backend.name());

    let mut rng = rsv_data::rng(1012);
    let keys = rsv_data::uniform_u32(n, &mut rng);
    let mut out = vec![0u32; n];

    let mut table = Table::new(&[
        "fanout",
        "scalar-branch",
        "scalar-nobranch",
        "vec-binsearch",
        "tree-index",
    ]);
    for bits in 3..=13u32 {
        let fanout = 1usize << bits;
        let splitters = rsv_data::splitters(fanout);
        let rp = RangePartitioner::new(&splitters);
        let idx = RangeIndex::new(&splitters, backend.lanes());
        let mut cells = vec![fanout.to_string()];
        let run = |name: &str, f: &mut dyn FnMut()| {
            let secs = bench(2, f);
            let v = mtps(n, secs);
            record(&Measurement {
                experiment: "fig12",
                series: name,
                x: bits as f64,
                value: v,
                unit: "Mtps",
                backend: backend.name(),
                threads: 1,
            });
            format!("{v:.0}")
        };
        cells.push(run("scalar-branching", &mut || {
            for (i, &k) in keys.iter().enumerate() {
                out[i] = rp.partition_branching(k) as u32;
            }
        }));
        cells.push(run("scalar-branchless", &mut || {
            for (i, &k) in keys.iter().enumerate() {
                out[i] = rp.partition_branchless(k) as u32;
            }
        }));
        cells.push(run("vector-binary-search", &mut || {
            dispatch!(backend, s => {
                partition_column_vector(s, rp.range_fn(), &keys, &mut out)
            })
        }));
        cells.push(run(
            "tree-index",
            &mut || dispatch!(backend, s => { idx.partition_column(s, &keys, &mut out) }),
        ));
        table.row(cells);
    }
    println!("throughput (million keys / second):\n");
    table.print();
}
