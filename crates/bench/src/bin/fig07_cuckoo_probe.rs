//! Figure 7: probing cuckoo hashing tables vs. table size — scalar
//! branching/branchless, horizontal (bucketized), and the two vertical
//! variants (blend-both-buckets vs. selective second gather).
//!
//! Usage: `cargo run --release -p rsv-bench --bin fig07_cuckoo_probe [--scale X]`

use rsv_bench::{banner, bench, fmt_bytes, mtps, record, Measurement, Scale, Table};
use rsv_hashtab::{BucketizedCuckoo, CuckooTable, JoinSink};
use rsv_simd::dispatch;

fn main() {
    banner(
        "fig07",
        "probe cuckoo table (2 functions, 32-bit key -> payload)",
        "vertical >> horizontal & scalar in cache (paper: 5x Phi / 1.7x \
         Haswell); branchless scalar below branching; select ~ blend",
    );
    let scale = Scale::from_env();
    let probes = scale.tuples(8 << 20, 1 << 16);
    let backend = rsv_bench::backend();
    println!(
        "probes per size: {probes}, vector backend: {}\n",
        backend.name()
    );

    let mut rng = rsv_data::rng(1007);
    let sizes: Vec<usize> = (12..=26).step_by(2).map(|b| 1usize << b).collect();

    let mut table = Table::new(&[
        "table size",
        "scalar-br",
        "scalar-nobr",
        "horizontal",
        "vert-blend",
        "vert-select",
    ]);
    for bytes in sizes {
        let build_n = (bytes / 8 / 2).max(16);
        let bkeys = rsv_data::unique_u32(build_n, &mut rng);
        let bpays: Vec<u32> = (0..build_n as u32).collect();
        let pkeys: Vec<u32> = (0..probes).map(|i| bkeys[(i * 7 + 3) % build_n]).collect();
        let ppays: Vec<u32> = (0..probes as u32).collect();

        let mut ck = CuckooTable::new(build_n, 0.48);
        ck.build_scalar(&bkeys, &bpays)
            .expect("cuckoo build at 48% load");
        // horizontal comparison: the bucketized cuckoo table of [30]
        let mut hz = BucketizedCuckoo::new(build_n, 0.48, backend.lanes());
        hz.build(&bkeys, &bpays).expect("bucketized cuckoo build");

        let mut sink = JoinSink::with_capacity(probes + 64);
        let mut run = |name: &str, f: &mut dyn FnMut(&mut JoinSink)| {
            let secs = bench(3, || {
                sink.clear();
                f(&mut sink);
            });
            let v = mtps(probes, secs);
            record(&Measurement {
                experiment: "fig07",
                series: name,
                x: bytes as f64,
                value: v,
                unit: "Mtps",
                backend: backend.name(),
                threads: 1,
            });
            format!("{v:.0}")
        };

        let c1 = run("scalar-branching", &mut |s| {
            ck.probe_scalar_branching(&pkeys, &ppays, s)
        });
        let c2 = run("scalar-branchless", &mut |s| {
            ck.probe_scalar_branchless(&pkeys, &ppays, s)
        });
        let c3 = run(
            "horizontal",
            &mut |sink| dispatch!(backend, s => { hz.probe_horizontal(s, &pkeys, &ppays, sink) }),
        );
        let c4 = run(
            "vertical-blend",
            &mut |sink| dispatch!(backend, s => { ck.probe_vertical_blend(s, &pkeys, &ppays, sink) }),
        );
        let c5 = run(
            "vertical-select",
            &mut |sink| dispatch!(backend, s => { ck.probe_vertical_select(s, &pkeys, &ppays, sink) }),
        );
        table.row(vec![fmt_bytes(bytes), c1, c2, c3, c4, c5]);
    }
    println!("throughput (million probes / second):\n");
    table.print();
}
