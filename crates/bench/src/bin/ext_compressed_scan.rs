//! Extension experiment: raw vs. compressed fused selection scan.
//!
//! Not a numbered figure in the paper. The §4 selection scan over raw
//! 32-bit columns is memory-bandwidth-bound at production scale; this
//! experiment packs both columns with `rsv-column`'s FOR + bit-packed
//! block format and runs the *fused* scan, which decodes one vector of
//! values into registers per step and reads only `b/32` of the bytes.
//! Sweeps bit width (the compression knob) × selectivity (the operator
//! knob), for the direct and indirect selective-store variants.
//!
//! Expected shape: at width ≤ 16 the fused compressed scan meets or
//! beats the raw scan on a SIMD backend — decode adds a handful of
//! cheap shift/mask ops per vector while halving (or better) the bytes
//! streamed from memory; at width 32 compression stores the same bytes
//! plus a directory, so fused ≈ raw minus decode overhead.
//!
//! Usage: `cargo run --release -p rsv-bench --bin ext_compressed_scan
//! [--scale X] [--backend NAME]`

use rsv_bench::{banner, bench, fmt_bytes, mtps, record, Measurement, Scale, Table};
use rsv_column::{select_fused, CompressedColumn};
use rsv_scan::{scan, ScanPredicate, ScanVariant};

fn main() {
    banner(
        "ext-compressed-scan",
        "selection scan: raw columns vs. fused bit-packed scan",
        "fused compressed scan ≥ raw scan at width ≤ 16 on a SIMD backend \
         (bandwidth saved exceeds decode cost), converging toward raw at \
         width 32",
    );
    let scale = Scale::from_env();
    let n = scale.tuples(16 << 20, 1 << 16);
    let backend = rsv_bench::backend();
    println!("tuples: {n}, backend: {}\n", backend.name());

    let variants = [
        ScanVariant::VectorSelStoreDirect,
        ScanVariant::VectorSelStoreIndirect,
    ];
    let mut table = Table::new(&[
        "width",
        "sel %",
        "ratio",
        "raw-dir",
        "fused-dir",
        "raw-ind",
        "fused-ind",
    ]);

    for bits in [4u32, 8, 12, 16, 24, 32] {
        let mut rng = rsv_data::rng(2031 + u64::from(bits));
        let keys = rsv_data::bounded_u32(n, bits, &mut rng);
        let pays: Vec<u32> = (0..n as u32).collect();
        let ck = CompressedColumn::pack_with_width(backend, &keys, bits as u8);
        let cp = CompressedColumn::pack(backend, &pays);
        let ratio = (n * 8) as f64 / (ck.packed_bytes() + cp.packed_bytes()) as f64;
        record(&Measurement {
            experiment: "ext-compressed-scan",
            series: "compression-ratio",
            x: f64::from(bits),
            value: ratio,
            unit: "x",
            backend: backend.name(),
            threads: 1,
        });

        for sel in [0.01f64, 0.1, 0.5, 1.0] {
            // keys are uniform over [0, 2^bits): an upper bound at
            // sel·2^bits selects ~sel of the column
            let domain = if bits == 32 {
                u32::MAX
            } else {
                (1u32 << bits) - 1
            };
            let pred = ScanPredicate {
                lower: 0,
                upper: (f64::from(domain) * sel) as u32,
            };
            let mut out_keys = vec![0u32; n];
            let mut out_pays = vec![0u32; n];
            let mut cells = vec![
                format!("{bits}"),
                format!("{:.0}", sel * 100.0),
                format!("{ratio:.2}x"),
            ];
            for variant in variants {
                let raw_secs = bench(3, || {
                    scan(
                        backend,
                        variant,
                        &keys,
                        &pays,
                        pred,
                        &mut out_keys,
                        &mut out_pays,
                    );
                });
                let fused_secs = bench(3, || {
                    select_fused(
                        backend,
                        variant,
                        &ck,
                        &cp,
                        pred,
                        &mut out_keys,
                        &mut out_pays,
                    );
                });
                let rm = mtps(n, raw_secs);
                let fm = mtps(n, fused_secs);
                let tag = match variant {
                    ScanVariant::VectorSelStoreDirect => "selstore-direct",
                    _ => "selstore-indirect",
                };
                record(&Measurement {
                    experiment: "ext-compressed-scan",
                    series: &format!("raw-{tag}-w{bits}"),
                    x: sel * 100.0,
                    value: rm,
                    unit: "Mtps",
                    backend: backend.name(),
                    threads: 1,
                });
                record(&Measurement {
                    experiment: "ext-compressed-scan",
                    series: &format!("fused-{tag}-w{bits}"),
                    x: sel * 100.0,
                    value: fm,
                    unit: "Mtps",
                    backend: backend.name(),
                    threads: 1,
                });
                cells.push(format!("{rm:.0}"));
                cells.push(format!("{fm:.0}"));
            }
            table.row(cells);
        }
        println!(
            "width {bits}: raw {} -> packed {} ({ratio:.2}x)",
            fmt_bytes(n * 8),
            fmt_bytes(ck.packed_bytes() + cp.packed_bytes()),
        );
    }
    println!();
    table.print();
}
