//! Figure 5: selection scan throughput vs. selectivity, six variants
//! (scalar branching/branchless; vector bit-extract/selective-store ×
//! direct/indirect).
//!
//! Usage: `cargo run --release -p rsv-bench --bin fig05_selection_scan [--scale X]`

use rsv_bench::{banner, bench, mtps, record, Measurement, Scale, Table};
use rsv_scan::{scan, ScanPredicate, ScanVariant};

fn main() {
    banner(
        "fig05",
        "selection scan (32-bit key & payload)",
        "vector >> scalar; indirect variants win at low selectivity, \
         selective-store wins at high selectivity; branchless scalar flat",
    );
    let scale = Scale::from_env();
    let n = scale.tuples(16 << 20, 1 << 16);
    let backend = rsv_bench::backend();
    println!("tuples: {n}, vector backend: {}\n", backend.name());

    let mut rng = rsv_data::rng(1005);
    let keys = rsv_data::uniform_u32(n, &mut rng);
    let pays: Vec<u32> = (0..n as u32).collect();
    let mut out_keys = vec![0u32; n];
    let mut out_pays = vec![0u32; n];

    let selectivities = [0.0, 0.01, 0.02, 0.05, 0.10, 0.20, 0.50, 1.00];
    let mut table = Table::new(&[
        "selectivity %",
        "scalar-br",
        "scalar-nobr",
        "vec-bit-dir",
        "vec-sel-dir",
        "vec-bit-ind",
        "vec-sel-ind",
    ]);
    for sel in selectivities {
        let (lo, hi) = rsv_data::selection_bounds(sel);
        let pred = ScanPredicate {
            lower: lo,
            upper: hi,
        };
        let mut cells = vec![format!("{:.0}", sel * 100.0)];
        for variant in ScanVariant::ALL {
            let secs = bench(3, || {
                scan(
                    backend,
                    variant,
                    &keys,
                    &pays,
                    pred,
                    &mut out_keys,
                    &mut out_pays,
                );
            });
            let v = mtps(n, secs);
            record(&Measurement {
                experiment: "fig05",
                series: variant.label(),
                x: sel * 100.0,
                value: v,
                unit: "Mtps",
                backend: backend.name(),
                threads: 1,
            });
            cells.push(format!("{v:.0}"));
        }
        table.row(cells);
    }
    println!("throughput (million tuples / second):\n");
    table.print();
}
