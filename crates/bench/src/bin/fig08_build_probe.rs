//! Figure 8: interleaved build & probe of shared-nothing LP, DH and cuckoo
//! tables with the table resident in L1, L2 or RAM (1:1 build:probe ratio,
//! as in the last phase of a partitioned hash join).
//!
//! Throughput is `(|R| + |S|) / t` as in the paper.
//!
//! Usage: `cargo run --release -p rsv-bench --bin fig08_build_probe [--scale X]`

use rsv_bench::{banner, bench, mtps, record, Measurement, Scale, Table};
use rsv_hashtab::{CuckooTable, DoubleHashTable, JoinSink, LinearTable};
use rsv_simd::dispatch;

#[allow(clippy::type_complexity)]
fn main() {
    banner(
        "fig08",
        "build & probe LP/DH/CH (1:1, shared-nothing)",
        "vector speedup largest in L1 (paper: 2.6-4x), shrinking in L2 \
         (2.4-2.7x) and out of cache (1.2-1.4x)",
    );
    let scale = Scale::from_env();
    let total = scale.tuples(16 << 20, 1 << 18); // total tuples processed per cell
    let backend = rsv_bench::backend();
    println!(
        "tuples per cell: {total}, vector backend: {}\n",
        backend.name()
    );

    let mut rng = rsv_data::rng(1008);
    // table sizes: ~4 KB (L1), ~64 KB (L2), ~1 MB (out of private cache)
    let configs = [
        ("L1 (4 KB)", 256usize),
        ("L2 (64 KB)", 4096),
        ("RAM (4 MB)", 1 << 18),
    ];

    let mut table = Table::new(&[
        "residency",
        "LP scalar",
        "LP vector",
        "DH scalar",
        "DH vector",
        "CH scalar",
        "CH vector",
    ]);
    for (label, per_table) in configs {
        let rounds = (total / (2 * per_table)).max(1);
        let all_keys = rsv_data::unique_u32(per_table * rounds.min(64), &mut rng);
        let pays: Vec<u32> = (0..per_table as u32).collect();

        let mut sink = JoinSink::with_capacity(per_table * rounds + 64);
        let mut run = |name: &str, f: &mut dyn FnMut(&[u32], &[u32], &mut JoinSink)| {
            let secs = bench(3, || {
                sink.clear();
                for round in 0..rounds {
                    let base =
                        (round % 64) * per_table % all_keys.len().saturating_sub(per_table).max(1);
                    let keys = &all_keys[base..base + per_table];
                    f(keys, &pays, &mut sink);
                }
            });
            let v = mtps(2 * per_table * rounds, secs);
            record(&Measurement {
                experiment: "fig08",
                series: name,
                x: per_table as f64 * 16.0, // approx table bytes
                value: v,
                unit: "Mtps",
                backend: backend.name(),
                threads: 1,
            });
            format!("{v:.0}")
        };

        let c1 = run("lp-scalar", &mut |k, p, sink| {
            let mut t = LinearTable::new(k.len(), 0.5);
            t.build_scalar(k, p);
            t.probe_scalar(k, p, sink);
        });
        let c2 = run("lp-vector", &mut |k, p, sink| {
            dispatch!(backend, s => {
                let mut t = LinearTable::new(k.len(), 0.5);
                t.build_vertical(s, k, p);
                t.probe_vertical(s, k, p, sink);
            })
        });
        let c3 = run("dh-scalar", &mut |k, p, sink| {
            let mut t = DoubleHashTable::new(k.len(), 0.5);
            t.build_scalar(k, p);
            t.probe_scalar(k, p, sink);
        });
        let c4 = run("dh-vector", &mut |k, p, sink| {
            dispatch!(backend, s => {
                let mut t = DoubleHashTable::new(k.len(), 0.5);
                t.build_vertical(s, k, p);
                t.probe_vertical(s, k, p, sink);
            })
        });
        let c5 = run("ch-scalar", &mut |k, p, sink| {
            let mut t = CuckooTable::new(k.len(), 0.48);
            t.build_scalar(k, p).expect("cuckoo build");
            t.probe_scalar_branching(k, p, sink);
        });
        let c6 = run("ch-vector", &mut |k, p, sink| {
            dispatch!(backend, s => {
                let mut t = CuckooTable::new(k.len(), 0.48);
                t.build_vertical(s, k, p).expect("cuckoo build");
                t.probe_vertical_select(s, k, p, sink);
            })
        });
        table.row(vec![label.to_string(), c1, c2, c3, c4, c5, c6]);
    }
    println!("throughput ((|R|+|S|) million tuples / second):\n");
    table.print();
}
