//! Run every figure experiment in sequence (Table 1 + Figures 5-19).
//!
//! Usage: `cargo run --release -p rsv-bench --bin all_experiments [--scale X]`
//!
//! With `RSV_JSON=results.jsonl` every measurement is also appended to a
//! JSON-lines file for post-processing.

use std::process::Command;

const BINS: &[&str] = &[
    "table1",
    "fig05_selection_scan",
    "fig06_lp_dh_probe",
    "fig07_cuckoo_probe",
    "fig08_build_probe",
    "fig09_key_repeats",
    "fig10_bloom",
    "fig11_histogram",
    "fig12_range_function",
    "fig13_shuffling",
    "fig14_radixsort",
    "fig15_join_variants",
    "fig16_scalability",
    "fig17_cross_platform",
    "fig18_sort_payloads",
    "fig19_join_payloads",
    "ext_aggregation",
    "ext_compressed_scan",
    "ablation_skew",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("exe dir");
    let mut failures = Vec::new();
    for bin in BINS {
        println!("\n################################################################");
        println!("# running {bin}");
        println!("################################################################\n");
        let status = Command::new(dir.join(bin)).args(&args).status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                eprintln!("!! {bin} failed: {other:?}");
                failures.push(*bin);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall experiments completed");
    } else {
        eprintln!("\nfailed experiments: {failures:?}");
        std::process::exit(1);
    }
}
