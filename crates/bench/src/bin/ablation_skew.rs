//! Ablation: skewed (Zipf) vs. uniform inputs.
//!
//! The paper evaluates on uniform data only, noting that "previous work has
//! shown that joins, partitioning, and sorting are faster under skew"
//! (§10). This ablation checks that claim for this reproduction: radix
//! partitioning and hash-table probing over Zipf-distributed keys should be
//! at least as fast as over uniform keys (hot partitions/buckets stay in
//! cache), and conflict serialization should not collapse under heavy lane
//! conflicts.
//!
//! Usage: `cargo run --release -p rsv-bench --bin ablation_skew [--scale X]`

use rsv_bench::{banner, bench, mtps, record, Measurement, Scale, Table};
use rsv_exec::{ExecPolicy, DEFAULT_MORSEL_TUPLES};
use rsv_hashtab::{JoinSink, LinearTable};
use rsv_partition::histogram::histogram_scalar;
use rsv_partition::parallel::partition_pass_policy;
use rsv_partition::shuffle::shuffle_vector_buffered;
use rsv_partition::RadixFn;
use rsv_simd::dispatch;

fn main() {
    banner(
        "ablation-skew",
        "uniform vs. Zipf-skewed keys (partition & probe)",
        "skew should not slow the vectorized kernels down (paper §10: the \
         literature finds joins/partitioning/sorting faster under skew); \
         conflict serialization must stay correct and graceful",
    );
    let scale = Scale::from_env();
    let n = scale.tuples(4 << 20, 1 << 16);
    let backend = rsv_bench::backend();
    println!("tuples: {n}, backend: {}\n", backend.name());

    let mut rng = rsv_data::rng(1021);
    let domain = 1u32 << 16;
    let uniform: Vec<u32> = rsv_data::uniform_u32(n, &mut rng)
        .iter()
        .map(|k| k % domain)
        .collect();
    let zipf = rsv_data::zipf_u32(n, domain, 1.0, &mut rng);
    let pays: Vec<u32> = (0..n as u32).collect();

    let mut table = Table::new(&["workload", "partition Mtps", "probe Mtps"]);
    for (name, keys) in [("uniform", &uniform), ("zipf(1.0)", &zipf)] {
        // vectorized buffered radix partitioning at 2^8 fanout
        let f = RadixFn::new(0, 8);
        let hist = histogram_scalar(f, keys);
        let mut ok = vec![0u32; n];
        let mut op = vec![0u32; n];
        let p_secs = bench(2, || {
            dispatch!(backend, s => {
                shuffle_vector_buffered(s, f, keys, &pays, &hist, &mut ok, &mut op)
            });
        });

        // vertical probe of an L2-resident table under the same key skew
        let build_n = 4096usize;
        let mut rng2 = rsv_data::rng(7);
        let bkeys = rsv_data::unique_u32(build_n, &mut rng2);
        let mut t = LinearTable::new(build_n, 0.5);
        let bpays: Vec<u32> = (0..build_n as u32).collect();
        t.build_scalar(&bkeys, &bpays);
        let pkeys: Vec<u32> = keys.iter().map(|&k| bkeys[k as usize % build_n]).collect();
        let mut sink = JoinSink::with_capacity(n + 64);
        let q_secs = bench(2, || {
            sink.clear();
            dispatch!(backend, s => {
                t.probe_vertical_interleaved(s, &pkeys, &pays, &mut sink)
            });
        });

        let pm = mtps(n, p_secs);
        let qm = mtps(n, q_secs);
        record(&Measurement {
            experiment: "ablation-skew",
            series: name,
            x: 0.0,
            value: pm,
            unit: "Mtps-partition",
            backend: backend.name(),
            threads: 1,
        });
        record(&Measurement {
            experiment: "ablation-skew",
            series: name,
            x: 1.0,
            value: qm,
            unit: "Mtps-probe",
            backend: backend.name(),
            threads: 1,
        });
        table.row(vec![
            name.to_string(),
            format!("{pm:.0}"),
            format!("{qm:.0}"),
        ]);
    }
    println!("throughput under skew (million tuples / second):\n");
    table.print();

    // ----------------------------------------------------------------
    // Scheduler ablation: the paper's static equal split (emulated as one
    // morsel per worker) vs. 16K-tuple work-stealing morsels, on uniform
    // and Zipf keys, for the full parallel partitioning pass. Under skew
    // the morsel scheduler should be no slower at t >= 4, and at t = 1 its
    // overhead should be within noise.
    // ----------------------------------------------------------------
    let cpus = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let threads_list: Vec<usize> = [1usize, 4]
        .iter()
        .copied()
        .filter(|&t| t <= 2 * cpus.max(2))
        .collect();
    println!("\nscheduler ablation (parallel partition pass, fanout 2^8):\n");
    let mut sched_table = Table::new(&["workload", "threads", "static Mtps", "morsel Mtps"]);
    let mut reports: Vec<(String, String)> = Vec::new();
    for (name, keys) in [("uniform", &uniform), ("zipf(1.0)", &zipf)] {
        let f = RadixFn::new(0, 8);
        for &threads in &threads_list {
            let mut per_schedule = Vec::new();
            for (sched, policy) in [
                ("static", ExecPolicy::new(threads).static_split()),
                (
                    "morsel",
                    ExecPolicy::new(threads).with_morsel_tuples(DEFAULT_MORSEL_TUPLES),
                ),
            ] {
                let mut ok = vec![0u32; n];
                let mut op = vec![0u32; n];
                let mut stats = None;
                let secs = bench(2, || {
                    let (_, st) = dispatch!(backend, s => {
                        partition_pass_policy(
                            s, true, f, keys, &pays, &mut ok, &mut op, &policy,
                        )
                    });
                    stats = Some(st);
                });
                let m = mtps(n, secs);
                record(&Measurement {
                    experiment: "ablation-sched",
                    series: name,
                    x: threads as f64,
                    value: m,
                    unit: match sched {
                        "static" => "Mtps-static",
                        _ => "Mtps-morsel",
                    },
                    backend: backend.name(),
                    threads,
                });
                if sched == "morsel" {
                    reports.push((
                        format!("{name} t={threads} ({sched})"),
                        stats.map(|s| s.to_string()).unwrap_or_default(),
                    ));
                }
                per_schedule.push(m);
            }
            sched_table.row(vec![
                name.to_string(),
                threads.to_string(),
                format!("{:.0}", per_schedule[0]),
                format!("{:.0}", per_schedule[1]),
            ]);
        }
    }
    sched_table.print();
    for (label, report) in reports {
        println!("\nper-worker breakdown — {label}:");
        print!("{report}");
    }
}
