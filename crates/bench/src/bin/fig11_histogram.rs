//! Figure 11: radix & hash histogram generation vs. fanout — scalar radix,
//! scalar hash, vector with conflict serialization, vector with replicated
//! counts, and vector with replicated compressed (8-bit) counts.
//!
//! Usage: `cargo run --release -p rsv-bench --bin fig11_histogram [--scale X]`

use rsv_bench::{banner, bench, mtps, record, Measurement, Scale, Table};
use rsv_partition::histogram::{
    histogram_scalar, histogram_vector_compressed, histogram_vector_replicated,
    histogram_vector_serialized,
};
use rsv_partition::{HashFn, RadixFn};
use rsv_simd::dispatch;

fn main() {
    banner(
        "fig11",
        "radix & hash histogram vs. fanout",
        "replication beats serialization (paper: 2.55x over scalar on Phi); \
         compression extends the viable fanout once replicated counts \
         spill out of L1; very large fanouts hurt every vector variant",
    );
    let scale = Scale::from_env();
    let n = scale.tuples(16 << 20, 1 << 16);
    let backend = rsv_bench::backend();
    println!("keys: {n}, vector backend: {}\n", backend.name());

    let mut rng = rsv_data::rng(1011);
    let keys = rsv_data::uniform_u32(n, &mut rng);

    let mut table = Table::new(&[
        "log2(fanout)",
        "scalar radix",
        "scalar hash",
        "vec serialize",
        "vec replicate",
        "vec repl+comp",
    ]);
    for bits in 3..=13u32 {
        let rf = RadixFn::new(0, bits);
        let hf = HashFn::new(1 << bits);
        let mut cells = vec![bits.to_string()];
        let run = |name: &str, f: &mut dyn FnMut() -> Vec<u32>| {
            let secs = bench(2, || {
                let h = f();
                assert_eq!(h.len(), 1 << bits);
            });
            let v = mtps(n, secs);
            record(&Measurement {
                experiment: "fig11",
                series: name,
                x: bits as f64,
                value: v,
                unit: "Mtps",
                backend: backend.name(),
                threads: 1,
            });
            format!("{v:.0}")
        };
        cells.push(run("scalar-radix", &mut || histogram_scalar(rf, &keys)));
        cells.push(run("scalar-hash", &mut || histogram_scalar(hf, &keys)));
        cells.push(run(
            "vector-serialize",
            &mut || dispatch!(backend, s => { histogram_vector_serialized(s, rf, &keys) }),
        ));
        cells.push(run(
            "vector-replicate",
            &mut || dispatch!(backend, s => { histogram_vector_replicated(s, rf, &keys) }),
        ));
        cells.push(run(
            "vector-repl-compress",
            &mut || dispatch!(backend, s => { histogram_vector_compressed(s, rf, &keys) }),
        ));
        table.row(cells);
    }
    println!("throughput (million keys / second):\n");
    table.print();
}
