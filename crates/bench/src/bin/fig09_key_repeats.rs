//! Figure 9: build & probe under inner-key repeats with constant output
//! size (1:10 build:probe, L1-resident tables).
//!
//! Configurations: no repeats/100% match, 1.25 repeats/80%, 2.5/40%,
//! 5/20%. Cuckoo supports only the no-repeat case.
//!
//! Usage: `cargo run --release -p rsv-bench --bin fig09_key_repeats [--scale X]`

use rsv_bench::{banner, bench, mtps, record, Measurement, Scale, Table};
use rsv_hashtab::{CuckooTable, DoubleHashTable, JoinSink, LinearTable};
use rsv_simd::dispatch;

fn main() {
    banner(
        "fig09",
        "build & probe with key repeats (1:10, L1, constant output)",
        "vector speedup ~7x with unique keys, degrading with repeats; \
         DH degrades more gracefully than LP (paper: 4.1x vs 2.7x at 5 repeats)",
    );
    let scale = Scale::from_env();
    let backend = rsv_bench::backend();
    let build_n = 256usize; // ~4 KB table
    let probe_n = build_n * 10;
    let rounds = scale.tuples(4 << 20, 1 << 16) / (build_n + probe_n);
    println!(
        "build {build_n} : probe {probe_n}, {rounds} rounds, backend {}\n",
        backend.name()
    );

    let configs: [(f64, f64, &str); 4] = [
        (1.0, 1.0, "1 / 100%"),
        (1.25, 0.8, "1.25 / 80%"),
        (2.5, 0.4, "2.5 / 40%"),
        (5.0, 0.2, "5 / 20%"),
    ];

    let mut table = Table::new(&[
        "repeats/match",
        "LP scalar",
        "LP vector",
        "DH scalar",
        "DH vector",
        "CH scalar",
        "CH vector",
    ]);
    for (repeats, match_frac, label) in configs {
        let mut rng = rsv_data::rng(1009);
        let w = rsv_data::join_workload(build_n, probe_n, repeats, match_frac, &mut rng);
        let (bk, bp) = (&w.inner.keys, &w.inner.payloads);
        let (pk, pp) = (&w.outer.keys, &w.outer.payloads);

        let mut sink = JoinSink::with_capacity(probe_n * 2 * rounds + 64);
        let mut run = |name: &str, f: &mut dyn FnMut(&mut JoinSink)| -> String {
            let secs = bench(3, || {
                sink.clear();
                for _ in 0..rounds {
                    f(&mut sink);
                }
            });
            let v = mtps((build_n + probe_n) * rounds, secs);
            record(&Measurement {
                experiment: "fig09",
                series: name,
                x: repeats,
                value: v,
                unit: "Mtps",
                backend: backend.name(),
                threads: 1,
            });
            format!("{v:.0}")
        };

        let c1 = run("lp-scalar", &mut |sink| {
            let mut t = LinearTable::new(build_n, 0.5);
            t.build_scalar(bk, bp);
            t.probe_scalar(pk, pp, sink);
        });
        let c2 = run("lp-vector", &mut |sink| {
            dispatch!(backend, s => {
                let mut t = LinearTable::new(build_n, 0.5);
                t.build_vertical(s, bk, bp);
                t.probe_vertical(s, pk, pp, sink);
            })
        });
        let c3 = run("dh-scalar", &mut |sink| {
            let mut t = DoubleHashTable::new(build_n, 0.5);
            t.build_scalar(bk, bp);
            t.probe_scalar(pk, pp, sink);
        });
        let c4 = run("dh-vector", &mut |sink| {
            dispatch!(backend, s => {
                let mut t = DoubleHashTable::new(build_n, 0.5);
                t.build_vertical(s, bk, bp);
                t.probe_vertical(s, pk, pp, sink);
            })
        });
        let (c5, c6) = if repeats == 1.0 {
            (
                run("ch-scalar", &mut |sink| {
                    let mut t = CuckooTable::new(build_n, 0.48);
                    t.build_scalar(bk, bp).expect("cuckoo build");
                    t.probe_scalar_branching(pk, pp, sink);
                }),
                run("ch-vector", &mut |sink| {
                    dispatch!(backend, s => {
                        let mut t = CuckooTable::new(build_n, 0.48);
                        t.build_vertical(s, bk, bp).expect("cuckoo build");
                        t.probe_vertical_select(s, pk, pp, sink);
                    })
                }),
            )
        } else {
            ("n/a".into(), "n/a".into())
        };
        table.row(vec![label.to_string(), c1, c2, c3, c4, c5, c6]);
    }
    println!("throughput (million tuples / second):\n");
    table.print();
}
