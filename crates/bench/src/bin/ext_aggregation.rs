//! Extension experiment: vectorized group-by aggregation (`COUNT`/`SUM`).
//!
//! Not a numbered figure in the paper, but §5 names aggregation as the
//! second major hash-table consumer ("insert and update partial
//! aggregates") and [25] studies its contention behavior. This experiment
//! sweeps the number of distinct groups from register-pressure-small to
//! RAM-resident, comparing the scalar loop against the vertical vectorized
//! update kernel (which defers read-modify-write conflicts between lanes).
//!
//! Usage: `cargo run --release -p rsv-bench --bin ext_aggregation [--scale X]`

use rsv_bench::{banner, bench, mtps, record, Measurement, Scale, Table};
use rsv_hashtab::GroupAggTable;
use rsv_simd::dispatch;

fn main() {
    banner(
        "ext-agg",
        "group-by aggregation (COUNT, SUM(u32) -> u64)",
        "on out-of-order CPUs the scalar loop (one increment per cycle) is \
         hard to beat; lane-conflict deferral serializes the vector kernel \
         at tiny group counts, and the two converge once cache misses on \
         the group table dominate (the Phi result [25] favors vector)",
    );
    let scale = Scale::from_env();
    let n = scale.tuples(16 << 20, 1 << 16);
    let backend = rsv_bench::backend();
    println!("tuples: {n}, backend: {}\n", backend.name());

    let mut rng = rsv_data::rng(1020);
    let values = rsv_data::uniform_u32(n, &mut rng);
    let raw = rsv_data::uniform_u32(n, &mut rng);

    let mut table = Table::new(&["groups", "scalar Mtps", "vector Mtps", "speedup"]);
    for log_groups in [2u32, 4, 6, 8, 10, 12, 14, 16, 18, 20] {
        let groups = 1usize << log_groups;
        let keys: Vec<u32> = raw.iter().map(|&k| k % groups as u32).collect();

        let s_secs = bench(2, || {
            let mut t = GroupAggTable::new(groups, 0.5);
            t.update_scalar(&keys, &values);
            assert!(t.groups() <= groups);
        });
        let v_secs = bench(2, || {
            dispatch!(backend, s => {
                let mut t = GroupAggTable::new(groups, 0.5);
                t.update_vector(s, &keys, &values);
                assert!(t.groups() <= groups);
            });
        });
        let sm = mtps(n, s_secs);
        let vm = mtps(n, v_secs);
        record(&Measurement {
            experiment: "ext-agg",
            series: "scalar",
            x: log_groups as f64,
            value: sm,
            unit: "Mtps",
            backend: backend.name(),
            threads: 1,
        });
        record(&Measurement {
            experiment: "ext-agg",
            series: "vector",
            x: log_groups as f64,
            value: vm,
            unit: "Mtps",
            backend: backend.name(),
            threads: 1,
        });
        table.row(vec![
            format!("2^{log_groups}"),
            format!("{sm:.0}"),
            format!("{vm:.0}"),
            format!("{:.2}x", vm / sm),
        ]);
    }
    println!("aggregation throughput (million tuples / second):\n");
    table.print();
}
