//! Figure 13: out-of-cache radix shuffling vs. fanout — scalar/vector ×
//! unbuffered/buffered, plus the unstable hash-partitioning variant.
//!
//! Usage: `cargo run --release -p rsv-bench --bin fig13_shuffling [--scale X]`

use rsv_bench::{banner, bench, mtps, record, Measurement, Scale, Table};
use rsv_partition::histogram::histogram_scalar;
use rsv_partition::shuffle::{
    shuffle_scalar_buffered, shuffle_scalar_unbuffered, shuffle_vector_buffered,
    shuffle_vector_buffered_unstable, shuffle_vector_unbuffered,
};
use rsv_partition::{HashFn, RadixFn};
use rsv_simd::dispatch;

fn main() {
    banner(
        "fig13",
        "radix shuffling vs. fanout (out-of-cache, 32-bit key & payload)",
        "buffered >> unbuffered at high fanout (paper: 1.8x scalar, 2.85x \
         vector); vector buffered leads overall; unstable hash variant \
         slightly ahead of stable radix; optimal fanout 5-8 bits",
    );
    let scale = Scale::from_env();
    let n = scale.tuples(16 << 20, 1 << 16);
    let backend = rsv_bench::backend();
    println!("tuples: {n}, vector backend: {}\n", backend.name());

    let mut rng = rsv_data::rng(1013);
    let keys = rsv_data::uniform_u32(n, &mut rng);
    let pays: Vec<u32> = (0..n as u32).collect();
    let mut ok = vec![0u32; n];
    let mut op = vec![0u32; n];

    let mut table = Table::new(&[
        "log2(fanout)",
        "scalar-unbuf",
        "scalar-buf",
        "vec-unbuf",
        "vec-buf",
        "vec-buf-hash",
    ]);
    for bits in 3..=13u32 {
        let rf = RadixFn::new(0, bits);
        let hf = HashFn::new(1 << bits);
        let rhist = histogram_scalar(rf, &keys);
        let hhist = histogram_scalar(hf, &keys);
        let mut cells = vec![bits.to_string()];
        let run = |name: &str, f: &mut dyn FnMut()| {
            let secs = bench(2, f);
            let v = mtps(n, secs);
            record(&Measurement {
                experiment: "fig13",
                series: name,
                x: bits as f64,
                value: v,
                unit: "Mtps",
                backend: backend.name(),
                threads: 1,
            });
            format!("{v:.0}")
        };
        cells.push(run("scalar-unbuffered", &mut || {
            shuffle_scalar_unbuffered(rf, &keys, &pays, &rhist, &mut ok, &mut op);
        }));
        cells.push(run("scalar-buffered", &mut || {
            shuffle_scalar_buffered(rf, &keys, &pays, &rhist, &mut ok, &mut op);
        }));
        cells.push(run("vector-unbuffered", &mut || {
            dispatch!(backend, s => {
                shuffle_vector_unbuffered(s, rf, &keys, &pays, &rhist, &mut ok, &mut op)
            });
        }));
        cells.push(run("vector-buffered", &mut || {
            dispatch!(backend, s => {
                shuffle_vector_buffered(s, rf, &keys, &pays, &rhist, &mut ok, &mut op)
            });
        }));
        cells.push(run("vector-buffered-hash", &mut || {
            dispatch!(backend, s => {
                shuffle_vector_buffered_unstable(s, hf, &keys, &pays, &hhist, &mut ok, &mut op)
            });
        }));
        table.row(cells);
    }
    println!("throughput (million tuples / second):\n");
    table.print();
}
