//! Figure 17: cross-platform comparison — Xeon Phi vs. 4× Sandy Bridge in
//! the paper, reproduced as *backend* comparison on one host (AVX-512
//! standing in for Phi, AVX2 for the narrower mainstream CPUs) with the
//! paper's TDP constants for the power-efficiency ratio.
//!
//! Usage: `cargo run --release -p rsv-bench --bin fig17_cross_platform [--scale X]`

use rsv_bench::{banner, bench, record, Measurement, Scale, Table};
use rsv_join::join_max_partition;
use rsv_simd::{dispatch, Backend};
use rsv_sort::{lsb_radixsort_vector, SortConfig};

fn main() {
    banner(
        "fig17",
        "cross-platform radixsort & hash join (power efficiency)",
        "paper: Phi ~14% slower than 4xSB on both workloads, but ~1.5x \
         more power-efficient (300W vs 520W TDP); here the wide-SIMD \
         backend should beat the narrow one on one fixed host",
    );
    let scale = Scale::from_env();
    let n_sort = scale.tuples(50_000_000, 1 << 16);
    let n_join = scale.tuples(25_000_000, 1 << 14);
    println!("sort {n_sort} tuples, join {n_join}x{n_join}\n");

    let mut rng = rsv_data::rng(1017);
    let keys = rsv_data::uniform_u32(n_sort, &mut rng);
    let pays: Vec<u32> = (0..n_sort as u32).collect();
    let w = rsv_data::join_workload(n_join, n_join, 1.0, 1.0, &mut rng);

    // paper TDP constants for the efficiency discussion
    let paper_tdp = [("avx512", 300.0_f64), ("avx2", 520.0), ("portable", 520.0)];

    let mut table = Table::new(&[
        "backend",
        "sort (s)",
        "join (s)",
        "paper-TDP (W)",
        "rel. energy (sort)",
    ]);
    let mut first_sort = None;
    for b in Backend::all_available() {
        let cfg = SortConfig {
            radix_bits: 8,
            ..SortConfig::default()
        };
        let sort_s = bench(2, || {
            let mut k = keys.clone();
            let mut p = pays.clone();
            dispatch!(b, s => { lsb_radixsort_vector(s, &mut k, &mut p, &cfg) });
        });
        let join_s = bench(2, || {
            let r = dispatch!(b, s => { join_max_partition(s, true, &w.inner, &w.outer, 1) });
            assert_eq!(r.matches(), w.expected_matches);
        });
        record(&Measurement {
            experiment: "fig17",
            series: b.name(),
            x: 0.0,
            value: sort_s,
            unit: "seconds-sort",
            backend: b.name(),
            threads: 1,
        });
        record(&Measurement {
            experiment: "fig17",
            series: b.name(),
            x: 1.0,
            value: join_s,
            unit: "seconds-join",
            backend: b.name(),
            threads: 1,
        });
        let tdp = paper_tdp
            .iter()
            .find(|(n, _)| *n == b.name())
            .map(|t| t.1)
            .unwrap_or(520.0);
        let base = *first_sort.get_or_insert(sort_s * tdp);
        table.row(vec![
            b.name().to_string(),
            format!("{sort_s:.3}"),
            format!("{join_s:.3}"),
            format!("{tdp:.0}"),
            format!("{:.2}x", (sort_s * tdp) / base),
        ]);
    }
    println!("wall time per backend (seconds, lower is better):\n");
    table.print();
    println!("\n(the 'rel. energy' column applies the paper's TDP figures to the");
    println!(" measured runtimes, mirroring its Phi-vs-SandyBridge efficiency claim)");
}
