//! Table 1: experimental platform inventory.
//!
//! The paper lists a Xeon Phi 7120P, a Haswell E3-1275v3 and 4× Sandy
//! Bridge E5-4620. This reproduction runs on one host whose SIMD backends
//! stand in for those platforms; the table reports both the host and the
//! paper's original rows for reference.

use rsv_bench::Table;

fn main() {
    let r = rsv_exec::platform_report();
    println!("=== Table 1: platforms ===\n");

    let mut t = Table::new(&[
        "property",
        "this host",
        "Xeon Phi 7120P",
        "Haswell E3-1275v3",
    ]);
    t.row(vec![
        "role".into(),
        "all backends".into(),
        "paper: Avx512 stand-in".into(),
        "paper: Avx2 stand-in".into(),
    ]);
    t.row(vec![
        "logical cpus".into(),
        r.logical_cpus.to_string(),
        "61 x 4 SMT".into(),
        "4 x 2 SMT".into(),
    ]);
    t.row(vec![
        "model".into(),
        r.model_name.clone().unwrap_or_else(|| "unknown".into()),
        "P54C @ 1.238 GHz".into(),
        "Haswell @ 3.5 GHz".into(),
    ]);
    t.row(vec![
        "simd width".into(),
        format!("{}-bit", r.simd_width_bits()),
        "512-bit".into(),
        "256-bit".into(),
    ]);
    t.row(vec![
        "gather / scatter".into(),
        format!(
            "{} / {}",
            if r.has_avx2 { "yes" } else { "no" },
            if r.has_avx512f { "yes" } else { "no" }
        ),
        "yes / yes".into(),
        "yes / no".into(),
    ]);
    t.row(vec![
        "conflict detect".into(),
        if r.has_avx512cd {
            "yes (vpconflictd)"
        } else {
            "no"
        }
        .into(),
        "no (emulated)".into(),
        "no (emulated)".into(),
    ]);
    t.print();

    println!("\navailable SIMD backends on this host:");
    for b in rsv_simd::Backend::all_available() {
        println!("  - {:<9} ({} x 32-bit lanes)", b.name(), b.lanes());
    }
}
