//! Figure 19: max-partition hash join with varying numbers of 64-bit
//! payload columns on the two sides (R:S column ratios 4:1 .. 1:4).
//!
//! The join itself runs on (key, rid) pairs; the extra payload columns are
//! carried through the partition passes via destination replay and
//! dereferenced on output — the strategy §10.5.3 describes.
//!
//! Usage: `cargo run --release -p rsv-bench --bin fig19_join_payloads [--scale X]`

use rsv_bench::{banner, bench, record, Measurement, Scale, Table};
use rsv_join::join_max_partition;
use rsv_partition::histogram::histogram_scalar;
use rsv_partition::multicol::{apply_destinations_u64, compute_destinations};
use rsv_partition::HashFn;
use rsv_simd::{dispatch, Simd};

/// Partition `cols` alongside a key column (one destination pass + one
/// replay per column) — the per-pass cost Figure 19 adds per payload.
fn partition_with_columns<S: Simd>(
    s: S,
    keys: &[u32],
    cols: &[Vec<u64>],
    fanout: usize,
) -> (Vec<u32>, Vec<Vec<u64>>) {
    let f = HashFn::new(fanout);
    let hist = histogram_scalar(f, keys);
    let mut dest = vec![0u32; keys.len()];
    let mut out_keys = vec![0u32; keys.len()];
    compute_destinations(s, f, keys, &hist, &mut dest, &mut out_keys);
    let out_cols = cols
        .iter()
        .map(|c| {
            let mut out = vec![0u64; c.len()];
            apply_destinations_u64(s, &dest, c, &mut out);
            out
        })
        .collect();
    (out_keys, out_cols)
}

fn main() {
    banner(
        "fig19",
        "hash join with varying 64-bit payload columns (R:S 4:1..1:4)",
        "time grows with the total number of payload columns moved; \
         the side with more columns dominates",
    );
    let scale = Scale::from_env();
    let n_r = scale.tuples(1_250_000, 1 << 12);
    let n_s = scale.tuples(12_500_000, 1 << 14);
    let backend = rsv_bench::backend();
    println!("|R| = {n_r}, |S| = {n_s}, backend: {}\n", backend.name());

    let mut rng = rsv_data::rng(1019);
    let w = rsv_data::join_workload(n_r, n_s, 1.0, 1.0, &mut rng);

    let ratios = [
        (4usize, 1usize),
        (3, 1),
        (2, 1),
        (1, 1),
        (1, 2),
        (1, 3),
        (1, 4),
    ];
    let mut table = Table::new(&["R cols : S cols", "time (s)", "M output/s"]);
    for (rc, sc) in ratios {
        let r_cols: Vec<Vec<u64>> = (0..rc).map(|c| vec![c as u64; n_r]).collect();
        let s_cols: Vec<Vec<u64>> = (0..sc).map(|c| vec![c as u64; n_s]).collect();
        let mut matches = 0usize;
        let secs = bench(2, || {
            dispatch!(backend, s => {
                // carry every payload column through one partitioning pass
                let fanout = (n_r / 2048).clamp(2, 256);
                let (_rk, _rcols) = partition_with_columns(s, &w.inner.keys, &r_cols, fanout);
                let (_sk, _scols) = partition_with_columns(s, &w.outer.keys, &s_cols, fanout);
                // join on (key, rid); wide payloads are dereferenced via the
                // rids in the join output
                let r = join_max_partition(s, true, &w.inner, &w.outer, 1);
                matches = r.matches();
            });
        });
        assert_eq!(matches, w.expected_matches);
        record(&Measurement {
            experiment: "fig19",
            series: &format!("{rc}:{sc}"),
            x: (rc + sc) as f64,
            value: secs,
            unit: "seconds",
            backend: backend.name(),
            threads: 1,
        });
        table.row(vec![
            format!("{rc} : {sc}"),
            format!("{secs:.3}"),
            format!("{:.1}", matches as f64 / secs / 1e6),
        ]);
    }
    println!("join time with payload movement (seconds):\n");
    table.print();
}
