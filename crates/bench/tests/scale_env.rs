//! Regression tests for [`Scale::from_env`]'s rejection of unparsable
//! `--scale` / `RSV_SCALE` values.
//!
//! `Scale::parse` has unit tests in `src/lib.rs`; these cover the
//! process-level contract on top of it — an unparsable or non-positive
//! scale must terminate the experiment with exit code 2 and a diagnostic
//! on stderr, never silently fall back to the default problem size. They
//! drive a real harness binary (`noop_parity`, the cheapest one) as a
//! subprocess so the `eprintln` + `exit(2)` path itself is exercised.

use std::process::{Command, Output};

fn run(scale_env: Option<&str>, args: &[&str]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_noop_parity"));
    // a hermetic environment for the knobs the harness reads
    cmd.env_remove("RSV_SCALE")
        .env_remove("RSV_JSON")
        .env_remove("RSV_METRICS")
        .env_remove("RSV_BACKEND")
        // the success case runs a tiny problem where timing parity is
        // pure noise; this test is about scale parsing, not parity
        .env("RSV_PARITY_TOL", "1000");
    if let Some(v) = scale_env {
        cmd.env("RSV_SCALE", v);
    }
    cmd.args(args).output().expect("spawn harness binary")
}

fn assert_rejected(out: &Output, needle: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "expected exit 2, got {:?}; stderr: {stderr}",
        out.status
    );
    assert!(
        stderr.contains("error:") && stderr.contains(needle),
        "stderr missing `{needle}`: {stderr}"
    );
}

#[test]
fn unparsable_rsv_scale_is_a_hard_error() {
    let out = run(Some("fast"), &[]);
    assert_rejected(&out, "RSV_SCALE value `fast` is not a number");
}

#[test]
fn unparsable_scale_flag_is_a_hard_error() {
    let out = run(None, &["--scale", "huge"]);
    assert_rejected(&out, "--scale value `huge` is not a number");
}

#[test]
fn missing_scale_value_is_a_hard_error() {
    let out = run(None, &["--scale"]);
    assert_rejected(&out, "--scale requires a value");
}

#[test]
fn non_positive_and_non_finite_scales_are_rejected() {
    assert_rejected(&run(None, &["--scale", "0"]), "positive finite");
    assert_rejected(&run(Some("-1"), &[]), "positive finite");
    assert_rejected(&run(None, &["--scale", "inf"]), "positive finite");
}

/// A bad environment value is rejected even when a valid `--scale`
/// follows: silently preferring one knob over a corrupt other would hide
/// configuration mistakes.
#[test]
fn bad_env_is_rejected_even_with_valid_flag() {
    let out = run(Some("bogus"), &["--scale", "0.5"]);
    assert_rejected(&out, "RSV_SCALE value `bogus` is not a number");
}

/// Control: a valid tiny scale runs the binary to completion (exit 0),
/// proving the rejection tests fail for the right reason.
#[test]
fn valid_scale_runs_to_completion() {
    let out = run(None, &["--scale", "0.01"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("parity OK"), "stdout: {stdout}");
}
