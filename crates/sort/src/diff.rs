//! Differential-harness registration for LSB radixsort.
//!
//! The full 32-bit LSB radixsort yields one canonical answer — keys
//! ascending, equal keys in input (stable) order — for *every* radix
//! width, thread count, and backend, so the encoding is simply the
//! ordered output columns.

use crate::{lsb_radixsort_scalar, lsb_radixsort_vector, SortConfig};
use rsv_simd::{dispatch, Backend};
use rsv_testkit::diff::{ordered_pairs, CaseInput, DiffOp, Kernel, Registry};
use rsv_testkit::Rng;

/// A case-seeded radix width; the sorted output must not depend on it.
fn radix_bits(input: &CaseInput) -> u32 {
    let mut rng = Rng::seed_from_u64(input.seed ^ 0x534F_5254);
    [1u32, 4, 5, 8, 11, 16][rng.index(6)]
}

fn reference(input: &CaseInput) -> Vec<u8> {
    let mut keys = input.keys.clone();
    let mut pays = input.pays.clone();
    let cfg = SortConfig {
        radix_bits: 8,
        threads: 1,
        ..SortConfig::default()
    };
    lsb_radixsort_scalar(&mut keys, &mut pays, &cfg);
    ordered_pairs(&keys, &pays)
}

fn run_scalar(_backend: Backend, threads: usize, input: &CaseInput) -> Vec<u8> {
    let mut keys = input.keys.clone();
    let mut pays = input.pays.clone();
    let cfg = SortConfig {
        radix_bits: radix_bits(input),
        threads,
        ..SortConfig::default()
    };
    lsb_radixsort_scalar(&mut keys, &mut pays, &cfg);
    ordered_pairs(&keys, &pays)
}

fn run_vector(backend: Backend, threads: usize, input: &CaseInput) -> Vec<u8> {
    let mut keys = input.keys.clone();
    let mut pays = input.pays.clone();
    let cfg = SortConfig {
        radix_bits: radix_bits(input),
        threads,
        ..SortConfig::default()
    };
    dispatch!(backend, s => { lsb_radixsort_vector(s, &mut keys, &mut pays, &cfg) });
    ordered_pairs(&keys, &pays)
}

/// Register the radixsort operator.
pub fn register(r: &mut Registry) {
    r.register(DiffOp {
        name: "sort-radix",
        reference,
        kernels: vec![
            Kernel {
                name: "scalar-parallel",
                threaded: true,
                run: run_scalar,
            },
            Kernel {
                name: "vector-parallel",
                threaded: true,
                run: run_vector,
            },
        ],
    });
}
