//! LSB radixsort (paper Section 8).
//!
//! "Large-scale sorting is synonymous to partitioning": least-significant-
//! bit radixsort is a sequence of *stable* partitioning passes over the
//! radix of each key, and the paper's fastest method for 32-bit keys. Each
//! pass runs histogram generation and buffered shuffling — shared-nothing
//! across threads, interleaving the partition outputs through a global
//! prefix sum over all threads' histograms.
//!
//! * [`lsb_radixsort_scalar`] / [`lsb_radixsort_vector`] — key + one
//!   payload column (the Figure 14 workload), any thread count,
//! * [`lsb_radixsort_keys_scalar`] / [`lsb_radixsort_keys_vector`] —
//!   key-only sorting,
//! * [`multicol::lsb_radixsort_multicol`] — key + arbitrary payload
//!   columns of mixed widths via destination replay (Figure 18).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod multicol;

use rsv_exec::{chunk_ranges, parallel_scope, AlignedVec, SharedBuffer};
use rsv_partition::histogram::{histogram_scalar, histogram_vector_replicated};
use rsv_partition::shuffle::{
    scalar_slots, shuffle_buffer_cleanup, shuffle_scalar_buffered_core,
    shuffle_vector_buffered_core,
};
use rsv_partition::{PartitionFn, RadixFn};
use rsv_simd::Simd;

/// Radixsort tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct SortConfig {
    /// Radix bits per pass (the paper's optimal fanout is 5–8 bits).
    pub radix_bits: u32,
    /// Worker threads.
    pub threads: usize,
}

impl Default for SortConfig {
    fn default() -> Self {
        SortConfig {
            radix_bits: 8,
            threads: 1,
        }
    }
}

impl SortConfig {
    fn passes(&self) -> u32 {
        assert!(
            self.radix_bits >= 1 && self.radix_bits <= 16,
            "radix bits must be in 1..=16"
        );
        assert!(self.threads >= 1, "need at least one thread");
        32u32.div_ceil(self.radix_bits)
    }

    fn pass_fn(&self, pass: u32) -> RadixFn {
        let shift = pass * self.radix_bits;
        RadixFn::new(shift, self.radix_bits.min(32 - shift))
    }
}

/// Per-thread partition start offsets from the interleaved prefix sum of
/// all threads' histograms: partitions are laid out contiguously, and
/// within a partition, thread regions follow thread order (which is what
/// keeps the parallel sort stable).
fn interleaved_offsets(hists: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let t = hists.len();
    let p = hists[0].len();
    let mut offsets = vec![vec![0u32; p]; t];
    let mut acc = 0u32;
    for part in 0..p {
        for (tid, hist) in hists.iter().enumerate() {
            offsets[tid][part] = acc;
            acc += hist[part];
        }
    }
    offsets
}

/// One parallel, stable partitioning pass of key/payload pairs.
#[allow(clippy::too_many_arguments)]
fn pass_pairs<S: Simd>(
    s: S,
    vectorized: bool,
    f: RadixFn,
    src_k: &[u32],
    src_p: &[u32],
    dst_k: &mut Vec<u32>,
    dst_p: &mut Vec<u32>,
    threads: usize,
) {
    let n = src_k.len();
    let ranges = chunk_ranges(n, threads, S::LANES);
    let hists: Vec<Vec<u32>> = parallel_scope(threads, |ctx| {
        let r = ranges[ctx.thread_id].clone();
        if vectorized {
            histogram_vector_replicated(s, f, &src_k[r])
        } else {
            histogram_scalar(f, &src_k[r])
        }
    });
    let bases = interleaved_offsets(&hists);

    let out_k = SharedBuffer::from_vec(std::mem::take(dst_k));
    let out_p = SharedBuffer::from_vec(std::mem::take(dst_p));
    parallel_scope(threads, |ctx| {
        let t = ctx.thread_id;
        let r = ranges[t].clone();
        // SAFETY: threads write disjoint output regions derived from the
        // interleaved prefix sums; the transiently clobbered head lines are
        // repaired by their owners' cleanup, which runs after the barrier.
        let (ok, op) = unsafe { (out_k.view_mut(), out_p.view_mut()) };
        let mut off = bases[t].clone();
        if vectorized {
            let mut buf: AlignedVec<u64> = AlignedVec::zeroed(f.fanout() * S::LANES);
            shuffle_vector_buffered_core(
                s,
                f,
                &src_k[r.clone()],
                &src_p[r],
                &mut off,
                &mut buf,
                ok,
                op,
                true,
            );
            ctx.barrier();
            shuffle_buffer_cleanup(S::LANES, &buf, &bases[t], &off, ok, op);
        } else {
            let mut buf: AlignedVec<u64> = AlignedVec::zeroed(f.fanout() * scalar_slots());
            shuffle_scalar_buffered_core(
                f,
                &src_k[r.clone()],
                &src_p[r],
                &mut off,
                &mut buf,
                ok,
                op,
            );
            ctx.barrier();
            shuffle_buffer_cleanup(scalar_slots(), &buf, &bases[t], &off, ok, op);
        }
    });
    *dst_k = out_k.into_vec();
    *dst_p = out_p.into_vec();
}

fn radixsort_pairs<S: Simd>(
    s: S,
    vectorized: bool,
    keys: &mut Vec<u32>,
    pays: &mut Vec<u32>,
    cfg: &SortConfig,
) {
    assert_eq!(keys.len(), pays.len(), "column length mismatch");
    let n = keys.len();
    let mut src_k = std::mem::take(keys);
    let mut src_p = std::mem::take(pays);
    let mut dst_k = vec![0u32; n];
    let mut dst_p = vec![0u32; n];
    for pass in 0..cfg.passes() {
        let f = cfg.pass_fn(pass);
        pass_pairs(
            s,
            vectorized,
            f,
            &src_k,
            &src_p,
            &mut dst_k,
            &mut dst_p,
            cfg.threads,
        );
        std::mem::swap(&mut src_k, &mut dst_k);
        std::mem::swap(&mut src_p, &mut dst_p);
    }
    *keys = src_k;
    *pays = src_p;
}

/// Scalar parallel LSB radixsort of `(key, payload)` pairs (stable).
pub fn lsb_radixsort_scalar(keys: &mut Vec<u32>, pays: &mut Vec<u32>, cfg: &SortConfig) {
    radixsort_pairs(rsv_simd::Portable::<16>::new(), false, keys, pays, cfg);
}

/// Vectorized parallel LSB radixsort of `(key, payload)` pairs (stable).
pub fn lsb_radixsort_vector<S: Simd>(
    s: S,
    keys: &mut Vec<u32>,
    pays: &mut Vec<u32>,
    cfg: &SortConfig,
) {
    radixsort_pairs(s, true, keys, pays, cfg);
}

/// One parallel stable partitioning pass of a key column only.
fn pass_keys<S: Simd>(
    s: S,
    vectorized: bool,
    f: RadixFn,
    src_k: &[u32],
    dst_k: &mut Vec<u32>,
    threads: usize,
) {
    let n = src_k.len();
    let ranges = chunk_ranges(n, threads, S::LANES);
    let hists: Vec<Vec<u32>> = parallel_scope(threads, |ctx| {
        let r = ranges[ctx.thread_id].clone();
        if vectorized {
            histogram_vector_replicated(s, f, &src_k[r])
        } else {
            histogram_scalar(f, &src_k[r])
        }
    });
    let bases = interleaved_offsets(&hists);

    let out_k = SharedBuffer::from_vec(std::mem::take(dst_k));
    parallel_scope(threads, |ctx| {
        let t = ctx.thread_id;
        let r = ranges[t].clone();
        // SAFETY: as in `pass_pairs`: disjoint regions + barrier-ordered
        // cleanup repair.
        let ok = unsafe { out_k.view_mut() };
        let mut off = bases[t].clone();
        let slots = if vectorized { S::LANES } else { scalar_slots() };
        let mut buf = vec![0u32; f.fanout() * slots];
        keys_buffered_core(s, vectorized, f, &src_k[r], &mut off, &mut buf, ok);
        ctx.barrier();
        keys_buffer_cleanup(slots, &buf, &bases[t], &off, ok);
    });
    *dst_k = out_k.into_vec();
}

#[allow(clippy::too_many_arguments)]
fn keys_buffered_core<S: Simd>(
    s: S,
    vectorized: bool,
    f: RadixFn,
    keys: &[u32],
    off: &mut [u32],
    buf: &mut [u32],
    out: &mut [u32],
) {
    let w = S::LANES;
    let slots = if vectorized { w } else { scalar_slots() };
    assert_eq!(
        buf.len(),
        f.fanout() * slots,
        "staging buffer size mismatch"
    );
    if vectorized {
        s.vectorize(
            #[inline(always)]
            || {
                use rsv_partition::conflict::serialize_conflicts_native;
                use rsv_simd::MaskLike;
                let one = s.splat(1);
                let wv = s.splat(w as u32);
                let wm1 = s.splat(w as u32 - 1);
                let mut flush_parts = [0u32; 32];
                let mut i = 0usize;
                while i + w <= keys.len() {
                    let k = s.load(&keys[i..]);
                    let h = f.partition_vector(s, k);
                    let c = serialize_conflicts_native(s, h);
                    let o = s.gather(off, h);
                    let pos = s.add(o, c);
                    s.scatter(off, h, s.add(pos, one));
                    let ob = s.add(s.and(o, wm1), c);
                    let slot = s.add(s.mullo(h, wv), ob);
                    let store_now = s.cmplt(ob, wv);
                    s.scatter_masked(buf, store_now, slot, k);
                    let trigger = s.cmpeq(ob, wm1);
                    if trigger.any() {
                        let nf = s.selective_store(&mut flush_parts[..], trigger, h);
                        for &p in &flush_parts[..nf] {
                            let p = p as usize;
                            let target = (off[p] as usize & !(w - 1)) - w;
                            let line = s.load(&buf[p * w..]);
                            s.store_stream(line, &mut out[target..]);
                        }
                        let late = s.cmpge(ob, wv);
                        let slot2 = s.add(s.mullo(h, wv), s.sub(ob, wv));
                        s.scatter_masked(buf, late, slot2, k);
                    }
                    i += w;
                }
                for &kk in &keys[i..] {
                    keys_scalar_step(f, kk, off, buf, out, w);
                }
            },
        );
    } else {
        for &kk in keys {
            keys_scalar_step(f, kk, off, buf, out, slots);
        }
    }
}

#[inline(always)]
fn keys_scalar_step(
    f: RadixFn,
    k: u32,
    off: &mut [u32],
    buf: &mut [u32],
    out: &mut [u32],
    slots: usize,
) {
    let p = f.partition(k);
    let o = off[p] as usize;
    let slot = o & (slots - 1);
    buf[p * slots + slot] = k;
    off[p] = (o + 1) as u32;
    if slot == slots - 1 {
        let target = o + 1 - slots;
        out[target..target + slots].copy_from_slice(&buf[p * slots..p * slots + slots]);
    }
}

fn keys_buffer_cleanup(slots: usize, buf: &[u32], base: &[u32], off: &[u32], out: &mut [u32]) {
    for p in 0..base.len() {
        let start = (off[p] as usize & !(slots - 1)).max(base[p] as usize);
        for q in start..off[p] as usize {
            out[q] = buf[p * slots + (q & (slots - 1))];
        }
    }
}

fn radixsort_keys<S: Simd>(s: S, vectorized: bool, keys: &mut Vec<u32>, cfg: &SortConfig) {
    let n = keys.len();
    let mut src = std::mem::take(keys);
    let mut dst = vec![0u32; n];
    for pass in 0..cfg.passes() {
        let f = cfg.pass_fn(pass);
        pass_keys(s, vectorized, f, &src, &mut dst, cfg.threads);
        std::mem::swap(&mut src, &mut dst);
    }
    *keys = src;
}

/// Scalar parallel LSB radixsort of a key column.
pub fn lsb_radixsort_keys_scalar(keys: &mut Vec<u32>, cfg: &SortConfig) {
    radixsort_keys(rsv_simd::Portable::<16>::new(), false, keys, cfg);
}

/// Vectorized parallel LSB radixsort of a key column.
pub fn lsb_radixsort_keys_vector<S: Simd>(s: S, keys: &mut Vec<u32>, cfg: &SortConfig) {
    radixsort_keys(s, true, keys, cfg);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsv_simd::Portable;

    fn workload(n: usize, seed: u64) -> (Vec<u32>, Vec<u32>) {
        let mut rng = rsv_data::rng(seed);
        let keys = rsv_data::uniform_u32(n, &mut rng);
        let pays: Vec<u32> = (0..n as u32).collect();
        (keys, pays)
    }

    fn check_sorted_pairs(keys: &[u32], pays: &[u32], orig_keys: &[u32]) {
        assert!(keys.windows(2).all(|w| w[0] <= w[1]), "keys not sorted");
        // payload i must carry the original tuple (stability: equal keys
        // keep original payload order)
        for (i, (&k, &p)) in keys.iter().zip(pays).enumerate() {
            assert_eq!(orig_keys[p as usize], k, "tuple broken at {i}");
        }
        for w in keys.windows(2).zip(pays.windows(2)) {
            if w.0[0] == w.0[1] {
                assert!(w.1[0] < w.1[1], "not stable");
            }
        }
    }

    #[test]
    fn scalar_sort_matches_std() {
        for n in [0usize, 1, 100, 10_000] {
            let (keys, pays) = workload(n, 111);
            let mut k = keys.clone();
            let mut p = pays.clone();
            lsb_radixsort_scalar(&mut k, &mut p, &SortConfig::default());
            check_sorted_pairs(&k, &p, &keys);
        }
    }

    #[test]
    fn vector_sort_matches_std() {
        let s = Portable::<16>::new();
        for n in [0usize, 1, 17, 1000, 20_000] {
            let (keys, pays) = workload(n, 112);
            let mut k = keys.clone();
            let mut p = pays.clone();
            lsb_radixsort_vector(s, &mut k, &mut p, &SortConfig::default());
            check_sorted_pairs(&k, &p, &keys);
        }
    }

    #[test]
    fn different_radix_bits() {
        let s = Portable::<16>::new();
        let (keys, pays) = workload(5000, 113);
        for bits in [4u32, 5, 6, 8, 11, 16] {
            let mut k = keys.clone();
            let mut p = pays.clone();
            lsb_radixsort_vector(
                s,
                &mut k,
                &mut p,
                &SortConfig {
                    radix_bits: bits,
                    threads: 1,
                },
            );
            check_sorted_pairs(&k, &p, &keys);
        }
    }

    #[test]
    fn multithreaded_sort_is_stable() {
        let s = Portable::<16>::new();
        // narrow key domain -> many duplicates to stress stability
        let mut rng = rsv_data::rng(114);
        let keys: Vec<u32> = rsv_data::uniform_u32(30_000, &mut rng)
            .iter()
            .map(|k| k % 64)
            .collect();
        let pays: Vec<u32> = (0..30_000).collect();
        for threads in [1usize, 2, 3, 4] {
            let mut k = keys.clone();
            let mut p = pays.clone();
            lsb_radixsort_vector(
                s,
                &mut k,
                &mut p,
                &SortConfig {
                    radix_bits: 8,
                    threads,
                },
            );
            check_sorted_pairs(&k, &p, &keys);
            let mut ks = keys.clone();
            let mut ps = pays.clone();
            lsb_radixsort_scalar(
                &mut ks,
                &mut ps,
                &SortConfig {
                    radix_bits: 8,
                    threads,
                },
            );
            check_sorted_pairs(&ks, &ps, &keys);
        }
    }

    #[test]
    fn key_only_sort() {
        let s = Portable::<16>::new();
        for threads in [1usize, 3] {
            for n in [0usize, 1, 31, 12_345] {
                let (keys, _) = workload(n, 115);
                let mut expected = keys.clone();
                expected.sort_unstable();
                let mut k = keys.clone();
                lsb_radixsort_keys_vector(
                    s,
                    &mut k,
                    &SortConfig {
                        radix_bits: 8,
                        threads,
                    },
                );
                assert_eq!(k, expected, "vector n={n} threads={threads}");
                let mut k = keys.clone();
                lsb_radixsort_keys_scalar(
                    &mut k,
                    &SortConfig {
                        radix_bits: 8,
                        threads,
                    },
                );
                assert_eq!(k, expected, "scalar n={n} threads={threads}");
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn accelerated_backends_sort() {
        let (keys, pays) = workload(50_000, 116);
        if let Some(s) = rsv_simd::Avx512::new() {
            let mut k = keys.clone();
            let mut p = pays.clone();
            lsb_radixsort_vector(
                s,
                &mut k,
                &mut p,
                &SortConfig {
                    radix_bits: 8,
                    threads: 2,
                },
            );
            check_sorted_pairs(&k, &p, &keys);
        }
        if let Some(s) = rsv_simd::Avx2::new() {
            let mut k = keys.clone();
            let mut p = pays.clone();
            lsb_radixsort_vector(
                s,
                &mut k,
                &mut p,
                &SortConfig {
                    radix_bits: 8,
                    threads: 2,
                },
            );
            check_sorted_pairs(&k, &p, &keys);
        }
    }
}
