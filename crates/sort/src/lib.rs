//! LSB radixsort (paper Section 8).
//!
//! "Large-scale sorting is synonymous to partitioning": least-significant-
//! bit radixsort is a sequence of *stable* partitioning passes over the
//! radix of each key, and the paper's fastest method for 32-bit keys. Each
//! pass runs histogram generation and buffered shuffling — shared-nothing
//! across morsels claimed from a work-stealing queue (see
//! [`rsv_exec::MorselQueue`]), interleaving the partition outputs through
//! a global prefix sum over all morsels' histograms. Because every pass is
//! stable and keyed by morsel input order, the sorted output is
//! byte-identical for any thread count and morsel size.
//!
//! * [`lsb_radixsort_scalar`] / [`lsb_radixsort_vector`] — key + one
//!   payload column (the Figure 14 workload), any thread count,
//! * [`lsb_radixsort_keys_scalar`] / [`lsb_radixsort_keys_vector`] —
//!   key-only sorting,
//! * [`multicol::lsb_radixsort_multicol`] — key + arbitrary payload
//!   columns of mixed widths via destination replay (Figure 18).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod diff;
pub mod multicol;

use rsv_exec::{
    expect_infallible, parallel_scope_stats, EngineError, ExecPolicy, MorselQueue, RunContext,
    SchedulerStats, SharedBuffer, SlotMap, DEFAULT_MORSEL_TUPLES,
};
use rsv_partition::histogram::{histogram_scalar, histogram_vector_replicated};
use rsv_partition::parallel::{interleaved_offsets, partition_pass_policy_try};
use rsv_partition::shuffle::scalar_slots;
use rsv_partition::{PartitionFn, RadixFn};
use rsv_simd::Simd;

/// Radixsort tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct SortConfig {
    /// Radix bits per pass (the paper's optimal fanout is 5–8 bits).
    pub radix_bits: u32,
    /// Worker threads.
    pub threads: usize,
    /// Tuples per scheduling morsel (`usize::MAX` = the paper's static
    /// equal split). Does not affect the sorted output.
    pub morsel_tuples: usize,
}

impl Default for SortConfig {
    fn default() -> Self {
        SortConfig {
            radix_bits: 8,
            threads: 1,
            morsel_tuples: DEFAULT_MORSEL_TUPLES,
        }
    }
}

impl SortConfig {
    fn passes(&self) -> u32 {
        assert!(
            self.radix_bits >= 1 && self.radix_bits <= 16,
            "radix bits must be in 1..=16"
        );
        assert!(self.threads >= 1, "need at least one thread");
        32u32.div_ceil(self.radix_bits)
    }

    fn pass_fn(&self, pass: u32) -> RadixFn {
        let shift = pass * self.radix_bits;
        RadixFn::new(shift, self.radix_bits.min(32 - shift))
    }

    fn policy(&self) -> ExecPolicy {
        ExecPolicy::new(self.threads).with_morsel_tuples(self.morsel_tuples)
    }
}

fn radixsort_pairs<S: Simd>(
    s: S,
    vectorized: bool,
    keys: &mut Vec<u32>,
    pays: &mut Vec<u32>,
    cfg: &SortConfig,
) -> SchedulerStats {
    expect_infallible(radixsort_pairs_try(
        s,
        vectorized,
        keys,
        pays,
        cfg,
        &RunContext::default(),
    ))
}

/// Fallible radixsort of `(key, payload)` pairs under a [`RunContext`]:
/// cancellation is observed at morsel-claim boundaries of every pass,
/// worker panics surface as [`EngineError::WorkerPanicked`], and the
/// ping-pong scratch columns are gated by the run's memory budget. On
/// error the columns keep their length but hold unspecified tuple order.
pub fn radixsort_pairs_try<S: Simd>(
    s: S,
    vectorized: bool,
    keys: &mut Vec<u32>,
    pays: &mut Vec<u32>,
    cfg: &SortConfig,
    run: &RunContext,
) -> Result<SchedulerStats, EngineError> {
    assert_eq!(keys.len(), pays.len(), "column length mismatch");
    let n = keys.len();
    let policy = cfg.policy().with_run(run.clone());
    let scratch_bytes = 2 * (n as u64) * std::mem::size_of::<u32>() as u64;
    run.reserve(scratch_bytes)?;
    let mut stats = SchedulerStats::default();
    let mut src_k = std::mem::take(keys);
    let mut src_p = std::mem::take(pays);
    let mut dst_k = vec![0u32; n];
    let mut dst_p = vec![0u32; n];
    let mut result = Ok(());
    for pass in 0..cfg.passes() {
        let f = cfg.pass_fn(pass);
        rsv_metrics::count(rsv_metrics::Metric::SortPasses, 1);
        rsv_metrics::count(rsv_metrics::Metric::SortBytesMoved, 8 * n as u64);
        match partition_pass_policy_try(
            s, vectorized, f, &src_k, &src_p, &mut dst_k, &mut dst_p, &policy,
        ) {
            Ok((_, pass_stats)) => stats.merge(&pass_stats),
            Err(e) => {
                result = Err(e);
                break;
            }
        }
        std::mem::swap(&mut src_k, &mut dst_k);
        std::mem::swap(&mut src_p, &mut dst_p);
    }
    // Always hand columns back (possibly partially sorted on error) so the
    // caller's relation keeps its tuples.
    *keys = src_k;
    *pays = src_p;
    drop(dst_k);
    drop(dst_p);
    run.budget.release(scratch_bytes);
    result.map(|()| stats)
}

/// Scalar parallel LSB radixsort of `(key, payload)` pairs (stable).
pub fn lsb_radixsort_scalar(keys: &mut Vec<u32>, pays: &mut Vec<u32>, cfg: &SortConfig) {
    radixsort_pairs(rsv_simd::Portable::<16>::new(), false, keys, pays, cfg);
}

/// Vectorized parallel LSB radixsort of `(key, payload)` pairs (stable).
pub fn lsb_radixsort_vector<S: Simd>(
    s: S,
    keys: &mut Vec<u32>,
    pays: &mut Vec<u32>,
    cfg: &SortConfig,
) {
    radixsort_pairs(s, true, keys, pays, cfg);
}

/// [`lsb_radixsort_vector`], returning per-worker scheduler stats
/// accumulated over every radix pass.
pub fn lsb_radixsort_vector_stats<S: Simd>(
    s: S,
    keys: &mut Vec<u32>,
    pays: &mut Vec<u32>,
    cfg: &SortConfig,
) -> SchedulerStats {
    radixsort_pairs(s, true, keys, pays, cfg)
}

/// One parallel stable partitioning pass of a key column only, morselized
/// exactly like [`rsv_partition::parallel::partition_pass_policy`]: per-
/// morsel histograms and staging buffers keyed by morsel id, interleaved
/// offsets in morsel (= input) order, and a barrier before the per-morsel
/// cleanup tasks.
fn pass_keys<S: Simd>(
    s: S,
    vectorized: bool,
    f: RadixFn,
    src_k: &[u32],
    dst_k: &mut Vec<u32>,
    policy: &ExecPolicy,
) -> SchedulerStats {
    let n = src_k.len();
    let t = policy.threads;

    let hist_q = MorselQueue::new(n, policy, S::LANES);
    let m = hist_q.morsel_count();
    let hist_slots: SlotMap<Vec<u32>> = SlotMap::new(m);
    let (_, mut stats) = parallel_scope_stats(t, |ctx| {
        for mo in ctx.morsels(&hist_q) {
            let h = ctx.phase("histogram", || {
                let ks = &src_k[mo.range.clone()];
                if vectorized {
                    histogram_vector_replicated(s, f, ks)
                } else {
                    histogram_scalar(f, ks)
                }
            });
            // SAFETY: each morsel id is claimed exactly once.
            unsafe { hist_slots.put(mo.id, h) };
        }
    });
    let mut hists: Vec<Vec<u32>> = hist_slots
        .into_values()
        .into_iter()
        .map(|h| h.expect("every morsel histogrammed"))
        .collect();
    if hists.is_empty() {
        // empty input: zero morsels, but the offsets below need one region
        hists.push(vec![0u32; f.fanout()]);
    }
    let bases = interleaved_offsets(&hists);

    let shuffle_q = MorselQueue::new(n, policy, S::LANES);
    let cleanup_q = MorselQueue::tasks(m, t);
    let staged: SlotMap<(Vec<u32>, Vec<u32>)> = SlotMap::new(m);
    let slots = if vectorized { S::LANES } else { scalar_slots() };
    let out_k = SharedBuffer::from_vec(std::mem::take(dst_k));
    let (_, shuffle_stats) = parallel_scope_stats(t, |ctx| {
        // SAFETY: morsels write disjoint regions from the interleaved
        // prefix sums; transiently clobbered first lines are repaired by
        // their owning morsels' cleanup after the barrier (see the safety
        // note on `partition_pass_policy`).
        let ok = unsafe { out_k.view_mut() };
        for mo in ctx.morsels(&shuffle_q) {
            ctx.phase("shuffle", || {
                let mut off = bases[mo.id].clone();
                let mut buf = vec![0u32; f.fanout() * slots];
                keys_buffered_core(
                    s,
                    vectorized,
                    f,
                    &src_k[mo.range.clone()],
                    &mut off,
                    &mut buf,
                    ok,
                );
                // SAFETY: one writer per morsel id, read after the barrier.
                unsafe { staged.put(mo.id, (buf, off)) };
            });
        }
        ctx.barrier();
        for task in ctx.morsels(&cleanup_q) {
            ctx.phase("cleanup", || {
                // SAFETY: all writers crossed the barrier above.
                let (buf, off) = unsafe { staged.get(task.id) };
                keys_buffer_cleanup(slots, buf, &bases[task.id], off, ok);
            });
        }
    });
    stats.merge(&shuffle_stats);
    *dst_k = out_k.into_vec();
    stats
}

#[allow(clippy::too_many_arguments)]
fn keys_buffered_core<S: Simd>(
    s: S,
    vectorized: bool,
    f: RadixFn,
    keys: &[u32],
    off: &mut [u32],
    buf: &mut [u32],
    out: &mut [u32],
) {
    let w = S::LANES;
    let slots = if vectorized { w } else { scalar_slots() };
    assert_eq!(
        buf.len(),
        f.fanout() * slots,
        "staging buffer size mismatch"
    );
    if vectorized {
        s.vectorize(
            #[inline(always)]
            || {
                use rsv_partition::conflict::serialize_conflicts_native;
                use rsv_simd::MaskLike;
                let one = s.splat(1);
                let wv = s.splat(w as u32);
                let wm1 = s.splat(w as u32 - 1);
                let mut flush_parts = [0u32; 32];
                let mut i = 0usize;
                while i + w <= keys.len() {
                    let k = s.load(&keys[i..]);
                    let h = f.partition_vector(s, k);
                    let c = serialize_conflicts_native(s, h);
                    let o = s.gather(off, h);
                    let pos = s.add(o, c);
                    s.scatter(off, h, s.add(pos, one));
                    let ob = s.add(s.and(o, wm1), c);
                    let slot = s.add(s.mullo(h, wv), ob);
                    let store_now = s.cmplt(ob, wv);
                    s.scatter_masked(buf, store_now, slot, k);
                    let trigger = s.cmpeq(ob, wm1);
                    if trigger.any() {
                        let nf = s.selective_store(&mut flush_parts[..], trigger, h);
                        for &p in &flush_parts[..nf] {
                            let p = p as usize;
                            let target = (off[p] as usize & !(w - 1)) - w;
                            let line = s.load(&buf[p * w..]);
                            s.store_stream(line, &mut out[target..]);
                        }
                        let late = s.cmpge(ob, wv);
                        let slot2 = s.add(s.mullo(h, wv), s.sub(ob, wv));
                        s.scatter_masked(buf, late, slot2, k);
                    }
                    i += w;
                }
                for &kk in &keys[i..] {
                    keys_scalar_step(f, kk, off, buf, out, w);
                }
            },
        );
    } else {
        for &kk in keys {
            keys_scalar_step(f, kk, off, buf, out, slots);
        }
    }
}

#[inline(always)]
fn keys_scalar_step(
    f: RadixFn,
    k: u32,
    off: &mut [u32],
    buf: &mut [u32],
    out: &mut [u32],
    slots: usize,
) {
    let p = f.partition(k);
    let o = off[p] as usize;
    let slot = o & (slots - 1);
    buf[p * slots + slot] = k;
    off[p] = (o + 1) as u32;
    if slot == slots - 1 {
        let target = o + 1 - slots;
        out[target..target + slots].copy_from_slice(&buf[p * slots..p * slots + slots]);
    }
}

fn keys_buffer_cleanup(slots: usize, buf: &[u32], base: &[u32], off: &[u32], out: &mut [u32]) {
    for p in 0..base.len() {
        let start = (off[p] as usize & !(slots - 1)).max(base[p] as usize);
        for q in start..off[p] as usize {
            out[q] = buf[p * slots + (q & (slots - 1))];
        }
    }
}

fn radixsort_keys<S: Simd>(
    s: S,
    vectorized: bool,
    keys: &mut Vec<u32>,
    cfg: &SortConfig,
) -> SchedulerStats {
    let n = keys.len();
    let policy = cfg.policy();
    let mut stats = SchedulerStats::default();
    let mut src = std::mem::take(keys);
    let mut dst = vec![0u32; n];
    for pass in 0..cfg.passes() {
        let f = cfg.pass_fn(pass);
        rsv_metrics::count(rsv_metrics::Metric::SortPasses, 1);
        rsv_metrics::count(rsv_metrics::Metric::SortBytesMoved, 4 * n as u64);
        stats.merge(&pass_keys(s, vectorized, f, &src, &mut dst, &policy));
        std::mem::swap(&mut src, &mut dst);
    }
    *keys = src;
    stats
}

/// Scalar parallel LSB radixsort of a key column.
pub fn lsb_radixsort_keys_scalar(keys: &mut Vec<u32>, cfg: &SortConfig) {
    radixsort_keys(rsv_simd::Portable::<16>::new(), false, keys, cfg);
}

/// Vectorized parallel LSB radixsort of a key column.
pub fn lsb_radixsort_keys_vector<S: Simd>(s: S, keys: &mut Vec<u32>, cfg: &SortConfig) {
    radixsort_keys(s, true, keys, cfg);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsv_simd::Portable;

    fn workload(n: usize, seed: u64) -> (Vec<u32>, Vec<u32>) {
        let mut rng = rsv_data::rng(seed);
        let keys = rsv_data::uniform_u32(n, &mut rng);
        let pays: Vec<u32> = (0..n as u32).collect();
        (keys, pays)
    }

    fn check_sorted_pairs(keys: &[u32], pays: &[u32], orig_keys: &[u32]) {
        assert!(keys.windows(2).all(|w| w[0] <= w[1]), "keys not sorted");
        // payload i must carry the original tuple (stability: equal keys
        // keep original payload order)
        for (i, (&k, &p)) in keys.iter().zip(pays).enumerate() {
            assert_eq!(orig_keys[p as usize], k, "tuple broken at {i}");
        }
        for w in keys.windows(2).zip(pays.windows(2)) {
            if w.0[0] == w.0[1] {
                assert!(w.1[0] < w.1[1], "not stable");
            }
        }
    }

    #[test]
    fn scalar_sort_matches_std() {
        for n in [0usize, 1, 100, 10_000] {
            let (keys, pays) = workload(n, 111);
            let mut k = keys.clone();
            let mut p = pays.clone();
            lsb_radixsort_scalar(&mut k, &mut p, &SortConfig::default());
            check_sorted_pairs(&k, &p, &keys);
        }
    }

    #[test]
    fn vector_sort_matches_std() {
        let s = Portable::<16>::new();
        for n in [0usize, 1, 17, 1000, 20_000] {
            let (keys, pays) = workload(n, 112);
            let mut k = keys.clone();
            let mut p = pays.clone();
            lsb_radixsort_vector(s, &mut k, &mut p, &SortConfig::default());
            check_sorted_pairs(&k, &p, &keys);
        }
    }

    #[test]
    fn different_radix_bits() {
        let s = Portable::<16>::new();
        let (keys, pays) = workload(5000, 113);
        for bits in [4u32, 5, 6, 8, 11, 16] {
            let mut k = keys.clone();
            let mut p = pays.clone();
            lsb_radixsort_vector(
                s,
                &mut k,
                &mut p,
                &SortConfig {
                    radix_bits: bits,
                    ..SortConfig::default()
                },
            );
            check_sorted_pairs(&k, &p, &keys);
        }
    }

    #[test]
    fn multithreaded_sort_is_stable() {
        let s = Portable::<16>::new();
        // narrow key domain -> many duplicates to stress stability
        let mut rng = rsv_data::rng(114);
        let keys: Vec<u32> = rsv_data::uniform_u32(30_000, &mut rng)
            .iter()
            .map(|k| k % 64)
            .collect();
        let pays: Vec<u32> = (0..30_000).collect();
        for threads in [1usize, 2, 3, 4] {
            let mut k = keys.clone();
            let mut p = pays.clone();
            lsb_radixsort_vector(
                s,
                &mut k,
                &mut p,
                &SortConfig {
                    radix_bits: 8,
                    threads,
                    ..SortConfig::default()
                },
            );
            check_sorted_pairs(&k, &p, &keys);
            let mut ks = keys.clone();
            let mut ps = pays.clone();
            lsb_radixsort_scalar(
                &mut ks,
                &mut ps,
                &SortConfig {
                    radix_bits: 8,
                    threads,
                    ..SortConfig::default()
                },
            );
            check_sorted_pairs(&ks, &ps, &keys);
        }
    }

    #[test]
    fn key_only_sort() {
        let s = Portable::<16>::new();
        for threads in [1usize, 3] {
            for n in [0usize, 1, 31, 12_345] {
                let (keys, _) = workload(n, 115);
                let mut expected = keys.clone();
                expected.sort_unstable();
                let mut k = keys.clone();
                lsb_radixsort_keys_vector(
                    s,
                    &mut k,
                    &SortConfig {
                        radix_bits: 8,
                        threads,
                        ..SortConfig::default()
                    },
                );
                assert_eq!(k, expected, "vector n={n} threads={threads}");
                let mut k = keys.clone();
                lsb_radixsort_keys_scalar(
                    &mut k,
                    &SortConfig {
                        radix_bits: 8,
                        threads,
                        ..SortConfig::default()
                    },
                );
                assert_eq!(k, expected, "scalar n={n} threads={threads}");
            }
        }
    }

    /// A pre-cancelled run returns [`EngineError::Cancelled`] without
    /// claiming any morsels, and hands back columns of the right length.
    #[test]
    fn cancelled_sort_returns_columns() {
        let s = Portable::<16>::new();
        let (keys, pays) = workload(10_000, 42);
        let mut k = keys.clone();
        let mut p = pays.clone();
        let run = RunContext::new();
        run.cancel_token().cancel();
        let cfg = SortConfig {
            radix_bits: 8,
            threads: 4,
            morsel_tuples: 1024,
        };
        let err = radixsort_pairs_try(s, true, &mut k, &mut p, &cfg, &run)
            .expect_err("pre-cancelled run must fail");
        assert!(matches!(err, EngineError::Cancelled), "{err}");
        assert_eq!(k.len(), keys.len());
        assert_eq!(p.len(), pays.len());
        // the engine is immediately reusable with a fresh context
        radixsort_pairs_try(s, true, &mut k, &mut p, &cfg, &RunContext::new())
            .expect("fresh run must succeed");
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(k, expect);
    }

    /// The ping-pong scratch columns respect the run's memory budget, and
    /// a denied reservation leaves zero bytes accounted.
    #[test]
    fn sort_budget_gates_scratch() {
        let s = Portable::<16>::new();
        let (mut keys, mut pays) = workload(10_000, 7);
        // sort needs 2 * 10_000 * 4 = 80_000 B of scratch; allow less
        let run = RunContext::new().with_memory_limit(1_000);
        let cfg = SortConfig {
            radix_bits: 8,
            threads: 2,
            morsel_tuples: DEFAULT_MORSEL_TUPLES,
        };
        let err = radixsort_pairs_try(s, true, &mut keys, &mut pays, &cfg, &run)
            .expect_err("budget must deny the scratch columns");
        assert!(matches!(err, EngineError::BudgetExceeded { .. }), "{err}");
        assert_eq!(run.budget.used(), 0);
        assert_eq!(keys.len(), 10_000);
    }

    /// Sorted output must be byte-identical for any thread count and
    /// morsel size, and the stats must account for every scheduled tuple.
    #[test]
    fn sort_schedule_independent() {
        let s = Portable::<16>::new();
        let (keys, pays) = workload(25_000, 117);
        let mut reference: Option<(Vec<u32>, Vec<u32>)> = None;
        for threads in [1usize, 2, 3, 8] {
            for morsel in [1024usize, DEFAULT_MORSEL_TUPLES, usize::MAX] {
                let cfg = SortConfig {
                    radix_bits: 8,
                    threads,
                    morsel_tuples: morsel,
                };
                let mut k = keys.clone();
                let mut p = pays.clone();
                let stats = lsb_radixsort_vector_stats(s, &mut k, &mut p, &cfg);
                // 4 passes at 8 bits, each scheduling every tuple through
                // the histogram and shuffle queues (cleanup tasks add a
                // few more scheduling units on top)
                assert!(stats.total_tuples() >= 4 * 2 * keys.len() as u64);
                match &reference {
                    None => reference = Some((k, p)),
                    Some((rk, rp)) => {
                        assert_eq!(&k, rk, "keys differ at t={threads} morsel={morsel}");
                        assert_eq!(&p, rp, "pays differ at t={threads} morsel={morsel}");
                    }
                }
                let mut ko = keys.clone();
                radixsort_keys(s, true, &mut ko, &cfg);
                let r = reference.as_ref().unwrap();
                let mut expect = r.0.clone();
                expect.sort_unstable();
                assert_eq!(
                    ko, expect,
                    "key-only differs at t={threads} morsel={morsel}"
                );
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn accelerated_backends_sort() {
        let (keys, pays) = workload(50_000, 116);
        if let Some(s) = rsv_simd::Avx512::new() {
            let mut k = keys.clone();
            let mut p = pays.clone();
            lsb_radixsort_vector(
                s,
                &mut k,
                &mut p,
                &SortConfig {
                    radix_bits: 8,
                    threads: 2,
                    ..SortConfig::default()
                },
            );
            check_sorted_pairs(&k, &p, &keys);
        }
        if let Some(s) = rsv_simd::Avx2::new() {
            let mut k = keys.clone();
            let mut p = pays.clone();
            lsb_radixsort_vector(
                s,
                &mut k,
                &mut p,
                &SortConfig {
                    radix_bits: 8,
                    threads: 2,
                    ..SortConfig::default()
                },
            );
            check_sorted_pairs(&k, &p, &keys);
        }
    }
}
