//! Radixsort with arbitrary payload columns of mixed widths (paper §10.5.3,
//! Figure 18): per pass, the key column is shuffled once while recording
//! every tuple's destination, and each payload column replays the recorded
//! permutation — "we generate the histogram once and shuffle one column at
//! a time".

use rsv_partition::histogram::histogram_scalar;
use rsv_partition::multicol::{
    apply_destinations_u16, apply_destinations_u32, apply_destinations_u64, apply_destinations_u8,
    compute_destinations,
};
use rsv_simd::Simd;

use crate::SortConfig;

/// A payload column of one of the widths Figure 18 sweeps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PayloadColumn {
    /// 8-bit values.
    U8(Vec<u8>),
    /// 16-bit values.
    U16(Vec<u16>),
    /// 32-bit values.
    U32(Vec<u32>),
    /// 64-bit values.
    U64(Vec<u64>),
}

impl PayloadColumn {
    /// Number of entries.
    pub fn len(&self) -> usize {
        match self {
            PayloadColumn::U8(v) => v.len(),
            PayloadColumn::U16(v) => v.len(),
            PayloadColumn::U32(v) => v.len(),
            PayloadColumn::U64(v) => v.len(),
        }
    }

    /// `true` when the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Width in bytes.
    pub fn width(&self) -> usize {
        match self {
            PayloadColumn::U8(_) => 1,
            PayloadColumn::U16(_) => 2,
            PayloadColumn::U32(_) => 4,
            PayloadColumn::U64(_) => 8,
        }
    }

    fn replay<S: Simd>(&self, s: S, dest: &[u32]) -> PayloadColumn {
        match self {
            PayloadColumn::U8(v) => {
                let mut out = vec![0u8; v.len()];
                apply_destinations_u8(dest, v, &mut out);
                PayloadColumn::U8(out)
            }
            PayloadColumn::U16(v) => {
                let mut out = vec![0u16; v.len()];
                apply_destinations_u16(dest, v, &mut out);
                PayloadColumn::U16(out)
            }
            PayloadColumn::U32(v) => {
                let mut out = vec![0u32; v.len()];
                apply_destinations_u32(s, dest, v, &mut out);
                PayloadColumn::U32(out)
            }
            PayloadColumn::U64(v) => {
                let mut out = vec![0u64; v.len()];
                apply_destinations_u64(s, dest, v, &mut out);
                PayloadColumn::U64(out)
            }
        }
    }
}

/// Stable LSB radixsort of a key column with any number of payload columns
/// (single-threaded; the per-pass permutation is recorded once and every
/// payload column replays it).
pub fn lsb_radixsort_multicol<S: Simd>(
    s: S,
    keys: &mut Vec<u32>,
    columns: &mut [PayloadColumn],
    cfg: &SortConfig,
) {
    for c in columns.iter() {
        assert_eq!(c.len(), keys.len(), "column length mismatch");
    }
    let n = keys.len();
    let row_bytes = 4 + columns.iter().map(PayloadColumn::width).sum::<usize>();
    let mut src = std::mem::take(keys);
    let mut dst = vec![0u32; n];
    let mut dest = vec![0u32; n];
    for pass in 0..cfg.passes() {
        let f = cfg.pass_fn(pass);
        rsv_metrics::count(rsv_metrics::Metric::SortPasses, 1);
        rsv_metrics::count(rsv_metrics::Metric::SortBytesMoved, (row_bytes * n) as u64);
        let hist = histogram_scalar(f, &src);
        compute_destinations(s, f, &src, &hist, &mut dest, &mut dst);
        std::mem::swap(&mut src, &mut dst);
        for c in columns.iter_mut() {
            *c = c.replay(s, &dest);
        }
    }
    *keys = src;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsv_simd::Portable;

    #[test]
    fn multicol_sort_keeps_tuples_together() {
        let s = Portable::<16>::new();
        let mut rng = rsv_data::rng(121);
        let keys = rsv_data::uniform_u32(5000, &mut rng);
        let c8: Vec<u8> = (0..keys.len()).map(|i| i as u8).collect();
        let c16: Vec<u16> = (0..keys.len()).map(|i| i as u16).collect();
        let c32: Vec<u32> = (0..keys.len() as u32).collect();
        let c64: Vec<u64> = (0..keys.len()).map(|i| (i as u64) << 20).collect();

        let mut k = keys.clone();
        let mut cols = vec![
            PayloadColumn::U8(c8.clone()),
            PayloadColumn::U16(c16.clone()),
            PayloadColumn::U32(c32.clone()),
            PayloadColumn::U64(c64.clone()),
        ];
        lsb_radixsort_multicol(s, &mut k, &mut cols, &SortConfig::default());

        assert!(k.windows(2).all(|w| w[0] <= w[1]));
        let rid = match &cols[2] {
            PayloadColumn::U32(v) => v.clone(),
            _ => unreachable!(),
        };
        for i in 0..k.len() {
            let orig = rid[i] as usize;
            assert_eq!(keys[orig], k[i]);
            match (&cols[0], &cols[1], &cols[3]) {
                (PayloadColumn::U8(a), PayloadColumn::U16(b), PayloadColumn::U64(d)) => {
                    assert_eq!(a[i], c8[orig]);
                    assert_eq!(b[i], c16[orig]);
                    assert_eq!(d[i], c64[orig]);
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn multicol_sort_no_payloads_is_plain_sort() {
        let s = Portable::<16>::new();
        let mut rng = rsv_data::rng(122);
        let keys = rsv_data::uniform_u32(1000, &mut rng);
        let mut expected = keys.clone();
        expected.sort_unstable();
        let mut k = keys;
        lsb_radixsort_multicol(s, &mut k, &mut [], &SortConfig::default());
        assert_eq!(k, expected);
    }

    #[test]
    #[should_panic(expected = "column length mismatch")]
    fn mismatched_column_length_panics() {
        let s = Portable::<16>::new();
        let mut keys = vec![1u32, 2, 3];
        let mut cols = vec![PayloadColumn::U8(vec![0u8; 2])];
        lsb_radixsort_multicol(s, &mut keys, &mut cols, &SortConfig::default());
    }
}
