//! Property tests: radixsort equals `sort_unstable` and is stable, for
//! arbitrary inputs, radix widths, and thread counts.

use rsv_simd::Backend;
use rsv_sort::multicol::{lsb_radixsort_multicol, PayloadColumn};
use rsv_sort::{lsb_radixsort_keys_vector, lsb_radixsort_scalar, lsb_radixsort_vector, SortConfig};
use rsv_testkit as tk;

#[test]
fn sorts_arbitrary_inputs() {
    tk::check("sorts_arbitrary_inputs", 48, 0x5027, |rng| {
        let keys = tk::vec_u32(rng, 0, 800);
        let bits = [4u32, 8, 11][rng.index(3)];
        let threads = 1 + rng.index(3);

        let cfg = SortConfig {
            radix_bits: bits,
            threads,
            ..SortConfig::default()
        };
        let pays: Vec<u32> = (0..keys.len() as u32).collect();
        let mut expected = keys.clone();
        expected.sort_unstable();

        let mut k = keys.clone();
        let mut p = pays.clone();
        lsb_radixsort_scalar(&mut k, &mut p, &cfg);
        assert_eq!(&k, &expected, "scalar keys");
        check_stable(&keys, &k, &p);

        let backend = Backend::best();
        rsv_simd::dispatch!(backend, s => {
            let mut k = keys.clone();
            let mut p = pays.clone();
            lsb_radixsort_vector(s, &mut k, &mut p, &cfg);
            assert_eq!(&k, &expected, "vector keys");
            check_stable(&keys, &k, &p);

            let mut k = keys.clone();
            lsb_radixsort_keys_vector(s, &mut k, &cfg);
            assert_eq!(&k, &expected, "key-only");
        });
    });
}

#[test]
fn multicol_sort_keeps_rows() {
    tk::check("multicol_sort_keeps_rows", 48, 0x5028, |rng| {
        let keys = tk::vec_u32(rng, 0, 400);
        let n = keys.len();
        let c8: Vec<u8> = (0..n).map(|i| i as u8).collect();
        let c64: Vec<u64> = keys.iter().map(|&k| u64::from(k) ^ 0xABCD).collect();
        let rid: Vec<u32> = (0..n as u32).collect();
        let mut k = keys.clone();
        let mut cols = vec![
            PayloadColumn::U8(c8.clone()),
            PayloadColumn::U32(rid),
            PayloadColumn::U64(c64.clone()),
        ];
        let backend = Backend::best();
        rsv_simd::dispatch!(backend, s => {
            lsb_radixsort_multicol(s, &mut k, &mut cols, &SortConfig::default());
        });
        assert!(k.windows(2).all(|w| w[0] <= w[1]));
        let (PayloadColumn::U8(o8), PayloadColumn::U32(orid), PayloadColumn::U64(o64)) =
            (&cols[0], &cols[1], &cols[2])
        else {
            unreachable!()
        };
        for i in 0..n {
            let orig = orid[i] as usize;
            assert_eq!(keys[orig], k[i]);
            assert_eq!(c8[orig], o8[i]);
            assert_eq!(c64[orig], o64[i]);
        }
    });
}

fn check_stable(orig_keys: &[u32], sorted_keys: &[u32], sorted_pays: &[u32]) {
    for (i, (&k, &p)) in sorted_keys.iter().zip(sorted_pays).enumerate() {
        assert_eq!(orig_keys[p as usize], k, "tuple broken at {i}");
    }
    for w in sorted_keys.windows(2).zip(sorted_pays.windows(2)) {
        if w.0[0] == w.0[1] {
            assert!(w.1[0] < w.1[1], "not stable");
        }
    }
}
