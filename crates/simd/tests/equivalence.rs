//! Property tests: every accelerated backend must be observationally
//! equivalent to the portable reference backend of the same width, for
//! every operation in the `Simd` trait.

use rsv_simd::{MaskLike, Portable, Simd};
use rsv_testkit as tk;

/// Fingerprint of running every trait operation on fixed inputs.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    arith: Vec<Vec<u32>>,
    cmps: Vec<u32>,
    blend: Vec<u32>,
    permute: Vec<u32>,
    reverse: Vec<u32>,
    popcount: Vec<u32>,
    conflict: Vec<u32>,
    reduce: u64,
    sel_store: (usize, Vec<u32>),
    sel_load: Vec<u32>,
    gather: Vec<u32>,
    gather_masked: Vec<u32>,
    scatter: Vec<u32>,
    scatter_masked: Vec<u32>,
    pairs_gathered: (Vec<u32>, Vec<u32>),
    pairs_gathered_masked: (Vec<u32>, Vec<u32>),
    pairs_scattered: Vec<u64>,
    pairs_scattered_masked: Vec<u64>,
    bytes_gathered: Vec<u32>,
    bytes_scattered: Vec<u8>,
}

#[derive(Debug)]
struct Inputs {
    a: Vec<u32>,
    b: Vec<u32>,
    mask_bits: u32,
    mask_bits2: u32,
    data32: Vec<u32>,
    data64: Vec<u64>,
    bytes: Vec<u8>,
    shift: u32,
}

impl Inputs {
    fn generate(rng: &mut tk::Rng, w: usize) -> Inputs {
        Inputs {
            a: (0..w).map(|_| rng.next_u32()).collect(),
            b: (0..w).map(|_| rng.next_u32()).collect(),
            mask_bits: rng.next_u32(),
            mask_bits2: rng.next_u32(),
            data32: (0..64).map(|_| rng.next_u32()).collect(),
            data64: (0..32).map(|_| rng.next_u64()).collect(),
            bytes: (0..64).map(|_| rng.next_u32() as u8).collect(),
            shift: rng.index(32) as u32,
        }
    }
}

fn to_vec<S: Simd>(s: S, v: S::V) -> Vec<u32> {
    let mut out = vec![0u32; S::LANES];
    s.store(v, &mut out);
    out
}

fn fingerprint<S: Simd>(s: S, input: &Inputs) -> Fingerprint {
    s.vectorize(|| fingerprint_impl(s, input))
}

#[inline(always)]
fn fingerprint_impl<S: Simd>(s: S, input: &Inputs) -> Fingerprint {
    let w = S::LANES;
    let a = s.load(&input.a);
    let b = s.load(&input.b);
    let m = S::M::from_bits(input.mask_bits);
    let m2 = S::M::from_bits(input.mask_bits2);

    let arith = vec![
        to_vec(s, s.add(a, b)),
        to_vec(s, s.sub(a, b)),
        to_vec(s, s.mullo(a, b)),
        to_vec(s, s.mulhi(a, b)),
        to_vec(s, s.and(a, b)),
        to_vec(s, s.or(a, b)),
        to_vec(s, s.xor(a, b)),
        to_vec(s, s.andnot(a, b)),
        to_vec(s, s.shl(a, input.shift)),
        to_vec(s, s.shr(a, input.shift)),
        to_vec(s, s.shlv(a, s.and(b, s.splat(31)))),
        to_vec(s, s.shrv(a, s.and(b, s.splat(31)))),
        to_vec(s, s.iota()),
        to_vec(s, s.splat(input.shift)),
    ];

    let cmps = vec![
        s.cmpeq(a, b).bits(),
        s.cmpne(a, b).bits(),
        s.cmplt(a, b).bits(),
        s.cmple(a, b).bits(),
        s.cmpgt(a, b).bits(),
        s.cmpge(a, b).bits(),
    ];

    let blend = to_vec(s, s.blend(m, a, b));
    let idxmod = s.and(b, s.splat(w as u32 - 1));
    let permute = to_vec(s, s.permute(a, idxmod));
    let reverse = to_vec(s, s.reverse(a));
    let popcount = to_vec(s, s.popcount_lanes(a));
    let conflict = to_vec(s, s.conflict(s.and(a, s.splat(3))));
    let reduce = s.reduce_add_u64(a);

    let mut sel_out = vec![0xDEAD_BEEFu32; w];
    let n = s.selective_store(&mut sel_out, m, a);
    let sel_store = (n, sel_out);
    let sel_load = to_vec(s, s.selective_load(a, m, &input.data32));

    // In-bounds index vector for the gather/scatter targets.
    let g_idx = s.and(a, s.splat(input.data32.len() as u32 - 1));
    let gather = to_vec(s, s.gather(&input.data32, g_idx));
    let gather_masked = to_vec(s, s.gather_masked(b, m, &input.data32, g_idx));

    let mut scat = input.data32.clone();
    s.scatter(&mut scat, g_idx, b);
    let mut scat_m = input.data32.clone();
    s.scatter_masked(&mut scat_m, m2, g_idx, b);

    let p_idx = s.and(b, s.splat(input.data64.len() as u32 - 1));
    let (gk, gv) = s.gather_pairs(&input.data64, p_idx);
    let pairs_gathered = (to_vec(s, gk), to_vec(s, gv));
    let (gmk, gmv) = s.gather_pairs_masked((a, b), m, &input.data64, p_idx);
    let pairs_gathered_masked = (to_vec(s, gmk), to_vec(s, gmv));

    let mut pscat = input.data64.clone();
    s.scatter_pairs(&mut pscat, p_idx, a, b);
    let mut pscat_m = input.data64.clone();
    s.scatter_pairs_masked(&mut pscat_m, m2, p_idx, a, b);

    let by_idx = s.and(a, s.splat(input.bytes.len() as u32 - 1));
    let bytes_gathered = to_vec(s, s.gather_bytes(&input.bytes, by_idx));
    // Aliasing-free byte scatter: each lane owns its own 32-bit word.
    let lane_word = s.add(s.shl(s.iota(), 2), s.and(a, s.splat(3)));
    let mut bscat = input.bytes.clone();
    s.scatter_bytes(&mut bscat, lane_word, b);

    Fingerprint {
        arith,
        cmps,
        blend,
        permute,
        reverse,
        popcount,
        conflict,
        reduce,
        sel_store,
        sel_load,
        gather,
        gather_masked,
        scatter: scat,
        scatter_masked: scat_m,
        pairs_gathered,
        pairs_gathered_masked,
        pairs_scattered: pscat,
        pairs_scattered_masked: pscat_m,
        bytes_gathered,
        bytes_scattered: bscat,
    }
}

#[cfg(target_arch = "x86_64")]
#[test]
fn avx512_matches_portable() {
    tk::check("avx512_matches_portable", 512, 0xe951, |rng| {
        let input = Inputs::generate(rng, 16);
        if let Some(s) = rsv_simd::Avx512::new() {
            let accel = fingerprint(s, &input);
            let reference = fingerprint(Portable::<16>::new(), &input);
            assert_eq!(accel, reference);
        }
    });
}

#[cfg(target_arch = "x86_64")]
#[test]
fn avx2_matches_portable() {
    tk::check("avx2_matches_portable", 512, 0xe952, |rng| {
        let input = Inputs::generate(rng, 8);
        if let Some(s) = rsv_simd::Avx2::new() {
            let accel = fingerprint(s, &input);
            let reference = fingerprint(Portable::<8>::new(), &input);
            assert_eq!(accel, reference);
        }
    });
}

/// The portable backend at width 8 must behave like the portable backend
/// at width 16 restricted to its first 8 lanes for lane-wise operations.
#[test]
fn portable_widths_consistent() {
    tk::check("portable_widths_consistent", 256, 0xe953, |rng| {
        let a: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let b: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let s8 = Portable::<8>::new();
        let s16 = Portable::<16>::new();
        let r8 = to_vec(s8, s8.add(s8.load(&a), s8.load(&b)));
        let r16 = to_vec(s16, s16.add(s16.load(&a), s16.load(&b)));
        assert_eq!(&r8[..8], &r16[..8]);
        let h8 = to_vec(s8, s8.mulhi(s8.load(&a), s8.load(&b)));
        let h16 = to_vec(s16, s16.mulhi(s16.load(&a), s16.load(&b)));
        assert_eq!(&h8[..8], &h16[..8]);
    });
}

/// Selective store followed by selective load round-trips the active lanes.
#[test]
fn selective_roundtrip_all_masks() {
    fn check<S: Simd>(s: S) {
        let w = S::LANES;
        let vals: Vec<u32> = (100..100 + w as u32).collect();
        for bits in 0..(1u32 << w) {
            let m = S::M::from_bits(bits);
            let v = s.load(&vals);
            let mut buf = vec![0u32; w];
            let n = s.selective_store(&mut buf, m, v);
            assert_eq!(n, m.count());
            let reloaded = s.selective_load(s.splat(0), m, &buf);
            let out = {
                let mut o = vec![0u32; w];
                s.store(reloaded, &mut o);
                o
            };
            for lane in 0..w {
                if m.get(lane) {
                    assert_eq!(out[lane], vals[lane], "bits={bits:#x} lane={lane}");
                } else {
                    assert_eq!(out[lane], 0, "bits={bits:#x} lane={lane}");
                }
            }
        }
    }
    check(Portable::<8>::new());
    check(Portable::<16>::new());
    #[cfg(target_arch = "x86_64")]
    {
        if let Some(s) = rsv_simd::Avx2::new() {
            check(s);
        }
        if let Some(s) = rsv_simd::Avx512::new() {
            check(s);
        }
    }
}
