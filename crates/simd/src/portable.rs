//! Portable reference backend: plain safe Rust over `[u32; W]`.
//!
//! This backend defines the executable semantics every accelerated backend
//! must match (the equivalence property tests compare against it). It is
//! also the fallback on hardware without AVX2/AVX-512.

use crate::mask::LaneMask;
use crate::simd_trait::Simd;

/// Portable backend with `W` 32-bit lanes (`W` must be a power of two,
/// `1 ≤ W ≤ 32`).
///
/// `Portable::<16>` models the paper's Xeon Phi vector width and
/// `Portable::<8>` the Haswell width.
#[derive(Clone, Copy, Debug, Default)]
pub struct Portable<const W: usize>;

impl<const W: usize> Portable<W> {
    const VALID: () = assert!(
        W.is_power_of_two() && W <= 32,
        "W must be a power of two <= 32"
    );

    /// Create the portable backend token (always available).
    #[inline]
    pub fn new() -> Self {
        #[allow(clippy::let_unit_value)]
        let () = Self::VALID;
        Portable
    }
}

impl<const W: usize> Simd for Portable<W> {
    const LANES: usize = W;
    type V = [u32; W];
    type M = LaneMask<W>;

    #[inline(always)]
    fn name(self) -> &'static str {
        "portable"
    }

    #[inline(always)]
    fn vectorize<R>(self, f: impl FnOnce() -> R) -> R {
        f()
    }

    #[inline(always)]
    fn splat(self, x: u32) -> Self::V {
        [x; W]
    }

    #[inline(always)]
    fn iota(self) -> Self::V {
        let mut v = [0u32; W];
        for (i, lane) in v.iter_mut().enumerate() {
            *lane = i as u32;
        }
        v
    }

    #[inline(always)]
    fn load(self, src: &[u32]) -> Self::V {
        let mut v = [0u32; W];
        v.copy_from_slice(&src[..W]);
        v
    }

    #[inline(always)]
    fn store(self, v: Self::V, dst: &mut [u32]) {
        dst[..W].copy_from_slice(&v);
    }

    #[inline(always)]
    fn extract(self, v: Self::V, lane: usize) -> u32 {
        v[lane]
    }

    #[inline(always)]
    fn add(self, a: Self::V, b: Self::V) -> Self::V {
        let mut r = [0u32; W];
        for i in 0..W {
            r[i] = a[i].wrapping_add(b[i]);
        }
        r
    }

    #[inline(always)]
    fn sub(self, a: Self::V, b: Self::V) -> Self::V {
        let mut r = [0u32; W];
        for i in 0..W {
            r[i] = a[i].wrapping_sub(b[i]);
        }
        r
    }

    #[inline(always)]
    fn mullo(self, a: Self::V, b: Self::V) -> Self::V {
        let mut r = [0u32; W];
        for i in 0..W {
            r[i] = a[i].wrapping_mul(b[i]);
        }
        r
    }

    #[inline(always)]
    fn mulhi(self, a: Self::V, b: Self::V) -> Self::V {
        let mut r = [0u32; W];
        for i in 0..W {
            r[i] = ((u64::from(a[i]) * u64::from(b[i])) >> 32) as u32;
        }
        r
    }

    #[inline(always)]
    fn and(self, a: Self::V, b: Self::V) -> Self::V {
        let mut r = [0u32; W];
        for i in 0..W {
            r[i] = a[i] & b[i];
        }
        r
    }

    #[inline(always)]
    fn or(self, a: Self::V, b: Self::V) -> Self::V {
        let mut r = [0u32; W];
        for i in 0..W {
            r[i] = a[i] | b[i];
        }
        r
    }

    #[inline(always)]
    fn xor(self, a: Self::V, b: Self::V) -> Self::V {
        let mut r = [0u32; W];
        for i in 0..W {
            r[i] = a[i] ^ b[i];
        }
        r
    }

    #[inline(always)]
    fn andnot(self, a: Self::V, b: Self::V) -> Self::V {
        let mut r = [0u32; W];
        for i in 0..W {
            r[i] = !a[i] & b[i];
        }
        r
    }

    #[inline(always)]
    fn shl(self, v: Self::V, count: u32) -> Self::V {
        debug_assert!(count < 32);
        let mut r = [0u32; W];
        for i in 0..W {
            r[i] = v[i] << count;
        }
        r
    }

    #[inline(always)]
    fn shr(self, v: Self::V, count: u32) -> Self::V {
        debug_assert!(count < 32);
        let mut r = [0u32; W];
        for i in 0..W {
            r[i] = v[i] >> count;
        }
        r
    }

    #[inline(always)]
    fn shlv(self, v: Self::V, counts: Self::V) -> Self::V {
        let mut r = [0u32; W];
        for i in 0..W {
            debug_assert!(counts[i] < 32);
            r[i] = v[i] << counts[i];
        }
        r
    }

    #[inline(always)]
    fn shrv(self, v: Self::V, counts: Self::V) -> Self::V {
        let mut r = [0u32; W];
        for i in 0..W {
            debug_assert!(counts[i] < 32);
            r[i] = v[i] >> counts[i];
        }
        r
    }

    #[inline(always)]
    fn cmpeq(self, a: Self::V, b: Self::V) -> Self::M {
        let mut bits = 0u32;
        for i in 0..W {
            bits |= u32::from(a[i] == b[i]) << i;
        }
        LaneMask::from_bits(bits)
    }

    #[inline(always)]
    fn cmpne(self, a: Self::V, b: Self::V) -> Self::M {
        let mut bits = 0u32;
        for i in 0..W {
            bits |= u32::from(a[i] != b[i]) << i;
        }
        LaneMask::from_bits(bits)
    }

    #[inline(always)]
    fn cmplt(self, a: Self::V, b: Self::V) -> Self::M {
        let mut bits = 0u32;
        for i in 0..W {
            bits |= u32::from(a[i] < b[i]) << i;
        }
        LaneMask::from_bits(bits)
    }

    #[inline(always)]
    fn cmple(self, a: Self::V, b: Self::V) -> Self::M {
        let mut bits = 0u32;
        for i in 0..W {
            bits |= u32::from(a[i] <= b[i]) << i;
        }
        LaneMask::from_bits(bits)
    }

    #[inline(always)]
    fn cmpgt(self, a: Self::V, b: Self::V) -> Self::M {
        let mut bits = 0u32;
        for i in 0..W {
            bits |= u32::from(a[i] > b[i]) << i;
        }
        LaneMask::from_bits(bits)
    }

    #[inline(always)]
    fn cmpge(self, a: Self::V, b: Self::V) -> Self::M {
        let mut bits = 0u32;
        for i in 0..W {
            bits |= u32::from(a[i] >= b[i]) << i;
        }
        LaneMask::from_bits(bits)
    }

    #[inline(always)]
    fn blend(self, m: Self::M, on_true: Self::V, on_false: Self::V) -> Self::V {
        let mut r = [0u32; W];
        for i in 0..W {
            r[i] = if m.get(i) { on_true[i] } else { on_false[i] };
        }
        r
    }

    #[inline(always)]
    fn permute(self, v: Self::V, idx: Self::V) -> Self::V {
        let mut r = [0u32; W];
        for i in 0..W {
            r[i] = v[idx[i] as usize % W];
        }
        r
    }

    #[inline(always)]
    #[allow(clippy::needless_range_loop)]
    fn selective_store(self, dst: &mut [u32], m: Self::M, v: Self::V) -> usize {
        let count = m.count();
        assert!(dst.len() >= count, "selective_store: dst too short");
        let mut j = 0;
        for i in 0..W {
            if m.get(i) {
                dst[j] = v[i];
                j += 1;
            }
        }
        count
    }

    #[inline(always)]
    #[allow(clippy::needless_range_loop)]
    fn selective_load(self, v: Self::V, m: Self::M, src: &[u32]) -> Self::V {
        let count = m.count();
        assert!(src.len() >= count, "selective_load: src too short");
        let mut r = v;
        let mut j = 0;
        for (i, lane) in r.iter_mut().enumerate() {
            if m.get(i) {
                *lane = src[j];
                j += 1;
            }
        }
        r
    }

    #[inline(always)]
    fn gather(self, src: &[u32], idx: Self::V) -> Self::V {
        let mut r = [0u32; W];
        for i in 0..W {
            r[i] = src[idx[i] as usize];
        }
        r
    }

    #[inline(always)]
    fn gather_masked(self, prev: Self::V, m: Self::M, src: &[u32], idx: Self::V) -> Self::V {
        let mut r = prev;
        for i in 0..W {
            if m.get(i) {
                r[i] = src[idx[i] as usize];
            }
        }
        r
    }

    #[inline(always)]
    fn scatter(self, dst: &mut [u32], idx: Self::V, v: Self::V) {
        for i in 0..W {
            dst[idx[i] as usize] = v[i];
        }
    }

    #[inline(always)]
    fn scatter_masked(self, dst: &mut [u32], m: Self::M, idx: Self::V, v: Self::V) {
        for i in 0..W {
            if m.get(i) {
                dst[idx[i] as usize] = v[i];
            }
        }
    }

    #[inline(always)]
    fn gather_pairs(self, src: &[u64], idx: Self::V) -> (Self::V, Self::V) {
        let mut keys = [0u32; W];
        let mut vals = [0u32; W];
        for i in 0..W {
            let pair = src[idx[i] as usize];
            keys[i] = pair as u32;
            vals[i] = (pair >> 32) as u32;
        }
        (keys, vals)
    }

    #[inline(always)]
    fn gather_pairs_masked(
        self,
        prev: (Self::V, Self::V),
        m: Self::M,
        src: &[u64],
        idx: Self::V,
    ) -> (Self::V, Self::V) {
        let (mut keys, mut vals) = prev;
        for i in 0..W {
            if m.get(i) {
                let pair = src[idx[i] as usize];
                keys[i] = pair as u32;
                vals[i] = (pair >> 32) as u32;
            }
        }
        (keys, vals)
    }

    #[inline(always)]
    fn scatter_pairs(self, dst: &mut [u64], idx: Self::V, keys: Self::V, vals: Self::V) {
        for i in 0..W {
            dst[idx[i] as usize] = u64::from(keys[i]) | (u64::from(vals[i]) << 32);
        }
    }

    #[inline(always)]
    fn scatter_pairs_masked(
        self,
        dst: &mut [u64],
        m: Self::M,
        idx: Self::V,
        keys: Self::V,
        vals: Self::V,
    ) {
        for i in 0..W {
            if m.get(i) {
                dst[idx[i] as usize] = u64::from(keys[i]) | (u64::from(vals[i]) << 32);
            }
        }
    }

    #[inline(always)]
    fn load_pairs(self, src: &[u64]) -> (Self::V, Self::V) {
        assert!(src.len() >= W, "load_pairs: src too short");
        let mut keys = [0u32; W];
        let mut vals = [0u32; W];
        for i in 0..W {
            keys[i] = src[i] as u32;
            vals[i] = (src[i] >> 32) as u32;
        }
        (keys, vals)
    }

    #[inline(always)]
    fn gather_bytes(self, src: &[u8], idx: Self::V) -> Self::V {
        assert!(
            src.len().is_multiple_of(4),
            "gather_bytes: src length must be a multiple of 4"
        );
        let mut r = [0u32; W];
        for i in 0..W {
            r[i] = u32::from(src[idx[i] as usize]);
        }
        r
    }

    #[inline(always)]
    fn scatter_bytes(self, dst: &mut [u8], idx: Self::V, v: Self::V) {
        assert!(
            dst.len().is_multiple_of(4),
            "scatter_bytes: dst length must be a multiple of 4"
        );
        #[cfg(debug_assertions)]
        for i in 0..W {
            for j in 0..i {
                debug_assert!(
                    idx[i] >> 2 != idx[j] >> 2 || idx[i] == idx[j],
                    "scatter_bytes: lanes {j} and {i} alias the same 32-bit word"
                );
            }
        }
        for i in 0..W {
            dst[idx[i] as usize] = v[i] as u8;
        }
    }

    #[inline(always)]
    fn conflict(self, v: Self::V) -> Self::V {
        let mut r = [0u32; W];
        for i in 1..W {
            let mut bits = 0u32;
            for j in 0..i {
                bits |= u32::from(v[j] == v[i]) << j;
            }
            r[i] = bits;
        }
        r
    }

    #[inline(always)]
    fn reduce_add_u64(self, v: Self::V) -> u64 {
        v.iter().map(|&x| u64::from(x)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type P8 = Portable<8>;

    fn s() -> P8 {
        Portable::<8>::new()
    }

    #[test]
    fn splat_iota_load_store() {
        let s = s();
        assert_eq!(s.splat(7), [7; 8]);
        assert_eq!(s.iota(), [0, 1, 2, 3, 4, 5, 6, 7]);
        let src = [9, 8, 7, 6, 5, 4, 3, 2, 1];
        let v = s.load(&src);
        assert_eq!(v, [9, 8, 7, 6, 5, 4, 3, 2]);
        let mut out = [0u32; 8];
        s.store(v, &mut out);
        assert_eq!(out, [9, 8, 7, 6, 5, 4, 3, 2]);
        assert_eq!(s.extract(v, 3), 6);
    }

    #[test]
    fn arithmetic_wraps() {
        let s = s();
        let a = s.splat(u32::MAX);
        let b = s.splat(2);
        assert_eq!(s.add(a, b), [1; 8]);
        assert_eq!(s.sub(s.splat(0), b), [u32::MAX - 1; 8]);
        assert_eq!(s.mullo(s.splat(0x1_0001), s.splat(0x1_0001)), [0x2_0001; 8]);
    }

    #[test]
    fn mulhi_matches_u64() {
        let s = s();
        let a = s.splat(0xDEAD_BEEF);
        let b = s.splat(0x1234_5678);
        let expected = ((0xDEAD_BEEFu64 * 0x1234_5678u64) >> 32) as u32;
        assert_eq!(s.mulhi(a, b), [expected; 8]);
    }

    #[test]
    fn shifts() {
        let s = s();
        let v = s.splat(0x8000_0001);
        assert_eq!(s.shl(v, 1), [2; 8]);
        assert_eq!(s.shr(v, 31), [1; 8]);
        let counts = s.iota();
        assert_eq!(s.shlv(s.splat(1), counts), [1, 2, 4, 8, 16, 32, 64, 128]);
        assert_eq!(s.shrv(s.splat(128), counts), [128, 64, 32, 16, 8, 4, 2, 1]);
    }

    #[test]
    fn comparisons_are_unsigned() {
        let s = s();
        let a = s.splat(0xFFFF_FFFF); // would be -1 signed
        let b = s.splat(1);
        assert!(s.cmpgt(a, b).all_set());
        assert!(s.cmplt(a, b).is_empty());
        assert!(s.cmpge(a, a).all_set());
        assert!(s.cmple(b, a).all_set());
        assert!(s.cmpeq(a, a).all_set());
        assert!(s.cmpne(a, b).all_set());
    }

    #[test]
    fn blend_and_permute() {
        let s = s();
        let t = s.splat(1);
        let f = s.splat(0);
        let m = LaneMask::<8>::from_bits(0b1010_0110);
        assert_eq!(s.blend(m, t, f), [0, 1, 1, 0, 0, 1, 0, 1]);
        let v = s.iota();
        let idx = s.load(&[7, 6, 5, 4, 3, 2, 1, 0]);
        assert_eq!(s.permute(v, idx), [7, 6, 5, 4, 3, 2, 1, 0]);
        assert_eq!(s.reverse(v), [7, 6, 5, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn selective_store_and_load() {
        let s = s();
        let v = s.load(&[10, 11, 12, 13, 14, 15, 16, 17]);
        let m = LaneMask::<8>::from_bits(0b0110_0101);
        let mut out = [0u32; 8];
        let n = s.selective_store(&mut out, m, v);
        assert_eq!(n, 4);
        assert_eq!(&out[..4], &[10, 12, 15, 16]);

        let base = s.splat(99);
        let loaded = s.selective_load(base, m, &[1, 2, 3, 4]);
        assert_eq!(loaded, [1, 99, 2, 99, 99, 3, 4, 99]);
    }

    #[test]
    fn gather_scatter_roundtrip_and_rightmost_wins() {
        let s = s();
        let data: Vec<u32> = (0..32).map(|x| x * 3).collect();
        let idx = s.load(&[31, 0, 5, 5, 17, 2, 9, 20]);
        let g = s.gather(&data, idx);
        assert_eq!(g, [93, 0, 15, 15, 51, 6, 27, 60]);

        let mut dst = vec![0u32; 8];
        let idx = s.load(&[3, 3, 3, 1, 0, 0, 7, 7]);
        let v = s.load(&[1, 2, 3, 4, 5, 6, 7, 8]);
        s.scatter(&mut dst, idx, v);
        // rightmost lane wins for each duplicate index
        assert_eq!(dst, vec![6, 4, 0, 3, 0, 0, 0, 8]);
    }

    #[test]
    fn masked_gather_scatter() {
        let s = s();
        let data = [5u32, 6, 7, 8];
        let prev = s.splat(42);
        let m = LaneMask::<8>::from_bits(0b0000_1001);
        // inactive lanes may hold out-of-bounds indexes without panicking
        let idx = s.load(&[1, 9999, 9999, 2, 9999, 9999, 9999, 9999]);
        let g = s.gather_masked(prev, m, &data, idx);
        assert_eq!(g, [6, 42, 42, 7, 42, 42, 42, 42]);

        let mut dst = vec![0u32; 4];
        s.scatter_masked(&mut dst, m, idx, s.splat(9));
        assert_eq!(dst, vec![0, 9, 9, 0]);
    }

    #[test]
    fn pair_gather_scatter() {
        let s = s();
        let mut table = vec![0u64; 16];
        let idx = s.load(&[0, 2, 4, 6, 8, 10, 12, 14]);
        let keys = s.load(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let vals = s.load(&[10, 20, 30, 40, 50, 60, 70, 80]);
        s.scatter_pairs(&mut table, idx, keys, vals);
        assert_eq!(table[2], 2 | (20 << 32));
        let (k, v) = s.gather_pairs(&table, idx);
        assert_eq!(k, [1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(v, [10, 20, 30, 40, 50, 60, 70, 80]);
    }

    #[test]
    fn byte_gather_scatter() {
        let s = s();
        let mut bytes = vec![0u8; 64];
        // one byte per aligned word -> no aliasing
        let idx = s.load(&[0, 4, 8, 12, 16, 20, 24, 28]);
        let v = s.load(&[1, 2, 3, 4, 5, 250, 255, 300]);
        s.scatter_bytes(&mut bytes, idx, v);
        assert_eq!(bytes[20], 250);
        assert_eq!(bytes[28], 44); // 300 truncated
        let g = s.gather_bytes(&bytes, idx);
        assert_eq!(g, [1, 2, 3, 4, 5, 250, 255, 44]);
    }

    #[test]
    fn conflict_detection() {
        let s = s();
        let v = s.load(&[3, 1, 3, 3, 1, 7, 7, 3]);
        let c = s.conflict(v);
        assert_eq!(c[0], 0);
        assert_eq!(c[2], 0b0000_0001); // lane 0 has 3
        assert_eq!(c[3], 0b0000_0101); // lanes 0 and 2
        assert_eq!(c[4], 0b0000_0010); // lane 1 has 1
        assert_eq!(c[6], 0b0010_0000); // lane 5 has 7
        assert_eq!(c[7], 0b0000_1101); // lanes 0, 2, 3
    }

    #[test]
    fn reductions() {
        let s = s();
        assert_eq!(s.reduce_add_u64(s.splat(u32::MAX)), 8 * u64::from(u32::MAX));
        let v = s.load(&[0xFFFF_FFFF, 0, 1, 3, 0xF0F0_F0F0, 7, 0x8000_0000, 255]);
        assert_eq!(s.popcount_lanes(v), [32, 0, 1, 2, 16, 3, 1, 8]);
    }

    #[test]
    #[should_panic(expected = "selective_store")]
    fn selective_store_bounds() {
        let s = s();
        let mut out = [0u32; 2];
        s.selective_store(&mut out, LaneMask::<8>::all(), s.splat(0));
    }

    #[test]
    #[should_panic]
    fn gather_out_of_bounds_panics() {
        let s = s();
        let data = [1u32, 2];
        let _ = s.gather(&data, s.splat(5));
    }
}
