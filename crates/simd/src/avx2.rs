//! AVX2 backend: 8 × 32-bit lanes, modeling the paper's Haswell platform.
//!
//! Haswell supports hardware gathers but **no** scatters and no selective
//! loads/stores, so exactly as the paper does (Section 3, Appendix C/D):
//!
//! * selective store = compress-permute via a 256-entry permutation table +
//!   masked store,
//! * selective load = masked load + expand-permute + blend,
//! * scatter = scalar stores per lane (software emulation),
//! * conflict detection = software.

#![allow(unsafe_code)]

use core::arch::x86_64::*;

use crate::mask::LaneMask;
use crate::simd_trait::Simd;

/// For each 8-bit mask, the lane permutation that packs the set lanes to
/// the front (paper Appendix D's `perm` lookup table).
static COMPRESS_PERM: [[u32; 8]; 256] = build_compress_table();

/// For each 8-bit mask, the inverse permutation that spreads the first
/// `popcount` lanes back out to the set positions.
static EXPAND_PERM: [[u32; 8]; 256] = build_expand_table();

const fn build_compress_table() -> [[u32; 8]; 256] {
    let mut table = [[0u32; 8]; 256];
    let mut m = 0usize;
    while m < 256 {
        let mut j = 0usize;
        let mut lane = 0usize;
        while lane < 8 {
            if m & (1 << lane) != 0 {
                table[m][j] = lane as u32;
                j += 1;
            }
            lane += 1;
        }
        let mut lane = 0usize;
        while lane < 8 {
            if m & (1 << lane) == 0 {
                table[m][j] = lane as u32;
                j += 1;
            }
            lane += 1;
        }
        m += 1;
    }
    table
}

const fn build_expand_table() -> [[u32; 8]; 256] {
    let mut table = [[0u32; 8]; 256];
    let mut m = 0usize;
    while m < 256 {
        let mut rank = 0u32;
        let mut lane = 0usize;
        while lane < 8 {
            if m & (1 << lane) != 0 {
                table[m][lane] = rank;
                rank += 1;
            }
            lane += 1;
        }
        m += 1;
    }
    table
}

/// AVX2 capability token (`W = 8`).
#[derive(Clone, Copy, Debug)]
pub struct Avx2 {
    _priv: (),
}

impl Avx2 {
    /// Detect AVX2 support; `None` if unavailable.
    #[inline]
    pub fn new() -> Option<Self> {
        if std::arch::is_x86_feature_detected!("avx2") {
            Some(Avx2 { _priv: () })
        } else {
            None
        }
    }

    /// Create the token without checking CPU features.
    ///
    /// # Safety
    /// The caller must guarantee `avx2` is available.
    #[inline]
    pub unsafe fn new_unchecked() -> Self {
        Avx2 { _priv: () }
    }

    /// Expand a bitmask into an all-ones/all-zeros 32-bit lane mask vector.
    #[inline(always)]
    fn mask_vec(self, m: LaneMask<8>) -> __m256i {
        // SAFETY (here and below): constructing `Avx2` proved avx2.
        unsafe {
            let bits = _mm256_set1_epi32(m.bits() as i32);
            let lane_bit = _mm256_setr_epi32(1, 2, 4, 8, 16, 32, 64, 128);
            let hit = _mm256_and_si256(bits, lane_bit);
            _mm256_cmpeq_epi32(hit, lane_bit)
        }
    }

    /// Vector mask with the first `n` 32-bit lanes active.
    #[inline(always)]
    fn first_n_vec(self, n: usize) -> __m256i {
        unsafe {
            let iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
            let lim = _mm256_set1_epi32(n as i32);
            _mm256_cmpgt_epi32(lim, iota)
        }
    }

    #[inline(always)]
    fn to_array(self, v: __m256i) -> [u32; 8] {
        let mut buf = [0u32; 8];
        unsafe { _mm256_storeu_si256(buf.as_mut_ptr() as *mut __m256i, v) };
        buf
    }

    #[inline(always)]
    fn assert_in_bounds(self, idx: __m256i, len: usize, what: &str) {
        assert!(
            len <= i32::MAX as usize,
            "{what}: slice too long for 32-bit indexes"
        );
        let m = self.cmplt(idx, self.splat(len as u32));
        assert!(m.all_set(), "{what}: index out of bounds (len {len})");
    }

    #[inline(always)]
    fn assert_in_bounds_masked(self, m: LaneMask<8>, idx: __m256i, len: usize, what: &str) {
        assert!(
            len <= i32::MAX as usize,
            "{what}: slice too long for 32-bit indexes"
        );
        let ok = self.cmplt(idx, self.splat(len as u32));
        assert!(ok.and(m) == m, "{what}: index out of bounds (len {len})");
    }
}

impl Simd for Avx2 {
    const LANES: usize = 8;
    type V = __m256i;
    type M = LaneMask<8>;

    #[inline(always)]
    fn name(self) -> &'static str {
        "avx2"
    }

    #[inline]
    fn vectorize<R>(self, f: impl FnOnce() -> R) -> R {
        #[target_feature(enable = "avx2")]
        unsafe fn inner<R>(f: impl FnOnce() -> R) -> R {
            f()
        }
        // SAFETY: the token proves avx2 is available.
        unsafe { inner(f) }
    }

    #[inline(always)]
    fn splat(self, x: u32) -> Self::V {
        unsafe { _mm256_set1_epi32(x as i32) }
    }

    #[inline(always)]
    fn iota(self) -> Self::V {
        unsafe { _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7) }
    }

    #[inline(always)]
    fn load(self, src: &[u32]) -> Self::V {
        assert!(src.len() >= 8, "load: src too short");
        unsafe { _mm256_loadu_si256(src.as_ptr() as *const __m256i) }
    }

    #[inline(always)]
    fn store(self, v: Self::V, dst: &mut [u32]) {
        assert!(dst.len() >= 8, "store: dst too short");
        unsafe { _mm256_storeu_si256(dst.as_mut_ptr() as *mut __m256i, v) }
    }

    #[inline(always)]
    fn store_stream(self, v: Self::V, dst: &mut [u32]) {
        assert!(dst.len() >= 8, "store_stream: dst too short");
        let ptr = dst.as_mut_ptr();
        if (ptr as usize).is_multiple_of(32) {
            unsafe { _mm256_stream_si256(ptr as *mut __m256i, v) }
        } else {
            unsafe { _mm256_storeu_si256(ptr as *mut __m256i, v) }
        }
    }

    #[inline(always)]
    fn extract(self, v: Self::V, lane: usize) -> u32 {
        assert!(lane < 8, "extract: lane out of range");
        self.to_array(v)[lane]
    }

    #[inline(always)]
    fn add(self, a: Self::V, b: Self::V) -> Self::V {
        unsafe { _mm256_add_epi32(a, b) }
    }

    #[inline(always)]
    fn sub(self, a: Self::V, b: Self::V) -> Self::V {
        unsafe { _mm256_sub_epi32(a, b) }
    }

    #[inline(always)]
    fn mullo(self, a: Self::V, b: Self::V) -> Self::V {
        unsafe { _mm256_mullo_epi32(a, b) }
    }

    #[inline(always)]
    fn mulhi(self, a: Self::V, b: Self::V) -> Self::V {
        unsafe {
            let evens = _mm256_mul_epu32(a, b);
            let odds = _mm256_mul_epu32(_mm256_srli_epi64::<32>(a), _mm256_srli_epi64::<32>(b));
            let hi_evens = _mm256_srli_epi64::<32>(evens);
            _mm256_blend_epi32::<0b1010_1010>(hi_evens, odds)
        }
    }

    #[inline(always)]
    fn and(self, a: Self::V, b: Self::V) -> Self::V {
        unsafe { _mm256_and_si256(a, b) }
    }

    #[inline(always)]
    fn or(self, a: Self::V, b: Self::V) -> Self::V {
        unsafe { _mm256_or_si256(a, b) }
    }

    #[inline(always)]
    fn xor(self, a: Self::V, b: Self::V) -> Self::V {
        unsafe { _mm256_xor_si256(a, b) }
    }

    #[inline(always)]
    fn andnot(self, a: Self::V, b: Self::V) -> Self::V {
        unsafe { _mm256_andnot_si256(a, b) }
    }

    #[inline(always)]
    fn shl(self, v: Self::V, count: u32) -> Self::V {
        debug_assert!(count < 32);
        unsafe { _mm256_sllv_epi32(v, _mm256_set1_epi32(count as i32)) }
    }

    #[inline(always)]
    fn shr(self, v: Self::V, count: u32) -> Self::V {
        debug_assert!(count < 32);
        unsafe { _mm256_srlv_epi32(v, _mm256_set1_epi32(count as i32)) }
    }

    #[inline(always)]
    fn shlv(self, v: Self::V, counts: Self::V) -> Self::V {
        unsafe { _mm256_sllv_epi32(v, counts) }
    }

    #[inline(always)]
    fn shrv(self, v: Self::V, counts: Self::V) -> Self::V {
        unsafe { _mm256_srlv_epi32(v, counts) }
    }

    #[inline(always)]
    fn cmpeq(self, a: Self::V, b: Self::V) -> Self::M {
        unsafe {
            let eq = _mm256_cmpeq_epi32(a, b);
            LaneMask::from_bits(_mm256_movemask_ps(_mm256_castsi256_ps(eq)) as u32)
        }
    }

    #[inline(always)]
    fn cmpne(self, a: Self::V, b: Self::V) -> Self::M {
        self.cmpeq(a, b).not()
    }

    #[inline(always)]
    fn cmplt(self, a: Self::V, b: Self::V) -> Self::M {
        self.cmpgt(b, a)
    }

    #[inline(always)]
    fn cmple(self, a: Self::V, b: Self::V) -> Self::M {
        self.cmpgt(a, b).not()
    }

    #[inline(always)]
    fn cmpgt(self, a: Self::V, b: Self::V) -> Self::M {
        unsafe {
            // AVX2 only has signed compares; flip the sign bit for unsigned.
            let bias = _mm256_set1_epi32(i32::MIN);
            let gt = _mm256_cmpgt_epi32(_mm256_xor_si256(a, bias), _mm256_xor_si256(b, bias));
            LaneMask::from_bits(_mm256_movemask_ps(_mm256_castsi256_ps(gt)) as u32)
        }
    }

    #[inline(always)]
    fn cmpge(self, a: Self::V, b: Self::V) -> Self::M {
        self.cmplt(a, b).not()
    }

    #[inline(always)]
    fn blend(self, m: Self::M, on_true: Self::V, on_false: Self::V) -> Self::V {
        let vm = self.mask_vec(m);
        unsafe { _mm256_blendv_epi8(on_false, on_true, vm) }
    }

    #[inline(always)]
    fn permute(self, v: Self::V, idx: Self::V) -> Self::V {
        // vpermd uses the low 3 bits of each index lane: idx % 8.
        unsafe { _mm256_permutevar8x32_epi32(v, idx) }
    }

    #[inline(always)]
    fn selective_store(self, dst: &mut [u32], m: Self::M, v: Self::V) -> usize {
        let count = m.count();
        assert!(dst.len() >= count, "selective_store: dst too short");
        unsafe {
            let perm =
                _mm256_loadu_si256(COMPRESS_PERM[m.bits() as usize].as_ptr() as *const __m256i);
            let packed = _mm256_permutevar8x32_epi32(v, perm);
            let store_mask = self.first_n_vec(count);
            _mm256_maskstore_epi32(dst.as_mut_ptr() as *mut i32, store_mask, packed);
        }
        count
    }

    #[inline(always)]
    fn selective_load(self, v: Self::V, m: Self::M, src: &[u32]) -> Self::V {
        let count = m.count();
        assert!(src.len() >= count, "selective_load: src too short");
        unsafe {
            let load_mask = self.first_n_vec(count);
            let packed = _mm256_maskload_epi32(src.as_ptr() as *const i32, load_mask);
            let perm =
                _mm256_loadu_si256(EXPAND_PERM[m.bits() as usize].as_ptr() as *const __m256i);
            let spread = _mm256_permutevar8x32_epi32(packed, perm);
            let vm = self.mask_vec(m);
            _mm256_blendv_epi8(v, spread, vm)
        }
    }

    #[inline(always)]
    fn gather(self, src: &[u32], idx: Self::V) -> Self::V {
        self.assert_in_bounds(idx, src.len(), "gather");
        unsafe { _mm256_i32gather_epi32::<4>(src.as_ptr() as *const i32, idx) }
    }

    #[inline(always)]
    fn gather_masked(self, prev: Self::V, m: Self::M, src: &[u32], idx: Self::V) -> Self::V {
        self.assert_in_bounds_masked(m, idx, src.len(), "gather_masked");
        let vm = self.mask_vec(m);
        // Zero out inactive indexes so the hardware never dereferences them.
        let safe_idx = self.and(idx, vm);
        unsafe { _mm256_mask_i32gather_epi32::<4>(prev, src.as_ptr() as *const i32, safe_idx, vm) }
    }

    #[inline(always)]
    fn scatter(self, dst: &mut [u32], idx: Self::V, v: Self::V) {
        // Haswell has no scatter instruction: emulated with scalar stores.
        let idx = self.to_array(idx);
        let val = self.to_array(v);
        for i in 0..8 {
            dst[idx[i] as usize] = val[i];
        }
    }

    #[inline(always)]
    fn scatter_masked(self, dst: &mut [u32], m: Self::M, idx: Self::V, v: Self::V) {
        let idx = self.to_array(idx);
        let val = self.to_array(v);
        for i in 0..8 {
            if m.get(i) {
                dst[idx[i] as usize] = val[i];
            }
        }
    }

    #[inline(always)]
    fn gather_pairs(self, src: &[u64], idx: Self::V) -> (Self::V, Self::V) {
        self.assert_in_bounds(idx, src.len(), "gather_pairs");
        unsafe {
            let idx_lo = _mm256_castsi256_si128(idx);
            let idx_hi = _mm256_extracti128_si256::<1>(idx);
            let base = src.as_ptr() as *const i64;
            let lo = _mm256_i32gather_epi64::<8>(base, idx_lo);
            let hi = _mm256_i32gather_epi64::<8>(base, idx_hi);
            let ksel = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
            let vsel = _mm256_setr_epi32(1, 3, 5, 7, 1, 3, 5, 7);
            let ka = _mm256_permutevar8x32_epi32(lo, ksel);
            let kb = _mm256_permutevar8x32_epi32(hi, ksel);
            let va = _mm256_permutevar8x32_epi32(lo, vsel);
            let vb = _mm256_permutevar8x32_epi32(hi, vsel);
            let keys = _mm256_blend_epi32::<0b1111_0000>(ka, kb);
            let vals = _mm256_blend_epi32::<0b1111_0000>(va, vb);
            (keys, vals)
        }
    }

    #[inline(always)]
    fn gather_pairs_masked(
        self,
        prev: (Self::V, Self::V),
        m: Self::M,
        src: &[u64],
        idx: Self::V,
    ) -> (Self::V, Self::V) {
        self.assert_in_bounds_masked(m, idx, src.len(), "gather_pairs_masked");
        // Software fallback: gather pairs per active lane (Haswell-era code
        // would structure this identically around the 64-bit masked gather;
        // we keep the scalar loop for clarity since payload extraction
        // dominates either way).
        let idxs = self.to_array(idx);
        let mut keys = self.to_array(prev.0);
        let mut vals = self.to_array(prev.1);
        for i in 0..8 {
            if m.get(i) {
                let pair = src[idxs[i] as usize];
                keys[i] = pair as u32;
                vals[i] = (pair >> 32) as u32;
            }
        }
        (self.load(&keys), self.load(&vals))
    }

    #[inline(always)]
    fn scatter_pairs(self, dst: &mut [u64], idx: Self::V, keys: Self::V, vals: Self::V) {
        let idxs = self.to_array(idx);
        let k = self.to_array(keys);
        let v = self.to_array(vals);
        for i in 0..8 {
            dst[idxs[i] as usize] = u64::from(k[i]) | (u64::from(v[i]) << 32);
        }
    }

    #[inline(always)]
    fn scatter_pairs_masked(
        self,
        dst: &mut [u64],
        m: Self::M,
        idx: Self::V,
        keys: Self::V,
        vals: Self::V,
    ) {
        let idxs = self.to_array(idx);
        let k = self.to_array(keys);
        let v = self.to_array(vals);
        for i in 0..8 {
            if m.get(i) {
                dst[idxs[i] as usize] = u64::from(k[i]) | (u64::from(v[i]) << 32);
            }
        }
    }

    #[inline(always)]
    fn load_pairs(self, src: &[u64]) -> (Self::V, Self::V) {
        assert!(src.len() >= 8, "load_pairs: src too short");
        unsafe {
            let lo = _mm256_loadu_si256(src.as_ptr() as *const __m256i);
            let hi = _mm256_loadu_si256(src.as_ptr().add(4) as *const __m256i);
            let ksel = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
            let vsel = _mm256_setr_epi32(1, 3, 5, 7, 1, 3, 5, 7);
            let ka = _mm256_permutevar8x32_epi32(lo, ksel);
            let kb = _mm256_permutevar8x32_epi32(hi, ksel);
            let va = _mm256_permutevar8x32_epi32(lo, vsel);
            let vb = _mm256_permutevar8x32_epi32(hi, vsel);
            (
                _mm256_blend_epi32::<0b1111_0000>(ka, kb),
                _mm256_blend_epi32::<0b1111_0000>(va, vb),
            )
        }
    }

    #[inline(always)]
    fn gather_bytes(self, src: &[u8], idx: Self::V) -> Self::V {
        assert!(
            src.len().is_multiple_of(4),
            "gather_bytes: src length must be a multiple of 4"
        );
        self.assert_in_bounds(idx, src.len(), "gather_bytes");
        unsafe {
            let word_idx = _mm256_srlv_epi32(idx, _mm256_set1_epi32(2));
            let words = _mm256_i32gather_epi32::<4>(src.as_ptr() as *const i32, word_idx);
            let shift = _mm256_sllv_epi32(
                _mm256_and_si256(idx, _mm256_set1_epi32(3)),
                _mm256_set1_epi32(3),
            );
            _mm256_and_si256(_mm256_srlv_epi32(words, shift), _mm256_set1_epi32(0xFF))
        }
    }

    #[inline(always)]
    fn scatter_bytes(self, dst: &mut [u8], idx: Self::V, v: Self::V) {
        assert!(
            dst.len().is_multiple_of(4),
            "scatter_bytes: dst length must be a multiple of 4"
        );
        let idxs = self.to_array(idx);
        let vals = self.to_array(v);
        for i in 0..8 {
            dst[idxs[i] as usize] = vals[i] as u8;
        }
    }

    #[inline(always)]
    fn conflict(self, v: Self::V) -> Self::V {
        let lanes = self.to_array(v);
        let mut r = [0u32; 8];
        for i in 1..8 {
            let mut bits = 0u32;
            for (j, &lane) in lanes.iter().enumerate().take(i) {
                bits |= u32::from(lane == lanes[i]) << j;
            }
            r[i] = bits;
        }
        self.load(&r)
    }

    #[inline(always)]
    fn reduce_add_u64(self, v: Self::V) -> u64 {
        self.to_array(v).iter().map(|&x| u64::from(x)).sum()
    }
}
