//! The backend-generic SIMD operation set.

use core::fmt::Debug;

use crate::mask::LaneMask;

/// Mask operations required of a backend's mask type.
///
/// Every backend uses [`LaneMask<W>`](LaneMask) with its own `W`; this trait
/// exists so kernels generic over [`Simd`] can manipulate masks without
/// naming the width.
pub trait MaskLike: Copy + Eq + Debug + Send + Sync + 'static {
    /// Number of lanes covered by the mask.
    const LANES: usize;
    /// No lanes active.
    fn none() -> Self;
    /// All lanes active.
    fn all() -> Self;
    /// From raw bits (bit `i` = lane `i`); out-of-range bits discarded.
    fn from_bits(bits: u32) -> Self;
    /// First `n` lanes active.
    fn first_n(n: usize) -> Self;
    /// Raw bits.
    fn bits(self) -> u32;
    /// Number of active lanes.
    fn count(self) -> usize;
    /// At least one lane active.
    fn any(self) -> bool;
    /// No lanes active.
    fn is_empty(self) -> bool;
    /// Every lane active.
    fn all_set(self) -> bool;
    /// Whether lane `i` is active.
    fn get(self, lane: usize) -> bool;
    /// Copy with lane `i` set to `value`.
    fn with(self, lane: usize, value: bool) -> Self;
    /// Lowest active lane.
    fn first_set(self) -> Option<usize>;
    /// Lane-wise AND.
    fn and(self, other: Self) -> Self;
    /// Lane-wise OR.
    fn or(self, other: Self) -> Self;
    /// Lane-wise XOR.
    fn xor(self, other: Self) -> Self;
    /// Lane-wise NOT.
    fn not(self) -> Self;
    /// `!self & other`.
    fn andnot(self, other: Self) -> Self;
    /// Iterate over the indexes of active lanes, lowest first.
    fn iter_set(self) -> SetLanes {
        SetLanes(self.bits())
    }
}

/// Iterator over the set lanes of a mask, lowest first.
#[derive(Debug, Clone)]
pub struct SetLanes(u32);

impl Iterator for SetLanes {
    type Item = usize;
    #[inline(always)]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let lane = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(lane)
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for SetLanes {}

impl<const W: usize> MaskLike for LaneMask<W> {
    const LANES: usize = W;
    #[inline(always)]
    fn none() -> Self {
        LaneMask::none()
    }
    #[inline(always)]
    fn all() -> Self {
        LaneMask::all()
    }
    #[inline(always)]
    fn from_bits(bits: u32) -> Self {
        LaneMask::from_bits(bits)
    }
    #[inline(always)]
    fn first_n(n: usize) -> Self {
        LaneMask::first_n(n)
    }
    #[inline(always)]
    fn bits(self) -> u32 {
        LaneMask::bits(self)
    }
    #[inline(always)]
    fn count(self) -> usize {
        LaneMask::count(self)
    }
    #[inline(always)]
    fn any(self) -> bool {
        LaneMask::any(self)
    }
    #[inline(always)]
    fn is_empty(self) -> bool {
        LaneMask::is_empty(self)
    }
    #[inline(always)]
    fn all_set(self) -> bool {
        LaneMask::all_set(self)
    }
    #[inline(always)]
    fn get(self, lane: usize) -> bool {
        LaneMask::get(self, lane)
    }
    #[inline(always)]
    fn with(self, lane: usize, value: bool) -> Self {
        LaneMask::with(self, lane, value)
    }
    #[inline(always)]
    fn first_set(self) -> Option<usize> {
        LaneMask::first_set(self)
    }
    #[inline(always)]
    fn and(self, other: Self) -> Self {
        LaneMask::and(self, other)
    }
    #[inline(always)]
    fn or(self, other: Self) -> Self {
        LaneMask::or(self, other)
    }
    #[inline(always)]
    fn xor(self, other: Self) -> Self {
        LaneMask::xor(self, other)
    }
    #[inline(always)]
    fn not(self) -> Self {
        LaneMask::not(self)
    }
    #[inline(always)]
    fn andnot(self, other: Self) -> Self {
        LaneMask::andnot(self, other)
    }
}

/// A SIMD backend operating on vectors of `LANES` 32-bit lanes.
///
/// Implementors are zero-sized *capability tokens*: constructing one proves
/// (at runtime) that the instruction-set extensions its operations need are
/// available, so the operations themselves are safe to call.
///
/// # Semantics shared by every backend
///
/// * Scatters resolve duplicate indexes with **rightmost-lane-wins** (the
///   paper's Figure 4 semantics, matching Intel hardware scatters).
/// * Selective loads/stores move the *active* lanes, in ascending lane
///   order, to/from a contiguous memory region (Figures 1 and 2).
/// * All memory operations are bounds-checked and panic on out-of-range
///   indexes (checked over the active lanes only, for masked variants).
/// * Comparisons are unsigned.
pub trait Simd: Copy + Send + Sync + 'static {
    /// Number of 32-bit lanes per vector.
    const LANES: usize;
    /// Vector register type (`LANES` × `u32`).
    type V: Copy + Debug + Send + Sync;
    /// Mask type (always `LaneMask<{Self::LANES}>`).
    type M: MaskLike;

    /// Human-readable backend name (e.g. `"avx512"`).
    fn name(self) -> &'static str;

    /// Run `f` inside a stack frame compiled with this backend's target
    /// features enabled, so that the monomorphized kernel and all the
    /// intrinsics it uses can be inlined together.
    ///
    /// Wrap every hot kernel invocation in this.
    fn vectorize<R>(self, f: impl FnOnce() -> R) -> R;

    // ------------------------------------------------------------------
    // Construction and lane access
    // ------------------------------------------------------------------

    /// Broadcast `x` to every lane.
    fn splat(self, x: u32) -> Self::V;

    /// All-zero vector.
    #[inline(always)]
    fn zero(self) -> Self::V {
        self.splat(0)
    }

    /// The vector `[0, 1, 2, ..., LANES-1]`.
    fn iota(self) -> Self::V;

    /// Load `LANES` consecutive values from `src[0..LANES]`.
    ///
    /// # Panics
    /// If `src.len() < LANES`.
    fn load(self, src: &[u32]) -> Self::V;

    /// Store all lanes to `dst[0..LANES]`.
    ///
    /// # Panics
    /// If `dst.len() < LANES`.
    fn store(self, v: Self::V, dst: &mut [u32]);

    /// Store all lanes with a non-temporal (streaming) hint when the
    /// backend supports it and `dst` is 64-byte aligned; otherwise a plain
    /// store. Used when materializing output that will not be re-read soon
    /// (paper Section 4).
    #[inline(always)]
    fn store_stream(self, v: Self::V, dst: &mut [u32]) {
        self.store(v, dst);
    }

    /// Read one lane.
    ///
    /// # Panics
    /// If `lane >= LANES`.
    fn extract(self, v: Self::V, lane: usize) -> u32;

    // ------------------------------------------------------------------
    // Arithmetic and bitwise logic (lane-wise, wrapping)
    // ------------------------------------------------------------------

    /// Lane-wise wrapping addition.
    fn add(self, a: Self::V, b: Self::V) -> Self::V;
    /// Lane-wise wrapping subtraction.
    fn sub(self, a: Self::V, b: Self::V) -> Self::V;
    /// Lane-wise wrapping multiplication, low 32 bits (`×↓` in the paper).
    fn mullo(self, a: Self::V, b: Self::V) -> Self::V;
    /// Lane-wise unsigned multiplication, high 32 bits (`×↑` in the paper;
    /// the core of multiplicative hashing).
    fn mulhi(self, a: Self::V, b: Self::V) -> Self::V;
    /// Lane-wise AND.
    fn and(self, a: Self::V, b: Self::V) -> Self::V;
    /// Lane-wise OR.
    fn or(self, a: Self::V, b: Self::V) -> Self::V;
    /// Lane-wise XOR.
    fn xor(self, a: Self::V, b: Self::V) -> Self::V;
    /// `!a & b`, lane-wise.
    fn andnot(self, a: Self::V, b: Self::V) -> Self::V;
    /// Shift every lane left by `count` bits (`count < 32`).
    fn shl(self, v: Self::V, count: u32) -> Self::V;
    /// Logical right shift of every lane by `count` bits (`count < 32`).
    fn shr(self, v: Self::V, count: u32) -> Self::V;
    /// Shift lane `i` left by `counts[i]` bits (each `< 32`).
    fn shlv(self, v: Self::V, counts: Self::V) -> Self::V;
    /// Logical right shift of lane `i` by `counts[i]` bits (each `< 32`).
    fn shrv(self, v: Self::V, counts: Self::V) -> Self::V;

    // ------------------------------------------------------------------
    // Comparisons (unsigned) and selection
    // ------------------------------------------------------------------

    /// `a == b` per lane.
    fn cmpeq(self, a: Self::V, b: Self::V) -> Self::M;
    /// `a != b` per lane.
    fn cmpne(self, a: Self::V, b: Self::V) -> Self::M;
    /// `a < b` per lane (unsigned).
    fn cmplt(self, a: Self::V, b: Self::V) -> Self::M;
    /// `a <= b` per lane (unsigned).
    fn cmple(self, a: Self::V, b: Self::V) -> Self::M;
    /// `a > b` per lane (unsigned).
    fn cmpgt(self, a: Self::V, b: Self::V) -> Self::M;
    /// `a >= b` per lane (unsigned).
    fn cmpge(self, a: Self::V, b: Self::V) -> Self::M;

    /// Lane-wise select: `m ? on_true : on_false` (the paper's
    /// `m ? x : y` vector blend).
    fn blend(self, m: Self::M, on_true: Self::V, on_false: Self::V) -> Self::V;

    /// Permute lanes: result lane `i` = `v[idx[i] % LANES]`.
    fn permute(self, v: Self::V, idx: Self::V) -> Self::V;

    /// Reverse lane order.
    #[inline(always)]
    fn reverse(self, v: Self::V) -> Self::V {
        let rev = self.sub(self.splat(Self::LANES as u32 - 1), self.iota());
        self.permute(v, rev)
    }

    // ------------------------------------------------------------------
    // Fundamental operations (paper Section 3)
    // ------------------------------------------------------------------

    /// **Selective store** (Figure 1): write the active lanes of `v`, in
    /// ascending lane order, to `dst[0..m.count()]`. Returns the number of
    /// values written.
    ///
    /// # Panics
    /// If `dst.len() < m.count()`.
    fn selective_store(self, dst: &mut [u32], m: Self::M, v: Self::V) -> usize;

    /// **Selective load** (Figure 2): read `m.count()` values from
    /// `src[0..m.count()]` into the active lanes of `v` in ascending lane
    /// order; inactive lanes keep their previous contents.
    ///
    /// # Panics
    /// If `src.len() < m.count()`.
    fn selective_load(self, v: Self::V, m: Self::M, src: &[u32]) -> Self::V;

    /// **Gather** (Figure 3): lane `i` = `src[idx[i]]`.
    ///
    /// # Panics
    /// If any index is out of bounds.
    fn gather(self, src: &[u32], idx: Self::V) -> Self::V;

    /// Selective gather: active lanes gather `src[idx[i]]`; inactive lanes
    /// keep the contents of `prev`.
    ///
    /// # Panics
    /// If any *active* index is out of bounds.
    fn gather_masked(self, prev: Self::V, m: Self::M, src: &[u32], idx: Self::V) -> Self::V;

    /// **Scatter** (Figure 4): `dst[idx[i]] = v[i]` for every lane, in
    /// ascending lane order (rightmost lane wins on duplicate indexes).
    ///
    /// # Panics
    /// If any index is out of bounds.
    fn scatter(self, dst: &mut [u32], idx: Self::V, v: Self::V);

    /// Selective scatter over the active lanes only.
    ///
    /// # Panics
    /// If any *active* index is out of bounds.
    fn scatter_masked(self, dst: &mut [u32], m: Self::M, idx: Self::V, v: Self::V);

    /// Gather interleaved key/payload pairs: lane `i` reads `src[idx[i]]`
    /// and splits it into `(low 32 bits, high 32 bits)`.
    ///
    /// This is the paper's "fewer wider gathers" optimization (Section 5.1,
    /// Appendix E) for hash tables stored in interleaved layout.
    ///
    /// # Panics
    /// If any index is out of bounds.
    fn gather_pairs(self, src: &[u64], idx: Self::V) -> (Self::V, Self::V);

    /// Masked variant of [`gather_pairs`](Simd::gather_pairs); inactive
    /// lanes keep `prev.0` / `prev.1`.
    fn gather_pairs_masked(
        self,
        prev: (Self::V, Self::V),
        m: Self::M,
        src: &[u64],
        idx: Self::V,
    ) -> (Self::V, Self::V);

    /// Scatter interleaved pairs: `dst[idx[i]] = keys[i] | (vals[i] << 32)`
    /// in ascending lane order.
    ///
    /// # Panics
    /// If any index is out of bounds.
    fn scatter_pairs(self, dst: &mut [u64], idx: Self::V, keys: Self::V, vals: Self::V);

    /// Masked variant of [`scatter_pairs`](Simd::scatter_pairs).
    fn scatter_pairs_masked(
        self,
        dst: &mut [u64],
        m: Self::M,
        idx: Self::V,
        keys: Self::V,
        vals: Self::V,
    );

    /// Load `LANES` consecutive interleaved pairs from `src[0..LANES]` and
    /// split them into `(low 32 bits, high 32 bits)` vectors — the
    /// deinterleaving counterpart of a plain vector load, used when
    /// flushing pair-staging buffers.
    ///
    /// # Panics
    /// If `src.len() < LANES`.
    fn load_pairs(self, src: &[u64]) -> (Self::V, Self::V);

    /// Gather bytes, zero-extended: lane `i` = `src[idx[i]] as u32`.
    ///
    /// Used for compressed 8-bit histogram counts (paper Section 7.1).
    ///
    /// # Panics
    /// If any index is out of bounds or `src.len()` is not a multiple of 4
    /// (backends emulating byte gathers read whole 32-bit words).
    fn gather_bytes(self, src: &[u8], idx: Self::V) -> Self::V;

    /// Scatter the low byte of each lane: `dst[idx[i]] = v[i] as u8`.
    ///
    /// Backends without hardware byte scatters emulate this with a
    /// read-modify-write of 32-bit words, so **two active lanes must not
    /// target the same aligned 4-byte word** (checked with `debug_assert`).
    /// Callers lay out per-lane byte regions to guarantee this.
    ///
    /// # Panics
    /// If any index is out of bounds or `dst.len()` is not a multiple of 4.
    fn scatter_bytes(self, dst: &mut [u8], idx: Self::V, v: Self::V);

    // ------------------------------------------------------------------
    // Conflict detection
    // ------------------------------------------------------------------

    /// For each lane `i`, a bitmask of the lanes `j < i` holding the same
    /// value (`vpconflictd` semantics). Lane 0 is always 0.
    fn conflict(self, v: Self::V) -> Self::V;

    // ------------------------------------------------------------------
    // Reductions and helpers
    // ------------------------------------------------------------------

    /// Sum of all lanes, widened to `u64` (no wrapping).
    fn reduce_add_u64(self, v: Self::V) -> u64;

    /// Per-lane population count (SWAR; backends may override with native
    /// instructions).
    #[inline(always)]
    fn popcount_lanes(self, v: Self::V) -> Self::V {
        let m1 = self.splat(0x5555_5555);
        let m2 = self.splat(0x3333_3333);
        let m4 = self.splat(0x0f0f_0f0f);
        let v = self.sub(v, self.and(self.shr(v, 1), m1));
        let v = self.add(self.and(v, m2), self.and(self.shr(v, 2), m2));
        let v = self.and(self.add(v, self.shr(v, 4)), m4);
        self.shr(self.mullo(v, self.splat(0x0101_0101)), 24)
    }
}
