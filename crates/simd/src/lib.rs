//! SIMD substrate for vectorized in-memory database operators.
//!
//! This crate implements the *fundamental vector operations* defined in
//! Section 3 of "Rethinking SIMD Vectorization for In-Memory Databases"
//! (SIGMOD 2015):
//!
//! * **selective store** (Figure 1) — write the active subset of vector
//!   lanes to memory contiguously,
//! * **selective load** (Figure 2) — load contiguous memory into the active
//!   subset of vector lanes, leaving inactive lanes untouched,
//! * **gather** (Figure 3) — load from non-contiguous locations given a
//!   vector of indexes,
//! * **scatter** (Figure 4) — store to non-contiguous locations; when
//!   multiple lanes point to the same location the *rightmost*
//!   (highest-numbered) lane wins,
//!
//! plus the arithmetic, comparison, mask, and permutation operations needed
//! to express the paper's operator kernels entirely as data flow.
//!
//! # Backends
//!
//! | Backend | Lanes (`W`) | Hardware model |
//! |---|---|---|
//! | [`Portable<W>`](Portable) | any power of two ≤ 16 | executable reference semantics, plain safe Rust |
//! | [`Avx2`] | 8 | "Haswell": hardware gathers, **no** scatters, selective load/store emulated with permutation tables (paper Appendix C/D) |
//! | [`Avx512`] | 16 | "Xeon Phi / AVX-512": hardware gathers, scatters, compress (selective store), expand (selective load), `vpconflictd` |
//!
//! Operator kernels are written once, generically over the [`Simd`] trait,
//! and instantiated per backend. Use [`Simd::vectorize`] around a kernel
//! invocation so the whole monomorphized kernel is compiled inside a
//! `#[target_feature]`-enabled frame and the intrinsics inline.
//!
//! # Example
//!
//! ```
//! use rsv_simd::{Simd, Portable, LaneMask};
//!
//! let s = Portable::<8>::new();
//! let data: Vec<u32> = (0..8).map(|x| x * 10).collect();
//! let idx = s.load(&[7, 0, 3, 1, 4, 2, 6, 5]);
//! let gathered = s.gather(&data, idx);
//! let mut out = [0u32; 8];
//! s.store(gathered, &mut out);
//! assert_eq!(out, [70, 0, 30, 10, 40, 20, 60, 50]);
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

mod backend;
mod mask;
mod portable;
mod simd_trait;

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "x86_64")]
mod avx512;

pub use backend::Backend;
pub use mask::LaneMask;
pub use portable::Portable;
pub use simd_trait::{MaskLike, SetLanes, Simd};

#[cfg(target_arch = "x86_64")]
pub use avx2::Avx2;
#[cfg(target_arch = "x86_64")]
pub use avx512::Avx512;

/// The vector width (number of 32-bit lanes) the paper's Xeon Phi platform
/// uses, and the width of the [`Avx512`] and default [`Portable`] backends.
pub const PHI_LANES: usize = 16;

/// The vector width of the paper's Haswell platform ([`Avx2`] backend).
pub const HASWELL_LANES: usize = 8;
