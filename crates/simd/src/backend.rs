//! Runtime backend selection.

use crate::portable::Portable;

#[cfg(target_arch = "x86_64")]
use crate::{avx2::Avx2, avx512::Avx512};

/// The SIMD backends available at runtime.
///
/// Operator crates write kernels generically over [`crate::Simd`]; callers
/// pick a backend with [`Backend::best`] (or enumerate
/// [`Backend::all_available`] for experiments) and match on the variant to
/// instantiate the kernel:
///
/// ```
/// use rsv_simd::{Backend, Simd};
///
/// fn sum(backend: Backend, data: &[u32; 16]) -> u64 {
///     fn kernel<S: Simd>(s: S, data: &[u32]) -> u64 {
///         s.vectorize(|| s.reduce_add_u64(s.load(data)))
///     }
///     match backend {
///         #[cfg(target_arch = "x86_64")]
///         Backend::Avx512(s) => kernel(s, data),
///         #[cfg(target_arch = "x86_64")]
///         Backend::Avx2(s) => kernel(s, data),
///         Backend::Portable(s) => kernel(s, data),
///     }
/// }
///
/// assert_eq!(sum(Backend::best(), &[1; 16]), 16);
/// ```
#[derive(Clone, Copy, Debug)]
pub enum Backend {
    /// AVX-512 (16 lanes): hardware gather/scatter/compress/expand/conflict.
    #[cfg(target_arch = "x86_64")]
    Avx512(Avx512),
    /// AVX2 (8 lanes): hardware gather, everything else emulated.
    #[cfg(target_arch = "x86_64")]
    Avx2(Avx2),
    /// Portable reference (16 lanes).
    Portable(Portable<16>),
}

impl Backend {
    /// The fastest backend available on this CPU (respecting
    /// [`Backend::forced`]).
    pub fn best() -> Backend {
        Self::all_available()[0]
    }

    /// Every backend available on this CPU, fastest first.
    ///
    /// When the `RSV_FORCE_BACKEND` environment variable names a backend
    /// (`avx512`, `avx2` or `portable`), only that backend is returned —
    /// the CI lane that forces `portable` uses this to make every
    /// cross-backend test exercise the 16-lane portable code paths on
    /// runners without AVX-512.
    ///
    /// # Panics
    /// If `RSV_FORCE_BACKEND` names a backend this CPU does not support
    /// (a silent fallback would defeat the forcing).
    pub fn all_available() -> Vec<Backend> {
        let mut v = Vec::new();
        #[cfg(target_arch = "x86_64")]
        {
            if let Some(s) = Avx512::new() {
                v.push(Backend::Avx512(s));
            }
            if let Some(s) = Avx2::new() {
                v.push(Backend::Avx2(s));
            }
        }
        v.push(Backend::Portable(Portable::new()));
        if let Some(name) = Self::forced() {
            v.retain(|b| b.name() == name);
            assert!(
                !v.is_empty(),
                "RSV_FORCE_BACKEND={name} is not available on this CPU"
            );
        }
        v
    }

    /// The backend name forced via `RSV_FORCE_BACKEND`, if any.
    pub fn forced() -> Option<&'static str> {
        use std::sync::OnceLock;
        static FORCED: OnceLock<Option<String>> = OnceLock::new();
        FORCED
            .get_or_init(|| match std::env::var("RSV_FORCE_BACKEND") {
                Ok(s) if !s.is_empty() => Some(s.to_ascii_lowercase()),
                _ => None,
            })
            .as_deref()
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            #[cfg(target_arch = "x86_64")]
            Backend::Avx512(_) => "avx512",
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2(_) => "avx2",
            Backend::Portable(_) => "portable",
        }
    }

    /// Number of 32-bit lanes of this backend's vectors.
    pub fn lanes(&self) -> usize {
        match self {
            #[cfg(target_arch = "x86_64")]
            Backend::Avx512(_) => 16,
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2(_) => 8,
            Backend::Portable(_) => 16,
        }
    }
}

/// Instantiate a generic SIMD expression for a [`Backend`] value.
///
/// `$s` is bound to the backend token inside `$body`:
///
/// ```
/// use rsv_simd::{dispatch, Backend, Simd};
/// let backend = Backend::best();
/// let lanes = dispatch!(backend, s => { S::LANES });
/// assert_eq!(lanes, backend.lanes());
/// ```
#[macro_export]
macro_rules! dispatch {
    ($backend:expr, $s:ident => $body:block) => {
        match $backend {
            #[cfg(target_arch = "x86_64")]
            $crate::Backend::Avx512($s) => {
                #[allow(dead_code)]
                type S = $crate::Avx512;
                $body
            }
            #[cfg(target_arch = "x86_64")]
            $crate::Backend::Avx2($s) => {
                #[allow(dead_code)]
                type S = $crate::Avx2;
                $body
            }
            $crate::Backend::Portable($s) => {
                #[allow(dead_code)]
                type S = $crate::Portable<16>;
                $body
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_is_first_available() {
        let all = Backend::all_available();
        assert!(!all.is_empty());
        assert_eq!(Backend::best().name(), all[0].name());
        // The portable backend is always last and always present.
        assert_eq!(all.last().unwrap().name(), "portable");
    }

    #[test]
    fn lanes_match_names() {
        for b in Backend::all_available() {
            match b.name() {
                "avx512" | "portable" => assert_eq!(b.lanes(), 16),
                "avx2" => assert_eq!(b.lanes(), 8),
                other => panic!("unknown backend {other}"),
            }
        }
    }
}
