//! Lane masks shared by every backend.

use core::fmt;

/// A boolean mask over `W` vector lanes, stored as a bitmask.
///
/// Bit `i` corresponds to lane `i`. The paper treats masks as first-class
/// scalar-register values (Xeon Phi `kN` mask registers); on AVX-512 this
/// maps 1:1 onto `__mmask16`, on AVX2 it is materialized from `movemask`,
/// and the portable backend manipulates it directly.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaneMask<const W: usize>(u32);

impl<const W: usize> LaneMask<W> {
    const VALID: u32 = if W == 32 { u32::MAX } else { (1u32 << W) - 1 };

    /// Mask with no lanes active.
    #[inline(always)]
    pub const fn none() -> Self {
        LaneMask(0)
    }

    /// Mask with all `W` lanes active.
    #[inline(always)]
    pub const fn all() -> Self {
        LaneMask(Self::VALID)
    }

    /// Build a mask from raw bits; bits at positions `>= W` are discarded.
    #[inline(always)]
    pub const fn from_bits(bits: u32) -> Self {
        LaneMask(bits & Self::VALID)
    }

    /// Mask with the first `n` lanes (lanes `0..n`) active.
    #[inline(always)]
    pub const fn first_n(n: usize) -> Self {
        debug_assert!(n <= W);
        if n >= 32 {
            LaneMask(Self::VALID)
        } else {
            LaneMask(((1u32 << n) - 1) & Self::VALID)
        }
    }

    /// The raw bitmask (bit `i` = lane `i`).
    #[inline(always)]
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Number of active lanes.
    #[inline(always)]
    pub const fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` if at least one lane is active.
    #[inline(always)]
    pub const fn any(self) -> bool {
        self.0 != 0
    }

    /// `true` if no lane is active.
    #[inline(always)]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// `true` if every one of the `W` lanes is active.
    #[inline(always)]
    pub const fn all_set(self) -> bool {
        self.0 == Self::VALID
    }

    /// Whether lane `i` is active.
    #[inline(always)]
    pub const fn get(self, lane: usize) -> bool {
        debug_assert!(lane < W);
        (self.0 >> lane) & 1 == 1
    }

    /// Return a copy with lane `i` set to `value`.
    #[inline(always)]
    pub const fn with(self, lane: usize, value: bool) -> Self {
        debug_assert!(lane < W);
        if value {
            LaneMask(self.0 | (1 << lane))
        } else {
            LaneMask(self.0 & !(1 << lane))
        }
    }

    /// Index of the lowest active lane, if any.
    #[inline(always)]
    pub const fn first_set(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// Lane-wise AND.
    #[inline(always)]
    pub const fn and(self, other: Self) -> Self {
        LaneMask(self.0 & other.0)
    }

    /// Lane-wise OR.
    #[inline(always)]
    pub const fn or(self, other: Self) -> Self {
        LaneMask(self.0 | other.0)
    }

    /// Lane-wise XOR.
    #[inline(always)]
    pub const fn xor(self, other: Self) -> Self {
        LaneMask(self.0 ^ other.0)
    }

    /// Lane-wise NOT (within the `W` valid lanes).
    #[inline(always)]
    pub const fn not(self) -> Self {
        LaneMask(!self.0 & Self::VALID)
    }

    /// `!self & other` — the lanes active in `other` but not in `self`.
    #[inline(always)]
    pub const fn andnot(self, other: Self) -> Self {
        LaneMask(!self.0 & other.0)
    }

    /// Iterate over the indexes of active lanes, lowest first.
    #[inline]
    pub fn iter_set(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        core::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let lane = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(lane)
            }
        })
    }
}

impl<const W: usize> fmt::Debug for LaneMask<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LaneMask<{W}>(")?;
        for lane in 0..W {
            write!(f, "{}", u8::from(self.get(lane)))?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_bits() {
        let m = LaneMask::<8>::from_bits(0b1010_1010);
        assert_eq!(m.bits(), 0b1010_1010);
        assert_eq!(m.count(), 4);
        assert!(m.any());
        assert!(!m.all_set());
        assert!(!m.is_empty());
        // bits beyond W are discarded
        let m = LaneMask::<8>::from_bits(0xFFFF_FF00);
        assert!(m.is_empty());
    }

    #[test]
    fn all_none_first_n() {
        assert_eq!(LaneMask::<16>::all().bits(), 0xFFFF);
        assert_eq!(LaneMask::<16>::none().bits(), 0);
        assert_eq!(LaneMask::<16>::first_n(0).bits(), 0);
        assert_eq!(LaneMask::<16>::first_n(3).bits(), 0b111);
        assert_eq!(LaneMask::<16>::first_n(16).bits(), 0xFFFF);
    }

    #[test]
    fn lane_accessors() {
        let m = LaneMask::<16>::from_bits(0b100);
        assert!(m.get(2));
        assert!(!m.get(0));
        assert_eq!(m.first_set(), Some(2));
        assert_eq!(LaneMask::<16>::none().first_set(), None);
        let m2 = m.with(0, true).with(2, false);
        assert_eq!(m2.bits(), 0b001);
    }

    #[test]
    fn boolean_algebra() {
        let a = LaneMask::<8>::from_bits(0b1100);
        let b = LaneMask::<8>::from_bits(0b1010);
        assert_eq!(a.and(b).bits(), 0b1000);
        assert_eq!(a.or(b).bits(), 0b1110);
        assert_eq!(a.xor(b).bits(), 0b0110);
        assert_eq!(a.not().bits(), 0b1111_0011);
        assert_eq!(a.andnot(b).bits(), 0b0010);
    }

    #[test]
    fn iter_set_visits_low_to_high() {
        let m = LaneMask::<16>::from_bits(0b1000_0000_0101);
        let lanes: Vec<usize> = m.iter_set().collect();
        assert_eq!(lanes, vec![0, 2, 11]);
    }
}
