//! AVX-512 backend: 16 × 32-bit lanes with hardware gathers, scatters,
//! compress (selective store), expand (selective load) and `vpconflictd`.
//!
//! This is the reproduction's stand-in for the paper's Xeon Phi platform:
//! identical vector width (512-bit, W = 16) and the same fundamental
//! operation set, on the ISA the paper anticipated as "AVX 3".

#![allow(unsafe_code)]

use core::arch::x86_64::*;

use crate::mask::LaneMask;
use crate::simd_trait::Simd;

/// AVX-512 capability token (`W = 16`).
///
/// Constructing it via [`Avx512::new`] proves at runtime that `avx512f` and
/// `avx512cd` are available, which makes every operation safe to call.
#[derive(Clone, Copy, Debug)]
pub struct Avx512 {
    _priv: (),
}

impl Avx512 {
    /// Detect AVX-512 support; returns `None` when `avx512f`/`avx512cd` are
    /// not available on this CPU.
    #[inline]
    pub fn new() -> Option<Self> {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512cd")
        {
            Some(Avx512 { _priv: () })
        } else {
            None
        }
    }

    /// Create the token without checking CPU features.
    ///
    /// # Safety
    /// The caller must guarantee `avx512f` and `avx512cd` are available.
    #[inline]
    pub unsafe fn new_unchecked() -> Self {
        Avx512 { _priv: () }
    }

    #[inline(always)]
    fn assert_in_bounds(self, idx: __m512i, len: usize, what: &str) {
        assert!(
            len <= i32::MAX as usize,
            "{what}: slice too long for 32-bit indexes"
        );
        // SAFETY: token proves avx512f.
        let ok = unsafe { _mm512_cmplt_epu32_mask(idx, _mm512_set1_epi32(len as i32)) };
        assert!(ok == 0xFFFF, "{what}: index out of bounds (len {len})");
    }

    #[inline(always)]
    fn assert_in_bounds_masked(self, m: __mmask16, idx: __m512i, len: usize, what: &str) {
        assert!(
            len <= i32::MAX as usize,
            "{what}: slice too long for 32-bit indexes"
        );
        // SAFETY: token proves avx512f.
        let ok = unsafe { _mm512_mask_cmplt_epu32_mask(m, idx, _mm512_set1_epi32(len as i32)) };
        assert!(ok == m, "{what}: index out of bounds (len {len})");
    }
}

/// Lane-id permutation pulling the 16 keys (even dwords) out of two
/// interleaved pair vectors passed as (a = pairs 0..8, b = pairs 8..16).
#[inline(always)]
unsafe fn key_sel() -> __m512i {
    _mm512_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30)
}

/// As [`key_sel`], for the payloads (odd dwords).
#[inline(always)]
unsafe fn val_sel() -> __m512i {
    _mm512_setr_epi32(1, 3, 5, 7, 9, 11, 13, 15, 17, 19, 21, 23, 25, 27, 29, 31)
}

/// Interleave keys (a) and values (b) into the low 8 pairs.
#[inline(always)]
unsafe fn pair_lo_sel() -> __m512i {
    _mm512_setr_epi32(0, 16, 1, 17, 2, 18, 3, 19, 4, 20, 5, 21, 6, 22, 7, 23)
}

/// Interleave keys (a) and values (b) into the high 8 pairs.
#[inline(always)]
unsafe fn pair_hi_sel() -> __m512i {
    _mm512_setr_epi32(8, 24, 9, 25, 10, 26, 11, 27, 12, 28, 13, 29, 14, 30, 15, 31)
}

impl Simd for Avx512 {
    const LANES: usize = 16;
    type V = __m512i;
    type M = LaneMask<16>;

    #[inline(always)]
    fn name(self) -> &'static str {
        "avx512"
    }

    #[inline]
    fn vectorize<R>(self, f: impl FnOnce() -> R) -> R {
        #[target_feature(enable = "avx512f,avx512cd")]
        unsafe fn inner<R>(f: impl FnOnce() -> R) -> R {
            f()
        }
        // SAFETY: the token proves the features are available.
        unsafe { inner(f) }
    }

    #[inline(always)]
    fn splat(self, x: u32) -> Self::V {
        // SAFETY (here and below): constructing `Avx512` proved avx512f+cd.
        unsafe { _mm512_set1_epi32(x as i32) }
    }

    #[inline(always)]
    fn iota(self) -> Self::V {
        unsafe { _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15) }
    }

    #[inline(always)]
    fn load(self, src: &[u32]) -> Self::V {
        assert!(src.len() >= 16, "load: src too short");
        unsafe { _mm512_loadu_epi32(src.as_ptr() as *const i32) }
    }

    #[inline(always)]
    fn store(self, v: Self::V, dst: &mut [u32]) {
        assert!(dst.len() >= 16, "store: dst too short");
        unsafe { _mm512_storeu_epi32(dst.as_mut_ptr() as *mut i32, v) }
    }

    #[inline(always)]
    fn store_stream(self, v: Self::V, dst: &mut [u32]) {
        assert!(dst.len() >= 16, "store_stream: dst too short");
        let ptr = dst.as_mut_ptr();
        if (ptr as usize).is_multiple_of(64) {
            unsafe { _mm512_stream_si512(ptr as *mut __m512i, v) }
        } else {
            unsafe { _mm512_storeu_epi32(ptr as *mut i32, v) }
        }
    }

    #[inline(always)]
    fn extract(self, v: Self::V, lane: usize) -> u32 {
        assert!(lane < 16, "extract: lane out of range");
        let mut buf = [0u32; 16];
        unsafe { _mm512_storeu_epi32(buf.as_mut_ptr() as *mut i32, v) };
        buf[lane]
    }

    #[inline(always)]
    fn add(self, a: Self::V, b: Self::V) -> Self::V {
        unsafe { _mm512_add_epi32(a, b) }
    }

    #[inline(always)]
    fn sub(self, a: Self::V, b: Self::V) -> Self::V {
        unsafe { _mm512_sub_epi32(a, b) }
    }

    #[inline(always)]
    fn mullo(self, a: Self::V, b: Self::V) -> Self::V {
        unsafe { _mm512_mullo_epi32(a, b) }
    }

    #[inline(always)]
    fn mulhi(self, a: Self::V, b: Self::V) -> Self::V {
        unsafe {
            let evens = _mm512_mul_epu32(a, b);
            let odds = _mm512_mul_epu32(_mm512_srli_epi64::<32>(a), _mm512_srli_epi64::<32>(b));
            let hi_evens = _mm512_srli_epi64::<32>(evens);
            _mm512_mask_blend_epi32(0b1010_1010_1010_1010, hi_evens, odds)
        }
    }

    #[inline(always)]
    fn and(self, a: Self::V, b: Self::V) -> Self::V {
        unsafe { _mm512_and_si512(a, b) }
    }

    #[inline(always)]
    fn or(self, a: Self::V, b: Self::V) -> Self::V {
        unsafe { _mm512_or_si512(a, b) }
    }

    #[inline(always)]
    fn xor(self, a: Self::V, b: Self::V) -> Self::V {
        unsafe { _mm512_xor_si512(a, b) }
    }

    #[inline(always)]
    fn andnot(self, a: Self::V, b: Self::V) -> Self::V {
        unsafe { _mm512_andnot_si512(a, b) }
    }

    #[inline(always)]
    fn shl(self, v: Self::V, count: u32) -> Self::V {
        debug_assert!(count < 32);
        unsafe { _mm512_sllv_epi32(v, _mm512_set1_epi32(count as i32)) }
    }

    #[inline(always)]
    fn shr(self, v: Self::V, count: u32) -> Self::V {
        debug_assert!(count < 32);
        unsafe { _mm512_srlv_epi32(v, _mm512_set1_epi32(count as i32)) }
    }

    #[inline(always)]
    fn shlv(self, v: Self::V, counts: Self::V) -> Self::V {
        unsafe { _mm512_sllv_epi32(v, counts) }
    }

    #[inline(always)]
    fn shrv(self, v: Self::V, counts: Self::V) -> Self::V {
        unsafe { _mm512_srlv_epi32(v, counts) }
    }

    #[inline(always)]
    fn cmpeq(self, a: Self::V, b: Self::V) -> Self::M {
        LaneMask::from_bits(unsafe { _mm512_cmpeq_epu32_mask(a, b) } as u32)
    }

    #[inline(always)]
    fn cmpne(self, a: Self::V, b: Self::V) -> Self::M {
        LaneMask::from_bits(unsafe { _mm512_cmpneq_epu32_mask(a, b) } as u32)
    }

    #[inline(always)]
    fn cmplt(self, a: Self::V, b: Self::V) -> Self::M {
        LaneMask::from_bits(unsafe { _mm512_cmplt_epu32_mask(a, b) } as u32)
    }

    #[inline(always)]
    fn cmple(self, a: Self::V, b: Self::V) -> Self::M {
        LaneMask::from_bits(unsafe { _mm512_cmple_epu32_mask(a, b) } as u32)
    }

    #[inline(always)]
    fn cmpgt(self, a: Self::V, b: Self::V) -> Self::M {
        LaneMask::from_bits(unsafe { _mm512_cmpgt_epu32_mask(a, b) } as u32)
    }

    #[inline(always)]
    fn cmpge(self, a: Self::V, b: Self::V) -> Self::M {
        LaneMask::from_bits(unsafe { _mm512_cmpge_epu32_mask(a, b) } as u32)
    }

    #[inline(always)]
    fn blend(self, m: Self::M, on_true: Self::V, on_false: Self::V) -> Self::V {
        unsafe { _mm512_mask_blend_epi32(m.bits() as __mmask16, on_false, on_true) }
    }

    #[inline(always)]
    fn permute(self, v: Self::V, idx: Self::V) -> Self::V {
        // vpermd uses the low 4 bits of each index lane: idx % 16.
        unsafe { _mm512_permutexvar_epi32(idx, v) }
    }

    #[inline(always)]
    fn selective_store(self, dst: &mut [u32], m: Self::M, v: Self::V) -> usize {
        let count = m.count();
        assert!(dst.len() >= count, "selective_store: dst too short");
        unsafe {
            let packed = _mm512_maskz_compress_epi32(m.bits() as __mmask16, v);
            let lowmask = LaneMask::<16>::first_n(count).bits() as __mmask16;
            _mm512_mask_storeu_epi32(dst.as_mut_ptr() as *mut i32, lowmask, packed);
        }
        count
    }

    #[inline(always)]
    fn selective_load(self, v: Self::V, m: Self::M, src: &[u32]) -> Self::V {
        let count = m.count();
        assert!(src.len() >= count, "selective_load: src too short");
        unsafe {
            let lowmask = LaneMask::<16>::first_n(count).bits() as __mmask16;
            let packed = _mm512_maskz_loadu_epi32(lowmask, src.as_ptr() as *const i32);
            _mm512_mask_expand_epi32(v, m.bits() as __mmask16, packed)
        }
    }

    #[inline(always)]
    fn gather(self, src: &[u32], idx: Self::V) -> Self::V {
        self.assert_in_bounds(idx, src.len(), "gather");
        unsafe { _mm512_i32gather_epi32::<4>(idx, src.as_ptr() as *const i32) }
    }

    #[inline(always)]
    fn gather_masked(self, prev: Self::V, m: Self::M, src: &[u32], idx: Self::V) -> Self::V {
        let k = m.bits() as __mmask16;
        self.assert_in_bounds_masked(k, idx, src.len(), "gather_masked");
        unsafe { _mm512_mask_i32gather_epi32::<4>(prev, k, idx, src.as_ptr() as *const i32) }
    }

    #[inline(always)]
    fn scatter(self, dst: &mut [u32], idx: Self::V, v: Self::V) {
        self.assert_in_bounds(idx, dst.len(), "scatter");
        unsafe { _mm512_i32scatter_epi32::<4>(dst.as_mut_ptr() as *mut i32, idx, v) }
    }

    #[inline(always)]
    fn scatter_masked(self, dst: &mut [u32], m: Self::M, idx: Self::V, v: Self::V) {
        let k = m.bits() as __mmask16;
        self.assert_in_bounds_masked(k, idx, dst.len(), "scatter_masked");
        unsafe { _mm512_mask_i32scatter_epi32::<4>(dst.as_mut_ptr() as *mut i32, k, idx, v) }
    }

    #[inline(always)]
    fn gather_pairs(self, src: &[u64], idx: Self::V) -> (Self::V, Self::V) {
        self.assert_in_bounds(idx, src.len(), "gather_pairs");
        unsafe {
            let idx_lo = _mm512_castsi512_si256(idx);
            let idx_hi = _mm512_extracti64x4_epi64::<1>(idx);
            let base = src.as_ptr() as *const i64;
            let lo = _mm512_i32gather_epi64::<8>(idx_lo, base);
            let hi = _mm512_i32gather_epi64::<8>(idx_hi, base);
            let keys = _mm512_permutex2var_epi32(lo, key_sel(), hi);
            let vals = _mm512_permutex2var_epi32(lo, val_sel(), hi);
            (keys, vals)
        }
    }

    #[inline(always)]
    fn gather_pairs_masked(
        self,
        prev: (Self::V, Self::V),
        m: Self::M,
        src: &[u64],
        idx: Self::V,
    ) -> (Self::V, Self::V) {
        let k = m.bits() as __mmask16;
        self.assert_in_bounds_masked(k, idx, src.len(), "gather_pairs_masked");
        unsafe {
            let idx_lo = _mm512_castsi512_si256(idx);
            let idx_hi = _mm512_extracti64x4_epi64::<1>(idx);
            let base = src.as_ptr() as *const i64;
            let prev_lo = _mm512_permutex2var_epi32(prev.0, pair_lo_sel(), prev.1);
            let prev_hi = _mm512_permutex2var_epi32(prev.0, pair_hi_sel(), prev.1);
            let lo =
                _mm512_mask_i32gather_epi64::<8>(prev_lo, (k & 0xFF) as __mmask8, idx_lo, base);
            let hi = _mm512_mask_i32gather_epi64::<8>(prev_hi, (k >> 8) as __mmask8, idx_hi, base);
            let keys = _mm512_permutex2var_epi32(lo, key_sel(), hi);
            let vals = _mm512_permutex2var_epi32(lo, val_sel(), hi);
            (keys, vals)
        }
    }

    #[inline(always)]
    fn scatter_pairs(self, dst: &mut [u64], idx: Self::V, keys: Self::V, vals: Self::V) {
        self.assert_in_bounds(idx, dst.len(), "scatter_pairs");
        unsafe {
            let idx_lo = _mm512_castsi512_si256(idx);
            let idx_hi = _mm512_extracti64x4_epi64::<1>(idx);
            let base = dst.as_mut_ptr() as *mut i64;
            let lo = _mm512_permutex2var_epi32(keys, pair_lo_sel(), vals);
            let hi = _mm512_permutex2var_epi32(keys, pair_hi_sel(), vals);
            _mm512_i32scatter_epi64::<8>(base, idx_lo, lo);
            _mm512_i32scatter_epi64::<8>(base, idx_hi, hi);
        }
    }

    #[inline(always)]
    fn scatter_pairs_masked(
        self,
        dst: &mut [u64],
        m: Self::M,
        idx: Self::V,
        keys: Self::V,
        vals: Self::V,
    ) {
        let k = m.bits() as __mmask16;
        self.assert_in_bounds_masked(k, idx, dst.len(), "scatter_pairs_masked");
        unsafe {
            let idx_lo = _mm512_castsi512_si256(idx);
            let idx_hi = _mm512_extracti64x4_epi64::<1>(idx);
            let base = dst.as_mut_ptr() as *mut i64;
            let lo = _mm512_permutex2var_epi32(keys, pair_lo_sel(), vals);
            let hi = _mm512_permutex2var_epi32(keys, pair_hi_sel(), vals);
            _mm512_mask_i32scatter_epi64::<8>(base, (k & 0xFF) as __mmask8, idx_lo, lo);
            _mm512_mask_i32scatter_epi64::<8>(base, (k >> 8) as __mmask8, idx_hi, hi);
        }
    }

    #[inline(always)]
    fn load_pairs(self, src: &[u64]) -> (Self::V, Self::V) {
        assert!(src.len() >= 16, "load_pairs: src too short");
        unsafe {
            let lo = _mm512_loadu_si512(src.as_ptr() as *const __m512i);
            let hi = _mm512_loadu_si512(src.as_ptr().add(8) as *const __m512i);
            let keys = _mm512_permutex2var_epi32(lo, key_sel(), hi);
            let vals = _mm512_permutex2var_epi32(lo, val_sel(), hi);
            (keys, vals)
        }
    }

    #[inline(always)]
    fn gather_bytes(self, src: &[u8], idx: Self::V) -> Self::V {
        assert!(
            src.len().is_multiple_of(4),
            "gather_bytes: src length must be a multiple of 4"
        );
        self.assert_in_bounds(idx, src.len(), "gather_bytes");
        unsafe {
            let word_idx = _mm512_srlv_epi32(idx, _mm512_set1_epi32(2));
            let words = _mm512_i32gather_epi32::<4>(word_idx, src.as_ptr() as *const i32);
            let shift = _mm512_sllv_epi32(
                _mm512_and_si512(idx, _mm512_set1_epi32(3)),
                _mm512_set1_epi32(3),
            );
            _mm512_and_si512(_mm512_srlv_epi32(words, shift), _mm512_set1_epi32(0xFF))
        }
    }

    #[inline(always)]
    fn scatter_bytes(self, dst: &mut [u8], idx: Self::V, v: Self::V) {
        assert!(
            dst.len().is_multiple_of(4),
            "scatter_bytes: dst length must be a multiple of 4"
        );
        self.assert_in_bounds(idx, dst.len(), "scatter_bytes");
        unsafe {
            let word_idx = _mm512_srlv_epi32(idx, _mm512_set1_epi32(2));
            #[cfg(debug_assertions)]
            {
                // Two lanes in the same 32-bit word (at different bytes) would
                // lose one write in the read-modify-write emulation.
                let conflicts = _mm512_conflict_epi32(word_idx);
                let same_byte = _mm512_conflict_epi32(idx);
                let diff = _mm512_cmpneq_epu32_mask(conflicts, same_byte);
                debug_assert!(diff == 0, "scatter_bytes: lanes alias the same 32-bit word");
            }
            let words = _mm512_i32gather_epi32::<4>(word_idx, dst.as_ptr() as *const i32);
            let shift = _mm512_sllv_epi32(
                _mm512_and_si512(idx, _mm512_set1_epi32(3)),
                _mm512_set1_epi32(3),
            );
            let keep =
                _mm512_andnot_si512(_mm512_sllv_epi32(_mm512_set1_epi32(0xFF), shift), words);
            let byte = _mm512_sllv_epi32(_mm512_and_si512(v, _mm512_set1_epi32(0xFF)), shift);
            let new_words = _mm512_or_si512(keep, byte);
            _mm512_i32scatter_epi32::<4>(dst.as_mut_ptr() as *mut i32, word_idx, new_words);
        }
    }

    #[inline(always)]
    fn conflict(self, v: Self::V) -> Self::V {
        unsafe { _mm512_conflict_epi32(v) }
    }

    #[inline(always)]
    fn reduce_add_u64(self, v: Self::V) -> u64 {
        let mut buf = [0u32; 16];
        unsafe { _mm512_storeu_epi32(buf.as_mut_ptr() as *mut i32, v) };
        buf.iter().map(|&x| u64::from(x)).sum()
    }
}
