//! Vectorized selection scans (paper Section 4, Algorithm 3).

use rsv_simd::{MaskLike, Simd};

use crate::{ScanPredicate, ScanVariant};

/// Size (in entries) of the cache-resident qualifier-index buffer used by
/// the indirect variants. 1024 × 4 B = 4 KB, comfortably L1-resident.
const BUF_LEN: usize = 1024;

#[inline(always)]
fn predicate_mask<S: Simd>(s: S, k: S::V, lower: S::V, upper: S::V) -> S::M {
    s.cmpge(k, lower).and(s.cmple(k, upper))
}

/// Scalar tail for the final `< LANES` tuples.
#[inline(always)]
fn scalar_tail(
    keys: &[u32],
    pays: &[u32],
    pred: ScanPredicate,
    out_keys: &mut [u32],
    out_pays: &mut [u32],
    mut j: usize,
    from: usize,
) -> usize {
    for i in from..keys.len() {
        let k = keys[i];
        if pred.matches(k) {
            out_keys[j] = k;
            out_pays[j] = pays[i];
            j += 1;
        }
    }
    j
}

/// Vectorized predicate evaluation; qualifiers copied one at a time by
/// extracting bits from the bitmask ("partially vectorized selection").
pub fn scan_vector_bitextract_direct<S: Simd>(
    s: S,
    keys: &[u32],
    pays: &[u32],
    pred: ScanPredicate,
    out_keys: &mut [u32],
    out_pays: &mut [u32],
) -> usize {
    assert_eq!(keys.len(), pays.len(), "column length mismatch");
    s.vectorize(
        #[inline(always)]
        || {
            let w = S::LANES;
            let lower = s.splat(pred.lower);
            let upper = s.splat(pred.upper);
            let metered = rsv_metrics::enabled();
            let mut lanes = [0u64; rsv_metrics::LANE_BUCKETS];
            let mut j = 0;
            let mut i = 0;
            while i + w <= keys.len() {
                let k = s.load(&keys[i..]);
                let m = predicate_mask(s, k, lower, upper);
                if metered {
                    lanes[m.count()] += 1;
                }
                for lane in m.iter_set() {
                    out_keys[j] = keys[i + lane];
                    out_pays[j] = pays[i + lane];
                    j += 1;
                }
                i += w;
            }
            if metered {
                rsv_metrics::add_scan_lanes(ScanVariant::VectorBitExtractDirect.index(), &lanes);
            }
            scalar_tail(keys, pays, pred, out_keys, out_pays, j, i)
        },
    )
}

/// Vectorized predicate evaluation with vector selective stores of both
/// columns directly to the output.
pub fn scan_vector_selstore_direct<S: Simd>(
    s: S,
    keys: &[u32],
    pays: &[u32],
    pred: ScanPredicate,
    out_keys: &mut [u32],
    out_pays: &mut [u32],
) -> usize {
    assert_eq!(keys.len(), pays.len(), "column length mismatch");
    s.vectorize(
        #[inline(always)]
        || {
            let w = S::LANES;
            let lower = s.splat(pred.lower);
            let upper = s.splat(pred.upper);
            let metered = rsv_metrics::enabled();
            let mut lanes = [0u64; rsv_metrics::LANE_BUCKETS];
            let mut j = 0;
            let mut i = 0;
            while i + w <= keys.len() {
                let k = s.load(&keys[i..]);
                let m = predicate_mask(s, k, lower, upper);
                if metered {
                    lanes[m.count()] += 1;
                }
                if m.any() {
                    let v = s.load(&pays[i..]);
                    s.selective_store(&mut out_keys[j..], m, k);
                    j += s.selective_store(&mut out_pays[j..], m, v);
                }
                i += w;
            }
            if metered {
                rsv_metrics::add_scan_lanes(ScanVariant::VectorSelStoreDirect.index(), &lanes);
            }
            scalar_tail(keys, pays, pred, out_keys, out_pays, j, i)
        },
    )
}

/// Bit-extract qualifier indexes into a cache-resident buffer; flush by
/// gathering the columns (indirect materialization).
pub fn scan_vector_bitextract_indirect<S: Simd>(
    s: S,
    keys: &[u32],
    pays: &[u32],
    pred: ScanPredicate,
    out_keys: &mut [u32],
    out_pays: &mut [u32],
) -> usize {
    assert_eq!(keys.len(), pays.len(), "column length mismatch");
    assert!(
        keys.len() <= u32::MAX as usize,
        "input too long for 32-bit record ids"
    );
    s.vectorize(
        #[inline(always)]
        || {
            let w = S::LANES;
            let lower = s.splat(pred.lower);
            let upper = s.splat(pred.upper);
            let metered = rsv_metrics::enabled();
            let mut lanes = [0u64; rsv_metrics::LANE_BUCKETS];
            let mut buf = [0u32; BUF_LEN];
            let mut j = 0;
            let mut l = 0;
            let mut i = 0;
            while i + w <= keys.len() {
                let k = s.load(&keys[i..]);
                let m = predicate_mask(s, k, lower, upper);
                if metered {
                    lanes[m.count()] += 1;
                }
                for lane in m.iter_set() {
                    buf[l] = (i + lane) as u32;
                    l += 1;
                }
                if l > BUF_LEN - w {
                    j = flush_buffer(s, &buf, BUF_LEN - w, keys, pays, out_keys, out_pays, j);
                    buf.copy_within(BUF_LEN - w..l, 0);
                    l -= BUF_LEN - w;
                }
                i += w;
            }
            if metered {
                rsv_metrics::add_scan_lanes(ScanVariant::VectorBitExtractIndirect.index(), &lanes);
            }
            j = drain_buffer(&buf[..l], keys, pays, out_keys, out_pays, j);
            scalar_tail(keys, pays, pred, out_keys, out_pays, j, i)
        },
    )
}

/// Algorithm 3: selective-store qualifier indexes into a cache-resident
/// buffer; flush by gathering the columns and streaming to the output.
pub fn scan_vector_selstore_indirect<S: Simd>(
    s: S,
    keys: &[u32],
    pays: &[u32],
    pred: ScanPredicate,
    out_keys: &mut [u32],
    out_pays: &mut [u32],
) -> usize {
    assert_eq!(keys.len(), pays.len(), "column length mismatch");
    assert!(
        keys.len() <= u32::MAX as usize,
        "input too long for 32-bit record ids"
    );
    s.vectorize(
        #[inline(always)]
        || {
            let w = S::LANES;
            let lower = s.splat(pred.lower);
            let upper = s.splat(pred.upper);
            let step = s.splat(w as u32);
            let mut rid = s.iota();
            let metered = rsv_metrics::enabled();
            let mut lanes = [0u64; rsv_metrics::LANE_BUCKETS];
            let mut buf = [0u32; BUF_LEN];
            let mut j = 0;
            let mut l = 0;
            let mut i = 0;
            while i + w <= keys.len() {
                let k = s.load(&keys[i..]);
                let m = predicate_mask(s, k, lower, upper);
                if metered {
                    lanes[m.count()] += 1;
                }
                if m.any() {
                    l += s.selective_store(&mut buf[l..], m, rid);
                    if l > BUF_LEN - w {
                        j = flush_buffer(s, &buf, BUF_LEN - w, keys, pays, out_keys, out_pays, j);
                        buf.copy_within(BUF_LEN - w..l, 0);
                        l -= BUF_LEN - w;
                    }
                }
                rid = s.add(rid, step);
                i += w;
            }
            if metered {
                rsv_metrics::add_scan_lanes(ScanVariant::VectorSelStoreIndirect.index(), &lanes);
            }
            j = drain_buffer(&buf[..l], keys, pays, out_keys, out_pays, j);
            scalar_tail(keys, pays, pred, out_keys, out_pays, j, i)
        },
    )
}

/// Flush `count` buffered indexes: gather the actual keys and payloads and
/// write them to the output with streaming stores.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn flush_buffer<S: Simd>(
    s: S,
    buf: &[u32],
    count: usize,
    keys: &[u32],
    pays: &[u32],
    out_keys: &mut [u32],
    out_pays: &mut [u32],
    j: usize,
) -> usize {
    debug_assert!(count.is_multiple_of(S::LANES));
    let mut b = 0;
    while b < count {
        let p = s.load(&buf[b..]);
        let k = s.gather(keys, p);
        let v = s.gather(pays, p);
        s.store_stream(k, &mut out_keys[j + b..]);
        s.store_stream(v, &mut out_pays[j + b..]);
        b += S::LANES;
    }
    j + count
}

/// Drain the remaining (non-multiple-of-W) buffered indexes scalarly.
#[inline(always)]
fn drain_buffer(
    buf: &[u32],
    keys: &[u32],
    pays: &[u32],
    out_keys: &mut [u32],
    out_pays: &mut [u32],
    mut j: usize,
) -> usize {
    for &p in buf {
        out_keys[j] = keys[p as usize];
        out_pays[j] = pays[p as usize];
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan_scalar_branching;
    use rsv_simd::Portable;

    fn workload(n: usize) -> (Vec<u32>, Vec<u32>) {
        let keys: Vec<u32> = (0..n)
            .map(|i| (i as u64 * 2654435761 % 1000) as u32)
            .collect();
        let pays: Vec<u32> = (0..n as u32).collect();
        (keys, pays)
    }

    fn check_variant(f: impl Fn(&[u32], &[u32], ScanPredicate, &mut [u32], &mut [u32]) -> usize) {
        for n in [0usize, 1, 15, 16, 17, 100, 3000] {
            let (keys, pays) = workload(n);
            for (lo, hi) in [(0u32, 999), (0, 99), (900, 999), (1, 0), (450, 550)] {
                let pred = ScanPredicate {
                    lower: lo,
                    upper: hi,
                };
                let mut ek = vec![0u32; n + 1];
                let mut ep = vec![0u32; n + 1];
                let e = scan_scalar_branching(&keys, &pays, pred, &mut ek, &mut ep);
                let mut gk = vec![0u32; n + 1];
                let mut gp = vec![0u32; n + 1];
                let g = f(&keys, &pays, pred, &mut gk, &mut gp);
                assert_eq!(g, e, "count mismatch n={n} pred={pred:?}");
                assert_eq!(&gk[..g], &ek[..e], "keys mismatch n={n} pred={pred:?}");
                assert_eq!(&gp[..g], &ep[..e], "pays mismatch n={n} pred={pred:?}");
            }
        }
    }

    #[test]
    fn bitextract_direct_matches_scalar() {
        let s = Portable::<16>::new();
        check_variant(|k, p, pr, ok, op| scan_vector_bitextract_direct(s, k, p, pr, ok, op));
    }

    #[test]
    fn selstore_direct_matches_scalar() {
        let s = Portable::<16>::new();
        check_variant(|k, p, pr, ok, op| scan_vector_selstore_direct(s, k, p, pr, ok, op));
    }

    #[test]
    fn bitextract_indirect_matches_scalar() {
        let s = Portable::<16>::new();
        check_variant(|k, p, pr, ok, op| scan_vector_bitextract_indirect(s, k, p, pr, ok, op));
    }

    #[test]
    fn selstore_indirect_matches_scalar() {
        let s = Portable::<16>::new();
        check_variant(|k, p, pr, ok, op| scan_vector_selstore_indirect(s, k, p, pr, ok, op));
    }

    #[test]
    fn indirect_flushes_across_buffer_boundary() {
        // All tuples qualify: forces many buffer flushes.
        let s = Portable::<16>::new();
        let n = 10 * BUF_LEN + 7;
        let keys = vec![5u32; n];
        let pays: Vec<u32> = (0..n as u32).collect();
        let pred = ScanPredicate {
            lower: 0,
            upper: 10,
        };
        let mut ok = vec![0u32; n];
        let mut op = vec![0u32; n];
        let g = scan_vector_selstore_indirect(s, &keys, &pays, pred, &mut ok, &mut op);
        assert_eq!(g, n);
        assert_eq!(op, pays);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn accelerated_backends_match_scalar() {
        if let Some(s) = rsv_simd::Avx512::new() {
            check_variant(|k, p, pr, ok, op| scan_vector_selstore_indirect(s, k, p, pr, ok, op));
            check_variant(|k, p, pr, ok, op| scan_vector_selstore_direct(s, k, p, pr, ok, op));
            check_variant(|k, p, pr, ok, op| scan_vector_bitextract_direct(s, k, p, pr, ok, op));
            check_variant(|k, p, pr, ok, op| scan_vector_bitextract_indirect(s, k, p, pr, ok, op));
        }
        if let Some(s) = rsv_simd::Avx2::new() {
            check_variant(|k, p, pr, ok, op| scan_vector_selstore_indirect(s, k, p, pr, ok, op));
            check_variant(|k, p, pr, ok, op| scan_vector_selstore_direct(s, k, p, pr, ok, op));
        }
    }
}
