//! Differential-harness registration for the selection-scan kernels.
//!
//! Every scan variant is stable (qualifiers keep input order), so the
//! canonical encoding is the *ordered* qualifier columns and any
//! reordering — not just a wrong qualifier set — counts as a divergence.

use crate::{scan, scan_parallel, ScanPredicate, ScanVariant};
use rsv_exec::ExecPolicy;
use rsv_simd::Backend;
use rsv_testkit::diff::{ordered_pairs, CaseInput, DiffOp, Kernel, Registry};

fn pred(input: &CaseInput) -> ScanPredicate {
    ScanPredicate {
        lower: input.bounds.0,
        upper: input.bounds.1,
    }
}

fn run_variant(backend: Backend, variant: ScanVariant, input: &CaseInput) -> Vec<u8> {
    let n = input.keys.len();
    let mut ok = vec![0u32; n];
    let mut op = vec![0u32; n];
    let c = scan(
        backend,
        variant,
        &input.keys,
        &input.pays,
        pred(input),
        &mut ok,
        &mut op,
    );
    ordered_pairs(&ok[..c], &op[..c])
}

fn reference(input: &CaseInput) -> Vec<u8> {
    run_variant(
        Backend::Portable(rsv_simd::Portable::new()),
        ScanVariant::ScalarBranching,
        input,
    )
}

fn run_parallel(backend: Backend, threads: usize, input: &CaseInput) -> Vec<u8> {
    let n = input.keys.len();
    let mut ok = vec![0u32; n];
    let mut op = vec![0u32; n];
    let (c, _) = scan_parallel(
        backend,
        ScanVariant::VectorSelStoreIndirect,
        &input.keys,
        &input.pays,
        pred(input),
        &mut ok,
        &mut op,
        &ExecPolicy::new(threads),
    );
    ordered_pairs(&ok[..c], &op[..c])
}

macro_rules! variant_kernel {
    ($name:literal, $variant:ident) => {
        Kernel {
            name: $name,
            threaded: false,
            run: |b, _, i| run_variant(b, ScanVariant::$variant, i),
        }
    };
}

/// Register the scan operator: scalar-branching reference against the
/// branchless scalar, all four vector variants, and the morsel-parallel
/// scan across thread counts.
pub fn register(r: &mut Registry) {
    r.register(DiffOp {
        name: "scan",
        reference,
        kernels: vec![
            variant_kernel!("scalar-branchless", ScalarBranchless),
            variant_kernel!("vector-bitextract-direct", VectorBitExtractDirect),
            variant_kernel!("vector-selstore-direct", VectorSelStoreDirect),
            variant_kernel!("vector-bitextract-indirect", VectorBitExtractIndirect),
            variant_kernel!("vector-selstore-indirect", VectorSelStoreIndirect),
            Kernel {
                name: "parallel-selstore-indirect",
                threaded: true,
                run: run_parallel,
            },
        ],
    });
}
