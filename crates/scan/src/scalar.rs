//! Scalar selection scans (paper Algorithms 1 and 2).

use crate::ScanPredicate;

/// Algorithm 1: scalar selection with a branch per tuple.
///
/// Fast at very low and very high selectivity, but suffers branch
/// mispredictions in between.
pub fn scan_scalar_branching(
    keys: &[u32],
    pays: &[u32],
    pred: ScanPredicate,
    out_keys: &mut [u32],
    out_pays: &mut [u32],
) -> usize {
    assert_eq!(keys.len(), pays.len(), "column length mismatch");
    let mut j = 0;
    for i in 0..keys.len() {
        let k = keys[i];
        if k >= pred.lower && k <= pred.upper {
            out_keys[j] = k;
            out_pays[j] = pays[i];
            j += 1;
        }
    }
    j
}

/// Algorithm 2: scalar branchless selection.
///
/// Copies every tuple to the current output slot and advances the output
/// index by the predicate's 0/1 result, trading extra stores (and eager
/// payload accesses) for the absence of branch mispredictions.
pub fn scan_scalar_branchless(
    keys: &[u32],
    pays: &[u32],
    pred: ScanPredicate,
    out_keys: &mut [u32],
    out_pays: &mut [u32],
) -> usize {
    assert_eq!(keys.len(), pays.len(), "column length mismatch");
    // Branchless code writes every tuple to the current output slot, so the
    // output must be able to hold one write per input tuple in the worst case.
    assert!(
        keys.is_empty() || (out_keys.len() >= keys.len() && out_pays.len() >= keys.len()),
        "branchless scan requires output capacity equal to the input length"
    );
    let mut j = 0usize;
    for i in 0..keys.len() {
        let k = keys[i];
        out_keys[j] = k;
        out_pays[j] = pays[i];
        let m = usize::from(k >= pred.lower) & usize::from(k <= pred.upper);
        j += m;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(lower: u32, upper: u32) -> ScanPredicate {
        ScanPredicate { lower, upper }
    }

    #[test]
    fn branching_filters_correctly() {
        let keys = [5u32, 10, 15, 20, 25];
        let pays = [50u32, 100, 150, 200, 250];
        let mut ok = [0u32; 5];
        let mut op = [0u32; 5];
        let n = scan_scalar_branching(&keys, &pays, pred(10, 20), &mut ok, &mut op);
        assert_eq!(n, 3);
        assert_eq!(&ok[..n], &[10, 15, 20]);
        assert_eq!(&op[..n], &[100, 150, 200]);
    }

    #[test]
    fn branchless_matches_branching() {
        let keys: Vec<u32> = (0..1000)
            .map(|i| (i * 2654435761u64 % 1000) as u32)
            .collect();
        let pays: Vec<u32> = (0..1000).collect();
        for (lo, hi) in [(0, 999), (100, 200), (999, 999), (1, 0), (500, 499)] {
            let p = pred(lo, hi);
            let mut k1 = vec![0u32; 1001];
            let mut p1 = vec![0u32; 1001];
            let mut k2 = vec![0u32; 1001];
            let mut p2 = vec![0u32; 1001];
            let n1 = scan_scalar_branching(&keys, &pays, p, &mut k1, &mut p1);
            let n2 = scan_scalar_branchless(&keys, &pays, p, &mut k2, &mut p2);
            assert_eq!(n1, n2);
            assert_eq!(&k1[..n1], &k2[..n2]);
            assert_eq!(&p1[..n1], &p2[..n2]);
        }
    }

    #[test]
    fn empty_input() {
        let mut o = [0u32; 1];
        let mut q = [0u32; 1];
        assert_eq!(
            scan_scalar_branching(&[], &[], pred(0, 10), &mut o, &mut q),
            0
        );
        assert_eq!(
            scan_scalar_branchless(&[], &[], pred(0, 10), &mut o, &mut q),
            0
        );
    }

    #[test]
    fn full_range_selects_all() {
        let keys = [0u32, u32::MAX, 7];
        let pays = [1u32, 2, 3];
        let mut o = [0u32; 4];
        let mut q = [0u32; 4];
        let n = scan_scalar_branching(&keys, &pays, pred(0, u32::MAX), &mut o, &mut q);
        assert_eq!(n, 3);
        assert_eq!(&o[..3], &keys);
    }
}
