//! Selection scans (paper Section 4).
//!
//! A selection scan filters a table on a range predicate
//! `k_lower ≤ key ≤ k_upper` and materializes the qualifying keys and
//! payloads. The paper evaluates six implementations (Figure 5):
//!
//! * [`scan_scalar_branching`] — Algorithm 1, one branch per tuple,
//! * [`scan_scalar_branchless`] — Algorithm 2, converts control flow to
//!   data flow with a conditional index increment,
//! * four vectorized variants crossing two design choices:
//!   * **qualifier extraction**: extract one bit of the predicate bitmask
//!     at a time ([`scan_vector_bitextract_direct`],
//!     [`scan_vector_bitextract_indirect`]) versus a vector *selective
//!     store* of all qualifiers at once ([`scan_vector_selstore_direct`],
//!     [`scan_vector_selstore_indirect`]),
//!   * **materialization**: copy key and payload *directly* during the
//!     scan, versus buffering qualifier indexes in a small cache-resident
//!     buffer and *indirectly* dereferencing (gathering) the columns when
//!     the buffer is flushed with streaming stores (Algorithm 3). The
//!     indirect variants skip payload accesses for non-qualifying tuples,
//!     which dominates at low selectivity.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod diff;
mod parallel;
mod scalar;
mod vector;

pub use parallel::{scan_parallel, scan_parallel_try};
pub use scalar::{scan_scalar_branching, scan_scalar_branchless};
pub use vector::{
    scan_vector_bitextract_direct, scan_vector_bitextract_indirect, scan_vector_selstore_direct,
    scan_vector_selstore_indirect,
};

/// The range predicate `lower ≤ key ≤ upper` (both inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanPredicate {
    /// Inclusive lower bound.
    pub lower: u32,
    /// Inclusive upper bound.
    pub upper: u32,
}

impl ScanPredicate {
    /// Evaluate the predicate on one key.
    #[inline(always)]
    pub fn matches(self, key: u32) -> bool {
        key >= self.lower && key <= self.upper
    }
}

/// Every selection-scan implementation in this crate, for experiment sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanVariant {
    /// Algorithm 1 (scalar, branching).
    ScalarBranching,
    /// Algorithm 2 (scalar, branchless).
    ScalarBranchless,
    /// Vector, bitmask extracted one bit at a time, direct copy.
    VectorBitExtractDirect,
    /// Vector, selective store, direct copy.
    VectorSelStoreDirect,
    /// Vector, bitmask extracted one bit at a time, index buffer + gather.
    VectorBitExtractIndirect,
    /// Vector, selective store, index buffer + gather (Algorithm 3).
    VectorSelStoreIndirect,
}

impl ScanVariant {
    /// All variants, in the order Figure 5 lists them.
    pub const ALL: [ScanVariant; 6] = [
        ScanVariant::ScalarBranching,
        ScanVariant::ScalarBranchless,
        ScanVariant::VectorBitExtractDirect,
        ScanVariant::VectorSelStoreDirect,
        ScanVariant::VectorBitExtractIndirect,
        ScanVariant::VectorSelStoreIndirect,
    ];

    /// This variant's position in [`ScanVariant::ALL`], used to index the
    /// lanes-active histograms in `rsv_metrics::Counters::scan_lanes`.
    pub fn index(self) -> usize {
        match self {
            ScanVariant::ScalarBranching => 0,
            ScanVariant::ScalarBranchless => 1,
            ScanVariant::VectorBitExtractDirect => 2,
            ScanVariant::VectorSelStoreDirect => 3,
            ScanVariant::VectorBitExtractIndirect => 4,
            ScanVariant::VectorSelStoreIndirect => 5,
        }
    }

    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            ScanVariant::ScalarBranching => "scalar-branching",
            ScanVariant::ScalarBranchless => "scalar-branchless",
            ScanVariant::VectorBitExtractDirect => "vector-bitextract-direct",
            ScanVariant::VectorSelStoreDirect => "vector-selstore-direct",
            ScanVariant::VectorBitExtractIndirect => "vector-bitextract-indirect",
            ScanVariant::VectorSelStoreIndirect => "vector-selstore-indirect",
        }
    }
}

/// Run any variant on any backend (scalar variants ignore the backend).
///
/// Writes qualifiers to the front of `out_keys` / `out_pays` and returns the
/// qualifier count.
pub fn scan(
    backend: rsv_simd::Backend,
    variant: ScanVariant,
    keys: &[u32],
    pays: &[u32],
    pred: ScanPredicate,
    out_keys: &mut [u32],
    out_pays: &mut [u32],
) -> usize {
    let count = match variant {
        ScanVariant::ScalarBranching => scan_scalar_branching(keys, pays, pred, out_keys, out_pays),
        ScanVariant::ScalarBranchless => {
            scan_scalar_branchless(keys, pays, pred, out_keys, out_pays)
        }
        ScanVariant::VectorBitExtractDirect => rsv_simd::dispatch!(backend, s => {
            scan_vector_bitextract_direct(s, keys, pays, pred, out_keys, out_pays)
        }),
        ScanVariant::VectorSelStoreDirect => rsv_simd::dispatch!(backend, s => {
            scan_vector_selstore_direct(s, keys, pays, pred, out_keys, out_pays)
        }),
        ScanVariant::VectorBitExtractIndirect => rsv_simd::dispatch!(backend, s => {
            scan_vector_bitextract_indirect(s, keys, pays, pred, out_keys, out_pays)
        }),
        ScanVariant::VectorSelStoreIndirect => rsv_simd::dispatch!(backend, s => {
            scan_vector_selstore_indirect(s, keys, pays, pred, out_keys, out_pays)
        }),
    };
    rsv_metrics::count(rsv_metrics::Metric::ScanTuplesIn, keys.len() as u64);
    rsv_metrics::count(rsv_metrics::Metric::ScanTuplesOut, count as u64);
    count
}
