//! Morsel-driven parallel selection scan.
//!
//! Each worker claims SIMD-aligned morsels from a work-stealing queue
//! ([`rsv_exec::MorselQueue`]) and scans its morsel into the output
//! buffer region starting at the morsel's own input offset — disjoint
//! across morsels because a morsel never produces more qualifiers than it
//! has tuples. After the scan, the per-morsel result runs are compacted
//! front-to-back *in morsel order*, so the qualifier list is exactly the
//! sequential scan's output for every thread count and morsel size.

use rsv_exec::{
    expect_infallible, parallel_scope_try, EngineError, ExecPolicy, MorselQueue, SchedulerStats,
    SharedBuffer,
};
use rsv_simd::Backend;

use crate::{scan, ScanPredicate, ScanVariant};

/// Parallel selection scan with morsel-driven scheduling.
///
/// `out_keys` / `out_pays` must have the input length; qualifiers end up
/// at their front (input order preserved) and the qualifier count is
/// returned alongside per-worker scheduler stats.
#[allow(clippy::too_many_arguments)]
pub fn scan_parallel(
    backend: Backend,
    variant: ScanVariant,
    keys: &[u32],
    pays: &[u32],
    pred: ScanPredicate,
    out_keys: &mut Vec<u32>,
    out_pays: &mut Vec<u32>,
    policy: &ExecPolicy,
) -> (usize, SchedulerStats) {
    expect_infallible(scan_parallel_try(
        backend, variant, keys, pays, pred, out_keys, out_pays, policy,
    ))
}

/// Fallible [`scan_parallel`]: honours `policy.run`'s cancel token (checked
/// at every morsel claim) and surfaces worker panics as
/// [`EngineError::WorkerPanicked`]. On error the output vectors keep their
/// length but hold unspecified contents.
#[allow(clippy::too_many_arguments)]
pub fn scan_parallel_try(
    backend: Backend,
    variant: ScanVariant,
    keys: &[u32],
    pays: &[u32],
    pred: ScanPredicate,
    out_keys: &mut Vec<u32>,
    out_pays: &mut Vec<u32>,
    policy: &ExecPolicy,
) -> Result<(usize, SchedulerStats), EngineError> {
    assert_eq!(keys.len(), pays.len(), "column length mismatch");
    assert_eq!(out_keys.len(), keys.len(), "output length mismatch");
    assert_eq!(out_pays.len(), pays.len(), "output length mismatch");
    let n = keys.len();
    let t = policy.threads;

    let q = MorselQueue::new(n, policy, 16);
    let m = q.morsel_count();
    let counts = SharedBuffer::from_vec(vec![0usize; m]);
    let ok_buf = SharedBuffer::from_vec(std::mem::take(out_keys));
    let op_buf = SharedBuffer::from_vec(std::mem::take(out_pays));
    let scope = parallel_scope_try(t, |ctx| {
        // SAFETY: each morsel writes only the output region at its own
        // input offsets plus its own count slot, and every morsel id is
        // claimed exactly once; reads happen after the scope joins.
        let (ok, op, cs) = unsafe { (ok_buf.view_mut(), op_buf.view_mut(), counts.view_mut()) };
        for mo in ctx.morsels(&q) {
            let _ = rsv_testkit::failpoint!("scan.morsel");
            ctx.phase("scan", || {
                let r = mo.range.clone();
                let c = scan(
                    backend,
                    variant,
                    &keys[r.clone()],
                    &pays[r.clone()],
                    pred,
                    &mut ok[r.clone()],
                    &mut op[r],
                );
                cs[mo.id] = c;
            });
        }
    });
    // Hand the (possibly partial) buffers back before any early return so
    // the caller's vectors keep their length.
    let counts = counts.into_vec();
    let mut ok = ok_buf.into_vec();
    let mut op = op_buf.into_vec();
    let restore = |ok: Vec<u32>, op: Vec<u32>, out_keys: &mut Vec<u32>, out_pays: &mut Vec<u32>| {
        *out_keys = ok;
        *out_pays = op;
    };
    let stats = match scope {
        Ok((_, stats)) => stats,
        Err(wp) => {
            restore(ok, op, out_keys, out_pays);
            return Err(wp.into_engine_error());
        }
    };
    if policy.run.is_cancelled() {
        restore(ok, op, out_keys, out_pays);
        return Err(EngineError::Cancelled);
    }

    // Compact the per-morsel runs front-to-back. Runs only move left
    // (dest ≤ src), so processing in morsel order never clobbers a run
    // that has not been moved yet.
    let mut dest = 0usize;
    for (id, &c) in counts.iter().enumerate() {
        let src = q.range_of(id).start;
        if src != dest {
            ok.copy_within(src..src + c, dest);
            op.copy_within(src..src + c, dest);
        }
        dest += c;
    }
    restore(ok, op, out_keys, out_pays);
    Ok((dest, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_scan_matches_sequential() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        let n = 40_000;
        let keys: Vec<u32> = (0..n).map(|_| next() % 10_000).collect();
        let pays: Vec<u32> = (0..n as u32).collect();
        let pred = ScanPredicate {
            lower: 1_000,
            upper: 4_000,
        };
        let backend = Backend::best();
        let variant = ScanVariant::VectorSelStoreIndirect;
        let mut ek = vec![0u32; n];
        let mut ep = vec![0u32; n];
        let expect_n = scan(backend, variant, &keys, &pays, pred, &mut ek, &mut ep);
        for threads in [1usize, 2, 3, 8] {
            for morsel in [1_000usize, 16 * 1024, usize::MAX] {
                let policy = ExecPolicy::new(threads).with_morsel_tuples(morsel);
                let mut gk = vec![0u32; n];
                let mut gp = vec![0u32; n];
                let (got_n, stats) = scan_parallel(
                    backend, variant, &keys, &pays, pred, &mut gk, &mut gp, &policy,
                );
                assert_eq!(got_n, expect_n, "t={threads} morsel={morsel}");
                assert_eq!(&gk[..got_n], &ek[..expect_n]);
                assert_eq!(&gp[..got_n], &ep[..expect_n]);
                assert_eq!(stats.total_tuples(), n as u64);
            }
        }
    }

    #[test]
    fn parallel_scan_empty_input() {
        let policy = ExecPolicy::new(4);
        let mut ok = vec![];
        let mut op = vec![];
        let (n, _) = scan_parallel(
            Backend::best(),
            ScanVariant::ScalarBranchless,
            &[],
            &[],
            ScanPredicate { lower: 0, upper: 1 },
            &mut ok,
            &mut op,
            &policy,
        );
        assert_eq!(n, 0);
    }
}
