//! Property tests: every scan variant equals the scalar branching
//! reference on arbitrary inputs and predicates, on every backend.

use rsv_scan::{scan, scan_scalar_branching, ScanPredicate, ScanVariant};
use rsv_simd::Backend;
use rsv_testkit as tk;

#[test]
fn all_variants_match_reference() {
    tk::check("all_variants_match_reference", 128, 0x5ca1, |rng| {
        let keys = tk::vec_u32(rng, 0, 400);
        let pays_seed = rng.next_u32();
        let lower = rng.next_u32();
        let span = rng.next_u32();

        let pays: Vec<u32> = (0..keys.len() as u32).map(|i| i ^ pays_seed).collect();
        let pred = ScanPredicate {
            lower,
            upper: lower.saturating_add(span),
        };

        let mut ek = vec![0u32; keys.len() + 1];
        let mut ep = vec![0u32; keys.len() + 1];
        let e = scan_scalar_branching(&keys, &pays, pred, &mut ek, &mut ep);

        for backend in Backend::all_available() {
            for variant in ScanVariant::ALL {
                let mut gk = vec![0u32; keys.len() + 1];
                let mut gp = vec![0u32; keys.len() + 1];
                let g = scan(backend, variant, &keys, &pays, pred, &mut gk, &mut gp);
                assert_eq!(g, e, "count {} {}", backend.name(), variant.label());
                assert_eq!(
                    &gk[..g],
                    &ek[..e],
                    "keys {} {}",
                    backend.name(),
                    variant.label()
                );
                assert_eq!(
                    &gp[..g],
                    &ep[..e],
                    "pays {} {}",
                    backend.name(),
                    variant.label()
                );
            }
        }
    });
}

/// Inverting the predicate partitions the input: the qualifier counts
/// of `[lo, hi]` and its complement sum to the input size.
#[test]
fn predicate_complement_partitions_input() {
    tk::check(
        "predicate_complement_partitions_input",
        128,
        0x5ca2,
        |rng| {
            let keys = tk::vec_u32(rng, 0, 300);
            let lower = rng.next_u32().max(1);
            let upper = lower.max(rng.next_u32().min(u32::MAX - 1));

            let pays = vec![0u32; keys.len()];
            let backend = Backend::best();
            let mut ok = vec![0u32; keys.len() + 1];
            let mut op = vec![0u32; keys.len() + 1];
            let inside = scan(
                backend,
                ScanVariant::VectorSelStoreIndirect,
                &keys,
                &pays,
                ScanPredicate { lower, upper },
                &mut ok,
                &mut op,
            );
            let below = scan(
                backend,
                ScanVariant::VectorSelStoreIndirect,
                &keys,
                &pays,
                ScanPredicate {
                    lower: 0,
                    upper: lower - 1,
                },
                &mut ok,
                &mut op,
            );
            let above = scan(
                backend,
                ScanVariant::VectorSelStoreIndirect,
                &keys,
                &pays,
                ScanPredicate {
                    lower: upper + 1,
                    upper: u32::MAX,
                },
                &mut ok,
                &mut op,
            );
            assert_eq!(inside + below + above, keys.len());
        },
    );
}
