//! Algebraic properties of [`CountingSink::merge`].
//!
//! Profiles merge sinks across repeats and across parallel regions, so
//! `merge` must be a per-worker sum: commutative, associative, and with
//! `CountingSink::default()` as the identity — exactly (`Eq`), histograms
//! included. Sinks are generated through the real thread-local metering
//! path (`count`/`add_scan_lanes`/`flush_worker`), so the properties also
//! cover the plumbing that fills worker slots.

use rsv_metrics::{CountingSink, Metric, LANE_BUCKETS, SCAN_VARIANTS, WIDTH_BUCKETS};
use rsv_testkit::Rng;

fn random_sink(rng: &mut Rng) -> CountingSink {
    let workers = rng.index(4);
    let mut plan: Vec<Box<dyn FnMut()>> = Vec::new();
    // draw the plan up front so rng state never depends on metering
    for _ in 0..workers {
        let counts: Vec<(Metric, u64)> = (0..rng.index(8))
            .map(|_| (Metric::ALL[rng.index(Metric::ALL.len())], rng.below(1_000)))
            .collect();
        let lanes = if rng.f64() < 0.5 {
            let mut h = [0u64; LANE_BUCKETS];
            for b in h.iter_mut() {
                *b = rng.below(5);
            }
            Some((rng.index(SCAN_VARIANTS), h))
        } else {
            None
        };
        let width = (rng.index(WIDTH_BUCKETS), rng.below(10));
        let ns = rng.below(1 << 30);
        plan.push(Box::new(move || {
            for &(m, n) in &counts {
                rsv_metrics::count(m, n);
            }
            if let Some((variant, h)) = lanes {
                rsv_metrics::add_scan_lanes(variant, &h);
            }
            rsv_metrics::count_blocks_decoded(width.0, width.1);
            rsv_metrics::record_phase_ns(ns);
        }));
    }
    let ((), sink) = rsv_metrics::collect(|| {
        for (w, work) in plan.iter_mut().enumerate() {
            work();
            rsv_metrics::flush_worker(w);
        }
    });
    sink
}

fn merged(a: &CountingSink, b: &CountingSink) -> CountingSink {
    let mut m = a.clone();
    m.merge(b);
    m
}

#[test]
fn merge_is_commutative() {
    rsv_testkit::check("sink-merge-commutative", 100, 0x5349_4E4B, |rng| {
        let a = random_sink(rng);
        let b = random_sink(rng);
        assert_eq!(merged(&a, &b), merged(&b, &a));
    });
}

#[test]
fn merge_is_associative() {
    rsv_testkit::check("sink-merge-associative", 100, 0x5349_4E4C, |rng| {
        let a = random_sink(rng);
        let b = random_sink(rng);
        let c = random_sink(rng);
        assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    });
}

#[test]
fn default_is_the_identity() {
    rsv_testkit::check("sink-merge-identity", 100, 0x5349_4E4D, |rng| {
        let a = random_sink(rng);
        assert_eq!(merged(&a, &CountingSink::default()), a);
        assert_eq!(merged(&CountingSink::default(), &a), a);
    });
}

#[test]
fn merge_distributes_over_totals() {
    rsv_testkit::check("sink-merge-totals", 100, 0x5349_4E4E, |rng| {
        let a = random_sink(rng);
        let b = random_sink(rng);
        let m = merged(&a, &b).total();
        let (ta, tb) = (a.total(), b.total());
        for metric in Metric::ALL {
            assert_eq!(m.get(metric), ta.get(metric) + tb.get(metric));
        }
    });
}
