//! Operator-level work metrics: zero-overhead-when-disabled counters for
//! every kernel family in the reproduction.
//!
//! The paper's performance arguments (§4–§9) are claims about *work
//! counts* — lanes active per vector, hash probes per key, cuckoo
//! displacements, conflict-serialization retries, buffer flushes — but
//! wall-clock timing alone cannot explain why a variant wins, nor catch a
//! kernel that silently does twice the work. This crate gives each
//! operator crate a common place to report those counts:
//!
//! * [`Metric`] — the flat counter namespace (plus a few histograms that
//!   live directly on [`Counters`]),
//! * [`MetricSink`] — where per-thread counters are absorbed;
//!   [`NoopSink`] discards everything and [`CountingSink`] accumulates
//!   per-worker [`Counters`] merged like `rsv_exec::SchedulerStats`,
//! * [`collect`] / [`collect_with`] — run a closure with metering
//!   enabled on the current thread (worker threads inherit the flag via
//!   the scheduler in `rsv-exec`) and harvest the counters.
//!
//! # Zero overhead when disabled
//!
//! Recording is gated per *thread*, not globally, so concurrently running
//! tests never observe each other's counters. Kernels hoist one
//! [`enabled`] check out of their hot loops and accumulate into stack
//! locals, flushing once per call; with metering off the cost is one
//! thread-local read per kernel invocation plus a well-predicted branch
//! per loop. With the `noop` cargo feature, [`enabled`] is a constant
//! `false` and every recording function has an empty inline body, so the
//! compiler removes the metered paths entirely — CI's benchmark-parity
//! check compares the two builds to show the default path is already
//! within noise of the compiled-out one.
//!
//! # Determinism classes
//!
//! Counters are classified ([`Metric::class`]) by how reproducible they
//! are, which is what turns them into cross-backend test oracles:
//!
//! * [`MetricClass::Work`] — pure per-tuple work sums (tuples scanned,
//!   hash-chain slots inspected, blocks decoded…). Byte-identical across
//!   SIMD backends *of any lane width* for the same kernel, input and
//!   thread count.
//! * [`MetricClass::WidthDependent`] — deterministic for a fixed lane
//!   width and thread count, but legitimately different between 8- and
//!   16-lane backends (lanes-active histograms, conflict serializations,
//!   staging-buffer flushes).
//! * [`MetricClass::Unstable`] — timing- or schedule-dependent (steals,
//!   phase-latency histograms); never compared.

#![deny(missing_docs)]
#![warn(clippy::all)]

use std::cell::{Cell, RefCell};
use std::sync::{Mutex, MutexGuard};

/// Lanes-active histogram buckets (`0..=32` active lanes per vector).
pub const LANE_BUCKETS: usize = 33;

/// Scan-variant slots for the lanes-active histograms, indexed by the
/// variant's position in `rsv_scan::ScanVariant::ALL`.
pub const SCAN_VARIANTS: usize = 6;

/// Column-width histogram buckets (packed widths `0..=32` bits).
pub const WIDTH_BUCKETS: usize = 33;

/// Log₂-nanosecond buckets for morsel phase latencies.
pub const PHASE_BUCKETS: usize = 40;

/// One named work counter. The discriminant is the index into
/// [`Counters::counts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Metric {
    /// Tuples fed into a selection scan.
    ScanTuplesIn,
    /// Tuples a selection scan emitted (qualifiers).
    ScanTuplesOut,
    /// Keys probed against a linear-probing table.
    LpKeysProbed,
    /// Linear-probe slot inspections (≥ keys probed; the excess is the
    /// chain-walk cost the paper's Figure 7 is about).
    LpProbes,
    /// Keys probed against a double-hashing table.
    DhKeysProbed,
    /// Double-hashing slot inspections.
    DhProbes,
    /// Keys inserted into linear-probing tables.
    LpKeysBuilt,
    /// Lanes that lost the scatter-conflict race in the vertical build
    /// and had to retry (paper §5: "conflicts during building").
    LpBuildConflictRetries,
    /// Keys inserted into cuckoo tables.
    CuckooKeysBuilt,
    /// Cuckoo displacement-loop iterations (kicks) over all inserts.
    CuckooDisplacements,
    /// Keys probed against a Bloom filter.
    BloomKeysProbed,
    /// Bloom filter words fetched (early abort makes this ≪ k per key).
    BloomWordsTouched,
    /// Tuples histogrammed by a partitioning pass.
    PartHistTuples,
    /// Tuples shuffled by a partitioning pass.
    PartShuffleTuples,
    /// Lanes serialized by the scatter-conflict detection (Algorithms
    /// 12/13): lanes whose partition collided inside one vector.
    PartConflictsSerialized,
    /// Full staging-buffer lines flushed with streaming stores.
    PartBufferFlushes,
    /// Bytes written through streaming (non-temporal) stores.
    PartStreamingStoreBytes,
    /// Tuples that left a buffered shuffle through a full-line flush.
    PartTuplesFlushed,
    /// Tuples that left a buffered shuffle through the cleanup pass
    /// (per-partition residues that never filled a line).
    PartTuplesResidual,
    /// Compressed blocks decoded (per-width breakdown in
    /// [`Counters::col_width_blocks`]).
    ColBlocksDecoded,
    /// Radixsort partitioning passes executed.
    SortPasses,
    /// Bytes a radixsort moved between its ping/pong columns.
    SortBytesMoved,
    /// Build-side tuples fed into a hash join.
    JoinBuildTuples,
    /// Probe-side tuples fed into a hash join.
    JoinProbeTuples,
    /// Sum of partitioning-pass fanouts a join executed.
    JoinPartitionFanout,
    /// Morsels claimed from work-stealing queues.
    MorselsClaimed,
    /// Morsels claimed from *another* worker's span.
    MorselsStolen,
    /// Hash-table builds that degraded from cuckoo to linear probing after
    /// exhausting the rehash budget.
    FallbackBuilds,
}

/// Reproducibility class of a counter (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricClass {
    /// Byte-identical across backends of any lane width (fixed kernel,
    /// input and thread count).
    Work,
    /// Deterministic for a fixed lane width and thread count.
    WidthDependent,
    /// Timing- or schedule-dependent; never compared.
    Unstable,
}

impl Metric {
    /// Number of flat counters.
    pub const COUNT: usize = Metric::FallbackBuilds as usize + 1;

    /// Every counter, in index order.
    pub const ALL: [Metric; Metric::COUNT] = [
        Metric::ScanTuplesIn,
        Metric::ScanTuplesOut,
        Metric::LpKeysProbed,
        Metric::LpProbes,
        Metric::DhKeysProbed,
        Metric::DhProbes,
        Metric::LpKeysBuilt,
        Metric::LpBuildConflictRetries,
        Metric::CuckooKeysBuilt,
        Metric::CuckooDisplacements,
        Metric::BloomKeysProbed,
        Metric::BloomWordsTouched,
        Metric::PartHistTuples,
        Metric::PartShuffleTuples,
        Metric::PartConflictsSerialized,
        Metric::PartBufferFlushes,
        Metric::PartStreamingStoreBytes,
        Metric::PartTuplesFlushed,
        Metric::PartTuplesResidual,
        Metric::ColBlocksDecoded,
        Metric::SortPasses,
        Metric::SortBytesMoved,
        Metric::JoinBuildTuples,
        Metric::JoinProbeTuples,
        Metric::JoinPartitionFanout,
        Metric::MorselsClaimed,
        Metric::MorselsStolen,
        Metric::FallbackBuilds,
    ];

    /// Snake-case label used in JSON snapshots.
    pub fn label(self) -> &'static str {
        match self {
            Metric::ScanTuplesIn => "scan_tuples_in",
            Metric::ScanTuplesOut => "scan_tuples_out",
            Metric::LpKeysProbed => "lp_keys_probed",
            Metric::LpProbes => "lp_probes",
            Metric::DhKeysProbed => "dh_keys_probed",
            Metric::DhProbes => "dh_probes",
            Metric::LpKeysBuilt => "lp_keys_built",
            Metric::LpBuildConflictRetries => "lp_build_conflict_retries",
            Metric::CuckooKeysBuilt => "cuckoo_keys_built",
            Metric::CuckooDisplacements => "cuckoo_displacements",
            Metric::BloomKeysProbed => "bloom_keys_probed",
            Metric::BloomWordsTouched => "bloom_words_touched",
            Metric::PartHistTuples => "part_hist_tuples",
            Metric::PartShuffleTuples => "part_shuffle_tuples",
            Metric::PartConflictsSerialized => "part_conflicts_serialized",
            Metric::PartBufferFlushes => "part_buffer_flushes",
            Metric::PartStreamingStoreBytes => "part_streaming_store_bytes",
            Metric::PartTuplesFlushed => "part_tuples_flushed",
            Metric::PartTuplesResidual => "part_tuples_residual",
            Metric::ColBlocksDecoded => "col_blocks_decoded",
            Metric::SortPasses => "sort_passes",
            Metric::SortBytesMoved => "sort_bytes_moved",
            Metric::JoinBuildTuples => "join_build_tuples",
            Metric::JoinProbeTuples => "join_probe_tuples",
            Metric::JoinPartitionFanout => "join_partition_fanout",
            Metric::MorselsClaimed => "morsels_claimed",
            Metric::MorselsStolen => "morsels_stolen",
            Metric::FallbackBuilds => "fallback_builds",
        }
    }

    /// The counter's reproducibility class.
    pub fn class(self) -> MetricClass {
        use Metric::*;
        match self {
            ScanTuplesIn | ScanTuplesOut | LpKeysProbed | LpProbes | DhKeysProbed | DhProbes
            | LpKeysBuilt | CuckooKeysBuilt | BloomKeysProbed | BloomWordsTouched
            | PartHistTuples | PartShuffleTuples | ColBlocksDecoded | SortPasses
            | SortBytesMoved | JoinBuildTuples | JoinProbeTuples | JoinPartitionFanout => {
                MetricClass::Work
            }
            LpBuildConflictRetries
            | CuckooDisplacements
            | PartConflictsSerialized
            | PartBufferFlushes
            | PartStreamingStoreBytes
            | PartTuplesFlushed
            | PartTuplesResidual
            | MorselsClaimed
            | FallbackBuilds => MetricClass::WidthDependent,
            MorselsStolen => MetricClass::Unstable,
        }
    }
}

/// One thread's worth of counters: the flat [`Metric`] counts plus the
/// histograms that need more than a single cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counters {
    /// Flat counters, indexed by `Metric as usize`.
    pub counts: [u64; Metric::COUNT],
    /// Lanes-active histogram per scan variant: `scan_lanes[v][a]` counts
    /// vectors of variant `v` (index in `ScanVariant::ALL`) that had `a`
    /// predicate-passing lanes.
    pub scan_lanes: [[u64; LANE_BUCKETS]; SCAN_VARIANTS],
    /// Compressed blocks decoded per packed bit width.
    pub col_width_blocks: [u64; WIDTH_BUCKETS],
    /// Morsel phase latencies in log₂-nanosecond buckets (class
    /// [`MetricClass::Unstable`]: never compared, only reported).
    pub phase_ns: [u64; PHASE_BUCKETS],
}

impl Counters {
    /// All-zero counters.
    pub const fn new() -> Counters {
        Counters {
            counts: [0; Metric::COUNT],
            scan_lanes: [[0; LANE_BUCKETS]; SCAN_VARIANTS],
            col_width_blocks: [0; WIDTH_BUCKETS],
            phase_ns: [0; PHASE_BUCKETS],
        }
    }

    /// The value of one flat counter.
    pub fn get(&self, m: Metric) -> u64 {
        self.counts[m as usize]
    }

    /// Add `n` to one flat counter.
    pub fn bump(&mut self, m: Metric, n: u64) {
        self.counts[m as usize] += n;
    }

    /// Element-wise accumulate `other` into `self`.
    pub fn add(&mut self, other: &Counters) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        for (av, bv) in self.scan_lanes.iter_mut().zip(&other.scan_lanes) {
            for (a, b) in av.iter_mut().zip(bv) {
                *a += b;
            }
        }
        for (a, b) in self
            .col_width_blocks
            .iter_mut()
            .zip(&other.col_width_blocks)
        {
            *a += b;
        }
        for (a, b) in self.phase_ns.iter_mut().zip(&other.phase_ns) {
            *a += b;
        }
    }

    /// Reset every counter to zero.
    pub fn clear(&mut self) {
        *self = Counters::new();
    }

    /// `true` when nothing was recorded.
    pub fn is_zero(&self) -> bool {
        self == &Counters::new()
    }

    /// Canonical little-endian bytes of the [`MetricClass::Work`]
    /// counters (including the per-width block histogram, whose buckets
    /// are fixed by the canonical 16-lane block format). Byte-identical
    /// across backends of any lane width.
    pub fn work_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for m in Metric::ALL {
            if m.class() == MetricClass::Work {
                out.extend_from_slice(&self.get(m).to_le_bytes());
            }
        }
        for b in self.col_width_blocks {
            out.extend_from_slice(&b.to_le_bytes());
        }
        out
    }

    /// Canonical bytes of every deterministic counter: the work bytes
    /// plus the width-dependent counters and the lanes-active histograms.
    /// Byte-identical across backends with the *same* lane width.
    pub fn deterministic_bytes(&self) -> Vec<u8> {
        let mut out = self.work_bytes();
        for m in Metric::ALL {
            if m.class() == MetricClass::WidthDependent {
                out.extend_from_slice(&self.get(m).to_le_bytes());
            }
        }
        for v in &self.scan_lanes {
            for b in v {
                out.extend_from_slice(&b.to_le_bytes());
            }
        }
        out
    }

    /// Compact JSON object in the style of the bench harness rows: flat
    /// counters by label (zero counters omitted), then the non-empty
    /// histograms.
    pub fn to_json(&self) -> String {
        fn trim(h: &[u64]) -> &[u64] {
            let last = h.iter().rposition(|&b| b != 0).map_or(0, |p| p + 1);
            &h[..last]
        }
        fn put_array(out: &mut String, vals: &[u64]) {
            out.push('[');
            for (i, v) in vals.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&v.to_string());
            }
            out.push(']');
        }
        let mut out = String::from("{");
        let mut first = true;
        let mut field = |out: &mut String, name: &str| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            out.push_str(name);
            out.push_str("\":");
        };
        for m in Metric::ALL {
            let v = self.get(m);
            if v != 0 {
                field(&mut out, m.label());
                out.push_str(&v.to_string());
            }
        }
        if self.scan_lanes.iter().any(|v| v.iter().any(|&b| b != 0)) {
            field(&mut out, "scan_lanes");
            out.push('{');
            let mut first_v = true;
            for (vi, v) in self.scan_lanes.iter().enumerate() {
                let t = trim(v);
                if t.is_empty() {
                    continue;
                }
                if !first_v {
                    out.push(',');
                }
                first_v = false;
                out.push_str(&format!("\"{vi}\":"));
                put_array(&mut out, t);
            }
            out.push('}');
        }
        if self.col_width_blocks.iter().any(|&b| b != 0) {
            field(&mut out, "col_width_blocks");
            put_array(&mut out, trim(&self.col_width_blocks));
        }
        if self.phase_ns.iter().any(|&b| b != 0) {
            field(&mut out, "phase_ns_log2");
            put_array(&mut out, trim(&self.phase_ns));
        }
        out.push('}');
        out
    }
}

impl Default for Counters {
    fn default() -> Counters {
        Counters::new()
    }
}

/// A destination for per-thread counter flushes.
pub trait MetricSink {
    /// Absorb the counters one worker accumulated. `thread_id` is the
    /// worker's slot, mirroring `SchedulerStats`' thread-id order.
    fn absorb(&mut self, thread_id: usize, c: &Counters);

    /// Whether running under this sink should record at all. The default
    /// is `true`; [`NoopSink`] returns `false` so [`collect_with`] runs
    /// the closure with metering disabled.
    fn metered(&self) -> bool {
        true
    }
}

/// Discards everything: `absorb` has an empty inline body and `metered`
/// is `false`, so a [`collect_with`] run under a `NoopSink` records
/// nothing and the per-kernel metered branches stay untaken.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl MetricSink for NoopSink {
    #[inline(always)]
    fn absorb(&mut self, _: usize, _: &Counters) {}

    #[inline(always)]
    fn metered(&self) -> bool {
        false
    }
}

/// Per-thread counters, merged worker-by-worker exactly like
/// `rsv_exec::SchedulerStats`: slot `i` accumulates everything worker `i`
/// flushed, and [`CountingSink::merge`] folds another region's sink in by
/// matching slots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// One entry per worker, in thread-id order.
    pub workers: Vec<Counters>,
}

impl CountingSink {
    /// An empty sink.
    pub const fn new() -> CountingSink {
        CountingSink {
            workers: Vec::new(),
        }
    }

    /// Fold another sink into this one, worker by worker (commutative and
    /// associative, with `CountingSink::default()` as identity — see the
    /// property tests).
    pub fn merge(&mut self, other: &CountingSink) {
        if self.workers.len() < other.workers.len() {
            self.workers.resize(other.workers.len(), Counters::new());
        }
        for (into, from) in self.workers.iter_mut().zip(&other.workers) {
            into.add(from);
        }
    }

    /// Every worker's counters summed into one.
    pub fn total(&self) -> Counters {
        let mut t = Counters::new();
        for w in &self.workers {
            t.add(w);
        }
        t
    }

    /// Drop trailing all-zero worker slots (merging sinks from regions
    /// with different thread counts leaves empty tails).
    pub fn trim(&mut self) {
        while self.workers.last().is_some_and(|w| w.is_zero()) {
            self.workers.pop();
        }
    }
}

impl MetricSink for CountingSink {
    fn absorb(&mut self, thread_id: usize, c: &Counters) {
        if self.workers.len() <= thread_id {
            self.workers.resize(thread_id + 1, Counters::new());
        }
        self.workers[thread_id].add(c);
    }
}

// ---------------------------------------------------------------------
// Thread-scoped recording machinery.
// ---------------------------------------------------------------------

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static LOCAL: RefCell<Counters> = const { RefCell::new(Counters::new()) };
}

/// The collection target live sessions flush into. Guarded separately
/// from [`SESSION`] so worker threads can flush while the session lock
/// is held by the session owner.
static DATA: Mutex<CountingSink> = Mutex::new(CountingSink::new());

/// Serializes [`collect`] sessions: `cargo test` runs tests on many
/// threads of one process, and two concurrent sessions would mix their
/// counters in [`DATA`].
static SESSION: Mutex<()> = Mutex::new(());

/// Lock that shrugs off poisoning: a panicking metered test must not take
/// every later session down with it.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Is metering enabled on the current thread? Kernels hoist this out of
/// their hot loops; with the `noop` feature it is a constant `false`.
#[inline(always)]
pub fn enabled() -> bool {
    #[cfg(feature = "noop")]
    {
        false
    }
    #[cfg(not(feature = "noop"))]
    {
        ENABLED.with(|e| e.get())
    }
}

/// Set the current thread's metering flag. Schedulers capture
/// [`enabled`] before spawning workers and mirror it into each worker so
/// metering follows the session's call tree and nothing else.
#[inline]
pub fn set_thread_metering(on: bool) {
    #[cfg(feature = "noop")]
    {
        let _ = on;
    }
    #[cfg(not(feature = "noop"))]
    {
        ENABLED.with(|e| e.set(on));
    }
}

/// Add `n` to a flat counter (no-op when metering is off).
#[inline]
pub fn count(m: Metric, n: u64) {
    #[cfg(feature = "noop")]
    {
        let _ = (m, n);
    }
    #[cfg(not(feature = "noop"))]
    {
        if enabled() && n != 0 {
            LOCAL.with(|c| c.borrow_mut().counts[m as usize] += n);
        }
    }
}

/// Accumulate a kernel-local lanes-active histogram for one scan variant
/// (`variant` indexes `ScanVariant::ALL`).
#[inline]
pub fn add_scan_lanes(variant: usize, hist: &[u64; LANE_BUCKETS]) {
    #[cfg(feature = "noop")]
    {
        let _ = (variant, hist);
    }
    #[cfg(not(feature = "noop"))]
    {
        if enabled() {
            LOCAL.with(|c| {
                let mut c = c.borrow_mut();
                for (a, b) in c.scan_lanes[variant].iter_mut().zip(hist) {
                    *a += b;
                }
            });
        }
    }
}

/// Count `n` decoded blocks of packed width `width` (also bumps
/// [`Metric::ColBlocksDecoded`]).
#[inline]
pub fn count_blocks_decoded(width: usize, n: u64) {
    #[cfg(feature = "noop")]
    {
        let _ = (width, n);
    }
    #[cfg(not(feature = "noop"))]
    {
        if enabled() && n != 0 {
            LOCAL.with(|c| {
                let mut c = c.borrow_mut();
                c.counts[Metric::ColBlocksDecoded as usize] += n;
                c.col_width_blocks[width.min(WIDTH_BUCKETS - 1)] += n;
            });
        }
    }
}

/// Record one morsel phase latency into the log₂-nanosecond histogram.
#[inline]
pub fn record_phase_ns(ns: u64) {
    #[cfg(feature = "noop")]
    {
        let _ = ns;
    }
    #[cfg(not(feature = "noop"))]
    {
        if enabled() {
            let bucket = (64 - ns.leading_zeros() as usize).min(PHASE_BUCKETS - 1);
            LOCAL.with(|c| c.borrow_mut().phase_ns[bucket] += 1);
        }
    }
}

/// Flush the current thread's counters into the live session as worker
/// `thread_id`, clearing the thread-local accumulator. Called by the
/// scheduler when a worker finishes and by sessions on the calling
/// thread.
pub fn flush_worker(thread_id: usize) {
    #[cfg(feature = "noop")]
    {
        let _ = thread_id;
    }
    #[cfg(not(feature = "noop"))]
    {
        if !enabled() {
            return;
        }
        LOCAL.with(|c| {
            let mut c = c.borrow_mut();
            if !c.is_zero() {
                lock(&DATA).absorb(thread_id, &c);
                c.clear();
            }
        });
    }
}

/// Restores the thread flag (and drops stale thread-local counts) even
/// when the metered closure panics.
struct SessionReset {
    prev: bool,
}

impl Drop for SessionReset {
    fn drop(&mut self) {
        LOCAL.with(|c| c.borrow_mut().clear());
        set_thread_metering(self.prev);
    }
}

thread_local! {
    /// This thread's session nesting depth; a nested [`collect`] (e.g.
    /// `Engine::profile` inside a bench harness metered re-run) must not
    /// re-acquire [`SESSION`], which it transitively holds.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Decrements [`DEPTH`] even when the metered closure panics.
struct DepthGuard;

impl Drop for DepthGuard {
    fn drop(&mut self) {
        DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// Run `f` with metering enabled on this thread (and, through the
/// scheduler, on every worker it spawns), returning `f`'s result and the
/// per-worker counters. Sessions are serialized process-wide; ambient
/// counters recorded on this thread before the session are discarded.
///
/// Sessions nest: a `collect` inside a metered closure parks the outer
/// session's partial sink (after flushing this thread's pending counts
/// into it), harvests its own, and restores the outer sink — the inner
/// run's counts appear only in the inner result, not in the outer total.
pub fn collect<R>(f: impl FnOnce() -> R) -> (R, CountingSink) {
    let nested = DEPTH.with(|d| {
        let n = d.get();
        d.set(n + 1);
        n > 0
    });
    let _depth = DepthGuard;
    let _session = if nested { None } else { Some(lock(&SESSION)) };
    let saved = if nested {
        flush_worker(0);
        Some(std::mem::take(&mut *lock(&DATA)))
    } else {
        None
    };
    let reset = SessionReset { prev: enabled() };
    LOCAL.with(|c| c.borrow_mut().clear());
    lock(&DATA).workers.clear();
    set_thread_metering(true);
    let r = f();
    flush_worker(0);
    drop(reset);
    let mut sink = std::mem::take(&mut *lock(&DATA));
    sink.trim();
    if let Some(saved) = saved {
        *lock(&DATA) = saved;
    }
    (r, sink)
}

/// Run `f` under an arbitrary [`MetricSink`]. A sink whose
/// [`MetricSink::metered`] is `false` (e.g. [`NoopSink`]) runs `f` with
/// metering disabled and absorbs nothing; otherwise this is [`collect`]
/// with the harvested workers handed to `sink`.
pub fn collect_with<S: MetricSink, R>(sink: &mut S, f: impl FnOnce() -> R) -> R {
    if !sink.metered() {
        return f();
    }
    let (r, data) = collect(f);
    for (id, w) in data.workers.iter().enumerate() {
        sink.absorb(id, w);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_clear() {
        let mut c = Counters::new();
        c.bump(Metric::ScanTuplesIn, 10);
        c.bump(Metric::ScanTuplesIn, 5);
        c.scan_lanes[2][7] += 3;
        assert_eq!(c.get(Metric::ScanTuplesIn), 15);
        let mut d = Counters::new();
        d.add(&c);
        d.add(&c);
        assert_eq!(d.get(Metric::ScanTuplesIn), 30);
        assert_eq!(d.scan_lanes[2][7], 6);
        d.clear();
        assert!(d.is_zero());
    }

    #[test]
    fn sink_absorbs_by_worker_slot() {
        let mut s = CountingSink::new();
        let mut c = Counters::new();
        c.bump(Metric::LpProbes, 4);
        s.absorb(2, &c);
        s.absorb(0, &c);
        s.absorb(2, &c);
        assert_eq!(s.workers.len(), 3);
        assert_eq!(s.workers[0].get(Metric::LpProbes), 4);
        assert_eq!(s.workers[1].get(Metric::LpProbes), 0);
        assert_eq!(s.workers[2].get(Metric::LpProbes), 8);
        assert_eq!(s.total().get(Metric::LpProbes), 12);
    }

    #[test]
    fn every_metric_has_distinct_label_and_index() {
        let mut seen = std::collections::HashSet::new();
        for (i, m) in Metric::ALL.iter().enumerate() {
            assert_eq!(*m as usize, i, "discriminant order");
            assert!(seen.insert(m.label()), "duplicate label {}", m.label());
        }
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn collect_harvests_only_session_counts() {
        count(Metric::ScanTuplesIn, 999); // ambient, metering off: dropped
        let ((), sink) = collect(|| {
            count(Metric::ScanTuplesIn, 7);
            count(Metric::ScanTuplesOut, 3);
        });
        assert_eq!(sink.total().get(Metric::ScanTuplesIn), 7);
        assert_eq!(sink.total().get(Metric::ScanTuplesOut), 3);
        assert!(!enabled(), "metering flag restored");
        let ((), sink2) = collect(|| count(Metric::LpProbes, 1));
        assert_eq!(sink2.total().get(Metric::ScanTuplesIn), 0, "no bleed");
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn noop_sink_runs_unmetered() {
        let mut noop = NoopSink;
        collect_with(&mut noop, || {
            assert!(!enabled());
            count(Metric::ScanTuplesIn, 5);
        });
        let mut counting = CountingSink::new();
        collect_with(&mut counting, || {
            assert!(enabled());
            count(Metric::ScanTuplesIn, 5);
        });
        assert_eq!(counting.total().get(Metric::ScanTuplesIn), 5);
    }

    /// A `collect` inside a metered closure (bench harness re-run around
    /// `Engine::profile`) must neither deadlock on the session lock nor
    /// leak its counts into the outer session's total.
    #[cfg(not(feature = "noop"))]
    #[test]
    fn nested_sessions_do_not_deadlock_or_leak() {
        let ((), outer) = collect(|| {
            count(Metric::ScanTuplesIn, 5);
            let ((), inner) = collect(|| count(Metric::ScanTuplesIn, 7));
            assert_eq!(inner.total().get(Metric::ScanTuplesIn), 7);
            count(Metric::ScanTuplesIn, 11);
        });
        assert_eq!(outer.total().get(Metric::ScanTuplesIn), 16);
        assert!(!enabled(), "metering flag restored");
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn panic_in_session_restores_flag() {
        let r = std::panic::catch_unwind(|| {
            let _ = collect(|| -> () { panic!("boom") });
        });
        assert!(r.is_err());
        assert!(!enabled(), "flag restored after panic");
        let ((), sink) = collect(|| count(Metric::ScanTuplesIn, 1));
        assert_eq!(sink.total().get(Metric::ScanTuplesIn), 1);
    }

    #[test]
    fn json_snapshot_shape() {
        let mut c = Counters::new();
        c.bump(Metric::ScanTuplesIn, 100);
        c.bump(Metric::ScanTuplesOut, 40);
        c.scan_lanes[5][3] = 2;
        let j = c.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'), "{j}");
        assert!(j.contains("\"scan_tuples_in\":100"), "{j}");
        assert!(j.contains("\"scan_tuples_out\":40"), "{j}");
        assert!(j.contains("\"scan_lanes\":{\"5\":[0,0,0,2]}"), "{j}");
        assert!(!j.contains("lp_probes"), "zero counters omitted: {j}");
    }

    #[test]
    fn work_bytes_ignore_width_dependent_counters() {
        let mut a = Counters::new();
        let mut b = Counters::new();
        a.bump(Metric::ScanTuplesIn, 10);
        b.bump(Metric::ScanTuplesIn, 10);
        b.bump(Metric::PartBufferFlushes, 5); // width-dependent
        b.scan_lanes[2][8] = 1; // width-dependent
        b.phase_ns[10] = 1; // unstable
        assert_eq!(a.work_bytes(), b.work_bytes());
        assert_ne!(a.deterministic_bytes(), b.deterministic_bytes());
    }
}
