//! Synthetic workload generators.

use crate::relation::Relation;
use crate::Rng;

/// Remap the reserved hash-table sentinel `u32::MAX` to `0`.
///
/// Every generator in this module guarantees sentinel-free output:
/// `u32::MAX` is the hash tables' `EMPTY_KEY`, and feeding it into a
/// downstream build panics. `v % u32::MAX` is the identity on every other
/// value, so only draws of exactly `u32::MAX` (probability 2⁻³²) are
/// redirected.
#[inline]
fn avoid_sentinel(v: u32) -> u32 {
    v % u32::MAX
}

/// `n` uniformly distributed 32-bit keys (duplicates possible), never the
/// reserved `u32::MAX` sentinel.
pub fn uniform_u32(n: usize, rng: &mut Rng) -> Vec<u32> {
    (0..n).map(|_| avoid_sentinel(rng.next_u32())).collect()
}

/// `n` keys uniform over `[0, 2^bits)` — a column that bit-packs to
/// exactly `bits` bits per value (compressed-column experiments sweep
/// this). Sentinel-free for every `bits ≤ 32`.
///
/// # Panics
/// If `bits == 0` or `bits > 32`.
pub fn bounded_u32(n: usize, bits: u32, rng: &mut Rng) -> Vec<u32> {
    assert!((1..=32).contains(&bits), "bits must be in 1..=32");
    let mask = if bits == 32 {
        u32::MAX
    } else {
        (1u32 << bits) - 1
    };
    (0..n)
        .map(|_| avoid_sentinel(rng.next_u32() & mask))
        .collect()
}

/// `n` *distinct* 32-bit keys in random order, never the reserved
/// `u32::MAX` sentinel.
///
/// Uses a keyed Feistel-style bijection over `u32`, so arbitrarily large
/// `n` needs no duplicate-rejection bookkeeping. If the sentinel falls
/// inside the drawn prefix of the permutation it is swapped for the next
/// value *outside* the prefix (which the bijection guarantees is fresh).
///
/// # Panics
/// If `n > u32::MAX as usize` (all 2³² values would have to include the
/// sentinel).
pub fn unique_u32(n: usize, rng: &mut Rng) -> Vec<u32> {
    let k0: u32 = rng.next_u32() | 1; // odd multipliers are invertible mod 2^32
    let k1: u32 = rng.next_u32() | 1;
    let x0: u32 = rng.next_u32();
    let x1: u32 = rng.next_u32();
    unique_u32_with_keys(n, k0, k1, x0, x1)
}

/// One step of the keyed bijection behind [`unique_u32`]. Each operation
/// is itself a bijection on `u32`, so the composition is too.
#[inline]
fn feistel(i: u32, k0: u32, k1: u32, x0: u32, x1: u32) -> u32 {
    let mut v = i;
    v = v.wrapping_mul(k0);
    v ^= x0;
    v = v.rotate_left(13);
    v = v.wrapping_mul(k1);
    v ^= x1;
    v
}

/// [`unique_u32`] with explicit bijection keys (exposed for the sentinel
/// substitution test, which crafts keys placing `u32::MAX` in the prefix).
pub(crate) fn unique_u32_with_keys(n: usize, k0: u32, k1: u32, x0: u32, x1: u32) -> Vec<u32> {
    assert!(
        n <= u32::MAX as usize,
        "cannot draw more than 2^32 - 1 distinct sentinel-free u32 keys"
    );
    let mut keys: Vec<u32> = (0..n as u64)
        .map(|i| feistel(i as u32, k0, k1, x0, x1))
        .collect();
    if let Some(p) = keys.iter().position(|&k| k == u32::MAX) {
        // index n is outside the prefix, so its value is unused; it also
        // cannot be u32::MAX, which the bijection placed at index p < n.
        keys[p] = feistel(n as u32, k0, k1, x0, x1);
    }
    keys
}

/// Zipf-distributed keys over the domain `0..domain` with exponent `theta`
/// (sentinel-free by construction: the largest emitted key is
/// `domain − 1 ≤ u32::MAX − 1`).
///
/// The paper notes that joins, partitioning, and sorting are *faster* under
/// skew; this generator exists to exercise that claim in tests and the
/// skew-ablation benches.
pub fn zipf_u32(n: usize, domain: u32, theta: f64, rng: &mut Rng) -> Vec<u32> {
    assert!(domain > 0 && theta > 0.0);
    // Inverse-CDF sampling over a truncated harmonic series, using the
    // standard approximation for large domains.
    let zeta: f64 = (1..=domain.min(10_000))
        .map(|i| 1.0 / (f64::from(i)).powf(theta))
        .sum();
    (0..n)
        .map(|_| {
            let u: f64 = rng.f64();
            let mut cdf = 0.0;
            let mut pick = domain - 1;
            for i in 1..=domain.min(10_000) {
                cdf += 1.0 / f64::from(i).powf(theta) / zeta;
                if u <= cdf {
                    pick = i - 1;
                    break;
                }
            }
            pick
        })
        .collect()
}

/// Predicate bounds `(k_lower, k_upper)` selecting approximately
/// `selectivity` (in `[0, 1]`) of uniformly distributed `u32` keys.
pub fn selection_bounds(selectivity: f64) -> (u32, u32) {
    assert!(
        (0.0..=1.0).contains(&selectivity),
        "selectivity must be in [0, 1]"
    );
    let span = (selectivity * 2f64.powi(32)).round() as u64;
    if span == 0 {
        // Empty range: lower > upper never matches.
        (1, 0)
    } else {
        (0, (span - 1).min(u32::MAX as u64) as u32)
    }
}

/// `p - 1` sorted splitters that partition uniform `u32` keys into `p`
/// near-equal ranges (for range partitioning, Section 7.2).
pub fn splitters(p: usize) -> Vec<u32> {
    assert!(p >= 1);
    (1..p)
        .map(|i| ((i as u64) * (1u64 << 32) / (p as u64)) as u32)
        .map(|v| v.saturating_sub(1))
        .collect()
}

/// Shuffle a vector in place with the deterministic RNG.
pub fn shuffle<T>(v: &mut [T], rng: &mut Rng) {
    rng.shuffle(v);
}

/// A build/probe workload for hash tables and joins.
#[derive(Clone, Debug)]
pub struct JoinWorkload {
    /// Inner (build) relation.
    pub inner: Relation,
    /// Outer (probe) relation.
    pub outer: Relation,
    /// Expected number of join results.
    pub expected_matches: usize,
}

/// Generate a join workload (paper Figures 8, 9, 15, 19).
///
/// * `build` — number of tuples in the inner (build) relation,
/// * `probe` — number of tuples in the outer (probe) relation,
/// * `repeats` — average number of copies of each distinct inner key
///   (`1.0` = unique keys, the foreign-key join case),
/// * `match_fraction` — fraction of probe tuples whose key exists in the
///   inner relation.
///
/// With `repeats = r` and `match_fraction = 1/r` the expected output size
/// stays equal to `probe`, which is how Figure 9 varies repeats "with the
/// same output size".
pub fn join_workload(
    build: usize,
    probe: usize,
    repeats: f64,
    match_fraction: f64,
    rng: &mut Rng,
) -> JoinWorkload {
    assert!(build > 0 && probe > 0);
    assert!(repeats >= 1.0);
    assert!((0.0..=1.0).contains(&match_fraction));

    let distinct = ((build as f64 / repeats).ceil() as usize).clamp(1, build);
    // Draw distinct inner keys plus a disjoint pool of non-matching keys for
    // the probe side, from one unique stream.
    let non_matching = probe - (probe as f64 * match_fraction).round() as usize;
    let pool = unique_u32(distinct + non_matching.min(probe), rng);
    let (inner_keys_distinct, miss_pool) = pool.split_at(distinct);

    let mut inner_keys = Vec::with_capacity(build);
    for i in 0..build {
        inner_keys.push(inner_keys_distinct[i % distinct]);
    }
    shuffle(&mut inner_keys, rng);

    let mut outer_keys = Vec::with_capacity(probe);
    for i in 0..probe {
        if i < probe - non_matching {
            outer_keys.push(inner_keys_distinct[rng.index(distinct)]);
        } else {
            outer_keys.push(miss_pool[i % miss_pool.len().max(1)]);
        }
    }
    shuffle(&mut outer_keys, rng);

    // Every matching probe key hits all copies of that key in the inner
    // relation. Count exactly.
    let copies = build / distinct + usize::from(!build.is_multiple_of(distinct));
    let mut per_key_copies = vec![0usize; distinct];
    for i in 0..build {
        per_key_copies[i % distinct] += 1;
    }
    debug_assert!(per_key_copies
        .iter()
        .all(|&c| c == per_key_copies[0] || c + 1 >= copies));
    use std::collections::HashMap;
    let copy_of: HashMap<u32, usize> = inner_keys_distinct
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, per_key_copies[i]))
        .collect();
    let expected_matches = outer_keys
        .iter()
        .map(|k| copy_of.get(k).copied().unwrap_or(0))
        .sum();

    JoinWorkload {
        inner: Relation::with_rid_payloads(inner_keys),
        outer: Relation::with_rid_payloads(outer_keys),
        expected_matches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn no_generator_emits_the_empty_sentinel() {
        // the remap itself
        assert_eq!(avoid_sentinel(u32::MAX), 0);
        assert_eq!(avoid_sentinel(u32::MAX - 1), u32::MAX - 1);
        assert_eq!(avoid_sentinel(0), 0);
        // and the generators (probabilistic, plus the zipf bound)
        let mut rng = crate::rng(99);
        assert!(!uniform_u32(100_000, &mut rng).contains(&u32::MAX));
        assert!(!unique_u32(100_000, &mut rng).contains(&u32::MAX));
        assert!(zipf_u32(10_000, u32::MAX, 1.0, &mut rng)
            .iter()
            .all(|&k| k < u32::MAX));
        let w = join_workload(1_000, 5_000, 2.0, 0.5, &mut rng);
        assert!(!w.inner.keys.contains(&u32::MAX));
        assert!(!w.outer.keys.contains(&u32::MAX));
    }

    #[test]
    fn unique_substitutes_the_sentinel_in_prefix() {
        // Craft bijection keys so index 0 maps exactly to u32::MAX:
        // feistel(0) = rot13(x0) * k1 ^ x1, so pick x1 accordingly.
        let (k0, k1, x0) = (0x9E37_79B1u32 | 1, 0x85EB_CA77u32 | 1, 0xDEAD_BEEFu32);
        let pre = x0.rotate_left(13).wrapping_mul(k1);
        let x1 = pre ^ u32::MAX;
        assert_eq!(feistel(0, k0, k1, x0, x1), u32::MAX);
        let n = 64;
        let keys = unique_u32_with_keys(n, k0, k1, x0, x1);
        assert_eq!(keys.len(), n);
        assert!(!keys.contains(&u32::MAX), "sentinel must be substituted");
        // the substitute is the first out-of-prefix permutation value
        assert_eq!(keys[0], feistel(n as u32, k0, k1, x0, x1));
        let set: HashSet<u32> = keys.iter().copied().collect();
        assert_eq!(set.len(), n, "substitution must preserve distinctness");
    }

    #[test]
    fn unique_keys_are_unique() {
        let mut rng = crate::rng(42);
        let keys = unique_u32(100_000, &mut rng);
        let set: HashSet<u32> = keys.iter().copied().collect();
        assert_eq!(set.len(), keys.len());
    }

    #[test]
    fn unique_keys_differ_between_seeds() {
        let a = unique_u32(16, &mut crate::rng(1));
        let b = unique_u32(16, &mut crate::rng(2));
        assert_ne!(a, b);
    }

    #[test]
    fn uniform_is_deterministic_per_seed() {
        let a = uniform_u32(64, &mut crate::rng(7));
        let b = uniform_u32(64, &mut crate::rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn selection_bounds_hit_requested_selectivity() {
        let mut rng = crate::rng(3);
        let keys = uniform_u32(200_000, &mut rng);
        for sel in [0.0, 0.01, 0.1, 0.5, 1.0] {
            let (lo, hi) = selection_bounds(sel);
            let hits = keys.iter().filter(|&&k| k >= lo && k <= hi).count();
            let measured = hits as f64 / keys.len() as f64;
            assert!(
                (measured - sel).abs() < 0.01,
                "sel {sel} measured {measured}"
            );
        }
    }

    #[test]
    fn splitters_are_sorted_and_balanced() {
        let sp = splitters(8);
        assert_eq!(sp.len(), 7);
        assert!(sp.windows(2).all(|w| w[0] < w[1]));
        // uniform keys spread about evenly
        let keys = uniform_u32(80_000, &mut crate::rng(9));
        let mut counts = [0usize; 8];
        for k in keys {
            let p = sp.partition_point(|&s| s < k);
            counts[p] += 1;
        }
        for c in counts {
            assert!(
                (c as f64 - 10_000.0).abs() < 1_000.0,
                "unbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn join_workload_unique_keys() {
        let mut rng = crate::rng(11);
        let w = join_workload(1_000, 10_000, 1.0, 1.0, &mut rng);
        assert_eq!(w.inner.len(), 1_000);
        assert_eq!(w.outer.len(), 10_000);
        assert_eq!(w.expected_matches, 10_000);
        let distinct: HashSet<u32> = w.inner.keys.iter().copied().collect();
        assert_eq!(distinct.len(), 1_000);
    }

    #[test]
    fn join_workload_with_repeats_keeps_output_size() {
        let mut rng = crate::rng(13);
        let w = join_workload(1_000, 10_000, 2.5, 0.4, &mut rng);
        // output size stays ~probe: matching fraction 0.4 x 2.5 copies
        let expected = 10_000.0 * 0.4 * 2.5;
        assert!(
            (w.expected_matches as f64 - expected).abs() / expected < 0.05,
            "expected ~{expected}, got {}",
            w.expected_matches
        );
    }

    #[test]
    fn zipf_is_skewed() {
        let mut rng = crate::rng(17);
        let keys = zipf_u32(10_000, 1000, 1.0, &mut rng);
        let zeros = keys.iter().filter(|&&k| k == 0).count();
        // under zipf(1.0) the hottest key is far above uniform frequency
        assert!(zeros > 10 * (10_000 / 1000));
    }
}
