//! Relations and synthetic workload generators.
//!
//! The paper evaluates every operator on synthetically generated, uniformly
//! distributed 32-bit columns (Section 10: "All data are synthetically
//! generated in memory and follow the uniform distribution"). This crate
//! provides those workloads deterministically (seeded), plus the verification
//! helpers the experiment harness uses to check operator output cheaply.

#![deny(missing_docs)]
#![warn(clippy::all)]

mod gen;
mod prng;
mod relation;
mod verify;

pub use gen::{
    bounded_u32, join_workload, selection_bounds, shuffle, splitters, uniform_u32, unique_u32,
    zipf_u32, JoinWorkload,
};
pub use prng::Rng;
pub use relation::Relation;
pub use verify::{multiset_fingerprint, sum_u64};

/// Construct the deterministic RNG from a seed.
pub fn rng(seed: u64) -> Rng {
    Rng::seed_from_u64(seed)
}
