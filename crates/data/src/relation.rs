//! Column-oriented relations.

/// A column-store relation of 32-bit keys with one 32-bit payload column.
///
/// This is the tuple shape used by almost every experiment in the paper
/// ("32-bit key & payload"). Multi-column payload experiments (Figures 18
/// and 19) carry extra columns alongside.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Relation {
    /// The key column.
    pub keys: Vec<u32>,
    /// The payload column (usually record ids).
    pub payloads: Vec<u32>,
}

impl Relation {
    /// A relation whose payloads are the record ids `0..keys.len()`.
    pub fn with_rid_payloads(keys: Vec<u32>) -> Self {
        let payloads = (0..keys.len() as u32).collect();
        Relation { keys, payloads }
    }

    /// Build from parallel key/payload columns.
    ///
    /// # Panics
    /// If the columns have different lengths.
    pub fn new(keys: Vec<u32>, payloads: Vec<u32>) -> Self {
        assert_eq!(keys.len(), payloads.len(), "column length mismatch");
        Relation { keys, payloads }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// `true` when the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterate over `(key, payload)` tuples.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.keys.iter().copied().zip(self.payloads.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rid_payloads() {
        let r = Relation::with_rid_payloads(vec![5, 6, 7]);
        assert_eq!(r.payloads, vec![0, 1, 2]);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        let tuples: Vec<_> = r.iter().collect();
        assert_eq!(tuples, vec![(5, 0), (6, 1), (7, 2)]);
    }

    #[test]
    #[should_panic(expected = "column length mismatch")]
    fn mismatched_columns_panic() {
        let _ = Relation::new(vec![1], vec![]);
    }
}
