//! Cheap output-verification helpers for the experiment harness.
//!
//! Operators like joins and partitioning may legally reorder their output
//! (the paper's vertically vectorized probing is explicitly *unstable*), so
//! experiments verify results with order-independent fingerprints instead of
//! elementwise comparison.

/// Sum of a `u32` column, widened (never wraps for realistic sizes).
pub fn sum_u64(column: &[u32]) -> u64 {
    column.iter().map(|&x| u64::from(x)).sum()
}

/// An order-independent fingerprint of a multiset of tuples.
///
/// Combines a commutative sum and xor of a mixed tuple hash: equal
/// multisets always produce equal fingerprints, and unequal ones collide
/// with negligible probability.
pub fn multiset_fingerprint<I>(tuples: I) -> (u64, u64)
where
    I: IntoIterator,
    I::Item: core::hash::Hash,
{
    use core::hash::{Hash, Hasher};
    let mut sum = 0u64;
    let mut xor = 0u64;
    for t in tuples {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        t.hash(&mut h);
        let v = h.finish();
        sum = sum.wrapping_add(v);
        xor ^= v.rotate_left(17);
    }
    (sum, xor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_widens() {
        assert_eq!(sum_u64(&[u32::MAX, u32::MAX]), 2 * u64::from(u32::MAX));
        assert_eq!(sum_u64(&[]), 0);
    }

    #[test]
    fn fingerprint_is_order_independent() {
        let a = multiset_fingerprint([(1u32, 2u32), (3, 4), (5, 6)]);
        let b = multiset_fingerprint([(5u32, 6u32), (1, 2), (3, 4)]);
        assert_eq!(a, b);
    }

    #[test]
    fn fingerprint_detects_differences() {
        let a = multiset_fingerprint([(1u32, 2u32), (3, 4)]);
        let b = multiset_fingerprint([(1u32, 2u32), (3, 5)]);
        let c = multiset_fingerprint([(1u32, 2u32), (3, 4), (3, 4)]);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
