//! A small, fast, dependency-free deterministic PRNG.
//!
//! The workload generators only need reproducible uniform bits, so this is
//! xoshiro256** (Blackman & Vigna) seeded through splitmix64 — the exact
//! construction its authors recommend. It is *not* cryptographic, and it
//! never needs to be: every consumer in this repository wants stable,
//! seedable test and benchmark data.

/// Deterministic RNG used throughout the workloads (xoshiro256**).
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
}

#[inline]
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Construct from a 64-bit seed (distinct seeds give independent
    /// streams; the same seed always gives the same stream).
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// The next 32 uniform bits.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `u64` in `[0, bound)` (Lemire's multiply-shift reduction;
    /// the tiny modulo bias is irrelevant for test workloads).
    ///
    /// # Panics
    /// If `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below: empty range");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform `usize` index in `[0, bound)`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// A uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 uniform mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, v: &mut [T]) {
        for i in (1..v.len()).rev() {
            let j = self.index(i + 1);
            v.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_range_and_covers() {
        let mut rng = Rng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = Rng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        // mean of U[0,1) over 10k draws
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left input in order");
    }
}
