//! Property tests: Bloom filter invariants on arbitrary inputs.

use rsv_bloom::BloomFilter;
use rsv_simd::Backend;
use rsv_testkit as tk;

/// The defining invariant: no false negatives, for any build set, any
/// probe set, any k, on any backend — and vector output is exactly the
/// scalar output as a multiset.
#[test]
fn no_false_negatives_and_backends_agree() {
    tk::check("no_false_negatives_and_backends_agree", 64, 0xb100, |rng| {
        let build = tk::vec_u32(rng, 0, 300);
        let probe = tk::vec_u32(rng, 0, 300);
        let k = 1 + rng.index(5);
        let bits_per_item = 4 + rng.index(12);

        let mut f = BloomFilter::new(build.len(), bits_per_item, k);
        f.build(&build);
        for &key in &build {
            assert!(f.contains(key), "false negative for {key:#x}");
        }

        let pays: Vec<u32> = (0..probe.len() as u32).collect();
        let mut sk = vec![0u32; probe.len()];
        let mut sp = vec![0u32; probe.len()];
        let ns = f.probe_scalar(&probe, &pays, &mut sk, &mut sp);
        let expected = rsv_data::multiset_fingerprint(sk[..ns].iter().zip(&sp[..ns]));

        for backend in Backend::all_available() {
            rsv_simd::dispatch!(backend, s => {
                let mut vk = vec![0u32; probe.len()];
                let mut vp = vec![0u32; probe.len()];
                let nv = f.probe_vector(s, &probe, &pays, &mut vk, &mut vp);
                assert_eq!(ns, nv, "count, backend {}", backend.name());
                assert_eq!(
                    expected,
                    rsv_data::multiset_fingerprint(vk[..nv].iter().zip(&vp[..nv])),
                    "multiset, backend {}",
                    backend.name()
                );
            });
        }
    });
}
