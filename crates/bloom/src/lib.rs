//! Bloom filters (paper Section 6, design of Polychroniou & Ross \[27\]).
//!
//! Bloom filters implement semi-joins: a tuple qualifies if `k` specific
//! bits, chosen by `k` hash functions, are all set. Most non-qualifying
//! tuples fail after one or two bit tests, so *early abort* is essential —
//! and is exactly what makes scalar code branchy and horizontal
//! vectorization wasteful.
//!
//! The vectorized probe processes a **different key per lane** and keeps a
//! per-lane *function counter*: each iteration tests one bit per lane;
//! lanes that fail a test or complete all `k` tests are recycled via
//! selective loads, so every lane does useful work every iteration.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod diff;

use rsv_simd::{MaskLike, Simd};

/// Maximum vector width any backend exposes (for stack lane buffers).
const MAX_LANES: usize = 32;

/// Maximum number of hash functions.
pub const MAX_FUNCTIONS: usize = 8;

/// A blocked-free (classic, bit-per-hash) Bloom filter over 32-bit keys.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    words: Vec<u32>,
    nbits: u32,
    factors: Vec<u32>,
    k: usize,
}

impl BloomFilter {
    /// A filter sized for `items` keys at `bits_per_item` bits each (the
    /// paper uses 10), probing with `k` hash functions (the paper uses 5).
    pub fn new(items: usize, bits_per_item: usize, k: usize) -> Self {
        assert!(
            (1..=MAX_FUNCTIONS).contains(&k),
            "1..={MAX_FUNCTIONS} hash functions supported"
        );
        let nbits = (items.max(1) * bits_per_item).next_multiple_of(32).max(64);
        assert!(
            nbits <= u32::MAX as usize,
            "filter too large for 32-bit bit indexes"
        );
        const SEEDS: [u32; MAX_FUNCTIONS] = [
            0x9E37_79B1,
            0x85EB_CA77,
            0xC2B2_AE3D,
            0x27D4_EB2F,
            0x1656_67B1,
            0x2545_F491,
            0x9E6D_62D1,
            0x7FEB_352D,
        ];
        BloomFilter {
            words: vec![0u32; nbits / 32],
            nbits: nbits as u32,
            factors: SEEDS[..k].to_vec(),
            k,
        }
    }

    /// Number of hash functions.
    pub fn functions(&self) -> usize {
        self.k
    }

    /// Size of the bit array in bytes (the paper's x-axis in Figure 10).
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// The `j`-th bit position for `key`: multiplicative hash into `[0, nbits)`.
    #[inline(always)]
    fn bit(&self, key: u32, j: usize) -> u32 {
        ((u64::from(key.wrapping_mul(self.factors[j])) * u64::from(self.nbits)) >> 32) as u32
    }

    /// Insert one key.
    pub fn insert(&mut self, key: u32) {
        for j in 0..self.k {
            let b = self.bit(key, j);
            self.words[(b >> 5) as usize] |= 1 << (b & 31);
        }
    }

    /// Build from a key column.
    pub fn build(&mut self, keys: &[u32]) {
        for &k in keys {
            self.insert(k);
        }
    }

    /// Membership test for one key (early abort on the first unset bit).
    #[inline]
    pub fn contains(&self, key: u32) -> bool {
        let mut touched = 0u64;
        let mut hit = true;
        for j in 0..self.k {
            let b = self.bit(key, j);
            touched += 1;
            if self.words[(b >> 5) as usize] & (1 << (b & 31)) == 0 {
                hit = false;
                break;
            }
        }
        rsv_metrics::count(rsv_metrics::Metric::BloomWordsTouched, touched);
        hit
    }

    /// Scalar probe: write qualifying keys/payloads to the output fronts,
    /// returning the qualifier count.
    pub fn probe_scalar(
        &self,
        keys: &[u32],
        pays: &[u32],
        out_keys: &mut [u32],
        out_pays: &mut [u32],
    ) -> usize {
        assert_eq!(keys.len(), pays.len(), "column length mismatch");
        rsv_metrics::count(rsv_metrics::Metric::BloomKeysProbed, keys.len() as u64);
        let mut j = 0;
        for (&k, &p) in keys.iter().zip(pays) {
            if self.contains(k) {
                out_keys[j] = k;
                out_pays[j] = p;
                j += 1;
            }
        }
        j
    }

    /// Vertically vectorized probe \[27\]: a different key per lane with a
    /// per-lane hash-function counter; finished lanes (first failed bit or
    /// all `k` bits passed) are selectively reloaded. The output order is
    /// not the input order.
    pub fn probe_vector<S: Simd>(
        &self,
        s: S,
        keys: &[u32],
        pays: &[u32],
        out_keys: &mut [u32],
        out_pays: &mut [u32],
    ) -> usize {
        assert_eq!(keys.len(), pays.len(), "column length mismatch");
        s.vectorize(
            #[inline(always)]
            || self.probe_vector_impl(s, keys, pays, out_keys, out_pays),
        )
    }

    #[inline(always)]
    fn probe_vector_impl<S: Simd>(
        &self,
        s: S,
        keys: &[u32],
        pays: &[u32],
        out_keys: &mut [u32],
        out_pays: &mut [u32],
    ) -> usize {
        let w = S::LANES;
        let n = keys.len();
        rsv_metrics::count(rsv_metrics::Metric::BloomKeysProbed, n as u64);
        let mut touched = 0u64;
        let nbits = s.splat(self.nbits);
        let kfun = s.splat(self.k as u32);
        let one = s.splat(1);
        let b31 = s.splat(31);
        let mut factors_padded = [0u32; MAX_FUNCTIONS];
        factors_padded[..self.k].copy_from_slice(&self.factors);
        let mut k = s.zero();
        let mut v = s.zero();
        let mut fj = s.zero(); // per-lane function counter
        let mut m = S::M::all(); // lanes to reload
        let mut out = 0usize;
        let mut i = 0usize;
        while i + w <= n {
            k = s.selective_load(k, m, &keys[i..]);
            v = s.selective_load(v, m, &pays[i..]);
            fj = s.blend(m, s.zero(), fj);
            i += m.count();
            // bit index of each lane's current function
            let f = s.gather(&factors_padded, fj);
            let b = s.mulhi(s.mullo(k, f), nbits);
            let word = s.gather(&self.words, s.shr(b, 5));
            touched += w as u64;
            let bit = s.and(s.shrv(word, s.and(b, b31)), one);
            let pass = s.cmpeq(bit, one);
            fj = s.blend(pass, s.add(fj, one), fj);
            let qualified = pass.and(s.cmpeq(fj, kfun));
            if qualified.any() {
                s.selective_store(&mut out_keys[out..], qualified, k);
                out += s.selective_store(&mut out_pays[out..], qualified, v);
            }
            m = pass.not().or(qualified);
        }
        // Drain in-flight lanes, then the tail, with scalar code.
        let mut ka = [0u32; MAX_LANES];
        let mut va = [0u32; MAX_LANES];
        let mut ja = [0u32; MAX_LANES];
        s.store(k, &mut ka[..w]);
        s.store(v, &mut va[..w]);
        s.store(fj, &mut ja[..w]);
        for lane in m.not().iter_set() {
            let key = ka[lane];
            let mut ok = true;
            for j in ja[lane] as usize..self.k {
                let b = self.bit(key, j);
                touched += 1;
                if self.words[(b >> 5) as usize] & (1 << (b & 31)) == 0 {
                    ok = false;
                    break;
                }
            }
            if ok {
                out_keys[out] = key;
                out_pays[out] = va[lane];
                out += 1;
            }
        }
        rsv_metrics::count(rsv_metrics::Metric::BloomWordsTouched, touched);
        for idx in i..n {
            if self.contains(keys[idx]) {
                out_keys[out] = keys[idx];
                out_pays[out] = pays[idx];
                out += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsv_simd::Portable;

    #[test]
    fn no_false_negatives() {
        let mut rng = rsv_data::rng(51);
        let keys = rsv_data::unique_u32(10_000, &mut rng);
        let mut f = BloomFilter::new(keys.len(), 10, 5);
        f.build(&keys);
        assert!(keys.iter().all(|&k| f.contains(k)));
    }

    #[test]
    fn false_positive_rate_close_to_theory() {
        let mut rng = rsv_data::rng(52);
        let all = rsv_data::unique_u32(40_000, &mut rng);
        let (inside, outside) = all.split_at(20_000);
        let mut f = BloomFilter::new(inside.len(), 10, 5);
        f.build(inside);
        let fp = outside.iter().filter(|&&k| f.contains(k)).count();
        let rate = fp as f64 / outside.len() as f64;
        // theory: (1 - e^{-k/10})^k ≈ 0.9% for k=5, 10 bits/item
        assert!(rate < 0.05, "false positive rate too high: {rate}");
    }

    #[test]
    fn vector_probe_matches_scalar_multiset() {
        let s = Portable::<16>::new();
        let mut rng = rsv_data::rng(53);
        let all = rsv_data::unique_u32(4000, &mut rng);
        let (inside, outside) = all.split_at(1000);
        let mut f = BloomFilter::new(inside.len(), 10, 5);
        f.build(inside);

        // probe stream: 5%-ish hits (paper's Figure 10 selectivity)
        let keys: Vec<u32> = (0..3000)
            .map(|i| {
                if i % 20 == 0 {
                    inside[i % inside.len()]
                } else {
                    outside[i % outside.len()]
                }
            })
            .collect();
        let pays: Vec<u32> = (0..3000).collect();

        let mut sk = vec![0u32; keys.len()];
        let mut sp = vec![0u32; keys.len()];
        let ns = f.probe_scalar(&keys, &pays, &mut sk, &mut sp);

        let mut vk = vec![0u32; keys.len()];
        let mut vp = vec![0u32; keys.len()];
        let nv = f.probe_vector(s, &keys, &pays, &mut vk, &mut vp);

        assert_eq!(ns, nv);
        let a = rsv_data::multiset_fingerprint(sk[..ns].iter().zip(&sp[..ns]));
        let b = rsv_data::multiset_fingerprint(vk[..nv].iter().zip(&vp[..nv]));
        assert_eq!(a, b);
    }

    #[test]
    fn small_inputs_and_tails() {
        let s = Portable::<16>::new();
        let mut f = BloomFilter::new(10, 10, 3);
        f.build(&[1, 2, 3]);
        for n in [0usize, 1, 15, 16, 17, 31] {
            let keys: Vec<u32> = (0..n as u32).collect();
            let pays: Vec<u32> = (100..100 + n as u32).collect();
            let mut sk = vec![0u32; n];
            let mut sp = vec![0u32; n];
            let ns = f.probe_scalar(&keys, &pays, &mut sk, &mut sp);
            let mut vk = vec![0u32; n];
            let mut vp = vec![0u32; n];
            let nv = f.probe_vector(s, &keys, &pays, &mut vk, &mut vp);
            assert_eq!(ns, nv, "n={n}");
            let a = rsv_data::multiset_fingerprint(sk[..ns].iter().zip(&sp[..ns]));
            let b = rsv_data::multiset_fingerprint(vk[..nv].iter().zip(&vp[..nv]));
            assert_eq!(a, b, "n={n}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn accelerated_backends_match() {
        let mut rng = rsv_data::rng(54);
        let keys = rsv_data::unique_u32(5000, &mut rng);
        let pays: Vec<u32> = (0..5000).collect();
        let mut f = BloomFilter::new(1000, 10, 5);
        f.build(&keys[..1000]);
        let mut sk = vec![0u32; keys.len()];
        let mut sp = vec![0u32; keys.len()];
        let ns = f.probe_scalar(&keys, &pays, &mut sk, &mut sp);
        let expected = rsv_data::multiset_fingerprint(sk[..ns].iter().zip(&sp[..ns]));
        if let Some(s) = rsv_simd::Avx512::new() {
            let mut vk = vec![0u32; keys.len()];
            let mut vp = vec![0u32; keys.len()];
            let nv = f.probe_vector(s, &keys, &pays, &mut vk, &mut vp);
            assert_eq!(ns, nv);
            assert_eq!(
                expected,
                rsv_data::multiset_fingerprint(vk[..nv].iter().zip(&vp[..nv]))
            );
        }
        if let Some(s) = rsv_simd::Avx2::new() {
            let mut vk = vec![0u32; keys.len()];
            let mut vp = vec![0u32; keys.len()];
            let nv = f.probe_vector(s, &keys, &pays, &mut vk, &mut vp);
            assert_eq!(ns, nv);
            assert_eq!(
                expected,
                rsv_data::multiset_fingerprint(vk[..nv].iter().zip(&vp[..nv]))
            );
        }
    }

    #[test]
    #[should_panic(expected = "hash functions supported")]
    fn too_many_functions_panics() {
        let _ = BloomFilter::new(10, 10, 9);
    }
}
