//! Differential-harness registration for the Bloom-filter probes.
//!
//! The vectorized probe retires lanes out of input order, so both sides
//! canonicalize to the sorted qualifier multiset. Bloom semantics (false
//! positives, never false negatives) are still differential-testable:
//! for a fixed filter the qualifier *set* is a pure function of the bit
//! array, so every probe implementation must agree exactly.

use crate::BloomFilter;
use rsv_simd::{dispatch, Backend};
use rsv_testkit::diff::{canonical_pairs, CaseInput, DiffOp, Kernel, Registry};
use rsv_testkit::Rng;

/// The case's filter, parameterized (bits per item, hash count) from the
/// case seed so the reference and kernels agree.
fn filter(input: &CaseInput) -> BloomFilter {
    let mut rng = Rng::seed_from_u64(input.seed ^ 0x424C_4F4F);
    let bits_per_item = 2 + rng.index(14);
    let k = 1 + rng.index(4);
    let mut f = BloomFilter::new(input.build_keys.len(), bits_per_item, k);
    f.build(&input.build_keys);
    f
}

fn reference(input: &CaseInput) -> Vec<u8> {
    let f = filter(input);
    let n = input.keys.len();
    let mut ok = vec![0u32; n];
    let mut op = vec![0u32; n];
    let c = f.probe_scalar(&input.keys, &input.pays, &mut ok, &mut op);
    canonical_pairs(&ok[..c], &op[..c])
}

fn run_vector(backend: Backend, _threads: usize, input: &CaseInput) -> Vec<u8> {
    let f = filter(input);
    let n = input.keys.len();
    // vector-width slack: the kernel stores whole vectors selectively
    let mut ok = vec![0u32; n + 64];
    let mut op = vec![0u32; n + 64];
    let c =
        dispatch!(backend, s => { f.probe_vector(s, &input.keys, &input.pays, &mut ok, &mut op) });
    canonical_pairs(&ok[..c], &op[..c])
}

/// Register the Bloom-filter probe operator.
pub fn register(r: &mut Registry) {
    r.register(DiffOp {
        name: "bloom-probe",
        reference,
        kernels: vec![Kernel {
            name: "probe-vector",
            threaded: false,
            run: run_vector,
        }],
    });
}
