//! Per-query run control: cooperative cancellation and memory budgets.
//!
//! A [`RunContext`] travels inside [`ExecPolicy`](crate::ExecPolicy) into
//! every parallel operator. It is cheap to clone (two `Arc`s) and its
//! default is inert — uncancellable, unlimited — so the infallible legacy
//! APIs pay nothing for it.
//!
//! **Cancellation latency is bounded by one morsel**: the token's flag is
//! checked at every morsel-claim boundary
//! ([`MorselQueue::claim`](crate::MorselQueue::claim) returns `None` once
//! cancelled), so each worker finishes at most the morsel it already
//! holds. The operator then observes the token after its scope joins and
//! returns [`EngineError::Cancelled`]; no kernel needs its own checks.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::EngineError;

/// A shared cancellation flag. Cloning shares the flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; never blocks. Workers observe it
    /// at their next morsel-claim boundary.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation was requested.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

#[derive(Debug)]
struct BudgetState {
    limit: u64,
    used: AtomicU64,
}

/// A byte budget gating large operator allocations (output buffers,
/// ping-pong columns, hash tables). `Default` is unlimited. Cloning
/// shares the accounting.
#[derive(Debug, Clone, Default)]
pub struct MemoryBudget {
    state: Option<Arc<BudgetState>>,
}

impl MemoryBudget {
    /// An unlimited budget (reservations always succeed).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A budget of `limit` bytes.
    pub fn bytes(limit: u64) -> Self {
        MemoryBudget {
            state: Some(Arc::new(BudgetState {
                limit,
                used: AtomicU64::new(0),
            })),
        }
    }

    /// Reserve `bytes` against the budget. Fails (without reserving) when
    /// the limit would be exceeded. The `exec.budget.reserve` failpoint
    /// can deny any reservation deterministically.
    pub fn reserve(&self, bytes: u64) -> Result<(), EngineError> {
        let injected = rsv_testkit::failpoint!("exec.budget.reserve");
        let Some(state) = &self.state else {
            return if injected {
                Err(EngineError::BudgetExceeded {
                    requested: bytes,
                    limit: 0,
                    used: 0,
                })
            } else {
                Ok(())
            };
        };
        // CAS loop: reserve only if the new total stays within the limit,
        // so concurrent reservations never overshoot and a failed attempt
        // leaves the accounting untouched.
        let mut used = state.used.load(Ordering::Relaxed);
        loop {
            let requested_total = used.saturating_add(bytes);
            if injected || requested_total > state.limit {
                return Err(EngineError::BudgetExceeded {
                    requested: bytes,
                    limit: state.limit,
                    used,
                });
            }
            match state.used.compare_exchange_weak(
                used,
                requested_total,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(cur) => used = cur,
            }
        }
    }

    /// Return `bytes` to the budget (for buffers freed mid-query).
    pub fn release(&self, bytes: u64) {
        if let Some(state) = &self.state {
            let mut used = state.used.load(Ordering::Relaxed);
            loop {
                let next = used.saturating_sub(bytes);
                match state.used.compare_exchange_weak(
                    used,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => return,
                    Err(cur) => used = cur,
                }
            }
        }
    }

    /// Bytes currently reserved (0 for an unlimited budget).
    pub fn used(&self) -> u64 {
        self.state
            .as_ref()
            .map_or(0, |s| s.used.load(Ordering::Relaxed))
    }

    /// The limit in bytes, if any.
    pub fn limit(&self) -> Option<u64> {
        self.state.as_ref().map(|s| s.limit)
    }
}

/// Everything a fallible operator run carries: a [`CancelToken`] and a
/// [`MemoryBudget`]. `Default` is inert (uncancellable, unlimited), which
/// is what the infallible legacy APIs run under.
#[derive(Debug, Clone, Default)]
pub struct RunContext {
    /// The query's cancellation token.
    pub cancel: CancelToken,
    /// The query's memory budget.
    pub budget: MemoryBudget,
}

impl RunContext {
    /// An inert context: uncancellable, unlimited.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the cancel token (lets several operator calls share one).
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Limit the context to `limit` bytes of large-buffer allocations.
    pub fn with_memory_limit(mut self, limit: u64) -> Self {
        self.budget = MemoryBudget::bytes(limit);
        self
    }

    /// A clone of the cancel token (hand this to whoever may cancel).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Whether cancellation was requested.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// `Err(EngineError::Cancelled)` once cancellation was requested.
    pub fn check_cancelled(&self) -> Result<(), EngineError> {
        if self.is_cancelled() {
            Err(EngineError::Cancelled)
        } else {
            Ok(())
        }
    }

    /// Reserve `bytes` against the budget, first honouring cancellation.
    pub fn reserve(&self, bytes: u64) -> Result<(), EngineError> {
        self.check_cancelled()?;
        self.budget.reserve(bytes)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn default_context_is_inert() {
        let ctx = RunContext::new();
        assert!(!ctx.is_cancelled());
        ctx.check_cancelled().unwrap();
        ctx.reserve(u64::MAX).unwrap();
        assert_eq!(ctx.budget.used(), 0);
        assert_eq!(ctx.budget.limit(), None);
    }

    #[test]
    fn cancel_is_shared_and_idempotent() {
        let ctx = RunContext::new();
        let token = ctx.cancel_token();
        token.cancel();
        token.cancel();
        assert!(ctx.is_cancelled());
        assert_eq!(ctx.check_cancelled(), Err(EngineError::Cancelled));
        assert_eq!(ctx.reserve(1), Err(EngineError::Cancelled));
    }

    #[test]
    fn budget_reserves_and_releases() {
        let b = MemoryBudget::bytes(100);
        b.reserve(60).unwrap();
        b.reserve(40).unwrap();
        let err = b.reserve(1).unwrap_err();
        assert_eq!(
            err,
            EngineError::BudgetExceeded {
                requested: 1,
                limit: 100,
                used: 100
            }
        );
        b.release(50);
        b.reserve(30).unwrap();
        assert_eq!(b.used(), 80);
    }

    #[test]
    fn failed_reserve_leaves_accounting_untouched() {
        let b = MemoryBudget::bytes(10);
        assert!(b.reserve(11).is_err());
        assert_eq!(b.used(), 0);
        b.reserve(10).unwrap();
        assert_eq!(b.used(), 10);
    }
}
