//! Shared mutable output regions for multi-threaded partitioning.

use core::cell::UnsafeCell;

/// A fixed-size buffer that multiple worker threads write *disjoint* parts
/// of concurrently (the paper's parallel shuffling: every thread owns a
/// distinct slice of each partition's output region, computed from the
/// interleaved prefix sums of the per-thread histograms).
///
/// Safe Rust cannot express "interleaved disjoint writes" through slice
/// splitting, so workers obtain raw mutable views with
/// [`SharedBuffer::view_mut`], whose contract they must uphold.
pub struct SharedBuffer<T: Copy> {
    /// Element count, duplicated outside the `UnsafeCell` so `len()` and
    /// `is_empty()` never read through the cell while workers hold
    /// `view_mut` views (the buffer is never resized while shared).
    len: usize,
    data: UnsafeCell<Vec<T>>,
}

// SAFETY: concurrent access is governed by the view_mut contract.
unsafe impl<T: Copy + Send> Send for SharedBuffer<T> {}
unsafe impl<T: Copy + Send> Sync for SharedBuffer<T> {}

impl<T: Copy + Default> SharedBuffer<T> {
    /// A zero-initialized shared buffer of `len` elements.
    pub fn zeroed(len: usize) -> Self {
        Self::from_vec(vec![T::default(); len])
    }
}

impl<T: Copy> SharedBuffer<T> {
    /// Wrap an existing vector.
    pub fn from_vec(v: Vec<T>) -> Self {
        SharedBuffer {
            len: v.len(),
            data: UnsafeCell::new(v),
        }
    }

    /// Number of elements. Always safe to call: the length lives in a
    /// plain field written at construction, so it never aliases the cell
    /// contents that concurrent workers may be writing.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A mutable view of the whole buffer.
    ///
    /// # Safety
    /// Callers must guarantee that between any two synchronization points
    /// no element is written by more than one thread, and no element is
    /// read by one thread while another writes it. The typical pattern is:
    /// workers write disjoint index sets, then cross a barrier before
    /// anyone reads.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn view_mut(&self) -> &mut [T] {
        (*self.data.get()).as_mut_slice()
    }

    /// Recover the underlying vector once all workers are done.
    pub fn into_vec(self) -> Vec<T> {
        self.data.into_inner()
    }

    /// A shared read-only view; callers must ensure no concurrent writers.
    ///
    /// # Safety
    /// See [`SharedBuffer::view_mut`].
    pub unsafe fn view(&self) -> &[T] {
        (*self.data.get()).as_slice()
    }
}

/// Per-morsel result slots for one scheduling phase.
///
/// Each slot is written exactly once — by whichever worker claimed the
/// corresponding morsel — before a barrier, and only read after it. This
/// is how morselized operators keep per-morsel state (histograms, staging
/// buffers, match counts) keyed by *morsel id* rather than worker id, which
/// is what makes their output independent of the claim schedule.
pub struct SlotMap<T> {
    /// Slot count, duplicated outside the `UnsafeCell` for the same
    /// reason as [`SharedBuffer::len`]: `len()` must not alias slots that
    /// workers are concurrently filling.
    len: usize,
    slots: UnsafeCell<Vec<Option<T>>>,
}

// SAFETY: concurrent access is governed by the put/get contracts below.
unsafe impl<T: Send> Send for SlotMap<T> {}
unsafe impl<T: Send> Sync for SlotMap<T> {}

impl<T> SlotMap<T> {
    /// `len` empty slots.
    pub fn new(len: usize) -> SlotMap<T> {
        SlotMap {
            len,
            slots: UnsafeCell::new((0..len).map(|_| None).collect()),
        }
    }

    /// Number of slots (a plain field — never reads through the cell).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the map has no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fill slot `i`.
    ///
    /// # Safety
    /// At most one worker may write a given slot between two barriers, and
    /// no other worker may read it until after the next barrier.
    pub unsafe fn put(&self, i: usize, value: T) {
        let slots: &mut Vec<Option<T>> = &mut *self.slots.get();
        slots[i] = Some(value);
    }

    /// Read slot `i` (panics if it was never filled).
    ///
    /// # Safety
    /// All writers must have crossed a barrier before any reads.
    // Documented panic: reading an unfilled slot violates the contract.
    #[allow(clippy::expect_used)]
    pub unsafe fn get(&self, i: usize) -> &T {
        let slots: &Vec<Option<T>> = &*self.slots.get();
        slots[i].as_ref().expect("slot never filled before read")
    }

    /// Mutably borrow slot `i` (panics if it was never filled).
    ///
    /// # Safety
    /// Same contract as [`SlotMap::put`]: one worker per slot per phase.
    // Documented panic: reading an unfilled slot violates the contract.
    #[allow(clippy::mut_from_ref, clippy::expect_used)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        let slots: &mut Vec<Option<T>> = &mut *self.slots.get();
        slots[i].as_mut().expect("slot never filled before read")
    }

    /// Recover all slots once every worker is done.
    pub fn into_values(self) -> Vec<Option<T>> {
        self.slots.into_inner()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::parallel::parallel_scope;

    #[test]
    fn disjoint_parallel_writes() {
        let buf: SharedBuffer<u32> = SharedBuffer::zeroed(4 * 1000);
        parallel_scope(4, |ctx| {
            // SAFETY: each worker writes only indexes == its id mod 4.
            let view = unsafe { buf.view_mut() };
            let t = ctx.thread_id;
            for i in (t..view.len()).step_by(4) {
                view[i] = (i * 2) as u32;
            }
        });
        let v = buf.into_vec();
        assert!(v.iter().enumerate().all(|(i, &x)| x == (i * 2) as u32));
    }

    #[test]
    fn slot_map_per_morsel_results() {
        use crate::morsel::{ExecPolicy, MorselQueue};
        let policy = ExecPolicy::new(4).with_morsel_tuples(100);
        let q = MorselQueue::new(5_000, &policy, 16);
        let slots: SlotMap<Vec<usize>> = SlotMap::new(q.morsel_count());
        parallel_scope(4, |ctx| {
            for m in ctx.morsels(&q) {
                // SAFETY: each morsel id is claimed exactly once.
                unsafe { slots.put(m.id, m.range.clone().collect()) };
            }
        });
        let values = slots.into_values();
        let total: usize = values
            .iter()
            .map(|v| v.as_ref().expect("unfilled slot").len())
            .sum();
        assert_eq!(total, 5_000);
        // slot i holds exactly morsel i's range, regardless of which
        // worker claimed it
        let mut next = 0;
        for v in values.iter().map(|v| v.as_ref().unwrap()) {
            for &x in v {
                assert_eq!(x, next);
                next += 1;
            }
        }
    }

    #[test]
    fn from_vec_roundtrip() {
        let buf = SharedBuffer::from_vec(vec![1u64, 2, 3]);
        assert_eq!(buf.len(), 3);
        assert!(!buf.is_empty());
        assert_eq!(buf.into_vec(), vec![1, 2, 3]);
    }
}
