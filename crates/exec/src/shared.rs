//! Shared mutable output regions for multi-threaded partitioning.

use core::cell::UnsafeCell;

/// A fixed-size buffer that multiple worker threads write *disjoint* parts
/// of concurrently (the paper's parallel shuffling: every thread owns a
/// distinct slice of each partition's output region, computed from the
/// interleaved prefix sums of the per-thread histograms).
///
/// Safe Rust cannot express "interleaved disjoint writes" through slice
/// splitting, so workers obtain raw mutable views with
/// [`SharedBuffer::view_mut`], whose contract they must uphold.
pub struct SharedBuffer<T: Copy> {
    data: UnsafeCell<Vec<T>>,
}

// SAFETY: concurrent access is governed by the view_mut contract.
unsafe impl<T: Copy + Send> Send for SharedBuffer<T> {}
unsafe impl<T: Copy + Send> Sync for SharedBuffer<T> {}

impl<T: Copy + Default> SharedBuffer<T> {
    /// A zero-initialized shared buffer of `len` elements.
    pub fn zeroed(len: usize) -> Self {
        SharedBuffer {
            data: UnsafeCell::new(vec![T::default(); len]),
        }
    }
}

impl<T: Copy> SharedBuffer<T> {
    /// Wrap an existing vector.
    pub fn from_vec(v: Vec<T>) -> Self {
        SharedBuffer {
            data: UnsafeCell::new(v),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        // SAFETY: reading the length field races with nothing (the Vec
        // itself is never resized while shared).
        unsafe { (*self.data.get()).len() }
    }

    /// `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A mutable view of the whole buffer.
    ///
    /// # Safety
    /// Callers must guarantee that between any two synchronization points
    /// no element is written by more than one thread, and no element is
    /// read by one thread while another writes it. The typical pattern is:
    /// workers write disjoint index sets, then cross a barrier before
    /// anyone reads.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn view_mut(&self) -> &mut [T] {
        (*self.data.get()).as_mut_slice()
    }

    /// Recover the underlying vector once all workers are done.
    pub fn into_vec(self) -> Vec<T> {
        self.data.into_inner()
    }

    /// A shared read-only view; callers must ensure no concurrent writers.
    ///
    /// # Safety
    /// See [`SharedBuffer::view_mut`].
    pub unsafe fn view(&self) -> &[T] {
        (*self.data.get()).as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::parallel_scope;

    #[test]
    fn disjoint_parallel_writes() {
        let buf: SharedBuffer<u32> = SharedBuffer::zeroed(4 * 1000);
        parallel_scope(4, |ctx| {
            // SAFETY: each worker writes only indexes == its id mod 4.
            let view = unsafe { buf.view_mut() };
            let t = ctx.thread_id;
            for i in (t..view.len()).step_by(4) {
                view[i] = (i * 2) as u32;
            }
        });
        let v = buf.into_vec();
        assert!(v.iter().enumerate().all(|(i, &x)| x == (i * 2) as u32));
    }

    #[test]
    fn from_vec_roundtrip() {
        let buf = SharedBuffer::from_vec(vec![1u64, 2, 3]);
        assert_eq!(buf.len(), 3);
        assert!(!buf.is_empty());
        assert_eq!(buf.into_vec(), vec![1, 2, 3]);
    }
}
