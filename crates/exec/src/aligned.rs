//! Cache-line aligned, heap-allocated buffers.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};

/// The alignment used for all buffers: one cache line / one 512-bit vector.
pub const CACHE_LINE: usize = 64;

/// A fixed-size, zero-initialized, 64-byte aligned buffer of `T`.
///
/// Streaming (non-temporal) stores and the paper's buffered shuffling
/// (Section 7.4) require buffers aligned to the cache line; `Vec<T>` gives
/// no such guarantee. `AlignedVec` dereferences to a slice for normal use.
pub struct AlignedVec<T: Copy> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: AlignedVec owns its allocation exclusively, like Vec.
unsafe impl<T: Copy + Send> Send for AlignedVec<T> {}
// SAFETY: shared access is only through &self -> &[T].
unsafe impl<T: Copy + Sync> Sync for AlignedVec<T> {}

impl<T: Copy> AlignedVec<T> {
    /// Allocate a zero-initialized buffer of `len` elements.
    ///
    /// # Panics
    /// If `len * size_of::<T>()` overflows `isize` or the allocation fails.
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return AlignedVec {
                ptr: core::ptr::null_mut(),
                len: 0,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (len > 0, T is not a ZST by the
        // size assert in `layout`).
        let ptr = unsafe { alloc_zeroed(layout) } as *mut T;
        if ptr.is_null() {
            handle_alloc_error(layout);
        }
        AlignedVec { ptr, len }
    }

    // Documented panic of `zeroed`: a layout this large is a caller bug.
    #[allow(clippy::expect_used)]
    fn layout(len: usize) -> Layout {
        assert!(
            core::mem::size_of::<T>() > 0,
            "AlignedVec does not support ZSTs"
        );
        Layout::array::<T>(len)
            .and_then(|l| l.align_to(CACHE_LINE))
            .expect("AlignedVec: allocation too large")
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<T: Copy> Deref for AlignedVec<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        if self.len == 0 {
            &[]
        } else {
            // SAFETY: ptr is valid for len elements, aligned, initialized.
            unsafe { core::slice::from_raw_parts(self.ptr, self.len) }
        }
    }
}

impl<T: Copy> DerefMut for AlignedVec<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut [T] {
        if self.len == 0 {
            &mut []
        } else {
            // SAFETY: exclusive access through &mut self.
            unsafe { core::slice::from_raw_parts_mut(self.ptr, self.len) }
        }
    }
}

impl<T: Copy> Drop for AlignedVec<T> {
    fn drop(&mut self) {
        if self.len != 0 {
            // SAFETY: allocated in `zeroed` with the same layout.
            unsafe { dealloc(self.ptr as *mut u8, Self::layout(self.len)) };
        }
    }
}

impl<T: Copy + core::fmt::Debug> core::fmt::Debug for AlignedVec<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn zeroed_and_aligned() {
        let v: AlignedVec<u32> = AlignedVec::zeroed(1000);
        assert_eq!(v.len(), 1000);
        assert!(v.iter().all(|&x| x == 0));
        assert_eq!(v.as_ptr() as usize % CACHE_LINE, 0);
    }

    #[test]
    fn mutation_roundtrip() {
        let mut v: AlignedVec<u64> = AlignedVec::zeroed(64);
        for (i, x) in v.iter_mut().enumerate() {
            *x = i as u64 * 3;
        }
        assert_eq!(v[63], 189);
        assert_eq!(&v[..3], &[0, 3, 6]);
    }

    #[test]
    fn empty_buffer() {
        let v: AlignedVec<u32> = AlignedVec::zeroed(0);
        assert!(v.is_empty());
        assert_eq!(&*v, &[] as &[u32]);
    }

    #[test]
    fn send_between_threads() {
        let mut v: AlignedVec<u32> = AlignedVec::zeroed(16);
        std::thread::scope(|s| {
            s.spawn(|| {
                v[0] = 42;
            });
        });
        assert_eq!(v[0], 42);
    }
}
