//! Platform inspection for the Table 1 reproduction.

/// A description of the machine the experiments run on, mirroring the rows
/// of the paper's Table 1.
#[derive(Debug, Clone)]
pub struct PlatformReport {
    /// Number of logical CPUs visible to this process.
    pub logical_cpus: usize,
    /// Whether AVX2 (8-lane gathers, no scatters) is available.
    pub has_avx2: bool,
    /// Whether AVX-512F (16-lane gathers and scatters) is available.
    pub has_avx512f: bool,
    /// Whether AVX-512CD (`vpconflictd`) is available.
    pub has_avx512cd: bool,
    /// First CPU model name from `/proc/cpuinfo`, if readable.
    pub model_name: Option<String>,
}

impl PlatformReport {
    /// The widest SIMD register available, in bits.
    pub fn simd_width_bits(&self) -> usize {
        if self.has_avx512f {
            512
        } else if self.has_avx2 {
            256
        } else {
            128
        }
    }
}

/// Inspect the current machine.
pub fn platform_report() -> PlatformReport {
    let logical_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    #[cfg(target_arch = "x86_64")]
    let (has_avx2, has_avx512f, has_avx512cd) = (
        std::arch::is_x86_feature_detected!("avx2"),
        std::arch::is_x86_feature_detected!("avx512f"),
        std::arch::is_x86_feature_detected!("avx512cd"),
    );
    #[cfg(not(target_arch = "x86_64"))]
    let (has_avx2, has_avx512f, has_avx512cd) = (false, false, false);

    let model_name = std::fs::read_to_string("/proc/cpuinfo").ok().and_then(|s| {
        s.lines()
            .find(|l| l.starts_with("model name"))
            .and_then(|l| l.split(':').nth(1))
            .map(|m| m.trim().to_string())
    });

    PlatformReport {
        logical_cpus,
        has_avx2,
        has_avx512f,
        has_avx512cd,
        model_name,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_consistent() {
        let r = platform_report();
        assert!(r.logical_cpus >= 1);
        if r.has_avx512f {
            // avx512 implies avx2 on every real CPU
            assert!(r.has_avx2);
            assert_eq!(r.simd_width_bits(), 512);
        }
    }
}
