//! Thread parallelism: morsel scheduling contexts plus barrier
//! synchronization, the substrate for the paper's per-operator phases.
//!
//! Workers run under panic isolation: each worker's closure executes under
//! `catch_unwind`, a panicking worker trips a shared abort flag (so its
//! siblings drain at the next morsel-claim boundary) and defects from the
//! phase barrier (so siblings blocked on it are released instead of
//! deadlocking). [`parallel_scope_try`] surfaces the first panic as a
//! [`WorkerPanic`]; the infallible [`parallel_scope_stats`] delegates to it
//! and re-raises the original payload.

use std::cell::{Cell, RefCell};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

use crate::morsel::{Morsel, MorselQueue};

/// Split `0..n` into `t` contiguous ranges with every interior boundary
/// aligned to `align` elements (power of two), so vector kernels never
/// straddle a range boundary mid-word.
///
/// Boundaries are the ideal equal-split points rounded to the *nearest*
/// multiple of `align`: when `n >= t * align` every range is non-empty and
/// lengths differ by at most about `2 * align`; smaller inputs may leave
/// trailing ranges empty (there are only `n / align` whole aligned blocks
/// to hand out). An interior boundary is either a multiple of `align` or
/// clamped to `n`.
pub fn chunk_ranges(n: usize, t: usize, align: usize) -> Vec<Range<usize>> {
    assert!(t > 0, "need at least one chunk");
    assert!(align.is_power_of_two(), "alignment must be a power of two");
    let mut ranges = Vec::with_capacity(t);
    let mut prev = 0usize;
    for i in 1..=t {
        let end = if i == t {
            n
        } else {
            let ideal = ((i as u128 * n as u128) / t as u128) as usize;
            // Round to nearest; the `u128` widening above and the saturating
            // add here keep the arithmetic safe for any `usize` input.
            let rounded = ideal.saturating_add(align / 2) & !(align - 1);
            rounded.clamp(prev, n)
        };
        ranges.push(prev..end);
        prev = end;
    }
    ranges
}

/// What one worker did during a [`parallel_scope_stats`] region.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Morsels this worker claimed (own span and stolen).
    pub morsels: u64,
    /// Morsels claimed from *another* worker's span.
    pub steals: u64,
    /// Tuples covered by the claimed morsels.
    pub tuples: u64,
    /// Wall-clock nanoseconds per named phase, in first-use order
    /// (repeated phases — e.g. one histogram phase per radix pass —
    /// accumulate into one entry).
    pub phase_ns: Vec<(&'static str, u64)>,
}

impl WorkerStats {
    fn record_claim(&mut self, m: &Morsel) {
        self.morsels += 1;
        self.steals += u64::from(m.stolen);
        self.tuples += m.range.len() as u64;
    }

    fn record_phase(&mut self, name: &'static str, ns: u64) {
        if let Some(e) = self.phase_ns.iter_mut().find(|e| e.0 == name) {
            e.1 += ns;
        } else {
            self.phase_ns.push((name, ns));
        }
    }
}

/// Per-worker scheduler instrumentation for one parallel region.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// One entry per worker, in thread-id order.
    pub workers: Vec<WorkerStats>,
}

impl SchedulerStats {
    /// Total morsels claimed across workers.
    pub fn total_morsels(&self) -> u64 {
        self.workers.iter().map(|w| w.morsels).sum()
    }

    /// Total steals across workers.
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Total tuples claimed across workers.
    pub fn total_tuples(&self) -> u64 {
        self.workers.iter().map(|w| w.tuples).sum()
    }

    /// Fold another region's stats into this one, worker by worker (for
    /// operators that run several parallel regions back to back).
    pub fn merge(&mut self, other: &SchedulerStats) {
        if self.workers.len() < other.workers.len() {
            self.workers
                .resize(other.workers.len(), WorkerStats::default());
        }
        for (into, from) in self.workers.iter_mut().zip(&other.workers) {
            into.morsels += from.morsels;
            into.steals += from.steals;
            into.tuples += from.tuples;
            for &(name, ns) in &from.phase_ns {
                into.record_phase(name, ns);
            }
        }
    }
}

impl std::fmt::Display for SchedulerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (id, w) in self.workers.iter().enumerate() {
            write!(
                f,
                "  worker {id}: {:>5} morsels ({:>3} stolen) {:>10} tuples",
                w.morsels, w.steals, w.tuples
            )?;
            for (name, ns) in &w.phase_ns {
                write!(f, "  {name} {:.2}ms", *ns as f64 / 1e6)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A worker panic captured by [`parallel_scope_try`]. Siblings of the
/// panicking worker drained cleanly before this was returned.
pub struct WorkerPanic {
    /// Thread id of the panicking worker.
    pub worker: usize,
    /// The morsel id the worker had last claimed, if any.
    pub morsel: Option<usize>,
    /// The original panic payload (re-raise with
    /// `std::panic::resume_unwind`, or stringify for an error).
    pub payload: Box<dyn std::any::Any + Send>,
}

impl WorkerPanic {
    /// Convert into the workspace error, stringifying the payload (the
    /// operator `*_try` functions' standard mapping).
    pub fn into_engine_error(self) -> crate::EngineError {
        crate::EngineError::WorkerPanicked {
            payload: crate::error::panic_message(self.payload.as_ref()),
            morsel: self.morsel,
        }
    }
}

impl std::fmt::Debug for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPanic")
            .field("worker", &self.worker)
            .field("morsel", &self.morsel)
            .field("payload", &"<panic payload>")
            .finish()
    }
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Worker panics are caught and never unwind through these guards, but
    // shrug poisoning off anyway: the protected state stays consistent.
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// A phase barrier that tolerates defecting (panicked) participants.
///
/// `std::sync::Barrier` would deadlock the surviving workers if a panicked
/// worker never arrives; here the panic handler calls [`PoisonBarrier::defect`],
/// which shrinks the participant count and releases the current generation
/// if everyone still standing has already arrived.
struct PoisonBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
}

struct BarrierState {
    participants: usize,
    arrived: usize,
    generation: u64,
}

impl PoisonBarrier {
    fn new(participants: usize) -> PoisonBarrier {
        PoisonBarrier {
            state: Mutex::new(BarrierState {
                participants,
                arrived: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) {
        let mut st = lock_unpoisoned(&self.state);
        let gen = st.generation;
        st.arrived += 1;
        if st.arrived >= st.participants {
            st.arrived = 0;
            st.generation += 1;
            self.cv.notify_all();
            return;
        }
        while st.generation == gen {
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// Permanently remove one participant (it panicked and will never
    /// arrive). Releases the current generation if everyone remaining has
    /// already arrived.
    fn defect(&self) {
        let mut st = lock_unpoisoned(&self.state);
        st.participants = st.participants.saturating_sub(1);
        if st.participants > 0 && st.arrived >= st.participants {
            st.arrived = 0;
            st.generation += 1;
            self.cv.notify_all();
        }
    }
}

/// State shared by every worker of one scope.
struct ScopeShared {
    barrier: PoisonBarrier,
    /// Set by the first panicking worker; siblings observe it at their next
    /// morsel-claim boundary and drain.
    abort: AtomicBool,
    /// The first panic, captured with its worker id and last morsel.
    panic: Mutex<Option<WorkerPanic>>,
}

/// Per-thread context handed to [`parallel_scope`] workers.
pub struct ParallelContext<'a> {
    /// This worker's index in `0..threads`.
    pub thread_id: usize,
    /// Total number of workers.
    pub threads: usize,
    shared: &'a ScopeShared,
    stats: RefCell<WorkerStats>,
    last_morsel: Cell<Option<usize>>,
}

impl ParallelContext<'_> {
    /// Wait until every *live* worker reaches this point (the paper's
    /// histogram/shuffle and build/probe phase boundaries). Panicked
    /// workers defect, so survivors are never stranded here.
    pub fn barrier(&self) {
        self.shared.barrier.wait();
    }

    /// Iterate over this worker's share of `queue`, claiming morsels
    /// (own span first, then stealing) and recording scheduler stats.
    pub fn morsels<'c, 'q>(&'c self, queue: &'q MorselQueue) -> Morsels<'c, 'q>
    where
        'q: 'c,
    {
        Morsels { ctx: self, queue }
    }

    /// Run `f` as a named phase, accumulating its wall-clock time into
    /// this worker's stats.
    pub fn phase<R>(&self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let t = Instant::now();
        let r = f();
        let ns = t.elapsed().as_nanos() as u64;
        rsv_metrics::record_phase_ns(ns);
        self.stats.borrow_mut().record_phase(name, ns);
        r
    }
}

/// Morsel-claiming iterator returned by [`ParallelContext::morsels`].
pub struct Morsels<'c, 'q> {
    ctx: &'c ParallelContext<'c>,
    queue: &'q MorselQueue,
}

impl Iterator for Morsels<'_, '_> {
    type Item = Morsel;

    fn next(&mut self) -> Option<Morsel> {
        // A sibling panicked: drain instead of claiming more work.
        if self.ctx.shared.abort.load(Ordering::SeqCst) {
            return None;
        }
        let _ = rsv_testkit::failpoint!("exec.morsel.claim");
        let m = self.queue.claim(self.ctx.thread_id)?;
        rsv_metrics::count(rsv_metrics::Metric::MorselsClaimed, 1);
        rsv_metrics::count(rsv_metrics::Metric::MorselsStolen, u64::from(m.stolen));
        self.ctx.stats.borrow_mut().record_claim(&m);
        self.ctx.last_morsel.set(Some(m.id));
        Some(m)
    }
}

/// Run `t` workers, giving each a [`ParallelContext`], and collect their
/// results in thread-id order.
///
/// Workers run on `t - 1` spawned threads plus the calling thread, so
/// `parallel_scope(1, f)` has no spawn overhead.
pub fn parallel_scope<R, F>(t: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&ParallelContext<'_>) -> R + Sync,
{
    parallel_scope_stats(t, f).0
}

/// [`parallel_scope`], additionally returning per-worker scheduler stats
/// (morsels claimed, steals, tuples, per-phase times).
///
/// A worker panic is re-raised on the calling thread with its original
/// payload — after every sibling has drained cleanly (no results are
/// silently discarded, no thread is left stranded on a barrier).
pub fn parallel_scope_stats<R, F>(t: usize, f: F) -> (Vec<R>, SchedulerStats)
where
    R: Send,
    F: Fn(&ParallelContext<'_>) -> R + Sync,
{
    match parallel_scope_try(t, f) {
        Ok(out) => out,
        Err(wp) => std::panic::resume_unwind(wp.payload),
    }
}

/// [`parallel_scope_stats`] with panic isolation surfaced as a value: if
/// any worker panics, the first panic is returned as [`WorkerPanic`]
/// (worker id, last claimed morsel, original payload) instead of
/// unwinding. The panicking worker trips a shared abort flag — siblings
/// stop at their next morsel-claim boundary — and defects from the phase
/// barrier, so the scope always joins; no lock the workers share through
/// the scope is left poisoned.
pub fn parallel_scope_try<R, F>(t: usize, f: F) -> Result<(Vec<R>, SchedulerStats), WorkerPanic>
where
    R: Send,
    F: Fn(&ParallelContext<'_>) -> R + Sync,
{
    assert!(t > 0, "need at least one thread");
    let shared = ScopeShared {
        barrier: PoisonBarrier::new(t),
        abort: AtomicBool::new(false),
        panic: Mutex::new(None),
    };
    // Metering follows the call tree: spawned workers inherit the calling
    // thread's flag and flush their counters into the live session (by
    // thread id, like the stats below) before they exit the scope.
    let metering = rsv_metrics::enabled();
    let record_panic =
        |worker: usize, morsel: Option<usize>, payload: Box<dyn std::any::Any + Send>| {
            // Abort must be visible before the barrier releases anyone, so
            // survivors see it at their next claim.
            shared.abort.store(true, Ordering::SeqCst);
            shared.barrier.defect();
            let mut slot = lock_unpoisoned(&shared.panic);
            if slot.is_none() {
                *slot = Some(WorkerPanic {
                    worker,
                    morsel,
                    payload,
                });
            }
        };
    let run = |thread_id: usize| -> Option<(R, WorkerStats)> {
        if thread_id != 0 {
            rsv_metrics::set_thread_metering(metering);
        }
        let ctx = ParallelContext {
            thread_id,
            threads: t,
            shared: &shared,
            stats: RefCell::new(WorkerStats::default()),
            last_morsel: Cell::new(None),
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&ctx)));
        rsv_metrics::flush_worker(thread_id);
        match result {
            Ok(r) => Some((r, ctx.stats.into_inner())),
            Err(payload) => {
                record_panic(thread_id, ctx.last_morsel.get(), payload);
                None
            }
        }
    };
    let per_worker: Vec<Option<(R, WorkerStats)>> = if t == 1 {
        vec![run(0)]
    } else {
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(t - 1);
            for thread_id in 1..t {
                let run = &run;
                handles.push(scope.spawn(move || run(thread_id)));
            }
            let mut results = vec![run(0)];
            for (i, h) in handles.into_iter().enumerate() {
                match h.join() {
                    Ok(v) => results.push(v),
                    Err(payload) => {
                        // A panic escaped the worker's catch_unwind (only
                        // possible outside the user closure, e.g. in the
                        // metrics flush). Treat it like an in-closure panic.
                        record_panic(i + 1, None, payload);
                        results.push(None);
                    }
                }
            }
            results
        })
    };
    if let Some(wp) = lock_unpoisoned(&shared.panic).take() {
        return Err(wp);
    }
    let mut results = Vec::with_capacity(t);
    let mut stats = SchedulerStats::default();
    for slot in per_worker {
        // No recorded panic means every worker completed.
        let Some((r, w)) = slot else {
            unreachable!("worker produced no result and no panic was recorded")
        };
        results.push(r);
        stats.workers.push(w);
    }
    Ok((results, stats))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::morsel::ExecPolicy;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunks_cover_input_exactly() {
        for n in [0usize, 1, 15, 16, 17, 1000, 4096] {
            for t in [1usize, 2, 3, 7, 8] {
                let ranges = chunk_ranges(n, t, 16);
                assert_eq!(ranges.len(), t);
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, n);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "n={n} t={t} {ranges:?}");
                }
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, n);
                // interior boundaries are aligned
                for r in &ranges[..t - 1] {
                    assert!(r.end % 16 == 0 || r.end == n, "n={n} t={t} {ranges:?}");
                }
            }
        }
    }

    /// Regression sweep for the alignment-collapse bug: rounding split
    /// points *down* to the alignment used to collapse every boundary to 0
    /// whenever `n / t < align`, giving the last thread the whole input.
    #[test]
    fn chunks_do_not_collapse_under_alignment() {
        for n in [
            0usize,
            1,
            7,
            15,
            16,
            17,
            63,
            64,
            65,
            127,
            255,
            1 << 10,
            (1 << 14) + 3,
        ] {
            for t in [1usize, 2, 3, 4, 7, 8, 16] {
                for align in [1usize, 2, 8, 16, 64] {
                    let ranges = chunk_ranges(n, t, align);
                    assert_eq!(ranges.len(), t, "n={n} t={t} a={align}");
                    let mut prev = 0;
                    for (i, r) in ranges.iter().enumerate() {
                        assert_eq!(r.start, prev, "n={n} t={t} a={align} {ranges:?}");
                        assert!(r.start <= r.end);
                        prev = r.end;
                        if i + 1 < t {
                            assert!(
                                r.end % align == 0 || r.end == n,
                                "unaligned interior boundary: n={n} t={t} a={align} {ranges:?}"
                            );
                        }
                    }
                    assert_eq!(prev, n, "n={n} t={t} a={align}");

                    if n >= t * align {
                        // the collapse bug: some range swallowing everything
                        for r in &ranges {
                            assert!(
                                !r.is_empty(),
                                "empty range despite n >= t*align: n={n} t={t} a={align} {ranges:?}"
                            );
                        }
                        let min = ranges.iter().map(|r| r.len()).min().unwrap();
                        let max = ranges.iter().map(|r| r.len()).max().unwrap();
                        assert!(
                            max - min <= 2 * align + 1,
                            "unbalanced: n={n} t={t} a={align} {ranges:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn scope_runs_every_worker_and_orders_results() {
        let ids = parallel_scope(4, |ctx| ctx.thread_id * 10);
        assert_eq!(ids, vec![0, 10, 20, 30]);
    }

    #[test]
    fn barrier_synchronizes_phases() {
        let counter = AtomicUsize::new(0);
        let results = parallel_scope(4, |ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // after the barrier every thread must observe all 4 increments
            counter.load(Ordering::SeqCst)
        });
        assert_eq!(results, vec![4, 4, 4, 4]);
    }

    #[test]
    fn single_thread_fast_path() {
        let r = parallel_scope(1, |ctx| {
            ctx.barrier(); // must not deadlock
            ctx.threads
        });
        assert_eq!(r, vec![1]);
    }

    #[test]
    fn stats_account_for_every_tuple() {
        let n = 100_000;
        let policy = ExecPolicy::new(3).with_morsel_tuples(1024);
        let queue = MorselQueue::new(n, &policy, 16);
        let (sums, stats) = parallel_scope_stats(3, |ctx| {
            let mut sum = 0usize;
            for m in ctx.morsels(&queue) {
                sum += ctx.phase("work", || m.range.len());
            }
            sum
        });
        assert_eq!(sums.iter().sum::<usize>(), n);
        assert_eq!(stats.total_tuples(), n as u64);
        assert_eq!(stats.total_morsels(), queue.morsel_count() as u64);
        assert_eq!(stats.workers.len(), 3);
        for w in &stats.workers {
            if w.morsels > 0 {
                assert_eq!(w.phase_ns.len(), 1);
                assert_eq!(w.phase_ns[0].0, "work");
            }
        }
    }

    #[test]
    fn merge_accumulates_by_worker() {
        let mut a = SchedulerStats {
            workers: vec![WorkerStats {
                morsels: 1,
                steals: 0,
                tuples: 10,
                phase_ns: vec![("x", 5)],
            }],
        };
        let b = SchedulerStats {
            workers: vec![
                WorkerStats {
                    morsels: 2,
                    steals: 1,
                    tuples: 20,
                    phase_ns: vec![("x", 7), ("y", 1)],
                },
                WorkerStats::default(),
            ],
        };
        a.merge(&b);
        assert_eq!(a.workers.len(), 2);
        assert_eq!(a.workers[0].morsels, 3);
        assert_eq!(a.workers[0].tuples, 30);
        assert_eq!(a.workers[0].phase_ns, vec![("x", 12), ("y", 1)]);
        assert_eq!(a.total_steals(), 1);
    }

    #[test]
    fn try_scope_surfaces_worker_panic() {
        let policy = ExecPolicy::new(4).with_morsel_tuples(8);
        let queue = MorselQueue::new(10_000, &policy, 1);
        let err = parallel_scope_try(4, |ctx| {
            // Every worker claims one morsel from its own span, then meets
            // at the barrier, so worker 2 deterministically holds a morsel
            // when it panics (no worker can drain the queue early).
            let mut it = ctx.morsels(&queue);
            let first = it.next().expect("own span is non-empty");
            ctx.barrier();
            if ctx.thread_id == 2 {
                panic!("boom on morsel {}", first.id);
            }
            let mut seen = first.range.len();
            for m in it {
                seen += m.range.len();
            }
            seen
        })
        .expect_err("worker 2 must panic");
        assert_eq!(err.worker, 2);
        assert!(err.morsel.is_some(), "panic happened inside a morsel");
        let msg = err
            .payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.starts_with("boom on morsel"), "{msg}");
    }

    #[test]
    fn panicking_worker_releases_barrier_siblings() {
        // Worker 0 dies before the barrier; the other three must pass it
        // (via defect) and finish instead of deadlocking.
        let passed = AtomicUsize::new(0);
        let err = parallel_scope_try(4, |ctx| {
            if ctx.thread_id == 0 {
                panic!("pre-barrier death");
            }
            ctx.barrier();
            passed.fetch_add(1, Ordering::SeqCst);
        })
        .expect_err("worker 0 must panic");
        assert_eq!(err.worker, 0);
        assert_eq!(err.morsel, None);
        assert_eq!(passed.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn siblings_drain_after_abort() {
        // Worker 1 panics on its first claim; the abort flag must stop the
        // other workers at a claim boundary, not strand them.
        let policy = ExecPolicy::new(2).with_morsel_tuples(4);
        let queue = MorselQueue::new(100_000, &policy, 1);
        let err = parallel_scope_try(2, |ctx| {
            let mut it = ctx.morsels(&queue);
            let _first = it.next();
            ctx.barrier();
            if ctx.thread_id == 1 {
                panic!("first-claim death");
            }
            for _m in it {}
        })
        .expect_err("worker 1 must panic");
        assert_eq!(err.worker, 1);
    }

    #[test]
    fn single_thread_panic_is_captured() {
        let err = parallel_scope_try(1, |_ctx| panic!("solo")).expect_err("must panic");
        assert_eq!(err.worker, 0);
        let msg = err.payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "solo");
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn infallible_scope_reraises_original_payload() {
        parallel_scope(2, |ctx| {
            if ctx.thread_id == 1 {
                panic!("boom");
            }
        });
    }
}
