//! Thread parallelism: morsel scheduling contexts plus barrier
//! synchronization, the substrate for the paper's per-operator phases.

use std::cell::RefCell;
use std::ops::Range;
use std::sync::Barrier;
use std::time::Instant;

use crate::morsel::{Morsel, MorselQueue};

/// Split `0..n` into `t` contiguous ranges with every interior boundary
/// aligned to `align` elements (power of two), so vector kernels never
/// straddle a range boundary mid-word.
///
/// Boundaries are the ideal equal-split points rounded to the *nearest*
/// multiple of `align`: when `n >= t * align` every range is non-empty and
/// lengths differ by at most about `2 * align`; smaller inputs may leave
/// trailing ranges empty (there are only `n / align` whole aligned blocks
/// to hand out). An interior boundary is either a multiple of `align` or
/// clamped to `n`.
pub fn chunk_ranges(n: usize, t: usize, align: usize) -> Vec<Range<usize>> {
    assert!(t > 0, "need at least one chunk");
    assert!(align.is_power_of_two(), "alignment must be a power of two");
    let mut ranges = Vec::with_capacity(t);
    let mut prev = 0usize;
    for i in 1..=t {
        let end = if i == t {
            n
        } else {
            let ideal = ((i as u128 * n as u128) / t as u128) as usize;
            // Round to nearest; the `u128` widening above and the saturating
            // add here keep the arithmetic safe for any `usize` input.
            let rounded = ideal.saturating_add(align / 2) & !(align - 1);
            rounded.clamp(prev, n)
        };
        ranges.push(prev..end);
        prev = end;
    }
    ranges
}

/// What one worker did during a [`parallel_scope_stats`] region.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Morsels this worker claimed (own span and stolen).
    pub morsels: u64,
    /// Morsels claimed from *another* worker's span.
    pub steals: u64,
    /// Tuples covered by the claimed morsels.
    pub tuples: u64,
    /// Wall-clock nanoseconds per named phase, in first-use order
    /// (repeated phases — e.g. one histogram phase per radix pass —
    /// accumulate into one entry).
    pub phase_ns: Vec<(&'static str, u64)>,
}

impl WorkerStats {
    fn record_claim(&mut self, m: &Morsel) {
        self.morsels += 1;
        self.steals += u64::from(m.stolen);
        self.tuples += m.range.len() as u64;
    }

    fn record_phase(&mut self, name: &'static str, ns: u64) {
        if let Some(e) = self.phase_ns.iter_mut().find(|e| e.0 == name) {
            e.1 += ns;
        } else {
            self.phase_ns.push((name, ns));
        }
    }
}

/// Per-worker scheduler instrumentation for one parallel region.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// One entry per worker, in thread-id order.
    pub workers: Vec<WorkerStats>,
}

impl SchedulerStats {
    /// Total morsels claimed across workers.
    pub fn total_morsels(&self) -> u64 {
        self.workers.iter().map(|w| w.morsels).sum()
    }

    /// Total steals across workers.
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Total tuples claimed across workers.
    pub fn total_tuples(&self) -> u64 {
        self.workers.iter().map(|w| w.tuples).sum()
    }

    /// Fold another region's stats into this one, worker by worker (for
    /// operators that run several parallel regions back to back).
    pub fn merge(&mut self, other: &SchedulerStats) {
        if self.workers.len() < other.workers.len() {
            self.workers
                .resize(other.workers.len(), WorkerStats::default());
        }
        for (into, from) in self.workers.iter_mut().zip(&other.workers) {
            into.morsels += from.morsels;
            into.steals += from.steals;
            into.tuples += from.tuples;
            for &(name, ns) in &from.phase_ns {
                into.record_phase(name, ns);
            }
        }
    }
}

impl std::fmt::Display for SchedulerStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (id, w) in self.workers.iter().enumerate() {
            write!(
                f,
                "  worker {id}: {:>5} morsels ({:>3} stolen) {:>10} tuples",
                w.morsels, w.steals, w.tuples
            )?;
            for (name, ns) in &w.phase_ns {
                write!(f, "  {name} {:.2}ms", *ns as f64 / 1e6)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Per-thread context handed to [`parallel_scope`] workers.
pub struct ParallelContext<'a> {
    /// This worker's index in `0..threads`.
    pub thread_id: usize,
    /// Total number of workers.
    pub threads: usize,
    barrier: &'a Barrier,
    stats: RefCell<WorkerStats>,
}

impl ParallelContext<'_> {
    /// Wait until every worker reaches this point (the paper's
    /// histogram/shuffle and build/probe phase boundaries).
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Iterate over this worker's share of `queue`, claiming morsels
    /// (own span first, then stealing) and recording scheduler stats.
    pub fn morsels<'c, 'q>(&'c self, queue: &'q MorselQueue) -> Morsels<'c, 'q>
    where
        'q: 'c,
    {
        Morsels { ctx: self, queue }
    }

    /// Run `f` as a named phase, accumulating its wall-clock time into
    /// this worker's stats.
    pub fn phase<R>(&self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let t = Instant::now();
        let r = f();
        let ns = t.elapsed().as_nanos() as u64;
        rsv_metrics::record_phase_ns(ns);
        self.stats.borrow_mut().record_phase(name, ns);
        r
    }
}

/// Morsel-claiming iterator returned by [`ParallelContext::morsels`].
pub struct Morsels<'c, 'q> {
    ctx: &'c ParallelContext<'c>,
    queue: &'q MorselQueue,
}

impl Iterator for Morsels<'_, '_> {
    type Item = Morsel;

    fn next(&mut self) -> Option<Morsel> {
        let m = self.queue.claim(self.ctx.thread_id)?;
        rsv_metrics::count(rsv_metrics::Metric::MorselsClaimed, 1);
        rsv_metrics::count(rsv_metrics::Metric::MorselsStolen, u64::from(m.stolen));
        self.ctx.stats.borrow_mut().record_claim(&m);
        Some(m)
    }
}

/// Run `t` workers, giving each a [`ParallelContext`], and collect their
/// results in thread-id order.
///
/// Workers run on `t - 1` spawned threads plus the calling thread, so
/// `parallel_scope(1, f)` has no spawn overhead.
pub fn parallel_scope<R, F>(t: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&ParallelContext<'_>) -> R + Sync,
{
    parallel_scope_stats(t, f).0
}

/// [`parallel_scope`], additionally returning per-worker scheduler stats
/// (morsels claimed, steals, tuples, per-phase times).
pub fn parallel_scope_stats<R, F>(t: usize, f: F) -> (Vec<R>, SchedulerStats)
where
    R: Send,
    F: Fn(&ParallelContext<'_>) -> R + Sync,
{
    assert!(t > 0, "need at least one thread");
    let barrier = Barrier::new(t);
    // Metering follows the call tree: spawned workers inherit the calling
    // thread's flag and flush their counters into the live session (by
    // thread id, like the stats below) before they exit the scope.
    let metering = rsv_metrics::enabled();
    let run = |thread_id: usize, barrier: &Barrier| {
        if thread_id != 0 {
            rsv_metrics::set_thread_metering(metering);
        }
        let ctx = ParallelContext {
            thread_id,
            threads: t,
            barrier,
            stats: RefCell::new(WorkerStats::default()),
        };
        let r = f(&ctx);
        rsv_metrics::flush_worker(thread_id);
        (r, ctx.stats.into_inner())
    };
    let per_worker: Vec<(R, WorkerStats)> = if t == 1 {
        vec![run(0, &barrier)]
    } else {
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(t - 1);
            for thread_id in 1..t {
                let barrier = &barrier;
                let run = &run;
                handles.push(scope.spawn(move || run(thread_id, barrier)));
            }
            let mut results = vec![run(0, &barrier)];
            for h in handles {
                results.push(h.join().expect("worker panicked"));
            }
            results
        })
    };
    let mut results = Vec::with_capacity(t);
    let mut stats = SchedulerStats::default();
    for (r, w) in per_worker {
        results.push(r);
        stats.workers.push(w);
    }
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::morsel::ExecPolicy;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunks_cover_input_exactly() {
        for n in [0usize, 1, 15, 16, 17, 1000, 4096] {
            for t in [1usize, 2, 3, 7, 8] {
                let ranges = chunk_ranges(n, t, 16);
                assert_eq!(ranges.len(), t);
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, n);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "n={n} t={t} {ranges:?}");
                }
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, n);
                // interior boundaries are aligned
                for r in &ranges[..t - 1] {
                    assert!(r.end % 16 == 0 || r.end == n, "n={n} t={t} {ranges:?}");
                }
            }
        }
    }

    /// Regression sweep for the alignment-collapse bug: rounding split
    /// points *down* to the alignment used to collapse every boundary to 0
    /// whenever `n / t < align`, giving the last thread the whole input.
    #[test]
    fn chunks_do_not_collapse_under_alignment() {
        for n in [
            0usize,
            1,
            7,
            15,
            16,
            17,
            63,
            64,
            65,
            127,
            255,
            1 << 10,
            (1 << 14) + 3,
        ] {
            for t in [1usize, 2, 3, 4, 7, 8, 16] {
                for align in [1usize, 2, 8, 16, 64] {
                    let ranges = chunk_ranges(n, t, align);
                    assert_eq!(ranges.len(), t, "n={n} t={t} a={align}");
                    let mut prev = 0;
                    for (i, r) in ranges.iter().enumerate() {
                        assert_eq!(r.start, prev, "n={n} t={t} a={align} {ranges:?}");
                        assert!(r.start <= r.end);
                        prev = r.end;
                        if i + 1 < t {
                            assert!(
                                r.end % align == 0 || r.end == n,
                                "unaligned interior boundary: n={n} t={t} a={align} {ranges:?}"
                            );
                        }
                    }
                    assert_eq!(prev, n, "n={n} t={t} a={align}");

                    if n >= t * align {
                        // the collapse bug: some range swallowing everything
                        for r in &ranges {
                            assert!(
                                !r.is_empty(),
                                "empty range despite n >= t*align: n={n} t={t} a={align} {ranges:?}"
                            );
                        }
                        let min = ranges.iter().map(|r| r.len()).min().unwrap();
                        let max = ranges.iter().map(|r| r.len()).max().unwrap();
                        assert!(
                            max - min <= 2 * align + 1,
                            "unbalanced: n={n} t={t} a={align} {ranges:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn scope_runs_every_worker_and_orders_results() {
        let ids = parallel_scope(4, |ctx| ctx.thread_id * 10);
        assert_eq!(ids, vec![0, 10, 20, 30]);
    }

    #[test]
    fn barrier_synchronizes_phases() {
        let counter = AtomicUsize::new(0);
        let results = parallel_scope(4, |ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // after the barrier every thread must observe all 4 increments
            counter.load(Ordering::SeqCst)
        });
        assert_eq!(results, vec![4, 4, 4, 4]);
    }

    #[test]
    fn single_thread_fast_path() {
        let r = parallel_scope(1, |ctx| {
            ctx.barrier(); // must not deadlock
            ctx.threads
        });
        assert_eq!(r, vec![1]);
    }

    #[test]
    fn stats_account_for_every_tuple() {
        let n = 100_000;
        let policy = ExecPolicy::new(3).with_morsel_tuples(1024);
        let queue = MorselQueue::new(n, &policy, 16);
        let (sums, stats) = parallel_scope_stats(3, |ctx| {
            let mut sum = 0usize;
            for m in ctx.morsels(&queue) {
                sum += ctx.phase("work", || m.range.len());
            }
            sum
        });
        assert_eq!(sums.iter().sum::<usize>(), n);
        assert_eq!(stats.total_tuples(), n as u64);
        assert_eq!(stats.total_morsels(), queue.morsel_count() as u64);
        assert_eq!(stats.workers.len(), 3);
        for w in &stats.workers {
            if w.morsels > 0 {
                assert_eq!(w.phase_ns.len(), 1);
                assert_eq!(w.phase_ns[0].0, "work");
            }
        }
    }

    #[test]
    fn merge_accumulates_by_worker() {
        let mut a = SchedulerStats {
            workers: vec![WorkerStats {
                morsels: 1,
                steals: 0,
                tuples: 10,
                phase_ns: vec![("x", 5)],
            }],
        };
        let b = SchedulerStats {
            workers: vec![
                WorkerStats {
                    morsels: 2,
                    steals: 1,
                    tuples: 20,
                    phase_ns: vec![("x", 7), ("y", 1)],
                },
                WorkerStats::default(),
            ],
        };
        a.merge(&b);
        assert_eq!(a.workers.len(), 2);
        assert_eq!(a.workers[0].morsels, 3);
        assert_eq!(a.workers[0].tuples, 30);
        assert_eq!(a.workers[0].phase_ns, vec![("x", 12), ("y", 1)]);
        assert_eq!(a.total_steals(), 1);
    }
}
