//! Thread parallelism: equal input splitting plus barrier synchronization,
//! the paper's parallelization scheme for individual operators.

use std::ops::Range;
use std::sync::Barrier;

/// Split `0..n` into `t` contiguous ranges whose lengths differ by at most
/// one, with every range start (except possibly the last ranges) aligned to
/// `align` elements so vector kernels stay aligned.
pub fn chunk_ranges(n: usize, t: usize, align: usize) -> Vec<Range<usize>> {
    assert!(t > 0, "need at least one thread");
    assert!(align.is_power_of_two(), "alignment must be a power of two");
    let per = n / t;
    let mut starts = Vec::with_capacity(t + 1);
    let mut acc = 0usize;
    for i in 0..t {
        starts.push(acc.min(n));
        let mut next = acc + per + usize::from(i < n % t);
        next &= !(align - 1);
        acc = next;
    }
    starts.push(n);
    // Fix up: make monotone and cover everything.
    let mut ranges = Vec::with_capacity(t);
    for i in 0..t {
        let start = starts[i].min(n);
        let end = if i + 1 == t { n } else { starts[i + 1].min(n) };
        ranges.push(start..end.max(start));
    }
    ranges
}

/// Per-thread context handed to [`parallel_scope`] workers.
pub struct ParallelContext<'a> {
    /// This worker's index in `0..threads`.
    pub thread_id: usize,
    /// Total number of workers.
    pub threads: usize,
    barrier: &'a Barrier,
}

impl ParallelContext<'_> {
    /// Wait until every worker reaches this point (the paper's
    /// histogram/shuffle and build/probe phase boundaries).
    pub fn barrier(&self) {
        self.barrier.wait();
    }
}

/// Run `t` workers, giving each a [`ParallelContext`], and collect their
/// results in thread-id order.
///
/// Workers run on `t - 1` spawned threads plus the calling thread, so
/// `parallel_scope(1, f)` has no spawn overhead.
pub fn parallel_scope<R, F>(t: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&ParallelContext<'_>) -> R + Sync,
{
    assert!(t > 0, "need at least one thread");
    let barrier = Barrier::new(t);
    if t == 1 {
        let ctx = ParallelContext {
            thread_id: 0,
            threads: 1,
            barrier: &barrier,
        };
        return vec![f(&ctx)];
    }
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(t - 1);
        for thread_id in 1..t {
            let barrier = &barrier;
            let f = &f;
            handles.push(scope.spawn(move || {
                let ctx = ParallelContext {
                    thread_id,
                    threads: t,
                    barrier,
                };
                f(&ctx)
            }));
        }
        let ctx = ParallelContext {
            thread_id: 0,
            threads: t,
            barrier: &barrier,
        };
        let first = f(&ctx);
        let mut results = vec![first];
        for h in handles {
            results.push(h.join().expect("worker panicked"));
        }
        results
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunks_cover_input_exactly() {
        for n in [0usize, 1, 15, 16, 17, 1000, 4096] {
            for t in [1usize, 2, 3, 7, 8] {
                let ranges = chunk_ranges(n, t, 16);
                assert_eq!(ranges.len(), t);
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, n);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "n={n} t={t} {ranges:?}");
                }
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, n);
                // interior boundaries are aligned
                for r in &ranges[..t - 1] {
                    assert_eq!(r.end % 16, 0, "n={n} t={t} {ranges:?}");
                }
            }
        }
    }

    #[test]
    fn scope_runs_every_worker_and_orders_results() {
        let ids = parallel_scope(4, |ctx| ctx.thread_id * 10);
        assert_eq!(ids, vec![0, 10, 20, 30]);
    }

    #[test]
    fn barrier_synchronizes_phases() {
        let counter = AtomicUsize::new(0);
        let results = parallel_scope(4, |ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            // after the barrier every thread must observe all 4 increments
            counter.load(Ordering::SeqCst)
        });
        assert_eq!(results, vec![4, 4, 4, 4]);
    }

    #[test]
    fn single_thread_fast_path() {
        let r = parallel_scope(1, |ctx| {
            ctx.barrier(); // must not deadlock
            ctx.threads
        });
        assert_eq!(r, vec![1]);
    }
}
