//! The workspace-level error taxonomy for fallible operator execution.
//!
//! Every `Engine::try_*` entry point (and the operator-crate `*_try`
//! functions underneath) returns `Result<_, EngineError>`. The infallible
//! legacy APIs delegate to the fallible ones and panic only on outcomes
//! that cannot occur without an explicit [`RunContext`](crate::RunContext)
//! (cancellation, budgets) or a genuine bug (a worker panic, which they
//! re-raise with its original message).

use std::any::Any;

/// Why a fallible operator invocation did not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A hash table had no free bucket left for an insert.
    TableFull {
        /// Tuples already in the table.
        len: usize,
        /// Total bucket count.
        buckets: usize,
    },
    /// A cuckoo build burned every rehash attempt without placing all
    /// keys (the displacement chains cycled at this load factor).
    RehashExhausted {
        /// Rebuild attempts consumed (the table's `MAX_REHASH`).
        attempts: usize,
        /// The key that could not be placed on the last attempt.
        key: u32,
    },
    /// The query's [`CancelToken`](crate::CancelToken) was cancelled.
    /// Workers stop at the next morsel-claim boundary, so at most one
    /// in-flight morsel per worker completes after the cancel.
    Cancelled,
    /// A large allocation would exceed the query's
    /// [`MemoryBudget`](crate::MemoryBudget).
    BudgetExceeded {
        /// Bytes the operator asked for.
        requested: u64,
        /// The budget's limit in bytes.
        limit: u64,
        /// Bytes already reserved when the request was made.
        used: u64,
    },
    /// A worker thread panicked inside a parallel scope. Siblings drained
    /// cleanly; the payload is the panic message.
    WorkerPanicked {
        /// The panic payload, stringified (`&str`/`String` payloads are
        /// preserved verbatim).
        payload: String,
        /// The morsel id the panicking worker had last claimed, if any.
        morsel: Option<usize>,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::TableFull { len, buckets } => {
                write!(f, "hash table full ({len} tuples in {buckets} buckets)")
            }
            EngineError::RehashExhausted { attempts, key } => write!(
                f,
                "cuckoo build exhausted {attempts} rehash attempts (last stuck key {key:#x})"
            ),
            EngineError::Cancelled => write!(f, "query cancelled"),
            EngineError::BudgetExceeded {
                requested,
                limit,
                used,
            } => write!(
                f,
                "memory budget exceeded: requested {requested} B with {used}/{limit} B reserved"
            ),
            EngineError::WorkerPanicked { payload, morsel } => match morsel {
                Some(m) => write!(f, "worker panicked on morsel {m}: {payload}"),
                None => write!(f, "worker panicked: {payload}"),
            },
        }
    }
}

impl std::error::Error for EngineError {}

/// Render a panic payload as a message (`&str` and `String` payloads are
/// kept verbatim, anything else becomes a placeholder).
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Unwrap a fallible-operator result on an **infallible** legacy path: a
/// [`EngineError::WorkerPanicked`] re-raises the worker's panic (with its
/// original message), anything else is a bug because the default
/// [`RunContext`](crate::RunContext) can be neither cancelled nor
/// budget-limited.
pub fn expect_infallible<T>(r: Result<T, EngineError>) -> T {
    match r {
        Ok(v) => v,
        Err(EngineError::WorkerPanicked { payload, .. }) => std::panic::panic_any(payload),
        Err(e) => panic!("failure on an infallible execution path: {e}"),
    }
}
