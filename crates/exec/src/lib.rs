//! Execution substrate: thread parallelism, cache-aligned buffers, timing
//! and platform inspection.
//!
//! The paper parallelizes each operator by splitting the input equally
//! among threads and synchronizing with barriers (Sections 8 and 9); this
//! crate provides exactly those primitives, plus the 64-byte aligned
//! buffers the buffered-shuffling and streaming-store code paths need.

#![deny(missing_docs)]
#![warn(clippy::all)]

mod aligned;
mod parallel;
mod platform;
mod shared;
mod timing;

pub use aligned::AlignedVec;
pub use parallel::{chunk_ranges, parallel_scope, ParallelContext};
pub use platform::{platform_report, PlatformReport};
pub use shared::SharedBuffer;
pub use timing::{throughput_mtps, time, time_n, Timed};
