//! Execution substrate: thread parallelism, cache-aligned buffers, timing
//! and platform inspection.
//!
//! The paper parallelizes each operator by splitting the input equally
//! among threads and synchronizing with barriers (Sections 8 and 9). This
//! crate keeps those phase barriers but replaces the static equal split
//! with morsel-driven work stealing (see [`MorselQueue`]): inputs are cut
//! into SIMD-aligned morsels that workers claim from per-worker atomic
//! cursors, stealing when their own span runs dry. It also provides the
//! 64-byte aligned buffers the buffered-shuffling and streaming-store code
//! paths need, and per-worker scheduler instrumentation
//! ([`SchedulerStats`]).

#![deny(missing_docs)]
#![warn(clippy::all)]
// Robustness hygiene: this crate is the substrate every operator unwinds
// through, so stray `unwrap`/`expect` are held to an allow-listed minimum
// (each carries a comment arguing its infallibility).
#![warn(clippy::unwrap_used, clippy::expect_used)]

mod aligned;
mod error;
mod morsel;
mod parallel;
mod platform;
mod run;
mod shared;
mod timing;

pub use aligned::AlignedVec;
pub use error::{expect_infallible, panic_message, EngineError};
pub use morsel::{ExecPolicy, Morsel, MorselQueue, DEFAULT_MORSEL_TUPLES};
pub use parallel::{
    chunk_ranges, parallel_scope, parallel_scope_stats, parallel_scope_try, Morsels,
    ParallelContext, SchedulerStats, WorkerPanic, WorkerStats,
};
pub use platform::{platform_report, PlatformReport};
pub use run::{CancelToken, MemoryBudget, RunContext};
pub use shared::{SharedBuffer, SlotMap};
pub use timing::{throughput_mtps, time, time_n, Timed};
