//! Wall-clock measurement helpers for the experiment harness.

use std::time::{Duration, Instant};

/// A measured result.
#[derive(Debug, Clone, Copy)]
pub struct Timed<R> {
    /// The value the measured closure returned.
    pub value: R,
    /// Elapsed wall time.
    pub elapsed: Duration,
}

/// Time one invocation of `f`.
pub fn time<R>(f: impl FnOnce() -> R) -> Timed<R> {
    let start = Instant::now();
    let value = f();
    Timed {
        value,
        elapsed: start.elapsed(),
    }
}

/// Run `f` `n ≥ 1` times and report the *fastest* run, the conventional
/// way to suppress timer and scheduler noise in microbenchmarks.
// The `n >= 1` assert guarantees at least one iteration fills `best`.
#[allow(clippy::expect_used)]
pub fn time_n<R>(n: usize, mut f: impl FnMut() -> R) -> Timed<R> {
    assert!(n >= 1);
    let mut best: Option<Timed<R>> = None;
    for _ in 0..n {
        let t = time(&mut f);
        match &best {
            Some(b) if b.elapsed <= t.elapsed => {}
            _ => best = Some(t),
        }
    }
    best.expect("n >= 1")
}

/// Throughput in million tuples per second, the unit of almost every figure
/// in the paper ("billion tuples / second" axes are just this / 1000).
///
/// Returns `None` for zero-duration runs (timer granularity can round a
/// trivial measurement down to zero): the alternative, `inf`, has no JSON
/// representation and used to leave unparseable rows in `results.jsonl`.
/// Callers should skip the row or emit `null`.
pub fn throughput_mtps(tuples: usize, elapsed: Duration) -> Option<f64> {
    if elapsed.is_zero() {
        return None;
    }
    Some(tuples as f64 / elapsed.as_secs_f64() / 1e6)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn time_returns_value_and_duration() {
        let t = time(|| 21 * 2);
        assert_eq!(t.value, 42);
        assert!(t.elapsed >= Duration::ZERO);
    }

    #[test]
    fn time_n_keeps_fastest() {
        let mut calls = 0;
        let t = time_n(5, || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 5);
        assert!(t.value >= 1 && t.value <= 5);
    }

    #[test]
    fn throughput_units() {
        let mtps = throughput_mtps(2_000_000, Duration::from_secs(1)).unwrap();
        assert!((mtps - 2.0).abs() < 1e-9);
        let mtps = throughput_mtps(1_000_000, Duration::from_millis(500)).unwrap();
        assert!((mtps - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_yields_no_throughput() {
        assert_eq!(throughput_mtps(1_000_000, Duration::ZERO), None);
        assert_eq!(throughput_mtps(0, Duration::ZERO), None);
    }
}
