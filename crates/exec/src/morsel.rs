//! Morsel-driven work-stealing scheduling.
//!
//! The paper parallelizes operators by splitting the input *equally* among
//! threads (Sections 8–9). That is optimal only when every tuple costs the
//! same; under skew (or on a machine running other work) the slowest thread
//! dominates every barrier. This module replaces the static split with
//! morsel-driven scheduling in the style of Leis et al. (SIGMOD 2014):
//!
//! * the input is cut into cache-friendly, SIMD-aligned **morsels**
//!   (default [`DEFAULT_MORSEL_TUPLES`] tuples, boundaries aligned so the
//!   vector kernels never straddle a vector word),
//! * every worker owns a contiguous span of morsel ids and claims them
//!   through a per-worker atomic cursor (cheap, mostly uncontended),
//! * a worker whose span is exhausted **steals** from the next non-empty
//!   victim's cursor, so imbalance moves work instead of idling threads,
//! * the phase barriers the paper's operators need (histogram → shuffle,
//!   build → probe) are kept: one [`MorselQueue`] serves exactly one phase.
//!
//! Results stay deterministic because everything a worker produces is keyed
//! by **morsel id**, never by worker id: whichever thread claims a morsel
//! writes the same bytes to the same place.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::parallel::chunk_ranges;
use crate::run::{CancelToken, RunContext};

/// Default morsel size in tuples. 16K tuples of key+payload (128 KB) fit
/// comfortably in L2 next to the shuffle staging buffers, while still
/// giving a work-stealing granularity of dozens-to-thousands of morsels on
/// the paper's workloads.
pub const DEFAULT_MORSEL_TUPLES: usize = 16 * 1024;

/// How an operator invocation should be executed: how many workers, how
/// finely the input is morselized, and under which [`RunContext`]
/// (cancellation + memory budget).
#[derive(Debug, Clone)]
pub struct ExecPolicy {
    /// Number of worker threads.
    pub threads: usize,
    /// Target tuples per morsel (boundaries are rounded to the kernel's
    /// alignment). `usize::MAX` degenerates to the paper's static
    /// equal-split: one morsel per worker.
    pub morsel_tuples: usize,
    /// The run the invocation belongs to. The default is inert
    /// (uncancellable, unlimited), so policies built without an explicit
    /// context behave exactly as before.
    pub run: RunContext,
}

impl ExecPolicy {
    /// A policy with `threads` workers and the default morsel size.
    pub fn new(threads: usize) -> ExecPolicy {
        assert!(threads > 0, "need at least one worker");
        ExecPolicy {
            threads,
            morsel_tuples: DEFAULT_MORSEL_TUPLES,
            run: RunContext::default(),
        }
    }

    /// Single worker, default morsel size.
    pub fn single_threaded() -> ExecPolicy {
        ExecPolicy::new(1)
    }

    /// Replace the morsel size.
    pub fn with_morsel_tuples(mut self, morsel_tuples: usize) -> ExecPolicy {
        assert!(morsel_tuples > 0, "morsels must hold at least one tuple");
        self.morsel_tuples = morsel_tuples;
        self
    }

    /// Attach a [`RunContext`] (cancel token + memory budget).
    pub fn with_run(mut self, run: RunContext) -> ExecPolicy {
        self.run = run;
        self
    }

    /// The paper's static equal-split schedule: one morsel per worker, no
    /// stealing (used as the ablation baseline).
    pub fn static_split(mut self) -> ExecPolicy {
        self.morsel_tuples = usize::MAX;
        self
    }
}

impl Default for ExecPolicy {
    fn default() -> ExecPolicy {
        ExecPolicy::single_threaded()
    }
}

/// One claimed unit of work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Morsel {
    /// Dense morsel id in `0..queue.morsel_count()`; results must be keyed
    /// by this (not by worker id) to stay deterministic.
    pub id: usize,
    /// The tuple range this morsel covers.
    pub range: Range<usize>,
    /// `true` if the claiming worker took it from another worker's span.
    pub stolen: bool,
}

#[repr(align(64))]
#[derive(Default)]
struct PaddedCursor(AtomicUsize);

/// A single-phase queue of morsels over `0..n` tuples.
///
/// Construction assigns every worker a contiguous span of morsel ids (so
/// the uncontended fast path touches only the worker's own cache line);
/// [`MorselQueue::claim`] drains the own span first, then steals. A queue
/// serves exactly one phase — phases separated by a barrier each build
/// their own queue.
pub struct MorselQueue {
    /// `morsel_count + 1` tuple boundaries; morsel `i` covers
    /// `bounds[i]..bounds[i + 1]`.
    bounds: Vec<usize>,
    /// Per-worker morsel-id spans (contiguous, disjoint, covering).
    spans: Vec<Range<usize>>,
    /// Per-worker claim cursors, as offsets into the worker's span. A
    /// cursor may overshoot its span end (failed claims still increment);
    /// only values below the span length denote claimed morsels.
    cursors: Vec<PaddedCursor>,
    /// The run's cancel token: once cancelled, [`MorselQueue::claim`]
    /// returns `None`, so each worker finishes at most the morsel it
    /// already holds (cancellation latency ≤ one morsel).
    cancel: CancelToken,
}

impl MorselQueue {
    /// Morselize `0..n` tuples for `policy.threads` workers, with every
    /// interior boundary aligned to `align` tuples (power of two).
    pub fn new(n: usize, policy: &ExecPolicy, align: usize) -> MorselQueue {
        let per = policy.morsel_tuples.max(1);
        let morsels = if n == 0 {
            0
        } else {
            n.div_ceil(per).max(policy.threads.min(n.div_ceil(align)))
        };
        Self::build(n, morsels, policy.threads, align, policy.run.cancel_token())
    }

    /// A queue of `count` indivisible tasks (partitions to build, parts to
    /// probe, ...) rather than tuple ranges: morsel `i` is `i..i + 1`.
    pub fn tasks(count: usize, workers: usize) -> MorselQueue {
        Self::build(count, count, workers, 1, CancelToken::new())
    }

    /// Like [`MorselQueue::tasks`], but honouring `policy.run`'s cancel
    /// token, so task-granular phases (per-partition build/probe) stop at
    /// task boundaries too.
    pub fn tasks_policy(count: usize, workers: usize, policy: &ExecPolicy) -> MorselQueue {
        Self::build(count, count, workers, 1, policy.run.cancel_token())
    }

    fn build(
        n: usize,
        morsels: usize,
        workers: usize,
        align: usize,
        cancel: CancelToken,
    ) -> MorselQueue {
        assert!(workers > 0, "need at least one worker");
        let mut bounds = Vec::with_capacity(morsels + 1);
        bounds.push(0);
        if morsels > 0 {
            for r in chunk_ranges(n, morsels, align) {
                bounds.push(r.end);
            }
        }
        // Empty morsels (n much smaller than morsels * align) are legal:
        // claiming one is a no-op for every kernel.
        let spans = if morsels == 0 {
            vec![0..0; workers]
        } else {
            chunk_ranges(morsels, workers, 1)
        };
        let cursors = (0..workers).map(|_| PaddedCursor::default()).collect();
        MorselQueue {
            bounds,
            spans,
            cursors,
            cancel,
        }
    }

    /// Number of morsels in the queue.
    pub fn morsel_count(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Number of tuples the queue covers.
    // `bounds` always holds at least the leading 0.
    #[allow(clippy::unwrap_used)]
    pub fn tuple_count(&self) -> usize {
        *self.bounds.last().unwrap()
    }

    /// The tuple range of morsel `id`.
    pub fn range_of(&self, id: usize) -> Range<usize> {
        self.bounds[id]..self.bounds[id + 1]
    }

    /// Claim the next morsel for `worker`: own span first, then steal from
    /// the other workers in round-robin order. Returns `None` once every
    /// span is drained (cursors only grow, so `None` is final) **or the
    /// run's cancel token trips** — this boundary is what bounds
    /// cancellation latency to one in-flight morsel per worker.
    pub fn claim(&self, worker: usize) -> Option<Morsel> {
        if self.cancel.is_cancelled() {
            return None;
        }
        let w = self.spans.len();
        for probe in 0..w {
            let victim = (worker + probe) % w;
            if let Some(id) = self.claim_from(victim) {
                return Some(Morsel {
                    id,
                    range: self.range_of(id),
                    stolen: probe != 0,
                });
            }
        }
        None
    }

    fn claim_from(&self, victim: usize) -> Option<usize> {
        let span = &self.spans[victim];
        if span.is_empty() {
            return None;
        }
        // Relaxed is enough: the claim itself synchronizes nothing — the
        // phase barrier after the queue drains is the publication point.
        let off = self.cursors[victim].0.fetch_add(1, Ordering::Relaxed);
        let id = span.start.checked_add(off)?;
        (id < span.end).then_some(id)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use crate::parallel::parallel_scope;

    #[test]
    fn covers_input_with_aligned_boundaries() {
        let policy = ExecPolicy::new(3).with_morsel_tuples(100);
        let q = MorselQueue::new(10_000, &policy, 16);
        assert_eq!(q.tuple_count(), 10_000);
        assert!(q.morsel_count() >= 10_000 / 128);
        let mut prev = 0;
        for id in 0..q.morsel_count() {
            let r = q.range_of(id);
            assert_eq!(r.start, prev);
            prev = r.end;
            if id + 1 < q.morsel_count() {
                assert_eq!(r.end % 16, 0, "unaligned interior boundary");
            }
        }
        assert_eq!(prev, 10_000);
    }

    #[test]
    fn every_morsel_claimed_exactly_once() {
        for workers in [1usize, 2, 3, 8] {
            let policy = ExecPolicy::new(workers).with_morsel_tuples(64);
            let q = MorselQueue::new(50_000, &policy, 16);
            let claimed = parallel_scope(workers, |ctx| {
                let mut ids = Vec::new();
                while let Some(m) = q.claim(ctx.thread_id) {
                    ids.push(m.id);
                }
                ids
            });
            let mut all: Vec<usize> = claimed.into_iter().flatten().collect();
            all.sort_unstable();
            let expected: Vec<usize> = (0..q.morsel_count()).collect();
            assert_eq!(all, expected, "workers={workers}");
        }
    }

    #[test]
    fn stealing_drains_a_stalled_span() {
        // Worker 1 never claims; worker 0 must steal worker 1's span.
        let policy = ExecPolicy::new(2).with_morsel_tuples(10);
        let q = MorselQueue::new(100, &policy, 1);
        let mut own = 0;
        let mut stolen = 0;
        while let Some(m) = q.claim(0) {
            if m.stolen {
                stolen += 1;
            } else {
                own += 1;
            }
        }
        assert_eq!(own + stolen, q.morsel_count());
        assert!(stolen > 0, "nothing was stolen");
        assert!(q.claim(1).is_none());
    }

    #[test]
    fn static_split_gives_one_morsel_per_worker() {
        let policy = ExecPolicy::new(4).static_split();
        let q = MorselQueue::new(1 << 20, &policy, 16);
        assert_eq!(q.morsel_count(), 4);
    }

    #[test]
    fn empty_input_yields_no_morsels() {
        let q = MorselQueue::new(0, &ExecPolicy::new(4), 16);
        assert_eq!(q.morsel_count(), 0);
        assert!(q.claim(0).is_none());
    }

    #[test]
    fn task_queue_is_unit_granularity() {
        let q = MorselQueue::tasks(7, 3);
        assert_eq!(q.morsel_count(), 7);
        for id in 0..7 {
            assert_eq!(q.range_of(id), id..id + 1);
        }
    }

    #[test]
    fn cancel_stops_claims_immediately() {
        let policy = ExecPolicy::new(2).with_morsel_tuples(10);
        let q = MorselQueue::new(100, &policy, 1);
        assert!(q.claim(0).is_some());
        policy.run.cancel.cancel();
        assert!(q.claim(0).is_none());
        assert!(q.claim(1).is_none());
    }

    #[test]
    fn task_policy_queue_honours_cancel() {
        let policy = ExecPolicy::new(1);
        let q = MorselQueue::tasks_policy(5, 1, &policy);
        assert!(q.claim(0).is_some());
        policy.run.cancel.cancel();
        assert!(q.claim(0).is_none());
    }

    #[test]
    fn tiny_input_many_workers() {
        // n < workers: some morsels are empty, but all of 0..n is covered.
        let q = MorselQueue::new(3, &ExecPolicy::new(8), 16);
        let mut total = 0;
        for id in 0..q.morsel_count() {
            total += q.range_of(id).len();
        }
        assert_eq!(total, 3);
    }
}
