//! Algebraic properties of [`SchedulerStats::merge`].
//!
//! Operators fold stats from several back-to-back parallel regions (and
//! the bench harness folds across repeats), so `merge` must behave like
//! a sum: commutative and associative up to phase ordering, with
//! `default()` as the identity. `phase_ns` keeps first-use order — a
//! presentation choice, not data — so the properties compare stats with
//! each worker's phases sorted by name.

use rsv_exec::{SchedulerStats, WorkerStats};
use rsv_testkit::Rng;

const PHASES: [&str; 5] = ["histogram", "shuffle", "build", "probe", "cleanup"];

fn random_stats(rng: &mut Rng) -> SchedulerStats {
    let workers = (0..rng.index(5))
        .map(|_| {
            let mut w = WorkerStats {
                morsels: rng.below(100),
                steals: rng.below(10),
                tuples: rng.below(1_000_000),
                phase_ns: Vec::new(),
            };
            for &name in PHASES.iter().take(rng.index(PHASES.len() + 1)) {
                w.phase_ns.push((name, rng.below(1 << 30)));
            }
            w
        })
        .collect();
    SchedulerStats { workers }
}

/// Phase order is first-use order; sort it away before comparing.
fn canon(mut s: SchedulerStats) -> SchedulerStats {
    for w in &mut s.workers {
        w.phase_ns.sort_unstable_by_key(|e| e.0);
    }
    s
}

fn merged(a: &SchedulerStats, b: &SchedulerStats) -> SchedulerStats {
    let mut m = a.clone();
    m.merge(b);
    m
}

#[test]
fn merge_is_commutative_up_to_phase_order() {
    rsv_testkit::check("stats-merge-commutative", 200, 0x51A7_5001, |rng| {
        let a = random_stats(rng);
        let b = random_stats(rng);
        assert_eq!(canon(merged(&a, &b)), canon(merged(&b, &a)));
    });
}

#[test]
fn merge_is_associative() {
    rsv_testkit::check("stats-merge-associative", 200, 0x51A7_5002, |rng| {
        let a = random_stats(rng);
        let b = random_stats(rng);
        let c = random_stats(rng);
        assert_eq!(
            canon(merged(&merged(&a, &b), &c)),
            canon(merged(&a, &merged(&b, &c)))
        );
    });
}

#[test]
fn default_is_the_identity() {
    rsv_testkit::check("stats-merge-identity", 200, 0x51A7_5003, |rng| {
        let a = random_stats(rng);
        // right identity is exact (nothing to fold in)
        assert_eq!(merged(&a, &SchedulerStats::default()), a);
        // left identity resizes from empty and must land on the same stats
        assert_eq!(merged(&SchedulerStats::default(), &a), a);
    });
}

#[test]
fn merge_preserves_totals() {
    rsv_testkit::check("stats-merge-totals", 200, 0x51A7_5004, |rng| {
        let a = random_stats(rng);
        let b = random_stats(rng);
        let m = merged(&a, &b);
        assert_eq!(m.total_morsels(), a.total_morsels() + b.total_morsels());
        assert_eq!(m.total_steals(), a.total_steals() + b.total_steals());
        assert_eq!(m.total_tuples(), a.total_tuples() + b.total_tuples());
    });
}
