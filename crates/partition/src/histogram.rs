//! Histogram generation (paper §7.1) and prefix sums.
//!
//! Before any data moves, partitioning needs a histogram of partition
//! sizes. The scalar loop is one increment per key; the vectorized
//! versions must handle *lane conflicts* (several lanes incrementing the
//! same count). The paper's three answers, all implemented here:
//!
//! * [`histogram_vector_replicated`] — replicate the histogram `W` times
//!   so lane `j` increments `H[p·W + j]`: no conflicts by construction,
//! * [`histogram_vector_serialized`] — one histogram plus conflict
//!   serialization per vector,
//! * [`histogram_vector_compressed`] — replicated **8-bit** counts (fitting
//!   4× more fanout in cache), flushed to 32-bit totals on overflow.

use rsv_metrics::Metric;
use rsv_simd::{MaskLike, Simd};

use crate::conflict::serialize_conflicts_native;
use crate::PartitionFn;

/// Scalar histogram: one increment per key.
pub fn histogram_scalar<F: PartitionFn>(f: F, keys: &[u32]) -> Vec<u32> {
    rsv_metrics::count(Metric::PartHistTuples, keys.len() as u64);
    let mut hist = vec![0u32; f.fanout()];
    for &k in keys {
        hist[f.partition(k)] += 1;
    }
    hist
}

/// Vectorized histogram with `W`-way count replication (Algorithm 11).
pub fn histogram_vector_replicated<S: Simd, F: PartitionFn>(s: S, f: F, keys: &[u32]) -> Vec<u32> {
    rsv_metrics::count(Metric::PartHistTuples, keys.len() as u64);
    s.vectorize(
        #[inline(always)]
        || {
            let w = S::LANES;
            let p = f.fanout();
            let mut partial = vec![0u32; p * w];
            let lane = s.iota();
            let wv = s.splat(w as u32);
            let one = s.splat(1);
            let mut i = 0usize;
            while i + w <= keys.len() {
                let k = s.load(&keys[i..]);
                let h = f.partition_vector(s, k);
                // lane j increments partial[p*W + j]
                let idx = s.add(s.mullo(h, wv), lane);
                let c = s.gather(&partial, idx);
                s.scatter(&mut partial, idx, s.add(c, one));
                i += w;
            }
            let mut hist = reduce_replicated(s, &partial, p);
            for &k in &keys[i..] {
                hist[f.partition(k)] += 1;
            }
            hist
        },
    )
}

/// Sum each partition's `W` replicated counts into one (Algorithm 11's
/// final loop).
fn reduce_replicated<S: Simd>(s: S, partial: &[u32], p: usize) -> Vec<u32> {
    let w = S::LANES;
    let mut hist = vec![0u32; p];
    for (part, h) in hist.iter_mut().enumerate() {
        *h = s.reduce_add_u64(s.load(&partial[part * w..])) as u32;
    }
    hist
}

/// Vectorized histogram over a single (non-replicated) count array, using
/// conflict serialization per input vector.
pub fn histogram_vector_serialized<S: Simd, F: PartitionFn>(s: S, f: F, keys: &[u32]) -> Vec<u32> {
    rsv_metrics::count(Metric::PartHistTuples, keys.len() as u64);
    s.vectorize(
        #[inline(always)]
        || {
            let w = S::LANES;
            let metered = rsv_metrics::enabled();
            let mut conflicts = 0u64;
            let mut hist = vec![0u32; f.fanout()];
            let one = s.splat(1);
            let mut i = 0usize;
            while i + w <= keys.len() {
                let k = s.load(&keys[i..]);
                let h = f.partition_vector(s, k);
                let c = s.gather(&hist, h);
                let ser = serialize_conflicts_native(s, h);
                if metered {
                    // lanes with a nonzero serial offset had to wait behind
                    // an earlier lane of the same partition
                    conflicts += s.cmpeq(ser, s.zero()).not().count() as u64;
                }
                // rightmost lane of each conflict group carries the largest
                // serial offset, so its write is the correct new count
                s.scatter(&mut hist, h, s.add(c, s.add(ser, one)));
                i += w;
            }
            rsv_metrics::count(Metric::PartConflictsSerialized, conflicts);
            for &k in &keys[i..] {
                hist[f.partition(k)] += 1;
            }
            hist
        },
    )
}

/// Vectorized histogram with replicated **8-bit** counts (paper: "if the
/// histograms do not fit in the fastest cache, we use 1-byte counts and
/// flush on overflow").
///
/// Each lane owns a private, 4-byte-padded region of byte counts, so the
/// emulated byte scatters never collide within a word.
pub fn histogram_vector_compressed<S: Simd, F: PartitionFn>(s: S, f: F, keys: &[u32]) -> Vec<u32> {
    rsv_metrics::count(Metric::PartHistTuples, keys.len() as u64);
    s.vectorize(
        #[inline(always)]
        || {
            let w = S::LANES;
            let p = f.fanout();
            let p_pad = p.next_multiple_of(4);
            let mut bytes = vec![0u8; p_pad * w];
            let mut overflow = vec![u64::from(0u32); p];
            let region = {
                // lane j's region starts at j * p_pad
                let mut starts = vec![0u32; w.max(S::LANES)];
                for (j, st) in starts.iter_mut().enumerate() {
                    *st = (j * p_pad) as u32;
                }
                s.load(&starts)
            };
            let max = s.splat(255);
            let one = s.splat(1);
            let mut i = 0usize;
            while i + w <= keys.len() {
                let k = s.load(&keys[i..]);
                let h = f.partition_vector(s, k);
                let idx = s.add(h, region);
                let c = s.gather_bytes(&bytes, idx);
                let full = s.cmpeq(c, max);
                // wrap full counters to zero, crediting 256 to the overflow
                // totals with scalar code (rare)
                s.scatter_bytes(&mut bytes, idx, s.blend(full, s.zero(), s.add(c, one)));
                if full.any() {
                    let mut ha = [0u32; 32];
                    s.store(h, &mut ha[..w]);
                    for lane in full.iter_set() {
                        overflow[ha[lane] as usize] += 256;
                    }
                }
                i += w;
            }
            let mut hist = vec![0u32; p];
            for part in 0..p {
                let mut total = overflow[part];
                for j in 0..w {
                    total += u64::from(bytes[j * p_pad + part]);
                }
                hist[part] = total as u32;
            }
            for &k in &keys[i..] {
                hist[f.partition(k)] += 1;
            }
            hist
        },
    )
}

/// Exclusive prefix sum: `out[p]` = first output offset of partition `p`
/// (starting at `base`). Returns the offsets and the total count.
pub fn prefix_sum(hist: &[u32], base: u32) -> (Vec<u32>, usize) {
    let mut offsets = Vec::with_capacity(hist.len());
    let mut acc = base;
    for &h in hist {
        offsets.push(acc);
        acc += h;
    }
    (offsets, (acc - base) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HashFn, RadixFn};
    use rsv_simd::Portable;

    fn keys(n: usize) -> Vec<u32> {
        let mut rng = rsv_data::rng(71);
        rsv_data::uniform_u32(n, &mut rng)
    }

    #[test]
    fn vector_histograms_match_scalar_radix() {
        let s = Portable::<16>::new();
        for bits in [1u32, 4, 8] {
            let f = RadixFn::new(4, bits);
            let ks = keys(5000 + 3);
            let expected = histogram_scalar(f, &ks);
            assert_eq!(
                histogram_vector_replicated(s, f, &ks),
                expected,
                "repl bits={bits}"
            );
            assert_eq!(
                histogram_vector_serialized(s, f, &ks),
                expected,
                "ser bits={bits}"
            );
            assert_eq!(
                histogram_vector_compressed(s, f, &ks),
                expected,
                "comp bits={bits}"
            );
        }
    }

    #[test]
    fn vector_histograms_match_scalar_hash() {
        let s = Portable::<8>::new();
        for fanout in [3usize, 64, 500] {
            let f = HashFn::new(fanout);
            let ks = keys(3001);
            let expected = histogram_scalar(f, &ks);
            assert_eq!(histogram_vector_replicated(s, f, &ks), expected);
            assert_eq!(histogram_vector_serialized(s, f, &ks), expected);
            assert_eq!(histogram_vector_compressed(s, f, &ks), expected);
        }
    }

    #[test]
    fn compressed_handles_overflowing_counts() {
        // one partition receives far more than 255 keys
        let s = Portable::<16>::new();
        let f = RadixFn::new(0, 2);
        let ks = vec![0u32; 10_000]; // all partition 0
        let expected = histogram_scalar(f, &ks);
        assert_eq!(expected[0], 10_000);
        assert_eq!(histogram_vector_compressed(s, f, &ks), expected);
        assert_eq!(histogram_vector_replicated(s, f, &ks), expected);
        assert_eq!(histogram_vector_serialized(s, f, &ks), expected);
    }

    #[test]
    fn histogram_counts_sum_to_input_length() {
        let s = Portable::<16>::new();
        let f = HashFn::new(101);
        let ks = keys(12345);
        let h = histogram_vector_replicated(s, f, &ks);
        assert_eq!(h.iter().map(|&c| c as usize).sum::<usize>(), ks.len());
    }

    #[test]
    fn prefix_sum_offsets() {
        let (off, total) = prefix_sum(&[3, 0, 5, 1], 10);
        assert_eq!(off, vec![10, 13, 13, 18]);
        assert_eq!(total, 9);
        let (off, total) = prefix_sum(&[], 0);
        assert!(off.is_empty());
        assert_eq!(total, 0);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn accelerated_backends_match() {
        let ks = keys(10_000);
        let f = RadixFn::new(3, 7);
        let expected = histogram_scalar(f, &ks);
        if let Some(s) = rsv_simd::Avx512::new() {
            assert_eq!(histogram_vector_replicated(s, f, &ks), expected);
            assert_eq!(histogram_vector_serialized(s, f, &ks), expected);
            assert_eq!(histogram_vector_compressed(s, f, &ks), expected);
        }
        if let Some(s) = rsv_simd::Avx2::new() {
            assert_eq!(histogram_vector_replicated(s, f, &ks), expected);
            assert_eq!(histogram_vector_serialized(s, f, &ks), expected);
            assert_eq!(histogram_vector_compressed(s, f, &ks), expected);
        }
    }
}
