//! Graceful degradation for oversized partition fanouts: a two-pass
//! decomposition that stays byte-identical to the single-pass shuffle.
//!
//! The buffered single-pass shuffle allocates one staging line per
//! partition *per morsel*; past a few thousand partitions that working set
//! evicts the very cache lines buffering was meant to protect (the paper's
//! own argument for multi-pass partitioning, Section 7.4). Instead of
//! asserting on a large fanout, [`hash_partition_twopass_try`] splits a
//! fanout `F > max_direct` into
//!
//! * **pass 1**: a stable partition on the *coarse* key
//!   `p >> log2(max_direct)` (the high bits of the full partition index),
//!   producing `ceil(F / max_direct)` contiguous regions, and
//! * **pass 2**: an independent, stable, at-most-`max_direct`-way
//!   partition of each region on the *fine* key `p - region_base`, run as
//!   a task queue over regions.
//!
//! Since the full partition index decomposes as
//! `p = (p >> s) * max_direct + fine` with `fine < max_direct`, ordering
//! stably by the coarse key and then stably by the fine key within each
//! region orders stably by `p`: the output is **byte-identical** to a
//! direct `F`-way stable pass, which is what the equivalence tests assert.

use rsv_exec::{
    expect_infallible, parallel_scope_try, EngineError, ExecPolicy, MorselQueue, SchedulerStats,
    SharedBuffer,
};
use rsv_simd::Simd;

use crate::histogram::{histogram_scalar, histogram_vector_replicated};
use crate::parallel::{partition_pass_policy_try, PassOutput};
use crate::shuffle::{shuffle_scalar_buffered, shuffle_vector_buffered};
use crate::{HashFn, PartitionFn};

/// Largest fanout the engine partitions in one pass; beyond it the
/// per-morsel staging buffers outgrow L1/L2 and the two-pass decomposition
/// takes over.
pub const MAX_DIRECT_FANOUT: usize = 4096;

/// Pass 1's partition function: the high bits of the full partition index.
#[derive(Debug, Clone, Copy)]
struct CoarseFn {
    inner: HashFn,
    shift: u32,
    fanout: usize,
}

impl PartitionFn for CoarseFn {
    #[inline(always)]
    fn fanout(&self) -> usize {
        self.fanout
    }

    #[inline(always)]
    fn partition(&self, key: u32) -> usize {
        self.inner.partition(key) >> self.shift
    }

    #[inline(always)]
    fn partition_vector<S: Simd>(&self, s: S, keys: S::V) -> S::V {
        s.shr(self.inner.partition_vector(s, keys), self.shift)
    }
}

/// Pass 2's partition function: the full index rebased to one coarse
/// region (`p - region_base`, always `< max_direct`).
#[derive(Debug, Clone, Copy)]
struct FineFn {
    inner: HashFn,
    base: u32,
    fanout: usize,
}

impl PartitionFn for FineFn {
    #[inline(always)]
    fn fanout(&self) -> usize {
        self.fanout
    }

    #[inline(always)]
    fn partition(&self, key: u32) -> usize {
        self.inner.partition(key) - self.base as usize
    }

    #[inline(always)]
    fn partition_vector<S: Simd>(&self, s: S, keys: S::V) -> S::V {
        s.sub(self.inner.partition_vector(s, keys), s.splat(self.base))
    }
}

/// Infallible [`hash_partition_twopass_try`] (for benches and callers
/// without a [`rsv_exec::RunContext`]).
#[allow(clippy::too_many_arguments)]
pub fn hash_partition_twopass<S: Simd>(
    s: S,
    vectorized: bool,
    f: HashFn,
    src_k: &[u32],
    src_p: &[u32],
    dst_k: &mut Vec<u32>,
    dst_p: &mut Vec<u32>,
    policy: &ExecPolicy,
    max_direct: usize,
) -> (PassOutput, SchedulerStats) {
    expect_infallible(hash_partition_twopass_try(
        s, vectorized, f, src_k, src_p, dst_k, dst_p, policy, max_direct,
    ))
}

/// Stable hash partition that transparently degrades to two passes when
/// `f.fanout() > max_direct` (`max_direct` must be a power of two). The
/// output — partitioned columns, histogram, partition starts — is
/// byte-identical to a direct single-pass run at any fanout; only the
/// route differs. Honours `policy.run` (cancellation at claim boundaries,
/// memory budget for the inter-pass scratch columns).
#[allow(clippy::too_many_arguments)]
pub fn hash_partition_twopass_try<S: Simd>(
    s: S,
    vectorized: bool,
    f: HashFn,
    src_k: &[u32],
    src_p: &[u32],
    dst_k: &mut Vec<u32>,
    dst_p: &mut Vec<u32>,
    policy: &ExecPolicy,
    max_direct: usize,
) -> Result<(PassOutput, SchedulerStats), EngineError> {
    assert!(
        max_direct.is_power_of_two(),
        "max_direct must be a power of two"
    );
    let fanout = f.fanout();
    if fanout <= max_direct {
        return partition_pass_policy_try(s, vectorized, f, src_k, src_p, dst_k, dst_p, policy);
    }
    let n = src_k.len();
    let t = policy.threads;
    let shift = max_direct.trailing_zeros();
    let regions = fanout.div_ceil(max_direct);
    let coarse = CoarseFn {
        inner: f,
        shift,
        fanout: regions,
    };

    // Pass 1 into scratch columns (the only extra memory the degradation
    // costs — gated by the run's budget).
    let scratch_bytes = 2 * (n as u64) * std::mem::size_of::<u32>() as u64;
    policy.run.reserve(scratch_bytes)?;
    let mut mid_k = vec![0u32; n];
    let mut mid_p = vec![0u32; n];
    let coarse_result = partition_pass_policy_try(
        s, vectorized, coarse, src_k, src_p, &mut mid_k, &mut mid_p, policy,
    );
    let (coarse_out, mut stats) = match coarse_result {
        Ok(v) => v,
        Err(e) => {
            policy.run.budget.release(scratch_bytes);
            return Err(e);
        }
    };

    // Pass 2: one task per coarse region; each task histograms its region
    // on the fine key and shuffles it — stably — into the region's slice
    // of the final output. Regions are disjoint in both columns, so tasks
    // never overlap.
    let q = MorselQueue::tasks_policy(regions, t, policy);
    let out_k = SharedBuffer::from_vec(std::mem::take(dst_k));
    let out_p = SharedBuffer::from_vec(std::mem::take(dst_p));
    let global_hist = SharedBuffer::from_vec(vec![0u32; fanout]);
    let scope = parallel_scope_try(t, |ctx| {
        // SAFETY: task `r` touches only output tuples in coarse region
        // `r`'s range and histogram entries in `r`'s partition-index
        // range; both are disjoint across tasks, and every task id is
        // claimed exactly once. Reads happen after the scope joins.
        let (ok, op, gh) = unsafe { (out_k.view_mut(), out_p.view_mut(), global_hist.view_mut()) };
        for task in ctx.morsels(&q) {
            let _ = rsv_testkit::failpoint!("partition.twopass.region");
            ctx.phase("fine", || {
                let r = task.id;
                let start = coarse_out.partition_starts[r] as usize;
                let len = coarse_out.hist[r] as usize;
                let base = r * max_direct;
                let fan2 = max_direct.min(fanout - base);
                let fine = FineFn {
                    inner: f,
                    base: base as u32,
                    fanout: fan2,
                };
                let ks = &mid_k[start..start + len];
                let ps = &mid_p[start..start + len];
                let h = if vectorized {
                    histogram_vector_replicated(s, fine, ks)
                } else {
                    histogram_scalar(fine, ks)
                };
                let dst_ks = &mut ok[start..start + len];
                let dst_ps = &mut op[start..start + len];
                if vectorized {
                    shuffle_vector_buffered(s, fine, ks, ps, &h, dst_ks, dst_ps);
                } else {
                    shuffle_scalar_buffered(fine, ks, ps, &h, dst_ks, dst_ps);
                }
                gh[base..base + fan2].copy_from_slice(&h);
            });
        }
    });
    *dst_k = out_k.into_vec();
    *dst_p = out_p.into_vec();
    drop(mid_k);
    drop(mid_p);
    policy.run.budget.release(scratch_bytes);
    match scope {
        Ok((_, fine_stats)) => stats.merge(&fine_stats),
        Err(wp) => return Err(wp.into_engine_error()),
    }
    policy.run.check_cancelled()?;

    let hist = global_hist.into_vec();
    let mut partition_starts = Vec::with_capacity(fanout);
    let mut acc = 0u32;
    for &c in &hist {
        partition_starts.push(acc);
        acc += c;
    }
    Ok((
        PassOutput {
            partition_starts,
            hist,
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsv_simd::Portable;

    /// The two-pass route must be byte-identical to the direct single-pass
    /// shuffle — same columns, same histogram, same starts — across thread
    /// counts and both kernel flavours.
    #[test]
    fn twopass_is_byte_identical_to_direct() {
        let s = Portable::<16>::new();
        let mut rng = rsv_data::rng(977);
        let keys = rsv_data::uniform_u32(30_000, &mut rng);
        let pays: Vec<u32> = (0..30_000).collect();
        // fanout 53 > max_direct 16 forces two passes (and a ragged last
        // region: 53 = 3 * 16 + 5)
        let f = HashFn::new(53);
        for vectorized in [false, true] {
            let mut rk = vec![0u32; keys.len()];
            let mut rp = vec![0u32; keys.len()];
            let policy = ExecPolicy::new(1);
            let (reference, _) = crate::parallel::partition_pass_policy(
                s, vectorized, f, &keys, &pays, &mut rk, &mut rp, &policy,
            );
            for threads in [1usize, 2, 8] {
                let policy = ExecPolicy::new(threads).with_morsel_tuples(1024);
                let mut dk = vec![0u32; keys.len()];
                let mut dp = vec![0u32; keys.len()];
                let (out, stats) = hash_partition_twopass(
                    s, vectorized, f, &keys, &pays, &mut dk, &mut dp, &policy, 16,
                );
                assert_eq!(dk, rk, "keys differ (t={threads} vec={vectorized})");
                assert_eq!(dp, rp, "pays differ (t={threads} vec={vectorized})");
                assert_eq!(out.hist, reference.hist);
                assert_eq!(out.partition_starts, reference.partition_starts);
                assert!(stats.total_tuples() > 0);
            }
        }
    }

    #[test]
    fn small_fanout_stays_single_pass() {
        let s = Portable::<16>::new();
        let keys: Vec<u32> = (0..1000)
            .map(|i: u32| 2654435761u32.wrapping_mul(i))
            .collect();
        let pays: Vec<u32> = (0..1000).collect();
        let f = HashFn::new(8);
        let policy = ExecPolicy::new(2);
        let mut dk = vec![0u32; 1000];
        let mut dp = vec![0u32; 1000];
        let (out, _) =
            hash_partition_twopass(s, true, f, &keys, &pays, &mut dk, &mut dp, &policy, 16);
        let total: u32 = out.hist.iter().sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn budget_gates_scratch_columns() {
        use rsv_exec::RunContext;
        let s = Portable::<16>::new();
        let keys: Vec<u32> = (0..10_000u32).collect();
        let pays = keys.clone();
        let f = HashFn::new(100);
        // two-pass needs 2 * 10_000 * 4 = 80_000 B of scratch; allow less
        let run = RunContext::new().with_memory_limit(10_000);
        let policy = ExecPolicy::new(2).with_run(run);
        let mut dk = vec![0u32; keys.len()];
        let mut dp = vec![0u32; keys.len()];
        let err =
            hash_partition_twopass_try(s, true, f, &keys, &pays, &mut dk, &mut dp, &policy, 16)
                .expect_err("budget must deny the scratch columns");
        assert!(matches!(err, EngineError::BudgetExceeded { .. }), "{err}");
        // nothing stays reserved after the failure
        assert_eq!(policy.run.budget.used(), 0);
    }
}
