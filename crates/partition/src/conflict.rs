//! Conflict serialization (paper §7.3, Algorithm 13).
//!
//! When a vector of tuples is scattered through a shared offset array,
//! lanes that map to the same partition would write to the same location.
//! *Conflict serialization* assigns each lane an extra offset equal to the
//! number of earlier lanes with the same partition, so that
//!
//! * every lane writes a distinct location,
//! * tuples of one partition keep their input order (stable), and
//! * a single rightmost-wins scatter of `offset + serial + 1` advances the
//!   shared offset correctly.
//!
//! Two implementations:
//! * [`serialize_conflicts_scatter`] — the paper's Algorithm 13
//!   (reverse-permute, then iterated scatter/gather of lane ids),
//! * [`serialize_conflicts_native`] — the `vpconflictd` approach the paper
//!   describes for "future" ISAs (AVX-512CD here), a popcount of each
//!   lane's conflict bitmask.

use rsv_simd::{MaskLike, Simd};

/// Algorithm 13: serialization offsets via iterated scatter/gather of lane
/// ids. `scratch` must have at least `fanout` entries; its contents are
/// clobbered.
///
/// Returns, per lane, the number of earlier lanes with the same value in
/// `h`.
#[inline(always)]
pub fn serialize_conflicts_scatter<S: Simd>(s: S, h: S::V, scratch: &mut [u32]) -> S::V {
    let w = S::LANES as u32;
    // Reverse so the scatter's rightmost-wins rule resolves toward the
    // *first* (in input order) lane each round, keeping stability.
    let rev = s.sub(s.splat(w - 1), s.iota());
    let hr = s.permute(h, rev);
    let ids = rev; // any vector with unique lane values; reuse the reversal
    let mut c = s.zero();
    let mut m = S::M::all();
    loop {
        s.scatter_masked(scratch, m, hr, ids);
        let back = s.gather_masked(ids, m, scratch, hr);
        m = m.and(s.cmpne(ids, back));
        if m.is_empty() {
            break;
        }
        c = s.blend(m, s.add(c, s.splat(1)), c);
    }
    s.permute(c, rev)
}

/// Serialization offsets via the conflict-detection instruction
/// (`vpconflictd` on AVX-512CD; emulated on other backends): popcount of
/// the earlier-equal-lanes bitmask.
#[inline(always)]
pub fn serialize_conflicts_native<S: Simd>(s: S, h: S::V) -> S::V {
    s.popcount_lanes(s.conflict(h))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsv_simd::Portable;

    fn reference(h: &[u32]) -> Vec<u32> {
        h.iter()
            .enumerate()
            .map(|(i, &x)| h[..i].iter().filter(|&&y| y == x).count() as u32)
            .collect()
    }

    fn check<S: Simd>(s: S, lanes: &[u32]) {
        let h = s.load(lanes);
        let expected = reference(&lanes[..S::LANES]);

        let native = serialize_conflicts_native(s, h);
        let mut out = vec![0u32; S::LANES];
        s.store(native, &mut out);
        assert_eq!(out, expected, "native, lanes {lanes:?}");

        let mut scratch = vec![0u32; 1 + *lanes.iter().max().unwrap() as usize];
        let scat = serialize_conflicts_scatter(s, h, &mut scratch);
        s.store(scat, &mut out);
        assert_eq!(out, expected, "scatter, lanes {lanes:?}");
    }

    #[test]
    fn no_conflicts() {
        check(Portable::<8>::new(), &[0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn all_same() {
        check(Portable::<8>::new(), &[3; 8]);
        check(Portable::<16>::new(), &[9; 16]);
    }

    #[test]
    fn mixed_groups() {
        check(Portable::<8>::new(), &[5, 2, 5, 5, 2, 0, 5, 2]);
        check(
            Portable::<16>::new(),
            &[1, 1, 2, 3, 2, 1, 4, 4, 4, 4, 0, 1, 2, 3, 4, 0],
        );
    }

    #[test]
    fn exhaustive_small() {
        // all 4^4 combinations in the first 4 lanes of an 8-wide vector
        let s = Portable::<8>::new();
        for a in 0..4u32 {
            for b in 0..4u32 {
                for c in 0..4u32 {
                    for d in 0..4u32 {
                        check(s, &[a, b, c, d, a ^ 1, b ^ 2, c ^ 3, d]);
                    }
                }
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn accelerated_backends_match() {
        if let Some(s) = rsv_simd::Avx512::new() {
            check(s, &[1, 1, 2, 3, 2, 1, 4, 4, 4, 4, 0, 1, 2, 3, 4, 0]);
            check(s, &[7; 16]);
        }
        if let Some(s) = rsv_simd::Avx2::new() {
            check(s, &[5, 2, 5, 5, 2, 0, 5, 2]);
        }
    }
}
