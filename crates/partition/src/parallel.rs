//! One parallel, stable partitioning pass over key/payload pairs.
//!
//! The paper's thread decomposition (Sections 8 and 9) splits the input
//! equally among threads. Here the input is instead cut into SIMD-aligned
//! **morsels** that workers claim from a work-stealing queue
//! ([`rsv_exec::MorselQueue`]); the *interleaved* prefix sum over the
//! per-morsel histograms assigns each morsel a contiguous slice of every
//! partition's output region, so the pass stays stable and its output is
//! byte-identical for any thread count and any claim order. Workers
//! shuffle shared-nothing, synchronize, and then run the buffered-shuffle
//! cleanup for each morsel (which also repairs first-line clobbering
//! across region boundaries).
//!
//! Safety of the morselized buffered shuffle (same argument as the
//! paper's per-thread version, with "thread" replaced by "morsel"): an
//! aligned output line is streaming-flushed by at most one worker — the
//! one shuffling the morsel whose offset interval contains the line's end
//! — because a flush happens only when that morsel's running offset
//! crosses the line end. Every other morsel's tuples in that line stay in
//! the morsel's staging buffer and are written directly by its cleanup,
//! which runs after the barrier and therefore after every flush.

use rsv_exec::{
    expect_infallible, parallel_scope_try, AlignedVec, EngineError, ExecPolicy, MorselQueue,
    SchedulerStats, SharedBuffer, SlotMap,
};
use rsv_simd::Simd;

use crate::histogram::{histogram_scalar, histogram_vector_replicated};
use crate::shuffle::{
    scalar_slots, shuffle_buffer_cleanup, shuffle_scalar_buffered_core,
    shuffle_vector_buffered_core,
};
use crate::PartitionFn;

/// Per-region partition start offsets from the interleaved prefix sum of
/// all regions' histograms. `offsets[r][p]` is where region `r` (a morsel,
/// or a thread chunk in the static scheme) writes its first tuple of
/// partition `p`; partition `p`'s full region is
/// `[offsets[0][p], offsets[0][p+1])`.
pub fn interleaved_offsets(hists: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let t = hists.len();
    assert!(t > 0);
    let p = hists[0].len();
    let mut offsets = vec![vec![0u32; p]; t];
    let mut acc = 0u32;
    for part in 0..p {
        for (tid, hist) in hists.iter().enumerate() {
            offsets[tid][part] = acc;
            acc += hist[part];
        }
    }
    offsets
}

/// Result of a parallel partitioning pass.
#[derive(Debug, Clone)]
pub struct PassOutput {
    /// Partition start offsets (into the output columns).
    pub partition_starts: Vec<u32>,
    /// Per-partition tuple counts.
    pub hist: Vec<u32>,
}

/// Run one stable buffered-shuffle partitioning pass with `threads`
/// workers, writing the partitioned columns into `dst_k`/`dst_p` (which
/// must have the input length).
#[allow(clippy::too_many_arguments)]
pub fn partition_pass_parallel<S: Simd, F: PartitionFn + Sync>(
    s: S,
    vectorized: bool,
    f: F,
    src_k: &[u32],
    src_p: &[u32],
    dst_k: &mut Vec<u32>,
    dst_p: &mut Vec<u32>,
    threads: usize,
) -> PassOutput {
    let policy = ExecPolicy::new(threads);
    partition_pass_policy(s, vectorized, f, src_k, src_p, dst_k, dst_p, &policy).0
}

/// [`partition_pass_parallel`] with explicit morsel scheduling, returning
/// per-worker scheduler stats alongside the pass output.
///
/// The output is byte-identical for every `policy.threads` value; it also
/// does not depend on `policy.morsel_tuples`, because the interleaved
/// offsets key each morsel's slice to the morsel's *input order*, making
/// the pass a stable partition of the input regardless of granularity.
#[allow(clippy::too_many_arguments)]
pub fn partition_pass_policy<S: Simd, F: PartitionFn + Sync>(
    s: S,
    vectorized: bool,
    f: F,
    src_k: &[u32],
    src_p: &[u32],
    dst_k: &mut Vec<u32>,
    dst_p: &mut Vec<u32>,
    policy: &ExecPolicy,
) -> (PassOutput, SchedulerStats) {
    expect_infallible(partition_pass_policy_try(
        s, vectorized, f, src_k, src_p, dst_k, dst_p, policy,
    ))
}

/// Fallible [`partition_pass_policy`]: honours `policy.run`'s cancel token
/// at every morsel/task claim and surfaces worker panics as
/// [`EngineError::WorkerPanicked`]. On error the output vectors keep their
/// length but hold unspecified contents.
#[allow(clippy::too_many_arguments)]
pub fn partition_pass_policy_try<S: Simd, F: PartitionFn + Sync>(
    s: S,
    vectorized: bool,
    f: F,
    src_k: &[u32],
    src_p: &[u32],
    dst_k: &mut Vec<u32>,
    dst_p: &mut Vec<u32>,
    policy: &ExecPolicy,
) -> Result<(PassOutput, SchedulerStats), EngineError> {
    assert_eq!(src_k.len(), src_p.len(), "column length mismatch");
    assert_eq!(dst_k.len(), src_k.len(), "output length mismatch");
    assert_eq!(dst_p.len(), src_p.len(), "output length mismatch");
    let n = src_k.len();
    let t = policy.threads;

    // Phase 1: per-morsel histograms, keyed by morsel id.
    let hist_q = MorselQueue::new(n, policy, S::LANES);
    let m = hist_q.morsel_count();
    let hist_slots: SlotMap<Vec<u32>> = SlotMap::new(m);
    let scope = parallel_scope_try(t, |ctx| {
        for mo in ctx.morsels(&hist_q) {
            let _ = rsv_testkit::failpoint!("partition.histogram.morsel");
            let h = ctx.phase("histogram", || {
                let ks = &src_k[mo.range.clone()];
                if vectorized {
                    histogram_vector_replicated(s, f, ks)
                } else {
                    histogram_scalar(f, ks)
                }
            });
            // SAFETY: each morsel id is claimed exactly once.
            unsafe { hist_slots.put(mo.id, h) };
        }
    });
    let mut stats = match scope {
        Ok((_, stats)) => stats,
        Err(wp) => return Err(wp.into_engine_error()),
    };
    // A cancelled pass may have left histogram slots unfilled: bail before
    // reading them.
    policy.run.check_cancelled()?;
    let mut hists: Vec<Vec<u32>> = hist_slots
        .into_values()
        .into_iter()
        .map(|h| h.expect("every morsel histogrammed"))
        .collect();
    if hists.is_empty() {
        // empty input: zero morsels, but the offsets below need one region
        hists.push(vec![0u32; f.fanout()]);
    }
    let bases = interleaved_offsets(&hists);
    let mut hist = vec![0u32; f.fanout()];
    for h in &hists {
        for (p, &c) in h.iter().enumerate() {
            hist[p] += c;
        }
    }

    // Phase 2: shared-nothing buffered shuffle per morsel; phase 3 (after
    // the barrier): per-morsel staging-buffer cleanup, claimable by any
    // worker because the buffers and final offsets are keyed by morsel id.
    let shuffle_q = MorselQueue::new(n, policy, S::LANES);
    // The cleanup queue must share the run's cancel token: a shuffle phase
    // cut short by cancellation leaves staging slots unfilled, and a
    // cancelled claim is what keeps cleanup from reading them.
    let cleanup_q = MorselQueue::tasks_policy(m, t, policy);
    let staged: SlotMap<(AlignedVec<u64>, Vec<u32>)> = SlotMap::new(m);
    let slots = if vectorized { S::LANES } else { scalar_slots() };
    let out_k = SharedBuffer::from_vec(std::mem::take(dst_k));
    let out_p = SharedBuffer::from_vec(std::mem::take(dst_p));
    let shuffle_scope = parallel_scope_try(t, |ctx| {
        // SAFETY: morsels write disjoint output regions derived from the
        // interleaved prefix sums; transiently clobbered first lines are
        // repaired by their owning morsels' cleanup, which runs after the
        // barrier, and any output line is aligned-flushed by at most one
        // worker (the one whose morsel's offset interval contains the
        // line end).
        let (ok, op) = unsafe { (out_k.view_mut(), out_p.view_mut()) };
        for mo in ctx.morsels(&shuffle_q) {
            let _ = rsv_testkit::failpoint!("partition.shuffle.morsel");
            ctx.phase("shuffle", || {
                let r = mo.range.clone();
                let mut off = bases[mo.id].clone();
                let mut buf: AlignedVec<u64> = AlignedVec::zeroed(f.fanout() * slots);
                if vectorized {
                    shuffle_vector_buffered_core(
                        s,
                        f,
                        &src_k[r.clone()],
                        &src_p[r],
                        &mut off,
                        &mut buf,
                        ok,
                        op,
                        true,
                    );
                } else {
                    shuffle_scalar_buffered_core(
                        f,
                        &src_k[r.clone()],
                        &src_p[r],
                        &mut off,
                        &mut buf,
                        ok,
                        op,
                    );
                }
                // SAFETY: one writer per morsel id, read only after the
                // barrier below.
                unsafe { staged.put(mo.id, (buf, off)) };
            });
        }
        ctx.barrier();
        for task in ctx.morsels(&cleanup_q) {
            ctx.phase("cleanup", || {
                // SAFETY: all writers crossed the barrier above; each
                // cleanup task id is claimed exactly once.
                let (buf, off) = unsafe { staged.get(task.id) };
                shuffle_buffer_cleanup(slots, buf, &bases[task.id], off, ok, op);
            });
        }
    });
    *dst_k = out_k.into_vec();
    *dst_p = out_p.into_vec();
    match shuffle_scope {
        Ok((_, shuffle_stats)) => stats.merge(&shuffle_stats),
        Err(wp) => return Err(wp.into_engine_error()),
    }
    policy.run.check_cancelled()?;

    let mut partition_starts = Vec::with_capacity(f.fanout());
    let mut acc = 0u32;
    for &c in &hist {
        partition_starts.push(acc);
        acc += c;
    }
    Ok((
        PassOutput {
            partition_starts,
            hist,
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HashFn, PartitionFn};
    use rsv_simd::Portable;

    #[test]
    fn interleaved_offsets_layout() {
        let hists = vec![vec![2u32, 3], vec![1, 4]];
        let off = interleaved_offsets(&hists);
        // partition 0: t0 at 0..2, t1 at 2..3; partition 1: t0 at 3..6, t1 at 6..10
        assert_eq!(off[0], vec![0, 3]);
        assert_eq!(off[1], vec![2, 6]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn parallel_pass_partitions_correctly() {
        let s = Portable::<16>::new();
        let mut rng = rsv_data::rng(131);
        let keys = rsv_data::uniform_u32(20_000, &mut rng);
        let pays: Vec<u32> = (0..20_000).collect();
        let f = HashFn::new(53);
        for threads in [1usize, 2, 4] {
            for vectorized in [false, true] {
                let mut dk = vec![0u32; keys.len()];
                let mut dp = vec![0u32; keys.len()];
                let out = partition_pass_parallel(
                    s, vectorized, f, &keys, &pays, &mut dk, &mut dp, threads,
                );
                // region check + stability within each morsel's slice is
                // implied; check partition function and global stability
                for p in 0..f.fanout() {
                    let start = out.partition_starts[p] as usize;
                    let end = start + out.hist[p] as usize;
                    for q in start..end {
                        assert_eq!(f.partition(dk[q]), p);
                    }
                    // payloads were 0..n: within a partition they ascend
                    // because morsel regions follow morsel (= input) order
                    for w in dp[start..end].windows(2) {
                        assert!(w[0] < w[1], "pass not stable (threads={threads})");
                    }
                }
                let a = rsv_data::multiset_fingerprint(keys.iter().zip(&pays));
                let b = rsv_data::multiset_fingerprint(dk.iter().zip(&dp));
                assert_eq!(a, b);
            }
        }
    }

    /// The pass output must not depend on thread count or morsel size.
    #[test]
    fn pass_output_independent_of_schedule() {
        let s = Portable::<16>::new();
        let mut rng = rsv_data::rng(132);
        let keys = rsv_data::uniform_u32(30_000, &mut rng);
        let pays: Vec<u32> = (0..30_000).collect();
        let f = HashFn::new(29);
        let mut reference: Option<(Vec<u32>, Vec<u32>)> = None;
        for threads in [1usize, 2, 3, 8] {
            for morsel in [512usize, 4096, usize::MAX] {
                let policy = ExecPolicy::new(threads).with_morsel_tuples(morsel);
                let mut dk = vec![0u32; keys.len()];
                let mut dp = vec![0u32; keys.len()];
                let (_, stats) =
                    partition_pass_policy(s, true, f, &keys, &pays, &mut dk, &mut dp, &policy);
                assert!(stats.total_tuples() > 0);
                match &reference {
                    None => reference = Some((dk, dp)),
                    Some((rk, rp)) => {
                        assert_eq!(&dk, rk, "keys differ at t={threads} morsel={morsel}");
                        assert_eq!(&dp, rp, "pays differ at t={threads} morsel={morsel}");
                    }
                }
            }
        }
    }
}
