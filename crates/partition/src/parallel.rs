//! One parallel, stable partitioning pass over key/payload pairs.
//!
//! The paper's thread decomposition (Sections 8 and 9): the input is split
//! equally among threads; every thread histograms its chunk; the
//! *interleaved* prefix sum over all threads' histograms assigns each
//! thread a contiguous slice of every partition's output region; threads
//! shuffle shared-nothing, synchronize, and run the buffered-shuffle
//! cleanup (which also repairs first-line clobbering across thread
//! boundaries).

use rsv_exec::{chunk_ranges, parallel_scope, AlignedVec, SharedBuffer};
use rsv_simd::Simd;

use crate::histogram::{histogram_scalar, histogram_vector_replicated};
use crate::shuffle::{
    scalar_slots, shuffle_buffer_cleanup, shuffle_scalar_buffered_core,
    shuffle_vector_buffered_core,
};
use crate::PartitionFn;

/// Per-thread partition start offsets from the interleaved prefix sum of
/// all threads' histograms. `offsets[t][p]` is where thread `t` writes its
/// first tuple of partition `p`; partition `p`'s full region is
/// `[offsets[0][p], offsets[0][p+1])`.
pub fn interleaved_offsets(hists: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let t = hists.len();
    assert!(t > 0);
    let p = hists[0].len();
    let mut offsets = vec![vec![0u32; p]; t];
    let mut acc = 0u32;
    for part in 0..p {
        for (tid, hist) in hists.iter().enumerate() {
            offsets[tid][part] = acc;
            acc += hist[part];
        }
    }
    offsets
}

/// Result of a parallel partitioning pass.
pub struct PassOutput {
    /// Partition start offsets (into the output columns).
    pub partition_starts: Vec<u32>,
    /// Per-partition tuple counts.
    pub hist: Vec<u32>,
}

/// Run one stable buffered-shuffle partitioning pass with `threads`
/// workers, writing the partitioned columns into `dst_k`/`dst_p` (which
/// must have the input length).
#[allow(clippy::too_many_arguments)]
pub fn partition_pass_parallel<S: Simd, F: PartitionFn + Sync>(
    s: S,
    vectorized: bool,
    f: F,
    src_k: &[u32],
    src_p: &[u32],
    dst_k: &mut Vec<u32>,
    dst_p: &mut Vec<u32>,
    threads: usize,
) -> PassOutput {
    assert_eq!(src_k.len(), src_p.len(), "column length mismatch");
    assert_eq!(dst_k.len(), src_k.len(), "output length mismatch");
    assert_eq!(dst_p.len(), src_p.len(), "output length mismatch");
    let n = src_k.len();
    let ranges = chunk_ranges(n, threads, S::LANES);
    let hists: Vec<Vec<u32>> = parallel_scope(threads, |ctx| {
        let r = ranges[ctx.thread_id].clone();
        if vectorized {
            histogram_vector_replicated(s, f, &src_k[r])
        } else {
            histogram_scalar(f, &src_k[r])
        }
    });
    let bases = interleaved_offsets(&hists);
    let mut hist = vec![0u32; f.fanout()];
    for h in &hists {
        for (p, &c) in h.iter().enumerate() {
            hist[p] += c;
        }
    }

    let out_k = SharedBuffer::from_vec(std::mem::take(dst_k));
    let out_p = SharedBuffer::from_vec(std::mem::take(dst_p));
    parallel_scope(threads, |ctx| {
        let t = ctx.thread_id;
        let r = ranges[t].clone();
        // SAFETY: threads write disjoint output regions derived from the
        // interleaved prefix sums; transiently clobbered first lines are
        // repaired by their owners' cleanup, which runs after the barrier,
        // and any output line is aligned-flushed by at most one thread
        // (the one whose offset interval contains the line end).
        let (ok, op) = unsafe { (out_k.view_mut(), out_p.view_mut()) };
        let mut off = bases[t].clone();
        if vectorized {
            let mut buf: AlignedVec<u64> = AlignedVec::zeroed(f.fanout() * S::LANES);
            shuffle_vector_buffered_core(
                s,
                f,
                &src_k[r.clone()],
                &src_p[r],
                &mut off,
                &mut buf,
                ok,
                op,
                true,
            );
            ctx.barrier();
            shuffle_buffer_cleanup(S::LANES, &buf, &bases[t], &off, ok, op);
        } else {
            let mut buf: AlignedVec<u64> = AlignedVec::zeroed(f.fanout() * scalar_slots());
            shuffle_scalar_buffered_core(
                f,
                &src_k[r.clone()],
                &src_p[r],
                &mut off,
                &mut buf,
                ok,
                op,
            );
            ctx.barrier();
            shuffle_buffer_cleanup(scalar_slots(), &buf, &bases[t], &off, ok, op);
        }
    });
    *dst_k = out_k.into_vec();
    *dst_p = out_p.into_vec();

    let mut partition_starts = Vec::with_capacity(f.fanout());
    let mut acc = 0u32;
    for &c in &hist {
        partition_starts.push(acc);
        acc += c;
    }
    PassOutput {
        partition_starts,
        hist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HashFn, PartitionFn};
    use rsv_simd::Portable;

    #[test]
    fn interleaved_offsets_layout() {
        let hists = vec![vec![2u32, 3], vec![1, 4]];
        let off = interleaved_offsets(&hists);
        // partition 0: t0 at 0..2, t1 at 2..3; partition 1: t0 at 3..6, t1 at 6..10
        assert_eq!(off[0], vec![0, 3]);
        assert_eq!(off[1], vec![2, 6]);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn parallel_pass_partitions_correctly() {
        let s = Portable::<16>::new();
        let mut rng = rsv_data::rng(131);
        let keys = rsv_data::uniform_u32(20_000, &mut rng);
        let pays: Vec<u32> = (0..20_000).collect();
        let f = HashFn::new(53);
        for threads in [1usize, 2, 4] {
            for vectorized in [false, true] {
                let mut dk = vec![0u32; keys.len()];
                let mut dp = vec![0u32; keys.len()];
                let out = partition_pass_parallel(
                    s, vectorized, f, &keys, &pays, &mut dk, &mut dp, threads,
                );
                // region check + stability within each thread's slice is
                // implied; check partition function and global stability
                for p in 0..f.fanout() {
                    let start = out.partition_starts[p] as usize;
                    let end = start + out.hist[p] as usize;
                    for q in start..end {
                        assert_eq!(f.partition(dk[q]), p);
                    }
                    // payloads were 0..n: within a partition they ascend
                    // because thread regions follow thread (= input) order
                    for w in dp[start..end].windows(2) {
                        assert!(w[0] < w[1], "pass not stable (threads={threads})");
                    }
                }
                let a = rsv_data::multiset_fingerprint(keys.iter().zip(&pays));
                let b = rsv_data::multiset_fingerprint(dk.iter().zip(&dp));
                assert_eq!(a, b);
            }
        }
    }
}
