//! Range partition functions (paper §7.2): scalar binary search (branching
//! and branchless), vectorized binary search (Algorithm 12, via
//! [`crate::RangeFn`]), and the horizontal SIMD tree index of \[26\].

use rsv_simd::{MaskLike, Simd};

use crate::RangeFn;

/// Owns the padded splitter array backing [`RangeFn`].
///
/// Splitters must be sorted ascending; partition `p` receives keys `k`
/// with `splitters[p-1] < k` and `k ≤ splitters[p]`, i.e.
/// `p = |{i : splitters[i] < k}|`.
#[derive(Debug, Clone)]
pub struct RangePartitioner {
    padded: Vec<u32>,
    fanout: usize,
}

impl RangePartitioner {
    /// Build from `fanout - 1` sorted splitters; the array is padded with
    /// `u32::MAX` so the (vectorized) binary search runs a fixed
    /// `log2(fanout)` levels (the paper: "we can always patch the splitter
    /// array with maximum values").
    pub fn new(splitters: &[u32]) -> Self {
        assert!(
            splitters.windows(2).all(|w| w[0] <= w[1]),
            "splitters must be sorted"
        );
        let fanout = splitters.len() + 1;
        let padded_fanout = fanout.next_power_of_two().max(2);
        let mut padded = splitters.to_vec();
        padded.resize(padded_fanout - 1, u32::MAX);
        RangePartitioner { padded, fanout }
    }

    /// The partition function (vector form runs Algorithm 12).
    pub fn range_fn(&self) -> RangeFn<'_> {
        RangeFn::from_padded(&self.padded, self.fanout)
    }

    /// Number of partitions.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Scalar *branching* binary search (the conventional baseline).
    pub fn partition_branching(&self, key: u32) -> usize {
        let mut lo = 0usize;
        let mut hi = self.padded.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if key > self.padded[mid] {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Scalar *branchless* binary search: the comparison result feeds the
    /// cursor arithmetic directly (paper: "branch elimination only
    /// marginally improves performance" — the data dependence remains).
    pub fn partition_branchless(&self, key: u32) -> usize {
        let mut lo = 0usize;
        let mut half = self.padded.len().div_ceil(2);
        while half > 0 {
            let mid = lo + half - 1;
            lo += usize::from(key > self.padded[mid]) * half;
            half /= 2;
        }
        lo
    }
}

/// The horizontal SIMD range index of \[26\] (paper Figure 12 "tree
/// index"): a `(W+1)`-ary tree whose nodes hold `W` splitters each, probed
/// with one vector comparison per level — one *input key* at a time
/// (horizontal vectorization), with scalar index arithmetic between levels.
#[derive(Debug, Clone)]
pub struct RangeIndex {
    /// `levels[l]` holds the splitters of all `(W+1)^l` nodes at level `l`,
    /// `W` per node.
    levels: Vec<Vec<u32>>,
    lanes: usize,
    fanout: usize,
}

impl RangeIndex {
    /// Build a tree over `fanout - 1` sorted splitters for a probing
    /// backend with `lanes` lanes. The tree depth is the smallest `L` with
    /// `(lanes+1)^L >= fanout`.
    pub fn new(splitters: &[u32], lanes: usize) -> Self {
        assert!(lanes.is_power_of_two() && lanes >= 2);
        assert!(
            splitters.windows(2).all(|w| w[0] <= w[1]),
            "splitters must be sorted"
        );
        let fanout = splitters.len() + 1;
        let node_fanout = lanes + 1;
        let mut depth = 1usize;
        let mut reach = node_fanout;
        while reach < fanout {
            reach *= node_fanout;
            depth += 1;
        }
        // padded splitter array over `reach` partitions
        let mut padded = splitters.to_vec();
        padded.resize(reach - 1, u32::MAX);

        let mut levels = Vec::with_capacity(depth);
        for l in 0..depth {
            let nodes = node_fanout.pow(l as u32);
            let step = node_fanout.pow((depth - l - 1) as u32);
            let mut level = vec![u32::MAX; nodes * lanes];
            for node in 0..nodes {
                for slot in 0..lanes {
                    // the boundary after child `slot` of this node
                    let pos = (node * node_fanout + slot + 1) * step - 1;
                    if pos < padded.len() {
                        level[node * lanes + slot] = padded[pos];
                    }
                }
            }
            levels.push(level);
        }
        RangeIndex {
            levels,
            lanes,
            fanout,
        }
    }

    /// Number of partitions.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Tree depth (levels probed per key).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Bytes of splitter storage across all levels.
    pub fn size_bytes(&self) -> usize {
        self.levels.iter().map(|l| l.len() * 4).sum()
    }

    /// Partition one key: one vector comparison per level.
    ///
    /// # Panics
    /// If `S::LANES != lanes` used at construction.
    #[inline]
    pub fn partition_one<S: Simd>(&self, s: S, key: u32) -> usize {
        assert_eq!(
            S::LANES,
            self.lanes,
            "index built for a different lane count"
        );
        let kv = s.splat(key);
        let mut node = 0usize;
        for level in &self.levels {
            let keys = s.load(&level[node * self.lanes..]);
            let child = s.cmpgt(kv, keys).count();
            node = node * (self.lanes + 1) + child;
        }
        node.min(self.fanout - 1)
    }

    /// Partition a whole column (the Figure 12 workload).
    pub fn partition_column<S: Simd>(&self, s: S, keys: &[u32], out: &mut [u32]) {
        assert!(out.len() >= keys.len());
        s.vectorize(
            #[inline(always)]
            || {
                for (i, &k) in keys.iter().enumerate() {
                    out[i] = self.partition_one(s, k) as u32;
                }
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PartitionFn;
    use rsv_simd::Portable;

    fn reference(splitters: &[u32], key: u32) -> usize {
        splitters.iter().filter(|&&s| s < key).count()
    }

    fn test_keys() -> Vec<u32> {
        let mut ks: Vec<u32> = vec![0, 1, u32::MAX, u32::MAX - 1];
        let mut rng = rsv_data::rng(81);
        ks.extend(rsv_data::uniform_u32(2000, &mut rng));
        ks
    }

    #[test]
    fn scalar_searches_match_reference() {
        for p in [2usize, 3, 8, 17, 100, 1000] {
            let splitters = rsv_data::splitters(p);
            let rp = RangePartitioner::new(&splitters);
            assert_eq!(rp.fanout(), p);
            for &k in &test_keys() {
                let e = reference(&splitters, k);
                assert_eq!(rp.partition_branching(k), e, "branching p={p} k={k}");
                assert_eq!(rp.partition_branchless(k), e, "branchless p={p} k={k}");
                assert_eq!(rp.range_fn().partition(k), e, "rangefn p={p} k={k}");
            }
        }
    }

    #[test]
    fn vector_binary_search_matches_reference() {
        let s = Portable::<16>::new();
        for p in [2usize, 5, 64, 300] {
            let splitters = rsv_data::splitters(p);
            let rp = RangePartitioner::new(&splitters);
            let f = rp.range_fn();
            let ks = test_keys();
            for chunk in ks.chunks_exact(16) {
                let pv = f.partition_vector(s, s.load(chunk));
                let mut out = [0u32; 16];
                s.store(pv, &mut out);
                for (lane, &k) in chunk.iter().enumerate() {
                    assert_eq!(out[lane] as usize, reference(&splitters, k), "p={p} k={k}");
                }
            }
        }
    }

    #[test]
    fn tree_index_matches_reference() {
        for lanes in [8usize, 16] {
            for p in [2usize, 9, 17, 81, 289, 1000] {
                let splitters = rsv_data::splitters(p);
                let idx = RangeIndex::new(&splitters, lanes);
                for &k in &test_keys() {
                    let e = reference(&splitters, k);
                    let got = if lanes == 8 {
                        idx.partition_one(Portable::<8>::new(), k)
                    } else {
                        idx.partition_one(Portable::<16>::new(), k)
                    };
                    assert_eq!(got, e, "lanes={lanes} p={p} k={k}");
                }
            }
        }
    }

    #[test]
    fn tree_depth_is_minimal() {
        let idx = RangeIndex::new(&rsv_data::splitters(17), 16);
        assert_eq!(idx.depth(), 1);
        let idx = RangeIndex::new(&rsv_data::splitters(18), 16);
        assert_eq!(idx.depth(), 2);
        let idx = RangeIndex::new(&rsv_data::splitters(289), 16);
        assert_eq!(idx.depth(), 2);
        let idx = RangeIndex::new(&rsv_data::splitters(290), 16);
        assert_eq!(idx.depth(), 3);
    }

    #[test]
    fn partition_column_works() {
        let s = Portable::<16>::new();
        let splitters = rsv_data::splitters(100);
        let idx = RangeIndex::new(&splitters, 16);
        let ks = test_keys();
        let mut out = vec![0u32; ks.len()];
        idx.partition_column(s, &ks, &mut out);
        for (i, &k) in ks.iter().enumerate() {
            assert_eq!(out[i] as usize, reference(&splitters, k));
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn accelerated_backends_match() {
        let splitters = rsv_data::splitters(500);
        let rp = RangePartitioner::new(&splitters);
        let ks = test_keys();
        if let Some(s) = rsv_simd::Avx512::new() {
            let f = rp.range_fn();
            for chunk in ks.chunks_exact(16) {
                let pv = f.partition_vector(s, s.load(chunk));
                let mut out = [0u32; 16];
                s.store(pv, &mut out);
                for (lane, &k) in chunk.iter().enumerate() {
                    assert_eq!(out[lane] as usize, reference(&splitters, k));
                }
            }
            let idx = RangeIndex::new(&splitters, 16);
            for &k in &ks[..200] {
                assert_eq!(idx.partition_one(s, k), reference(&splitters, k));
            }
        }
    }
}
