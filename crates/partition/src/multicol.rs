//! Multi-column partitioning via destination replay (paper §7.4).
//!
//! To partition a table with several payload columns (possibly of
//! different widths), the paper shuffles *one column at a time*: during
//! the pass over the key column it stores each tuple's partition
//! destination in a temporary array, so subsequent columns replay the
//! permutation without recomputing the partition function or redoing
//! conflict serialization.

use rsv_simd::Simd;

use crate::conflict::serialize_conflicts_native;
use crate::histogram::prefix_sum;
use crate::PartitionFn;

/// Compute each tuple's output position (and shuffle the key column).
///
/// Returns the partition start offsets; `dest[i]` receives the output
/// index of tuple `i`, and `out_keys` the shuffled key column.
pub fn compute_destinations<S: Simd, F: PartitionFn>(
    s: S,
    f: F,
    keys: &[u32],
    hist: &[u32],
    dest: &mut [u32],
    out_keys: &mut [u32],
) -> Vec<u32> {
    assert_eq!(hist.len(), f.fanout(), "histogram fanout mismatch");
    assert!(dest.len() >= keys.len() && out_keys.len() >= keys.len());
    let (base, total) = prefix_sum(hist, 0);
    assert_eq!(total, keys.len(), "histogram does not count the input");
    let mut off = base.clone();
    s.vectorize(
        #[inline(always)]
        || {
            let w = S::LANES;
            let one = s.splat(1);
            let mut i = 0usize;
            while i + w <= keys.len() {
                let k = s.load(&keys[i..]);
                let h = f.partition_vector(s, k);
                let o = s.gather(&off, h);
                let c = serialize_conflicts_native(s, h);
                let pos = s.add(o, c);
                s.scatter(&mut off, h, s.add(pos, one));
                s.store(pos, &mut dest[i..]);
                s.scatter(out_keys, pos, k);
                i += w;
            }
            for idx in i..keys.len() {
                let p = f.partition(keys[idx]);
                let o = off[p];
                dest[idx] = o;
                out_keys[o as usize] = keys[idx];
                off[p] = o + 1;
            }
        },
    );
    base
}

/// Replay destinations over a 32-bit column with vector scatters.
pub fn apply_destinations_u32<S: Simd>(s: S, dest: &[u32], col: &[u32], out: &mut [u32]) {
    assert!(dest.len() >= col.len() && out.len() >= col.len());
    s.vectorize(
        #[inline(always)]
        || {
            let w = S::LANES;
            let mut i = 0usize;
            while i + w <= col.len() {
                let v = s.load(&col[i..]);
                let d = s.load(&dest[i..]);
                s.scatter(out, d, v);
                i += w;
            }
            for idx in i..col.len() {
                out[dest[idx] as usize] = col[idx];
            }
        },
    );
}

/// Replay destinations over a 64-bit column (two 32-bit scatters through
/// the pair layout).
pub fn apply_destinations_u64<S: Simd>(s: S, dest: &[u32], col: &[u64], out: &mut [u64]) {
    assert!(dest.len() >= col.len() && out.len() >= col.len());
    for (i, &v) in col.iter().enumerate() {
        out[dest[i] as usize] = v;
    }
    let _ = s;
}

/// Replay destinations over an 8-bit column.
pub fn apply_destinations_u8(dest: &[u32], col: &[u8], out: &mut [u8]) {
    assert!(dest.len() >= col.len() && out.len() >= col.len());
    for (i, &v) in col.iter().enumerate() {
        out[dest[i] as usize] = v;
    }
}

/// Replay destinations over a 16-bit column.
pub fn apply_destinations_u16(dest: &[u32], col: &[u16], out: &mut [u16]) {
    assert!(dest.len() >= col.len() && out.len() >= col.len());
    for (i, &v) in col.iter().enumerate() {
        out[dest[i] as usize] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::histogram_scalar;
    use crate::shuffle::shuffle_scalar_unbuffered;
    use crate::RadixFn;
    use rsv_simd::Portable;

    #[test]
    fn destinations_replay_matches_direct_shuffle() {
        let s = Portable::<16>::new();
        let mut rng = rsv_data::rng(101);
        let keys = rsv_data::uniform_u32(5000, &mut rng);
        let pays: Vec<u32> = (0..5000).collect();
        let f = RadixFn::new(2, 6);
        let hist = histogram_scalar(f, &keys);

        // reference: direct stable shuffle
        let mut rk = vec![0u32; keys.len()];
        let mut rp = vec![0u32; keys.len()];
        shuffle_scalar_unbuffered(f, &keys, &pays, &hist, &mut rk, &mut rp);

        // destination replay
        let mut dest = vec![0u32; keys.len()];
        let mut ok = vec![0u32; keys.len()];
        compute_destinations(s, f, &keys, &hist, &mut dest, &mut ok);
        assert_eq!(ok, rk, "key column must match the direct shuffle");

        let mut op = vec![0u32; keys.len()];
        apply_destinations_u32(s, &dest, &pays, &mut op);
        assert_eq!(op, rp, "replayed payloads must match the direct shuffle");
    }

    #[test]
    fn replay_works_for_all_widths() {
        let s = Portable::<8>::new();
        let mut rng = rsv_data::rng(102);
        let keys = rsv_data::uniform_u32(777, &mut rng);
        let f = RadixFn::new(0, 4);
        let hist = histogram_scalar(f, &keys);
        let mut dest = vec![0u32; keys.len()];
        let mut ok = vec![0u32; keys.len()];
        compute_destinations(s, f, &keys, &hist, &mut dest, &mut ok);

        let c8: Vec<u8> = (0..keys.len()).map(|i| i as u8).collect();
        let c16: Vec<u16> = (0..keys.len()).map(|i| i as u16).collect();
        let c64: Vec<u64> = (0..keys.len()).map(|i| i as u64 * 7).collect();
        let mut o8 = vec![0u8; keys.len()];
        let mut o16 = vec![0u16; keys.len()];
        let mut o64 = vec![0u64; keys.len()];
        apply_destinations_u8(&dest, &c8, &mut o8);
        apply_destinations_u16(&dest, &c16, &mut o16);
        apply_destinations_u64(s, &dest, &c64, &mut o64);

        for i in 0..keys.len() {
            let d = dest[i] as usize;
            assert_eq!(o8[d], c8[i]);
            assert_eq!(o16[d], c16[i]);
            assert_eq!(o64[d], c64[i]);
        }
        // destinations are a permutation
        let mut seen = vec![false; keys.len()];
        for &d in &dest {
            assert!(!seen[d as usize]);
            seen[d as usize] = true;
        }
    }
}
