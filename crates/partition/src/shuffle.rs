//! Data shuffling (paper §7.3–§7.4): move tuples to their partitions.
//!
//! Four implementations, scalar × vector and unbuffered × buffered:
//!
//! * unbuffered — write each tuple directly to its partition's next output
//!   slot (fast in cache, but TLB thrashing / cache conflicts / load-on-
//!   store traffic out of cache),
//! * **buffered** — stage each partition's tuples in a cache-resident,
//!   cache-line-sized buffer and flush whole lines with streaming stores
//!   (paper §7.4, Algorithm 15).
//!
//! The buffered scheme writes each partition's *first* output line aligned
//! downward, which transiently clobbers the tail of the preceding
//! partition; the cleanup pass (which writes every partition's final
//! partial line directly) repairs it — exactly the paper's "fix the first
//! cache line of each partition" note.
//!
//! The vector variants serialize lane conflicts per Algorithm 13 so the
//! radix shuffle is **stable**; [`shuffle_vector_buffered_unstable`] is the
//! paper's hash-partitioning variant that instead defers conflicting lanes
//! to the next iteration.

use rsv_exec::AlignedVec;
use rsv_metrics::Metric;
use rsv_simd::{MaskLike, Simd};

use crate::conflict::serialize_conflicts_native;
use crate::histogram::prefix_sum;
use crate::PartitionFn;

/// Slots per partition in the scalar staging buffer.
const SCALAR_SLOTS: usize = 16;

/// Maximum vector width any backend exposes (for stack lane buffers).
const MAX_LANES: usize = 32;

#[inline(always)]
fn pair(k: u32, v: u32) -> u64 {
    u64::from(k) | (u64::from(v) << 32)
}

fn check_inputs<F: PartitionFn>(f: &F, keys: &[u32], pays: &[u32], hist: &[u32], out: usize) {
    assert_eq!(keys.len(), pays.len(), "column length mismatch");
    assert_eq!(hist.len(), f.fanout(), "histogram fanout mismatch");
    let total: usize = hist.iter().map(|&c| c as usize).sum();
    assert_eq!(total, keys.len(), "histogram does not count the input");
    assert!(out >= keys.len(), "output too small");
}

/// Scalar unbuffered shuffling. Returns the partition start offsets.
pub fn shuffle_scalar_unbuffered<F: PartitionFn>(
    f: F,
    keys: &[u32],
    pays: &[u32],
    hist: &[u32],
    out_keys: &mut [u32],
    out_pays: &mut [u32],
) -> Vec<u32> {
    check_inputs(&f, keys, pays, hist, out_keys.len().min(out_pays.len()));
    rsv_metrics::count(Metric::PartShuffleTuples, keys.len() as u64);
    let (base, _) = prefix_sum(hist, 0);
    let mut off = base.clone();
    for (&k, &v) in keys.iter().zip(pays) {
        let p = f.partition(k);
        let o = off[p] as usize;
        out_keys[o] = k;
        out_pays[o] = v;
        off[p] += 1;
    }
    base
}

/// Scalar buffered shuffling (paper §7.4 citing \[31, 38, 26, 4\]).
pub fn shuffle_scalar_buffered<F: PartitionFn>(
    f: F,
    keys: &[u32],
    pays: &[u32],
    hist: &[u32],
    out_keys: &mut [u32],
    out_pays: &mut [u32],
) -> Vec<u32> {
    check_inputs(&f, keys, pays, hist, out_keys.len().min(out_pays.len()));
    let p_count = f.fanout();
    let (base, _) = prefix_sum(hist, 0);
    let mut off = base.clone();
    let mut buf: AlignedVec<u64> = AlignedVec::zeroed(p_count * SCALAR_SLOTS);
    shuffle_scalar_buffered_core(f, keys, pays, &mut off, &mut buf, out_keys, out_pays);
    shuffle_buffer_cleanup(SCALAR_SLOTS, &buf, &base, &off, out_keys, out_pays);
    base
}

/// The main loop of scalar buffered shuffling, without the cleanup pass.
///
/// `off` holds the running output offsets (initialized to the partition
/// start offsets) and `buf` the `SCALAR_SLOTS`-per-partition staging
/// buffer. In multi-threaded partitioning every thread runs this over its
/// input chunk with its own `off`/`buf`, threads synchronize, and then each
/// runs [`shuffle_buffer_cleanup`] (the paper: "the buffer cleanup occurs
/// after synchronizing, to fix the first cache line of each partition").
pub fn shuffle_scalar_buffered_core<F: PartitionFn>(
    f: F,
    keys: &[u32],
    pays: &[u32],
    off: &mut [u32],
    buf: &mut [u64],
    out_keys: &mut [u32],
    out_pays: &mut [u32],
) {
    assert_eq!(
        buf.len(),
        f.fanout() * SCALAR_SLOTS,
        "staging buffer size mismatch"
    );
    rsv_metrics::count(Metric::PartShuffleTuples, keys.len() as u64);
    let mut flushes = 0u64;
    for (&k, &v) in keys.iter().zip(pays) {
        let p = f.partition(k);
        let o = off[p] as usize;
        let slot = o & (SCALAR_SLOTS - 1);
        buf[p * SCALAR_SLOTS + slot] = pair(k, v);
        off[p] = (o + 1) as u32;
        if slot == SCALAR_SLOTS - 1 {
            // a full line: flush it to the (aligned) output region
            flushes += 1;
            let target = o + 1 - SCALAR_SLOTS;
            for j in 0..SCALAR_SLOTS {
                let pr = buf[p * SCALAR_SLOTS + j];
                out_keys[target + j] = pr as u32;
                out_pays[target + j] = (pr >> 32) as u32;
            }
        }
    }
    rsv_metrics::count(Metric::PartBufferFlushes, flushes);
}

/// Slots per partition used by [`shuffle_scalar_buffered_core`].
pub const fn scalar_slots() -> usize {
    SCALAR_SLOTS
}

/// Write every partition's final partial line from the staging buffer to
/// its exact output offsets; this also repairs any head-of-partition
/// clobbering caused by downward-aligned first flushes.
///
/// `slots` must match the staging-buffer slot count the core pass used,
/// `base` the partition start offsets, and `off` the final offsets.
pub fn shuffle_buffer_cleanup(
    slots: usize,
    buf: &[u64],
    base: &[u32],
    off: &[u32],
    out_keys: &mut [u32],
    out_pays: &mut [u32],
) {
    debug_assert!(slots.is_power_of_two());
    let mut flushed = 0u64;
    let mut residual = 0u64;
    for p in 0..base.len() {
        let start = (off[p] as usize & !(slots - 1)).max(base[p] as usize);
        // tuples below `start` reached the output through full-line
        // flushes; the rest are written here from the staging buffer
        flushed += (start - base[p] as usize) as u64;
        residual += (off[p] as usize - start) as u64;
        for q in start..off[p] as usize {
            let pr = buf[p * slots + (q & (slots - 1))];
            out_keys[q] = pr as u32;
            out_pays[q] = (pr >> 32) as u32;
        }
    }
    rsv_metrics::count(Metric::PartTuplesFlushed, flushed);
    rsv_metrics::count(Metric::PartTuplesResidual, residual);
}

/// Vectorized unbuffered shuffling (paper Algorithm 14): gather offsets,
/// serialize conflicts, scatter offsets back and scatter the tuples.
/// Stable (input order preserved within each partition).
pub fn shuffle_vector_unbuffered<S: Simd, F: PartitionFn>(
    s: S,
    f: F,
    keys: &[u32],
    pays: &[u32],
    hist: &[u32],
    out_keys: &mut [u32],
    out_pays: &mut [u32],
) -> Vec<u32> {
    check_inputs(&f, keys, pays, hist, out_keys.len().min(out_pays.len()));
    rsv_metrics::count(Metric::PartShuffleTuples, keys.len() as u64);
    let (base, _) = prefix_sum(hist, 0);
    let mut off = base.clone();
    s.vectorize(
        #[inline(always)]
        || {
            let w = S::LANES;
            let metered = rsv_metrics::enabled();
            let mut conflicts = 0u64;
            let one = s.splat(1);
            let mut i = 0usize;
            while i + w <= keys.len() {
                let k = s.load(&keys[i..]);
                let v = s.load(&pays[i..]);
                let h = f.partition_vector(s, k);
                let o = s.gather(&off, h);
                let c = serialize_conflicts_native(s, h);
                if metered {
                    conflicts += s.cmpeq(c, s.zero()).not().count() as u64;
                }
                let pos = s.add(o, c);
                s.scatter(&mut off, h, s.add(pos, one));
                s.scatter(out_keys, pos, k);
                s.scatter(out_pays, pos, v);
                i += w;
            }
            rsv_metrics::count(Metric::PartConflictsSerialized, conflicts);
            for idx in i..keys.len() {
                let p = f.partition(keys[idx]);
                let o = off[p] as usize;
                out_keys[o] = keys[idx];
                out_pays[o] = pays[idx];
                off[p] += 1;
            }
        },
    );
    base
}

/// Vectorized **buffered** shuffling (paper Algorithm 15, Appendix F):
/// tuples are scattered into per-partition cache-line buffers; completed
/// lines are flushed with streaming stores. Stable.
pub fn shuffle_vector_buffered<S: Simd, F: PartitionFn>(
    s: S,
    f: F,
    keys: &[u32],
    pays: &[u32],
    hist: &[u32],
    out_keys: &mut [u32],
    out_pays: &mut [u32],
) -> Vec<u32> {
    shuffle_vector_buffered_inner(s, f, keys, pays, hist, out_keys, out_pays, true)
}

/// The paper's *unstable* buffered variant for hash partitioning: rather
/// than serializing conflicts, only conflict-free lanes are processed each
/// iteration and conflicting lanes are retried on the next one (§7.4:
/// "performance is slightly increased because very few conflicts normally
/// occur per loop if P > W").
pub fn shuffle_vector_buffered_unstable<S: Simd, F: PartitionFn>(
    s: S,
    f: F,
    keys: &[u32],
    pays: &[u32],
    hist: &[u32],
    out_keys: &mut [u32],
    out_pays: &mut [u32],
) -> Vec<u32> {
    shuffle_vector_buffered_inner(s, f, keys, pays, hist, out_keys, out_pays, false)
}

#[allow(clippy::too_many_arguments)]
fn shuffle_vector_buffered_inner<S: Simd, F: PartitionFn>(
    s: S,
    f: F,
    keys: &[u32],
    pays: &[u32],
    hist: &[u32],
    out_keys: &mut [u32],
    out_pays: &mut [u32],
    stable: bool,
) -> Vec<u32> {
    check_inputs(&f, keys, pays, hist, out_keys.len().min(out_pays.len()));
    let p_count = f.fanout();
    let (base, _) = prefix_sum(hist, 0);
    let mut off = base.clone();
    let w = S::LANES;
    let mut buf: AlignedVec<u64> = AlignedVec::zeroed(p_count * w);
    shuffle_vector_buffered_core(
        s, f, keys, pays, &mut off, &mut buf, out_keys, out_pays, stable,
    );
    shuffle_buffer_cleanup(w, &buf, &base, &off, out_keys, out_pays);
    base
}

/// The main loop of vectorized buffered shuffling (Algorithm 15), without
/// the cleanup pass — see [`shuffle_scalar_buffered_core`] for the
/// multi-threaded usage pattern. `buf` must hold `fanout · S::LANES` pairs.
#[allow(clippy::too_many_arguments)]
pub fn shuffle_vector_buffered_core<S: Simd, F: PartitionFn>(
    s: S,
    f: F,
    keys: &[u32],
    pays: &[u32],
    off: &mut [u32],
    buf: &mut [u64],
    out_keys: &mut [u32],
    out_pays: &mut [u32],
    stable: bool,
) {
    let w = S::LANES;
    assert_eq!(buf.len(), f.fanout() * w, "staging buffer size mismatch");
    rsv_metrics::count(Metric::PartShuffleTuples, keys.len() as u64);
    s.vectorize(
        #[inline(always)]
        || {
            let metered = rsv_metrics::enabled();
            let mut conflicts = 0u64;
            let mut flushes = 0u64;
            let mut stream_bytes = 0u64;
            let one = s.splat(1);
            let wv = s.splat(w as u32);
            let wm1 = s.splat(w as u32 - 1);
            let mut k = s.zero();
            let mut v = s.zero();
            let mut reload = S::M::all();
            let mut i = 0usize;
            let mut flush_parts = [0u32; MAX_LANES];
            while i + w <= keys.len() {
                if stable {
                    // every lane retired last iteration: plain vector loads
                    k = s.load(&keys[i..]);
                    v = s.load(&pays[i..]);
                    i += w;
                } else {
                    k = s.selective_load(k, reload, &keys[i..]);
                    v = s.selective_load(v, reload, &pays[i..]);
                    i += reload.count();
                }
                let h = f.partition_vector(s, k);
                let active;
                let c;
                if stable {
                    active = S::M::all();
                    c = serialize_conflicts_native(s, h);
                    if metered {
                        conflicts += s.cmpeq(c, s.zero()).not().count() as u64;
                    }
                } else {
                    // process only the first lane of each conflict group;
                    // the rest retry next iteration
                    let conf = serialize_conflicts_native(s, h);
                    active = s.cmpeq(conf, s.zero());
                    c = s.zero();
                    if metered {
                        conflicts += active.not().count() as u64;
                    }
                }
                let o = s.gather_masked(s.zero(), active, off, h);
                let pos = s.add(o, c);
                s.scatter_masked(off, active, h, s.add(pos, one));
                // slot index within the partition buffer; >= W means the
                // lane overflows into the *next* line and must wait for the
                // flush below
                let ob = s.add(s.and(o, wm1), c);
                let slot = s.add(s.mullo(h, wv), ob);
                let store_now = active.and(s.cmplt(ob, wv));
                s.scatter_pairs_masked(buf, store_now, slot, k, v);
                let trigger = active.and(s.cmpeq(ob, wm1));
                if trigger.any() {
                    let n_flush = s.selective_store(&mut flush_parts[..], trigger, h);
                    flushes += n_flush as u64;
                    stream_bytes += (n_flush * w * 8) as u64;
                    for &p in &flush_parts[..n_flush] {
                        let p = p as usize;
                        // the line just completed ends at the last offset
                        // this partition reached, rounded down
                        let target = (off[p] as usize & !(w - 1)) - w;
                        flush_line(
                            s,
                            &buf[p * w..],
                            &mut out_keys[target..],
                            &mut out_pays[target..],
                        );
                    }
                    // lanes that overflowed past the flushed line now store
                    // into the freshly emptied slots
                    let late = active.and(s.cmpge(ob, wv));
                    let slot2 = s.add(s.mullo(h, wv), s.sub(ob, wv));
                    s.scatter_pairs_masked(buf, late, slot2, k, v);
                }
                reload = if stable { S::M::all() } else { active };
            }
            // Drain lanes still holding deferred tuples (unstable variant),
            // then the input tail, with the scalar buffered scheme.
            let mut ka = [0u32; MAX_LANES];
            let mut va = [0u32; MAX_LANES];
            s.store(k, &mut ka[..w]);
            s.store(v, &mut va[..w]);
            let pending: Vec<(u32, u32)> = reload
                .not()
                .iter_set()
                .map(|lane| (ka[lane], va[lane]))
                .chain(keys[i..].iter().copied().zip(pays[i..].iter().copied()))
                .collect();
            for (kk, vv) in pending {
                let p = f.partition(kk);
                let o = off[p] as usize;
                let slot = o & (w - 1);
                buf[p * w + slot] = pair(kk, vv);
                off[p] = (o + 1) as u32;
                if slot == w - 1 {
                    flushes += 1;
                    let target = o + 1 - w;
                    for j in 0..w {
                        let pr = buf[p * w + j];
                        out_keys[target + j] = pr as u32;
                        out_pays[target + j] = (pr >> 32) as u32;
                    }
                }
            }
            rsv_metrics::count(Metric::PartConflictsSerialized, conflicts);
            rsv_metrics::count(Metric::PartBufferFlushes, flushes);
            rsv_metrics::count(Metric::PartStreamingStoreBytes, stream_bytes);
        },
    );
}

/// Flush one completed line from the staging buffer with streaming stores.
#[inline(always)]
fn flush_line<S: Simd>(s: S, line: &[u64], out_keys: &mut [u32], out_pays: &mut [u32]) {
    let (k, v) = s.load_pairs(line);
    s.store_stream(k, out_keys);
    s.store_stream(v, out_pays);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::histogram_scalar;
    use crate::{HashFn, RadixFn};
    use rsv_simd::Portable;

    fn workload(n: usize, seed: u64) -> (Vec<u32>, Vec<u32>) {
        let mut rng = rsv_data::rng(seed);
        let keys = rsv_data::uniform_u32(n, &mut rng);
        let pays: Vec<u32> = (0..n as u32).collect();
        (keys, pays)
    }

    /// Verify a shuffle output: partitions contiguous, respecting `f`, and
    /// (optionally) stable; tuples form the same multiset as the input.
    #[allow(clippy::too_many_arguments, clippy::needless_range_loop)]
    fn verify<F: PartitionFn>(
        f: F,
        keys: &[u32],
        pays: &[u32],
        base: &[u32],
        hist: &[u32],
        ok: &[u32],
        op: &[u32],
        stable: bool,
    ) {
        // every output tuple sits inside its own partition's region
        for p in 0..f.fanout() {
            let start = base[p] as usize;
            let end = start + hist[p] as usize;
            for q in start..end {
                assert_eq!(f.partition(ok[q]), p, "tuple at {q} in wrong partition");
            }
            if stable {
                // payloads are original indexes: must ascend within partition
                for wpair in op[start..end].windows(2) {
                    assert!(wpair[0] < wpair[1], "partition {p} not stable");
                }
            }
        }
        let a = rsv_data::multiset_fingerprint(keys.iter().zip(pays));
        let b = rsv_data::multiset_fingerprint(ok.iter().zip(op));
        assert_eq!(a, b, "output is not a permutation of the input");
    }

    fn run_all(n: usize) {
        let s = Portable::<16>::new();
        let (keys, pays) = workload(n, 91);
        for bits in [2u32, 5] {
            let f = RadixFn::new(0, bits);
            let hist = histogram_scalar(f, &keys);
            let mut ok = vec![0u32; n];
            let mut op = vec![0u32; n];

            let base = shuffle_scalar_unbuffered(f, &keys, &pays, &hist, &mut ok, &mut op);
            verify(f, &keys, &pays, &base, &hist, &ok, &op, true);

            ok.fill(0);
            op.fill(0);
            let base = shuffle_scalar_buffered(f, &keys, &pays, &hist, &mut ok, &mut op);
            verify(f, &keys, &pays, &base, &hist, &ok, &op, true);

            ok.fill(0);
            op.fill(0);
            let base = shuffle_vector_unbuffered(s, f, &keys, &pays, &hist, &mut ok, &mut op);
            verify(f, &keys, &pays, &base, &hist, &ok, &op, true);

            ok.fill(0);
            op.fill(0);
            let base = shuffle_vector_buffered(s, f, &keys, &pays, &hist, &mut ok, &mut op);
            verify(f, &keys, &pays, &base, &hist, &ok, &op, true);

            ok.fill(0);
            op.fill(0);
            let base =
                shuffle_vector_buffered_unstable(s, f, &keys, &pays, &hist, &mut ok, &mut op);
            verify(f, &keys, &pays, &base, &hist, &ok, &op, false);
        }
    }

    #[test]
    fn shuffles_small() {
        run_all(100);
    }

    #[test]
    fn shuffles_medium() {
        run_all(10_000);
    }

    #[test]
    fn shuffles_awkward_sizes() {
        for n in [0usize, 1, 15, 16, 17, 31, 33, 255] {
            let s = Portable::<16>::new();
            let (keys, pays) = workload(n, 92);
            let f = RadixFn::new(1, 3);
            let hist = histogram_scalar(f, &keys);
            let mut ok = vec![0u32; n];
            let mut op = vec![0u32; n];
            let base = shuffle_vector_buffered(s, f, &keys, &pays, &hist, &mut ok, &mut op);
            verify(f, &keys, &pays, &base, &hist, &ok, &op, true);
        }
    }

    #[test]
    fn hash_partitioning_shuffles() {
        let s = Portable::<8>::new();
        let (keys, pays) = workload(5000, 93);
        for fanout in [7usize, 32, 700] {
            let f = HashFn::new(fanout);
            let hist = histogram_scalar(f, &keys);
            let mut ok = vec![0u32; keys.len()];
            let mut op = vec![0u32; keys.len()];
            let base = shuffle_vector_buffered(s, f, &keys, &pays, &hist, &mut ok, &mut op);
            verify(f, &keys, &pays, &base, &hist, &ok, &op, true);

            ok.fill(0);
            op.fill(0);
            let base =
                shuffle_vector_buffered_unstable(s, f, &keys, &pays, &hist, &mut ok, &mut op);
            verify(f, &keys, &pays, &base, &hist, &ok, &op, false);
        }
    }

    #[test]
    fn skewed_input_single_partition() {
        // all keys to one partition: maximal conflicts every iteration
        let s = Portable::<16>::new();
        let keys = vec![0xABCD_0000u32; 333];
        let pays: Vec<u32> = (0..333).collect();
        let f = RadixFn::new(16, 6);
        let hist = histogram_scalar(f, &keys);
        let mut ok = vec![0u32; 333];
        let mut op = vec![0u32; 333];
        let base = shuffle_vector_buffered(s, f, &keys, &pays, &hist, &mut ok, &mut op);
        verify(f, &keys, &pays, &base, &hist, &ok, &op, true);
        let base = shuffle_vector_unbuffered(s, f, &keys, &pays, &hist, &mut ok, &mut op);
        verify(f, &keys, &pays, &base, &hist, &ok, &op, true);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn accelerated_backends_match() {
        let (keys, pays) = workload(20_000, 94);
        let f = RadixFn::new(0, 6);
        let hist = histogram_scalar(f, &keys);
        if let Some(s) = rsv_simd::Avx512::new() {
            let mut ok = vec![0u32; keys.len()];
            let mut op = vec![0u32; keys.len()];
            let base = shuffle_vector_buffered(s, f, &keys, &pays, &hist, &mut ok, &mut op);
            verify(f, &keys, &pays, &base, &hist, &ok, &op, true);
            let base = shuffle_vector_unbuffered(s, f, &keys, &pays, &hist, &mut ok, &mut op);
            verify(f, &keys, &pays, &base, &hist, &ok, &op, true);
        }
        if let Some(s) = rsv_simd::Avx2::new() {
            let mut ok = vec![0u32; keys.len()];
            let mut op = vec![0u32; keys.len()];
            let base = shuffle_vector_buffered(s, f, &keys, &pays, &hist, &mut ok, &mut op);
            verify(f, &keys, &pays, &base, &hist, &ok, &op, true);
        }
    }
}
