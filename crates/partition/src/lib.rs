//! Partitioning (paper Section 7): partition functions, histogram
//! generation, conflict serialization, and (buffered) data shuffling.
//!
//! Partitioning splits a large input into cache-conscious, non-overlapping
//! sub-problems and underlies both radixsort (Section 8) and partitioned
//! hash join (Section 9). The paper vectorizes all three partition-function
//! types:
//!
//! * **radix** — a bit-range of the key ([`RadixFn`]),
//! * **hash** — multiplicative hashing ([`HashFn`]),
//! * **range** — binary search over sorted splitters ([`RangeFn`], §7.2,
//!   Algorithm 12) and the horizontal SIMD tree index of \[26\]
//!   ([`range::RangeIndex`]),
//!
//! and both phases:
//!
//! * **histograms** (§7.1): count replication across lanes, conflict
//!   serialization, and compressed 8-bit counts,
//! * **shuffling** (§7.3–7.4): unbuffered (Algorithm 14) and buffered
//!   (Algorithm 15) with cache-line staging buffers flushed by streaming
//!   stores; stable (radix) and unstable (hash) variants.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod conflict;
pub mod diff;
pub mod histogram;
pub mod multicol;
pub mod parallel;
pub mod range;
pub mod shuffle;
pub mod twopass;

use rsv_simd::Simd;

/// A partition function mapping 32-bit keys to `fanout()` partitions, with
/// a scalar and a vector form (the vector form is what the paper's
/// histogram and shuffle kernels call per input vector).
pub trait PartitionFn: Copy {
    /// Number of partitions.
    fn fanout(&self) -> usize;
    /// Partition of one key.
    fn partition(&self, key: u32) -> usize;
    /// Partitions of a vector of keys.
    fn partition_vector<S: Simd>(&self, s: S, keys: S::V) -> S::V;
}

/// Radix partitioning: the bit field `key[shift .. shift+bits)`.
///
/// The paper computes it as `(k << bl) >> br` (Algorithm 11); this is the
/// same two-shift form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RadixFn {
    shift_left: u32,
    shift_right: u32,
}

impl RadixFn {
    /// Select `bits` bits starting at bit `shift` (LSB order).
    ///
    /// # Panics
    /// If the bit range does not fit in 32 bits or `bits == 0`.
    pub fn new(shift: u32, bits: u32) -> Self {
        assert!(bits >= 1 && shift + bits <= 32, "invalid radix bit range");
        RadixFn {
            shift_left: 32 - shift - bits,
            shift_right: 32 - bits,
        }
    }

    /// Number of radix bits.
    pub fn bits(&self) -> u32 {
        32 - self.shift_right
    }
}

impl PartitionFn for RadixFn {
    #[inline(always)]
    fn fanout(&self) -> usize {
        1usize << (32 - self.shift_right)
    }

    #[inline(always)]
    fn partition(&self, key: u32) -> usize {
        ((key << self.shift_left) >> self.shift_right) as usize
    }

    #[inline(always)]
    fn partition_vector<S: Simd>(&self, s: S, keys: S::V) -> S::V {
        s.shr(s.shl(keys, self.shift_left), self.shift_right)
    }
}

/// Hash partitioning: `mulhi(k · factor, fanout)` (paper §7.1 — "by using
/// multiplicative hashing, hash partitioning becomes equally fast to
/// radix").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashFn {
    factor: u32,
    fanout: usize,
}

impl HashFn {
    /// Hash partitioning into `fanout` partitions.
    pub fn new(fanout: usize) -> Self {
        Self::with_factor(fanout, 0x9E37_79B1)
    }

    /// As [`HashFn::new`] with a chosen multiplier (forced odd).
    pub fn with_factor(fanout: usize, factor: u32) -> Self {
        assert!(fanout >= 1 && fanout <= u32::MAX as usize);
        HashFn {
            factor: factor | 1,
            fanout,
        }
    }
}

impl PartitionFn for HashFn {
    #[inline(always)]
    fn fanout(&self) -> usize {
        self.fanout
    }

    #[inline(always)]
    fn partition(&self, key: u32) -> usize {
        ((u64::from(key.wrapping_mul(self.factor)) * self.fanout as u64) >> 32) as usize
    }

    #[inline(always)]
    fn partition_vector<S: Simd>(&self, s: S, keys: S::V) -> S::V {
        s.mulhi(
            s.mullo(keys, s.splat(self.factor)),
            s.splat(self.fanout as u32),
        )
    }
}

/// Range partitioning: partition `p` receives keys `k` with
/// `splitters[p-1] < k ≤ splitters[p]` boundaries, i.e.
/// `p = |{i : splitters[i] < k}|`, computed with vectorized binary search
/// (paper §7.2, Algorithm 12).
///
/// The splitter array is padded to a power-of-two length internally; build
/// it once with [`range::RangePartitioner`] and borrow [`RangeFn`]s from it.
#[derive(Debug, Clone, Copy)]
pub struct RangeFn<'a> {
    /// Sorted splitters padded to `fanout - 1` entries with `u32::MAX`,
    /// where `fanout` is a power of two.
    padded: &'a [u32],
    /// The real (pre-padding) fanout.
    fanout: usize,
}

impl<'a> RangeFn<'a> {
    pub(crate) fn from_padded(padded: &'a [u32], fanout: usize) -> Self {
        debug_assert!((padded.len() + 1).is_power_of_two());
        RangeFn { padded, fanout }
    }

    /// Number of binary-search levels (`log2(padded fanout)`).
    #[inline(always)]
    pub fn levels(&self) -> u32 {
        (self.padded.len() + 1).trailing_zeros()
    }
}

impl PartitionFn for RangeFn<'_> {
    #[inline(always)]
    fn fanout(&self) -> usize {
        self.fanout
    }

    #[inline(always)]
    fn partition(&self, key: u32) -> usize {
        // branchless scalar binary search over the padded array
        let mut lo = 0usize;
        let mut hi = self.padded.len() + 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let d = self.padded[mid - 1];
            if key > d {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    #[inline(always)]
    fn partition_vector<S: Simd>(&self, s: S, keys: S::V) -> S::V {
        // Algorithm 12: blend low/high cursors, gather splitters per lane.
        let mut lo = s.zero();
        let mut hi = s.splat(self.padded.len() as u32 + 1);
        for _ in 0..self.levels() {
            let mid = s.shr(s.add(lo, hi), 1);
            let d = s.gather(self.padded, s.sub(mid, s.splat(1)));
            let m = s.cmpgt(keys, d);
            lo = s.blend(m, mid, lo);
            hi = s.blend(m, hi, mid);
        }
        lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsv_simd::Portable;

    #[test]
    fn radix_selects_bit_field() {
        let f = RadixFn::new(8, 4);
        assert_eq!(f.fanout(), 16);
        assert_eq!(f.partition(0x0000_0A00), 0xA);
        assert_eq!(f.partition(0xFFFF_F0FF), 0x0);
        let s = Portable::<8>::new();
        let keys = s.load(&[0x100, 0x200, 0xF00, 0x1F00, 0, 0xFFFF_FFFF, 0x7FF, 0x800]);
        let p = f.partition_vector(s, keys);
        let mut out = [0u32; 8];
        s.store(p, &mut out);
        assert_eq!(out, [1, 2, 15, 15, 0, 15, 7, 8]);
    }

    #[test]
    fn radix_full_width() {
        let f = RadixFn::new(0, 32);
        assert_eq!(f.partition(u32::MAX), u32::MAX as usize);
        let f = RadixFn::new(31, 1);
        assert_eq!(f.partition(0x8000_0000), 1);
        assert_eq!(f.partition(0x7FFF_FFFF), 0);
    }

    #[test]
    fn hash_stays_in_fanout_and_matches_vector() {
        let s = Portable::<16>::new();
        for fanout in [1usize, 7, 64, 1000] {
            let f = HashFn::new(fanout);
            let keys: Vec<u32> = (0..160u32).map(|i| i.wrapping_mul(2654435761)).collect();
            for chunk in keys.chunks(16) {
                let kv = s.load(chunk);
                let pv = f.partition_vector(s, kv);
                let mut out = [0u32; 16];
                s.store(pv, &mut out);
                for (lane, &k) in chunk.iter().enumerate() {
                    let p = f.partition(k);
                    assert!(p < fanout);
                    assert_eq!(out[lane] as usize, p, "fanout={fanout} key={k}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid radix bit range")]
    fn radix_range_checked() {
        let _ = RadixFn::new(30, 4);
    }
}
