//! Differential-harness registration for histograms, shuffles, and the
//! parallel partition pass.
//!
//! Histograms and the stable shuffles must match the scalar reference
//! byte-for-byte *in order*. The unstable buffered shuffle guarantees only
//! that every tuple lands in its partition, so its op canonicalizes by
//! sorting the pairs within each partition region before comparing.

use crate::histogram::{
    histogram_scalar, histogram_vector_compressed, histogram_vector_replicated,
    histogram_vector_serialized, prefix_sum,
};
use crate::parallel::partition_pass_policy;
use crate::range::RangePartitioner;
use crate::shuffle::{
    shuffle_scalar_buffered, shuffle_scalar_unbuffered, shuffle_vector_buffered,
    shuffle_vector_buffered_unstable, shuffle_vector_unbuffered,
};
use crate::{HashFn, PartitionFn, RadixFn};
use rsv_exec::ExecPolicy;
use rsv_simd::{dispatch, Backend};
use rsv_testkit::diff::{ordered_pairs, put_u32s, CaseInput, DiffOp, Kernel, Registry};
use rsv_testkit::Rng;

/// The radix function for a case, derived from the case seed so the
/// reference and every kernel agree on it.
fn radix_fn(input: &CaseInput) -> RadixFn {
    let mut rng = Rng::seed_from_u64(input.seed ^ 0x5261_6469);
    let bits = 1 + rng.below(12) as u32;
    let shift = rng.below(u64::from(32 - bits + 1)) as u32;
    RadixFn::new(shift, bits)
}

fn hash_fn(input: &CaseInput) -> HashFn {
    HashFn::new(input.fanout)
}

/// Case-seeded sorted splitters for range partitioning.
fn case_splitters(input: &CaseInput) -> Vec<u32> {
    let mut rng = Rng::seed_from_u64(input.seed ^ 0x5261_6E67);
    let k = 1 + rng.index(15);
    let mut s: Vec<u32> = (0..k).map(|_| rng.next_u32() % (u32::MAX - 1)).collect();
    s.sort_unstable();
    s
}

fn encode_hist(hist: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 * hist.len());
    put_u32s(&mut out, hist);
    out
}

// --- histograms -------------------------------------------------------

fn hist_reference<F: PartitionFn>(f: F, input: &CaseInput) -> Vec<u8> {
    encode_hist(&histogram_scalar(f, &input.keys))
}

macro_rules! hist_kernels {
    ($f:expr) => {
        vec![
            Kernel {
                name: "vector-replicated",
                threaded: false,
                run: |b, _, i| {
                    dispatch!(b, s => { encode_hist(&histogram_vector_replicated(s, $f(i), &i.keys)) })
                },
            },
            Kernel {
                name: "vector-serialized",
                threaded: false,
                run: |b, _, i| {
                    dispatch!(b, s => { encode_hist(&histogram_vector_serialized(s, $f(i), &i.keys)) })
                },
            },
            Kernel {
                name: "vector-compressed",
                threaded: false,
                run: |b, _, i| {
                    dispatch!(b, s => { encode_hist(&histogram_vector_compressed(s, $f(i), &i.keys)) })
                },
            },
        ]
    };
}

// --- shuffles ---------------------------------------------------------

/// Run a shuffle body with reference-computed histogram, returning
/// `(partition starts, out_keys, out_pays)`.
fn shuffled<F: PartitionFn>(
    f: F,
    input: &CaseInput,
    body: impl FnOnce(&[u32], &mut [u32], &mut [u32]) -> Vec<u32>,
) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let hist = histogram_scalar(f, &input.keys);
    let n = input.keys.len();
    let mut ok = vec![0u32; n];
    let mut op = vec![0u32; n];
    let base = body(&hist, &mut ok, &mut op);
    (base, ok, op)
}

fn encode_shuffle(base: &[u32], keys: &[u32], pays: &[u32]) -> Vec<u8> {
    let mut out = encode_hist(base);
    out.extend_from_slice(&ordered_pairs(keys, pays));
    out
}

/// Canonicalize an unstable shuffle: sort the `(key, pay)` pairs within
/// each partition region (tuple placement is fixed, intra-partition order
/// is not).
fn encode_shuffle_canonical(fanout: usize, base: &[u32], keys: &[u32], pays: &[u32]) -> Vec<u8> {
    let mut sk = keys.to_vec();
    let mut sp = pays.to_vec();
    for p in 0..fanout {
        let lo = base[p] as usize;
        let hi = if p + 1 < fanout {
            base[p + 1] as usize
        } else {
            keys.len()
        };
        let mut pairs: Vec<(u32, u32)> = keys[lo..hi]
            .iter()
            .copied()
            .zip(pays[lo..hi].iter().copied())
            .collect();
        pairs.sort_unstable();
        for (j, (k, v)) in pairs.into_iter().enumerate() {
            sk[lo + j] = k;
            sp[lo + j] = v;
        }
    }
    encode_shuffle(base, &sk, &sp)
}

fn shuffle_reference(input: &CaseInput) -> Vec<u8> {
    let f = radix_fn(input);
    let (base, ok, op) = shuffled(f, input, |h, ok, op| {
        shuffle_scalar_unbuffered(f, &input.keys, &input.pays, h, ok, op)
    });
    encode_shuffle(&base, &ok, &op)
}

fn shuffle_unstable_reference(input: &CaseInput) -> Vec<u8> {
    let f = radix_fn(input);
    let (base, ok, op) = shuffled(f, input, |h, ok, op| {
        shuffle_scalar_unbuffered(f, &input.keys, &input.pays, h, ok, op)
    });
    encode_shuffle_canonical(f.fanout(), &base, &ok, &op)
}

// --- parallel partition pass -----------------------------------------

fn pass_reference(input: &CaseInput) -> Vec<u8> {
    let f = radix_fn(input);
    let hist = histogram_scalar(f, &input.keys);
    let (starts, _) = prefix_sum(&hist, 0);
    let (_, ok, op) = shuffled(f, input, |h, ok, op| {
        shuffle_scalar_unbuffered(f, &input.keys, &input.pays, h, ok, op)
    });
    let mut out = encode_hist(&starts);
    out.extend_from_slice(&encode_hist(&hist));
    out.extend_from_slice(&ordered_pairs(&ok, &op));
    out
}

fn run_pass(backend: Backend, threads: usize, input: &CaseInput, vectorized: bool) -> Vec<u8> {
    let f = radix_fn(input);
    let n = input.keys.len();
    let mut dk = vec![0u32; n];
    let mut dp = vec![0u32; n];
    let policy = ExecPolicy::new(threads);
    let (pass, _) = dispatch!(backend, s => {
        partition_pass_policy(
            s, vectorized, f, &input.keys, &input.pays, &mut dk, &mut dp, &policy,
        )
    });
    let mut out = encode_hist(&pass.partition_starts);
    out.extend_from_slice(&encode_hist(&pass.hist));
    out.extend_from_slice(&ordered_pairs(&dk, &dp));
    out
}

/// Register histogram (radix / hash / range), shuffle (stable + unstable)
/// and parallel-partition-pass operators.
pub fn register(r: &mut Registry) {
    r.register(DiffOp {
        name: "histogram-radix",
        reference: |i| hist_reference(radix_fn(i), i),
        kernels: hist_kernels!(radix_fn),
    });
    r.register(DiffOp {
        name: "histogram-hash",
        reference: |i| hist_reference(hash_fn(i), i),
        kernels: hist_kernels!(hash_fn),
    });
    r.register(DiffOp {
        name: "histogram-range",
        reference: |i| {
            let part = RangePartitioner::new(&case_splitters(i));
            hist_reference(part.range_fn(), i)
        },
        kernels: vec![
            Kernel {
                name: "vector-replicated",
                threaded: false,
                run: |b, _, i| {
                    let part = RangePartitioner::new(&case_splitters(i));
                    dispatch!(b, s => {
                        encode_hist(&histogram_vector_replicated(s, part.range_fn(), &i.keys))
                    })
                },
            },
            Kernel {
                name: "vector-serialized",
                threaded: false,
                run: |b, _, i| {
                    let part = RangePartitioner::new(&case_splitters(i));
                    dispatch!(b, s => {
                        encode_hist(&histogram_vector_serialized(s, part.range_fn(), &i.keys))
                    })
                },
            },
        ],
    });
    r.register(DiffOp {
        name: "shuffle-radix",
        reference: shuffle_reference,
        kernels: vec![
            Kernel {
                name: "scalar-buffered",
                threaded: false,
                run: |_, _, i| {
                    let f = radix_fn(i);
                    let (base, ok, op) = shuffled(f, i, |h, ok, op| {
                        shuffle_scalar_buffered(f, &i.keys, &i.pays, h, ok, op)
                    });
                    encode_shuffle(&base, &ok, &op)
                },
            },
            Kernel {
                name: "vector-unbuffered",
                threaded: false,
                run: |b, _, i| {
                    let f = radix_fn(i);
                    let (base, ok, op) = shuffled(f, i, |h, ok, op| {
                        dispatch!(b, s => { shuffle_vector_unbuffered(s, f, &i.keys, &i.pays, h, ok, op) })
                    });
                    encode_shuffle(&base, &ok, &op)
                },
            },
            Kernel {
                name: "vector-buffered",
                threaded: false,
                run: |b, _, i| {
                    let f = radix_fn(i);
                    let (base, ok, op) = shuffled(f, i, |h, ok, op| {
                        dispatch!(b, s => { shuffle_vector_buffered(s, f, &i.keys, &i.pays, h, ok, op) })
                    });
                    encode_shuffle(&base, &ok, &op)
                },
            },
        ],
    });
    r.register(DiffOp {
        name: "shuffle-radix-unstable",
        reference: shuffle_unstable_reference,
        kernels: vec![Kernel {
            name: "vector-buffered-unstable",
            threaded: false,
            run: |b, _, i| {
                let f = radix_fn(i);
                let (base, ok, op) = shuffled(f, i, |h, ok, op| {
                    dispatch!(b, s => {
                        shuffle_vector_buffered_unstable(s, f, &i.keys, &i.pays, h, ok, op)
                    })
                });
                encode_shuffle_canonical(f.fanout(), &base, &ok, &op)
            },
        }],
    });
    r.register(DiffOp {
        name: "partition-pass",
        reference: pass_reference,
        kernels: vec![
            Kernel {
                name: "parallel-scalar",
                threaded: true,
                run: |b, t, i| run_pass(b, t, i, false),
            },
            Kernel {
                name: "parallel-vectorized",
                threaded: true,
                run: |b, t, i| run_pass(b, t, i, true),
            },
        ],
    });
}
