//! Property tests: partitioning invariants on arbitrary inputs.

use rsv_partition::histogram::{
    histogram_scalar, histogram_vector_compressed, histogram_vector_replicated,
    histogram_vector_serialized,
};
use rsv_partition::range::RangePartitioner;
use rsv_partition::shuffle::{
    shuffle_scalar_buffered, shuffle_vector_buffered, shuffle_vector_buffered_unstable,
    shuffle_vector_unbuffered,
};
use rsv_partition::{HashFn, PartitionFn, RadixFn};
use rsv_simd::Backend;
use rsv_testkit as tk;

#[test]
fn histograms_agree_on_all_backends() {
    tk::check("histograms_agree_on_all_backends", 64, 0x9a51, |rng| {
        let keys = tk::vec_u32(rng, 0, 500);
        let bits = 1 + rng.index(8) as u32;
        let shift = rng.index(8) as u32;

        let f = RadixFn::new(shift, bits);
        let expected = histogram_scalar(f, &keys);
        assert_eq!(
            expected.iter().map(|&c| c as usize).sum::<usize>(),
            keys.len()
        );
        for backend in Backend::all_available() {
            rsv_simd::dispatch!(backend, s => {
                assert_eq!(&histogram_vector_replicated(s, f, &keys), &expected);
                assert_eq!(&histogram_vector_serialized(s, f, &keys), &expected);
                assert_eq!(&histogram_vector_compressed(s, f, &keys), &expected);
            });
        }
    });
}

#[test]
fn shuffles_are_partition_respecting_permutations() {
    tk::check(
        "shuffles_are_partition_respecting_permutations",
        64,
        0x9a52,
        |rng| {
            let keys = tk::vec_u32(rng, 0, 600);
            let fanout = 1 + rng.index(79);

            let f = HashFn::new(fanout);
            let pays: Vec<u32> = (0..keys.len() as u32).collect();
            let hist = histogram_scalar(f, &keys);
            let n = keys.len();
            let input_fp = rsv_data::multiset_fingerprint(keys.iter().zip(&pays));

            #[allow(clippy::needless_range_loop)]
            let check = |ok: &[u32], op: &[u32], base: &[u32], stable: bool, what: &str| {
                for p in 0..fanout {
                    let start = base[p] as usize;
                    let end = start + hist[p] as usize;
                    for q in start..end {
                        assert_eq!(f.partition(ok[q]), p, "{what}: tuple at {q}");
                    }
                    if stable {
                        for w in op[start..end].windows(2) {
                            assert!(w[0] < w[1], "{what}: partition {p} unstable");
                        }
                    }
                }
                assert_eq!(
                    rsv_data::multiset_fingerprint(ok.iter().zip(op.iter())),
                    input_fp,
                    "{what}: not a permutation"
                );
            };

            let mut ok = vec![0u32; n];
            let mut op = vec![0u32; n];
            let base = shuffle_scalar_buffered(f, &keys, &pays, &hist, &mut ok, &mut op);
            check(&ok, &op, &base, true, "scalar-buffered");

            let backend = Backend::best();
            rsv_simd::dispatch!(backend, s => {
                let base = shuffle_vector_unbuffered(s, f, &keys, &pays, &hist, &mut ok, &mut op);
                check(&ok, &op, &base, true, "vector-unbuffered");
                let base = shuffle_vector_buffered(s, f, &keys, &pays, &hist, &mut ok, &mut op);
                check(&ok, &op, &base, true, "vector-buffered");
                let base =
                    shuffle_vector_buffered_unstable(s, f, &keys, &pays, &hist, &mut ok, &mut op);
                check(&ok, &op, &base, false, "vector-buffered-unstable");
            });
        },
    );
}

#[test]
fn range_partitioners_agree() {
    tk::check("range_partitioners_agree", 64, 0x9a53, |rng| {
        let mut splitters = tk::vec_u32(rng, 0, 40);
        let keys = tk::vec_u32(rng, 1, 200);

        splitters.sort_unstable();
        let rp = RangePartitioner::new(&splitters);
        let f = rp.range_fn();
        for &k in &keys {
            let expected = splitters.iter().filter(|&&s| s < k).count();
            assert_eq!(rp.partition_branching(k), expected);
            assert_eq!(rp.partition_branchless(k), expected);
            assert_eq!(f.partition(k), expected);
        }
        // vector form over padded chunks
        let backend = Backend::best();
        rsv_simd::dispatch!(backend, s => {
            use rsv_simd::Simd;
            let mut padded = keys.clone();
            padded.resize(keys.len().next_multiple_of(16).max(16), 0);
            let mut out = vec![0u32; padded.len()];
            let mut i = 0;
            while i + S::LANES <= padded.len() {
                let p = f.partition_vector(s, s.load(&padded[i..]));
                s.store(p, &mut out[i..]);
                i += S::LANES;
            }
            for (j, &k) in keys.iter().enumerate().take(i) {
                let expected = splitters.iter().filter(|&&x| x < k).count();
                assert_eq!(out[j] as usize, expected, "lane {j}");
            }
        });
    });
}
