//! Property tests: hash-table build+probe equals a `HashMap` reference
//! join for arbitrary key multisets, on every backend and every scheme.

use rsv_hashtab::{CuckooTable, DoubleHashTable, GroupAggTable, JoinSink, LinearTable, EMPTY_KEY};
use rsv_simd::Backend;
use rsv_testkit as tk;
use std::collections::HashMap;

fn reference_join(build: &[(u32, u32)], probe: &[(u32, u32)]) -> Vec<(u32, u32, u32)> {
    let mut map: HashMap<u32, Vec<u32>> = HashMap::new();
    for &(k, p) in build {
        map.entry(k).or_default().push(p);
    }
    let mut out = Vec::new();
    for &(k, p) in probe {
        if let Some(pays) = map.get(&k) {
            for &bp in pays {
                out.push((k, bp, p));
            }
        }
    }
    out.sort_unstable();
    out
}

fn sorted_rows(sink: &JoinSink) -> Vec<(u32, u32, u32)> {
    let mut rows: Vec<_> = sink.iter().collect();
    rows.sort_unstable();
    rows
}

/// Keys in a small domain (to force repeats and probe collisions) that
/// avoids the empty sentinel.
fn keys_for_collisions(rng: &mut tk::Rng, min_len: usize, max_len: usize) -> Vec<u32> {
    let n = tk::len_in(rng, min_len, max_len);
    (0..n).map(|_| tk::key_not_sentinel(rng, 50)).collect()
}

#[test]
fn linear_and_double_match_reference() {
    tk::check("linear_and_double_match_reference", 64, 0xa571, |rng| {
        let bkeys = keys_for_collisions(rng, 0, 200);
        let pkeys = keys_for_collisions(rng, 0, 300);

        let build: Vec<(u32, u32)> = bkeys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i as u32))
            .collect();
        let probe: Vec<(u32, u32)> = pkeys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i as u32))
            .collect();
        let expected = reference_join(&build, &probe);
        let bp: Vec<u32> = build.iter().map(|x| x.1).collect();
        let pp: Vec<u32> = probe.iter().map(|x| x.1).collect();

        for backend in Backend::all_available() {
            rsv_simd::dispatch!(backend, s => {
                let mut lp = LinearTable::new(bkeys.len(), 0.5);
                lp.build_vertical(s, &bkeys, &bp);
                let mut sink = JoinSink::with_capacity(0);
                lp.probe_vertical(s, &pkeys, &pp, &mut sink);
                assert_eq!(sorted_rows(&sink), expected.clone(), "lp {}", backend.name());

                let mut sink = JoinSink::with_capacity(0);
                lp.probe_vertical_interleaved(s, &pkeys, &pp, &mut sink);
                assert_eq!(sorted_rows(&sink), expected.clone(), "lp-x4 {}", backend.name());

                let mut dh = DoubleHashTable::new(bkeys.len(), 0.5);
                dh.build_vertical(s, &bkeys, &bp);
                let mut sink = JoinSink::with_capacity(0);
                dh.probe_vertical(s, &pkeys, &pp, &mut sink);
                assert_eq!(sorted_rows(&sink), expected.clone(), "dh {}", backend.name());
            });
        }
    });
}

#[test]
fn cuckoo_matches_reference_on_unique_keys() {
    tk::check(
        "cuckoo_matches_reference_on_unique_keys",
        64,
        0xa572,
        |rng| {
            let seed = rng.next_u64();
            let nb = 1 + rng.index(299);
            let np = rng.index(400);

            let mut drng = rsv_data::rng(seed);
            let bkeys = rsv_data::unique_u32(nb, &mut drng);
            let bp: Vec<u32> = (0..nb as u32).collect();
            let pkeys: Vec<u32> = (0..np)
                .map(|i| {
                    if i % 3 == 2 {
                        bkeys[i % nb].wrapping_add(1)
                    } else {
                        bkeys[(i * 5) % nb]
                    }
                })
                .filter(|&k| k != EMPTY_KEY)
                .collect();
            let pp: Vec<u32> = (0..pkeys.len() as u32).collect();
            let build: Vec<(u32, u32)> = bkeys.iter().copied().zip(bp.iter().copied()).collect();
            let probe: Vec<(u32, u32)> = pkeys.iter().copied().zip(pp.iter().copied()).collect();
            let expected = reference_join(&build, &probe);

            let backend = Backend::best();
            rsv_simd::dispatch!(backend, s => {
                let mut ck = CuckooTable::new(nb, 0.45);
                ck.build_vertical(s, &bkeys, &bp).expect("cuckoo build at 45% load");
                let mut sink = JoinSink::with_capacity(0);
                ck.probe_vertical_select(s, &pkeys, &pp, &mut sink);
                assert_eq!(sorted_rows(&sink), expected.clone());
                let mut sink = JoinSink::with_capacity(0);
                ck.probe_vertical_blend(s, &pkeys, &pp, &mut sink);
                assert_eq!(sorted_rows(&sink), expected);
            });
        },
    );
}

#[test]
fn aggregation_matches_reference() {
    tk::check("aggregation_matches_reference", 64, 0xa573, |rng| {
        let keys = tk::vec_u32_in(rng, 0, 500, 40);
        let vals_seed = rng.next_u32();

        let values: Vec<u32> = (0..keys.len() as u32)
            .map(|i| i.wrapping_mul(vals_seed | 1))
            .collect();
        let mut expected: HashMap<u32, (u32, u64)> = HashMap::new();
        for (&k, &v) in keys.iter().zip(&values) {
            let e = expected.entry(k).or_default();
            e.0 += 1;
            e.1 += u64::from(v);
        }
        for backend in Backend::all_available() {
            rsv_simd::dispatch!(backend, s => {
                let mut t = GroupAggTable::new(64, 0.5);
                t.update_vector(s, &keys, &values);
                let got: HashMap<u32, (u32, u64)> =
                    t.iter().map(|(k, c, sum)| (k, (c, sum))).collect();
                assert_eq!(&got, &expected, "backend {}", backend.name());
            });
        }
    });
}
