//! Linear probing (§5.1) and double hashing (§5.2) tables with scalar and
//! vertically vectorized build/probe.

use rsv_metrics::Metric;
use rsv_simd::{MaskLike, Simd};

use crate::sink::JoinSink;
use crate::{bucket_count, next_prime, MulHash, EMPTY_KEY, EMPTY_PAIR};

/// Maximum vector width any backend exposes (for stack lane buffers).
const MAX_LANES: usize = 32;

/// An open-addressing hash table with **linear probing** and interleaved
/// key/payload buckets (paper §5.1).
#[derive(Debug, Clone)]
pub struct LinearTable {
    pairs: Vec<u64>,
    hash: MulHash,
    len: usize,
}

impl LinearTable {
    /// A table able to hold `capacity` tuples at `load_factor` occupancy.
    pub fn new(capacity: usize, load_factor: f64) -> Self {
        Self::with_hash(capacity, load_factor, MulHash::nth(0))
    }

    /// As [`LinearTable::new`] with a caller-chosen hash function.
    pub fn with_hash(capacity: usize, load_factor: f64, hash: MulHash) -> Self {
        let buckets = bucket_count(capacity, load_factor);
        LinearTable {
            pairs: vec![EMPTY_PAIR; buckets],
            hash,
            len: 0,
        }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.pairs.len()
    }

    /// Number of inserted tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no tuples were inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size of the table's bucket array in bytes (the paper's x-axis in
    /// Figures 6 and 7).
    pub fn size_bytes(&self) -> usize {
        self.pairs.len() * 8
    }

    /// Direct access to the interleaved buckets (for tests and experiments).
    pub fn raw_pairs(&self) -> &[u64] {
        &self.pairs
    }

    #[inline(always)]
    fn check_space(&self) {
        assert!(self.len < self.pairs.len(), "hash table is full");
    }

    /// Insert one tuple (paper Algorithm 6 inner loop), starting `offset`
    /// buckets past the hash bucket (used to resume vector-lane probes).
    #[inline]
    fn insert_from(&mut self, key: u32, pay: u32, offset: usize) {
        self.check_space();
        lp_insert_raw(&mut self.pairs, self.hash, key, pay, offset);
        self.len += 1;
    }

    /// Insert one tuple (paper Algorithm 6).
    pub fn insert(&mut self, key: u32, pay: u32) {
        self.insert_from(key, pay, 0);
    }

    /// Fallible [`LinearTable::insert`]: a full table is reported as
    /// [`rsv_exec::EngineError::TableFull`] instead of panicking.
    pub fn try_insert(&mut self, key: u32, pay: u32) -> Result<(), rsv_exec::EngineError> {
        if self.len >= self.pairs.len() {
            return Err(rsv_exec::EngineError::TableFull {
                len: self.len,
                buckets: self.pairs.len(),
            });
        }
        lp_insert_raw(&mut self.pairs, self.hash, key, pay, 0);
        self.len += 1;
        Ok(())
    }

    /// Build the table from columns with scalar code (Algorithm 6).
    pub fn build_scalar(&mut self, keys: &[u32], pays: &[u32]) {
        assert_eq!(keys.len(), pays.len(), "column length mismatch");
        rsv_metrics::count(Metric::LpKeysBuilt, keys.len() as u64);
        for (&k, &p) in keys.iter().zip(pays) {
            self.insert(k, p);
        }
    }

    /// Fallible [`LinearTable::build_scalar`]: rejects inputs that do not
    /// leave at least one bucket free (the probe loop's termination
    /// guarantee) with [`rsv_exec::EngineError::TableFull`].
    pub fn try_build_scalar(
        &mut self,
        keys: &[u32],
        pays: &[u32],
    ) -> Result<(), rsv_exec::EngineError> {
        assert_eq!(keys.len(), pays.len(), "column length mismatch");
        let _ = rsv_testkit::failpoint!("hashtab.lp.build");
        if self.len + keys.len() >= self.pairs.len() {
            return Err(rsv_exec::EngineError::TableFull {
                len: self.len + keys.len(),
                buckets: self.pairs.len(),
            });
        }
        rsv_metrics::count(Metric::LpKeysBuilt, keys.len() as u64);
        for (&k, &p) in keys.iter().zip(pays) {
            lp_insert_raw(&mut self.pairs, self.hash, k, p, 0);
            self.len += 1;
        }
        Ok(())
    }

    /// Probe one key, resuming `offset` buckets into its chain, emitting
    /// `(key, table payload, probe payload)` matches.
    #[inline]
    fn probe_one_from(&self, key: u32, pay: u32, offset: usize, out: &mut JoinSink) {
        lp_probe_one_raw(&self.pairs, self.hash, key, pay, offset, out);
    }

    /// Scalar probe (paper Algorithm 4): for every probe tuple, walk the
    /// chain and emit all matches.
    pub fn probe_scalar(&self, keys: &[u32], pays: &[u32], out: &mut JoinSink) {
        assert_eq!(keys.len(), pays.len(), "column length mismatch");
        let _ = rsv_testkit::failpoint!("hashtab.lp.probe");
        rsv_metrics::count(Metric::LpKeysProbed, keys.len() as u64);
        for (&k, &p) in keys.iter().zip(pays) {
            self.probe_one_from(k, p, 0, out);
        }
    }

    /// Vertically vectorized build (paper Algorithm 7): a different input
    /// tuple per lane; gathers check for empty buckets, scatters insert,
    /// and a scatter/gather-back round detects lane conflicts.
    pub fn build_vertical<S: Simd>(&mut self, s: S, keys: &[u32], pays: &[u32]) {
        assert_eq!(keys.len(), pays.len(), "column length mismatch");
        s.vectorize(
            #[inline(always)]
            || self.build_vertical_impl(s, keys, pays),
        );
    }

    fn build_vertical_impl<S: Simd>(&mut self, s: S, keys: &[u32], pays: &[u32]) {
        assert!(
            self.len + keys.len() < self.pairs.len(),
            "hash table too small for build"
        );
        lp_build_vertical_raw(s, &mut self.pairs, self.hash, keys, pays);
        self.len += keys.len();
    }

    /// Vertically vectorized probe (paper Algorithm 5): a different probe
    /// key per lane; finished lanes are selectively reloaded from the input
    /// so every lane stays busy ("out-of-order" probing — the output order
    /// differs from the input order).
    pub fn probe_vertical<S: Simd>(&self, s: S, keys: &[u32], pays: &[u32], out: &mut JoinSink) {
        assert_eq!(keys.len(), pays.len(), "column length mismatch");
        let _ = rsv_testkit::failpoint!("hashtab.lp.probe");
        s.vectorize(
            #[inline(always)]
            || self.probe_vertical_impl(s, keys, pays, out),
        );
    }

    fn probe_vertical_impl<S: Simd>(&self, s: S, keys: &[u32], pays: &[u32], out: &mut JoinSink) {
        lp_probe_vertical_raw(s, &self.pairs, self.hash, keys, pays, out);
    }

    /// Vertically vectorized probe with four interleaved probe states (see
    /// [`lp_probe_vertical_strands_raw`]) — the software analogue of the
    /// 4-way SMT the paper's Xeon Phi uses to hide gather latency.
    pub fn probe_vertical_interleaved<S: Simd>(
        &self,
        s: S,
        keys: &[u32],
        pays: &[u32],
        out: &mut JoinSink,
    ) {
        lp_probe_vertical_strands_raw::<S, 4>(s, &self.pairs, self.hash, keys, pays, out);
    }
}

/// An open-addressing hash table with **double hashing** (paper §5.2,
/// Algorithm 8): collisions step by a second, key-dependent hash so repeats
/// of one key do not cluster. The bucket count is prime so the probe
/// sequence visits every bucket.
#[derive(Debug, Clone)]
pub struct DoubleHashTable {
    pairs: Vec<u64>,
    h1: MulHash,
    h2: MulHash,
    len: usize,
}

impl DoubleHashTable {
    /// A table able to hold `capacity` tuples at `load_factor` occupancy.
    pub fn new(capacity: usize, load_factor: f64) -> Self {
        Self::with_hashes(capacity, load_factor, MulHash::nth(0), MulHash::nth(1))
    }

    /// As [`DoubleHashTable::new`] with caller-chosen hash functions.
    pub fn with_hashes(capacity: usize, load_factor: f64, h1: MulHash, h2: MulHash) -> Self {
        let buckets = next_prime(bucket_count(capacity, load_factor));
        DoubleHashTable {
            pairs: vec![EMPTY_PAIR; buckets],
            h1,
            h2,
            len: 0,
        }
    }

    /// Number of buckets (prime).
    pub fn buckets(&self) -> usize {
        self.pairs.len()
    }

    /// Number of inserted tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no tuples were inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size of the bucket array in bytes.
    pub fn size_bytes(&self) -> usize {
        self.pairs.len() * 8
    }

    /// The step of `key`'s probe sequence: `1 + mulhi(k·f2, |T|-1) ∈ [1, |T|-1]`.
    #[inline(always)]
    fn step(&self, key: u32) -> usize {
        1 + self.h2.bucket(key, self.pairs.len() - 1)
    }

    /// Insert one tuple.
    pub fn insert(&mut self, key: u32, pay: u32) {
        assert_ne!(
            key, EMPTY_KEY,
            "key {key:#x} is the reserved empty sentinel"
        );
        assert!(self.len < self.pairs.len(), "hash table is full");
        let t = self.pairs.len();
        let mut h = self.h1.bucket(key, t);
        let step = self.step(key);
        while self.pairs[h] as u32 != EMPTY_KEY {
            h += step;
            if h >= t {
                h -= t;
            }
        }
        self.pairs[h] = u64::from(key) | (u64::from(pay) << 32);
        self.len += 1;
    }

    /// Build the table from columns with scalar code.
    pub fn build_scalar(&mut self, keys: &[u32], pays: &[u32]) {
        assert_eq!(keys.len(), pays.len(), "column length mismatch");
        rsv_metrics::count(Metric::LpKeysBuilt, keys.len() as u64);
        for (&k, &p) in keys.iter().zip(pays) {
            self.insert(k, p);
        }
    }

    /// Probe one key starting at bucket `h` (or its first bucket if `h` is
    /// `None`), emitting `(key, table payload, probe payload)` matches.
    #[inline]
    fn probe_one_from(&self, key: u32, pay: u32, h: Option<usize>, out: &mut JoinSink) {
        let t = self.pairs.len();
        let step = self.step(key);
        let mut h = h.unwrap_or_else(|| self.h1.bucket(key, t));
        let mut steps = 0u64;
        loop {
            let pair = self.pairs[h];
            steps += 1;
            let tk = pair as u32;
            if tk == EMPTY_KEY {
                break;
            }
            if tk == key {
                out.push(key, (pair >> 32) as u32, pay);
            }
            h += step;
            if h >= t {
                h -= t;
            }
        }
        rsv_metrics::count(Metric::DhProbes, steps);
    }

    /// Scalar probe.
    pub fn probe_scalar(&self, keys: &[u32], pays: &[u32], out: &mut JoinSink) {
        assert_eq!(keys.len(), pays.len(), "column length mismatch");
        rsv_metrics::count(Metric::DhKeysProbed, keys.len() as u64);
        for (&k, &p) in keys.iter().zip(pays) {
            self.probe_one_from(k, p, None, out);
        }
    }

    /// Vertically vectorized probe using the paper's double hashing
    /// function (Algorithm 8 embedded in the Algorithm 5 probe loop).
    pub fn probe_vertical<S: Simd>(&self, s: S, keys: &[u32], pays: &[u32], out: &mut JoinSink) {
        assert_eq!(keys.len(), pays.len(), "column length mismatch");
        s.vectorize(
            #[inline(always)]
            || self.probe_vertical_impl(s, keys, pays, out),
        );
    }

    fn probe_vertical_impl<S: Simd>(&self, s: S, keys: &[u32], pays: &[u32], out: &mut JoinSink) {
        let w = S::LANES;
        let n = keys.len();
        let t = self.pairs.len();
        rsv_metrics::count(Metric::DhKeysProbed, n as u64);
        let f1 = s.splat(self.h1.factor());
        let f2 = s.splat(self.h2.factor());
        let tn = s.splat(t as u32);
        let tn1 = s.splat(t as u32 - 1);
        let empty = s.splat(EMPTY_KEY);
        let one = s.splat(1);
        let mut k = s.zero();
        let mut v = s.zero();
        let mut h = s.zero();
        let mut m = S::M::all();
        let mut probes = 0u64;
        let mut i = 0usize;
        while i + w <= n {
            k = s.selective_load(k, m, &keys[i..]);
            v = s.selective_load(v, m, &pays[i..]);
            i += m.count();
            // Algorithm 8: new lanes hash with f1 into [0, |T|); old lanes
            // advance by 1 + mulhi(k·f2, |T|-1).
            let fl = s.blend(m, f1, f2);
            let fh = s.blend(m, tn, tn1);
            h = s.blend(m, s.zero(), s.add(h, one));
            h = s.add(h, s.mulhi(s.mullo(k, fl), fh));
            let over = s.cmpge(h, tn);
            h = s.blend(over, s.sub(h, tn), h);
            let (tk, tv) = s.gather_pairs(&self.pairs, h);
            probes += w as u64;
            m = s.cmpeq(tk, empty);
            let hit = m.andnot(s.cmpeq(tk, k));
            if hit.any() {
                let (ok, oi, oo) = out.spare(w);
                s.selective_store(ok, hit, k);
                s.selective_store(oi, hit, tv);
                let c = s.selective_store(oo, hit, v);
                out.advance(c);
            }
        }
        rsv_metrics::count(Metric::DhProbes, probes);
        let mut ka = [0u32; MAX_LANES];
        let mut va = [0u32; MAX_LANES];
        let mut ha = [0u32; MAX_LANES];
        s.store(k, &mut ka[..w]);
        s.store(v, &mut va[..w]);
        s.store(h, &mut ha[..w]);
        for lane in m.not().iter_set() {
            // Resume from the *next* bucket of this lane's sequence.
            let t = self.pairs.len();
            let mut hh = ha[lane] as usize + self.step(ka[lane]);
            if hh >= t {
                hh -= t;
            }
            self.probe_one_from(ka[lane], va[lane], Some(hh), out);
        }
        for idx in i..n {
            self.probe_one_from(keys[idx], pays[idx], None, out);
        }
    }

    /// Vertically vectorized probe with four interleaved probe states —
    /// the software analogue of the 4-way SMT the paper's Xeon Phi uses to
    /// hide gather latency (see [`lp_probe_vertical_strands_raw`]).
    pub fn probe_vertical_interleaved<S: Simd>(
        &self,
        s: S,
        keys: &[u32],
        pays: &[u32],
        out: &mut JoinSink,
    ) {
        dh_probe_vertical_strands_raw::<S, 4>(s, &self.pairs, self.h1, self.h2, keys, pays, out);
    }

    /// Vertically vectorized build (Algorithm 7 with the Algorithm 8 hash).
    pub fn build_vertical<S: Simd>(&mut self, s: S, keys: &[u32], pays: &[u32]) {
        assert_eq!(keys.len(), pays.len(), "column length mismatch");
        rsv_metrics::count(Metric::LpKeysBuilt, keys.len() as u64);
        s.vectorize(
            #[inline(always)]
            || self.build_vertical_impl(s, keys, pays),
        );
    }

    fn build_vertical_impl<S: Simd>(&mut self, s: S, keys: &[u32], pays: &[u32]) {
        let w = S::LANES;
        let n = keys.len();
        let t = self.pairs.len();
        assert!(self.len + n < t, "hash table too small for build");
        debug_assert!(
            !keys.contains(&EMPTY_KEY),
            "empty-sentinel key in build input"
        );
        let f1 = s.splat(self.h1.factor());
        let f2 = s.splat(self.h2.factor());
        let tn = s.splat(t as u32);
        let tn1 = s.splat(t as u32 - 1);
        let empty = s.splat(EMPTY_KEY);
        let one = s.splat(1);
        let lane_ids = s.iota();
        let mut k = s.zero();
        let mut v = s.zero();
        let mut h = s.zero();
        let mut m = S::M::all();
        let mut retries = 0u64;
        let mut i = 0usize;
        while i + w <= n {
            k = s.selective_load(k, m, &keys[i..]);
            v = s.selective_load(v, m, &pays[i..]);
            i += m.count();
            let fl = s.blend(m, f1, f2);
            let fh = s.blend(m, tn, tn1);
            h = s.blend(m, s.zero(), s.add(h, one));
            h = s.add(h, s.mulhi(s.mullo(k, fl), fh));
            let over = s.cmpge(h, tn);
            h = s.blend(over, s.sub(h, tn), h);
            let (tk, _) = s.gather_pairs(&self.pairs, h);
            let empt = s.cmpeq(tk, empty);
            s.scatter_pairs_masked(&mut self.pairs, empt, h, lane_ids, s.zero());
            let (back, _) = s.gather_pairs_masked((s.zero(), s.zero()), empt, &self.pairs, h);
            let ok = empt.and(s.cmpeq(back, lane_ids));
            s.scatter_pairs_masked(&mut self.pairs, ok, h, k, v);
            retries += (empt.count() - ok.count()) as u64;
            self.len += ok.count();
            m = ok;
        }
        rsv_metrics::count(Metric::LpBuildConflictRetries, retries);
        let mut ka = [0u32; MAX_LANES];
        let mut va = [0u32; MAX_LANES];
        let mut ha = [0u32; MAX_LANES];
        s.store(k, &mut ka[..w]);
        s.store(v, &mut va[..w]);
        s.store(h, &mut ha[..w]);
        for lane in m.not().iter_set() {
            // Continue this lane's probe sequence from its next bucket.
            let key = ka[lane];
            let step = self.step(key);
            let mut hh = ha[lane] as usize;
            loop {
                hh += step;
                if hh >= t {
                    hh -= t;
                }
                if self.pairs[hh] as u32 == EMPTY_KEY {
                    self.pairs[hh] = u64::from(key) | (u64::from(va[lane]) << 32);
                    self.len += 1;
                    break;
                }
            }
        }
        for idx in i..n {
            self.insert(keys[idx], pays[idx]);
        }
    }
}

// ---------------------------------------------------------------------
// Raw linear-probing kernels over externally managed bucket arrays.
//
// The partitioned join variants (Section 9) manage many sub-tables inside
// one allocation; these free functions run the same Algorithms 4–7 over a
// caller-provided interleaved bucket slice.
// ---------------------------------------------------------------------

/// Scalar insert (Algorithm 6 inner loop) starting `offset` buckets past
/// the hash bucket.
///
/// # Panics
/// If `key` is the empty sentinel. The caller must guarantee at least one
/// empty bucket remains or the probe loop will not terminate.
#[inline]
pub fn lp_insert_raw(pairs: &mut [u64], hash: MulHash, key: u32, pay: u32, offset: usize) {
    assert_ne!(
        key, EMPTY_KEY,
        "key {key:#x} is the reserved empty sentinel"
    );
    let t = pairs.len();
    let mut h = hash.bucket(key, t) + offset;
    if h >= t {
        h -= t;
    }
    while pairs[h] as u32 != EMPTY_KEY {
        h += 1;
        if h == t {
            h = 0;
        }
    }
    pairs[h] = u64::from(key) | (u64::from(pay) << 32);
}

/// Scalar probe of one key (Algorithm 4 inner loop), resuming `offset`
/// buckets into its chain.
#[inline]
pub fn lp_probe_one_raw(
    pairs: &[u64],
    hash: MulHash,
    key: u32,
    pay: u32,
    offset: usize,
    out: &mut JoinSink,
) {
    let t = pairs.len();
    let mut h = hash.bucket(key, t) + offset;
    if h >= t {
        h -= t;
    }
    let mut steps = 0u64;
    loop {
        let pair = pairs[h];
        steps += 1;
        let tk = pair as u32;
        if tk == EMPTY_KEY {
            break;
        }
        if tk == key {
            out.push(key, (pair >> 32) as u32, pay);
        }
        h += 1;
        if h == t {
            h = 0;
        }
    }
    rsv_metrics::count(Metric::LpProbes, steps);
}

/// Scalar build (Algorithm 6) into a raw bucket slice.
pub fn lp_build_scalar_raw(pairs: &mut [u64], hash: MulHash, keys: &[u32], pays: &[u32]) {
    assert_eq!(keys.len(), pays.len(), "column length mismatch");
    assert!(keys.len() < pairs.len(), "bucket slice too small for build");
    rsv_metrics::count(Metric::LpKeysBuilt, keys.len() as u64);
    for (&k, &p) in keys.iter().zip(pays) {
        lp_insert_raw(pairs, hash, k, p, 0);
    }
}

/// Scalar probe (Algorithm 4) over a raw bucket slice.
pub fn lp_probe_scalar_raw(
    pairs: &[u64],
    hash: MulHash,
    keys: &[u32],
    pays: &[u32],
    out: &mut JoinSink,
) {
    assert_eq!(keys.len(), pays.len(), "column length mismatch");
    rsv_metrics::count(Metric::LpKeysProbed, keys.len() as u64);
    for (&k, &p) in keys.iter().zip(pays) {
        lp_probe_one_raw(pairs, hash, k, p, 0, out);
    }
}

/// Vertically vectorized build (Algorithm 7) into a raw bucket slice. The
/// caller must leave at least one bucket empty.
pub fn lp_build_vertical_raw<S: Simd>(
    s: S,
    pairs: &mut [u64],
    hash: MulHash,
    keys: &[u32],
    pays: &[u32],
) {
    assert_eq!(keys.len(), pays.len(), "column length mismatch");
    assert!(keys.len() < pairs.len(), "bucket slice too small for build");
    debug_assert!(
        !keys.contains(&EMPTY_KEY),
        "empty-sentinel key in build input"
    );
    rsv_metrics::count(Metric::LpKeysBuilt, keys.len() as u64);
    s.vectorize(
        #[inline(always)]
        || {
            let w = S::LANES;
            let n = keys.len();
            let t = pairs.len();
            let f = s.splat(hash.factor());
            let tn = s.splat(t as u32);
            let empty = s.splat(EMPTY_KEY);
            let one = s.splat(1);
            let lane_ids = s.iota();
            let mut k = s.zero();
            let mut v = s.zero();
            let mut o = s.zero();
            let mut m = S::M::all();
            let mut retries = 0u64;
            let mut i = 0usize;
            while i + w <= n {
                k = s.selective_load(k, m, &keys[i..]);
                v = s.selective_load(v, m, &pays[i..]);
                i += m.count();
                let mut h = s.add(s.mulhi(s.mullo(k, f), tn), o);
                let over = s.cmpge(h, tn);
                h = s.blend(over, s.sub(h, tn), h);
                let (tk, _) = s.gather_pairs(pairs, h);
                let empt = s.cmpeq(tk, empty);
                // conflict detection: scatter unique lane ids, gather back
                s.scatter_pairs_masked(pairs, empt, h, lane_ids, s.zero());
                let (back, _) = s.gather_pairs_masked((s.zero(), s.zero()), empt, pairs, h);
                let ok = empt.and(s.cmpeq(back, lane_ids));
                s.scatter_pairs_masked(pairs, ok, h, k, v);
                retries += (empt.count() - ok.count()) as u64;
                o = s.blend(ok, s.zero(), s.add(o, one));
                m = ok;
            }
            rsv_metrics::count(Metric::LpBuildConflictRetries, retries);
            let mut ka = [0u32; MAX_LANES];
            let mut va = [0u32; MAX_LANES];
            let mut oa = [0u32; MAX_LANES];
            s.store(k, &mut ka[..w]);
            s.store(v, &mut va[..w]);
            s.store(o, &mut oa[..w]);
            for lane in m.not().iter_set() {
                lp_insert_raw(pairs, hash, ka[lane], va[lane], oa[lane] as usize);
            }
            for idx in i..n {
                lp_insert_raw(pairs, hash, keys[idx], pays[idx], 0);
            }
        },
    );
}

/// Vertically vectorized probe (Algorithm 5) over a raw bucket slice.
pub fn lp_probe_vertical_raw<S: Simd>(
    s: S,
    pairs: &[u64],
    hash: MulHash,
    keys: &[u32],
    pays: &[u32],
    out: &mut JoinSink,
) {
    assert_eq!(keys.len(), pays.len(), "column length mismatch");
    rsv_metrics::count(Metric::LpKeysProbed, keys.len() as u64);
    s.vectorize(
        #[inline(always)]
        || {
            let w = S::LANES;
            let n = keys.len();
            let t = pairs.len();
            let f = s.splat(hash.factor());
            let tn = s.splat(t as u32);
            let empty = s.splat(EMPTY_KEY);
            let one = s.splat(1);
            let mut k = s.zero();
            let mut v = s.zero();
            let mut o = s.zero();
            let mut m = S::M::all();
            let mut probes = 0u64;
            let mut i = 0usize;
            while i + w <= n {
                k = s.selective_load(k, m, &keys[i..]);
                v = s.selective_load(v, m, &pays[i..]);
                i += m.count();
                let mut h = s.add(s.mulhi(s.mullo(k, f), tn), o);
                let over = s.cmpge(h, tn);
                h = s.blend(over, s.sub(h, tn), h);
                let (tk, tv) = s.gather_pairs(pairs, h);
                probes += w as u64;
                m = s.cmpeq(tk, empty);
                let hit = m.andnot(s.cmpeq(tk, k));
                if hit.any() {
                    let (ok, oi, oo) = out.spare(w);
                    s.selective_store(ok, hit, k);
                    s.selective_store(oi, hit, tv);
                    let c = s.selective_store(oo, hit, v);
                    out.advance(c);
                }
                o = s.blend(m, s.zero(), s.add(o, one));
            }
            rsv_metrics::count(Metric::LpProbes, probes);
            let mut ka = [0u32; MAX_LANES];
            let mut va = [0u32; MAX_LANES];
            let mut oa = [0u32; MAX_LANES];
            s.store(k, &mut ka[..w]);
            s.store(v, &mut va[..w]);
            s.store(o, &mut oa[..w]);
            for lane in m.not().iter_set() {
                lp_probe_one_raw(pairs, hash, ka[lane], va[lane], oa[lane] as usize, out);
            }
            for idx in i..n {
                lp_probe_one_raw(pairs, hash, keys[idx], pays[idx], 0, out);
            }
        },
    );
}

/// Vertically vectorized probe with `STRANDS` interleaved, independent
/// probe states (an *extension* of the paper's Algorithm 5).
///
/// The plain vertical probe is latency-bound on out-of-order CPUs: the
/// selective reload's input cursor depends on the previous iteration's
/// gather, serializing the loop. The paper's Xeon Phi hides that chain
/// with 4-way SMT; a single modern core can do the same in software by
/// probing `STRANDS` input chunks in lockstep so several gathers are in
/// flight at once.
pub fn lp_probe_vertical_strands_raw<S: Simd, const STRANDS: usize>(
    s: S,
    pairs: &[u64],
    hash: MulHash,
    keys: &[u32],
    pays: &[u32],
    out: &mut JoinSink,
) {
    assert_eq!(keys.len(), pays.len(), "column length mismatch");
    assert!(STRANDS >= 1);
    rsv_metrics::count(Metric::LpKeysProbed, keys.len() as u64);
    s.vectorize(
        #[inline(always)]
        || {
            let w = S::LANES;
            let n = keys.len();
            let t = pairs.len();
            let f = s.splat(hash.factor());
            let tn = s.splat(t as u32);
            let empty = s.splat(EMPTY_KEY);
            let one = s.splat(1);
            let mut probes = 0u64;
            // per-strand state over contiguous input chunks
            let chunk = n / STRANDS;
            let mut k = [s.zero(); STRANDS];
            let mut v = [s.zero(); STRANDS];
            let mut o = [s.zero(); STRANDS];
            let mut m = [S::M::all(); STRANDS];
            let mut cur = [0usize; STRANDS];
            let mut end = [0usize; STRANDS];
            for st in 0..STRANDS {
                cur[st] = st * chunk;
                end[st] = if st + 1 == STRANDS {
                    n
                } else {
                    (st + 1) * chunk
                };
            }
            let mut live = STRANDS;
            while live > 0 {
                live = 0;
                for st in 0..STRANDS {
                    if cur[st] + w > end[st] {
                        continue;
                    }
                    live += 1;
                    k[st] = s.selective_load(k[st], m[st], &keys[cur[st]..]);
                    v[st] = s.selective_load(v[st], m[st], &pays[cur[st]..]);
                    cur[st] += m[st].count();
                    let mut h = s.add(s.mulhi(s.mullo(k[st], f), tn), o[st]);
                    let over = s.cmpge(h, tn);
                    h = s.blend(over, s.sub(h, tn), h);
                    let (tk, tv) = s.gather_pairs(pairs, h);
                    probes += w as u64;
                    m[st] = s.cmpeq(tk, empty);
                    let hit = m[st].andnot(s.cmpeq(tk, k[st]));
                    if hit.any() {
                        let (ok, oi, oo) = out.spare(w);
                        s.selective_store(ok, hit, k[st]);
                        s.selective_store(oi, hit, tv);
                        let c = s.selective_store(oo, hit, v[st]);
                        out.advance(c);
                    }
                    o[st] = s.blend(m[st], s.zero(), s.add(o[st], one));
                }
            }
            rsv_metrics::count(Metric::LpProbes, probes);
            // drain in-flight lanes and chunk tails with scalar code
            let mut ka = [0u32; MAX_LANES];
            let mut va = [0u32; MAX_LANES];
            let mut oa = [0u32; MAX_LANES];
            for st in 0..STRANDS {
                s.store(k[st], &mut ka[..w]);
                s.store(v[st], &mut va[..w]);
                s.store(o[st], &mut oa[..w]);
                for lane in m[st].not().iter_set() {
                    lp_probe_one_raw(pairs, hash, ka[lane], va[lane], oa[lane] as usize, out);
                }
                for idx in cur[st]..end[st] {
                    lp_probe_one_raw(pairs, hash, keys[idx], pays[idx], 0, out);
                }
            }
        },
    );
}

/// Vertically vectorized **double hashing** probe with `STRANDS`
/// interleaved probe states — see [`lp_probe_vertical_strands_raw`].
pub fn dh_probe_vertical_strands_raw<S: Simd, const STRANDS: usize>(
    s: S,
    pairs: &[u64],
    h1: MulHash,
    h2: MulHash,
    keys: &[u32],
    pays: &[u32],
    out: &mut JoinSink,
) {
    assert_eq!(keys.len(), pays.len(), "column length mismatch");
    assert!(STRANDS >= 1);
    rsv_metrics::count(Metric::DhKeysProbed, keys.len() as u64);
    s.vectorize(
        #[inline(always)]
        || {
            let w = S::LANES;
            let n = keys.len();
            let t = pairs.len();
            let mut probes = 0u64;
            let f1 = s.splat(h1.factor());
            let f2 = s.splat(h2.factor());
            let tn = s.splat(t as u32);
            let tn1 = s.splat(t as u32 - 1);
            let empty = s.splat(EMPTY_KEY);
            let one = s.splat(1);
            let chunk = n / STRANDS;
            let mut k = [s.zero(); STRANDS];
            let mut v = [s.zero(); STRANDS];
            let mut h = [s.zero(); STRANDS];
            let mut m = [S::M::all(); STRANDS];
            let mut cur = [0usize; STRANDS];
            let mut end = [0usize; STRANDS];
            for st in 0..STRANDS {
                cur[st] = st * chunk;
                end[st] = if st + 1 == STRANDS {
                    n
                } else {
                    (st + 1) * chunk
                };
            }
            let mut live = STRANDS;
            while live > 0 {
                live = 0;
                for st in 0..STRANDS {
                    if cur[st] + w > end[st] {
                        continue;
                    }
                    live += 1;
                    k[st] = s.selective_load(k[st], m[st], &keys[cur[st]..]);
                    v[st] = s.selective_load(v[st], m[st], &pays[cur[st]..]);
                    cur[st] += m[st].count();
                    // Algorithm 8 hash update
                    let fl = s.blend(m[st], f1, f2);
                    let fh = s.blend(m[st], tn, tn1);
                    h[st] = s.blend(m[st], s.zero(), s.add(h[st], one));
                    h[st] = s.add(h[st], s.mulhi(s.mullo(k[st], fl), fh));
                    let over = s.cmpge(h[st], tn);
                    h[st] = s.blend(over, s.sub(h[st], tn), h[st]);
                    let (tk, tv) = s.gather_pairs(pairs, h[st]);
                    probes += w as u64;
                    m[st] = s.cmpeq(tk, empty);
                    let hit = m[st].andnot(s.cmpeq(tk, k[st]));
                    if hit.any() {
                        let (ok, oi, oo) = out.spare(w);
                        s.selective_store(ok, hit, k[st]);
                        s.selective_store(oi, hit, tv);
                        let c = s.selective_store(oo, hit, v[st]);
                        out.advance(c);
                    }
                }
            }
            // drain: continue each pending lane's probe sequence scalar
            let mut ka = [0u32; MAX_LANES];
            let mut va = [0u32; MAX_LANES];
            let mut ha = [0u32; MAX_LANES];
            for st in 0..STRANDS {
                s.store(k[st], &mut ka[..w]);
                s.store(v[st], &mut va[..w]);
                s.store(h[st], &mut ha[..w]);
                for lane in m[st].not().iter_set() {
                    let key = ka[lane];
                    let step = 1 + h2.bucket(key, t - 1);
                    let mut hh = ha[lane] as usize + step;
                    if hh >= t {
                        hh -= t;
                    }
                    loop {
                        let pair = pairs[hh];
                        probes += 1;
                        let tk = pair as u32;
                        if tk == EMPTY_KEY {
                            break;
                        }
                        if tk == key {
                            out.push(key, (pair >> 32) as u32, va[lane]);
                        }
                        hh += step;
                        if hh >= t {
                            hh -= t;
                        }
                    }
                }
                for idx in cur[st]..end[st] {
                    let key = keys[idx];
                    let step = 1 + h2.bucket(key, t - 1);
                    let mut hh = h1.bucket(key, t);
                    loop {
                        let pair = pairs[hh];
                        probes += 1;
                        let tk = pair as u32;
                        if tk == EMPTY_KEY {
                            break;
                        }
                        if tk == key {
                            out.push(key, (pair >> 32) as u32, pays[idx]);
                        }
                        hh += step;
                        if hh >= t {
                            hh -= t;
                        }
                    }
                }
            }
            rsv_metrics::count(Metric::DhProbes, probes);
        },
    );
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use rsv_simd::Portable;
    use std::collections::HashMap;

    fn reference_join(build: &[(u32, u32)], probe: &[(u32, u32)]) -> Vec<(u32, u32, u32)> {
        let mut map: HashMap<u32, Vec<u32>> = HashMap::new();
        for &(k, p) in build {
            map.entry(k).or_default().push(p);
        }
        let mut out = Vec::new();
        for &(k, p) in probe {
            if let Some(pays) = map.get(&k) {
                for &bp in pays {
                    out.push((k, bp, p));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn sorted_rows(sink: &JoinSink) -> Vec<(u32, u32, u32)> {
        let mut rows: Vec<_> = sink.iter().collect();
        rows.sort_unstable();
        rows
    }

    #[allow(clippy::type_complexity)]
    fn workload(nb: usize, np: usize, seed: u64) -> (Vec<(u32, u32)>, Vec<(u32, u32)>) {
        let mut rng = rsv_data::rng(seed);
        let keys = rsv_data::unique_u32(nb, &mut rng);
        let build: Vec<(u32, u32)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, i as u32))
            .collect();
        let probe: Vec<(u32, u32)> = (0..np)
            .map(|i| {
                // ~3/4 hits, 1/4 misses
                if i % 4 == 3 {
                    (keys[i % nb] ^ 0x5A5A_5A5A, i as u32)
                } else {
                    (keys[(i * 7) % nb], i as u32)
                }
            })
            .collect();
        (build, probe)
    }

    #[test]
    fn scalar_linear_matches_reference() {
        let (build, probe) = workload(500, 2000, 1);
        let mut t = LinearTable::new(build.len(), 0.5);
        for &(k, p) in &build {
            t.insert(k, p);
        }
        let mut sink = JoinSink::with_capacity(0);
        let keys: Vec<u32> = probe.iter().map(|x| x.0).collect();
        let pays: Vec<u32> = probe.iter().map(|x| x.1).collect();
        t.probe_scalar(&keys, &pays, &mut sink);
        assert_eq!(sorted_rows(&sink), reference_join(&build, &probe));
    }

    #[test]
    fn vertical_linear_probe_matches_scalar() {
        let s = Portable::<16>::new();
        for (nb, np) in [(100, 1000), (16, 16), (5, 40), (300, 7)] {
            let (build, probe) = workload(nb, np, 2);
            let mut t = LinearTable::new(build.len(), 0.5);
            let bk: Vec<u32> = build.iter().map(|x| x.0).collect();
            let bp: Vec<u32> = build.iter().map(|x| x.1).collect();
            t.build_scalar(&bk, &bp);
            let keys: Vec<u32> = probe.iter().map(|x| x.0).collect();
            let pays: Vec<u32> = probe.iter().map(|x| x.1).collect();
            let mut sink = JoinSink::with_capacity(0);
            t.probe_vertical(s, &keys, &pays, &mut sink);
            assert_eq!(
                sorted_rows(&sink),
                reference_join(&build, &probe),
                "nb={nb} np={np}"
            );
        }
    }

    #[test]
    fn vertical_linear_build_matches_reference() {
        let s = Portable::<16>::new();
        for (nb, np) in [(100, 500), (33, 100), (1000, 100)] {
            let (build, probe) = workload(nb, np, 3);
            let mut t = LinearTable::new(build.len(), 0.5);
            let bk: Vec<u32> = build.iter().map(|x| x.0).collect();
            let bp: Vec<u32> = build.iter().map(|x| x.1).collect();
            t.build_vertical(s, &bk, &bp);
            assert_eq!(t.len(), build.len());
            let keys: Vec<u32> = probe.iter().map(|x| x.0).collect();
            let pays: Vec<u32> = probe.iter().map(|x| x.1).collect();
            let mut sink = JoinSink::with_capacity(0);
            t.probe_scalar(&keys, &pays, &mut sink);
            assert_eq!(
                sorted_rows(&sink),
                reference_join(&build, &probe),
                "nb={nb}"
            );
        }
    }

    #[test]
    fn linear_handles_duplicate_build_keys() {
        let s = Portable::<16>::new();
        let build: Vec<(u32, u32)> = (0..200).map(|i| (i % 40, i)).collect();
        let probe: Vec<(u32, u32)> = (0..40).map(|i| (i, 1000 + i)).collect();
        let bk: Vec<u32> = build.iter().map(|x| x.0).collect();
        let bp: Vec<u32> = build.iter().map(|x| x.1).collect();
        let pk: Vec<u32> = probe.iter().map(|x| x.0).collect();
        let pp: Vec<u32> = probe.iter().map(|x| x.1).collect();

        let mut t = LinearTable::new(build.len(), 0.5);
        t.build_vertical(s, &bk, &bp);
        let mut sink = JoinSink::with_capacity(0);
        t.probe_vertical(s, &pk, &pp, &mut sink);
        assert_eq!(sorted_rows(&sink), reference_join(&build, &probe));
        assert_eq!(sink.len(), 200); // every copy matched once
    }

    #[test]
    fn double_hash_scalar_and_vertical_match_reference() {
        let s = Portable::<16>::new();
        let (build, probe) = workload(400, 3000, 5);
        let bk: Vec<u32> = build.iter().map(|x| x.0).collect();
        let bp: Vec<u32> = build.iter().map(|x| x.1).collect();
        let pk: Vec<u32> = probe.iter().map(|x| x.0).collect();
        let pp: Vec<u32> = probe.iter().map(|x| x.1).collect();

        let mut t1 = DoubleHashTable::new(build.len(), 0.5);
        t1.build_scalar(&bk, &bp);
        let mut sink1 = JoinSink::with_capacity(0);
        t1.probe_scalar(&pk, &pp, &mut sink1);
        assert_eq!(sorted_rows(&sink1), reference_join(&build, &probe));

        let mut t2 = DoubleHashTable::new(build.len(), 0.5);
        t2.build_vertical(s, &bk, &bp);
        assert_eq!(t2.len(), build.len());
        let mut sink2 = JoinSink::with_capacity(0);
        t2.probe_vertical(s, &pk, &pp, &mut sink2);
        assert_eq!(sorted_rows(&sink2), reference_join(&build, &probe));
    }

    #[test]
    fn double_hash_with_repeats() {
        let s = Portable::<16>::new();
        let build: Vec<(u32, u32)> = (0..250).map(|i| (i % 50, i)).collect();
        let probe: Vec<(u32, u32)> = (0..100).map(|i| (i % 60, i)).collect();
        let bk: Vec<u32> = build.iter().map(|x| x.0).collect();
        let bp: Vec<u32> = build.iter().map(|x| x.1).collect();
        let pk: Vec<u32> = probe.iter().map(|x| x.0).collect();
        let pp: Vec<u32> = probe.iter().map(|x| x.1).collect();
        let mut t = DoubleHashTable::new(build.len(), 0.5);
        t.build_vertical(s, &bk, &bp);
        let mut sink = JoinSink::with_capacity(0);
        t.probe_vertical(s, &pk, &pp, &mut sink);
        assert_eq!(sorted_rows(&sink), reference_join(&build, &probe));
    }

    #[test]
    #[should_panic(expected = "empty sentinel")]
    fn inserting_sentinel_panics() {
        let mut t = LinearTable::new(4, 0.5);
        t.insert(EMPTY_KEY, 0);
    }

    #[test]
    fn probing_empty_table_finds_nothing() {
        let t = LinearTable::new(10, 0.5);
        let mut sink = JoinSink::with_capacity(0);
        t.probe_scalar(&[1, 2, 3], &[4, 5, 6], &mut sink);
        assert!(sink.is_empty());
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn accelerated_backends_match() {
        let (build, probe) = workload(777, 5000, 9);
        let bk: Vec<u32> = build.iter().map(|x| x.0).collect();
        let bp: Vec<u32> = build.iter().map(|x| x.1).collect();
        let pk: Vec<u32> = probe.iter().map(|x| x.0).collect();
        let pp: Vec<u32> = probe.iter().map(|x| x.1).collect();
        let expected = reference_join(&build, &probe);

        if let Some(s) = rsv_simd::Avx512::new() {
            let mut t = LinearTable::new(build.len(), 0.5);
            t.build_vertical(s, &bk, &bp);
            let mut sink = JoinSink::with_capacity(0);
            t.probe_vertical(s, &pk, &pp, &mut sink);
            assert_eq!(sorted_rows(&sink), expected);

            let mut t = DoubleHashTable::new(build.len(), 0.5);
            t.build_vertical(s, &bk, &bp);
            let mut sink = JoinSink::with_capacity(0);
            t.probe_vertical(s, &pk, &pp, &mut sink);
            assert_eq!(sorted_rows(&sink), expected);
        }
        if let Some(s) = rsv_simd::Avx2::new() {
            let mut t = LinearTable::new(build.len(), 0.5);
            t.build_vertical(s, &bk, &bp);
            let mut sink = JoinSink::with_capacity(0);
            t.probe_vertical(s, &pk, &pp, &mut sink);
            assert_eq!(sorted_rows(&sink), expected);
        }
    }
}

#[cfg(test)]
mod strand_tests {
    use super::*;
    use rsv_simd::Portable;
    use std::collections::HashMap;

    #[test]
    fn interleaved_probe_matches_reference() {
        let mut rng = rsv_data::rng(61);
        let bk = rsv_data::unique_u32(700, &mut rng);
        let bp: Vec<u32> = (0..700).collect();
        let mut t = LinearTable::new(bk.len(), 0.5);
        t.build_scalar(&bk, &bp);

        for np in [0usize, 1, 10, 63, 64, 65, 5000] {
            let pk: Vec<u32> = (0..np)
                .map(|i| {
                    if i % 6 == 5 {
                        bk[i % 700] ^ 1
                    } else {
                        bk[(i * 3) % 700]
                    }
                })
                .collect();
            let pp: Vec<u32> = (0..np as u32).collect();
            let map: HashMap<u32, u32> = bk.iter().copied().zip(bp.iter().copied()).collect();
            let mut expected: Vec<(u32, u32, u32)> = pk
                .iter()
                .zip(&pp)
                .filter_map(|(&k, &p)| map.get(&k).map(|&b| (k, b, p)))
                .collect();
            expected.sort_unstable();

            let s = Portable::<16>::new();
            let mut sink = JoinSink::with_capacity(0);
            t.probe_vertical_interleaved(s, &pk, &pp, &mut sink);
            let mut rows: Vec<_> = sink.iter().collect();
            rows.sort_unstable();
            assert_eq!(rows, expected, "np={np}");

            #[cfg(target_arch = "x86_64")]
            if let Some(s) = rsv_simd::Avx512::new() {
                let mut sink = JoinSink::with_capacity(0);
                t.probe_vertical_interleaved(s, &pk, &pp, &mut sink);
                let mut rows: Vec<_> = sink.iter().collect();
                rows.sort_unstable();
                assert_eq!(rows, expected, "avx512 np={np}");
            }
        }
    }

    #[test]
    fn interleaved_probe_with_duplicates() {
        let bk: Vec<u32> = (0..300).map(|i| i % 60).collect();
        let bp: Vec<u32> = (0..300).collect();
        let mut t = LinearTable::new(bk.len(), 0.5);
        t.build_scalar(&bk, &bp);
        let pk: Vec<u32> = (0..60).collect();
        let pp: Vec<u32> = (100..160).collect();
        let s = Portable::<16>::new();
        let mut sink = JoinSink::with_capacity(0);
        t.probe_vertical_interleaved(s, &pk, &pp, &mut sink);
        assert_eq!(sink.len(), 300);
    }
}

#[cfg(test)]
mod dh_strand_tests {
    use super::*;
    use rsv_simd::Portable;
    use std::collections::HashMap;

    #[test]
    fn dh_interleaved_probe_matches_reference() {
        let mut rng = rsv_data::rng(62);
        let bk: Vec<u32> = {
            // include duplicates
            let uniq = rsv_data::unique_u32(300, &mut rng);
            (0..600).map(|i| uniq[i % 300]).collect()
        };
        let bp: Vec<u32> = (0..600).collect();
        let mut t = DoubleHashTable::new(bk.len(), 0.5);
        t.build_scalar(&bk, &bp);

        for np in [0usize, 1, 17, 64, 3000] {
            let pk: Vec<u32> = (0..np)
                .map(|i| {
                    if i % 4 == 3 {
                        bk[i % 600] ^ 7
                    } else {
                        bk[(i * 3) % 600]
                    }
                })
                .collect();
            let pp: Vec<u32> = (0..np as u32).collect();
            let mut map: HashMap<u32, Vec<u32>> = HashMap::new();
            for (&k, &p) in bk.iter().zip(&bp) {
                map.entry(k).or_default().push(p);
            }
            let mut expected: Vec<(u32, u32, u32)> = pk
                .iter()
                .zip(&pp)
                .flat_map(|(&k, &p)| map.get(&k).into_iter().flatten().map(move |&b| (k, b, p)))
                .collect();
            expected.sort_unstable();

            let s = Portable::<16>::new();
            let mut sink = JoinSink::with_capacity(0);
            t.probe_vertical_interleaved(s, &pk, &pp, &mut sink);
            let mut rows: Vec<_> = sink.iter().collect();
            rows.sort_unstable();
            assert_eq!(rows, expected, "np={np}");

            #[cfg(target_arch = "x86_64")]
            if let Some(s) = rsv_simd::Avx512::new() {
                let mut sink = JoinSink::with_capacity(0);
                t.probe_vertical_interleaved(s, &pk, &pp, &mut sink);
                let mut rows: Vec<_> = sink.iter().collect();
                rows.sort_unstable();
                assert_eq!(rows, expected, "avx512 np={np}");
            }
        }
    }
}
