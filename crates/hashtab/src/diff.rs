//! Differential-harness registration for the hash-table operators.
//!
//! Vectorized probes retire lanes out of input order and vectorized
//! builds may place colliding keys differently than insertion order, so
//! every op canonicalizes to the *multiset* of join triples (or of
//! aggregate groups) — placement is an implementation detail, the result
//! set is not.

use crate::{
    BucketScheme, BucketizedTable, CuckooTable, DoubleHashTable, GroupAggTable, JoinSink,
    LinearTable,
};
use rsv_simd::dispatch;
use rsv_testkit::diff::{canonical_triples, CaseInput, DiffOp, Kernel, Registry};
use rsv_testkit::Rng;

fn sink_bytes(sink: JoinSink) -> Vec<u8> {
    canonical_triples(sink.iter().collect())
}

// --- linear probing ---------------------------------------------------

fn linear_table_scalar(input: &CaseInput) -> LinearTable {
    let mut t = LinearTable::new(input.capacity, input.load_factor);
    t.build_scalar(&input.build_keys, &input.build_pays);
    t
}

fn lp_reference(input: &CaseInput) -> Vec<u8> {
    let t = linear_table_scalar(input);
    let mut sink = JoinSink::default();
    t.probe_scalar(&input.keys, &input.pays, &mut sink);
    sink_bytes(sink)
}

// --- double hashing ---------------------------------------------------

fn dh_table(input: &CaseInput) -> DoubleHashTable {
    let mut t = DoubleHashTable::new(input.capacity, input.load_factor);
    for (&k, &p) in input.build_keys.iter().zip(&input.build_pays) {
        t.insert(k, p);
    }
    t
}

fn dh_reference(input: &CaseInput) -> Vec<u8> {
    let t = dh_table(input);
    let mut sink = JoinSink::default();
    t.probe_scalar(&input.keys, &input.pays, &mut sink);
    sink_bytes(sink)
}

// --- cuckoo -----------------------------------------------------------

/// Cuckoo tables only admit moderate load factors (two-choice hashing),
/// so the case load factor is clamped for this op.
fn cuckoo_lf(input: &CaseInput) -> f64 {
    input.load_factor.min(0.4)
}

/// Build the cuckoo table with the scalar path; `None` if the build
/// cycles (deterministic per case, so the reference and every kernel see
/// the same outcome).
fn cuckoo_table_scalar(input: &CaseInput) -> Option<CuckooTable> {
    let mut t = CuckooTable::new(input.capacity, cuckoo_lf(input));
    t.build_scalar(&input.build_keys, &input.build_pays).ok()?;
    Some(t)
}

/// The canonical bytes for a failed cuckoo build.
const BUILD_FAILED: &[u8] = b"cuckoo-build-failed";

fn cuckoo_reference(input: &CaseInput) -> Vec<u8> {
    match cuckoo_table_scalar(input) {
        None => BUILD_FAILED.to_vec(),
        Some(t) => {
            let mut sink = JoinSink::default();
            t.probe_scalar_branching(&input.keys, &input.pays, &mut sink);
            sink_bytes(sink)
        }
    }
}

/// Probe the *build keys* back out of the table — validates that a
/// vectorized build stored exactly the input multiset, independent of
/// where displacement chains left each tuple.
fn cuckoo_build_reference(input: &CaseInput) -> Vec<u8> {
    match cuckoo_table_scalar(input) {
        None => BUILD_FAILED.to_vec(),
        Some(t) => {
            let mut sink = JoinSink::default();
            t.probe_scalar_branching(&input.build_keys, &input.build_pays, &mut sink);
            sink_bytes(sink)
        }
    }
}

// --- horizontal (bucketized) -----------------------------------------

/// Horizontal probing requires `slots == S::LANES`, so each kernel
/// builds its table with the backend's lane count. The probe result
/// multiset does not depend on the bucket width, so the reference can
/// use a fixed one.
fn bucketized_table(input: &CaseInput, slots: usize) -> BucketizedTable {
    let mut rng = Rng::seed_from_u64(input.seed ^ 0x4855_4332);
    let scheme = if rng.f64() < 0.5 {
        BucketScheme::Linear
    } else {
        BucketScheme::Double
    };
    let mut t = BucketizedTable::new(input.capacity, input.load_factor, slots, scheme);
    t.build(&input.build_keys, &input.build_pays);
    t
}

fn horizontal_reference(input: &CaseInput) -> Vec<u8> {
    let t = bucketized_table(input, 4);
    let mut sink = JoinSink::default();
    t.probe_scalar(&input.keys, &input.pays, &mut sink);
    sink_bytes(sink)
}

// --- grouped aggregation ----------------------------------------------

fn agg_bytes(t: &GroupAggTable) -> Vec<u8> {
    let mut groups: Vec<(u32, u32, u64)> = t.iter().collect();
    groups.sort_unstable();
    let mut out = Vec::with_capacity(16 * groups.len());
    for (k, c, s) in groups {
        out.extend_from_slice(&k.to_le_bytes());
        out.extend_from_slice(&c.to_le_bytes());
        out.extend_from_slice(&s.to_le_bytes());
    }
    out
}

fn agg_reference(input: &CaseInput) -> Vec<u8> {
    let mut t = GroupAggTable::new(input.capacity, input.load_factor);
    t.update_scalar(&input.keys, &input.pays);
    agg_bytes(&t)
}

/// Register the linear-probing, double-hashing, cuckoo, horizontal and
/// grouped-aggregation operators.
pub fn register(r: &mut Registry) {
    r.register(DiffOp {
        name: "lp-probe",
        reference: lp_reference,
        kernels: vec![
            Kernel {
                name: "build-vertical+probe-scalar",
                threaded: false,
                run: |b, _, i| {
                    let mut t = LinearTable::new(i.capacity, i.load_factor);
                    dispatch!(b, s => { t.build_vertical(s, &i.build_keys, &i.build_pays) });
                    let mut sink = JoinSink::default();
                    t.probe_scalar(&i.keys, &i.pays, &mut sink);
                    sink_bytes(sink)
                },
            },
            Kernel {
                name: "probe-vertical",
                threaded: false,
                run: |b, _, i| {
                    let t = linear_table_scalar(i);
                    let mut sink = JoinSink::default();
                    dispatch!(b, s => { t.probe_vertical(s, &i.keys, &i.pays, &mut sink) });
                    sink_bytes(sink)
                },
            },
            Kernel {
                name: "probe-vertical-interleaved",
                threaded: false,
                run: |b, _, i| {
                    let t = linear_table_scalar(i);
                    let mut sink = JoinSink::default();
                    dispatch!(b, s => { t.probe_vertical_interleaved(s, &i.keys, &i.pays, &mut sink) });
                    sink_bytes(sink)
                },
            },
            Kernel {
                name: "build-vertical+probe-vertical",
                threaded: false,
                run: |b, _, i| {
                    let mut t = LinearTable::new(i.capacity, i.load_factor);
                    let mut sink = JoinSink::default();
                    dispatch!(b, s => {
                        t.build_vertical(s, &i.build_keys, &i.build_pays);
                        t.probe_vertical(s, &i.keys, &i.pays, &mut sink);
                    });
                    sink_bytes(sink)
                },
            },
        ],
    });
    r.register(DiffOp {
        name: "dh-probe",
        reference: dh_reference,
        kernels: vec![Kernel {
            name: "probe-vertical",
            threaded: false,
            run: |b, _, i| {
                let t = dh_table(i);
                let mut sink = JoinSink::default();
                dispatch!(b, s => { t.probe_vertical(s, &i.keys, &i.pays, &mut sink) });
                sink_bytes(sink)
            },
        }],
    });
    r.register(DiffOp {
        name: "cuckoo-probe",
        reference: cuckoo_reference,
        kernels: vec![
            Kernel {
                name: "probe-scalar-branchless",
                threaded: false,
                run: |_, _, i| match cuckoo_table_scalar(i) {
                    None => BUILD_FAILED.to_vec(),
                    Some(t) => {
                        let mut sink = JoinSink::default();
                        t.probe_scalar_branchless(&i.keys, &i.pays, &mut sink);
                        sink_bytes(sink)
                    }
                },
            },
            Kernel {
                name: "probe-vertical-blend",
                threaded: false,
                run: |b, _, i| match cuckoo_table_scalar(i) {
                    None => BUILD_FAILED.to_vec(),
                    Some(t) => {
                        let mut sink = JoinSink::default();
                        dispatch!(b, s => { t.probe_vertical_blend(s, &i.keys, &i.pays, &mut sink) });
                        sink_bytes(sink)
                    }
                },
            },
            Kernel {
                name: "probe-vertical-select",
                threaded: false,
                run: |b, _, i| match cuckoo_table_scalar(i) {
                    None => BUILD_FAILED.to_vec(),
                    Some(t) => {
                        let mut sink = JoinSink::default();
                        dispatch!(b, s => { t.probe_vertical_select(s, &i.keys, &i.pays, &mut sink) });
                        sink_bytes(sink)
                    }
                },
            },
        ],
    });
    r.register(DiffOp {
        name: "cuckoo-build",
        reference: cuckoo_build_reference,
        kernels: vec![Kernel {
            name: "build-vertical",
            threaded: false,
            run: |b, _, i| {
                let mut t = CuckooTable::new(i.capacity, cuckoo_lf(i));
                let built =
                    dispatch!(b, s => { t.build_vertical(s, &i.build_keys, &i.build_pays).is_ok() });
                if !built {
                    return BUILD_FAILED.to_vec();
                }
                let mut sink = JoinSink::default();
                t.probe_scalar_branching(&i.build_keys, &i.build_pays, &mut sink);
                sink_bytes(sink)
            },
        }],
    });
    r.register(DiffOp {
        name: "horizontal-probe",
        reference: horizontal_reference,
        kernels: vec![Kernel {
            name: "probe-horizontal",
            threaded: false,
            run: |b, _, i| {
                let t = bucketized_table(i, b.lanes());
                let mut sink = JoinSink::default();
                dispatch!(b, s => { t.probe_horizontal(s, &i.keys, &i.pays, &mut sink) });
                sink_bytes(sink)
            },
        }],
    });
    r.register(DiffOp {
        name: "agg-group",
        reference: agg_reference,
        kernels: vec![Kernel {
            name: "update-vector",
            threaded: false,
            run: |b, _, i| {
                let mut t = GroupAggTable::new(i.capacity, i.load_factor);
                dispatch!(b, s => { t.update_vector(s, &i.keys, &i.pays) });
                agg_bytes(&t)
            },
        }],
    });
}
