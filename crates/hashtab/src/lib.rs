//! Hash tables for joins and aggregation (paper Section 5).
//!
//! Three hashing schemes — **linear probing** (§5.1), **double hashing**
//! (§5.2) and **cuckoo hashing** (§5.3) — each with:
//!
//! * a **scalar** baseline (Algorithms 4 and 6),
//! * the prior state-of-the-art **horizontal** vectorization (bucketized
//!   tables: one probe key compared against `W` table keys, Ross \[30\]),
//! * the paper's **vertical** vectorization (a *different input key per
//!   vector lane*, Algorithms 5, 7, 8, 9, 10), which keeps every SIMD lane
//!   busy by selectively reloading finished lanes from the input
//!   ("out-of-order" probing).
//!
//! Tables store tuples in the interleaved key/payload layout so one 64-bit
//! gather fetches a whole bucket (paper §5.1 "fewer wider gathers",
//! Appendix E).
//!
//! # Key domain
//!
//! `u32::MAX` is reserved as the *empty bucket* sentinel ([`EMPTY_KEY`]);
//! inserting it panics in debug builds and is rejected by `try_insert`.

#![deny(missing_docs)]
#![warn(clippy::all)]
// Robustness: this crate sits on every query's hot path — recoverable
// conditions (full tables, exhausted rehashes) must surface as typed
// errors, not panics. Genuinely infallible sites carry a fn-level allow.
#![warn(clippy::unwrap_used, clippy::expect_used)]

mod agg;
mod cuckoo;
pub mod diff;
mod fallback;
mod horizontal;
mod linear;
mod sink;

pub use agg::{AggTableFull, GroupAggTable};
pub use cuckoo::{CuckooBuildError, CuckooTable};
pub use fallback::FallbackTable;
pub use horizontal::{BucketScheme, BucketizedCuckoo, BucketizedTable};
pub use linear::{
    dh_probe_vertical_strands_raw, lp_build_scalar_raw, lp_build_vertical_raw, lp_insert_raw,
    lp_probe_one_raw, lp_probe_scalar_raw, lp_probe_vertical_raw, lp_probe_vertical_strands_raw,
    DoubleHashTable, LinearTable,
};
pub use sink::JoinSink;

/// The reserved key marking an empty bucket.
pub const EMPTY_KEY: u32 = u32::MAX;

/// An empty interleaved bucket: [`EMPTY_KEY`] with a zero payload.
pub const EMPTY_PAIR: u64 = EMPTY_KEY as u64;

/// Multiplicative hashing (paper §5): `h = mulhi(k · factor, buckets)`.
///
/// The factor must be odd so `k · factor (mod 2³²)` permutes the key space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MulHash {
    factor: u32,
}

impl MulHash {
    /// Fixed factors giving independent hash functions; `MulHash::nth(0)`
    /// and `MulHash::nth(1)` are the paper's `f1`/`f2`.
    const FACTORS: [u32; 5] = [
        0x9E37_79B1,
        0x85EB_CA77,
        0xC2B2_AE3D,
        0x27D4_EB2F,
        0x1656_67B1,
    ];

    /// The `i`-th predefined hash function (`i < 5`).
    pub fn nth(i: usize) -> Self {
        MulHash {
            factor: Self::FACTORS[i],
        }
    }

    /// A hash function with a caller-chosen factor (forced odd).
    pub fn with_factor(factor: u32) -> Self {
        MulHash { factor: factor | 1 }
    }

    /// The multiplier.
    #[inline(always)]
    pub fn factor(self) -> u32 {
        self.factor
    }

    /// Bucket of `key` in a table of `buckets` buckets.
    #[inline(always)]
    pub fn bucket(self, key: u32, buckets: usize) -> usize {
        debug_assert!(buckets > 0 && buckets <= u32::MAX as usize);
        ((u64::from(key.wrapping_mul(self.factor)) * buckets as u64) >> 32) as usize
    }
}

/// Round `n` up to the next prime (used by double hashing so the probe
/// sequence `h1 + i·(1 + h2)` cannot cycle before visiting every bucket).
pub fn next_prime(n: usize) -> usize {
    fn is_prime(x: usize) -> bool {
        if x < 2 {
            return false;
        }
        if x.is_multiple_of(2) {
            return x == 2;
        }
        let mut d = 3usize;
        while d * d <= x {
            if x.is_multiple_of(d) {
                return false;
            }
            d += 2;
        }
        true
    }
    let mut x = n.max(2);
    while !is_prime(x) {
        x += 1;
    }
    x
}

/// Number of buckets for `capacity` tuples at `load_factor` occupancy.
pub(crate) fn bucket_count(capacity: usize, load_factor: f64) -> usize {
    assert!(
        load_factor > 0.0 && load_factor < 1.0,
        "load factor must be in (0, 1)"
    );
    (((capacity.max(1)) as f64 / load_factor).ceil() as usize).max(capacity + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mulhash_spreads_uniformly() {
        let h = MulHash::nth(0);
        let buckets = 1024;
        let mut counts = vec![0usize; buckets];
        for k in 0..100_000u32 {
            counts[h.bucket(k, buckets)] += 1;
        }
        let expected = 100_000 / buckets;
        assert!(counts.iter().all(|&c| c > expected / 2 && c < expected * 2));
    }

    #[test]
    fn mulhash_stays_in_range() {
        let h = MulHash::with_factor(0xDEAD_BEEE); // even input forced odd
        assert_eq!(h.factor() % 2, 1);
        for buckets in [1usize, 2, 7, 1 << 20] {
            for k in [0u32, 1, u32::MAX, 0x8000_0000] {
                assert!(h.bucket(k, buckets) < buckets);
            }
        }
    }

    #[test]
    fn next_prime_works() {
        assert_eq!(next_prime(0), 2);
        assert_eq!(next_prime(2), 2);
        assert_eq!(next_prime(4), 5);
        assert_eq!(next_prime(90), 97);
        let p = next_prime(1 << 20);
        assert!(p >= 1 << 20);
        // verify primality naively
        assert!((2..1000).all(|d| !p.is_multiple_of(d) || p == d));
    }

    #[test]
    fn bucket_count_leaves_free_space() {
        assert!(bucket_count(100, 0.5) >= 200);
        assert!(bucket_count(1, 0.99) >= 2);
        assert!(bucket_count(0, 0.5) >= 1);
    }
}
