//! Vectorized group-by aggregation (paper §5: "in group-by aggregation
//! [hash tables] are used either to map tuples to unique group ids or to
//! insert and update partial aggregates").
//!
//! [`GroupAggTable`] maintains per-group `COUNT(*)` and a 64-bit
//! `SUM(value)` in an open-addressing table with linear probing. The
//! vertical vectorized update path processes a different input tuple per
//! lane; lanes that would read-modify-write the same bucket in one vector
//! are *deferred* to the next iteration (the same first-occurrence rule the
//! paper's unstable hash shuffling uses), so no increment is ever lost.

use rsv_simd::{MaskLike, Simd};

use crate::{bucket_count, MulHash, EMPTY_KEY};

/// Maximum vector width any backend exposes (for stack lane buffers).
const MAX_LANES: usize = 32;

/// The error returned by [`GroupAggTable::try_update`] when inserting a
/// new group would saturate the table (no empty bucket would remain, so a
/// later probe for a missing key could never terminate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggTableFull;

impl std::fmt::Display for AggTableFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "aggregation table is full")
    }
}

impl std::error::Error for AggTableFull {}

/// An aggregation hash table: per group key, `COUNT(*)` and `SUM(value)`.
///
/// Keys live in their own array; counts and 64-bit sums are stored as two
/// parallel 32-bit arrays (`sum_lo`, `sum_hi`) so the vectorized path can
/// do the 64-bit addition with 32-bit lanes and an explicit carry.
///
/// # Saturation
///
/// Linear probing needs at least one empty bucket to terminate a probe
/// for a missing key, so the table never fills past `buckets − 1` groups.
/// [`GroupAggTable::update`] (and the vectorized kernel) *grow* the table
/// — doubling the bucket array and rehashing — before that point is
/// reached; [`GroupAggTable::try_update`] instead reports saturation as
/// [`AggTableFull`] for callers that sized the table deliberately.
#[derive(Debug, Clone)]
pub struct GroupAggTable {
    keys: Vec<u32>,
    counts: Vec<u32>,
    sum_lo: Vec<u32>,
    sum_hi: Vec<u32>,
    hash: MulHash,
    groups: usize,
}

impl GroupAggTable {
    /// A table for up to `capacity` distinct groups at `load_factor`
    /// occupancy.
    pub fn new(capacity: usize, load_factor: f64) -> Self {
        let buckets = bucket_count(capacity, load_factor);
        GroupAggTable {
            keys: vec![EMPTY_KEY; buckets],
            counts: vec![0; buckets],
            sum_lo: vec![0; buckets],
            sum_hi: vec![0; buckets],
            hash: MulHash::nth(0),
            groups: 0,
        }
    }

    /// Number of distinct groups seen so far.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.keys.len()
    }

    /// Update one tuple with scalar code, growing the table if a new
    /// group would otherwise saturate it.
    pub fn update(&mut self, key: u32, value: u32) {
        while self.try_update(key, value).is_err() {
            self.grow();
        }
    }

    /// Update one tuple, refusing (rather than growing) when a new group
    /// would leave no empty bucket.
    ///
    /// The probe loop always terminates: the table keeps the invariant
    /// `groups ≤ buckets − 1` (at least one empty bucket), and a probe
    /// that would break it returns [`AggTableFull`] *before* inserting.
    ///
    /// # Errors
    /// [`AggTableFull`] if `key` is a new group and `groups + 1` would
    /// reach the bucket count. Existing groups always update.
    pub fn try_update(&mut self, key: u32, value: u32) -> Result<(), AggTableFull> {
        assert_ne!(
            key, EMPTY_KEY,
            "key {key:#x} is the reserved empty sentinel"
        );
        let t = self.keys.len();
        let mut h = self.hash.bucket(key, t);
        loop {
            let k = self.keys[h];
            if k == key {
                break;
            }
            if k == EMPTY_KEY {
                if self.groups + 1 >= t {
                    return Err(AggTableFull);
                }
                self.keys[h] = key;
                self.groups += 1;
                break;
            }
            h += 1;
            if h == t {
                h = 0;
            }
        }
        self.counts[h] += 1;
        let (lo, carry) = self.sum_lo[h].overflowing_add(value);
        self.sum_lo[h] = lo;
        self.sum_hi[h] += u32::from(carry);
        Ok(())
    }

    /// Double the bucket array and rehash every group.
    fn grow(&mut self) {
        let new_buckets = (self.keys.len() * 2).max(4);
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY_KEY; new_buckets]);
        let old_counts = std::mem::replace(&mut self.counts, vec![0; new_buckets]);
        let old_lo = std::mem::replace(&mut self.sum_lo, vec![0; new_buckets]);
        let old_hi = std::mem::replace(&mut self.sum_hi, vec![0; new_buckets]);
        for (i, &k) in old_keys.iter().enumerate() {
            if k == EMPTY_KEY {
                continue;
            }
            let mut h = self.hash.bucket(k, new_buckets);
            while self.keys[h] != EMPTY_KEY {
                h += 1;
                if h == new_buckets {
                    h = 0;
                }
            }
            self.keys[h] = k;
            self.counts[h] = old_counts[i];
            self.sum_lo[h] = old_lo[i];
            self.sum_hi[h] = old_hi[i];
        }
    }

    /// Aggregate whole columns with scalar code.
    pub fn update_scalar(&mut self, keys: &[u32], values: &[u32]) {
        assert_eq!(keys.len(), values.len(), "column length mismatch");
        for (&k, &v) in keys.iter().zip(values) {
            self.update(k, v);
        }
    }

    /// Aggregate whole columns with the vertical vectorized kernel.
    ///
    /// Per iteration: hash a vector of keys, gather their buckets, insert
    /// new groups (with the Algorithm 7 scatter/gather-back conflict
    /// check), and read-modify-write count and sum for the lanes that are
    /// the *first* occurrence of their bucket in this vector; all other
    /// lanes retry next iteration.
    pub fn update_vector<S: Simd>(&mut self, s: S, keys: &[u32], values: &[u32]) {
        assert_eq!(keys.len(), values.len(), "column length mismatch");
        s.vectorize(
            #[inline(always)]
            || self.update_vector_impl(s, keys, values),
        );
    }

    fn update_vector_impl<S: Simd>(&mut self, s: S, keys: &[u32], values: &[u32]) {
        let w = S::LANES;
        let n = keys.len();
        let mut t = self.keys.len();
        debug_assert!(!keys.contains(&EMPTY_KEY), "empty-sentinel key in input");
        let f = s.splat(self.hash.factor());
        let mut tn = s.splat(t as u32);
        let empty = s.splat(EMPTY_KEY);
        let one = s.splat(1);
        let lane_ids = s.iota();
        let mut k = s.zero();
        let mut v = s.zero();
        let mut o = s.zero();
        let mut m = S::M::all(); // lanes to refill
        let mut i = 0usize;
        while i + w <= n {
            // Grow *between* vectors when a full vector of new groups
            // could saturate the table (`groups + W + 1 > buckets` would
            // break the one-empty-bucket probe-termination invariant).
            // In-flight lanes have not updated anything yet, so resetting
            // their probe offsets and re-probing the rehashed table is
            // safe.
            while self.groups + w + 1 >= t {
                self.grow();
                t = self.keys.len();
                tn = s.splat(t as u32);
                o = s.zero();
            }
            k = s.selective_load(k, m, &keys[i..]);
            v = s.selective_load(v, m, &values[i..]);
            i += m.count();
            let mut h = s.add(s.mulhi(s.mullo(k, f), tn), o);
            let over = s.cmpge(h, tn);
            h = s.blend(over, s.sub(h, tn), h);
            let tk = s.gather(&self.keys, h);
            // Lanes whose bucket is empty try to claim it for a new group.
            let empt = s.cmpeq(tk, empty);
            if empt.any() {
                s.scatter_masked(&mut self.keys, empt, h, lane_ids);
                let back = s.gather_masked(lane_ids, empt, &self.keys, h);
                let won = empt.and(s.cmpeq(back, lane_ids));
                s.scatter_masked(&mut self.keys, won, h, k);
                self.groups += won.count();
                // the loop-top grow guard keeps at least one empty bucket
                debug_assert!(self.groups + 1 < t, "saturation guard failed");
                // losers must retry (their o stays; bucket now occupied)
            }
            // Re-read bucket keys (claims may have just landed).
            let tk = s.gather(&self.keys, h);
            let found = s.cmpeq(tk, k);
            // Defer all but the first lane touching each bucket: the
            // read-modify-write below would otherwise lose increments.
            let first = s.cmpeq(s.conflict(h), s.zero());
            let upd = found.and(first);
            if upd.any() {
                let c = s.gather_masked(s.zero(), upd, &self.counts, h);
                s.scatter_masked(&mut self.counts, upd, h, s.add(c, one));
                let lo = s.gather_masked(s.zero(), upd, &self.sum_lo, h);
                let new_lo = s.add(lo, v);
                s.scatter_masked(&mut self.sum_lo, upd, h, new_lo);
                let carry = s.cmplt(new_lo, lo); // wrapped => carry
                let carry_upd = carry.and(upd);
                if carry_upd.any() {
                    let hi = s.gather_masked(s.zero(), carry_upd, &self.sum_hi, h);
                    s.scatter_masked(&mut self.sum_hi, carry_upd, h, s.add(hi, one));
                }
            }
            // Lanes that found a different, occupied key probe onward.
            let miss = found.not().and(empt.not());
            o = s.blend(miss, s.add(o, one), s.zero());
            // Refill only the lanes that completed their update.
            m = upd;
        }
        // Drain in-flight lanes and the tail with scalar code.
        let mut ka = [0u32; MAX_LANES];
        let mut va = [0u32; MAX_LANES];
        s.store(k, &mut ka[..w]);
        s.store(v, &mut va[..w]);
        for lane in m.not().iter_set() {
            self.update(ka[lane], va[lane]);
        }
        for idx in i..n {
            self.update(keys[idx], values[idx]);
        }
    }

    /// Iterate over `(group key, count, sum)` results.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, u64)> + '_ {
        self.keys
            .iter()
            .enumerate()
            .filter(|&(_h, &k)| k != EMPTY_KEY)
            .map(|(h, &k)| {
                (
                    k,
                    self.counts[h],
                    u64::from(self.sum_lo[h]) | (u64::from(self.sum_hi[h]) << 32),
                )
            })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use rsv_simd::Portable;
    use std::collections::HashMap;

    fn reference(keys: &[u32], values: &[u32]) -> HashMap<u32, (u32, u64)> {
        let mut m: HashMap<u32, (u32, u64)> = HashMap::new();
        for (&k, &v) in keys.iter().zip(values) {
            let e = m.entry(k).or_insert((0, 0));
            e.0 += 1;
            e.1 += u64::from(v);
        }
        m
    }

    fn collect(t: &GroupAggTable) -> HashMap<u32, (u32, u64)> {
        t.iter().map(|(k, c, s)| (k, (c, s))).collect()
    }

    #[test]
    fn scalar_matches_reference() {
        let mut rng = rsv_data::rng(71);
        let keys: Vec<u32> = rsv_data::uniform_u32(5000, &mut rng)
            .iter()
            .map(|k| k % 97)
            .collect();
        let values = rsv_data::uniform_u32(5000, &mut rng);
        let mut t = GroupAggTable::new(128, 0.5);
        t.update_scalar(&keys, &values);
        assert_eq!(collect(&t), reference(&keys, &values));
        assert_eq!(t.groups(), 97);
    }

    #[test]
    fn vector_matches_reference() {
        let s = Portable::<16>::new();
        let mut rng = rsv_data::rng(72);
        for (n, domain) in [(5000usize, 97u32), (1000, 3), (64, 64), (10_000, 5000)] {
            let keys: Vec<u32> = rsv_data::uniform_u32(n, &mut rng)
                .iter()
                .map(|k| k % domain)
                .collect();
            let values = rsv_data::uniform_u32(n, &mut rng);
            let mut t = GroupAggTable::new(domain as usize, 0.5);
            t.update_vector(s, &keys, &values);
            assert_eq!(
                collect(&t),
                reference(&keys, &values),
                "n={n} domain={domain}"
            );
        }
    }

    #[test]
    fn vector_sum_carries_into_high_word() {
        let s = Portable::<16>::new();
        // many large values into one group: sum exceeds 2^32
        let keys = vec![42u32; 4096];
        let values = vec![u32::MAX - 3; 4096];
        let mut t = GroupAggTable::new(4, 0.5);
        t.update_vector(s, &keys, &values);
        let rows: Vec<_> = t.iter().collect();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0], (42, 4096, 4096u64 * u64::from(u32::MAX - 3)));
    }

    #[test]
    fn incremental_updates_accumulate() {
        let s = Portable::<8>::new();
        let mut t = GroupAggTable::new(16, 0.5);
        t.update_vector(s, &[1, 2, 1, 2, 1, 2, 1, 2], &[10, 1, 10, 1, 10, 1, 10, 1]);
        t.update_scalar(&[1, 3], &[5, 7]);
        let m = collect(&t);
        assert_eq!(m[&1], (5, 45));
        assert_eq!(m[&2], (4, 4));
        assert_eq!(m[&3], (1, 7));
    }

    /// Regression: pre-fix, a full table died on an `assert!` deep in the
    /// probe loop (and with the assert removed the probe would spin
    /// forever). With `groups == buckets − 1` the scalar and vector paths
    /// must terminate — growing for `update`, `Err` for `try_update`.
    #[test]
    fn saturated_table_updates_terminate() {
        let mut t = GroupAggTable::new(6, 0.9);
        let buckets = t.buckets();
        // fill to exactly buckets − 1 groups (one empty bucket left)
        for k in 0..buckets as u32 - 1 {
            t.update(k, 1);
        }
        assert_eq!(t.groups(), buckets - 1);
        assert_eq!(t.buckets(), buckets, "filling must not grow yet");
        // an existing group still updates without growing
        assert_eq!(t.try_update(0, 1), Ok(()));
        // a new group is refused by try_update (terminates, no insert) …
        assert_eq!(t.try_update(buckets as u32, 1), Err(AggTableFull));
        assert_eq!(t.groups(), buckets - 1);
        // … and absorbed by update via growth
        t.update(buckets as u32, 7);
        assert!(t.buckets() > buckets, "update must grow at saturation");
        assert_eq!(t.groups(), buckets);
        let m = collect(&t);
        assert_eq!(m[&0], (2, 2));
        assert_eq!(m[&(buckets as u32)], (1, 7));
    }

    #[test]
    fn vector_path_grows_at_saturation() {
        let s = Portable::<16>::new();
        // 4-bucket table, 300 distinct keys: the kernel must grow many
        // times and still aggregate exactly.
        let keys: Vec<u32> = (0..300u32).flat_map(|k| [k, k]).collect();
        let values: Vec<u32> = (0..600u32).collect();
        let mut t = GroupAggTable::new(2, 0.5);
        t.update_vector(s, &keys, &values);
        assert_eq!(collect(&t), reference(&keys, &values));
        assert_eq!(t.groups(), 300);
    }

    #[test]
    fn growth_preserves_aggregates() {
        let mut rng = rsv_data::rng(74);
        let keys: Vec<u32> = rsv_data::uniform_u32(3000, &mut rng)
            .iter()
            .map(|k| k % 512)
            .collect();
        let values = rsv_data::uniform_u32(3000, &mut rng);
        // deliberately undersized: starts at ~4 buckets
        let mut t = GroupAggTable::new(2, 0.5);
        t.update_scalar(&keys, &values);
        assert_eq!(collect(&t), reference(&keys, &values));
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn accelerated_backends_match() {
        let mut rng = rsv_data::rng(73);
        let keys: Vec<u32> = rsv_data::uniform_u32(20_000, &mut rng)
            .iter()
            .map(|k| k % 1009)
            .collect();
        let values = rsv_data::uniform_u32(20_000, &mut rng);
        let expected = reference(&keys, &values);
        if let Some(s) = rsv_simd::Avx512::new() {
            let mut t = GroupAggTable::new(1009, 0.5);
            t.update_vector(s, &keys, &values);
            assert_eq!(collect(&t), expected);
        }
        if let Some(s) = rsv_simd::Avx2::new() {
            let mut t = GroupAggTable::new(1009, 0.5);
            t.update_vector(s, &keys, &values);
            assert_eq!(collect(&t), expected);
        }
    }
}
