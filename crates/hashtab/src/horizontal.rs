//! Horizontal (bucketized) hash-table vectorization — the prior state of
//! the art the paper compares against (Ross \[30\]).
//!
//! Buckets hold `W` keys; probing compares **one** input key against a
//! whole bucket with a single vector comparison. The paper's argument
//! (§5): when the expected number of probed buckets per key is below `W`,
//! horizontal vectorization wastes lanes and cannot use wider registers.

use rsv_simd::{MaskLike, Simd};

use crate::sink::JoinSink;
use crate::{bucket_count, next_prime, CuckooBuildError, MulHash, EMPTY_KEY};

/// Probing scheme for [`BucketizedTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BucketScheme {
    /// Overflow to the next bucket (bucketized linear probing).
    Linear,
    /// Overflow by a key-dependent step (bucketized double hashing).
    Double,
}

/// A hash table whose buckets hold `slots` keys in one contiguous vector,
/// with the matching payloads alongside (split layout so one vector load
/// covers a whole bucket's keys).
#[derive(Debug, Clone)]
pub struct BucketizedTable {
    keys: Vec<u32>,
    pays: Vec<u32>,
    nbuckets: usize,
    slots: usize,
    h1: MulHash,
    h2: MulHash,
    scheme: BucketScheme,
    len: usize,
}

impl BucketizedTable {
    /// A table of `capacity` tuples at `load_factor` occupancy with
    /// `slots` keys per bucket (use the probing backend's lane count).
    pub fn new(capacity: usize, load_factor: f64, slots: usize, scheme: BucketScheme) -> Self {
        assert!(
            slots.is_power_of_two() && slots >= 2,
            "slots must be a power of two >= 2"
        );
        let mut nbuckets = bucket_count(capacity, load_factor).div_ceil(slots).max(2);
        if scheme == BucketScheme::Double {
            nbuckets = next_prime(nbuckets);
        }
        BucketizedTable {
            keys: vec![EMPTY_KEY; nbuckets * slots],
            pays: vec![0; nbuckets * slots],
            nbuckets,
            slots,
            h1: MulHash::nth(0),
            h2: MulHash::nth(1),
            scheme,
            len: 0,
        }
    }

    /// Keys per bucket.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.nbuckets
    }

    /// Number of inserted tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no tuples were inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size of the key and payload arrays in bytes.
    pub fn size_bytes(&self) -> usize {
        self.keys.len() * 4 + self.pays.len() * 4
    }

    #[inline(always)]
    fn next_bucket(&self, key: u32, h: usize) -> usize {
        let step = match self.scheme {
            BucketScheme::Linear => 1,
            BucketScheme::Double => 1 + self.h2.bucket(key, self.nbuckets - 1),
        };
        let nh = h + step;
        if nh >= self.nbuckets {
            nh - self.nbuckets
        } else {
            nh
        }
    }

    /// Insert one tuple into the first free slot along its bucket chain.
    pub fn insert(&mut self, key: u32, pay: u32) {
        assert_ne!(
            key, EMPTY_KEY,
            "key {key:#x} is the reserved empty sentinel"
        );
        assert!(self.len < self.keys.len(), "hash table is full");
        let mut h = self.h1.bucket(key, self.nbuckets);
        loop {
            let base = h * self.slots;
            for s in 0..self.slots {
                if self.keys[base + s] == EMPTY_KEY {
                    self.keys[base + s] = key;
                    self.pays[base + s] = pay;
                    self.len += 1;
                    return;
                }
            }
            h = self.next_bucket(key, h);
        }
    }

    /// Build from columns.
    pub fn build(&mut self, keys: &[u32], pays: &[u32]) {
        assert_eq!(keys.len(), pays.len(), "column length mismatch");
        for (&k, &p) in keys.iter().zip(pays) {
            self.insert(k, p);
        }
    }

    /// Horizontally vectorized probe: for each probe key, one vector
    /// comparison covers a whole bucket; overflow chains continue until a
    /// bucket with an empty slot is seen.
    ///
    /// # Panics
    /// If `S::LANES != self.slots()`.
    pub fn probe_horizontal<S: Simd>(&self, s: S, keys: &[u32], pays: &[u32], out: &mut JoinSink) {
        assert_eq!(keys.len(), pays.len(), "column length mismatch");
        assert_eq!(
            S::LANES,
            self.slots,
            "bucket width must equal the backend lane count"
        );
        s.vectorize(
            #[inline(always)]
            || self.probe_horizontal_impl(s, keys, pays, out),
        );
    }

    #[inline(always)]
    fn probe_horizontal_impl<S: Simd>(&self, s: S, keys: &[u32], pays: &[u32], out: &mut JoinSink) {
        let empty = s.splat(EMPTY_KEY);
        for (&k, &p) in keys.iter().zip(pays) {
            let kv = s.splat(k);
            let mut h = self.h1.bucket(k, self.nbuckets);
            loop {
                let base = h * self.slots;
                let bucket = s.load(&self.keys[base..]);
                let hit = s.cmpeq(bucket, kv);
                for lane in hit.iter_set() {
                    out.push(k, self.pays[base + lane], p);
                }
                if s.cmpeq(bucket, empty).any() {
                    break;
                }
                h = self.next_bucket(k, h);
            }
        }
    }

    /// Scalar probe over the same bucketized layout (for comparison).
    pub fn probe_scalar(&self, keys: &[u32], pays: &[u32], out: &mut JoinSink) {
        assert_eq!(keys.len(), pays.len(), "column length mismatch");
        for (&k, &p) in keys.iter().zip(pays) {
            let mut h = self.h1.bucket(k, self.nbuckets);
            'chain: loop {
                let base = h * self.slots;
                for slot in 0..self.slots {
                    let tk = self.keys[base + slot];
                    if tk == EMPTY_KEY {
                        break 'chain;
                    }
                    if tk == k {
                        out.push(k, self.pays[base + slot], p);
                    }
                }
                h = self.next_bucket(k, h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use rsv_simd::Portable;
    use std::collections::HashMap;

    fn reference(bk: &[u32], bp: &[u32], pk: &[u32], pp: &[u32]) -> Vec<(u32, u32, u32)> {
        let mut map: HashMap<u32, Vec<u32>> = HashMap::new();
        for (&k, &p) in bk.iter().zip(bp) {
            map.entry(k).or_default().push(p);
        }
        let mut out = Vec::new();
        for (&k, &p) in pk.iter().zip(pp) {
            if let Some(v) = map.get(&k) {
                for &b in v {
                    out.push((k, b, p));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn sorted_rows(sink: &JoinSink) -> Vec<(u32, u32, u32)> {
        let mut rows: Vec<_> = sink.iter().collect();
        rows.sort_unstable();
        rows
    }

    #[test]
    fn horizontal_matches_reference_linear_and_double() {
        let s = Portable::<16>::new();
        let mut rng = rsv_data::rng(41);
        let bk = rsv_data::unique_u32(500, &mut rng);
        let bp: Vec<u32> = (0..500).collect();
        let pk: Vec<u32> = (0..3000)
            .map(|i| bk[(i * 11) % 500] ^ ((i % 7 == 6) as u32))
            .collect();
        let pp: Vec<u32> = (0..3000).collect();
        let expected = reference(&bk, &bp, &pk, &pp);

        for scheme in [BucketScheme::Linear, BucketScheme::Double] {
            let mut t = BucketizedTable::new(bk.len(), 0.5, 16, scheme);
            t.build(&bk, &bp);
            assert_eq!(t.len(), bk.len());

            let mut sink = JoinSink::with_capacity(0);
            t.probe_horizontal(s, &pk, &pp, &mut sink);
            assert_eq!(sorted_rows(&sink), expected, "{scheme:?}");

            let mut sink = JoinSink::with_capacity(0);
            t.probe_scalar(&pk, &pp, &mut sink);
            assert_eq!(sorted_rows(&sink), expected, "{scheme:?} scalar");
        }
    }

    #[test]
    fn duplicate_keys_within_and_across_buckets() {
        let s = Portable::<8>::new();
        // 20 copies of each of 3 keys: chains must overflow buckets of 8
        let bk: Vec<u32> = (0..60).map(|i| [7u32, 13, 29][i % 3]).collect();
        let bp: Vec<u32> = (0..60).collect();
        let pk = vec![7u32, 13, 29, 99];
        let pp = vec![0u32, 1, 2, 3];
        let mut t = BucketizedTable::new(bk.len(), 0.5, 8, BucketScheme::Linear);
        t.build(&bk, &bp);
        let mut sink = JoinSink::with_capacity(0);
        t.probe_horizontal(s, &pk, &pp, &mut sink);
        assert_eq!(sink.len(), 60);
        assert_eq!(sorted_rows(&sink), reference(&bk, &bp, &pk, &pp));
    }

    #[test]
    #[should_panic(expected = "lane count")]
    fn probe_with_wrong_width_panics() {
        let t = BucketizedTable::new(10, 0.5, 16, BucketScheme::Linear);
        let s = Portable::<8>::new();
        let mut sink = JoinSink::with_capacity(0);
        t.probe_horizontal(s, &[1], &[2], &mut sink);
    }
}

/// A bucketized **cuckoo** table (Ross \[30\]): two hash functions, each
/// key stored in one of two candidate buckets of `slots` keys; horizontal
/// probing compares the probe key against both buckets with two vector
/// comparisons — the exact prior-art design Figure 7 benchmarks.
#[derive(Debug, Clone)]
pub struct BucketizedCuckoo {
    keys: Vec<u32>,
    pays: Vec<u32>,
    nbuckets: usize,
    slots: usize,
    h1: MulHash,
    h2: MulHash,
    len: usize,
    max_kicks: usize,
}

impl BucketizedCuckoo {
    /// A table of `capacity` tuples at `load_factor` occupancy with
    /// `slots` keys per bucket. Bucketized cuckoo supports much higher
    /// load factors than 1-slot cuckoo; 0.8 is safe for `slots >= 4`.
    pub fn new(capacity: usize, load_factor: f64, slots: usize) -> Self {
        assert!(
            slots.is_power_of_two() && slots >= 2,
            "slots must be a power of two >= 2"
        );
        let nbuckets = crate::bucket_count(capacity, load_factor)
            .div_ceil(slots)
            .max(2);
        BucketizedCuckoo {
            keys: vec![EMPTY_KEY; nbuckets * slots],
            pays: vec![0; nbuckets * slots],
            nbuckets,
            slots,
            h1: MulHash::nth(0),
            h2: MulHash::nth(1),
            len: 0,
            max_kicks: 64 + 4 * capacity.max(2).ilog2() as usize,
        }
    }

    /// Number of inserted tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no tuples were inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size of the key and payload arrays in bytes.
    pub fn size_bytes(&self) -> usize {
        self.keys.len() * 8
    }

    fn try_place(&mut self, bucket: usize, key: u32, pay: u32) -> bool {
        let base = bucket * self.slots;
        for s in 0..self.slots {
            if self.keys[base + s] == EMPTY_KEY {
                self.keys[base + s] = key;
                self.pays[base + s] = pay;
                return true;
            }
        }
        false
    }

    /// Insert one tuple, kicking occupants between their candidate
    /// buckets when both are full.
    pub fn try_insert(&mut self, key: u32, pay: u32) -> Result<(), CuckooBuildError> {
        assert_ne!(
            key, EMPTY_KEY,
            "key {key:#x} is the reserved empty sentinel"
        );
        assert!(self.len < self.keys.len(), "hash table is full");
        let mut k = key;
        let mut p = pay;
        let mut bucket = self.h1.bucket(k, self.nbuckets);
        for kick in 0..self.max_kicks {
            if self.try_place(bucket, k, p) {
                self.len += 1;
                return Ok(());
            }
            let alt = {
                let b1 = self.h1.bucket(k, self.nbuckets);
                if bucket == b1 {
                    self.h2.bucket(k, self.nbuckets)
                } else {
                    b1
                }
            };
            if self.try_place(alt, k, p) {
                self.len += 1;
                return Ok(());
            }
            // displace a pseudo-random victim from the alternate bucket
            let slot = kick % self.slots;
            let base = alt * self.slots;
            core::mem::swap(&mut k, &mut self.keys[base + slot]);
            core::mem::swap(&mut p, &mut self.pays[base + slot]);
            let vb1 = self.h1.bucket(k, self.nbuckets);
            bucket = if alt == vb1 {
                self.h2.bucket(k, self.nbuckets)
            } else {
                vb1
            };
        }
        Err(CuckooBuildError {
            key: k,
            payload: p,
            attempts: 0,
        })
    }

    /// Build from columns; keys must be unique.
    pub fn build(&mut self, keys: &[u32], pays: &[u32]) -> Result<(), CuckooBuildError> {
        assert_eq!(keys.len(), pays.len(), "column length mismatch");
        for (&k, &p) in keys.iter().zip(pays) {
            self.try_insert(k, p)?;
        }
        Ok(())
    }

    /// Horizontal probe: broadcast the key, compare against both candidate
    /// buckets (at most two vector comparisons per probe key).
    ///
    /// # Panics
    /// If `S::LANES != slots`.
    pub fn probe_horizontal<S: Simd>(&self, s: S, keys: &[u32], pays: &[u32], out: &mut JoinSink) {
        assert_eq!(keys.len(), pays.len(), "column length mismatch");
        assert_eq!(
            S::LANES,
            self.slots,
            "bucket width must equal the backend lane count"
        );
        s.vectorize(
            #[inline(always)]
            || {
                for (&k, &p) in keys.iter().zip(pays) {
                    let kv = s.splat(k);
                    let b1 = self.h1.bucket(k, self.nbuckets) * self.slots;
                    let hit = s.cmpeq(s.load(&self.keys[b1..]), kv);
                    if let Some(lane) = hit.first_set() {
                        out.push(k, self.pays[b1 + lane], p);
                        continue;
                    }
                    let b2 = self.h2.bucket(k, self.nbuckets) * self.slots;
                    let hit = s.cmpeq(s.load(&self.keys[b2..]), kv);
                    if let Some(lane) = hit.first_set() {
                        out.push(k, self.pays[b2 + lane], p);
                    }
                }
            },
        );
    }
}

#[cfg(test)]
mod cuckoo_bucket_tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use rsv_simd::Portable;

    #[test]
    fn bucketized_cuckoo_build_and_probe() {
        let s = Portable::<16>::new();
        let mut rng = rsv_data::rng(47);
        let bk = rsv_data::unique_u32(4000, &mut rng);
        let bp: Vec<u32> = (0..4000).collect();
        let mut t = BucketizedCuckoo::new(bk.len(), 0.8, 16);
        t.build(&bk, &bp).expect("bucketized cuckoo holds 80% load");
        assert_eq!(t.len(), bk.len());

        let pk: Vec<u32> = (0..10_000)
            .map(|i| {
                if i % 5 == 4 {
                    bk[i % 4000] ^ 3
                } else {
                    bk[(i * 7) % 4000]
                }
            })
            .collect();
        let pp: Vec<u32> = (0..10_000).collect();
        let mut sink = JoinSink::with_capacity(0);
        t.probe_horizontal(s, &pk, &pp, &mut sink);

        let map: std::collections::HashMap<u32, u32> =
            bk.iter().copied().zip(bp.iter().copied()).collect();
        let expected = pk.iter().filter(|k| map.contains_key(k)).count();
        assert_eq!(sink.len(), expected);
        for (k, b, _p) in sink.iter() {
            assert_eq!(map[&k], b);
        }
    }

    #[test]
    fn wrong_lane_count_panics() {
        let t = BucketizedCuckoo::new(16, 0.5, 16);
        let s = Portable::<8>::new();
        let mut sink = JoinSink::with_capacity(0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.probe_horizontal(s, &[1], &[1], &mut sink)
        }));
        assert!(r.is_err());
    }
}
