//! Graceful degradation for cuckoo builds: when the displacement limit is
//! exhausted across every rehash attempt (adversarial keys, or a load
//! factor past cuckoo's ~50% threshold), the build falls back — counted in
//! [`Metric::FallbackBuilds`] — to a linear-probing table with the same
//! primary hash function instead of failing the query.
//!
//! Cuckoo inputs have unique keys by contract, so both structures answer a
//! probe with at most one match per key: the fallback changes worst-case
//! probe cost, never the result. A [`FallbackTable`] that degraded to
//! [`LinearTable::with_hash`]`(capacity, load_factor, MulHash::nth(0))`
//! produces byte-identical probe output to a directly built linear table,
//! which `crates/core/tests/robustness.rs` asserts.

use rsv_metrics::Metric;
use rsv_simd::Simd;

use crate::cuckoo::CuckooTable;
use crate::linear::LinearTable;
use crate::sink::JoinSink;
use crate::MulHash;

#[derive(Debug, Clone)]
enum Inner {
    Cuckoo(CuckooTable),
    Linear(LinearTable),
}

/// A build-side hash table that prefers cuckoo hashing (worst-case two
/// probe accesses) and degrades transparently to linear probing when the
/// cuckoo build cannot place every key within
/// [`CuckooTable::MAX_REHASH`] rebuild attempts.
#[derive(Debug, Clone)]
pub struct FallbackTable {
    inner: Inner,
}

impl FallbackTable {
    /// Build from unique-key columns: cuckoo first, linear probing on
    /// rehash exhaustion. `vectorized` selects the build kernel for both
    /// routes.
    pub fn build<S: Simd>(
        s: S,
        vectorized: bool,
        keys: &[u32],
        pays: &[u32],
        capacity: usize,
        load_factor: f64,
    ) -> Self {
        let mut cuckoo = CuckooTable::new(capacity, load_factor);
        let failed = if vectorized {
            cuckoo.build_vertical(s, keys, pays).is_err()
        } else {
            cuckoo.build_scalar(keys, pays).is_err()
        };
        if !failed {
            return FallbackTable {
                inner: Inner::Cuckoo(cuckoo),
            };
        }
        drop(cuckoo);
        rsv_metrics::count(Metric::FallbackBuilds, 1);
        let mut linear = LinearTable::with_hash(capacity, load_factor, MulHash::nth(0));
        if vectorized {
            linear.build_vertical(s, keys, pays);
        } else {
            linear.build_scalar(keys, pays);
        }
        FallbackTable {
            inner: Inner::Linear(linear),
        }
    }

    /// `true` if the build degraded to linear probing.
    pub fn fell_back(&self) -> bool {
        matches!(self.inner, Inner::Linear(_))
    }

    /// Number of inserted tuples.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Cuckoo(t) => t.len(),
            Inner::Linear(t) => t.len(),
        }
    }

    /// `true` if no tuples were inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of the bucket array in bytes.
    pub fn size_bytes(&self) -> usize {
        match &self.inner {
            Inner::Cuckoo(t) => t.size_bytes(),
            Inner::Linear(t) => t.size_bytes(),
        }
    }

    /// Probe, emitting `(key, table payload, probe payload)` matches;
    /// `vectorized` selects the probe kernel.
    pub fn probe<S: Simd>(
        &self,
        s: S,
        vectorized: bool,
        keys: &[u32],
        pays: &[u32],
        out: &mut JoinSink,
    ) {
        match &self.inner {
            Inner::Cuckoo(t) => {
                if vectorized {
                    t.probe_vertical_select(s, keys, pays, out);
                } else {
                    t.probe_scalar_branching(keys, pays, out);
                }
            }
            Inner::Linear(t) => {
                if vectorized {
                    t.probe_vertical(s, keys, pays, out);
                } else {
                    t.probe_scalar(keys, pays, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use rsv_simd::Portable;

    #[test]
    fn healthy_build_stays_cuckoo() {
        let s = Portable::<16>::new();
        let mut rng = rsv_data::rng(61);
        let keys = rsv_data::unique_u32(500, &mut rng);
        let pays: Vec<u32> = (0..500).collect();
        let t = FallbackTable::build(s, true, &keys, &pays, keys.len(), 0.5);
        assert!(!t.fell_back());
        assert_eq!(t.len(), keys.len());
    }

    #[test]
    fn overfull_build_falls_back_and_answers() {
        let s = Portable::<16>::new();
        let mut rng = rsv_data::rng(62);
        let keys = rsv_data::unique_u32(2_000, &mut rng);
        let pays: Vec<u32> = (0..2_000).collect();
        // 97% occupancy is far past cuckoo's two-choice threshold: every
        // rehash attempt fails, linear probing takes over.
        let t = FallbackTable::build(s, false, &keys, &pays, keys.len(), 0.97);
        assert!(t.fell_back());
        assert_eq!(t.len(), keys.len());
        let mut sink = JoinSink::with_capacity(0);
        t.probe(s, false, &keys, &pays, &mut sink);
        assert_eq!(sink.len(), keys.len());
    }
}
