//! Cuckoo hashing (paper §5.3, Algorithms 9 and 10).
//!
//! Two hash functions give every key two candidate buckets; probing is
//! worst-case two accesses, building displaces ("kicks") occupants. Cuckoo
//! tables do not support key repeats — build inputs must have unique keys.

use rsv_metrics::Metric;
use rsv_simd::{MaskLike, Simd};

use crate::sink::JoinSink;
use crate::{bucket_count, MulHash, EMPTY_KEY, EMPTY_PAIR};

/// Maximum vector width any backend exposes (for stack lane buffers).
const MAX_LANES: usize = 32;

/// Building failed: the displacement chain exceeded the kick limit (the
/// table is too full or the hash functions cycle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CuckooBuildError {
    /// The tuple that could not be placed.
    pub key: u32,
    /// Its payload.
    pub payload: u32,
    /// Full-rebuild attempts consumed before giving up (0 for a single
    /// failed insert outside a build).
    pub attempts: usize,
}

impl From<CuckooBuildError> for rsv_exec::EngineError {
    fn from(e: CuckooBuildError) -> Self {
        rsv_exec::EngineError::RehashExhausted {
            attempts: e.attempts,
            key: e.key,
        }
    }
}

impl core::fmt::Display for CuckooBuildError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "cuckoo displacement limit exceeded inserting key {:#x}",
            self.key
        )
    }
}

impl std::error::Error for CuckooBuildError {}

/// A cuckoo hash table with two hash functions and interleaved buckets.
#[derive(Debug, Clone)]
pub struct CuckooTable {
    pairs: Vec<u64>,
    h1: MulHash,
    h2: MulHash,
    len: usize,
    max_kicks: usize,
}

impl CuckooTable {
    /// A table able to hold `capacity` tuples at `load_factor` occupancy
    /// (keep ≤ 0.5 for reliable insertion with two hash functions).
    pub fn new(capacity: usize, load_factor: f64) -> Self {
        let buckets = bucket_count(capacity, load_factor);
        CuckooTable {
            pairs: vec![EMPTY_PAIR; buckets],
            h1: MulHash::nth(0),
            h2: MulHash::nth(1),
            len: 0,
            max_kicks: 64 + 4 * capacity.max(1).ilog2() as usize,
        }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.pairs.len()
    }

    /// Number of inserted tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no tuples were inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size of the bucket array in bytes.
    pub fn size_bytes(&self) -> usize {
        self.pairs.len() * 8
    }

    /// The displacement limit per insert (bounds the
    /// `CuckooDisplacements` metric: at most `max_kicks` per key built).
    pub fn max_kicks(&self) -> usize {
        self.max_kicks
    }

    #[inline(always)]
    fn bucket1(&self, key: u32) -> usize {
        self.h1.bucket(key, self.pairs.len())
    }

    #[inline(always)]
    fn bucket2(&self, key: u32) -> usize {
        self.h2.bucket(key, self.pairs.len())
    }

    /// Insert one tuple, displacing occupants as needed. A completely full
    /// table is reported as an error (the displacement chain can never
    /// terminate), not a panic — callers degrade instead of crashing.
    pub fn try_insert(&mut self, key: u32, pay: u32) -> Result<(), CuckooBuildError> {
        assert_ne!(
            key, EMPTY_KEY,
            "key {key:#x} is the reserved empty sentinel"
        );
        if self.len >= self.pairs.len() {
            return Err(CuckooBuildError {
                key,
                payload: pay,
                attempts: 0,
            });
        }
        let mut cur = u64::from(key) | (u64::from(pay) << 32);
        let mut h = self.bucket1(key);
        let mut kicks = 0u64;
        for _ in 0..self.max_kicks {
            let occupant = self.pairs[h];
            self.pairs[h] = cur;
            if occupant as u32 == EMPTY_KEY {
                self.len += 1;
                rsv_metrics::count(Metric::CuckooDisplacements, kicks);
                return Ok(());
            }
            // Displace the occupant to its alternate bucket.
            kicks += 1;
            let ok = occupant as u32;
            let alt = if self.bucket1(ok) == h {
                self.bucket2(ok)
            } else {
                self.bucket1(ok)
            };
            cur = occupant;
            h = alt;
        }
        rsv_metrics::count(Metric::CuckooDisplacements, kicks);
        Err(CuckooBuildError {
            key: cur as u32,
            payload: (cur >> 32) as u32,
            attempts: 0,
        })
    }

    /// Number of full-rebuild attempts (with fresh hash functions) before
    /// giving up. Cuckoo hashing at its 50% load threshold occasionally
    /// needs a rehash; this is the standard remedy.
    pub const MAX_REHASH: usize = 16;

    /// Swap in a fresh pair of hash functions and clear the table.
    fn rehash_reset(&mut self, attempt: usize) {
        let salt = (attempt as u32).wrapping_mul(0x9E37_79B9);
        self.h1 = MulHash::with_factor(MulHash::nth(0).factor() ^ salt);
        self.h2 = MulHash::with_factor(MulHash::nth(1).factor() ^ salt.rotate_left(16));
        self.pairs.fill(EMPTY_PAIR);
        self.len = 0;
    }

    /// Build from columns with scalar code; keys must be unique.
    ///
    /// On a displacement failure the table is cleared, re-keyed with fresh
    /// hash functions, and rebuilt (up to a fixed number of attempts).
    pub fn build_scalar(&mut self, keys: &[u32], pays: &[u32]) -> Result<(), CuckooBuildError> {
        assert_eq!(keys.len(), pays.len(), "column length mismatch");
        assert!(self.is_empty(), "build on a non-empty cuckoo table");
        let mut attempt = 0;
        'retry: loop {
            let _ = rsv_testkit::failpoint!("hashtab.cuckoo.build");
            rsv_metrics::count(Metric::CuckooKeysBuilt, keys.len() as u64);
            for (&k, &p) in keys.iter().zip(pays) {
                if let Err(e) = self.try_insert(k, p) {
                    attempt += 1;
                    if attempt >= Self::MAX_REHASH {
                        return Err(CuckooBuildError {
                            attempts: attempt,
                            ..e
                        });
                    }
                    self.rehash_reset(attempt);
                    continue 'retry;
                }
            }
            return Ok(());
        }
    }

    /// Vectorized build (paper Algorithm 10): newly loaded tuples try their
    /// first (then second) bucket; every lane scatters, the gather-back
    /// identifies the winning lane per bucket, and displaced or conflicting
    /// tuples stay in their lanes for the next iteration with the alternate
    /// hash function (`h ← h1 + h2 − h`).
    pub fn build_vertical<S: Simd>(
        &mut self,
        s: S,
        keys: &[u32],
        pays: &[u32],
    ) -> Result<(), CuckooBuildError> {
        assert_eq!(keys.len(), pays.len(), "column length mismatch");
        assert!(self.is_empty(), "build on a non-empty cuckoo table");
        let mut attempt = 0;
        loop {
            let _ = rsv_testkit::failpoint!("hashtab.cuckoo.build");
            rsv_metrics::count(Metric::CuckooKeysBuilt, keys.len() as u64);
            let r = s.vectorize(
                #[inline(always)]
                || self.build_vertical_impl(s, keys, pays),
            );
            match r {
                Ok(()) => return Ok(()),
                Err(e) => {
                    attempt += 1;
                    if attempt >= Self::MAX_REHASH {
                        return Err(CuckooBuildError {
                            attempts: attempt,
                            ..e
                        });
                    }
                    self.rehash_reset(attempt);
                }
            }
        }
    }

    fn build_vertical_impl<S: Simd>(
        &mut self,
        s: S,
        keys: &[u32],
        pays: &[u32],
    ) -> Result<(), CuckooBuildError> {
        let w = S::LANES;
        let n = keys.len();
        let t = self.pairs.len();
        assert!(self.len + n < t, "hash table too small for build");
        debug_assert!(
            !keys.contains(&EMPTY_KEY),
            "empty-sentinel key in build input"
        );
        let f1 = s.splat(self.h1.factor());
        let f2 = s.splat(self.h2.factor());
        let tn = s.splat(t as u32);
        let empty = s.splat(EMPTY_KEY);
        let mut k = s.splat(EMPTY_KEY);
        let mut v = s.zero();
        let mut h = s.zero();
        let mut m = S::M::all();
        let mut kicks = 0u64;
        let mut i = 0usize;
        // Safety valve against displacement cycles: bounded iterations, then
        // fall back to scalar insertion for whatever is still in flight.
        let mut budget = 16 * (n / w + 1) + 4 * self.max_kicks;
        while i + w <= n {
            if budget == 0 {
                break;
            }
            budget -= 1;
            k = s.selective_load(k, m, &keys[i..]);
            v = s.selective_load(v, m, &pays[i..]);
            i += m.count();
            let h1 = s.mulhi(s.mullo(k, f1), tn);
            let h2 = s.mulhi(s.mullo(k, f2), tn);
            // Old tuples (displaced or conflicting) flip to their alternate
            // bucket; new tuples start at h1.
            h = s.sub(s.add(h1, h2), h);
            h = s.blend(m, h1, h);
            let (mut tk, mut tv) = s.gather_pairs(&self.pairs, h);
            // New tuples whose first bucket is occupied inspect the second.
            let second = m.and(s.cmpne(tk, empty));
            h = s.blend(second, h2, h);
            let g = s.gather_pairs_masked((tk, tv), second, &self.pairs, h);
            tk = g.0;
            tv = g.1;
            // Store or swap: every lane scatters its tuple.
            s.scatter_pairs(&mut self.pairs, h, k, v);
            let (kback, _) = s.gather_pairs(&self.pairs, h);
            // Winning lanes carry away the displaced occupant (EMPTY if the
            // bucket was free); losing lanes keep their own tuple and retry.
            // (The paper's Algorithm 10 listing prints the conflict mask as
            // `k != kback`; the winner mask `k == kback` is what makes the
            // subsequent blends consistent.)
            let won = s.cmpeq(k, kback);
            k = s.blend(won, tk, k);
            v = s.blend(won, tv, v);
            self.len += won.count();
            m = s.cmpeq(k, empty);
            // Displaced occupants were already counted when they were first
            // inserted; winning over a non-empty bucket nets zero.
            let displaced = won.and(m.not()).count();
            kicks += displaced as u64;
            self.len -= displaced;
        }
        rsv_metrics::count(Metric::CuckooDisplacements, kicks);
        // Scalar fallback: in-flight lanes, then the input tail.
        let mut ka = [0u32; MAX_LANES];
        let mut va = [0u32; MAX_LANES];
        s.store(k, &mut ka[..w]);
        s.store(v, &mut va[..w]);
        for lane in m.not().iter_set() {
            self.try_insert(ka[lane], va[lane])?;
        }
        for idx in i..n {
            self.try_insert(keys[idx], pays[idx])?;
        }
        Ok(())
    }

    /// Scalar probe, branching: inspect the second bucket only when the
    /// first missed. Emits `(key, table payload, probe payload)`.
    pub fn probe_scalar_branching(&self, keys: &[u32], pays: &[u32], out: &mut JoinSink) {
        assert_eq!(keys.len(), pays.len(), "column length mismatch");
        for (&k, &p) in keys.iter().zip(pays) {
            let pair = self.pairs[self.bucket1(k)];
            if pair as u32 == k {
                out.push(k, (pair >> 32) as u32, p);
                continue;
            }
            let pair = self.pairs[self.bucket2(k)];
            if pair as u32 == k {
                out.push(k, (pair >> 32) as u32, p);
            }
        }
    }

    /// Scalar probe, branchless (Zukowski et al. [42]): always load both
    /// buckets and combine them with bitwise arithmetic.
    pub fn probe_scalar_branchless(&self, keys: &[u32], pays: &[u32], out: &mut JoinSink) {
        assert_eq!(keys.len(), pays.len(), "column length mismatch");
        let (ok, oi, oo) = out.spare(keys.len());
        let mut j = 0usize;
        for (&k, &p) in keys.iter().zip(pays) {
            let p1 = self.pairs[self.bucket1(k)];
            let p2 = self.pairs[self.bucket2(k)];
            let m1 = (p1 as u32 == k) as u64;
            let m2 = (p2 as u32 == k) as u64;
            // Select the matching pair without branching.
            let hit = p1 * m1 + p2 * (m2 & !m1);
            ok[j] = k;
            oi[j] = (hit >> 32) as u32;
            oo[j] = p;
            j += (m1 | m2) as usize;
        }
        out.advance(j);
    }

    /// Vertical vectorized probe, *blend* variant: always gather both
    /// buckets and blend (no data-dependent control flow at all).
    pub fn probe_vertical_blend<S: Simd>(
        &self,
        s: S,
        keys: &[u32],
        pays: &[u32],
        out: &mut JoinSink,
    ) {
        assert_eq!(keys.len(), pays.len(), "column length mismatch");
        s.vectorize(
            #[inline(always)]
            || self.probe_vertical_impl(s, keys, pays, out, true),
        );
    }

    /// Vertical vectorized probe (paper Algorithm 9), *select* variant:
    /// gather the second bucket selectively, only for lanes the first
    /// bucket did not match.
    pub fn probe_vertical_select<S: Simd>(
        &self,
        s: S,
        keys: &[u32],
        pays: &[u32],
        out: &mut JoinSink,
    ) {
        assert_eq!(keys.len(), pays.len(), "column length mismatch");
        s.vectorize(
            #[inline(always)]
            || self.probe_vertical_impl(s, keys, pays, out, false),
        );
    }

    #[inline(always)]
    fn probe_vertical_impl<S: Simd>(
        &self,
        s: S,
        keys: &[u32],
        pays: &[u32],
        out: &mut JoinSink,
        blend_both: bool,
    ) {
        let w = S::LANES;
        let n = keys.len();
        let t = self.pairs.len();
        let f1 = s.splat(self.h1.factor());
        let f2 = s.splat(self.h2.factor());
        let tn = s.splat(t as u32);
        let mut i = 0usize;
        while i + w <= n {
            let k = s.load(&keys[i..]);
            let v = s.load(&pays[i..]);
            let h1 = s.mulhi(s.mullo(k, f1), tn);
            let h2 = s.mulhi(s.mullo(k, f2), tn);
            let (tk, tv);
            if blend_both {
                let (tk1, tv1) = s.gather_pairs(&self.pairs, h1);
                let (tk2, tv2) = s.gather_pairs(&self.pairs, h2);
                let m1 = s.cmpeq(tk1, k);
                tk = s.blend(m1, tk1, tk2);
                tv = s.blend(m1, tv1, tv2);
            } else {
                let (tk1, tv1) = s.gather_pairs(&self.pairs, h1);
                let miss = s.cmpne(tk1, k);
                let g = s.gather_pairs_masked((tk1, tv1), miss, &self.pairs, h2);
                tk = g.0;
                tv = g.1;
            }
            let hit = s.cmpeq(tk, k);
            if hit.any() {
                let (ok, oi, oo) = out.spare(w);
                s.selective_store(ok, hit, k);
                s.selective_store(oi, hit, tv);
                let c = s.selective_store(oo, hit, v);
                out.advance(c);
            }
            i += w;
        }
        // Scalar tail.
        for idx in i..n {
            let k = keys[idx];
            let pair = self.pairs[self.bucket1(k)];
            if pair as u32 == k {
                out.push(k, (pair >> 32) as u32, pays[idx]);
                continue;
            }
            let pair = self.pairs[self.bucket2(k)];
            if pair as u32 == k {
                out.push(k, (pair >> 32) as u32, pays[idx]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;
    use rsv_simd::Portable;
    use std::collections::HashMap;

    fn workload(nb: usize, np: usize, seed: u64) -> (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>) {
        let mut rng = rsv_data::rng(seed);
        let bk = rsv_data::unique_u32(nb, &mut rng);
        let bp: Vec<u32> = (0..nb as u32).collect();
        let pk: Vec<u32> = (0..np)
            .map(|i| {
                if i % 5 == 4 {
                    bk[i % nb] ^ 0x0F0F_0F0F
                } else {
                    bk[(i * 3) % nb]
                }
            })
            .collect();
        let pp: Vec<u32> = (0..np as u32).collect();
        (bk, bp, pk, pp)
    }

    fn reference(bk: &[u32], bp: &[u32], pk: &[u32], pp: &[u32]) -> Vec<(u32, u32, u32)> {
        let map: HashMap<u32, u32> = bk.iter().copied().zip(bp.iter().copied()).collect();
        let mut out: Vec<_> = pk
            .iter()
            .zip(pp)
            .filter_map(|(&k, &p)| map.get(&k).map(|&b| (k, b, p)))
            .collect();
        out.sort_unstable();
        out
    }

    fn sorted_rows(sink: &JoinSink) -> Vec<(u32, u32, u32)> {
        let mut rows: Vec<_> = sink.iter().collect();
        rows.sort_unstable();
        rows
    }

    #[test]
    fn scalar_build_and_probe_variants_agree() {
        let (bk, bp, pk, pp) = workload(400, 2000, 21);
        let mut t = CuckooTable::new(bk.len(), 0.5);
        t.build_scalar(&bk, &bp).unwrap();
        assert_eq!(t.len(), bk.len());
        let expected = reference(&bk, &bp, &pk, &pp);

        let mut s1 = JoinSink::with_capacity(0);
        t.probe_scalar_branching(&pk, &pp, &mut s1);
        assert_eq!(sorted_rows(&s1), expected);

        let mut s2 = JoinSink::with_capacity(0);
        t.probe_scalar_branchless(&pk, &pp, &mut s2);
        assert_eq!(sorted_rows(&s2), expected);
    }

    #[test]
    fn vertical_probe_variants_match_scalar() {
        let s = Portable::<16>::new();
        let (bk, bp, pk, pp) = workload(333, 1999, 22);
        let mut t = CuckooTable::new(bk.len(), 0.5);
        t.build_scalar(&bk, &bp).unwrap();
        let expected = reference(&bk, &bp, &pk, &pp);

        let mut s1 = JoinSink::with_capacity(0);
        t.probe_vertical_blend(s, &pk, &pp, &mut s1);
        assert_eq!(sorted_rows(&s1), expected);

        let mut s2 = JoinSink::with_capacity(0);
        t.probe_vertical_select(s, &pk, &pp, &mut s2);
        assert_eq!(sorted_rows(&s2), expected);
    }

    #[test]
    fn vertical_build_matches_scalar_build() {
        let s = Portable::<16>::new();
        for (nb, np) in [(100, 500), (40, 40), (1000, 2000)] {
            let (bk, bp, pk, pp) = workload(nb, np, 23);
            let mut t = CuckooTable::new(bk.len(), 0.5);
            t.build_vertical(s, &bk, &bp).unwrap();
            assert_eq!(t.len(), bk.len(), "len mismatch nb={nb}");
            let expected = reference(&bk, &bp, &pk, &pp);
            let mut sink = JoinSink::with_capacity(0);
            t.probe_scalar_branching(&pk, &pp, &mut sink);
            assert_eq!(sorted_rows(&sink), expected, "nb={nb} np={np}");
        }
    }

    #[test]
    fn build_error_on_overfull_table() {
        // load factor ~1: displacement will fail quickly for some input
        let mut rng = rsv_data::rng(31);
        let keys = rsv_data::unique_u32(4000, &mut rng);
        let pays = vec![0u32; keys.len()];
        let mut t = CuckooTable::new(keys.len(), 0.999);
        // may or may not fail depending on hashing; force tiny table instead
        let r = t.build_scalar(&keys, &pays);
        if r.is_ok() {
            // fill beyond reasonable cuckoo occupancy must eventually fail
            let extra = rsv_data::unique_u32(keys.len(), &mut rng);
            let mut failed = false;
            for &k in &extra {
                if t.len() >= t.buckets() - 1 {
                    break;
                }
                if t.try_insert(k, 0).is_err() {
                    failed = true;
                    break;
                }
            }
            assert!(failed || t.len() >= t.buckets() - 1);
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn accelerated_backends_match() {
        let (bk, bp, pk, pp) = workload(512, 4096, 29);
        let expected = reference(&bk, &bp, &pk, &pp);
        if let Some(s) = rsv_simd::Avx512::new() {
            let mut t = CuckooTable::new(bk.len(), 0.5);
            t.build_vertical(s, &bk, &bp).unwrap();
            let mut sink = JoinSink::with_capacity(0);
            t.probe_vertical_select(s, &pk, &pp, &mut sink);
            assert_eq!(sorted_rows(&sink), expected);
            let mut sink = JoinSink::with_capacity(0);
            t.probe_vertical_blend(s, &pk, &pp, &mut sink);
            assert_eq!(sorted_rows(&sink), expected);
        }
        if let Some(s) = rsv_simd::Avx2::new() {
            let mut t = CuckooTable::new(bk.len(), 0.5);
            t.build_vertical(s, &bk, &bp).unwrap();
            let mut sink = JoinSink::with_capacity(0);
            t.probe_vertical_select(s, &pk, &pp, &mut sink);
            assert_eq!(sorted_rows(&sink), expected);
        }
    }
}
