//! Growable join-output columns with vector-width slack.

/// Column-oriented join output: `(key, inner payload, outer payload)`.
///
/// Vectorized probe kernels write whole vectors with selective stores, so
/// the sink exposes *spare capacity* of at least one vector width via
/// [`JoinSink::spare`] and the kernel advances the logical length after the
/// store. The vectors are over-allocated and trimmed by [`JoinSink::finish`].
#[derive(Debug, Default)]
pub struct JoinSink {
    keys: Vec<u32>,
    inner_pays: Vec<u32>,
    outer_pays: Vec<u32>,
    len: usize,
}

impl JoinSink {
    /// Create a sink with initial capacity for `cap` results.
    pub fn with_capacity(cap: usize) -> Self {
        JoinSink {
            keys: vec![0; cap],
            inner_pays: vec![0; cap],
            outer_pays: vec![0; cap],
            len: 0,
        }
    }

    /// Number of results emitted so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no results were emitted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Spare space (at least `slack` entries) past the current end, as
    /// `(keys, inner payloads, outer payloads)` slices.
    #[inline]
    pub fn spare(&mut self, slack: usize) -> (&mut [u32], &mut [u32], &mut [u32]) {
        if self.len + slack > self.keys.len() {
            let new_len = (self.keys.len() * 2).max(self.len + slack).max(1024);
            self.keys.resize(new_len, 0);
            self.inner_pays.resize(new_len, 0);
            self.outer_pays.resize(new_len, 0);
        }
        (
            &mut self.keys[self.len..],
            &mut self.inner_pays[self.len..],
            &mut self.outer_pays[self.len..],
        )
    }

    /// Commit `n` results written into the spare space.
    #[inline]
    pub fn advance(&mut self, n: usize) {
        self.len += n;
        debug_assert!(self.len <= self.keys.len());
    }

    /// Forget all results but keep the allocated buffers (for reuse across
    /// benchmark repetitions).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Append one result.
    #[inline]
    pub fn push(&mut self, key: u32, inner_pay: u32, outer_pay: u32) {
        let (k, ip, op) = self.spare(1);
        k[0] = key;
        ip[0] = inner_pay;
        op[0] = outer_pay;
        self.advance(1);
    }

    /// Trim the columns to the logical length and return them as
    /// `(keys, inner payloads, outer payloads)`.
    pub fn finish(mut self) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        self.keys.truncate(self.len);
        self.inner_pays.truncate(self.len);
        self.outer_pays.truncate(self.len);
        (self.keys, self.inner_pays, self.outer_pays)
    }

    /// The emitted results as slices, without consuming the sink.
    pub fn columns(&self) -> (&[u32], &[u32], &[u32]) {
        (
            &self.keys[..self.len],
            &self.inner_pays[..self.len],
            &self.outer_pays[..self.len],
        )
    }

    /// Iterate over emitted `(key, inner, outer)` rows.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        (0..self.len).map(move |i| (self.keys[i], self.inner_pays[i], self.outer_pays[i]))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]
    use super::*;

    #[test]
    fn push_and_finish() {
        let mut sink = JoinSink::with_capacity(1);
        sink.push(1, 2, 3);
        sink.push(4, 5, 6);
        assert_eq!(sink.len(), 2);
        let (k, i, o) = sink.finish();
        assert_eq!(k, vec![1, 4]);
        assert_eq!(i, vec![2, 5]);
        assert_eq!(o, vec![3, 6]);
    }

    #[test]
    fn spare_grows_and_advance_commits() {
        let mut sink = JoinSink::with_capacity(0);
        let (k, i, o) = sink.spare(16);
        assert!(k.len() >= 16 && i.len() >= 16 && o.len() >= 16);
        k[0] = 7;
        i[0] = 8;
        o[0] = 9;
        sink.advance(1);
        assert_eq!(sink.columns(), (&[7u32][..], &[8u32][..], &[9u32][..]));
    }

    #[test]
    fn iter_yields_rows() {
        let mut sink = JoinSink::with_capacity(4);
        sink.push(1, 2, 3);
        sink.push(4, 5, 6);
        let rows: Vec<_> = sink.iter().collect();
        assert_eq!(rows, vec![(1, 2, 3), (4, 5, 6)]);
    }
}
